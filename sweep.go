package ndpage

import (
	"ndpage/internal/sweep"
)

// Plan declares a cross product of simulation configurations — the
// shape of the paper's evaluation (systems x mechanisms x cores x
// workloads) and of any custom design-space study. Base seeds every
// run, non-empty axes multiply, and Variants append arbitrary Config
// mutations as a final axis:
//
//	plan := ndpage.Plan{
//		Base:       ndpage.Config{Instructions: 100_000},
//		Systems:    []ndpage.System{ndpage.NDP},
//		Mechanisms: []ndpage.Mechanism{ndpage.Radix, ndpage.NDPage},
//		Cores:      []int{1, 4, 8},
//		Workloads:  []string{"bfs", "gups"},
//	}
//	results, err := new(ndpage.Sweep).RunPlan(ctx, plan)
type Plan = sweep.Plan

// Variant is one named Config mutation on a Plan's variant axis.
type Variant = sweep.Variant

// Sweep executes simulation configurations on a bounded worker pool,
// deduplicating runs by Config.Key() against a pluggable Store. The
// zero value is ready to use (in-memory store, min(4, GOMAXPROCS)
// workers). Point Store at NewDirStore to make sweeps incremental
// across processes: a cancelled or killed sweep resumes from the runs
// that already completed.
type Sweep = sweep.Runner

// SweepEvent reports one run's fate (simulated, cached, or failed) to
// Sweep.Progress.
type SweepEvent = sweep.Event

// Store persists sweep results content-addressed by Config.Key().
type Store = sweep.Store

// StoreInventory is the optional Store extension for stores that can
// report their contents cheaply (all built-in stores implement it).
type StoreInventory = sweep.Inventory

// NewMemStore returns an in-process result store.
func NewMemStore() *sweep.MemStore { return sweep.NewMemStore() }

// NewDirStore opens (creating if needed) an on-disk result store: one
// JSON file per run, named by the config's content hash, written
// atomically.
func NewDirStore(dir string) (*sweep.DirStore, error) { return sweep.NewDirStore(dir) }

// RemoteStore is a Store backed by a shared ndpserve instance: warm
// keys are fetched over HTTP (with per-key ETag revalidation and a
// local write-through cache), locally computed results are uploaded,
// and cold sweep runs are delegated to the server's singleflight
// scheduler, which collapses identical requests from every client into
// a single simulation. Point Sweep.Store (or Experiments.Cache) at one
// to share the run cache across users and machines.
type RemoteStore = sweep.RemoteStore

// NewRemoteStore returns a RemoteStore talking to the ndpserve instance
// at baseURL (e.g. "http://localhost:8947").
func NewRemoteStore(baseURL string) (*sweep.RemoteStore, error) { return sweep.NewRemoteStore(baseURL) }

// RunError is the structured failure of one simulation run, carrying a
// transient/permanent classification: permanent failures are a property
// of the configuration (retrying reproduces them; the Sweep negatively
// caches them), transient failures a property of the moment (network
// blips, watchdog deadlines, injected chaos — the next Run retries).
type RunError = sweep.RunError

// IsPermanent reports whether err is (or wraps) a RunError marked
// Permanent.
func IsPermanent(err error) bool { return sweep.IsPermanent(err) }

// BreakerState is a RemoteStore circuit breaker's position: closed
// (normal service), open (degraded local operation), or half-open (a
// recovery probe in flight).
type BreakerState = sweep.BreakerState

// The breaker positions.
const (
	BreakerClosed   = sweep.BreakerClosed
	BreakerOpen     = sweep.BreakerOpen
	BreakerHalfOpen = sweep.BreakerHalfOpen
)
