// Translation-anatomy: the paper's motivation study (Figures 4-6) for a
// single workload — why page-table walks hurt NDP systems so much more
// than CPUs, and how the pain grows with core count.
//
// Run with:
//
//	go run ./examples/translation-anatomy
package main

import (
	"fmt"
	"log"

	"ndpage"
)

func main() {
	fmt.Println("GUPS random access under the conventional 4-level Radix table")
	fmt.Println()
	fmt.Println("  cores   system   mean PTW   translation   TLB miss   PTE share")
	for _, cores := range []int{1, 4, 8} {
		for _, sys := range []struct {
			kind ndpage.System
			name string
		}{{ndpage.CPU, "CPU"}, {ndpage.NDP, "NDP"}} {
			res, err := ndpage.Run(ndpage.Config{
				System:         sys.kind,
				Cores:          cores,
				Mechanism:      ndpage.Radix,
				Workload:       "rnd",
				FootprintBytes: 2 << 30,
				Instructions:   80_000,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %5d   %-6s  %7.1f     %8.1f%%    %6.1f%%     %6.1f%%\n",
				cores, sys.name, res.MeanPTWLatency(),
				100*res.TranslationOverhead(), 100*res.TLBMissRate(),
				100*res.PTEAccessShare())
		}
	}
	fmt.Println()
	fmt.Println("The CPU's L2/L3 absorb page-table entries, so its walks stay cheap")
	fmt.Println("and flat. The NDP system has only a small L1: every walk goes to")
	fmt.Println("memory, and concurrent walkers queue up in the HBM banks as cores")
	fmt.Println("scale — the overhead NDPage is designed to remove.")
}
