// Embedding: a recommendation-inference scenario (DLRM sparse-length-sum)
// showing *why* NDPage helps — the Figure 7 cache-pollution story for one
// workload. Embedding-table gathers have some locality, so the L1 data
// cache matters; with the baseline Radix table, page-table entries stream
// through the same L1 and evict embedding rows.
//
// Run with:
//
//	go run ./examples/embedding
package main

import (
	"fmt"
	"log"

	"ndpage"
)

func run(mech ndpage.Mechanism) *ndpage.Result {
	res, err := ndpage.Run(ndpage.Config{
		System:         ndpage.NDP,
		Cores:          2,
		Mechanism:      mech,
		Workload:       "dlrm",
		FootprintBytes: 1 << 30,
		Instructions:   120_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	ideal := run(ndpage.Ideal)
	radix := run(ndpage.Radix)
	ndp := run(ndpage.NDPage)

	fmt.Println("DLRM embedding gathers on a 2-core NDP system")
	fmt.Println()
	fmt.Println("                          Ideal     Radix    NDPage")
	fmt.Printf("  L1 data miss rate     %7.2f%%  %7.2f%%  %7.2f%%\n",
		100*ideal.L1DataMissRate(), 100*radix.L1DataMissRate(), 100*ndp.L1DataMissRate())
	fmt.Printf("  L1 metadata traffic   %7d   %7d   %7d\n",
		ideal.L1PTE.Total(), radix.L1PTE.Total(), ndp.L1PTE.Total())
	fmt.Printf("  data evicted by PTEs  %7d   %7d   %7d\n",
		ideal.DataEvictedByPTE, radix.DataEvictedByPTE, ndp.DataEvictedByPTE)
	fmt.Printf("  mean PTW latency      %7.1f   %7.1f   %7.1f cycles\n",
		ideal.MeanPTWLatency(), radix.MeanPTWLatency(), ndp.MeanPTWLatency())
	fmt.Printf("  cycles                %7.2fM  %7.2fM  %7.2fM\n",
		float64(ideal.Cycles)/1e6, float64(radix.Cycles)/1e6, float64(ndp.Cycles)/1e6)
	fmt.Println()
	fmt.Printf("Radix pollutes the L1 with PTE fills (%d data lines evicted by\n", radix.DataEvictedByPTE)
	fmt.Println("metadata); NDPage's bypass keeps metadata out of the cache entirely,")
	fmt.Printf("recovering %.1f%% of the Radix-to-Ideal gap.\n",
		100*float64(radix.Cycles-ndp.Cycles)/float64(radix.Cycles-ideal.Cycles))
}
