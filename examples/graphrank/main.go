// Graphrank: the paper's headline experiment in miniature — run PageRank
// on a 4-core NDP system under every address-translation mechanism and
// compare end-to-end performance, the way Figure 13 does.
//
// Run with:
//
//	go run ./examples/graphrank
package main

import (
	"fmt"
	"log"

	"ndpage"
)

func main() {
	cfg := ndpage.Config{
		System:   ndpage.NDP,
		Cores:    4,
		Workload: "pr",
		// Default (paper-scale) footprint: the translation effects only
		// appear when the dataset dwarfs TLB reach and the L1 cannot
		// hold the upper page-table levels. Reduced instruction budget
		// keeps the example fast.
		Instructions: 100_000,
	}

	fmt.Println("PageRank, 4-core NDP: execution time by translation mechanism")
	fmt.Println()
	var base uint64
	for _, mech := range ndpage.Mechanisms() {
		cfg.Mechanism = mech
		res, err := ndpage.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if mech == ndpage.Radix {
			base = res.Cycles
		}
		speedup := float64(base) / float64(res.Cycles)
		bar := ""
		for i := 0; i < int(speedup*20); i++ {
			bar += "#"
		}
		fmt.Printf("  %-9s %9d cycles  %5.3fx  %s\n", mech, res.Cycles, speedup, bar)
	}
	fmt.Println()
	fmt.Println("NDPage combines a flattened L2/L1 page table (3-access walks)")
	fmt.Println("with an L1 bypass for page-table entries (no cache pollution).")
}
