// Quickstart: simulate breadth-first search on a 4-core near-data
// processing system with the paper's NDPage translation mechanism, and
// print the headline metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ndpage"
)

func main() {
	res, err := ndpage.Run(ndpage.Config{
		System:    ndpage.NDP,
		Cores:     4,
		Mechanism: ndpage.NDPage,
		Workload:  "bfs",
		// Scaled-down run so the example finishes in seconds; drop
		// these two fields for the full experiment scale.
		FootprintBytes: 1 << 30,
		Instructions:   100_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("BFS on a 4-core NDP system with NDPage translation")
	fmt.Printf("  executed %d instructions in %d cycles (CPI %.1f)\n",
		res.Instructions, res.Cycles, res.CPI())
	fmt.Printf("  address translation took %.1f%% of execution time\n",
		100*res.TranslationOverhead())
	fmt.Printf("  %d page-table walks, %.1f cycles each on average\n",
		res.Walks, res.MeanPTWLatency())
	fmt.Printf("  all %d PTE accesses bypassed the L1 cache\n", res.L1Bypassed)
}
