// Custom workload: register a user-defined pointer-chasing kernel
// through the public API — no internal imports — and sweep it against
// the five translation mechanisms on a 2-core NDP system.
//
// Pointer chasing is the translation worst case the Table II suite
// only approximates: every op is a dependent load at an address the
// previous load produced, so there is no spatial locality for the TLB
// and no memory-level parallelism to hide walks behind.
//
// Run with:
//
//	go run ./examples/custom-workload
package main

import (
	"context"
	"fmt"
	"log"

	"ndpage"
)

// chase is a pointer-chasing workload: a table of 64 B nodes linked in
// a hash-derived random permutation-like order. It implements
// ndpage.Workload with nothing but the public API.
type chase struct {
	nodes uint64
	table ndpage.VAddr
	seed  uint64
}

// nodeBytes is one chase node: a cache line.
const nodeBytes = 64

func (c *chase) Name() string { return "chase" }

// Init sizes the node table to the footprint. Topology is a stateless
// hash, so the multi-GB table needs no Go-side storage.
func (c *chase) Init(mem ndpage.Mem, rng *ndpage.RNG, footprint uint64, threads int) {
	c.seed = rng.Uint64()
	c.nodes = footprint / nodeBytes
	if c.nodes < 1<<16 {
		c.nodes = 1 << 16
	}
	c.table = mem.Alloc(c.nodes*nodeBytes, "chase-table")
}

// mix is splitmix64: the example's stand-in for a real dataset's
// pointer graph.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chaseGen walks the chain: each node's successor is a hash of the
// node index, i.e. a dependent random access per op.
type chaseGen struct {
	c   *chase
	cur uint64
}

func (g *chaseGen) Next(op *ndpage.Op) {
	*op = ndpage.Op{Kind: ndpage.OpLoad, Addr: g.c.table + ndpage.VAddr(g.cur*nodeBytes)}
	g.cur = mix(g.c.seed^g.cur) % g.c.nodes
}

func (c *chase) Thread(core int, seed uint64) ndpage.Generator {
	return &chaseGen{c: c, cur: mix(seed) % c.nodes}
}

func main() {
	// One registration makes "chase" a first-class workload name:
	// Config.Workload, sweep plans, and ndpage.Workloads() all accept
	// it, and its name+params are hashed into each run's cache key.
	err := ndpage.RegisterWorkload("chase", ndpage.WorkloadSpec{
		Suite:       "custom",
		Description: "dependent pointer chasing",
		Params:      fmt.Sprintf("node=%dB", nodeBytes),
		New:         func() ndpage.Workload { return &chase{} },
	})
	if err != nil {
		log.Fatal(err)
	}

	plan := ndpage.Plan{
		Base: ndpage.Config{
			System: ndpage.NDP,
			Cores:  2,
			// Scaled down so the example finishes in seconds.
			FootprintBytes: 1 << 30,
			Instructions:   60_000,
			Warmup:         10_000,
		},
		Mechanisms: []ndpage.Mechanism{
			ndpage.Radix, ndpage.ECH, ndpage.HugePage, ndpage.NDPage, ndpage.Ideal,
		},
		Workloads: []string{"chase"},
	}
	results, err := new(ndpage.Sweep).RunPlan(context.Background(), plan)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pointer chasing on a 2-core NDP system, by translation mechanism")
	fmt.Printf("  %-10s %8s %14s %12s\n", "mechanism", "CPI", "translation%", "PTW cycles")
	var radixCPI float64
	for i, res := range results {
		cpi := res.CPI()
		if i == 0 {
			radixCPI = cpi
		}
		fmt.Printf("  %-10s %8.2f %13.1f%% %12.1f   (%.2fx vs Radix)\n",
			plan.Mechanisms[i], cpi, 100*res.TranslationOverhead(), res.MeanPTWLatency(),
			radixCPI/cpi)
	}
}
