package ndpage

import (
	"ndpage/internal/addr"
	"ndpage/internal/workload"
	"ndpage/internal/xrand"
)

// The workload platform: the simulator's benchmark set is open.
// Anything that implements Workload — the address stream of a kernel,
// not its arithmetic — can be registered under a name
// (RegisterWorkload) and then drives simulations, sweeps, and the CLI
// tools exactly like a Table II benchmark. Captured op streams replay
// the same way via Config.Workload = "trace:<path>" (see
// cmd/ndptrace and WORKLOADS.md).

// VAddr is a simulated virtual address.
type VAddr = addr.V

// OpKind is the kind of one instruction-level operation.
type OpKind = workload.OpKind

// Operation kinds a Generator emits.
const (
	// OpCompute is a non-memory instruction burst of Op.Cycles cycles.
	OpCompute OpKind = workload.Compute
	// OpLoad reads Op.Addr.
	OpLoad OpKind = workload.Load
	// OpStore writes Op.Addr.
	OpStore OpKind = workload.Store
)

// Op is one instruction emitted by a workload generator.
type Op = workload.Op

// Mem is the allocation interface a workload uses to reserve its
// dataset; the simulator passes its OS model's address space.
type Mem = workload.Mem

// RNG is the deterministic pseudo-random generator handed to
// Workload.Init; a given seed always produces the same stream, which
// is what makes runs content-addressable.
type RNG = xrand.RNG

// Workload is a benchmark: a shared dataset plus one infinite op
// stream per simulated core. Implementations must be deterministic in
// (Init arguments, Thread arguments): the run cache assumes a
// workload's name and parameters pin its behavior.
type Workload = workload.Workload

// Generator is an infinite instruction stream (one core's thread).
type Generator = workload.Generator

// WorkloadSpec describes a user-defined workload for RegisterWorkload.
type WorkloadSpec struct {
	// Suite and Description label the workload in listings (ndpsim
	// -list, Workloads()).
	Suite       string
	Description string
	// Params identifies the kernel's tuning knobs (any stable encoding
	// of them, e.g. "nodes=1e6,stride=64"). It is hashed together with
	// the name into Config.Key(), so changing a parameter invalidates
	// the content-addressed run cache. Leave it empty only if the name
	// alone pins the workload's behavior.
	Params string
	// New constructs a fresh instance; each simulation gets its own.
	New func() Workload
}

// RegisterWorkload adds a user-defined workload to the global registry
// under the given name ([a-z0-9][a-z0-9._-]*). The name then works
// everywhere a built-in name does: Config.Workload, Plan.Workloads,
// Workloads(), and the CLIs built on this package. Registering a name
// twice, or shadowing a Table II benchmark, is an error. Safe for
// concurrent use.
func RegisterWorkload(name string, spec WorkloadSpec) error {
	return workload.Register(workload.Spec{
		Name:        name,
		Suite:       spec.Suite,
		Description: spec.Description,
		Params:      spec.Params,
		New:         spec.New,
	})
}
