package ndpage

import (
	"context"
	"io"

	"ndpage/internal/exp"
	"ndpage/internal/stats"
)

// Table is a rendered experiment result: aligned text via String, machine-
// readable output via CSV.
type Table = stats.Table

// Experiments regenerates the paper's evaluation: a thin compatibility
// wrapper over the sweep subsystem (see Plan, Sweep, Store). The zero
// value runs every figure at the default (full) scale over all eleven
// workloads; the fields trade fidelity for speed.
type Experiments struct {
	// Instructions and Warmup are per-core op budgets (0 = defaults:
	// 300k / 30k).
	Instructions uint64
	Warmup       uint64
	// Footprint overrides the dataset budget (0 = core-count-scaled
	// default).
	Footprint uint64
	// Workloads restricts the benchmark set (nil = all of Table II).
	Workloads []string
	// Parallel bounds concurrent simulations (0 = min(4, GOMAXPROCS)).
	Parallel int
	// Shards, when positive, runs figure prefetches through the sharded
	// replication runner instead of the shared worker pool: each unique
	// configuration pins to one of Shards goroutines by content key, so
	// the execution schedule is a pure function of the configuration
	// set — reproducible across runs, machines, and -race. Negative or
	// zero keeps the completion-ordered pool.
	Shards int
	// Progress, when non-nil, receives a line per simulation: completed,
	// served from the cache, or failed.
	Progress io.Writer
	// Cache persists results across figures and processes (NewDirStore);
	// nil keeps results in memory for this Experiments value only.
	Cache Store
	// Context cancels in-flight sweeps (nil = context.Background()).
	Context context.Context

	runner *exp.Runner
}

func (e *Experiments) r() *exp.Runner {
	if e.runner == nil {
		e.runner = &exp.Runner{
			Instructions: e.Instructions,
			Warmup:       e.Warmup,
			Footprint:    e.Footprint,
			Workloads:    e.Workloads,
			Parallel:     e.Parallel,
			Shards:       e.Shards,
			Progress:     e.Progress,
			Store:        e.Cache,
			Context:      e.Context,
		}
	}
	return e.runner
}

// Fig4 reproduces Figure 4 (mean PTW latency, 4-core CPU vs NDP).
func (e *Experiments) Fig4() (*Table, error) { return e.r().Fig4() }

// Fig5 reproduces Figure 5 (translation overhead fraction, 4-core).
func (e *Experiments) Fig5() (*Table, error) { return e.r().Fig5() }

// Fig6 reproduces Figure 6 (PTW latency and overhead vs core count).
func (e *Experiments) Fig6() (*Table, error) { return e.r().Fig6() }

// Fig7 reproduces Figure 7 (L1 miss rates: data ideal/actual, metadata).
func (e *Experiments) Fig7() (*Table, error) { return e.r().Fig7() }

// Fig8 reproduces Figure 8 (page-table occupancy per level).
func (e *Experiments) Fig8() (*Table, error) { return e.r().Fig8() }

// Motivation reproduces the Section IV-A scalar observations.
func (e *Experiments) Motivation() (*Table, error) { return e.r().Motivation() }

// PWCRates reproduces the Section V-C page-walk-cache hit rates.
func (e *Experiments) PWCRates() (*Table, error) { return e.r().PWCRates() }

// Fig12 reproduces Figure 12 (single-core speedups over Radix).
func (e *Experiments) Fig12() (*Table, error) { return e.r().Fig12() }

// Fig13 reproduces Figure 13 (4-core speedups over Radix).
func (e *Experiments) Fig13() (*Table, error) { return e.r().Fig13() }

// Fig14 reproduces Figure 14 (8-core speedups over Radix).
func (e *Experiments) Fig14() (*Table, error) { return e.r().Fig14() }

// Ablation decomposes NDPage into bypass-only and flatten-only variants.
func (e *Experiments) Ablation() (*Table, error) { return e.r().Ablation() }

// MechanismComparison sweeps the paper's baselines plus the related-work
// mechanisms (Victima, NMT, PCAX) on the 4-core NDP system.
func (e *Experiments) MechanismComparison() (*Table, error) { return e.r().MechanismComparison() }

// PWCSensitivity measures walks with and without page-walk caches
// (DESIGN.md ablation 2).
func (e *Experiments) PWCSensitivity() (*Table, error) { return e.r().PWCSensitivity() }

// HBMChannelSensitivity sweeps the NDP vault partition width, the
// queueing driver behind Figure 6a (DESIGN.md ablation 3).
func (e *Experiments) HBMChannelSensitivity() (*Table, error) { return e.r().HBMChannelSensitivity() }

// WalkerWidthSensitivity sweeps the shared walker's concurrent-walk
// slots on the 4-core NDP system, reporting PTW latency, MSHR
// coalescing, and walk-overlap statistics per width.
func (e *Experiments) WalkerWidthSensitivity() (*Table, error) {
	return e.r().WalkerWidthSensitivity()
}

// MLPSensitivity sweeps the per-core memory-level-parallelism window
// over a shared width-2 walker on the 4-core NDP system: the
// non-blocking-core regime where walks overlap, queue on real walker
// slots, and coalesce in the MSHRs.
func (e *Experiments) MLPSensitivity() (*Table, error) { return e.r().MLPSensitivity() }

// PopulationSensitivity contrasts eager and demand dataset population
// (DESIGN.md ablation 4).
func (e *Experiments) PopulationSensitivity() (*Table, error) { return e.r().PopulationSensitivity() }

// OversubscriptionStudy models datasets larger than memory with FIFO
// chunk reclaim — the regime where transparent huge pages collapse.
func (e *Experiments) OversubscriptionStudy() (*Table, error) { return e.r().OversubscriptionStudy() }

// All runs every experiment in report order.
func (e *Experiments) All() ([]*Table, error) { return e.r().All() }

// TableII renders the workload registry.
func TableII() *Table { return exp.TableII() }
