// Package ndpage reproduces "NDPage: Efficient Address Translation for
// Near-Data Processing Architectures via Tailored Page Table" (DATE 2025)
// as a self-contained architectural simulation library.
//
// The package simulates CPU and NDP systems (Table I of the paper): x86-64
// cores with two-level TLBs and page-walk caches, cache hierarchies, a
// mesh interconnect, DDR4/HBM2 memory with bank/channel timing, an OS
// memory manager with demand paging and transparent-huge-page policy, and
// five address-translation mechanisms:
//
//   - Radix — the conventional 4-level x86-64 page table (baseline)
//   - ECH — elastic cuckoo hash page table (parallel probes)
//   - HugePage — transparent 2 MB pages
//   - NDPage — the paper's design: flattened L2/L1 page table plus an L1
//     cache bypass for page-table entries
//   - Ideal — zero-cost translation (upper bound)
//
// Eleven data-intensive workloads (Table II: GraphBIG BC/BFS/CC/GC/PR/TC/
// SP, XSBench, GUPS, DLRM, GenomicsBench k-mer counting) drive the
// simulations as synthetic kernels that reproduce the originals' memory
// access patterns. The workload set is open: RegisterWorkload adds
// user-defined kernels under new names, and Config.Workload =
// "trace:<path>" replays an op stream captured with cmd/ndptrace
// (WORKLOADS.md documents the catalog, the API, and the trace formats).
//
// Quick start:
//
//	res, err := ndpage.Run(ndpage.Config{
//		System:    ndpage.NDP,
//		Cores:     4,
//		Mechanism: ndpage.NDPage,
//		Workload:  "bfs",
//	})
//	fmt.Printf("CPI %.1f, PTW %.1f cycles\n", res.CPI(), res.MeanPTWLatency())
//
// Use Experiments to regenerate every figure of the paper's evaluation;
// see EXPERIMENTS.md for measured-versus-paper results.
package ndpage

import (
	"ndpage/internal/core"
	"ndpage/internal/memsys"
	"ndpage/internal/sim"
	"ndpage/internal/workload"
)

// System selects the simulated machine organization (Table I).
type System = memsys.Kind

// Simulated systems.
const (
	// CPU is the host-processor configuration: three cache levels,
	// DDR4-2400, cores four mesh hops from memory.
	CPU System = memsys.CPU
	// NDP is the near-data configuration: L1 only, HBM2, cores in the
	// logic layer one hop from their vault.
	NDP System = memsys.NDP
)

// Mechanism selects the address-translation design.
type Mechanism = core.Mechanism

// Translation mechanisms (paper Section VI), the two NDPage ablation
// variants, and the related-work mechanisms (DESIGN.md "Mechanism zoo").
const (
	Radix       Mechanism = core.Radix
	ECH         Mechanism = core.ECH
	HugePage    Mechanism = core.HugePage
	NDPage      Mechanism = core.NDPage
	Ideal       Mechanism = core.Ideal
	FlattenOnly Mechanism = core.FlattenOnly
	BypassOnly  Mechanism = core.BypassOnly
	Victima     Mechanism = core.Victima
	NMT         Mechanism = core.NMT
	PCAX        Mechanism = core.PCAX
)

// Mechanisms lists the paper's evaluated mechanisms in figure order.
func Mechanisms() []Mechanism {
	out := make([]Mechanism, len(core.Mechanisms))
	copy(out, core.Mechanisms)
	return out
}

// ParseMechanism resolves a mechanism name ("Radix", "ECH", "HugePage",
// "NDPage", "Ideal", "FlattenOnly", "BypassOnly", "Victima", "NMT",
// "PCAX").
func ParseMechanism(s string) (Mechanism, error) { return core.ParseMechanism(s) }

// Config describes one simulation. The zero values of the optional
// fields select the defaults used throughout the paper reproduction.
type Config = sim.Config

// Result carries every metric a run produces; see the methods
// (CPI, MeanPTWLatency, TranslationOverhead, TLBMissRate, ...).
type Result = sim.Result

// Run executes one simulation: build the machine, warm it up, measure,
// and collect statistics.
func Run(cfg Config) (*Result, error) { return sim.RunConfig(cfg) }

// WorkloadInfo describes one registry workload.
type WorkloadInfo struct {
	Name        string // registry name passed to Config.Workload
	Suite       string
	Description string
	// PaperDataset is the dataset size the paper evaluated with; this
	// reproduction scales footprints to the simulated 16 GB machine.
	// Empty for registered workloads.
	PaperDataset string
}

// Workloads lists the registry: the Table II benchmarks in the paper's
// figure order, followed by any workloads added with RegisterWorkload
// (sorted by name). Trace replays ("trace:<path>") are resolved on the
// fly and not listed.
func Workloads() []WorkloadInfo {
	var out []WorkloadInfo
	for _, name := range append(workload.Names(), workload.Registered()...) {
		s := workload.MustLookup(name)
		out = append(out, WorkloadInfo{s.Name, s.Suite, s.Description, s.PaperDataset})
	}
	return out
}
