package ndpage_test

// Benchmark harness: one benchmark per paper table/figure (DESIGN.md
// Section 4). Each benchmark regenerates its figure at a reduced scale
// (subset of workloads, smaller windows) and reports the figure's
// headline quantity via b.ReportMetric, so `go test -bench .` both
// exercises the full pipeline and prints the reproduction's key numbers.
// Every benchmark also reports allocations (b.ReportAllocs): the
// simulator's per-instruction path is allocation-free in steady state,
// and the allocs/op columns are what the CI bench job budgets against.
// Full-scale tables come from `go run ./cmd/ndpexp`.

import (
	"context"
	"strconv"
	"testing"

	"ndpage"
	"ndpage/internal/engine"
)

// benchExperiments returns a reduced-scale experiment runner. Three
// workloads cover the three pattern classes: uniform random (rnd), graph
// gather (pr), hot/cold hashing with growth (gen).
func benchExperiments() *ndpage.Experiments {
	return &ndpage.Experiments{
		Instructions: 40_000,
		Warmup:       8_000,
		Footprint:    1 << 30,
		Workloads:    []string{"rnd", "pr", "gen"},
	}
}

// benchTable fails the benchmark on a simulation error and returns the
// table otherwise.
func benchTable(b *testing.B, f func() (*ndpage.Table, error)) *ndpage.Table {
	b.Helper()
	t, err := f()
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// cellAt parses the numeric cell at (row, col) of a table. Cells may
// carry a % or x suffix.
func cellAt(b *testing.B, t *ndpage.Table, row, col int) float64 {
	b.Helper()
	s := t.Rows[row][col]
	for len(s) > 0 && (s[len(s)-1] == '%' || s[len(s)-1] == 'x') {
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", t.Rows[row][col], err)
	}
	return v
}

// lastCell parses the numeric cell at the given column of a table's last
// (summary) row.
func lastCell(b *testing.B, t *ndpage.Table, col int) float64 {
	b.Helper()
	return cellAt(b, t, len(t.Rows)-1, col)
}

func BenchmarkFig04_PTWLatency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := benchTable(b, benchExperiments().Fig4)
		b.ReportMetric(lastCell(b, t, 1), "cpu-ptw-cycles")
		b.ReportMetric(lastCell(b, t, 2), "ndp-ptw-cycles")
	}
}

func BenchmarkFig05_TranslationOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := benchTable(b, benchExperiments().Fig5)
		b.ReportMetric(lastCell(b, t, 1), "cpu-xlat-pct")
		b.ReportMetric(lastCell(b, t, 2), "ndp-xlat-pct")
	}
}

func BenchmarkFig06_CoreScaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := benchTable(b, benchExperiments().Fig6)
		// Last row is the 8-core row; column 2 is NDP PTW.
		b.ReportMetric(lastCell(b, t, 2), "ndp-ptw-8core")
	}
}

func BenchmarkFig07_CachePollution(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := benchTable(b, benchExperiments().Fig7)
		b.ReportMetric(lastCell(b, t, 1), "data-ideal-miss-pct")
		b.ReportMetric(lastCell(b, t, 2), "data-actual-miss-pct")
		b.ReportMetric(lastCell(b, t, 3), "metadata-miss-pct")
	}
}

func BenchmarkFig08_Occupancy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := benchTable(b, benchExperiments().Fig8)
		// Report the PL1 occupancy of the last workload row.
		b.ReportMetric(lastCell(b, t, 4), "pl1-occupancy-pct")
		b.ReportMetric(lastCell(b, t, 2), "pl3-occupancy-pct")
	}
}

func BenchmarkMotivation_SectionIVA(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := benchExperiments()
		// Motivation rows: TLB miss rate, PTE access share, NDP/CPU PTE
		// DRAM traffic ratio (Section IV-A's three scalars).
		t := benchTable(b, e.Motivation)
		b.ReportMetric(cellAt(b, t, 0, 1), "tlb-miss-pct")
		b.ReportMetric(cellAt(b, t, 1, 1), "pte-share-pct")
		b.ReportMetric(cellAt(b, t, 2, 1), "pte-dram-ratio")
		// PWCRates rows: PL4, PL3, PL2 hit rates (Section V-C).
		p := benchTable(b, e.PWCRates)
		b.ReportMetric(cellAt(b, p, 1, 1), "pwc-pl3-pct")
		b.ReportMetric(cellAt(b, p, 2, 1), "pwc-pl2-pct")
	}
}

func BenchmarkFig12_SingleCoreSpeedup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := benchTable(b, benchExperiments().Fig12)
		b.ReportMetric(lastCell(b, t, 1), "ech-speedup")
		b.ReportMetric(lastCell(b, t, 3), "ndpage-speedup")
	}
}

func BenchmarkFig13_QuadCoreSpeedup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := benchTable(b, benchExperiments().Fig13)
		b.ReportMetric(lastCell(b, t, 3), "ndpage-speedup")
	}
}

func BenchmarkFig14_OctaCoreSpeedup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := benchTable(b, benchExperiments().Fig14)
		b.ReportMetric(lastCell(b, t, 3), "ndpage-speedup")
		b.ReportMetric(lastCell(b, t, 2), "hugepage-speedup")
	}
}

func BenchmarkAblation_NDPageDecomposition(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := benchTable(b, benchExperiments().Ablation)
		b.ReportMetric(lastCell(b, t, 1), "bypass-only-speedup")
		b.ReportMetric(lastCell(b, t, 2), "flatten-only-speedup")
		b.ReportMetric(lastCell(b, t, 3), "ndpage-speedup")
	}
}

// tickActor is BenchmarkEngineStep's typed actor: every delivered event
// reschedules itself with a deterministic, actor-dependent stride until
// the budget is spent — the schedule+dispatch pattern the engine
// performs once per simulated instruction.
type tickActor struct {
	eng       *engine.Engine
	id        int
	remaining *int
}

func (a *tickActor) OnEvent(now uint64, kind uint8, payload uint64) {
	if *a.remaining <= 0 {
		return
	}
	*a.remaining--
	a.eng.Schedule(now+uint64(7+a.id%13), a.id, a, 0, 0)
}

// BenchmarkEngineStep measures the event queue itself: typed-event
// schedule+dispatch operations per second with a machine-sized actor
// population, the operation the engine performs once per simulated
// instruction (replacing the old O(cores) min-clock scan).
func BenchmarkEngineStep(b *testing.B) {
	b.ReportAllocs()
	const actors = 64
	eng := engine.New()
	remaining := b.N
	ticks := make([]tickActor, actors)
	for i := range ticks {
		ticks[i] = tickActor{eng: eng, id: i, remaining: &remaining}
	}
	b.ResetTimer()
	for i := range ticks {
		eng.Schedule(uint64(i), i, &ticks[i], 0, 0)
	}
	eng.Run()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkRunSmall measures full small simulations per second (build +
// warmup + measure), the unit of work the exp Runner fans out; the
// sims/s metric is the number to watch across engine changes.
func BenchmarkRunSmall(b *testing.B) {
	b.ReportAllocs()
	cfg := ndpage.Config{
		System:         ndpage.NDP,
		Cores:          4,
		Mechanism:      ndpage.Radix,
		Workload:       "rnd",
		FootprintBytes: 128 << 20,
		MemoryBytes:    2 << 30,
		Warmup:         2_000,
		Instructions:   10_000,
		Seed:           7,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ndpage.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sims/s")
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// instructions per wall-clock second for the default NDP/NDPage setup.
// Machine construction is inside the loop (each iteration is one full
// run), so allocs/op here is per-simulation; the per-instruction
// steady-state allocation budget is measured by
// internal/sim.BenchmarkStepThroughput.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	cfg := ndpage.Config{
		System:         ndpage.NDP,
		Cores:          4,
		Mechanism:      ndpage.NDPage,
		Workload:       "bfs",
		FootprintBytes: 512 << 20,
		Warmup:         5_000,
		Instructions:   50_000,
	}
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		res, err := ndpage.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		instr += res.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sim-instr/s")
}

// sweepReplications builds a figure-style replication sweep: the same
// small configuration under distinct seeds, so every run is a genuine
// simulation (no dedupe) of equal weight.
func sweepReplications(n int) []ndpage.Config {
	cfgs := make([]ndpage.Config, n)
	for i := range cfgs {
		cfgs[i] = ndpage.Config{
			System:         ndpage.NDP,
			Cores:          4,
			Mechanism:      ndpage.NDPage,
			Workload:       "rnd",
			FootprintBytes: 128 << 20,
			MemoryBytes:    2 << 30,
			Warmup:         2_000,
			Instructions:   10_000,
			Seed:           uint64(i + 1),
		}
	}
	return cfgs
}

// benchSweep runs one replication sweep per iteration through run (a
// fresh Runner each time, so the store never short-circuits the work)
// and reports aggregate simulated instructions per second — the number
// sharding is meant to scale with cores.
func benchSweep(b *testing.B, run func(cfgs []ndpage.Config) ([]*ndpage.Result, error)) {
	b.ReportAllocs()
	cfgs := sweepReplications(8)
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		out, err := run(cfgs)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range out {
			instr += res.Instructions
		}
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sweep-instr/s")
}

// BenchmarkSweepSerial is the sharding baseline: the same replication
// sweep on a single worker.
func BenchmarkSweepSerial(b *testing.B) {
	benchSweep(b, func(cfgs []ndpage.Config) ([]*ndpage.Result, error) {
		r := &ndpage.Sweep{Parallel: 1}
		return r.Run(context.Background(), cfgs)
	})
}

// BenchmarkSweepSharded measures the sharded replication runner at one
// shard per CPU. The sweep-instr/s ratio against BenchmarkSweepSerial is
// the multicore scaling the bench gates check (only meaningful when
// GOMAXPROCS > 1; a single-CPU machine runs the shards sequentially).
func BenchmarkSweepSharded(b *testing.B) {
	benchSweep(b, func(cfgs []ndpage.Config) ([]*ndpage.Result, error) {
		r := &ndpage.Sweep{}
		return r.RunSharded(context.Background(), cfgs, 0)
	})
}

func BenchmarkSensitivity_Oversubscription(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := &ndpage.Experiments{
			Instructions: 20_000,
			Warmup:       4_000,
			Footprint:    512 << 20,
		}
		t := benchTable(b, e.OversubscriptionStudy)
		b.ReportMetric(lastCell(b, t, 3), "ndpage-oversub-slowdown")
	}
}
