module ndpage

go 1.24
