// Package tlb models translation lookaside buffers: set-associative,
// LRU-replaced caches of virtual-to-physical page translations supporting
// mixed 4 KB and 2 MB entries (Table I: L1 ITLB 128-entry/4-way, L1 DTLB
// 64-entry/4-way, unified L2 TLB 1536-entry).
//
// A huge-page entry covers 512 base pages, which is how the Huge Page
// mechanism multiplies TLB reach. Both page sizes share the same physical
// array; a lookup probes the 4 KB tag and the 2 MB tag (in hardware these
// are parallel sub-arrays probed in the same cycle, so a single latency is
// charged).
package tlb

import (
	"fmt"

	"ndpage/internal/addr"
	"ndpage/internal/assoc"
	"ndpage/internal/stats"
)

// Config describes one TLB level.
type Config struct {
	Name    string
	Entries int
	Ways    int
	Latency uint64 // cycles
	// NoHuge marks a TLB that holds only 4 KB entries. Many x86 second-
	// level TLBs do not cache 2 MB translations (e.g. Sandy-Bridge-class
	// STLBs), which bounds the Huge Page mechanism's reach to the small
	// first-level array — one of the reasons huge pages underdeliver in
	// the paper's evaluation.
	NoHuge bool
	// HugeEntries, when positive, gives 2 MB translations their own
	// sub-array of this many entries (HugeWays-associative) instead of
	// sharing the main array — the usual x86 first-level organization
	// (e.g. 32-entry 2M DTLBs on Haswell-class cores).
	HugeEntries int
	HugeWays    int
}

// L1D returns the Table I L1 data TLB: 64-entry, 4-way, 1 cycle, with a
// separate 32-entry 2M sub-array.
func L1D() Config {
	return Config{Name: "L1-DTLB", Entries: 64, Ways: 4, Latency: 1, HugeEntries: 32, HugeWays: 4}
}

// L1I returns the Table I L1 instruction TLB: 128-entry, 4-way, 1 cycle,
// with a separate 8-entry 2M sub-array.
func L1I() Config {
	return Config{Name: "L1-ITLB", Entries: 128, Ways: 4, Latency: 1, HugeEntries: 8, HugeWays: 8}
}

// L2 returns the Table I unified L2 TLB: 1536-entry, 12-way, 12 cycles,
// 4 KB entries only.
func L2() Config {
	return Config{Name: "L2-TLB", Entries: 1536, Ways: 12, Latency: 12, NoHuge: true}
}

// Entry is a cached translation. For Huge entries, PFN is the frame of the
// first 4 KB page of the 2 MB region.
type Entry struct {
	PFN  addr.PFN
	Huge bool
}

// Translate applies the entry to a specific VPN, resolving the frame for
// that page (identity for 4 KB entries; base+offset within huge regions).
func (e Entry) Translate(vpn addr.VPN) addr.PFN {
	if !e.Huge {
		return e.PFN
	}
	return e.PFN + addr.PFN(uint64(vpn)&(addr.EntriesPerTable-1))
}

// key4 and keyHuge embed the page size in the tag so both sizes coexist.
func key4(vpn addr.VPN) uint64    { return uint64(vpn) << 1 }
func keyHuge(vpn addr.VPN) uint64 { return uint64(vpn)>>addr.LevelBits<<1 | 1 }

// TLB is one translation cache level. Not safe for concurrent use.
type TLB struct {
	cfg   Config
	table *assoc.Table[Entry]
	huge  *assoc.Table[Entry] // separate 2M sub-array, nil when shared
	stats stats.HitMiss
}

// New builds a TLB; Entries/Ways must give a power-of-two set count.
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic(fmt.Sprintf("tlb %q: invalid geometry %+v", cfg.Name, cfg))
	}
	t := &TLB{cfg: cfg, table: assoc.New[Entry](cfg.Entries/cfg.Ways, cfg.Ways)}
	if cfg.HugeEntries > 0 {
		if cfg.HugeWays <= 0 || cfg.HugeEntries%cfg.HugeWays != 0 {
			panic(fmt.Sprintf("tlb %q: invalid huge sub-array geometry %+v", cfg.Name, cfg))
		}
		t.huge = assoc.New[Entry](cfg.HugeEntries/cfg.HugeWays, cfg.HugeWays)
	}
	return t
}

// Name returns the configured name.
func (t *TLB) Name() string { return t.cfg.Name }

// Latency returns the probe latency in cycles.
func (t *TLB) Latency() uint64 { return t.cfg.Latency }

// Stats returns the live hit/miss counters.
func (t *TLB) Stats() *stats.HitMiss { return &t.stats }

// ResetStats zeroes the counters (array contents are preserved).
func (t *TLB) ResetStats() { t.stats = stats.HitMiss{} }

// Lookup probes for vpn at both page sizes (parallel sub-arrays in
// hardware, one latency), recording one hit or miss.
func (t *TLB) Lookup(vpn addr.VPN) (Entry, bool) {
	if e, ok := t.table.Lookup(key4(vpn)); ok {
		t.stats.Hit()
		return e, true
	}
	if !t.cfg.NoHuge {
		arr := t.table
		if t.huge != nil {
			arr = t.huge
		}
		if e, ok := arr.Lookup(keyHuge(vpn)); ok {
			t.stats.Hit()
			return e, true
		}
	}
	t.stats.Miss()
	return Entry{}, false
}

// Insert caches a translation for the page containing vpn. Huge entries
// are tagged by their 2 MB region and go to the huge sub-array when one
// exists; a NoHuge TLB silently drops them.
func (t *TLB) Insert(vpn addr.VPN, e Entry) {
	if e.Huge {
		if t.cfg.NoHuge {
			return
		}
		if t.huge != nil {
			t.huge.Insert(keyHuge(vpn), e)
		} else {
			t.table.Insert(keyHuge(vpn), e)
		}
	} else {
		t.table.Insert(key4(vpn), e)
	}
}

// Invalidate removes any entry covering vpn (both page sizes).
func (t *TLB) Invalidate(vpn addr.VPN) {
	t.table.Invalidate(key4(vpn))
	t.table.Invalidate(keyHuge(vpn))
	if t.huge != nil {
		t.huge.Invalidate(keyHuge(vpn))
	}
}

// Flush empties the TLB (counters preserved).
func (t *TLB) Flush() {
	t.table.Flush()
	if t.huge != nil {
		t.huge.Flush()
	}
}

// Len returns the number of valid entries across both arrays.
func (t *TLB) Len() int {
	n := t.table.Len()
	if t.huge != nil {
		n += t.huge.Len()
	}
	return n
}
