package tlb

import (
	"fmt"

	"ndpage/internal/addr"
	"ndpage/internal/assoc"
	"ndpage/internal/stats"
)

// PCXConfig describes the PC-indexed translation table of the PCAX
// mechanism.
type PCXConfig struct {
	Name    string
	Entries int
	Ways    int
	Latency uint64 // cycles
}

// DefaultPCX returns the evaluated PCAX geometry: 512 entries, 4-way,
// probed in one cycle alongside the L2 TLB path.
func DefaultPCX() PCXConfig {
	return PCXConfig{Name: "PCX", Entries: 512, Ways: 4, Latency: 1}
}

// pcxEntry pairs the cached translation with the page it was learned
// for: a static instruction tends to keep touching the same page, and
// the stored VPN is how a probe tells reuse from a stride onto a new
// page.
type pcxEntry struct {
	vpn addr.VPN
	e   Entry
}

// PCX is a PC-indexed translation table (the PCAX mechanism): entries
// are keyed by the issuing instruction's PC rather than the accessed
// page, exploiting the stability of the page each static memory
// instruction touches. Consulted on L1-TLB miss; filled on walk
// completion. Not safe for concurrent use.
type PCX struct {
	cfg   PCXConfig
	table *assoc.Table[pcxEntry]
	stats stats.HitMiss
}

// NewPCX builds the table; Entries/Ways must give a power-of-two set
// count.
func NewPCX(cfg PCXConfig) *PCX {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic(fmt.Sprintf("tlb %q: invalid PCX geometry %+v", cfg.Name, cfg))
	}
	return &PCX{cfg: cfg, table: assoc.New[pcxEntry](cfg.Entries/cfg.Ways, cfg.Ways)}
}

// Latency returns the probe latency in cycles.
func (p *PCX) Latency() uint64 { return p.cfg.Latency }

// Stats returns the live hit/miss counters.
func (p *PCX) Stats() *stats.HitMiss { return &p.stats }

// ResetStats zeroes the counters (contents preserved).
func (p *PCX) ResetStats() { p.stats = stats.HitMiss{} }

// Lookup probes the entry for pc and returns its translation when it
// still covers vpn; a stored entry for a different page is a miss (the
// instruction moved on).
func (p *PCX) Lookup(pc uint64, vpn addr.VPN) (Entry, bool) {
	ent, ok := p.table.Lookup(pc)
	if ok && ent.vpn == vpn {
		p.stats.Hit()
		return ent.e, true
	}
	p.stats.Miss()
	return Entry{}, false
}

// Insert caches pc's latest translation.
func (p *PCX) Insert(pc uint64, vpn addr.VPN, e Entry) {
	p.table.Insert(pc, pcxEntry{vpn: vpn, e: e})
}

// Len returns the number of valid entries.
func (p *PCX) Len() int { return p.table.Len() }
