package tlb

import (
	"testing"

	"ndpage/internal/addr"
)

func TestGeometryValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "zero", Entries: 0, Ways: 4},
		{Name: "noways", Entries: 64, Ways: 0},
		{Name: "ragged", Entries: 65, Ways: 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%q) did not panic", cfg.Name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestPresetsConstruct(t *testing.T) {
	for _, cfg := range []Config{L1D(), L1I(), L2()} {
		tl := New(cfg)
		if tl.Name() != cfg.Name || tl.Latency() != cfg.Latency {
			t.Errorf("%s: accessor mismatch", cfg.Name)
		}
	}
	if L2().Entries != 1536 || L2().Ways != 12 {
		t.Error("L2 TLB must be 1536-entry 12-way per Table I")
	}
}

func TestMissThenHit(t *testing.T) {
	tl := New(L1D())
	if _, ok := tl.Lookup(100); ok {
		t.Fatal("cold lookup hit")
	}
	tl.Insert(100, Entry{PFN: 555})
	e, ok := tl.Lookup(100)
	if !ok || e.PFN != 555 {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	s := tl.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestHugeEntryCovers512Pages(t *testing.T) {
	tl := New(L1D())
	// A huge entry inserted for any vpn in the region serves the whole
	// 2 MB region.
	base := addr.VPN(4096) // 2MB-aligned (4096 = 8*512)
	tl.Insert(base+17, Entry{PFN: 9000, Huge: true})
	for _, off := range []addr.VPN{0, 1, 17, 255, 511} {
		e, ok := tl.Lookup(base + off)
		if !ok {
			t.Fatalf("huge lookup missed at offset %d", off)
		}
		if got := e.Translate(base + off); got != 9000+addr.PFN(off) {
			t.Errorf("Translate(base+%d) = %d, want %d", off, got, 9000+addr.PFN(off))
		}
	}
	// Next 2 MB region must miss.
	if _, ok := tl.Lookup(base + 512); ok {
		t.Error("adjacent huge region hit")
	}
}

func Test4KTranslateIdentity(t *testing.T) {
	e := Entry{PFN: 77}
	if e.Translate(12345) != 77 {
		t.Error("4K Translate must return the stored PFN")
	}
}

func TestMixedSizesCoexist(t *testing.T) {
	tl := New(L1D())
	tl.Insert(1000, Entry{PFN: 1})
	tl.Insert(addr.VPN(512*9), Entry{PFN: 2, Huge: true})
	if _, ok := tl.Lookup(1000); !ok {
		t.Error("4K entry lost")
	}
	if _, ok := tl.Lookup(addr.VPN(512*9 + 3)); !ok {
		t.Error("huge entry lost")
	}
}

func TestNoHugeTLBDropsHugeEntries(t *testing.T) {
	tl := New(L2())
	if !New(L2()).cfg.NoHuge {
		t.Fatal("Table I L2 TLB must be 4K-only in this model")
	}
	tl.Insert(addr.VPN(512*3), Entry{PFN: 9, Huge: true})
	if tl.Len() != 0 {
		t.Error("NoHuge TLB stored a huge entry")
	}
	if _, ok := tl.Lookup(addr.VPN(512*3 + 1)); ok {
		t.Error("NoHuge TLB hit a huge translation")
	}
	// 4K entries still work.
	tl.Insert(7, Entry{PFN: 1})
	if _, ok := tl.Lookup(7); !ok {
		t.Error("NoHuge TLB lost a 4K entry")
	}
}

func TestReachExceededCausesMisses(t *testing.T) {
	// Random-ish pages far beyond capacity must keep missing: this is
	// the workload regime of the paper (91.27% TLB miss rate).
	tl := New(L1D())
	misses := 0
	const n = 10000
	for i := 0; i < n; i++ {
		vpn := addr.VPN(i * 977) // stride sweep, no reuse
		if _, ok := tl.Lookup(vpn); !ok {
			misses++
			tl.Insert(vpn, Entry{PFN: addr.PFN(i)})
		}
	}
	if rate := float64(misses) / n; rate < 0.99 {
		t.Errorf("no-reuse sweep miss rate = %.3f, want ~1", rate)
	}
}

func TestSmallWorkingSetHits(t *testing.T) {
	tl := New(L1D())
	for pass := 0; pass < 4; pass++ {
		for vpn := addr.VPN(0); vpn < 32; vpn++ {
			if _, ok := tl.Lookup(vpn); !ok {
				tl.Insert(vpn, Entry{PFN: addr.PFN(vpn)})
			}
		}
	}
	// 32 pages fit in 64 entries: only cold misses.
	if got := tl.Stats().Misses.Value(); got != 32 {
		t.Errorf("misses = %d, want 32 cold misses", got)
	}
}

func TestInvalidate(t *testing.T) {
	tl := New(L1D())
	tl.Insert(5, Entry{PFN: 1})
	tl.Insert(addr.VPN(512*2), Entry{PFN: 2, Huge: true})
	tl.Invalidate(5)
	tl.Invalidate(addr.VPN(512*2 + 7))
	if tl.Len() != 0 {
		t.Errorf("Len = %d after invalidating both entries", tl.Len())
	}
}

func TestFlushAndResetStats(t *testing.T) {
	tl := New(L1D())
	tl.Insert(1, Entry{PFN: 1})
	tl.Lookup(1)
	tl.Flush()
	if tl.Len() != 0 {
		t.Error("Flush left entries")
	}
	if tl.Stats().Total() == 0 {
		t.Error("Flush must preserve counters")
	}
	tl.ResetStats()
	if tl.Stats().Total() != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func BenchmarkTLBLookupHit(b *testing.B) {
	tl := New(L2())
	tl.Insert(7, Entry{PFN: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Lookup(7)
	}
}

func BenchmarkTLBLookupMiss(b *testing.B) {
	tl := New(L2())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Lookup(addr.VPN(i))
	}
}
