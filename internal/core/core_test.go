package core

import (
	"strings"
	"testing"

	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/memsys"
	"ndpage/internal/osmm"
	"ndpage/internal/phys"
)

func newNDPHierarchy(mech Mechanism, cores int) *memsys.Hierarchy {
	cfg := memsys.Default(memsys.NDP, cores)
	cfg.BypassL1PTE = mech.BypassL1PTE()
	return memsys.New(cfg)
}

// rig builds one core's MMU over a freshly mapped 64 MB region.
func rig(t *testing.T, mech Mechanism) (*MMU, addr.V) {
	t.Helper()
	alloc := phys.New(1 << 30)
	table := mech.NewTable(alloc)
	as := osmm.New(table, alloc, osmm.DefaultConfig(mech.Policy(), alloc.TotalFrames()))
	base := as.Alloc(64<<20, "data")
	mem := newNDPHierarchy(mech, 1)
	return NewMMU(mech, 0, table, mem), base
}

func TestMechanismStringAndParse(t *testing.T) {
	for _, m := range Mechanisms {
		got, err := ParseMechanism(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v failed: %v, %v", m, got, err)
		}
	}
	if _, err := ParseMechanism("bogus"); err == nil {
		t.Error("ParseMechanism accepted junk")
	}
	if !strings.Contains(Mechanism(99).String(), "99") {
		t.Error("unknown mechanism String")
	}
}

func TestMechanismProperties(t *testing.T) {
	if Radix.BypassL1PTE() || ECH.BypassL1PTE() || HugePage.BypassL1PTE() {
		t.Error("only NDPage bypasses the L1")
	}
	if !NDPage.BypassL1PTE() {
		t.Error("NDPage must bypass the L1")
	}
	if HugePage.Policy() != osmm.Huge2M {
		t.Error("HugePage needs the 2MB OS policy")
	}
	if Radix.Policy() != osmm.Base4K {
		t.Error("Radix uses 4K pages")
	}
	alloc := phys.New(256 << 20)
	if k := Radix.NewTable(alloc).Kind(); k != "radix" {
		t.Errorf("Radix table = %s", k)
	}
	if k := NDPage.NewTable(alloc).Kind(); k != "flattened" {
		t.Errorf("NDPage table = %s", k)
	}
	if k := ECH.NewTable(alloc).Kind(); k != "cuckoo" {
		t.Errorf("ECH table = %s", k)
	}
	if _, ok := ECH.PWCConfig(); ok {
		t.Error("ECH has no PWCs")
	}
	if cfg, ok := NDPage.PWCConfig(); !ok || len(cfg.Levels) != 2 {
		t.Error("NDPage PWCs must cover exactly PL4 and PL3")
	}
}

func TestTranslateCorrectness(t *testing.T) {
	for _, mech := range Mechanisms {
		mmu, base := rig(t, mech)
		// Consecutive bytes in one page translate contiguously.
		pa1, _ := mmu.Translate(0, base+100, access.Read)
		pa2, _ := mmu.Translate(1000, base+101, access.Read)
		if pa2 != pa1+1 {
			t.Errorf("%v: intra-page contiguity broken", mech)
		}
		// Distinct pages map to distinct frames.
		pa3, _ := mmu.Translate(2000, base+addr.PageSize+100, access.Read)
		if pa3.Page() == pa1.Page() {
			t.Errorf("%v: distinct pages share a frame", mech)
		}
	}
}

func TestIdealIsFree(t *testing.T) {
	mmu, base := rig(t, Ideal)
	_, done := mmu.Translate(12345, base, access.Read)
	if done != 12345 {
		t.Fatalf("Ideal translation took %d cycles", done-12345)
	}
	if mmu.Stats().PTEAccesses != 0 || mmu.Stats().Walks != 0 {
		t.Error("Ideal issued PTE traffic")
	}
}

func TestTLBHitFastPath(t *testing.T) {
	mmu, base := rig(t, Radix)
	_, t1 := mmu.Translate(0, base, access.Read) // cold: full walk
	cold := t1
	start := t1 + 100
	_, t2 := mmu.Translate(start, base, access.Read)
	if t2-start != mmu.DTLB().Latency() {
		t.Errorf("warm translation = %d cycles, want L1 TLB latency %d",
			t2-start, mmu.DTLB().Latency())
	}
	if cold <= t2-start {
		t.Error("cold walk should cost more than a TLB hit")
	}
}

func TestL2TLBPath(t *testing.T) {
	mmu, base := rig(t, Radix)
	mmu.Translate(0, base, access.Read)
	// Flood the tiny L1 DTLB with other pages; base stays in the 1536-
	// entry L2 TLB.
	tNow := uint64(100000)
	for i := 1; i <= 128; i++ {
		_, tNow = mmu.Translate(tNow, base+addr.V(i*addr.PageSize), access.Read)
	}
	start := tNow + 10
	_, end := mmu.Translate(start, base, access.Read)
	want := mmu.DTLB().Latency() + mmu.STLB().Latency()
	if end-start != want {
		t.Errorf("L2 TLB hit = %d cycles, want %d", end-start, want)
	}
}

func TestWalkDepthPerMechanism(t *testing.T) {
	// With cold PWCs and cold caches, the first walk's PTE accesses:
	// Radix 4, NDPage 3, ECH 3 (parallel), HugePage 3 (2MB leaf at PL2).
	want := map[Mechanism]uint64{Radix: 4, NDPage: 3, ECH: 3, HugePage: 3}
	for mech, n := range want {
		mmu, base := rig(t, mech)
		mmu.Translate(0, base, access.Read)
		if got := mmu.Stats().PTEAccesses.Value(); got != n {
			t.Errorf("%v: first walk issued %d PTE accesses, want %d", mech, got, n)
		}
	}
}

func TestPWCShortensSecondWalk(t *testing.T) {
	mmu, base := rig(t, Radix)
	mmu.Translate(0, base, access.Read) // fills PL4/PL3/PL2 PWC entries
	before := mmu.Stats().PTEAccesses.Value()
	// Different page, same 2 MB region: PL2 PWC hit -> only the PL1
	// PTE is read.
	mmu.Translate(100000, base+7*addr.PageSize, access.Read)
	if got := mmu.Stats().PTEAccesses.Value() - before; got != 1 {
		t.Errorf("PWC-assisted walk issued %d accesses, want 1", got)
	}
}

func TestNDPageWalkIsSingleAccessAfterPWC(t *testing.T) {
	mmu, base := rig(t, NDPage)
	mmu.Translate(0, base, access.Read)
	before := mmu.Stats().PTEAccesses.Value()
	// Page in a *different 2 MB region* of the same GB: radix would need
	// 2 accesses (PL2 PWC tags don't reach); NDPage needs 1 flattened
	// access after its PL3 PWC hit.
	mmu.Translate(100000, base+3*addr.HugePageSize, access.Read)
	if got := mmu.Stats().PTEAccesses.Value() - before; got != 1 {
		t.Errorf("NDPage cross-region walk = %d accesses, want 1", got)
	}
	// The same scenario under Radix costs 2 accesses.
	rmmu, rbase := rig(t, Radix)
	rmmu.Translate(0, rbase, access.Read)
	before = rmmu.Stats().PTEAccesses.Value()
	rmmu.Translate(100000, rbase+3*addr.HugePageSize, access.Read)
	if got := rmmu.Stats().PTEAccesses.Value() - before; got != 2 {
		t.Errorf("Radix cross-region walk = %d accesses, want 2", got)
	}
}

func TestECHWalkLatencyIsMaxNotSum(t *testing.T) {
	mmu, base := rig(t, ECH)
	start := uint64(0)
	_, end := mmu.Translate(start, base, access.Read)
	walk := mmu.Stats().WalkCycles.Value()
	// Three parallel HBM accesses from idle banks complete in roughly
	// one access time (plus possible bus serialization), far less than
	// 3x. One access ~ 4+110+4+4 = 122.
	if walk > 2*130 {
		t.Errorf("ECH walk latency %d looks sequential, want ~1 access", walk)
	}
	if end-start < 100 {
		t.Errorf("ECH walk latency %d suspiciously low", end-start)
	}
}

func TestNDPageBypassKeepsPTEsOutOfL1(t *testing.T) {
	alloc := phys.New(1 << 30)
	table := NDPage.NewTable(alloc)
	as := osmm.New(table, alloc, osmm.DefaultConfig(osmm.Base4K, alloc.TotalFrames()))
	base := as.Alloc(64<<20, "data")
	mem := newNDPHierarchy(NDPage, 1)
	mmu := NewMMU(NDPage, 0, table, mem)
	tNow := uint64(0)
	for i := 0; i < 200; i++ {
		_, tNow = mmu.Translate(tNow, base+addr.V(i*addr.PageSize*3), access.Read)
	}
	l1 := mem.L1D(0).Stats()
	if l1.PerClass[access.PTE].Total() != 0 {
		t.Error("bypass enabled but PTE accesses probed the L1")
	}
	if l1.Bypassed.Value() == 0 {
		t.Error("no bypasses recorded")
	}
}

func TestRadixPTEsDoEnterL1(t *testing.T) {
	mmu, base := rig(t, Radix)
	tNow := uint64(0)
	for i := 0; i < 50; i++ {
		_, tNow = mmu.Translate(tNow, base+addr.V(i*addr.PageSize*3), access.Read)
	}
	// Baseline: PTE lookups hit the L1 cache path (pollution).
	// Access the hierarchy through the MMU's walks only.
	// The L1 must have seen PTE-class traffic.
	stats := mmu.Stats()
	if stats.PTEAccesses.Value() == 0 {
		t.Fatal("no walks happened")
	}
}

func TestHugePageTLBReach(t *testing.T) {
	mmu, base := rig(t, HugePage)
	// Touch every page of a 2 MB chunk: a single TLB entry serves all.
	tNow := uint64(0)
	for i := 0; i < 512; i++ {
		_, tNow = mmu.Translate(tNow, base+addr.V(i*addr.PageSize), access.Read)
	}
	s := mmu.DTLB().Stats()
	if s.Misses.Value() != 1 {
		t.Errorf("huge-page sweep: %d DTLB misses, want 1", s.Misses.Value())
	}
	if mmu.Stats().Walks.Value() != 1 {
		t.Errorf("huge-page sweep: %d walks, want 1", mmu.Stats().Walks.Value())
	}
}

func TestTranslateCodePopulatesITLB(t *testing.T) {
	mmu, base := rig(t, Radix)
	pa := mmu.TranslateCode(base)
	if pa2 := mmu.TranslateCode(base + 4); pa2 != pa+4 {
		t.Error("code translation not contiguous")
	}
	if mmu.ITLB().Stats().Hits.Value() == 0 {
		t.Error("second code fetch should hit the ITLB")
	}
}

func TestUnmappedPanics(t *testing.T) {
	mmu, _ := rig(t, Radix)
	defer func() {
		if recover() == nil {
			t.Error("unmapped translation did not panic")
		}
	}()
	mmu.Translate(0, addr.V(0x7000_0000_0000), access.Read)
}

func TestResetStats(t *testing.T) {
	mmu, base := rig(t, Radix)
	mmu.Translate(0, base, access.Read)
	mmu.ResetStats()
	s := mmu.Stats()
	if s.Walks != 0 || s.TranslationCycles != 0 {
		t.Error("MMU stats not reset")
	}
	if mmu.DTLB().Stats().Total() != 0 {
		t.Error("TLB stats not reset")
	}
	// Contents preserved: next translate is a TLB hit, not a walk.
	mmu.Translate(1000, base, access.Read)
	if s.Walks != 0 {
		t.Error("TLB contents were lost by ResetStats")
	}
}

func TestMeanWalkLatency(t *testing.T) {
	mmu, base := rig(t, Radix)
	mmu.Translate(0, base, access.Read)
	if mmu.Stats().MeanWalkLatency() <= 0 {
		t.Error("MeanWalkLatency not recorded")
	}
	if mmu.Stats().MaxWalkCycles < uint64(mmu.Stats().MeanWalkLatency()) {
		t.Error("max walk < mean walk")
	}
}

func TestECHWayPredictionReducesProbes(t *testing.T) {
	alloc := phys.New(1 << 30)
	table := ECH.NewTable(alloc)
	as := osmm.New(table, alloc, osmm.DefaultConfig(osmm.Base4K, alloc.TotalFrames()))
	base := as.Alloc(64<<20, "data")
	mem := newNDPHierarchy(ECH, 1)
	plain := NewMMU(ECH, 0, table, mem)
	predicted := NewMMUWithOptions(ECH, 0, table, memsys.New(memsys.Default(memsys.NDP, 1)),
		Options{ECHWayPrediction: true})

	// Walk the same 32KB region repeatedly: the CWC learns the way.
	tp, tq := uint64(0), uint64(0)
	var paP, paQ addr.P
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 8; i++ {
			v := base + addr.V(i*addr.PageSize)
			// Evict TLB entries between passes by using fresh MMock...
			// simpler: fresh addresses per pass beyond TLB reach are
			// not needed: first pass walks; later passes TLB-hit. So
			// compare first-pass traffic on many distinct regions.
			paP, tp = plain.Translate(tp, v, access.Read)
			paQ, tq = predicted.Translate(tq, v, access.Read)
			if paP != paQ {
				t.Fatalf("prediction changed translation: %#x vs %#x", paP, paQ)
			}
		}
	}
	// Cold walks over many regions: plain issues 3 probes per walk;
	// predicted issues ~1 after each region's first walk.
	for i := 0; i < 512; i++ {
		v := base + addr.V(8<<20) + addr.V(i*addr.PageSize)
		plain.Translate(tp, v, access.Read)
		predicted.Translate(tq, v, access.Read)
	}
	plainProbes := plain.Stats().PTEAccesses.Value()
	predProbes := predicted.Stats().PTEAccesses.Value()
	if predProbes >= plainProbes {
		t.Errorf("way prediction did not reduce probes: %d vs %d", predProbes, plainProbes)
	}
	// Sanity: prediction must not fall below 1 probe per walk.
	if predProbes < predicted.Stats().Walks.Value() {
		t.Errorf("fewer probes (%d) than walks (%d)", predProbes, predicted.Stats().Walks.Value())
	}
}
