package core

import (
	"fmt"

	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/memsys"
	"ndpage/internal/pagetable"
	"ndpage/internal/pwc"
	"ndpage/internal/stats"
	"ndpage/internal/tlb"
	"ndpage/internal/walker"
)

// Stats aggregates one MMU's translation activity. The walk counters
// mirror the MMU's walker (cluster-wide when the walker is shared); they
// are refreshed on every Stats call.
type Stats struct {
	Translations      stats.Counter
	TranslationCycles stats.Counter
	Walks             stats.Counter
	WalkCycles        stats.Counter
	MaxWalkCycles     uint64
	PTEAccesses       stats.Counter // PTE memory requests actually issued
	// IdentityHits and IdentityMisses count the NMT identity-segment
	// range check: hits resolve at identityCheckLat with no TLB or walk
	// activity; misses fall through to the conventional path. Zero
	// unless Options.Identity was set.
	IdentityHits   stats.Counter
	IdentityMisses stats.Counter
}

// MeanWalkLatency returns the average page-table-walk latency in cycles
// (Figure 4's metric).
func (s *Stats) MeanWalkLatency() float64 {
	return stats.Ratio(s.WalkCycles.Value(), s.Walks.Value())
}

// IdentityMapper is the OS-side contract for the NMT mechanism (Picorel
// et al., MEMSYS 2017): IdentityCovered reports whether v lies in an
// identity-mapped segment, where physical = virtual and the MMU may
// skip TLBs and walker entirely. osmm.AddressSpace satisfies it.
type IdentityMapper interface {
	IdentityCovered(v addr.V) bool
}

// identityCheckLat is the NMT range check's cost in cycles: a pair of
// bound registers compared in parallel with decode.
const identityCheckLat = 1

// WalkUnit bundles a hardware page-table walker with the page-walk
// caches it probes. One unit normally serves one MMU; a shared unit
// models a cluster-level walker serving every core's misses, which is
// where MSHR coalescing and slot contention appear.
type WalkUnit struct {
	Walker *walker.Walker
	PWCs   *pwc.PWC // nil when the mechanism has none (or disabled)
}

// NewWalkUnit assembles the walker and page-walk caches for mech over
// table, issuing PTE traffic to mem.
func NewWalkUnit(mech Mechanism, table pagetable.Table, mem *memsys.Hierarchy, opts Options) *WalkUnit {
	u := &WalkUnit{}
	wcfg := walker.Config{
		Width:         opts.WalkerWidth,
		WayPrediction: opts.ECHWayPrediction && mech == ECH,
	}
	if cfg, ok := mech.PWCConfig(); ok && !opts.DisablePWC {
		u.PWCs = pwc.New(cfg)
		wcfg.Cache = u.PWCs
	}
	if mech == Victima && mem != nil {
		// The hierarchy owns the translation-block store (built when its
		// VictimaGate is set); the guard keeps the interface nil — not
		// typed-nil — when the store is absent.
		if v := mem.Victima(); v != nil {
			wcfg.Xlat = v
		}
	}
	u.Walker = walker.New(table, mem, wcfg)
	return u
}

// MMU is one core's memory-management unit: L1 D/I TLBs, a unified L2
// TLB, and a walk unit (page-walk caches plus a hardware walker) over
// the mechanism's page table. The MMU itself is a thin TLB front-end;
// every miss is delegated to the walker. Not safe for concurrent use.
type MMU struct {
	mech   Mechanism
	coreID int
	dtlb   *tlb.TLB
	itlb   *tlb.TLB
	stlb   *tlb.TLB
	unit   *WalkUnit
	table  pagetable.Table

	// identity is the NMT identity-segment range check (nil unless
	// Options.Identity was set); pcx is the PCAX PC-indexed table (nil
	// unless Options.PCXEntries was set).
	identity IdentityMapper
	pcx      *tlb.PCX

	// dtlbLat/stlbLat cache the constant probe latencies: Translate runs
	// per simulated load/store and the TLB hit path should read MMU-local
	// fields, not chase each TLB's config.
	dtlbLat uint64
	stlbLat uint64
	pcxLat  uint64

	// xlatFree heads the free list of pooled async-translation records,
	// so a TLB miss in the event-scheduled path allocates nothing in
	// steady state.
	xlatFree *xlatReq

	stats Stats
}

// TranslationClient receives the completion of an asynchronous
// translation: the physical address and the absolute time it resolved.
// Implementations are caller-owned records (the simulator pools its
// in-flight memory ops), invoked exactly once per TranslateAsync call.
type TranslationClient interface {
	OnTranslated(pa addr.P, at uint64)
}

// xlatReq is one in-flight asynchronous translation: the context the
// MMU needs to fill its TLBs and account latency when the walk's
// completion event fires. Records are pooled on the MMU's free list and
// registered with the walker as Waiters, so a miss allocates nothing.
type xlatReq struct {
	m      *MMU
	vpn    addr.VPN
	v      addr.V
	now    uint64
	pc     uint64
	client TranslationClient
	next   *xlatReq
}

var _ walker.Waiter = (*xlatReq)(nil)

// OnWalkDone implements walker.Waiter: fill the TLBs, account the
// translation latency, recycle the record, and hand the result to the
// client.
func (r *xlatReq) OnWalkDone(resp walker.Response) {
	m := r.m
	if !resp.Found {
		panic(unmapped(r.v))
	}
	te := tlb.Entry{PFN: resp.Entry.PFN, Huge: resp.Entry.Huge}
	m.dtlb.Insert(r.vpn, te)
	m.stlb.Insert(r.vpn, te)
	if m.pcx != nil && r.pc != 0 {
		m.pcx.Insert(r.pc, r.vpn, te)
	}
	m.stats.TranslationCycles.Add(resp.Done - r.now)
	client, pa := r.client, physical(resp.Entry, r.v)
	m.putXlat(r)
	client.OnTranslated(pa, resp.Done)
}

// getXlat takes a pooled translation record (or grows the pool).
func (m *MMU) getXlat(vpn addr.VPN, v addr.V, now uint64, pc uint64, client TranslationClient) *xlatReq {
	r := m.xlatFree
	if r == nil {
		r = &xlatReq{m: m}
	} else {
		m.xlatFree = r.next
	}
	r.vpn, r.v, r.now, r.pc, r.client, r.next = vpn, v, now, pc, client, nil
	return r
}

// putXlat returns a completed record to the free list.
func (m *MMU) putXlat(r *xlatReq) {
	r.client = nil
	r.next = m.xlatFree
	m.xlatFree = r
}

// Options tunes an MMU away from the Table I defaults, for sensitivity
// studies.
type Options struct {
	// DisablePWC removes the page-walk caches (DESIGN.md ablation 2).
	DisablePWC bool
	// ECHWayPrediction adds the ECH paper's cuckoo-walk cache: a small
	// cache predicting which way holds a region's translations, so most
	// hash walks probe one way instead of d. Off by default (the
	// NDPage paper's ECH baseline figures match plain d-probe ECH).
	ECHWayPrediction bool
	// WalkerWidth sets the walker's concurrent walk slots (0 = 1, the
	// conventional blocking walker — Table I's implied default).
	WalkerWidth int
	// SharedUnit, when non-nil, makes the MMU delegate its misses to a
	// pre-built (typically cluster-shared) walk unit instead of owning
	// one; DisablePWC, ECHWayPrediction, and WalkerWidth are then
	// properties of that unit.
	SharedUnit *WalkUnit
	// Identity, when non-nil, enables the NMT identity-segment fast
	// path: covered addresses translate in identityCheckLat cycles with
	// no TLB or walker activity.
	Identity IdentityMapper
	// PCXEntries, when > 0, builds a PC-indexed translation table of
	// that many entries (the PCAX mechanism), probed on L1-TLB miss.
	PCXEntries int
}

// NewMMU assembles the MMU for mech on core coreID. The TLB geometry is
// Table I's; the PWC geometry follows the mechanism.
func NewMMU(mech Mechanism, coreID int, table pagetable.Table, mem *memsys.Hierarchy) *MMU {
	return NewMMUWithOptions(mech, coreID, table, mem, Options{})
}

// NewMMUWithOptions is NewMMU with sensitivity knobs.
func NewMMUWithOptions(mech Mechanism, coreID int, table pagetable.Table, mem *memsys.Hierarchy, opts Options) *MMU {
	m := &MMU{
		mech:   mech,
		coreID: coreID,
		dtlb:   tlb.New(tlb.L1D()),
		itlb:   tlb.New(tlb.L1I()),
		stlb:   tlb.New(tlb.L2()),
		table:  table,
	}
	m.dtlbLat = m.dtlb.Latency()
	m.stlbLat = m.stlb.Latency()
	m.identity = opts.Identity
	if opts.PCXEntries > 0 {
		pcfg := tlb.DefaultPCX()
		pcfg.Entries = opts.PCXEntries
		m.pcx = tlb.NewPCX(pcfg)
		m.pcxLat = m.pcx.Latency()
	}
	if opts.SharedUnit != nil {
		m.unit = opts.SharedUnit
	} else {
		m.unit = NewWalkUnit(mech, table, mem, opts)
	}
	return m
}

// Mechanism returns the translation mechanism this MMU implements.
func (m *MMU) Mechanism() Mechanism { return m.mech }

// Stats returns the live translation counters, with the walk counters
// refreshed from the walker.
func (m *MMU) Stats() *Stats {
	ws := m.unit.Walker.Stats()
	m.stats.Walks = stats.Counter(ws.Walks)
	m.stats.WalkCycles = stats.Counter(ws.WalkCycles)
	m.stats.MaxWalkCycles = ws.MaxWalkCycles
	m.stats.PTEAccesses = stats.Counter(ws.PTEAccesses)
	return &m.stats
}

// Walker returns the hardware page-table walker serving this MMU's
// misses (shared across MMUs when Options.SharedUnit was used).
func (m *MMU) Walker() *walker.Walker { return m.unit.Walker }

// DTLB returns the L1 data TLB (for statistics).
func (m *MMU) DTLB() *tlb.TLB { return m.dtlb }

// ITLB returns the L1 instruction TLB.
func (m *MMU) ITLB() *tlb.TLB { return m.itlb }

// STLB returns the unified second-level TLB.
func (m *MMU) STLB() *tlb.TLB { return m.stlb }

// PWC returns the page-walk caches, or nil.
func (m *MMU) PWC() *pwc.PWC { return m.unit.PWCs }

// PCXTable returns the PC-indexed translation table, or nil when
// Options.PCXEntries was zero.
func (m *MMU) PCXTable() *tlb.PCX { return m.pcx }

// ResetStats zeroes all translation counters (TLB/PWC/MSHR contents
// persist).
func (m *MMU) ResetStats() {
	m.stats = Stats{}
	m.dtlb.ResetStats()
	m.itlb.ResetStats()
	m.stlb.ResetStats()
	m.unit.Walker.ResetStats()
	if m.unit.PWCs != nil {
		m.unit.PWCs.ResetStats()
	}
	if m.pcx != nil {
		m.pcx.ResetStats()
	}
}

// Translate resolves the data-side virtual address v at absolute time now
// and returns the physical address plus the absolute completion time. The
// page must already be mapped (the OS model faults before translation, as
// a real OS resolves the fault and restarts the access). Equivalent to
// TranslatePC with no instruction PC (mechanisms that key on the PC see
// a degenerate zero key and fall through to the conventional path).
func (m *MMU) Translate(now uint64, v addr.V, op access.Op) (addr.P, uint64) {
	return m.TranslatePC(now, v, op, 0)
}

// TranslatePC is Translate with the PC of the issuing instruction (zero
// when unknown). The PC feeds the PCAX table; every other mechanism
// ignores it.
func (m *MMU) TranslatePC(now uint64, v addr.V, op access.Op, pc uint64) (addr.P, uint64) {
	m.stats.Translations.Inc()
	if m.mech == Ideal {
		// Every request hits an L1 TLB of zero latency (Section VI).
		e, ok := m.table.Lookup(v.Page())
		if !ok {
			panic(unmapped(v))
		}
		return physical(e, v), now
	}
	if m.identity != nil {
		if pa, ok := m.identityTranslate(v); ok {
			m.stats.TranslationCycles.Add(identityCheckLat)
			return pa, now + identityCheckLat
		}
	}
	vpn := v.Page()
	t := now + m.dtlbLat
	if e, ok := m.dtlb.Lookup(vpn); ok {
		m.stats.TranslationCycles.Add(t - now)
		return physical(pagetable.Entry(e), v), t
	}
	if m.pcx != nil && pc != 0 {
		t += m.pcxLat
		if e, ok := m.pcx.Lookup(pc, vpn); ok {
			m.dtlb.Insert(vpn, e)
			m.stats.TranslationCycles.Add(t - now)
			return physical(pagetable.Entry(e), v), t
		}
	}
	t += m.stlbLat
	if e, ok := m.stlb.Lookup(vpn); ok {
		m.dtlb.Insert(vpn, e)
		m.stats.TranslationCycles.Add(t - now)
		return physical(pagetable.Entry(e), v), t
	}
	resp := m.unit.Walker.Walk(walker.Request{Core: m.coreID, V: v, Time: t})
	if !resp.Found {
		panic(unmapped(v))
	}
	te := tlb.Entry{PFN: resp.Entry.PFN, Huge: resp.Entry.Huge}
	m.dtlb.Insert(vpn, te)
	m.stlb.Insert(vpn, te)
	if m.pcx != nil && pc != 0 {
		m.pcx.Insert(pc, vpn, te)
	}
	m.stats.TranslationCycles.Add(resp.Done - now)
	return physical(resp.Entry, v), resp.Done
}

// identityTranslate runs the NMT range check: a covered address still
// consults the page table for the leaf entry (the model keeps one
// authoritative mapping), but charges only the check's latency — the
// lookup stands in for wiring physical = virtual through the datapath.
// An uncovered or unmapped address falls back to the conventional path.
func (m *MMU) identityTranslate(v addr.V) (addr.P, bool) {
	if m.identity.IdentityCovered(v) {
		if e, ok := m.table.Lookup(v.Page()); ok {
			m.stats.IdentityHits.Inc()
			return physical(e, v), true
		}
	}
	m.stats.IdentityMisses.Inc()
	return 0, false
}

// TranslateAsync resolves v as a request/completion pair on the event
// schedule: client.OnTranslated is invoked exactly once with the
// physical address and the absolute completion time. It is layered over
// the same TLB and walk machinery as Translate — TLB hits resolve
// inline (their few-cycle latency is known immediately), while misses
// go through the walk unit's event-scheduled path, so concurrent
// translations contend for real walk slots, coalesce in the MSHRs, and
// fill the TLBs only when their walk's completion event fires. The miss
// context rides a pooled record registered with the walker, so the path
// allocates nothing in steady state. Used by the non-blocking core
// model (sim.Config.MLP > 1); the blocking model keeps Translate.
func (m *MMU) TranslateAsync(s walker.Scheduler, now uint64, v addr.V, op access.Op, client TranslationClient) {
	m.TranslateAsyncPC(s, now, v, op, 0, client)
}

// TranslateAsyncPC is TranslateAsync with the PC of the issuing
// instruction (zero when unknown); see TranslatePC.
func (m *MMU) TranslateAsyncPC(s walker.Scheduler, now uint64, v addr.V, op access.Op, pc uint64, client TranslationClient) {
	m.stats.Translations.Inc()
	if m.mech == Ideal {
		e, ok := m.table.Lookup(v.Page())
		if !ok {
			panic(unmapped(v))
		}
		client.OnTranslated(physical(e, v), now)
		return
	}
	if m.identity != nil {
		if pa, ok := m.identityTranslate(v); ok {
			m.stats.TranslationCycles.Add(identityCheckLat)
			client.OnTranslated(pa, now+identityCheckLat)
			return
		}
	}
	vpn := v.Page()
	t := now + m.dtlbLat
	if e, ok := m.dtlb.Lookup(vpn); ok {
		m.stats.TranslationCycles.Add(t - now)
		client.OnTranslated(physical(pagetable.Entry(e), v), t)
		return
	}
	if m.pcx != nil && pc != 0 {
		t += m.pcxLat
		if e, ok := m.pcx.Lookup(pc, vpn); ok {
			m.dtlb.Insert(vpn, e)
			m.stats.TranslationCycles.Add(t - now)
			client.OnTranslated(physical(pagetable.Entry(e), v), t)
			return
		}
	}
	t += m.stlbLat
	if e, ok := m.stlb.Lookup(vpn); ok {
		m.dtlb.Insert(vpn, e)
		m.stats.TranslationCycles.Add(t - now)
		client.OnTranslated(physical(pagetable.Entry(e), v), t)
		return
	}
	m.unit.Walker.WalkAsync(s, walker.Request{Core: m.coreID, V: v, Time: t}, m.getXlat(vpn, v, now, pc, client))
}

// TranslateCode resolves an instruction-fetch address. Fetch translation
// runs ahead of the pipeline, so it contributes structure activity (ITLB,
// shared L2 TLB) but no cycles; code-side walks resolve functionally —
// the paper's workloads are data-bound and their code footprint is a few
// pages (see DESIGN.md substitutions).
func (m *MMU) TranslateCode(v addr.V) addr.P {
	vpn := v.Page()
	if m.mech != Ideal {
		if e, ok := m.itlb.Lookup(vpn); ok {
			return physical(pagetable.Entry(e), v)
		}
		if e, ok := m.stlb.Lookup(vpn); ok {
			m.itlb.Insert(vpn, e)
			return physical(pagetable.Entry(e), v)
		}
	}
	e, ok := m.table.Lookup(vpn)
	if !ok {
		panic(unmapped(v))
	}
	if m.mech != Ideal {
		te := tlb.Entry{PFN: e.PFN, Huge: e.Huge}
		m.itlb.Insert(vpn, te)
		m.stlb.Insert(vpn, te)
	}
	return physical(e, v)
}

// physical applies a leaf entry to v.
func physical(e pagetable.Entry, v addr.V) addr.P {
	return e.Translate(v.Page()).Addr() + addr.P(v.Offset())
}

func unmapped(v addr.V) string {
	return fmt.Sprintf("core: translation of unmapped address %#x (OS fault model must run first)", uint64(v))
}
