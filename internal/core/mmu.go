package core

import (
	"fmt"

	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/assoc"
	"ndpage/internal/memsys"
	"ndpage/internal/pagetable"
	"ndpage/internal/pwc"
	"ndpage/internal/stats"
	"ndpage/internal/tlb"
)

// Stats aggregates one MMU's translation activity.
type Stats struct {
	Translations      stats.Counter
	TranslationCycles stats.Counter
	Walks             stats.Counter
	WalkCycles        stats.Counter
	MaxWalkCycles     uint64
	PTEAccesses       stats.Counter // PTE memory requests actually issued
}

// MeanWalkLatency returns the average page-table-walk latency in cycles
// (Figure 4's metric).
func (s *Stats) MeanWalkLatency() float64 {
	return stats.Ratio(s.WalkCycles.Value(), s.Walks.Value())
}

// MMU is one core's memory-management unit: L1 D/I TLBs, a unified L2
// TLB, optional page-walk caches, and a hardware walker over the
// mechanism's page table. Not safe for concurrent use.
type MMU struct {
	mech   Mechanism
	coreID int
	dtlb   *tlb.TLB
	itlb   *tlb.TLB
	stlb   *tlb.TLB
	pwcs   *pwc.PWC // nil when the mechanism has none
	table  pagetable.Table
	mem    *memsys.Hierarchy

	walk     pagetable.Walk
	fillBuf  []addr.Level
	wayCache *assoc.Table[uint8] // ECH cuckoo-walk cache (optional)
	statsure Stats
}

// Options tunes an MMU away from the Table I defaults, for sensitivity
// studies.
type Options struct {
	// DisablePWC removes the page-walk caches (DESIGN.md ablation 2).
	DisablePWC bool
	// ECHWayPrediction adds the ECH paper's cuckoo-walk cache: a small
	// cache predicting which way holds a region's translations, so most
	// hash walks probe one way instead of d. Off by default (the
	// NDPage paper's ECH baseline figures match plain d-probe ECH).
	ECHWayPrediction bool
}

// NewMMU assembles the MMU for mech on core coreID. The TLB geometry is
// Table I's; the PWC geometry follows the mechanism.
func NewMMU(mech Mechanism, coreID int, table pagetable.Table, mem *memsys.Hierarchy) *MMU {
	return NewMMUWithOptions(mech, coreID, table, mem, Options{})
}

// NewMMUWithOptions is NewMMU with sensitivity knobs.
func NewMMUWithOptions(mech Mechanism, coreID int, table pagetable.Table, mem *memsys.Hierarchy, opts Options) *MMU {
	m := &MMU{
		mech:   mech,
		coreID: coreID,
		dtlb:   tlb.New(tlb.L1D()),
		itlb:   tlb.New(tlb.L1I()),
		stlb:   tlb.New(tlb.L2()),
		table:  table,
		mem:    mem,
	}
	if cfg, ok := mech.PWCConfig(); ok && !opts.DisablePWC {
		m.pwcs = pwc.New(cfg)
	}
	if opts.ECHWayPrediction && mech == ECH {
		// 64 entries x 4-way over 32 KB regions (8 pages per entry).
		m.wayCache = assoc.New[uint8](16, 4)
	}
	return m
}

// cwcRegion is the way-prediction granularity: one entry covers 8 pages.
func cwcRegion(v addr.V) uint64 { return uint64(v.Page()) >> 3 }

// Mechanism returns the translation mechanism this MMU implements.
func (m *MMU) Mechanism() Mechanism { return m.mech }

// Stats returns the live translation counters.
func (m *MMU) Stats() *Stats { return &m.statsure }

// DTLB returns the L1 data TLB (for statistics).
func (m *MMU) DTLB() *tlb.TLB { return m.dtlb }

// ITLB returns the L1 instruction TLB.
func (m *MMU) ITLB() *tlb.TLB { return m.itlb }

// STLB returns the unified second-level TLB.
func (m *MMU) STLB() *tlb.TLB { return m.stlb }

// PWC returns the page-walk caches, or nil.
func (m *MMU) PWC() *pwc.PWC { return m.pwcs }

// ResetStats zeroes all translation counters (TLB/PWC contents persist).
func (m *MMU) ResetStats() {
	m.statsure = Stats{}
	m.dtlb.ResetStats()
	m.itlb.ResetStats()
	m.stlb.ResetStats()
	if m.pwcs != nil {
		m.pwcs.ResetStats()
	}
}

// Translate resolves the data-side virtual address v at absolute time now
// and returns the physical address plus the absolute completion time. The
// page must already be mapped (the OS model faults before translation, as
// a real OS resolves the fault and restarts the access).
func (m *MMU) Translate(now uint64, v addr.V, op access.Op) (addr.P, uint64) {
	m.statsure.Translations.Inc()
	if m.mech == Ideal {
		// Every request hits an L1 TLB of zero latency (Section VI).
		e, ok := m.table.Lookup(v.Page())
		if !ok {
			panic(unmapped(v))
		}
		return physical(e, v), now
	}
	vpn := v.Page()
	t := now + m.dtlb.Latency()
	if e, ok := m.dtlb.Lookup(vpn); ok {
		m.statsure.TranslationCycles.Add(t - now)
		return physical(pagetable.Entry(e), v), t
	}
	t += m.stlb.Latency()
	if e, ok := m.stlb.Lookup(vpn); ok {
		m.dtlb.Insert(vpn, e)
		m.statsure.TranslationCycles.Add(t - now)
		return physical(pagetable.Entry(e), v), t
	}
	entry, end := m.walkTable(t, v)
	te := tlb.Entry{PFN: entry.PFN, Huge: entry.Huge}
	m.dtlb.Insert(vpn, te)
	m.stlb.Insert(vpn, te)
	m.statsure.TranslationCycles.Add(end - now)
	return physical(entry, v), end
}

// TranslateCode resolves an instruction-fetch address. Fetch translation
// runs ahead of the pipeline, so it contributes structure activity (ITLB,
// shared L2 TLB) but no cycles; code-side walks resolve functionally —
// the paper's workloads are data-bound and their code footprint is a few
// pages (see DESIGN.md substitutions).
func (m *MMU) TranslateCode(v addr.V) addr.P {
	vpn := v.Page()
	if m.mech != Ideal {
		if e, ok := m.itlb.Lookup(vpn); ok {
			return physical(pagetable.Entry(e), v)
		}
		if e, ok := m.stlb.Lookup(vpn); ok {
			m.itlb.Insert(vpn, e)
			return physical(pagetable.Entry(e), v)
		}
	}
	e, ok := m.table.Lookup(vpn)
	if !ok {
		panic(unmapped(v))
	}
	if m.mech != Ideal {
		te := tlb.Entry{PFN: e.PFN, Huge: e.Huge}
		m.itlb.Insert(vpn, te)
		m.stlb.Insert(vpn, te)
	}
	return physical(e, v)
}

// walkTable performs the hardware page-table walk starting at time t and
// returns the leaf entry and completion time.
func (m *MMU) walkTable(t0 uint64, v addr.V) (pagetable.Entry, uint64) {
	m.statsure.Walks.Inc()
	t := t0
	m.table.WalkInto(v, &m.walk)

	switch {
	case len(m.walk.Par) > 0:
		t = m.walkHash(t, v)

	default:
		// Radix-style sequential walk, shortened by the deepest PWC
		// hit: a hit at level L supplies the child-table base below
		// L, so only deeper entries are read from memory.
		skipDepth := -1
		if m.pwcs != nil {
			t += m.pwcs.Latency()
			if deepest, ok := m.pwcs.Probe(v); ok {
				skipDepth = addr.Depth(deepest)
			}
		}
		for _, a := range m.walk.Seq {
			if addr.Depth(a.Level) <= skipDepth {
				continue
			}
			t = m.mem.Access(m.coreID, t, a.PA, access.Read, access.PTE)
			m.statsure.PTEAccesses.Inc()
		}
		if m.pwcs != nil {
			// Record the non-leaf entries this walk resolved.
			m.fillBuf = m.fillBuf[:0]
			for i, a := range m.walk.Seq {
				if i < len(m.walk.Seq)-1 {
					m.fillBuf = append(m.fillBuf, a.Level)
				}
			}
			m.pwcs.Fill(v, m.fillBuf)
		}
	}

	if !m.walk.Found {
		panic(unmapped(v))
	}
	lat := t - t0
	m.statsure.WalkCycles.Add(lat)
	if lat > m.statsure.MaxWalkCycles {
		m.statsure.MaxWalkCycles = lat
	}
	return m.walk.Entry, t
}

// walkHash performs a hash-table (ECH) walk: d parallel probes, or — with
// the cuckoo-walk cache — one predicted probe with a full second round on
// misprediction.
func (m *MMU) walkHash(t uint64, v addr.V) uint64 {
	probeAll := func(t uint64, skip int) uint64 {
		end := t
		for i, a := range m.walk.Par {
			if i == skip {
				continue
			}
			done := m.mem.Access(m.coreID, t, a.PA, access.Read, access.PTE)
			m.statsure.PTEAccesses.Inc()
			if done > end {
				end = done
			}
		}
		return end
	}

	if m.wayCache == nil {
		return probeAll(t, -1)
	}
	region := cwcRegion(v)
	t++ // CWC probe
	hint, ok := m.wayCache.Lookup(region)
	if ok && int(hint) < len(m.walk.Par) {
		a := m.walk.Par[hint]
		t = m.mem.Access(m.coreID, t, a.PA, access.Read, access.PTE)
		m.statsure.PTEAccesses.Inc()
		if m.walk.FoundIdx != int(hint) {
			// Mispredict: fall back to a full round for the rest.
			t = probeAll(t, int(hint))
		}
	} else {
		t = probeAll(t, -1)
	}
	if m.walk.FoundIdx >= 0 {
		m.wayCache.Insert(region, uint8(m.walk.FoundIdx))
	}
	return t
}

// physical applies a leaf entry to v.
func physical(e pagetable.Entry, v addr.V) addr.P {
	return e.Translate(v.Page()).Addr() + addr.P(v.Offset())
}

func unmapped(v addr.V) string {
	return fmt.Sprintf("core: translation of unmapped address %#x (OS fault model must run first)", uint64(v))
}
