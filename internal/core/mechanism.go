// Package core implements the paper's primary contribution: the address
// translation mechanisms evaluated in NDPage (Section VI), each assembled
// as an MMU pipeline (TLBs -> page-walk caches -> hardware walker ->
// memory hierarchy).
//
// The five mechanisms:
//
//   - Radix: the conventional x86-64 4-level radix page table with
//     PL4/PL3/PL2 page-walk caches (the baseline).
//   - ECH: elastic cuckoo hash table; three parallel PTE probes per walk
//     (Skarlatos et al., the paper's strongest prior mechanism).
//   - HugePage: transparent 2 MB pages over a 3-level effective walk,
//     trading fault latency and physical contiguity for TLB reach.
//   - NDPage: this paper — the flattened L2/L1 page table (3-access
//     walk), PL4/PL3 PWCs only, and the L1 metadata bypass.
//   - Ideal: every translation resolves instantly (the performance upper
//     bound used in Figures 12-14).
package core

import (
	"fmt"

	"ndpage/internal/osmm"
	"ndpage/internal/pagetable"
	"ndpage/internal/phys"
	"ndpage/internal/pwc"
)

// Mechanism selects an address-translation design.
type Mechanism int

// The evaluated mechanisms.
const (
	Radix Mechanism = iota
	ECH
	HugePage
	NDPage
	Ideal

	// Ablation variants (DESIGN.md Section 5): NDPage's two ideas in
	// isolation.

	// FlattenOnly is NDPage's flattened L2/L1 table without the L1
	// metadata bypass.
	FlattenOnly
	// BypassOnly is the conventional radix table with NDPage's L1
	// metadata bypass.
	BypassOnly

	// Related-work mechanisms (DESIGN.md "Mechanism zoo"): strong
	// baselines from the surrounding NDP-translation literature.

	// Victima caches translation blocks in the shared last-level data
	// cache, gated by a TLB-miss predictor; a hit short-circuits the
	// radix walk (Kanellopoulos et al., MICRO 2023).
	Victima
	// NMT is near-memory translation via identity-mapped segments:
	// eagerly populated regions translate with a range check, bypassing
	// the walker; holes fall back to the radix walk (Picorel et al.,
	// MEMSYS 2017).
	NMT
	// PCAX indexes translations by the instruction PC of the access: a
	// PC-indexed table consulted on L1-TLB miss exploits the stability
	// of the page each static instruction touches (PC-indexed
	// translation caching).
	PCAX
)

// Mechanisms lists the paper's evaluated mechanisms in presentation order.
var Mechanisms = []Mechanism{Radix, ECH, HugePage, NDPage, Ideal}

// AblationMechanisms lists the NDPage decomposition variants.
var AblationMechanisms = []Mechanism{Radix, BypassOnly, FlattenOnly, NDPage}

// ComparisonMechanisms lists the cross-literature comparison set: the
// paper's mechanisms plus the related-work baselines, Ideal last.
var ComparisonMechanisms = []Mechanism{Radix, ECH, HugePage, NDPage, Victima, NMT, PCAX, Ideal}

// String names the mechanism as in the paper's figures.
func (m Mechanism) String() string {
	switch m {
	case Radix:
		return "Radix"
	case ECH:
		return "ECH"
	case HugePage:
		return "HugePage"
	case NDPage:
		return "NDPage"
	case Ideal:
		return "Ideal"
	case FlattenOnly:
		return "FlattenOnly"
	case BypassOnly:
		return "BypassOnly"
	case Victima:
		return "Victima"
	case NMT:
		return "NMT"
	case PCAX:
		return "PCAX"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// ParseMechanism resolves a case-sensitive mechanism name, including the
// ablation variants and the related-work baselines.
func ParseMechanism(s string) (Mechanism, error) {
	for _, m := range []Mechanism{Radix, ECH, HugePage, NDPage, Ideal, FlattenOnly, BypassOnly, Victima, NMT, PCAX} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mechanism %q (want Radix, ECH, HugePage, NDPage, Ideal, FlattenOnly, BypassOnly, Victima, NMT or PCAX)", s)
}

// Policy returns the OS page-size policy the mechanism requires.
func (m Mechanism) Policy() osmm.Policy {
	if m == HugePage {
		return osmm.Huge2M
	}
	return osmm.Base4K
}

// NewTable builds the page-table organization for the mechanism, backed
// by alloc. ECH's initial way size is chosen small; elastic resizing grows
// it with the workload.
func (m Mechanism) NewTable(alloc *phys.Allocator) pagetable.Table {
	switch m {
	case ECH:
		return pagetable.NewCuckoo(alloc, 4096)
	case NDPage, FlattenOnly:
		return pagetable.NewFlattened(alloc)
	default:
		return pagetable.NewRadix(alloc)
	}
}

// PWCConfig returns the page-walk-cache configuration, or ok=false for
// mechanisms without PWCs (ECH uses parallel hashing; Ideal walks never
// happen). The related-work baselines walk the conventional radix table,
// so they keep the conventional PWCs.
func (m Mechanism) PWCConfig() (pwc.Config, bool) {
	switch m {
	case Radix, HugePage, BypassOnly, Victima, NMT, PCAX:
		return pwc.Default(), true
	case NDPage, FlattenOnly:
		return pwc.NDPage(), true
	default:
		return pwc.Config{}, false
	}
}

// BypassL1PTE reports whether the mechanism routes PTE accesses around
// the L1 cache (NDPage's metadata bypass, Section V-A).
func (m Mechanism) BypassL1PTE() bool { return m == NDPage || m == BypassOnly }
