package core

import (
	"testing"

	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/engine"
)

// translateAsyncAt schedules one TranslateAsync request at time t and
// returns pointers to the recorded (pa, done) outcome.
func translateAsyncAt(eng *engine.Engine, m *MMU, t uint64, v addr.V) (*addr.P, *uint64) {
	var pa addr.P
	var at uint64
	eng.Schedule(t, 0, func() {
		m.TranslateAsync(eng, t, v, access.Read, func(p addr.P, done uint64) {
			pa, at = p, done
		})
	})
	return &pa, &at
}

// TestTranslateAsyncMatchesSynchronousTiming: a lone async translation
// (hit or walk) completes at the same time and with the same physical
// address as the synchronous path on an identically warmed MMU.
func TestTranslateAsyncMatchesSynchronousTiming(t *testing.T) {
	for _, mech := range []Mechanism{Radix, NDPage, ECH, Ideal} {
		syncMMU, base := rig(t, mech)
		asyncMMU, base2 := rig(t, mech)
		if base != base2 {
			t.Fatalf("%v: rigs disagree on base", mech)
		}
		for i, v := range []addr.V{base, base + 64, base + 5*addr.PageSize} {
			now := uint64(1000 * (i + 1))
			wantPA, wantDone := syncMMU.Translate(now, v, access.Read)

			eng := engine.New()
			gotPA, gotDone := translateAsyncAt(eng, asyncMMU, now, v)
			eng.Run()
			if *gotPA != wantPA || *gotDone != wantDone {
				t.Errorf("%v access %d: async (%#x, %d) != sync (%#x, %d)",
					mech, i, uint64(*gotPA), *gotDone, uint64(wantPA), wantDone)
			}
		}
	}
}

// TestTranslateAsyncCoalescesConcurrentMisses: two in-flight misses for
// one page perform a single walk, and the TLB fill lands at the walk's
// completion event — a third request after completion hits the TLB.
func TestTranslateAsyncCoalescesConcurrentMisses(t *testing.T) {
	mmu, base := rig(t, Radix)
	eng := engine.New()
	_, doneA := translateAsyncAt(eng, mmu, 0, base)
	_, doneB := translateAsyncAt(eng, mmu, 10, base+64)
	eng.Run()
	ws := mmu.Walker().Stats()
	if ws.Walks.Value() != 1 || ws.MSHRHits.Value() != 1 {
		t.Fatalf("walks=%d mshr=%d, want 1 walk + 1 coalesce", ws.Walks.Value(), ws.MSHRHits.Value())
	}
	if *doneA != *doneB {
		t.Errorf("coalesced translations complete at %d/%d, want equal", *doneA, *doneB)
	}

	// After completion the page is in the DTLB: a hit resolves in the
	// L1 TLB latency with no further walk.
	_, doneC := translateAsyncAt(eng, mmu, *doneA+100, base+128)
	eng.Run()
	if got := mmu.Walker().Stats().Walks.Value(); got != 1 {
		t.Errorf("TLB-filled page walked again (%d walks)", got)
	}
	if want := *doneA + 100 + mmu.DTLB().Latency(); *doneC != want {
		t.Errorf("post-fill hit completed at %d, want %d", *doneC, want)
	}
}

// TestTranslateAsyncWindowContention: a private width-1 walker serializes
// a core's concurrent misses to different pages via the pending queue.
func TestTranslateAsyncWindowContention(t *testing.T) {
	mmu, base := rig(t, Radix)
	eng := engine.New()
	_, doneA := translateAsyncAt(eng, mmu, 0, base)
	_, doneB := translateAsyncAt(eng, mmu, 0, base+addr.PageSize)
	eng.Run()
	ws := mmu.Walker().Stats()
	if ws.Walks.Value() != 2 {
		t.Fatalf("walks = %d, want 2", ws.Walks.Value())
	}
	if ws.QueuedWalks.Value() != 1 {
		t.Errorf("queued = %d, want 1 (width-1 slot held)", ws.QueuedWalks.Value())
	}
	if !(*doneB > *doneA) {
		t.Errorf("second miss (%d) did not queue behind the first (%d)", *doneB, *doneA)
	}
}
