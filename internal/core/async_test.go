package core

import (
	"testing"

	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/engine"
)

// xlatOut records one TranslateAsync completion. It implements
// TranslationClient.
type xlatOut struct {
	pa addr.P
	at uint64
}

func (o *xlatOut) OnTranslated(pa addr.P, at uint64) { o.pa, o.at = pa, at }

// xlatIssuer injects TranslateAsync requests as engine events, the way
// the non-blocking front-end does.
type xlatIssuer struct {
	eng *engine.Engine
	m   *MMU
	fns []func()
}

func (xi *xlatIssuer) OnEvent(now uint64, kind uint8, payload uint64) {
	xi.fns[payload]()
}

// translateAt schedules one TranslateAsync request at time t and
// returns the record its completion will fill.
func (xi *xlatIssuer) translateAt(t uint64, v addr.V) *xlatOut {
	out := &xlatOut{}
	xi.fns = append(xi.fns, func() {
		xi.m.TranslateAsync(xi.eng, t, v, access.Read, out)
	})
	xi.eng.Schedule(t, 0, xi, 0, uint64(len(xi.fns)-1))
	return out
}

// TestTranslateAsyncMatchesSynchronousTiming: a lone async translation
// (hit or walk) completes at the same time and with the same physical
// address as the synchronous path on an identically warmed MMU.
func TestTranslateAsyncMatchesSynchronousTiming(t *testing.T) {
	for _, mech := range []Mechanism{Radix, NDPage, ECH, Ideal} {
		syncMMU, base := rig(t, mech)
		asyncMMU, base2 := rig(t, mech)
		if base != base2 {
			t.Fatalf("%v: rigs disagree on base", mech)
		}
		for i, v := range []addr.V{base, base + 64, base + 5*addr.PageSize} {
			now := uint64(1000 * (i + 1))
			wantPA, wantDone := syncMMU.Translate(now, v, access.Read)

			eng := engine.New()
			xi := &xlatIssuer{eng: eng, m: asyncMMU}
			got := xi.translateAt(now, v)
			eng.Run()
			if got.pa != wantPA || got.at != wantDone {
				t.Errorf("%v access %d: async (%#x, %d) != sync (%#x, %d)",
					mech, i, uint64(got.pa), got.at, uint64(wantPA), wantDone)
			}
		}
	}
}

// TestTranslateAsyncCoalescesConcurrentMisses: two in-flight misses for
// one page perform a single walk, and the TLB fill lands at the walk's
// completion event — a third request after completion hits the TLB.
func TestTranslateAsyncCoalescesConcurrentMisses(t *testing.T) {
	mmu, base := rig(t, Radix)
	eng := engine.New()
	xi := &xlatIssuer{eng: eng, m: mmu}
	a := xi.translateAt(0, base)
	b := xi.translateAt(10, base+64)
	eng.Run()
	ws := mmu.Walker().Stats()
	if ws.Walks.Value() != 1 || ws.MSHRHits.Value() != 1 {
		t.Fatalf("walks=%d mshr=%d, want 1 walk + 1 coalesce", ws.Walks.Value(), ws.MSHRHits.Value())
	}
	if a.at != b.at {
		t.Errorf("coalesced translations complete at %d/%d, want equal", a.at, b.at)
	}

	// After completion the page is in the DTLB: a hit resolves in the
	// L1 TLB latency with no further walk.
	c := xi.translateAt(a.at+100, base+128)
	eng.Run()
	if got := mmu.Walker().Stats().Walks.Value(); got != 1 {
		t.Errorf("TLB-filled page walked again (%d walks)", got)
	}
	if want := a.at + 100 + mmu.DTLB().Latency(); c.at != want {
		t.Errorf("post-fill hit completed at %d, want %d", c.at, want)
	}
}

// TestTranslateAsyncWindowContention: a private width-1 walker serializes
// a core's concurrent misses to different pages via the pending queue.
func TestTranslateAsyncWindowContention(t *testing.T) {
	mmu, base := rig(t, Radix)
	eng := engine.New()
	xi := &xlatIssuer{eng: eng, m: mmu}
	a := xi.translateAt(0, base)
	b := xi.translateAt(0, base+addr.PageSize)
	eng.Run()
	ws := mmu.Walker().Stats()
	if ws.Walks.Value() != 2 {
		t.Fatalf("walks = %d, want 2", ws.Walks.Value())
	}
	if ws.QueuedWalks.Value() != 1 {
		t.Errorf("queued = %d, want 1 (width-1 slot held)", ws.QueuedWalks.Value())
	}
	if !(b.at > a.at) {
		t.Errorf("second miss (%d) did not queue behind the first (%d)", b.at, a.at)
	}
}
