package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// remoteFixture is a scripted ndpserve stand-in: per-method hit
// counters plus a handler the test controls.
type remoteFixture struct {
	gets atomic.Int64
	puts atomic.Int64
	sims atomic.Int64
}

// newRemote builds a RemoteStore against an httptest server whose
// behavior the given handler scripts; the fixture counts requests.
func newRemote(t *testing.T, handler func(fx *remoteFixture, w http.ResponseWriter, r *http.Request)) (*RemoteStore, *remoteFixture, *httptest.Server) {
	t.Helper()
	fx := &remoteFixture{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			fx.gets.Add(1)
		case http.MethodPut:
			fx.puts.Add(1)
		case http.MethodPost:
			fx.sims.Add(1)
		}
		handler(fx, w, r)
	}))
	t.Cleanup(ts.Close)
	store, err := NewRemoteStore(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return store, fx, ts
}

func TestNewRemoteStoreRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"", "host:8947", "ftp://host", "http://", "/just/a/path", "http://host\x7f"} {
		if _, err := NewRemoteStore(bad); err == nil {
			t.Errorf("NewRemoteStore(%q) accepted", bad)
		}
	}
	s, err := NewRemoteStore("http://host:8947/")
	if err != nil {
		t.Fatal(err)
	}
	if s.BaseURL() != "http://host:8947" {
		t.Errorf("trailing slash not trimmed: %q", s.BaseURL())
	}
}

// TestRemoteGetFetchRevalidateMiss walks Get's three outcomes: a cold
// key misses, a warm key transfers once, and re-reads revalidate with
// If-None-Match and cost a 304 with no body.
func TestRemoteGetFetchRevalidateMiss(t *testing.T) {
	cfg := testBaseWithSeed(9)
	key := cfg.Key()
	res := fakeResult(cfg)
	held := false
	var sawINM atomic.Int64
	store, fx, _ := newRemote(t, func(fx *remoteFixture, w http.ResponseWriter, r *http.Request) {
		if !held {
			http.NotFound(w, r)
			return
		}
		if r.Header.Get("If-None-Match") == `"`+key+`"` {
			sawINM.Add(1)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("ETag", `"`+key+`"`)
		json.NewEncoder(w).Encode(res)
	})

	if _, ok, err := store.Get(key); ok || err != nil {
		t.Fatalf("cold Get = %v, %v; want miss", ok, err)
	}
	held = true
	got, ok, err := store.Get(key)
	if err != nil || !ok || got.Cycles != res.Cycles {
		t.Fatalf("warm Get = %+v, %v, %v", got, ok, err)
	}
	got, ok, err = store.Get(key)
	if err != nil || !ok || got.Cycles != res.Cycles {
		t.Fatalf("revalidated Get = %+v, %v, %v", got, ok, err)
	}
	if sawINM.Load() != 1 {
		t.Errorf("If-None-Match requests = %d, want 1", sawINM.Load())
	}
	stats := store.Stats()
	if stats.Misses != 1 || stats.Hits != 1 || stats.Revalidated != 1 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 1 revalidation", stats)
	}
	if fx.gets.Load() != 3 {
		t.Errorf("server GETs = %d, want 3", fx.gets.Load())
	}
	if store.Len() != 1 {
		t.Errorf("local inventory = %d, want 1", store.Len())
	}
	if keys := store.Keys(); len(keys) != 1 || keys[0] != key {
		t.Errorf("local keys = %v", keys)
	}
}

// TestRemoteGetIntegrityMismatch: a body whose embedded config hashes
// to a different key is rejected, not cached.
func TestRemoteGetIntegrityMismatch(t *testing.T) {
	wrong := fakeResult(testBaseWithSeed(2))
	store, _, _ := newRemote(t, func(fx *remoteFixture, w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(wrong)
	})
	key := testBaseWithSeed(1).Key()
	if _, _, err := store.Get(key); err == nil {
		t.Fatal("mismatched body accepted")
	}
	if store.Len() != 0 {
		t.Error("mismatched body was cached")
	}
}

// TestRemotePut: an upload round-trips, re-uploading the same key is
// free, and a key first seen via Get is never uploaded at all.
func TestRemotePut(t *testing.T) {
	served := fakeResult(testBaseWithSeed(5))
	servedKey := served.Config.Key()
	store, fx, _ := newRemote(t, func(fx *remoteFixture, w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPut:
			var res struct{ Cycles uint64 }
			if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
				t.Errorf("upload body: %v", err)
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodGet:
			w.Header().Set("ETag", `"`+servedKey+`"`)
			json.NewEncoder(w).Encode(served)
		}
	})

	mine := fakeResult(testBaseWithSeed(6))
	mineKey := mine.Config.Key()
	if err := store.Put(mineKey, mine); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(mineKey, mine); err != nil {
		t.Fatal(err)
	}
	if fx.puts.Load() != 1 {
		t.Errorf("uploads for a local result = %d, want 1 (second Put skips)", fx.puts.Load())
	}

	if _, ok, err := store.Get(servedKey); !ok || err != nil {
		t.Fatalf("Get served key: %v, %v", ok, err)
	}
	if err := store.Put(servedKey, served); err != nil {
		t.Fatal(err)
	}
	if fx.puts.Load() != 1 {
		t.Errorf("server-resident key was uploaded (%d PUTs)", fx.puts.Load())
	}
	if got := store.Stats().Uploads; got != 1 {
		t.Errorf("stats.Uploads = %d, want 1", got)
	}
}

// TestRemoteGetDegradesToLocalCopy: once a key is held locally, a
// server 404 (lost store) and a dead server both serve the local copy
// — content-addressed entries cannot be stale. A cold key against a
// dead server degrades to a miss (routing the run to Simulate, and from
// there to local fallback) instead of failing the sweep, and the
// failure streak opens the circuit breaker.
func TestRemoteGetDegradesToLocalCopy(t *testing.T) {
	cfg := testBaseWithSeed(3)
	key := cfg.Key()
	res := fakeResult(cfg)
	lost := false
	store, _, ts := newRemote(t, func(fx *remoteFixture, w http.ResponseWriter, r *http.Request) {
		if lost {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("ETag", `"`+key+`"`)
		json.NewEncoder(w).Encode(res)
	})
	store.BackoffBase = time.Millisecond
	store.BackoffCap = 2 * time.Millisecond
	if _, ok, err := store.Get(key); !ok || err != nil {
		t.Fatalf("initial Get: %v, %v", ok, err)
	}

	lost = true
	got, ok, err := store.Get(key)
	if err != nil || !ok || got.Cycles != res.Cycles {
		t.Fatalf("Get after server lost the key = %v, %v; want local copy", ok, err)
	}

	ts.Close()
	got, ok, err = store.Get(key)
	if err != nil || !ok || got.Cycles != res.Cycles {
		t.Fatalf("Get with server down = %v, %v; want local copy", ok, err)
	}
	// A key never held degrades to a miss, not an error: the sweep
	// re-simulates instead of dying.
	if _, ok, err := store.Get(testBaseWithSeed(4).Key()); ok || err != nil {
		t.Fatalf("cold Get with server down = %v, %v; want degraded miss", ok, err)
	}
	stats := store.Stats()
	if stats.DegradedGets != 2 {
		t.Errorf("stats.DegradedGets = %d, want 2", stats.DegradedGets)
	}
	if stats.Retries == 0 {
		t.Error("dead server cost no retries")
	}
	// Two exhausted Gets = 5 consecutive transport failures: the default
	// breaker threshold. Further requests degrade without the network.
	if stats.Breaker != BreakerOpen {
		t.Errorf("breaker = %v, want open", stats.Breaker)
	}
	if _, ok, err := store.Get(testBaseWithSeed(5).Key()); ok || err != nil {
		t.Fatalf("breaker-open cold Get = %v, %v; want instant miss", ok, err)
	}
}

// TestRemoteSimulate: a cold run posts to /v1/sim, backpressure (429)
// is retried after Retry-After, and the result is cached so the
// follow-up Get costs no request body (304).
func TestRemoteSimulate(t *testing.T) {
	cfg := testBaseWithSeed(8).Normalize()
	key := cfg.Key()
	res := fakeResult(cfg)
	var rejected atomic.Int64
	store, fx, _ := newRemote(t, func(fx *remoteFixture, w http.ResponseWriter, r *http.Request) {
		if fx.sims.Load() == 1 { // first attempt: queue full
			rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "queue full, retry later", http.StatusTooManyRequests)
			return
		}
		var got struct{ Seed uint64 }
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil || got.Seed != cfg.Seed {
			t.Errorf("sim request body: seed %d err %v", got.Seed, err)
		}
		w.Header().Set("ETag", `"`+key+`"`)
		json.NewEncoder(w).Encode(res)
	})

	start := time.Now()
	got, err := store.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != res.Cycles {
		t.Fatalf("Simulate cycles = %d, want %d", got.Cycles, res.Cycles)
	}
	if rejected.Load() != 1 || fx.sims.Load() != 2 {
		t.Fatalf("attempts = %d (rejected %d), want 2 with 1 rejection", fx.sims.Load(), rejected.Load())
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("retry did not honor Retry-After: elapsed %v", elapsed)
	}
	// The simulated result is locally cached and server-resident: Put
	// skips the upload, Get revalidates.
	if err := store.Put(key, got); err != nil {
		t.Fatal(err)
	}
	if fx.puts.Load() != 0 {
		t.Errorf("server-produced result was uploaded (%d PUTs)", fx.puts.Load())
	}
	if got := store.Stats().RemoteSims; got != 1 {
		t.Errorf("stats.RemoteSims = %d, want 1", got)
	}
}

// TestRemoteSimulateCancelDuringBackpressure: Context cancels the 429
// retry wait.
func TestRemoteSimulateCancelDuringBackpressure(t *testing.T) {
	store, _, _ := newRemote(t, func(fx *remoteFixture, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "queue full", http.StatusTooManyRequests)
	})
	ctx, cancel := context.WithCancel(context.Background())
	store.Context = ctx
	done := make(chan error, 1)
	go func() {
		_, err := store.Simulate(testBaseWithSeed(1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled Simulate returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Simulate did not return after cancel")
	}
}

// TestRemoteSimulateServerError: a 4xx/5xx surfaces the server's
// message instead of retrying.
func TestRemoteSimulateServerError(t *testing.T) {
	store, fx, _ := newRemote(t, func(fx *remoteFixture, w http.ResponseWriter, r *http.Request) {
		http.Error(w, "config invalid: cores out of range", http.StatusBadRequest)
	})
	_, err := store.Simulate(testBaseWithSeed(1))
	if err == nil {
		t.Fatal("400 response returned nil error")
	}
	if fx.sims.Load() != 1 {
		t.Errorf("400 was retried: %d attempts", fx.sims.Load())
	}
}

// flakyRemote tunes a RemoteStore for fast failure tests.
func tuneRemote(s *RemoteStore) {
	s.BackoffBase = time.Millisecond
	s.BackoffCap = 2 * time.Millisecond
	s.RequestTimeout = 2 * time.Second
}

// TestRemoteRetriesTransientFailures: 5xx responses and torn bodies are
// retried with backoff until the server behaves; the sweep never sees
// the blips.
func TestRemoteRetriesTransientFailures(t *testing.T) {
	cfg := testBaseWithSeed(11).Normalize()
	key := cfg.Key()
	res := fakeResult(cfg)
	store, fx, _ := newRemote(t, func(fx *remoteFixture, w http.ResponseWriter, r *http.Request) {
		if fx.sims.Load() <= 2 { // first two attempts blow up
			http.Error(w, "injected gateway error", http.StatusBadGateway)
			return
		}
		w.Header().Set("ETag", `"`+key+`"`)
		json.NewEncoder(w).Encode(res)
	})
	tuneRemote(store)
	got, err := store.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != res.Cycles {
		t.Fatalf("Simulate cycles = %d, want %d", got.Cycles, res.Cycles)
	}
	if fx.sims.Load() != 3 {
		t.Errorf("attempts = %d, want 3", fx.sims.Load())
	}
	if stats := store.Stats(); stats.Retries != 2 || stats.Breaker != BreakerClosed {
		t.Errorf("stats = {Retries:%d Breaker:%v}, want 2 retries, closed breaker", stats.Retries, stats.Breaker)
	}
}

// TestRemoteSimulatePermanentFailure: a 500 carrying X-Sim-Permanent
// surfaces as a permanent RunError with no retry and no local fallback
// — the configuration itself is bad, and re-running it anywhere
// reproduces the failure.
func TestRemoteSimulatePermanentFailure(t *testing.T) {
	store, fx, _ := newRemote(t, func(fx *remoteFixture, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Sim-Permanent", "true")
		http.Error(w, "simulation: recovered panic: poisoned state", http.StatusInternalServerError)
	})
	tuneRemote(store)
	_, err := store.Simulate(testBaseWithSeed(1))
	if err == nil {
		t.Fatal("permanent server failure returned nil error")
	}
	if !IsPermanent(err) {
		t.Errorf("error %v not classified permanent", err)
	}
	if fx.sims.Load() != 1 {
		t.Errorf("permanent failure was retried: %d attempts", fx.sims.Load())
	}
	if store.Stats().LocalSims != 0 {
		t.Error("permanent failure fell back to local simulation")
	}
}

// TestRemoteSimulateLocalFallback: a persistently unreachable server
// degrades Simulate to local in-process execution — the sweep completes
// on client hardware instead of stalling — and once the failure streak
// hits the breaker threshold, later calls skip the network entirely.
func TestRemoteSimulateLocalFallback(t *testing.T) {
	store, _, ts := newRemote(t, func(fx *remoteFixture, w http.ResponseWriter, r *http.Request) {})
	ts.Close()
	tuneRemote(store)
	store.BreakerThreshold = 3

	cfg := testBase()
	res, err := store.Simulate(cfg)
	if err != nil {
		t.Fatalf("degraded Simulate: %v", err)
	}
	if res == nil || res.Cycles == 0 {
		t.Fatalf("degraded Simulate returned empty result: %+v", res)
	}
	stats := store.Stats()
	if stats.LocalSims != 1 {
		t.Errorf("stats.LocalSims = %d, want 1", stats.LocalSims)
	}
	if stats.Breaker != BreakerOpen {
		t.Errorf("breaker = %v after %d failures, want open", stats.Breaker, stats.Retries+1)
	}
	// Breaker open: the next cold run goes straight to local fallback
	// with zero new retries.
	before := store.Stats().Retries
	if _, err := store.Simulate(testBaseWithSeed(2)); err != nil {
		t.Fatalf("breaker-open Simulate: %v", err)
	}
	if got := store.Stats().Retries; got != before {
		t.Errorf("breaker-open Simulate still hit the network: %d retries, was %d", got, before)
	}
	// The result of a local fallback is cached for Get.
	if _, ok, err := store.Get(cfg.Normalize().Key()); !ok || err != nil {
		t.Errorf("locally simulated result not cached: %v, %v", ok, err)
	}
}

// TestRemoteNoLocalFallback: with NoLocalFallback set, an unreachable
// server yields a structured transient RunError instead of a local run.
func TestRemoteNoLocalFallback(t *testing.T) {
	store, _, ts := newRemote(t, func(fx *remoteFixture, w http.ResponseWriter, r *http.Request) {})
	ts.Close()
	tuneRemote(store)
	store.NoLocalFallback = true
	_, err := store.Simulate(testBaseWithSeed(1))
	if err == nil {
		t.Fatal("unreachable server returned nil error")
	}
	var re *RunError
	if !errors.As(err, &re) || re.Permanent {
		t.Errorf("error %v, want transient RunError", err)
	}
	if store.Stats().LocalSims != 0 {
		t.Error("NoLocalFallback still simulated locally")
	}
}

// TestRemoteBreakerRecovers: an open circuit admits a probe after the
// cooldown; a healthy response closes it and normal service resumes.
func TestRemoteBreakerRecovers(t *testing.T) {
	cfg := testBaseWithSeed(21).Normalize()
	key := cfg.Key()
	res := fakeResult(cfg)
	var healthy atomic.Bool
	store, _, _ := newRemote(t, func(fx *remoteFixture, w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "injected outage", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("ETag", `"`+key+`"`)
		json.NewEncoder(w).Encode(res)
	})
	tuneRemote(store)
	store.BreakerThreshold = 2
	store.BreakerCooldown = 5 * time.Millisecond

	if _, ok, _ := store.Get(key); ok {
		t.Fatal("outage Get reported a hit")
	}
	if store.Breaker() != BreakerOpen {
		t.Fatalf("breaker = %v after outage, want open", store.Breaker())
	}
	healthy.Store(true)
	time.Sleep(10 * time.Millisecond) // past the cooldown
	got, ok, err := store.Get(key)
	if err != nil || !ok || got.Cycles != res.Cycles {
		t.Fatalf("probe Get = %v, %v; want recovered hit", ok, err)
	}
	if store.Breaker() != BreakerClosed {
		t.Errorf("breaker = %v after successful probe, want closed", store.Breaker())
	}
	if store.Stats().BreakerOpens != 1 {
		t.Errorf("BreakerOpens = %d, want 1", store.Stats().BreakerOpens)
	}
}
