package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ndpage/internal/sim"
)

// defaultShards is the shard count when the caller passes <= 0: one per
// available CPU, since shards are compute-bound whole simulations.
func defaultShards() int {
	return runtime.GOMAXPROCS(0)
}

// RunSharded executes cfgs across a fixed set of shard goroutines and
// returns results in input order, exactly like Run. Where Run feeds a
// shared job channel (any worker takes the next job), RunSharded pins
// every unique configuration to one shard chosen by hashing its content
// key, and each shard executes its queue serially in key order. The
// schedule — which goroutine runs which configuration, and in what
// sequence — is therefore a pure function of the configuration set, not
// of completion timing, which makes replication sweeps reproducible
// under -race, under CPU contention, and across machines. Figure
// replications (same config, different seeds) hash to different shards
// and run in parallel.
//
// Shards <= 0 selects GOMAXPROCS shards. Like Run, cancelling ctx stops
// each shard before its next run; in-flight simulations complete and
// are stored. Results and errors follow Run's contract: input order,
// first failure in input order, nil result for failed or undispatched
// positions.
func (r *Runner) RunSharded(ctx context.Context, cfgs []sim.Config, shards int) ([]*sim.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if shards <= 0 {
		shards = defaultShards()
	}
	r.init()
	n := len(cfgs)
	norm := make([]sim.Config, n)
	keys := make([]string, n)
	for i, c := range cfgs {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: %s: %w", c.Desc(), err)
		}
		norm[i] = c.Normalize()
		keys[i] = norm[i].Key()
	}

	results := make(map[string]*sim.Result, n)
	runErrs := make(map[string]error)

	// Classify: serve store hits and negatively-cached failures, then
	// pin the rest — once per unique key — to its shard.
	queues := make([][]int, shards)
	queued := make(map[string]bool)
	for i := range norm {
		k := keys[i]
		if queued[k] {
			continue
		}
		queued[k] = true
		r.mu.Lock()
		memoErr, failed := r.errs[k]
		if failed {
			// Pin the memoized failure for this Run's assembly: the
			// capped memo may evict it before we read it back.
			runErrs[k] = memoErr
		}
		r.mu.Unlock()
		if failed {
			continue
		}
		res, ok, err := r.store.Get(k)
		if err != nil {
			return nil, err
		}
		if ok {
			r.mu.Lock()
			results[k] = res
			announce := !r.served[k]
			r.served[k] = true
			r.mu.Unlock()
			if announce {
				r.emit(Event{Config: norm[i], Key: k, Cached: true, Cycles: res.Cycles})
			}
			continue
		}
		s := shardOf(k, shards)
		queues[s] = append(queues[s], i)
	}

	// Each shard runs its queue serially in key order: the per-shard
	// sequence depends only on the key set, never on input order or on
	// other shards' progress.
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		q := queues[s]
		if len(q) == 0 {
			continue
		}
		sort.Slice(q, func(a, b int) bool { return keys[q[a]] < keys[q[b]] })
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, i := range q {
				if ctx.Err() != nil {
					return
				}
				r.runOne(norm[i], keys[i], results, runErrs)
			}
		}()
	}
	wg.Wait()

	// Assemble in input order; surface the first failure.
	out := make([]*sim.Result, n)
	var firstErr error
	for i, k := range keys {
		r.mu.Lock()
		out[i] = results[k]
		err := r.errs[k]
		if err == nil {
			err = runErrs[k]
		}
		r.mu.Unlock()
		if out[i] == nil && err == nil {
			err = ctx.Err() // never dispatched
		}
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	return out, firstErr
}

// shardOf pins key to a shard: FNV-1a over the content key, reduced mod
// shards. The hash is stable across processes (the key is a content
// address, the hash a fixed function), so a sweep's shard assignment is
// reproducible anywhere.
func shardOf(key string, shards int) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % uint64(shards))
}
