package sweep

import (
	"strings"
	"testing"

	"ndpage/internal/core"
	"ndpage/internal/memsys"
	"ndpage/internal/sim"
)

// testBase is a small valid base configuration.
func testBase() sim.Config {
	return sim.Config{
		System:         memsys.NDP,
		Cores:          1,
		Mechanism:      core.Radix,
		Workload:       "rnd",
		FootprintBytes: 64 << 20,
		MemoryBytes:    1 << 30,
		Warmup:         500,
		Instructions:   2_000,
	}
}

func TestPlanEmptyAxesKeepBase(t *testing.T) {
	p := Plan{Base: testBase()}
	cfgs, err := p.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 1 || p.Size() != 1 {
		t.Fatalf("empty-axes plan expanded to %d configs (Size %d), want 1", len(cfgs), p.Size())
	}
	if cfgs[0] != testBase() {
		t.Errorf("base config mutated: %+v", cfgs[0])
	}
}

func TestPlanCrossProductOrder(t *testing.T) {
	p := Plan{
		Base:       testBase(),
		Systems:    []memsys.Kind{memsys.NDP, memsys.CPU},
		Mechanisms: []core.Mechanism{core.Radix, core.NDPage},
		Cores:      []int{1, 2},
		Workloads:  []string{"rnd", "pr"},
	}
	cfgs, err := p.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 16 || p.Size() != 16 {
		t.Fatalf("expanded to %d configs (Size %d), want 16", len(cfgs), p.Size())
	}
	// Workloads are the outermost axis, cores the innermost of the four.
	if cfgs[0].Workload != "rnd" || cfgs[8].Workload != "pr" {
		t.Errorf("workload order wrong: %s then %s", cfgs[0].Workload, cfgs[8].Workload)
	}
	if cfgs[0].Cores != 1 || cfgs[1].Cores != 2 {
		t.Errorf("cores order wrong: %d then %d", cfgs[0].Cores, cfgs[1].Cores)
	}
	// Deterministic: a second expansion is identical.
	again, _ := p.Configs()
	for i := range cfgs {
		if cfgs[i] != again[i] {
			t.Fatalf("expansion not deterministic at %d", i)
		}
	}
}

func TestPlanSeedsAndVariants(t *testing.T) {
	p := Plan{
		Base:  testBase(),
		Seeds: []uint64{1, 2, 3},
		Variants: []Variant{
			{Name: "base"},
			{Name: "nopwc", Mutate: func(c *sim.Config) { c.DisablePWC = true }},
		},
	}
	cfgs, err := p.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 6 {
		t.Fatalf("expanded to %d configs, want 6", len(cfgs))
	}
	// Variants are innermost: seed 1 base, seed 1 nopwc, seed 2 base, ...
	if cfgs[0].DisablePWC || !cfgs[1].DisablePWC {
		t.Errorf("variant order wrong: %+v / %+v", cfgs[0].DisablePWC, cfgs[1].DisablePWC)
	}
	if cfgs[0].Seed != 1 || cfgs[2].Seed != 2 {
		t.Errorf("seed axis wrong: %d then %d", cfgs[0].Seed, cfgs[2].Seed)
	}
	// Every config validates and hashes distinctly.
	keys := map[string]bool{}
	for _, c := range cfgs {
		keys[c.Key()] = true
	}
	if len(keys) != 6 {
		t.Errorf("expected 6 distinct keys, got %d", len(keys))
	}
}

func TestPlanRejectsInvalidVariant(t *testing.T) {
	p := Plan{
		Base: testBase(),
		Variants: []Variant{
			{Name: "inert-width", Mutate: func(c *sim.Config) { c.WalkerWidth = 4 }},
		},
	}
	_, err := p.Configs()
	if err == nil {
		t.Fatal("plan accepted an inert walker width")
	}
	if !strings.Contains(err.Error(), "inert-width") {
		t.Errorf("error %q does not name the variant", err)
	}
}

func TestPlanRejectsUnknownWorkload(t *testing.T) {
	p := Plan{Base: testBase(), Workloads: []string{"rnd", "no-such"}}
	if _, err := p.Configs(); err == nil {
		t.Fatal("plan accepted an unknown workload")
	}
}
