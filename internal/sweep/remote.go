package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ndpage/internal/sim"
)

// RemoteStore is a Store backed by an ndpserve instance: the shared
// sweep-result service (internal/serve). It implements three layers of
// the protocol:
//
//   - Get fetches warm results over HTTP, revalidating entries it
//     already holds with per-key ETag / If-None-Match (a match costs a
//     304 with no body). Fetched results land in a local write-through
//     cache, so a key is transferred at most once per process.
//   - Put writes through: the result is cached locally and uploaded to
//     the server, except for results the server itself produced or
//     served (it already has them).
//   - Simulate (the Simulator extension) delegates cold runs to the
//     server's singleflight scheduler via POST /v1/sim: identical
//     requests from any number of clients collapse into one simulation
//     server-side. A 429 (queue full) is retried after the server's
//     Retry-After delay until Context cancels.
//
// The store is resilient by default: transient failures — connection
// resets, timeouts, 5xx responses, truncated bodies — are retried with
// capped jittered exponential backoff under per-attempt deadlines, and
// a circuit breaker watches consecutive transport failures. When the
// server is persistently unreachable the breaker opens and the store
// degrades instead of failing the sweep: Get serves the local copy or
// reports a miss, Put keeps the result locally, and Simulate falls back
// to local in-process simulation. While open, the breaker admits one
// probe per cooldown interval; a probe that succeeds closes it and
// normal service resumes.
//
// Because results are content-addressed by sim.Config.Key(), a locally
// cached entry can never be stale; revalidation exists to detect a
// server that re-served a key with a different entity (a corrupted or
// repopulated store), and a server miss on a locally held key degrades
// to the local copy. A RemoteStore is safe for concurrent use.
type RemoteStore struct {
	// Context, when non-nil, cancels in-flight HTTP requests, backoff
	// waits, and 429 retry waits (Ctrl-C on the CLI). Set before first
	// use.
	Context context.Context
	// Client overrides the HTTP client (nil = http.DefaultClient; note
	// Simulate blocks for a whole server-side simulation, so a client
	// with an aggressive Timeout will cut long runs short).
	Client *http.Client

	// MaxAttempts bounds HTTP attempts per logical request across
	// transient failures (0 = 4). Backpressure 429s do not consume
	// attempts: the server is alive, just busy.
	MaxAttempts int
	// BackoffBase is the first retry delay; it doubles per attempt with
	// up to 50% additive jitter (0 = 100ms).
	BackoffBase time.Duration
	// BackoffCap caps the (pre-jitter) retry delay (0 = 2s).
	BackoffCap time.Duration
	// RequestTimeout is the per-attempt deadline for Get and Put
	// (0 = 15s). Simulate attempts use SimTimeout instead.
	RequestTimeout time.Duration
	// SimTimeout is the per-attempt deadline for Simulate (0 = none: a
	// server-side simulation legitimately runs for minutes; the server's
	// own watchdog bounds runaway runs).
	SimTimeout time.Duration
	// BreakerThreshold is the consecutive transport-failure count that
	// opens the circuit (0 = 5, negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open before
	// admitting a recovery probe (0 = 10s).
	BreakerCooldown time.Duration
	// NoLocalFallback disables degraded local simulation: with it set, a
	// Simulate that cannot reach the server returns a transient RunError
	// instead of running the configuration in-process.
	NoLocalFallback bool

	base string

	mu       sync.Mutex
	local    map[string]*sim.Result
	etags    map[string]string
	onServer map[string]bool

	brkMu       sync.Mutex
	brkState    BreakerState
	brkFailures int
	brkOpenedAt time.Time

	hits         atomic.Uint64 // results fetched from the server
	revalidated  atomic.Uint64 // local copies confirmed by a 304
	misses       atomic.Uint64 // keys the server does not hold
	remoteSims   atomic.Uint64 // cold runs delegated via POST /v1/sim
	uploads      atomic.Uint64 // results uploaded via PUT
	retries      atomic.Uint64 // HTTP attempts repeated after a transient failure
	breakerOpens atomic.Uint64 // closed/half-open -> open transitions
	localSims    atomic.Uint64 // cold runs simulated locally (degraded mode)
	degradedGets atomic.Uint64 // Gets answered without the server (breaker open or retries exhausted)
	droppedPuts  atomic.Uint64 // uploads abandoned to an unreachable server
}

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: normal service, every request goes to the server.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the server is considered unreachable; requests
	// degrade locally without touching the network until the cooldown
	// elapses.
	BreakerOpen
	// BreakerHalfOpen: one recovery probe is in flight; its outcome
	// closes or re-opens the circuit.
	BreakerHalfOpen
)

// String renders the state for logs and /statsz-style snapshots.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// RemoteStats is a snapshot of a RemoteStore's traffic counters.
type RemoteStats struct {
	Hits         uint64 // results fetched from the server
	Revalidated  uint64 // local copies confirmed by a 304
	Misses       uint64 // keys the server does not hold
	RemoteSims   uint64 // cold runs delegated to the server
	Uploads      uint64 // locally computed results uploaded
	Retries      uint64 // attempts repeated after transient failures
	BreakerOpens uint64 // circuit open transitions
	LocalSims    uint64 // cold runs simulated locally in degraded mode
	DegradedGets uint64 // Gets answered without the server
	DroppedPuts  uint64 // uploads abandoned to an unreachable server

	Breaker BreakerState // current circuit position
}

// NewRemoteStore returns a RemoteStore talking to the ndpserve instance
// at baseURL (e.g. "http://localhost:8947"). The URL must be absolute
// with an http or https scheme; a trailing slash is tolerated.
func NewRemoteStore(baseURL string) (*RemoteStore, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("sweep: remote store URL: %w", err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("sweep: remote store URL %q: want http(s)://host[:port]", baseURL)
	}
	return &RemoteStore{
		base:     strings.TrimRight(baseURL, "/"),
		local:    make(map[string]*sim.Result),
		etags:    make(map[string]string),
		onServer: make(map[string]bool),
	}, nil
}

// BaseURL returns the server address the store talks to.
func (s *RemoteStore) BaseURL() string { return s.base }

// Stats returns a snapshot of the traffic counters.
func (s *RemoteStore) Stats() RemoteStats {
	return RemoteStats{
		Hits:         s.hits.Load(),
		Revalidated:  s.revalidated.Load(),
		Misses:       s.misses.Load(),
		RemoteSims:   s.remoteSims.Load(),
		Uploads:      s.uploads.Load(),
		Retries:      s.retries.Load(),
		BreakerOpens: s.breakerOpens.Load(),
		LocalSims:    s.localSims.Load(),
		DegradedGets: s.degradedGets.Load(),
		DroppedPuts:  s.droppedPuts.Load(),
		Breaker:      s.Breaker(),
	}
}

func (s *RemoteStore) ctx() context.Context {
	if s.Context != nil {
		return s.Context
	}
	return context.Background()
}

func (s *RemoteStore) httpc() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

func (s *RemoteStore) attempts() int {
	if s.MaxAttempts > 0 {
		return s.MaxAttempts
	}
	return 4
}

func (s *RemoteStore) requestTimeout() time.Duration {
	if s.RequestTimeout > 0 {
		return s.RequestTimeout
	}
	return 15 * time.Second
}

func (s *RemoteStore) breakerThreshold() int {
	if s.BreakerThreshold != 0 {
		return s.BreakerThreshold
	}
	return 5
}

func (s *RemoteStore) breakerCooldown() time.Duration {
	if s.BreakerCooldown > 0 {
		return s.BreakerCooldown
	}
	return 10 * time.Second
}

// Breaker returns the circuit's current position (an open circuit past
// its cooldown reads as open until the next request probes it).
func (s *RemoteStore) Breaker() BreakerState {
	s.brkMu.Lock()
	defer s.brkMu.Unlock()
	return s.brkState
}

// breakerAllow reports whether a request may go to the server. While
// open, the first caller past the cooldown is admitted as the recovery
// probe (half-open); everyone else degrades locally until the probe
// resolves the circuit.
func (s *RemoteStore) breakerAllow() bool {
	if s.breakerThreshold() < 0 {
		return true
	}
	s.brkMu.Lock()
	defer s.brkMu.Unlock()
	switch s.brkState {
	case BreakerOpen:
		if time.Since(s.brkOpenedAt) >= s.breakerCooldown() {
			s.brkState = BreakerHalfOpen
			return true
		}
		return false
	case BreakerHalfOpen:
		return false
	default:
		return true
	}
}

// breakerReport records a transport outcome: success closes the circuit
// and clears the failure streak; failure extends the streak and opens
// the circuit at the threshold (immediately, for a failed half-open
// probe).
func (s *RemoteStore) breakerReport(ok bool) {
	if s.breakerThreshold() < 0 {
		return
	}
	s.brkMu.Lock()
	defer s.brkMu.Unlock()
	if ok {
		s.brkState = BreakerClosed
		s.brkFailures = 0
		return
	}
	s.brkFailures++
	if s.brkState == BreakerHalfOpen || s.brkFailures >= s.breakerThreshold() {
		if s.brkState != BreakerOpen {
			s.breakerOpens.Add(1)
		}
		s.brkState = BreakerOpen
		s.brkOpenedAt = time.Now()
	}
}

// backoff waits out the capped, jittered exponential delay before retry
// attempt (1-based), honoring Context. It reports false when the
// context cancelled first.
func (s *RemoteStore) backoff(attempt int) bool {
	base := s.BackoffBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	cap := s.BackoffCap
	if cap <= 0 {
		cap = 2 * time.Second
	}
	d := base << (attempt - 1)
	if d > cap || d <= 0 {
		d = cap
	}
	// Additive jitter up to 50%, so a fleet of clients retrying a
	// recovering server does not stampede it in lockstep.
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	s.retries.Add(1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.ctx().Done():
		return false
	case <-t.C:
		return true
	}
}

// cache records a server-held result in the local write-through cache.
func (s *RemoteStore) cache(key string, res *sim.Result, etag string) {
	s.mu.Lock()
	s.local[key] = res
	if etag != "" {
		s.etags[key] = etag
	}
	s.onServer[key] = true
	s.mu.Unlock()
}

// Len returns the number of locally cached results (Inventory; the
// server-side inventory is on /statsz).
func (s *RemoteStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.local)
}

// Keys returns the locally cached keys in sorted order (Inventory).
func (s *RemoteStore) Keys() []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.local))
	for k := range s.local {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// errBody formats an error response, folding in the server's message.
func errBody(op string, resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(b))
	if msg == "" {
		msg = resp.Status
	}
	return fmt.Errorf("sweep: remote %s: %s", op, msg)
}

// integrityError marks a well-formed response whose payload fails
// content-address verification: the server is reachable but served the
// wrong bytes. Never retried — the server would serve them again.
type integrityError struct{ msg string }

func (e *integrityError) Error() string { return e.msg }

// decodeResult decodes a result body and verifies its content address.
// A decode failure (torn connection, truncated body) is an ordinary
// retryable error; an entry whose embedded configuration does not hash
// to key is an integrityError — a server-side integrity failure, not a
// usable result and not worth a retry.
func decodeResult(key string, body io.Reader) (*sim.Result, error) {
	var res sim.Result
	if err := json.NewDecoder(body).Decode(&res); err != nil {
		return nil, fmt.Errorf("sweep: remote result %s: %w", key, err)
	}
	if got := res.Config.Key(); got != key {
		return nil, &integrityError{fmt.Sprintf("sweep: remote result %s: content address mismatch (config hashes to %s)", key, got)}
	}
	return &res, nil
}

// attemptCtx derives the per-attempt deadline context.
func (s *RemoteStore) attemptCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return s.ctx(), func() {}
	}
	return context.WithTimeout(s.ctx(), timeout)
}

// Get implements Store: a warm-key fetch from the server. Keys already
// held locally are revalidated with If-None-Match; a 304 serves the
// local copy with no body transferred. Transient failures are retried
// with backoff; a server that stays unreachable degrades rather than
// failing the sweep — the local copy if one is held, otherwise a miss,
// which routes the run to Simulate (and, with the breaker open, to
// local in-process simulation). Errors are reserved for failures
// retrying cannot fix: malformed keys, integrity mismatches, 4xx.
func (s *RemoteStore) Get(key string) (*sim.Result, bool, error) {
	s.mu.Lock()
	localRes := s.local[key]
	etag := s.etags[key]
	s.mu.Unlock()

	degrade := func() (*sim.Result, bool, error) {
		s.degradedGets.Add(1)
		if localRes != nil {
			return localRes, true, nil
		}
		return nil, false, nil
	}
	if !s.breakerAllow() {
		return degrade()
	}

	for attempt := 1; ; attempt++ {
		ctx, cancel := s.attemptCtx(s.requestTimeout())
		res, ok, err, retryable := s.getOnce(ctx, key, localRes, etag)
		cancel()
		if !retryable {
			return res, ok, err
		}
		if attempt >= s.attempts() || !s.breakerAllow() || !s.backoff(attempt) {
			return degrade()
		}
	}
}

// getOnce performs one GET attempt. retryable reports a transient
// failure the caller may re-attempt; otherwise the first three return
// values are final.
func (s *RemoteStore) getOnce(ctx context.Context, key string, localRes *sim.Result, etag string) (*sim.Result, bool, error, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/v1/result/"+key, nil)
	if err != nil {
		return nil, false, fmt.Errorf("sweep: remote get %s: %w", key, err), false
	}
	if localRes != nil && etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := s.httpc().Do(req)
	if err != nil {
		s.breakerReport(false)
		return nil, false, nil, true
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 500 {
		s.breakerReport(false)
		return nil, false, nil, true
	}
	s.breakerReport(true)

	switch resp.StatusCode {
	case http.StatusNotModified:
		s.revalidated.Add(1)
		return localRes, true, nil, false
	case http.StatusOK:
		res, err := decodeResult(key, resp.Body)
		var ie *integrityError
		if errors.As(err, &ie) {
			return nil, false, err, false
		}
		if err != nil {
			// The body tore mid-transfer; the server itself is fine.
			return nil, false, nil, true
		}
		s.cache(key, res, resp.Header.Get("ETag"))
		s.hits.Add(1)
		return res, true, nil, false
	case http.StatusNotFound:
		if localRes != nil {
			// The server lost (or never had) an entry we hold; the
			// local copy is still exactly the result for this key.
			return localRes, true, nil, false
		}
		s.misses.Add(1)
		return nil, false, nil, false
	default:
		return nil, false, errBody("get "+key, resp), false
	}
}

// Put implements Store: write-through. The result always lands in the
// local cache; the upload to the server is retried through transient
// failures but ultimately best-effort — a server that stays unreachable
// costs the upload (counted in DroppedPuts), never the sweep, since the
// server can always recompute a content-addressed entry. Errors are
// reserved for failures that are not the transport's fault (encoding,
// 4xx rejections).
func (s *RemoteStore) Put(key string, res *sim.Result) error {
	s.mu.Lock()
	s.local[key] = res
	known := s.onServer[key]
	s.mu.Unlock()
	if known {
		return nil
	}
	b, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("sweep: remote put %s: %w", key, err)
	}
	if !s.breakerAllow() {
		s.droppedPuts.Add(1)
		return nil
	}
	for attempt := 1; ; attempt++ {
		ctx, cancel := s.attemptCtx(s.requestTimeout())
		err, retryable := s.putOnce(ctx, key, b)
		cancel()
		if !retryable {
			return err
		}
		if attempt >= s.attempts() || !s.breakerAllow() || !s.backoff(attempt) {
			s.droppedPuts.Add(1)
			return nil
		}
	}
}

// putOnce performs one PUT attempt.
func (s *RemoteStore) putOnce(ctx context.Context, key string, body []byte) (error, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, s.base+"/v1/result/"+key, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("sweep: remote put %s: %w", key, err), false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.httpc().Do(req)
	if err != nil {
		s.breakerReport(false)
		return nil, true
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 500 {
		s.breakerReport(false)
		return nil, true
	}
	s.breakerReport(true)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return errBody("put "+key, resp), false
	}
	s.mu.Lock()
	s.onServer[key] = true
	if etag := resp.Header.Get("ETag"); etag != "" {
		s.etags[key] = etag
	}
	s.mu.Unlock()
	s.uploads.Add(1)
	return nil, false
}

// retryAfter parses a 429's Retry-After delay, clamped to [1s, 30s].
func retryAfter(resp *http.Response) time.Duration {
	d := time.Second
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// localFallback is degraded-mode Simulate: the server is unreachable,
// so the configuration runs in-process (unless NoLocalFallback asks for
// a structured transient failure instead). The result is cached locally
// but not marked server-resident, so a later Put retries the upload
// once the circuit closes.
func (s *RemoteStore) localFallback(cfg sim.Config, key string, cause error) (*sim.Result, error) {
	if s.NoLocalFallback {
		return nil, &RunError{Op: "remote-sim", Desc: cfg.Desc(), Err: fmt.Errorf("server unreachable (circuit %s): %w", s.Breaker(), cause)}
	}
	s.localSims.Add(1)
	res, err := Guard(sim.RunConfig)(cfg)
	if err != nil {
		if !IsPermanent(err) {
			var re *RunError
			if !errors.As(err, &re) {
				err = &RunError{Op: "simulate", Desc: cfg.Desc(), Permanent: true, Err: err}
			}
		}
		return nil, err
	}
	s.mu.Lock()
	s.local[key] = res
	s.mu.Unlock()
	return res, nil
}

// Simulate implements Simulator: the cold-run path. The configuration
// is posted to the server, which either answers warm from its store or
// schedules the run on its worker pool — collapsing concurrent
// identical requests (from this client and every other) into a single
// simulation. Backpressure (429) is retried after the server's
// Retry-After delay until the run is accepted or Context cancels;
// transient failures (resets, timeouts, 5xx the server marks
// retryable) back off and retry up to MaxAttempts. A server that stays
// unreachable — or a breaker already open — degrades to local
// in-process simulation, so the sweep completes on client hardware
// instead of stalling. Permanent server-side failures (the server sets
// X-Sim-Permanent: true) return a RunError with Permanent set and are
// never retried.
func (s *RemoteStore) Simulate(cfg sim.Config) (*sim.Result, error) {
	cfg = cfg.Normalize()
	key := cfg.Key()
	body, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("sweep: remote sim %s: %w", cfg.Desc(), err)
	}
	unreachable := errors.New("retries exhausted")
	if !s.breakerAllow() {
		return s.localFallback(cfg, key, unreachable)
	}
	for attempt := 1; ; attempt++ {
		res, err, retryable := s.simulateOnce(cfg, key, body)
		if !retryable {
			return res, err
		}
		if err != nil {
			unreachable = err
		}
		if attempt >= s.attempts() || !s.breakerAllow() || !s.backoff(attempt) {
			if cerr := s.ctx().Err(); cerr != nil {
				return nil, cerr
			}
			return s.localFallback(cfg, key, unreachable)
		}
	}
}

// simulateOnce performs one POST /v1/sim attempt, waiting out any 429
// backpressure inside the attempt (the server is alive when it sends
// 429, so pacing rounds do not consume retry attempts).
func (s *RemoteStore) simulateOnce(cfg sim.Config, key string, body []byte) (*sim.Result, error, bool) {
	for {
		ctx, cancel := s.attemptCtx(s.SimTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+"/v1/sim", bytes.NewReader(body))
		if err != nil {
			cancel()
			return nil, fmt.Errorf("sweep: remote sim %s: %w", cfg.Desc(), err), false
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := s.httpc().Do(req)
		if err != nil {
			cancel()
			if cerr := s.ctx().Err(); cerr != nil {
				return nil, cerr, false
			}
			s.breakerReport(false)
			return nil, fmt.Errorf("sweep: remote sim %s: %w", cfg.Desc(), err), true
		}
		done, res, rerr, retryable := s.simResponse(cfg, key, resp)
		cancel()
		if done {
			return res, rerr, retryable
		}
		// 429: honor the server's pacing (with jitter) and re-post.
		if cerr := s.ctx().Err(); cerr != nil {
			return nil, cerr, false
		}
	}
}

// simResponse consumes one /v1/sim response. done is false only for
// backpressure (429), after the pacing delay has been waited out.
func (s *RemoteStore) simResponse(cfg sim.Config, key string, resp *http.Response) (done bool, _ *sim.Result, _ error, retryable bool) {
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		s.breakerReport(true)
		res, err := decodeResult(key, resp.Body)
		var ie *integrityError
		if errors.As(err, &ie) {
			return true, nil, err, false
		}
		if err != nil {
			// Truncated mid-body: the next attempt will find the key warm.
			return true, nil, fmt.Errorf("sweep: remote sim %s: %w", cfg.Desc(), err), true
		}
		s.cache(key, res, resp.Header.Get("ETag"))
		s.remoteSims.Add(1)
		return true, res, nil, false
	case resp.StatusCode == http.StatusTooManyRequests:
		// The server's queue is full: honor its pacing and retry.
		s.breakerReport(true)
		delay := retryAfter(resp)
		delay += time.Duration(rand.Int63n(int64(delay)/4 + 1))
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-s.ctx().Done():
			return true, nil, s.ctx().Err(), false
		case <-t.C:
			return false, nil, nil, false
		}
	case resp.StatusCode >= 500:
		err := errBody("sim "+cfg.Desc(), resp)
		if resp.Header.Get("X-Sim-Permanent") == "true" {
			// The server ran the configuration and it failed
			// deterministically; retrying would reproduce it.
			s.breakerReport(true)
			return true, nil, &RunError{Op: "remote-sim", Desc: cfg.Desc(), Permanent: true, Err: err}, false
		}
		// Transient server-side failure (watchdog kill, injected fault)
		// or a gateway error: worth a retry. Only the latter indicts the
		// transport, but the distinction is invisible here; counting both
		// against the breaker errs toward degrading early, which is the
		// resilient direction.
		s.breakerReport(false)
		return true, nil, err, true
	default:
		s.breakerReport(true)
		return true, nil, errBody("sim "+cfg.Desc(), resp), false
	}
}
