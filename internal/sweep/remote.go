package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ndpage/internal/sim"
)

// RemoteStore is a Store backed by an ndpserve instance: the shared
// sweep-result service (internal/serve). It implements three layers of
// the protocol:
//
//   - Get fetches warm results over HTTP, revalidating entries it
//     already holds with per-key ETag / If-None-Match (a match costs a
//     304 with no body). Fetched results land in a local write-through
//     cache, so a key is transferred at most once per process.
//   - Put writes through: the result is cached locally and uploaded to
//     the server, except for results the server itself produced or
//     served (it already has them).
//   - Simulate (the Simulator extension) delegates cold runs to the
//     server's singleflight scheduler via POST /v1/sim: identical
//     requests from any number of clients collapse into one simulation
//     server-side. A 429 (queue full) is retried after the server's
//     Retry-After delay until Context cancels.
//
// Because results are content-addressed by sim.Config.Key(), a locally
// cached entry can never be stale; revalidation exists to detect a
// server that re-served a key with a different entity (a corrupted or
// repopulated store), and a server miss on a locally held key degrades
// to the local copy. A RemoteStore is safe for concurrent use.
type RemoteStore struct {
	// Context, when non-nil, cancels in-flight HTTP requests and
	// 429 retry waits (Ctrl-C on the CLI). Set before first use.
	Context context.Context
	// Client overrides the HTTP client (nil = http.DefaultClient; note
	// Simulate blocks for a whole server-side simulation, so a client
	// with an aggressive Timeout will cut long runs short).
	Client *http.Client

	base string

	mu       sync.Mutex
	local    map[string]*sim.Result
	etags    map[string]string
	onServer map[string]bool

	hits        atomic.Uint64 // results fetched from the server
	revalidated atomic.Uint64 // local copies confirmed by a 304
	misses      atomic.Uint64 // keys the server does not hold
	remoteSims  atomic.Uint64 // cold runs delegated via POST /v1/sim
	uploads     atomic.Uint64 // results uploaded via PUT
}

// RemoteStats is a snapshot of a RemoteStore's traffic counters.
type RemoteStats struct {
	Hits        uint64 // results fetched from the server
	Revalidated uint64 // local copies confirmed by a 304
	Misses      uint64 // keys the server does not hold
	RemoteSims  uint64 // cold runs delegated to the server
	Uploads     uint64 // locally computed results uploaded
}

// NewRemoteStore returns a RemoteStore talking to the ndpserve instance
// at baseURL (e.g. "http://localhost:8947"). The URL must be absolute
// with an http or https scheme; a trailing slash is tolerated.
func NewRemoteStore(baseURL string) (*RemoteStore, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("sweep: remote store URL: %w", err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("sweep: remote store URL %q: want http(s)://host[:port]", baseURL)
	}
	return &RemoteStore{
		base:     strings.TrimRight(baseURL, "/"),
		local:    make(map[string]*sim.Result),
		etags:    make(map[string]string),
		onServer: make(map[string]bool),
	}, nil
}

// BaseURL returns the server address the store talks to.
func (s *RemoteStore) BaseURL() string { return s.base }

// Stats returns a snapshot of the traffic counters.
func (s *RemoteStore) Stats() RemoteStats {
	return RemoteStats{
		Hits:        s.hits.Load(),
		Revalidated: s.revalidated.Load(),
		Misses:      s.misses.Load(),
		RemoteSims:  s.remoteSims.Load(),
		Uploads:     s.uploads.Load(),
	}
}

func (s *RemoteStore) ctx() context.Context {
	if s.Context != nil {
		return s.Context
	}
	return context.Background()
}

func (s *RemoteStore) httpc() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

// cache records a server-held result in the local write-through cache.
func (s *RemoteStore) cache(key string, res *sim.Result, etag string) {
	s.mu.Lock()
	s.local[key] = res
	if etag != "" {
		s.etags[key] = etag
	}
	s.onServer[key] = true
	s.mu.Unlock()
}

// Len returns the number of locally cached results (Inventory; the
// server-side inventory is on /statsz).
func (s *RemoteStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.local)
}

// Keys returns the locally cached keys in sorted order (Inventory).
func (s *RemoteStore) Keys() []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.local))
	for k := range s.local {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// errBody formats an error response, folding in the server's message.
func errBody(op string, resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(b))
	if msg == "" {
		msg = resp.Status
	}
	return fmt.Errorf("sweep: remote %s: %s", op, msg)
}

// decodeResult decodes a result body and verifies its content address:
// an entry whose embedded configuration does not hash to key is a
// server-side integrity failure, not a usable result.
func decodeResult(key string, body io.Reader) (*sim.Result, error) {
	var res sim.Result
	if err := json.NewDecoder(body).Decode(&res); err != nil {
		return nil, fmt.Errorf("sweep: remote result %s: %w", key, err)
	}
	if got := res.Config.Key(); got != key {
		return nil, fmt.Errorf("sweep: remote result %s: content address mismatch (config hashes to %s)", key, got)
	}
	return &res, nil
}

// Get implements Store: a warm-key fetch from the server. Keys already
// held locally are revalidated with If-None-Match; a 304 serves the
// local copy with no body transferred. A server the client cannot
// reach fails a cold Get but degrades to the local copy for keys
// already held (content-addressed entries cannot be stale).
func (s *RemoteStore) Get(key string) (*sim.Result, bool, error) {
	s.mu.Lock()
	localRes := s.local[key]
	etag := s.etags[key]
	s.mu.Unlock()

	req, err := http.NewRequestWithContext(s.ctx(), http.MethodGet, s.base+"/v1/result/"+key, nil)
	if err != nil {
		return nil, false, fmt.Errorf("sweep: remote get %s: %w", key, err)
	}
	if localRes != nil && etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := s.httpc().Do(req)
	if err != nil {
		if localRes != nil {
			return localRes, true, nil
		}
		return nil, false, fmt.Errorf("sweep: remote get %s: %w", key, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	switch resp.StatusCode {
	case http.StatusNotModified:
		s.revalidated.Add(1)
		return localRes, true, nil
	case http.StatusOK:
		res, err := decodeResult(key, resp.Body)
		if err != nil {
			return nil, false, err
		}
		s.cache(key, res, resp.Header.Get("ETag"))
		s.hits.Add(1)
		return res, true, nil
	case http.StatusNotFound:
		if localRes != nil {
			// The server lost (or never had) an entry we hold; the
			// local copy is still exactly the result for this key.
			return localRes, true, nil
		}
		s.misses.Add(1)
		return nil, false, nil
	default:
		return nil, false, errBody("get "+key, resp)
	}
}

// Put implements Store: write-through. The result lands in the local
// cache and is uploaded to the server, unless the server is already
// known to hold the key (it produced or served the result itself).
func (s *RemoteStore) Put(key string, res *sim.Result) error {
	s.mu.Lock()
	s.local[key] = res
	known := s.onServer[key]
	s.mu.Unlock()
	if known {
		return nil
	}
	b, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("sweep: remote put %s: %w", key, err)
	}
	req, err := http.NewRequestWithContext(s.ctx(), http.MethodPut, s.base+"/v1/result/"+key, bytes.NewReader(b))
	if err != nil {
		return fmt.Errorf("sweep: remote put %s: %w", key, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.httpc().Do(req)
	if err != nil {
		return fmt.Errorf("sweep: remote put %s: %w", key, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return errBody("put "+key, resp)
	}
	s.mu.Lock()
	s.onServer[key] = true
	if etag := resp.Header.Get("ETag"); etag != "" {
		s.etags[key] = etag
	}
	s.mu.Unlock()
	s.uploads.Add(1)
	return nil
}

// retryAfter parses a 429's Retry-After delay, clamped to [1s, 30s].
func retryAfter(resp *http.Response) time.Duration {
	d := time.Second
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// Simulate implements Simulator: the cold-run path. The configuration
// is posted to the server, which either answers warm from its store or
// schedules the run on its worker pool — collapsing concurrent
// identical requests (from this client and every other) into a single
// simulation. Backpressure (429) is retried after the server's
// Retry-After delay until the run is accepted or Context cancels.
func (s *RemoteStore) Simulate(cfg sim.Config) (*sim.Result, error) {
	cfg = cfg.Normalize()
	key := cfg.Key()
	body, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("sweep: remote sim %s: %w", cfg.Desc(), err)
	}
	for {
		req, err := http.NewRequestWithContext(s.ctx(), http.MethodPost, s.base+"/v1/sim", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("sweep: remote sim %s: %w", cfg.Desc(), err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := s.httpc().Do(req)
		if err != nil {
			return nil, fmt.Errorf("sweep: remote sim %s: %w", cfg.Desc(), err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			res, err := decodeResult(key, resp.Body)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			s.cache(key, res, resp.Header.Get("ETag"))
			s.remoteSims.Add(1)
			return res, nil
		case http.StatusTooManyRequests:
			// The server's queue is full: honor its pacing and retry.
			delay := retryAfter(resp)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			t := time.NewTimer(delay)
			select {
			case <-s.ctx().Done():
				t.Stop()
				return nil, s.ctx().Err()
			case <-t.C:
			}
		default:
			err := errBody("sim "+cfg.Desc(), resp)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil, err
		}
	}
}
