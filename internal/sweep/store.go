package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"ndpage/internal/sim"
)

// Store persists simulation results content-addressed by
// sim.Config.Key(): the key is a hash of the fully-normalized
// configuration, so a stored result is valid for exactly the runs that
// would reproduce it. Implementations must be safe for concurrent use.
type Store interface {
	// Get returns the stored result for key, reporting whether one
	// exists. A miss is (nil, false, nil); errors are reserved for real
	// failures (I/O, corruption).
	Get(key string) (*sim.Result, bool, error)
	// Put stores res under key, overwriting any previous entry.
	Put(key string, res *sim.Result) error
}

// Inventory is the optional Store extension for stores that can report
// their contents cheaply — without a directory walk or network round
// trip per call. The result server's /statsz endpoint uses it to report
// stored-result counts on every scrape. MemStore and DirStore both
// implement it.
type Inventory interface {
	// Len returns the number of stored results.
	Len() int
	// Keys returns every stored key in sorted order.
	Keys() []string
}

// Quarantiner is the optional Store extension for stores that isolate
// corrupt entries instead of failing on them. The result server's
// /statsz endpoint reports the count so an operator notices a sick disk
// (or a chaos test asserts its injected corruption was healed).
type Quarantiner interface {
	// Quarantined returns the number of corrupt entries isolated since
	// the store was opened.
	Quarantined() int
}

// Simulator is the optional Store extension for stores that can compute
// a missing result themselves — a RemoteStore backed by an ndpserve
// instance runs the simulation server-side, where a singleflight
// scheduler collapses identical requests from every client into one
// run. When a Runner's store implements Simulator (and no explicit
// Simulate override is set), cold keys are delegated to it instead of
// simulated in-process.
type Simulator interface {
	Simulate(cfg sim.Config) (*sim.Result, error)
}

// MemStore is an in-process Store: a map under a mutex. The zero value
// is NOT ready to use; call NewMemStore.
type MemStore struct {
	mu sync.RWMutex
	m  map[string]*sim.Result
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string]*sim.Result)}
}

// Get implements Store.
func (s *MemStore) Get(key string) (*sim.Result, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	res, ok := s.m[key]
	return res, ok, nil
}

// Put implements Store.
func (s *MemStore) Put(key string, res *sim.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = res
	return nil
}

// Len returns the number of stored results.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Keys returns the stored keys in sorted order.
func (s *MemStore) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DirStore is an on-disk Store: one JSON file per result, named by the
// config key. Writes go through a temp file + rename, so an interrupted
// sweep never leaves a half-written entry — whatever completed before
// the kill is picked up unchanged by the next run, and the sweep resumes
// from where it stopped.
//
// DirStore also keeps an in-memory key inventory: the directory is
// scanned once at open, then maintained on every Put (and on Get hits
// for entries another process wrote), so Len and Keys never walk the
// directory. A long-lived server scraping /statsz pays map reads, not
// readdir syscalls, per snapshot.
//
// Corrupt entries self-heal: an entry that no longer parses — a torn
// write that bypassed the atomic rename (power loss, a sick filesystem,
// an injected chaos fault) — is moved into a quarantine/ subdirectory,
// counted, and reported as a miss, so the sweep re-simulates the run
// instead of hard-failing on that key forever. The debris is kept, not
// deleted, so an operator can post-mortem it.
type DirStore struct {
	dir string

	mu          sync.Mutex
	keys        map[string]struct{}
	quarantined int
}

// NewDirStore opens (creating if needed) the cache directory. Temp
// files orphaned by a killed writer are swept out on open, and the
// existing entries are indexed for Len/Keys.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	if stale, err := filepath.Glob(filepath.Join(dir, "*.tmp-*")); err == nil {
		for _, p := range stale {
			os.Remove(p)
		}
	}
	s := &DirStore{dir: dir, keys: make(map[string]struct{})}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("sweep: cache dir scan: %w", err)
	}
	for _, p := range entries {
		s.keys[strings.TrimSuffix(filepath.Base(p), ".json")] = struct{}{}
	}
	return s, nil
}

// Len returns the number of stored results (from the in-memory
// inventory; no directory walk).
func (s *DirStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.keys)
}

// Keys returns the stored keys in sorted order (from the in-memory
// inventory; no directory walk).
func (s *DirStore) Keys() []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.keys))
	for k := range s.keys {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// index records key in the inventory.
func (s *DirStore) index(key string) {
	s.mu.Lock()
	s.keys[key] = struct{}{}
	s.mu.Unlock()
}

// Quarantined returns the number of corrupt entries isolated since open.
func (s *DirStore) Quarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// quarantine isolates a corrupt entry: the file moves into quarantine/
// under a sequence-numbered name (repeated corruption of one key keeps
// every specimen), the key leaves the inventory, and the caller reports
// a miss so the run re-simulates. If the rename itself fails the debris
// is removed instead — a corrupt entry must never be served again.
func (s *DirStore) quarantine(key, path string) {
	s.mu.Lock()
	s.quarantined++
	n := s.quarantined
	delete(s.keys, key)
	s.mu.Unlock()
	qdir := filepath.Join(s.dir, "quarantine")
	dst := filepath.Join(qdir, fmt.Sprintf("%s.%d.json", key, n))
	if err := os.MkdirAll(qdir, 0o755); err != nil || os.Rename(path, dst) != nil {
		os.Remove(path)
	}
}

// Dir returns the cache directory.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) path(key string) (string, error) {
	// Keys are hex hashes; refuse anything that could escape the dir.
	if key == "" || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("sweep: malformed store key %q", key)
	}
	return filepath.Join(s.dir, key+".json"), nil
}

// Get implements Store. Entries whose decoded configuration no longer
// hashes to their key — recorded under an older Config schema — are
// treated as misses rather than served stale. Entries that no longer
// parse at all are quarantined and reported as misses, so one torn or
// corrupt file costs one re-simulation instead of failing every sweep
// that touches the key; errors are reserved for live I/O failures.
func (s *DirStore) Get(key string) (*sim.Result, bool, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("sweep: read cache %s: %w", key, err)
	}
	var res sim.Result
	if err := json.Unmarshal(b, &res); err != nil {
		s.quarantine(key, p)
		return nil, false, nil
	}
	if res.Config.Key() != key {
		return nil, false, nil
	}
	// Another process may have written this entry after our open scan;
	// keep the inventory honest.
	s.index(key)
	return &res, true, nil
}

// Put implements Store.
func (s *DirStore) Put(key string, res *sim.Result) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	b, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("sweep: encode result %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(s.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("sweep: write cache %s: %w", key, err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: write cache %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: write cache %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: write cache %s: %w", key, err)
	}
	s.index(key)
	return nil
}
