package sweep

import (
	"errors"
	"fmt"
	"runtime/debug"

	"ndpage/internal/sim"
)

// RunError is the structured failure of one simulation run. Every layer
// of the sweep/serve stack that can lose a run — the in-process
// simulator, the remote offload path, the server-side watchdog — wraps
// its failure in one of these so callers can tell a deterministic
// configuration problem apart from a blip that a retry would fix:
//
//   - Permanent failures are a property of the configuration (a
//     validation error the simulator only detects at build time, a
//     reproducible panic on poisoned state). Retrying cannot help, so
//     the Runner negatively caches them for its lifetime.
//   - Transient failures are a property of the moment (an unreachable
//     server, an exhausted backpressure budget, a watchdog deadline, an
//     injected chaos fault). They are reported to the Run that observed
//     them and then forgotten — the next Run retries.
type RunError struct {
	// Op names the layer that failed: "simulate", "remote-sim",
	// "watchdog", "store".
	Op string
	// Desc is the configuration's Desc(), for log lines.
	Desc string
	// Permanent marks failures deterministic for this configuration;
	// only these are negatively cached.
	Permanent bool
	// Panicked marks an error recovered from a simulator panic.
	Panicked bool
	// Stack holds the recovered panic's stack trace (empty otherwise).
	Stack string
	// Err is the underlying cause.
	Err error
}

// Error formats the failure with its classification, so a log line is
// enough to know whether a retry is worth it.
func (e *RunError) Error() string {
	kind := "transient"
	if e.Permanent {
		kind = "permanent"
	}
	what := e.Op
	if e.Desc != "" {
		what += " " + e.Desc
	}
	if e.Panicked {
		return fmt.Sprintf("%s: recovered panic: %v (%s)", what, e.Err, kind)
	}
	return fmt.Sprintf("%s: %v (%s)", what, e.Err, kind)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// IsPermanent reports whether err is (or wraps) a RunError marked
// Permanent. Anything else — including plain errors of unknown
// provenance — is treated as transient: the safe default, since
// negatively caching a blip pins a spurious failure for the process
// lifetime while retrying a deterministic one merely wastes a run.
func IsPermanent(err error) bool {
	var re *RunError
	return errors.As(err, &re) && re.Permanent
}

// transientPanic is the contract by which a fault-injection layer marks
// its panics as deliberate: a recovered panic value implementing it (and
// returning true) classifies as transient, because the injector — not
// the configuration — caused it. Real simulator panics are deterministic
// consequences of the configuration and classify as permanent.
type transientPanic interface {
	InjectedFault() bool
}

// Guard wraps a simulation function so a panic in the simulator core
// (osmm, pagetable, tlb all panic on bad state) becomes a structured
// RunError instead of killing the process. One poisoned configuration
// then costs one failed run — the worker, the sweep, and the server all
// keep going.
func Guard(fn func(sim.Config) (*sim.Result, error)) func(sim.Config) (*sim.Result, error) {
	return func(cfg sim.Config) (res *sim.Result, err error) {
		defer func() {
			if v := recover(); v != nil {
				permanent := true
				if tp, ok := v.(transientPanic); ok && tp.InjectedFault() {
					permanent = false
				}
				res = nil
				err = &RunError{
					Op:        "simulate",
					Desc:      cfg.Desc(),
					Permanent: permanent,
					Panicked:  true,
					Stack:     string(debug.Stack()),
					Err:       fmt.Errorf("panic: %v", v),
				}
			}
		}()
		return fn(cfg)
	}
}
