package sweep

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"

	"ndpage/internal/addr"
	"ndpage/internal/sim"
	"ndpage/internal/stats"
)

// fakeResult fabricates a result for cfg with the structured fields
// (PWC map, histograms) populated, so store round trips exercise the
// full shape.
func fakeResult(cfg sim.Config) *sim.Result {
	n := cfg.Normalize()
	return &sim.Result{
		Config:       n,
		Cycles:       12345 + n.Seed,
		TotalCycles:  23456,
		Instructions: 2000,
		Walks:        77,
		PWC: map[addr.Level]stats.HitMiss{
			addr.PL4: {Hits: 90, Misses: 10},
			addr.PL3: {Hits: 50, Misses: 50},
		},
		WalkOverlapHist: []uint64{0, 70, 7},
		InFlightHist:    []uint64{0, 1500, 500},
		DRAMMeanLatency: 83.25,
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	cfg := testBase()
	key := cfg.Key()
	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("empty store Get = %v, %v", ok, err)
	}
	res := fakeResult(cfg)
	if err := s.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok || got != res {
		t.Fatalf("Get after Put = %v, %v, %v", got, ok, err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestDirStoreRoundTrip(t *testing.T) {
	s, err := NewDirStore(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testBase()
	key := cfg.Key()
	res := fakeResult(cfg)
	if err := s.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v", ok, err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("disk round trip lossy:\n got %+v\nwant %+v", got, res)
	}
	if _, ok, err := s.Get(testBaseWithSeed(9).Key()); ok || err != nil {
		t.Fatalf("miss = %v, %v", ok, err)
	}
}

// TestDirStoreInventory: Len/Keys come from the in-memory index — no
// directory walk per request — and the index tracks entries written by
// this process, found at open, and discovered from other processes via
// Get.
func TestDirStoreInventory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || len(s.Keys()) != 0 {
		t.Fatalf("fresh store inventory: %d, %v", s.Len(), s.Keys())
	}
	var want []string
	for _, seed := range []uint64{1, 2, 3} {
		cfg := testBaseWithSeed(seed)
		want = append(want, cfg.Key())
		if err := s.Put(cfg.Key(), fakeResult(cfg)); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(want)
	if got := s.Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys after Puts = %v, want %v", got, want)
	}

	// A second store over the same directory scans the inventory at open.
	s2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 || !reflect.DeepEqual(s2.Keys(), want) {
		t.Fatalf("reopened inventory = %d %v, want 3 %v", s2.Len(), s2.Keys(), want)
	}

	// An entry written by another process after open is indexed when a
	// Get discovers it.
	late := testBaseWithSeed(4)
	if err := s2.Put(late.Key(), fakeResult(late)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("foreign write counted before Get: %d", s.Len())
	}
	if _, ok, err := s.Get(late.Key()); !ok || err != nil {
		t.Fatalf("Get foreign entry: %v, %v", ok, err)
	}
	if s.Len() != 4 {
		t.Errorf("foreign entry not indexed after Get: %d", s.Len())
	}
}

func testBaseWithSeed(seed uint64) sim.Config {
	cfg := testBase()
	cfg.Seed = seed
	return cfg
}

func TestDirStoreRejectsMalformedKeys(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "a/b", "x.json"} {
		if _, _, err := s.Get(key); err == nil {
			t.Errorf("Get(%q) accepted a malformed key", key)
		}
		if err := s.Put(key, fakeResult(testBase())); err == nil {
			t.Errorf("Put(%q) accepted a malformed key", key)
		}
	}
}

func TestDirStoreSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "deadbeef.tmp-12345")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDirStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphaned temp file survived NewDirStore: %v", err)
	}
}

// TestDirStoreCorruptEntry: a corrupt entry is quarantined and reported
// as a miss — one bad file costs one re-simulation, not a dead sweep —
// and the debris is preserved under quarantine/ for post-mortem.
func TestDirStoreCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testBase().Key()
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("corrupt entry Get = hit %v, err %v; want quarantined miss", ok, err)
	}
	if n := s.Quarantined(); n != 1 {
		t.Errorf("Quarantined() = %d, want 1", n)
	}
	if _, err := os.Stat(filepath.Join(dir, key+".json")); !os.IsNotExist(err) {
		t.Error("corrupt entry still in place after quarantine")
	}
	specimens, _ := filepath.Glob(filepath.Join(dir, "quarantine", key+".*.json"))
	if len(specimens) != 1 {
		t.Errorf("quarantine specimens = %d, want 1", len(specimens))
	}
	// The slot is writable again: a clean Put restores the key.
	if err := s.Put(key, fakeResult(testBase())); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key); !ok || err != nil {
		t.Fatalf("healed entry Get = hit %v, err %v; want hit", ok, err)
	}
}

func TestDirStoreSchemaMismatchIsMiss(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A result stored under a key its config does not hash to (as after
	// a Config schema change) is a miss, not a stale hit.
	wrong := testBaseWithSeed(123).Key()
	if err := s.Put(wrong, fakeResult(testBase())); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(wrong); ok || err != nil {
		t.Fatalf("schema-mismatched entry = hit %v, err %v; want miss", ok, err)
	}
}

// TestSweepResumesFromDisk is the kill-mid-flight scenario: a sweep is
// cancelled partway, and a fresh Runner over the same cache directory
// performs only the remaining simulations.
func TestSweepResumesFromDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	cfgs := seedPlan(1, 2, 3, 4, 5)

	store1, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var firstCalls atomic.Int64
	r1 := &Runner{
		Store:    store1,
		Parallel: 1,
		Simulate: func(cfg sim.Config) (*sim.Result, error) {
			if firstCalls.Add(1) == 2 {
				cancel() // the "kill": no new runs dispatch after this
			}
			return fakeResult(cfg), nil
		},
	}
	if _, err := r1.Run(ctx, cfgs); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep error = %v, want context.Canceled", err)
	}
	done := firstCalls.Load()
	if done >= int64(len(cfgs)) || done < 2 {
		t.Fatalf("interrupted sweep ran %d of %d sims", done, len(cfgs))
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || int64(len(entries)) != done {
		t.Fatalf("cache holds %d entries after %d completed runs (%v)", len(entries), done, err)
	}

	// A fresh process: new store handle, new runner, same directory.
	store2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var secondCalls atomic.Int64
	r2 := &Runner{
		Store:    store2,
		Parallel: 1,
		Simulate: func(cfg sim.Config) (*sim.Result, error) {
			secondCalls.Add(1)
			return fakeResult(cfg), nil
		},
	}
	out, err := r2.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got := secondCalls.Load(); got != int64(len(cfgs))-done {
		t.Errorf("resume ran %d sims, want %d (cache must skip the %d completed)",
			got, int64(len(cfgs))-done, done)
	}
	for i, res := range out {
		if res == nil || res.Config.Seed != uint64(i+1) {
			t.Fatalf("resumed result %d wrong: %+v", i, res)
		}
	}
}

// TestDirStoreCrashRecovery is the kill-mid-write scenario, end to end:
// a sweep populates an on-disk cache, then the "process dies" leaving
// both kinds of debris — an orphaned temp file (killed before the
// rename) and a truncated entry (a torn write that bypassed the
// rename, as on power loss). The next open self-heals: the temp file
// is swept, the torn entry is quarantined and re-simulated, and the
// recovered cache is byte-identical to the pre-crash one.
func TestDirStoreCrashRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	cfgs := seedPlan(1, 2)
	ctx := context.Background()

	store1, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{Store: store1}).Run(ctx, cfgs); err != nil {
		t.Fatal(err)
	}
	tornKey := cfgs[0].Normalize().Key()
	tornPath := filepath.Join(dir, tornKey+".json")
	clean, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}

	// The crash: one entry torn mid-write, one orphaned temp file.
	if err := os.WriteFile(tornPath, clean[:len(clean)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, tornKey+".tmp-999")
	if err := os.WriteFile(orphan, []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphaned temp file survived reopen")
	}
	var resims atomic.Int64
	r := &Runner{Store: store2, Simulate: func(cfg sim.Config) (*sim.Result, error) {
		resims.Add(1)
		return sim.RunConfig(cfg)
	}}
	if _, err := r.Run(ctx, cfgs); err != nil {
		t.Fatal(err)
	}
	if got := resims.Load(); got != 1 {
		t.Errorf("re-simulations after crash = %d, want 1 (only the torn entry)", got)
	}
	if got := store2.Quarantined(); got != 1 {
		t.Errorf("Quarantined() = %d, want 1", got)
	}
	healed, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healed, clean) {
		t.Error("re-simulated entry is not byte-identical to the pre-crash one")
	}
	specimens, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*.json"))
	if len(specimens) != 1 {
		t.Errorf("quarantine specimens = %d, want 1", len(specimens))
	}
}
