package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"ndpage/internal/sim"
)

// fakeSim returns a Simulate stub that counts invocations and fabricates
// a result derived from the config.
func fakeSim(calls *atomic.Int64) func(sim.Config) (*sim.Result, error) {
	return func(cfg sim.Config) (*sim.Result, error) {
		calls.Add(1)
		return &sim.Result{Config: cfg, Cycles: 1000 + cfg.Seed}, nil
	}
}

func seedPlan(seeds ...uint64) []sim.Config {
	cfgs, err := Plan{Base: testBase(), Seeds: seeds}.Configs()
	if err != nil {
		panic(err)
	}
	return cfgs
}

func TestRunnerDedupesWithinRun(t *testing.T) {
	var calls atomic.Int64
	r := &Runner{Simulate: fakeSim(&calls)}
	cfg := testBase()
	out, err := r.Run(context.Background(), []sim.Config{cfg, cfg, cfg})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Errorf("3 identical configs simulated %d times, want 1", calls.Load())
	}
	for i, res := range out {
		if res == nil || res != out[0] {
			t.Fatalf("result %d not deduplicated: %v", i, res)
		}
	}
}

func TestRunnerMemoizesAcrossRuns(t *testing.T) {
	var calls atomic.Int64
	r := &Runner{Simulate: fakeSim(&calls)}
	cfgs := seedPlan(1, 2)
	if _, err := r.Run(context.Background(), cfgs); err != nil {
		t.Fatal(err)
	}
	out, err := r.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("second Run re-simulated: %d total calls, want 2", calls.Load())
	}
	if out[0].Cycles != 1001 || out[1].Cycles != 1002 {
		t.Errorf("results out of order: %d, %d", out[0].Cycles, out[1].Cycles)
	}
}

func TestRunnerResultsInInputOrder(t *testing.T) {
	var calls atomic.Int64
	r := &Runner{Parallel: 4, Simulate: fakeSim(&calls)}
	cfgs := seedPlan(1, 2, 3, 4, 5, 6, 7, 8)
	out, err := r.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range out {
		if res == nil || res.Config.Seed != uint64(i+1) {
			t.Fatalf("result %d out of order: %+v", i, res)
		}
	}
}

func TestRunnerNegativeCachesFailures(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	var events []Event
	r := &Runner{
		Progress: func(e Event) { events = append(events, e) },
		Simulate: func(cfg sim.Config) (*sim.Result, error) {
			calls.Add(1)
			if cfg.Seed == 2 {
				// Permanent: only deterministic failures are memoized.
				return nil, &RunError{Op: "simulate", Permanent: true, Err: boom}
			}
			return &sim.Result{Config: cfg, Cycles: cfg.Seed}, nil
		},
	}
	cfgs := seedPlan(1, 2, 3)
	out, err := r.Run(context.Background(), cfgs)
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want boom", err)
	}
	if out[0] == nil || out[1] != nil || out[2] == nil {
		t.Fatalf("unexpected results: %v", out)
	}
	// The failure emitted a progress event naming the run (a sweep must
	// not lose runs silently).
	var failEvents int
	for _, e := range events {
		if e.Err != nil {
			failEvents++
			if e.Desc() == "" {
				t.Error("failure event has empty description")
			}
		}
	}
	if failEvents != 1 {
		t.Errorf("failure events = %d, want 1", failEvents)
	}
	// The failure is memoized: a second Run reports it without
	// re-simulating.
	before := calls.Load()
	if _, err := r.Run(context.Background(), cfgs); !errors.Is(err, boom) {
		t.Fatalf("memoized error lost: %v", err)
	}
	if calls.Load() != before {
		t.Errorf("failed run was re-simulated")
	}
}

// TestRunnerNegativeCacheBounded: the failure memo is capped at
// NegativeCap entries, evicting oldest-first. An evicted key
// re-simulates on its next Run; keys still memoized do not — and every
// Run reports the failure it observed regardless of later eviction.
func TestRunnerNegativeCacheBounded(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	r := &Runner{
		NegativeCap: 2,
		Simulate: func(cfg sim.Config) (*sim.Result, error) {
			calls.Add(1)
			return nil, &RunError{Op: "simulate", Permanent: true, Err: boom}
		},
	}
	ctx := context.Background()
	// Three failing seeds, one Run each: recording seed 3 evicts seed 1.
	for _, seed := range []uint64{1, 2, 3} {
		if _, err := r.Run(ctx, seedPlan(seed)); !errors.Is(err, boom) {
			t.Fatalf("seed %d: err = %v, want boom", seed, err)
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("initial failures simulated %d times, want 3", calls.Load())
	}
	// Seeds 2 and 3 are still memoized: failures report with no new
	// simulation.
	for _, seed := range []uint64{2, 3} {
		if _, err := r.Run(ctx, seedPlan(seed)); !errors.Is(err, boom) {
			t.Fatalf("memoized seed %d: err = %v, want boom", seed, err)
		}
	}
	if calls.Load() != 3 {
		t.Errorf("memoized failures re-simulated: %d calls, want 3", calls.Load())
	}
	// Seed 1 was evicted: its next Run re-simulates (and still fails).
	if _, err := r.Run(ctx, seedPlan(1)); !errors.Is(err, boom) {
		t.Fatalf("evicted seed 1: err = %v, want boom", err)
	}
	if calls.Load() != 4 {
		t.Errorf("evicted failure served from memo: %d calls, want 4", calls.Load())
	}
	// One Run observing a failure that is evicted mid-flight by other
	// failures still reports it: the per-Run pin, not the shared memo,
	// carries the error to assembly.
	if _, err := r.Run(ctx, seedPlan(10, 11, 12, 13)); !errors.Is(err, boom) {
		t.Fatalf("multi-failure Run with eviction churn: err = %v, want boom", err)
	}
}

func TestRunnerCachedEventsOnlyForForeignResults(t *testing.T) {
	var calls atomic.Int64
	store := NewMemStore()

	// Runner 1 simulates seeds 1 and 2 into the shared store. Its own
	// memo hits are silent: cached events mean reuse of foreign work.
	var ownCached int
	r1 := &Runner{
		Store: store,
		Progress: func(e Event) {
			if e.Cached {
				ownCached++
			}
		},
		Simulate: fakeSim(&calls),
	}
	for i := 0; i < 3; i++ {
		if _, err := r1.Run(context.Background(), seedPlan(1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if ownCached != 0 {
		t.Errorf("runner announced %d of its own results as cached", ownCached)
	}

	// Runner 2 over the same store announces each pre-existing result
	// exactly once, however often it is re-served.
	var cached, done int
	r2 := &Runner{
		Store: store,
		Progress: func(e Event) {
			if e.Err == nil && e.Cached {
				cached++
			} else if e.Err == nil {
				done++
			}
		},
		Simulate: fakeSim(&calls),
	}
	for i := 0; i < 3; i++ {
		if _, err := r2.Run(context.Background(), seedPlan(1, 2, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if cached != 2 || done != 1 {
		t.Errorf("warm runner events: %d cached, %d simulated; want 2 and 1", cached, done)
	}
}

func TestRunnerCancelledContext(t *testing.T) {
	var calls atomic.Int64
	r := &Runner{Simulate: fakeSim(&calls)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := r.Run(ctx, seedPlan(1, 2, 3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Errorf("cancelled Run simulated %d configs", calls.Load())
	}
	for i, res := range out {
		if res != nil {
			t.Errorf("result %d non-nil after cancellation", i)
		}
	}
}

func TestRunnerValidatesConfigs(t *testing.T) {
	r := &Runner{Simulate: fakeSim(new(atomic.Int64))}
	bad := testBase()
	bad.Workload = "no-such"
	if _, err := r.Run(context.Background(), []sim.Config{bad}); err == nil {
		t.Fatal("Run accepted an invalid config")
	}
}

func TestRunPlanEndToEnd(t *testing.T) {
	var calls atomic.Int64
	r := &Runner{Parallel: 2, Simulate: fakeSim(&calls)}
	out, err := r.RunPlan(context.Background(), Plan{Base: testBase(), Seeds: []uint64{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 || calls.Load() != 4 {
		t.Fatalf("RunPlan: %d results, %d sims", len(out), calls.Load())
	}
}

// TestRunnerRealSimulation exercises the default sim.RunConfig path once
// with a tiny budget: the sweep layer and the simulator agree end to
// end, and a duplicated config is served from the store.
func TestRunnerRealSimulation(t *testing.T) {
	r := &Runner{}
	cfg := testBase()
	a, err := r.RunOne(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunOne(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second RunOne did not hit the store")
	}
	if a.Cycles == 0 || a.Instructions == 0 {
		t.Errorf("empty result: %+v", a)
	}
}

// TestRunnerTransientFailuresNotCached: a transient failure (plain
// error, or RunError without Permanent) is reported to the Run that
// observed it but never memoized — the next Run retries, and a
// recovered transient can then succeed.
func TestRunnerTransientFailuresNotCached(t *testing.T) {
	var calls atomic.Int64
	blip := errors.New("connection reset")
	r := &Runner{
		Simulate: func(cfg sim.Config) (*sim.Result, error) {
			if calls.Add(1) == 1 {
				return nil, &RunError{Op: "remote-sim", Err: blip} // transient
			}
			return &sim.Result{Config: cfg, Cycles: cfg.Seed}, nil
		},
	}
	cfgs := seedPlan(1)
	if _, err := r.Run(context.Background(), cfgs); !errors.Is(err, blip) {
		t.Fatalf("first Run error = %v, want blip", err)
	}
	out, err := r.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if out[0] == nil || out[0].Cycles != 1 {
		t.Fatalf("retry result = %+v", out[0])
	}
	if calls.Load() != 2 {
		t.Errorf("sim calls = %d, want 2 (transient failure retried)", calls.Load())
	}
}

// TestRunnerRecoversSimulatorPanics: a panicking configuration costs
// one failed run with a structured, permanent, stack-carrying RunError
// — not the process — and healthy runs in the same sweep complete.
func TestRunnerRecoversSimulatorPanics(t *testing.T) {
	r := &Runner{
		Simulate: func(cfg sim.Config) (*sim.Result, error) {
			if cfg.Seed == 2 {
				panic("poisoned page table state")
			}
			return &sim.Result{Config: cfg, Cycles: cfg.Seed}, nil
		},
	}
	out, err := r.Run(context.Background(), seedPlan(1, 2, 3))
	if err == nil {
		t.Fatal("panicking config reported no error")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a RunError", err)
	}
	if !re.Panicked || !re.Permanent || re.Stack == "" {
		t.Errorf("RunError = {Panicked:%v Permanent:%v stack %d bytes}, want panicked+permanent with stack", re.Panicked, re.Permanent, len(re.Stack))
	}
	if out[0] == nil || out[2] == nil || out[1] != nil {
		t.Errorf("healthy runs lost around the panic: %v", out)
	}
}

// TestGuardInjectedPanicIsTransient: a panic value satisfying the
// injected-fault contract classifies transient — chaos testing must not
// poison the negative cache.
func TestGuardInjectedPanicIsTransient(t *testing.T) {
	guarded := Guard(func(sim.Config) (*sim.Result, error) { panic(markedPanic{}) })
	_, err := guarded(testBase())
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a RunError", err)
	}
	if re.Permanent || !re.Panicked {
		t.Errorf("injected panic classified {Permanent:%v Panicked:%v}, want transient panic", re.Permanent, re.Panicked)
	}
	if IsPermanent(err) {
		t.Error("IsPermanent(injected panic) = true")
	}
}

// markedPanic satisfies the transient-panic contract the fault package
// uses (declared structurally so sweep never imports fault).
type markedPanic struct{}

func (markedPanic) InjectedFault() bool { return true }
