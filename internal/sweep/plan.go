// Package sweep is the run-orchestration layer of the reproduction: a
// declarative cross-product Plan over simulation configurations, a
// context-aware parallel Runner, and content-addressed result Stores
// keyed by sim.Config.Key(). The paper's evaluation is a large design-
// space sweep (systems x mechanisms x cores x workloads, plus
// sensitivity axes); this package makes such sweeps first-class:
// declarative to build, parallel to execute, cancellable, and — with a
// DirStore — incremental across process restarts, in the mold of the
// hundreds-of-configurations studies the NMAT and Victima artifacts run
// per figure.
package sweep

import (
	"fmt"

	"ndpage/internal/core"
	"ndpage/internal/memsys"
	"ndpage/internal/sim"
)

// Variant is one alternative mutation of a base configuration — a named
// point on an ad-hoc sweep axis that the fixed Plan fields don't cover
// (sensitivity knobs, budget overrides, anything on sim.Config).
type Variant struct {
	// Name labels the variant in errors ("w=4", "nopwc").
	Name string
	// Mutate edits the expanded configuration in place. A nil Mutate is
	// the identity: the base configuration itself.
	Mutate func(*sim.Config)
}

// Plan declares a cross product of simulation configurations. Base
// seeds every run; each non-empty axis multiplies the product, and an
// empty axis leaves Base's value for that dimension untouched. Every
// run's seed is part of its configuration (Normalize pins the default),
// so expansion is deterministic and each run content-addresses its
// result via sim.Config.Key(); replicate sweeps enumerate Seeds
// explicitly instead of drawing randomness at run time.
type Plan struct {
	// Base is the configuration every run starts from (budgets,
	// footprint, fixed knobs).
	Base sim.Config

	// Axes. Expansion order is deterministic: Workloads (outermost),
	// then Systems, Mechanisms, Cores, Seeds, Variants (innermost).
	Systems    []memsys.Kind
	Mechanisms []core.Mechanism
	Cores      []int
	Workloads  []string
	Seeds      []uint64
	Variants   []Variant
}

// Size returns the number of runs the plan expands to.
func (p Plan) Size() int {
	n := 1
	for _, axis := range []int{
		len(p.Systems), len(p.Mechanisms), len(p.Cores),
		len(p.Workloads), len(p.Seeds), len(p.Variants),
	} {
		if axis > 0 {
			n *= axis
		}
	}
	return n
}

// Configs expands the cross product in deterministic order, validating
// every configuration. The returned configs are not normalized — zero
// optional fields still mean their defaults — so callers may apply
// further overrides before running.
func (p Plan) Configs() ([]sim.Config, error) {
	orOne := func(n int) int {
		if n == 0 {
			return 1
		}
		return n
	}
	out := make([]sim.Config, 0, p.Size())
	for wi := 0; wi < orOne(len(p.Workloads)); wi++ {
		for si := 0; si < orOne(len(p.Systems)); si++ {
			for mi := 0; mi < orOne(len(p.Mechanisms)); mi++ {
				for ci := 0; ci < orOne(len(p.Cores)); ci++ {
					for ri := 0; ri < orOne(len(p.Seeds)); ri++ {
						for vi := 0; vi < orOne(len(p.Variants)); vi++ {
							cfg := p.Base
							if len(p.Workloads) > 0 {
								cfg.Workload = p.Workloads[wi]
							}
							if len(p.Systems) > 0 {
								cfg.System = p.Systems[si]
							}
							if len(p.Mechanisms) > 0 {
								cfg.Mechanism = p.Mechanisms[mi]
							}
							if len(p.Cores) > 0 {
								cfg.Cores = p.Cores[ci]
							}
							if len(p.Seeds) > 0 {
								cfg.Seed = p.Seeds[ri]
							}
							var vname string
							if len(p.Variants) > 0 {
								v := p.Variants[vi]
								vname = v.Name
								if v.Mutate != nil {
									v.Mutate(&cfg)
								}
							}
							if err := cfg.Validate(); err != nil {
								if vname != "" {
									return nil, fmt.Errorf("sweep: plan run %s (variant %s): %w", cfg.Desc(), vname, err)
								}
								return nil, fmt.Errorf("sweep: plan run %s: %w", cfg.Desc(), err)
							}
							out = append(out, cfg)
						}
					}
				}
			}
		}
	}
	return out, nil
}
