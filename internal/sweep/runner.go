package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"ndpage/internal/sim"
)

// Event reports one run's fate to the Runner's Progress hook: a fresh
// simulation (Cycles, Elapsed), a store hit (Cached), or a failure
// (Err). Failed runs emit events too — a sweep that loses runs says so
// instead of completing silently thinner.
type Event struct {
	// Config is the normalized configuration of the run.
	Config sim.Config
	// Key is the run's content-address (Config.Key()).
	Key string
	// Cached marks a result served from the Store without simulating.
	// The Runner announces each cached key at most once per lifetime,
	// however many plan cells share the run, and only for results it
	// did not itself simulate (a pre-populated persistent cache).
	Cached bool
	// Err is the simulation (or store) failure, nil on success.
	Err error
	// Cycles is the run's parallel completion time (0 on failure).
	Cycles uint64
	// Elapsed is wall-clock simulation time (0 for cached results).
	Elapsed time.Duration
}

// Desc formats the event's run for a progress line.
func (e Event) Desc() string { return e.Config.Desc() }

// defaultNegativeCap bounds the failed-run memo when NegativeCap is 0:
// generous for any real sweep (the full evaluation is a few hundred
// configurations), small enough that a long-lived server process
// absorbing an endless stream of distinct bad configurations stays
// bounded.
const defaultNegativeCap = 512

// Runner executes simulation configurations through a bounded worker
// pool, deduplicating by content hash against a pluggable Store. The
// zero value is ready to use: it simulates with sim.RunConfig, stores
// results in a private in-memory store, and bounds parallelism at
// min(4, GOMAXPROCS). Simulator panics are recovered into structured
// RunErrors (see Guard), so one poisoned configuration fails its run
// instead of the process. Permanently failed runs — RunError with
// Permanent set — are negatively cached (up to NegativeCap entries,
// oldest evicted first), so a sweep that shares cells across figures
// reports one error per bad configuration instead of re-simulating it;
// transient failures (network, backpressure exhaustion, watchdog
// deadlines) are reported to the Run that observed them and retried by
// the next. A Runner is safe for concurrent use; note that
// concurrent Run calls whose plans overlap may simulate a shared
// configuration twice (the store is consulted when each call starts) —
// results stay correct, only the duplicated work is wasted.
type Runner struct {
	// Store caches results across Run calls — and, for DirStore, across
	// processes. Nil selects a fresh in-memory store. A Store that also
	// implements Simulator (RemoteStore) additionally takes over cold
	// runs unless Simulate overrides it.
	Store Store
	// Parallel bounds concurrent simulations (0 = min(4, GOMAXPROCS)).
	Parallel int
	// Progress, when non-nil, receives one Event per run: simulated,
	// cached (first service only), or failed. Called serially.
	Progress func(Event)
	// Simulate overrides the simulation function (tests, remote
	// offload). Nil selects the Store's Simulate when it implements
	// Simulator, else sim.RunConfig.
	Simulate func(sim.Config) (*sim.Result, error)
	// NegativeCap bounds the failed-run memo (0 = 512). When full, the
	// oldest failure is forgotten — a re-request of that configuration
	// simulates again instead of replaying the memoized error, which is
	// the right trade for a long-lived server process: memory stays
	// bounded and transient failures eventually retry.
	NegativeCap int

	mu       sync.Mutex
	store    Store
	errs     map[string]error // simulation failures, by key
	errOrder []string         // errs insertion order, for capped eviction
	served   map[string]bool  // keys already announced to Progress

	// progressMu serializes Progress callbacks separately from the
	// state mutex, so a slow or re-entrant callback cannot stall the
	// worker pool or deadlock the Runner.
	progressMu sync.Mutex
}

// init resolves the lazy fields; callers hold no lock.
func (r *Runner) init() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store == nil {
		r.store = r.Store
		if r.store == nil {
			r.store = NewMemStore()
		}
	}
	if r.errs == nil {
		r.errs = make(map[string]error)
		r.served = make(map[string]bool)
	}
}

func (r *Runner) parallel() int {
	if r.Parallel > 0 {
		return r.Parallel
	}
	p := runtime.GOMAXPROCS(0)
	if p > 4 {
		p = 4
	}
	return p
}

func (r *Runner) sim(cfg sim.Config) (*sim.Result, error) {
	if r.Simulate != nil {
		return Guard(r.Simulate)(cfg)
	}
	if s, ok := r.store.(Simulator); ok {
		return Guard(s.Simulate)(cfg)
	}
	res, err := Guard(sim.RunConfig)(cfg)
	if err != nil && !IsPermanent(err) {
		var re *RunError
		if !errors.As(err, &re) {
			// A local sim.RunConfig error is a build-time property of the
			// configuration — deterministic, so safe to memoize.
			err = &RunError{Op: "simulate", Desc: cfg.Desc(), Permanent: true, Err: err}
		}
	}
	return res, err
}

// recordFailure memoizes a simulation failure under r.mu, evicting the
// oldest entry when the negative cache is at capacity. Only permanent
// failures are memoized: negatively caching a transient error (an
// unreachable server, an exhausted 429 budget, a watchdog timeout)
// would pin a blip as a process-lifetime failure.
func (r *Runner) recordFailure(key string, err error) {
	if !IsPermanent(err) {
		return
	}
	cap := r.NegativeCap
	if cap <= 0 {
		cap = defaultNegativeCap
	}
	r.mu.Lock()
	if _, ok := r.errs[key]; !ok {
		for len(r.errOrder) >= cap {
			delete(r.errs, r.errOrder[0])
			r.errOrder = r.errOrder[1:]
		}
		r.errOrder = append(r.errOrder, key)
	}
	r.errs[key] = err
	r.mu.Unlock()
}

// emit serializes Progress callbacks.
func (r *Runner) emit(e Event) {
	if r.Progress == nil {
		return
	}
	r.progressMu.Lock()
	defer r.progressMu.Unlock()
	r.Progress(e)
}

// RunPlan expands the plan and runs it; see Run.
func (r *Runner) RunPlan(ctx context.Context, p Plan) ([]*sim.Result, error) {
	cfgs, err := p.Configs()
	if err != nil {
		return nil, err
	}
	return r.Run(ctx, cfgs)
}

// RunOne runs a single configuration; see Run.
func (r *Runner) RunOne(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
	res, err := r.Run(ctx, []sim.Config{cfg})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Run executes cfgs and returns their results in input order. Results
// already in the Store (or duplicated within cfgs) are served without
// simulating; the rest run on the worker pool, heaviest (most cores)
// first, each stored under its config key on completion — so a killed
// or cancelled sweep, re-run against the same persistent Store, resumes
// incrementally instead of starting over.
//
// Cancelling ctx stops dispatching new runs; in-flight simulations
// complete and are stored. The returned error is the first failure in
// input order — a validation error, a simulation error, a store write
// error, or ctx's error for runs never dispatched. Failed and
// undispatched positions hold nil; a store write failure is the one
// case that returns an error alongside a non-nil result, since the
// simulation itself succeeded.
func (r *Runner) Run(ctx context.Context, cfgs []sim.Config) ([]*sim.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.init()
	n := len(cfgs)
	norm := make([]sim.Config, n)
	keys := make([]string, n)
	for i, c := range cfgs {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: %s: %w", c.Desc(), err)
		}
		norm[i] = c.Normalize()
		keys[i] = norm[i].Key()
	}

	// This Run's results and non-cacheable failures (store writes), by
	// key; both guarded by r.mu.
	results := make(map[string]*sim.Result, n)
	runErrs := make(map[string]error)

	// Classify: serve store hits and negatively-cached failures, queue
	// the rest once per unique key.
	var pending []int
	queued := make(map[string]bool)
	for i := range norm {
		k := keys[i]
		if queued[k] {
			continue
		}
		queued[k] = true
		r.mu.Lock()
		memoErr, failed := r.errs[k]
		if failed {
			// Pin the memoized failure for this Run's assembly: the
			// capped memo may evict it before we read it back.
			runErrs[k] = memoErr
		}
		r.mu.Unlock()
		if failed {
			continue
		}
		res, ok, err := r.store.Get(k)
		if err != nil {
			return nil, err
		}
		if ok {
			r.mu.Lock()
			results[k] = res
			announce := !r.served[k]
			r.served[k] = true
			r.mu.Unlock()
			if announce {
				r.emit(Event{Config: norm[i], Key: k, Cached: true, Cycles: res.Cycles})
			}
			continue
		}
		pending = append(pending, i)
	}

	// Heavier configurations first for better pool packing.
	sort.SliceStable(pending, func(a, b int) bool {
		return norm[pending[a]].Cores > norm[pending[b]].Cores
	})

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.parallel(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r.runOne(norm[i], keys[i], results, runErrs)
			}
		}()
	}
dispatch:
	for _, i := range pending {
		// Checked before each send: a bare two-case select would pick
		// randomly between a ready worker and a done context.
		if ctx.Err() != nil {
			break
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	// Assemble in input order; surface the first failure.
	out := make([]*sim.Result, n)
	var firstErr error
	for i, k := range keys {
		r.mu.Lock()
		out[i] = results[k]
		err := r.errs[k]
		if err == nil {
			err = runErrs[k]
		}
		r.mu.Unlock()
		if out[i] == nil && err == nil {
			err = ctx.Err() // never dispatched
		}
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	return out, firstErr
}

// runOne simulates one configuration on a worker and records the
// outcome.
func (r *Runner) runOne(cfg sim.Config, key string, results map[string]*sim.Result, runErrs map[string]error) {
	start := time.Now()
	res, err := r.sim(cfg)
	if err != nil {
		err = fmt.Errorf("sweep: %s: %w", cfg.Desc(), err)
		// The lifetime memo (r.errs) may evict under NegativeCap;
		// runErrs is scoped to this Run call, so the call that observed
		// the failure always reports it whatever the memo does.
		r.recordFailure(key, err)
		r.mu.Lock()
		runErrs[key] = err
		r.mu.Unlock()
		r.emit(Event{Config: cfg, Key: key, Err: err, Elapsed: time.Since(start)})
		return
	}
	// A failed cache write is a real I/O problem the caller must see,
	// but the computed result is still good — record both, and don't
	// negatively cache what a retry could fix.
	var putErr error
	if perr := r.store.Put(key, res); perr != nil {
		putErr = fmt.Errorf("sweep: %s: %w", cfg.Desc(), perr)
	}
	r.mu.Lock()
	results[key] = res
	if putErr != nil {
		runErrs[key] = putErr
	}
	// Later store hits on this key are memo hits of our own work, not
	// cache reuse — don't announce them as cached.
	r.served[key] = true
	r.mu.Unlock()
	r.emit(Event{Config: cfg, Key: key, Err: putErr, Cycles: res.Cycles, Elapsed: time.Since(start)})
}
