package sweep

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"ndpage/internal/sim"
)

// TestRunShardedMatchesRun: sharded execution is an implementation detail
// — for every shard count, the results (and their input-order placement)
// must be indistinguishable from the pooled Run, including duplicated
// configurations.
func TestRunShardedMatchesRun(t *testing.T) {
	cfgs := seedPlan(1, 2, 3, 4, 5, 6, 7, 8)
	cfgs = append(cfgs, cfgs[2], cfgs[5]) // duplicates share one run

	ref := &Runner{Simulate: fakeSim(new(atomic.Int64))}
	want, err := ref.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 3, 8, 16} {
		var calls atomic.Int64
		r := &Runner{Simulate: fakeSim(&calls)}
		got, err := r.RunSharded(context.Background(), cfgs, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: results differ from Run", shards)
		}
		if calls.Load() != 8 {
			t.Errorf("shards=%d: %d sims, want 8 (dedupe)", shards, calls.Load())
		}
	}
}

// TestRunShardedScheduleIsDeterministic: the shard assignment and each
// shard's serial order depend only on the configuration set — observed
// per-run sequences must repeat exactly across executions and must not
// depend on input order.
func TestRunShardedScheduleIsDeterministic(t *testing.T) {
	cfgs := seedPlan(1, 2, 3, 4, 5, 6, 7)
	shards := 3

	observe := func(in []sim.Config) [][]uint64 {
		var mu sync.Mutex
		order := make(map[int][]uint64) // goroutine-local via shard identity
		r := &Runner{Simulate: func(cfg sim.Config) (*sim.Result, error) {
			s := shardOf(cfg.Normalize().Key(), shards)
			mu.Lock()
			order[s] = append(order[s], cfg.Seed)
			mu.Unlock()
			return &sim.Result{Config: cfg, Cycles: cfg.Seed}, nil
		}}
		if _, err := r.RunSharded(context.Background(), in, shards); err != nil {
			t.Fatal(err)
		}
		out := make([][]uint64, shards)
		for s := 0; s < shards; s++ {
			out[s] = order[s]
		}
		return out
	}

	first := observe(cfgs)
	if again := observe(cfgs); !reflect.DeepEqual(again, first) {
		t.Errorf("schedule changed across runs:\n%v\n%v", first, again)
	}
	// Reversed input: same key set, so the same schedule.
	rev := make([]sim.Config, len(cfgs))
	for i, c := range cfgs {
		rev[len(cfgs)-1-i] = c
	}
	if reversed := observe(rev); !reflect.DeepEqual(reversed, first) {
		t.Errorf("schedule depends on input order:\n%v\n%v", first, reversed)
	}
}

// TestRunShardedRunsShardsConcurrently: two runs pinned to different
// shards must be in flight at once — each fake sim blocks until both
// have started.
func TestRunShardedRunsShardsConcurrently(t *testing.T) {
	// Pick two seeds whose keys land on different shards of 2.
	var a, b sim.Config
	found := false
	for s := uint64(1); s < 64 && !found; s++ {
		for u := s + 1; u < 64 && !found; u++ {
			ca, cb := testBaseWithSeed(s), testBaseWithSeed(u)
			if shardOf(ca.Normalize().Key(), 2) != shardOf(cb.Normalize().Key(), 2) {
				a, b, found = ca, cb, true
			}
		}
	}
	if !found {
		t.Fatal("no seed pair split across 2 shards")
	}

	var started sync.WaitGroup
	started.Add(2)
	r := &Runner{Simulate: func(cfg sim.Config) (*sim.Result, error) {
		started.Done()
		started.Wait() // deadlocks (test timeout) unless both shards run at once
		return &sim.Result{Config: cfg, Cycles: 1}, nil
	}}
	if _, err := r.RunSharded(context.Background(), []sim.Config{a, b}, 2); err != nil {
		t.Fatal(err)
	}
}

// TestRunShardedCancelMidFlight: cancelling during the sweep stops each
// shard before its next run; completed runs keep their results, never-
// dispatched positions report ctx.Err with nil results.
func TestRunShardedCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	r := &Runner{Simulate: func(cfg sim.Config) (*sim.Result, error) {
		if calls.Add(1) == 1 {
			cancel() // cancel while the first run is in flight
		}
		return &sim.Result{Config: cfg, Cycles: cfg.Seed}, nil
	}}
	cfgs := seedPlan(1, 2, 3, 4, 5, 6, 7, 8)
	out, err := r.RunSharded(ctx, cfgs, 1) // one shard: strictly serial
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if calls.Load() != 1 {
		t.Errorf("%d runs after mid-flight cancel, want 1", calls.Load())
	}
	var done, missing int
	for _, res := range out {
		if res != nil {
			done++
		} else {
			missing++
		}
	}
	if done != 1 || missing != len(cfgs)-1 {
		t.Errorf("results after cancel: %d done, %d missing", done, missing)
	}
}

// TestRunShardedSurfacesFailures: a failing run is negatively cached and
// reported in input order, exactly like Run.
func TestRunShardedSurfacesFailures(t *testing.T) {
	boom := errors.New("boom")
	r := &Runner{Simulate: func(cfg sim.Config) (*sim.Result, error) {
		if cfg.Seed == 2 {
			return nil, boom
		}
		return &sim.Result{Config: cfg, Cycles: cfg.Seed}, nil
	}}
	out, err := r.RunSharded(context.Background(), seedPlan(1, 2, 3), 2)
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	if out[0] == nil || out[1] != nil || out[2] == nil {
		t.Fatalf("unexpected results: %v", out)
	}
}

// TestRunShardedRealSimulationMatchesSerial pins the acceptance contract
// on the real simulator: a sharded replication sweep produces results
// byte-identical to the serial pool (Parallel=1), per configuration.
func TestRunShardedRealSimulationMatchesSerial(t *testing.T) {
	cfgs := seedPlan(1, 2, 3)
	serial := &Runner{Parallel: 1}
	want, err := serial.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	sharded := &Runner{}
	got, err := sharded.RunSharded(context.Background(), cfgs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("config %d: sharded result differs from serial", i)
		}
	}
}
