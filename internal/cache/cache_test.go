package cache

import (
	"testing"

	"ndpage/internal/access"
	"ndpage/internal/addr"
)

func tiny() *Cache {
	// 8 sets x 2 ways x 64 B = 1 KB.
	return New(Config{Name: "L1D", Size: 1024, Ways: 2, Latency: 4})
}

func TestGeometryValidation(t *testing.T) {
	cases := []Config{
		{Name: "zero", Size: 0, Ways: 2},
		{Name: "noways", Size: 1024, Ways: 0},
		{Name: "nonpow2", Size: 3 * 64 * 2, Ways: 2}, // 3 sets
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%q) did not panic", cfg.Name)
				}
			}()
			New(cfg)
		}()
	}
	c := tiny()
	if c.Name() != "L1D" || c.Latency() != 4 {
		t.Error("accessors wrong")
	}
}

func TestMissThenHit(t *testing.T) {
	c := tiny()
	if c.Lookup(100, access.Read, access.Data) {
		t.Fatal("cold lookup hit")
	}
	c.Fill(100, access.Read, access.Data)
	if !c.Lookup(100, access.Read, access.Data) {
		t.Fatal("lookup after fill missed")
	}
	s := c.Stats()
	if s.PerClass[access.Data].Hits != 1 || s.PerClass[access.Data].Misses != 1 {
		t.Errorf("data stats: %+v", s.PerClass[access.Data])
	}
}

func TestAccessCombinesLookupAndFill(t *testing.T) {
	c := tiny()
	hit, _, _ := c.Access(7, access.Read, access.Data)
	if hit {
		t.Fatal("first access hit")
	}
	hit, _, _ = c.Access(7, access.Read, access.Data)
	if !hit {
		t.Fatal("second access missed")
	}
}

func TestWriteMakesDirtyAndWritebackCounted(t *testing.T) {
	c := New(Config{Name: "t", Size: 2 * 64, Ways: 2, Latency: 1}) // 1 set, 2 ways
	c.Access(1, access.Write, access.Data)
	c.Access(2, access.Read, access.Data)
	// Evict line 1 (LRU, dirty).
	_, ev, evicted := c.Access(3, access.Read, access.Data)
	if !evicted || ev.Line != 1 || !ev.Dirty {
		t.Fatalf("eviction = %+v %v, want dirty line 1", ev, evicted)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestWriteHitDirtiesLine(t *testing.T) {
	c := New(Config{Name: "t", Size: 2 * 64, Ways: 2, Latency: 1})
	c.Access(1, access.Read, access.Data)  // clean fill
	c.Access(1, access.Write, access.Data) // write hit -> dirty
	c.Access(2, access.Read, access.Data)
	_, ev, evicted := c.Access(3, access.Read, access.Data)
	if !evicted || !ev.Dirty {
		t.Fatalf("eviction = %+v %v, want dirty", ev, evicted)
	}
}

func TestPTEPollutionCounter(t *testing.T) {
	c := New(Config{Name: "t", Size: 2 * 64, Ways: 2, Latency: 1})
	c.Access(1, access.Read, access.Data)
	c.Access(2, access.Read, access.Data)
	// PTE fill evicts a data line: pollution.
	c.Access(3, access.Read, access.PTE)
	if c.Stats().DataEvictedByPTE != 1 {
		t.Errorf("DataEvictedByPTE = %d, want 1", c.Stats().DataEvictedByPTE)
	}
	// PTE evicting PTE is not pollution.
	c.Access(4, access.Read, access.PTE)
	c.Access(5, access.Read, access.PTE)
	if c.Stats().DataEvictedByPTE != 2 {
		// line 2 (data) is also evicted along the way; allow exactly
		// the data evictions counted.
		t.Logf("pollution counter = %d", c.Stats().DataEvictedByPTE)
	}
}

func TestPerClassIsolation(t *testing.T) {
	c := tiny()
	c.Access(1, access.Read, access.Data)
	c.Access(2, access.Read, access.PTE)
	c.Access(3, access.Read, access.Code)
	s := c.Stats()
	for _, cl := range []access.Class{access.Data, access.PTE, access.Code} {
		if s.PerClass[cl].Misses != 1 {
			t.Errorf("class %v misses = %d, want 1", cl, s.PerClass[cl].Misses)
		}
	}
	if s.Total().Total() != 3 {
		t.Errorf("total accesses = %d, want 3", s.Total().Total())
	}
}

func TestInvalidate(t *testing.T) {
	c := tiny()
	c.Access(9, access.Write, access.Data)
	dirty, present := c.Invalidate(9)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want dirty and present", dirty, present)
	}
	if _, present = c.Invalidate(9); present {
		t.Fatal("second Invalidate found the line")
	}
	if c.Contains(9) {
		t.Fatal("line still present after invalidate")
	}
}

func TestFlushAndOccupancy(t *testing.T) {
	c := tiny()
	if c.Occupancy() != 0 {
		t.Fatal("fresh cache not empty")
	}
	for i := uint64(0); i < 8; i++ {
		c.Access(i, access.Read, access.Data)
	}
	if c.Occupancy() == 0 {
		t.Fatal("occupancy did not grow")
	}
	c.Flush()
	if c.Occupancy() != 0 {
		t.Fatal("Flush left lines")
	}
}

func TestClassLines(t *testing.T) {
	c := tiny()
	c.Access(1, access.Read, access.Data)
	c.Access(2, access.Read, access.PTE)
	c.Access(3, access.Read, access.PTE)
	counts := c.ClassLines()
	if counts[access.Data] != 1 || counts[access.PTE] != 2 {
		t.Errorf("ClassLines = %v", counts)
	}
}

// TestWorkingSetFitsNoMisses: a working set no larger than capacity,
// accessed repeatedly, must stop missing after the first pass (LRU sanity
// at cache granularity).
func TestWorkingSetFitsNoMisses(t *testing.T) {
	c := New(Config{Name: "t", Size: 32 << 10, Ways: 8, Latency: 4})
	lines := uint64(32 << 10 / addr.LineSize / 2) // half capacity
	for pass := 0; pass < 3; pass++ {
		for l := uint64(0); l < lines; l++ {
			c.Access(l, access.Read, access.Data)
		}
	}
	s := c.Stats().PerClass[access.Data]
	if got := s.Misses.Value(); got != lines {
		t.Errorf("misses = %d, want exactly %d cold misses", got, lines)
	}
}

// TestThrashingWorkingSet: a working set far larger than capacity with
// no reuse inside the reuse distance must miss nearly always.
func TestThrashingWorkingSet(t *testing.T) {
	c := New(Config{Name: "t", Size: 1 << 10, Ways: 2, Latency: 4})
	for pass := 0; pass < 3; pass++ {
		for l := uint64(0); l < 4096; l++ {
			c.Access(l, access.Read, access.Data)
		}
	}
	s := c.Stats().PerClass[access.Data]
	if s.MissRate() < 0.99 {
		t.Errorf("thrashing miss rate = %.3f, want ~1", s.MissRate())
	}
}

func BenchmarkCacheAccessHit(b *testing.B) {
	c := New(Config{Name: "b", Size: 32 << 10, Ways: 8, Latency: 4})
	c.Access(1, access.Read, access.Data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(1, access.Read, access.Data)
	}
}

func BenchmarkCacheAccessThrash(b *testing.B) {
	c := New(Config{Name: "b", Size: 32 << 10, Ways: 8, Latency: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i), access.Read, access.Data)
	}
}
