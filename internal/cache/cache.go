// Package cache models a set-associative, write-back, write-allocate
// hardware cache with per-class (data vs page-table metadata vs code)
// accounting.
//
// The per-class accounting is what lets the simulator reproduce the
// paper's key motivation figures: Figure 7's metadata miss rate (98.28% in
// the NDP L1) and the cache pollution that raises the normal-data miss
// rate from 26.16% (ideal) to 35.89% (with translation). The pollution
// counter records every normal-data line evicted by a PTE fill.
package cache

import (
	"fmt"

	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/assoc"
	"ndpage/internal/stats"
)

// Config describes one cache level.
type Config struct {
	Name    string // "L1D", "L2", ...
	Size    uint64 // total bytes; must be a multiple of LineSize*Ways
	Ways    int
	Latency uint64 // access latency in core cycles
}

// lineState is the per-line metadata tracked beyond the tag.
type lineState struct {
	dirty bool
	class access.Class
}

// Eviction describes a line displaced by a fill.
type Eviction struct {
	Line  uint64 // physical line number of the victim
	Dirty bool   // needs write-back
	Class access.Class
}

// Stats aggregates cache activity.
type Stats struct {
	// PerClass hit/miss, indexed by access.Class.
	PerClass [access.NumClasses]stats.HitMiss
	// Writebacks counts dirty evictions.
	Writebacks stats.Counter
	// DataEvictedByPTE counts normal-data victim lines displaced by a
	// PTE fill — the paper's cache-pollution effect.
	DataEvictedByPTE stats.Counter
	// DataEvictedByXlat counts normal-data victim lines displaced by a
	// Victima translation-block fill — the same pollution effect for
	// blocks the TLB-miss predictor admitted.
	DataEvictedByXlat stats.Counter
	// Bypassed counts requests routed around this cache entirely (the
	// memory system records them here so the L1 ledger stays complete).
	Bypassed stats.Counter
}

// Total returns the combined hit/miss counters across classes.
func (s *Stats) Total() stats.HitMiss {
	var t stats.HitMiss
	for i := range s.PerClass {
		t.Merge(s.PerClass[i])
	}
	return t
}

// Cache is one level of the hierarchy. Not safe for concurrent use.
type Cache struct {
	cfg   Config
	table *assoc.Table[lineState]
	stats Stats
}

// New builds a cache from cfg. Size, Ways and LineSize must describe a
// power-of-two number of sets.
func New(cfg Config) *Cache {
	if cfg.Size == 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %q: invalid geometry %+v", cfg.Name, cfg))
	}
	lines := cfg.Size / addr.LineSize
	if lines%uint64(cfg.Ways) != 0 {
		panic(fmt.Sprintf("cache %q: %d lines not divisible by %d ways", cfg.Name, lines, cfg.Ways))
	}
	sets := int(lines) / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %q: %d sets is not a power of two", cfg.Name, sets))
	}
	return &Cache{cfg: cfg, table: assoc.New[lineState](sets, cfg.Ways)}
}

// Name returns the configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Latency returns the access latency in cycles.
func (c *Cache) Latency() uint64 { return c.cfg.Latency }

// Stats returns a pointer to the live counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// Lookup probes for the physical line without filling. On a write hit the
// line is marked dirty. Returns whether the line was present.
func (c *Cache) Lookup(line uint64, op access.Op, class access.Class) bool {
	st, ok := c.table.Lookup(line)
	c.stats.PerClass[class].Record(ok)
	if ok && op == access.Write && !st.dirty {
		st.dirty = true
		c.table.Update(line, st)
	}
	return ok
}

// Fill inserts the line after a miss was serviced by the next level. The
// returned eviction (if any) is the displaced victim; the caller is
// responsible for charging its write-back to the next level.
func (c *Cache) Fill(line uint64, op access.Op, class access.Class) (Eviction, bool) {
	st := lineState{dirty: op == access.Write, class: class}
	vKey, vSt, evicted := c.table.Insert(line, st)
	if !evicted {
		return Eviction{}, false
	}
	if vSt.dirty {
		c.stats.Writebacks.Inc()
	}
	if class == access.PTE && vSt.class == access.Data {
		c.stats.DataEvictedByPTE.Inc()
	}
	if class == access.Xlat && vSt.class == access.Data {
		c.stats.DataEvictedByXlat.Inc()
	}
	return Eviction{Line: vKey, Dirty: vSt.dirty, Class: vSt.class}, true
}

// Translation blocks (the Victima mechanism) live in the same
// set-associative storage as data lines — competing for the same ways,
// which is the mechanism's whole point — but are keyed by virtual page
// block, not physical line. A tag bit keeps the two key spaces apart
// (physical line numbers occupy the low bits; bit 63 is never a line).

// XlatBlockPages is the number of 4K translations one cached
// translation block covers: a 64 B line holds eight 8 B PTEs.
const XlatBlockPages = 8

// xlatTag marks a translation-block key apart from physical line keys.
const xlatTag = uint64(1) << 63

func xlatKey(vpn addr.VPN) uint64 { return xlatTag | uint64(vpn)/XlatBlockPages }

// LookupXlat probes for the translation block covering vpn, recording
// the hit or miss under the Xlat class.
func (c *Cache) LookupXlat(vpn addr.VPN) bool {
	return c.Lookup(xlatKey(vpn), access.Read, access.Xlat)
}

// FillXlat inserts the translation block covering vpn. Translation
// blocks are never dirty (the walker rereads the table on eviction), so
// the returned eviction needs handling only when it displaced a dirty
// data line.
func (c *Cache) FillXlat(vpn addr.VPN) (Eviction, bool) {
	return c.Fill(xlatKey(vpn), access.Read, access.Xlat)
}

// Access is the common probe-then-fill sequence: Lookup, and on a miss,
// Fill. It returns whether the access hit and any eviction caused by the
// fill. Callers that bypass this cache call neither (see Stats.Bypassed).
func (c *Cache) Access(line uint64, op access.Op, class access.Class) (hit bool, ev Eviction, evicted bool) {
	if c.Lookup(line, op, class) {
		return true, Eviction{}, false
	}
	ev, evicted = c.Fill(line, op, class)
	return false, ev, evicted
}

// Contains reports whether the line is present, without touching LRU state
// or statistics. For tests and introspection.
func (c *Cache) Contains(line uint64) bool {
	_, ok := c.table.Peek(line)
	return ok
}

// WritebackInto absorbs a dirty victim from an inner cache level: if the
// line is present here it is marked dirty (no statistics, no LRU change)
// and true is returned; otherwise the caller must push the write-back
// further out. This models an inclusive hierarchy's write-back path
// without a separate victim-fill traffic class.
func (c *Cache) WritebackInto(line uint64) bool {
	st, ok := c.table.Peek(line)
	if !ok {
		return false
	}
	if !st.dirty {
		st.dirty = true
		c.table.Update(line, st)
	}
	return true
}

// ResetStats zeroes the counters (contents preserved).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Invalidate drops the line if present, reporting whether it was dirty
// (caller decides whether to model the write-back).
func (c *Cache) Invalidate(line uint64) (wasDirty, wasPresent bool) {
	st, ok := c.table.Peek(line)
	if !ok {
		return false, false
	}
	c.table.Invalidate(line)
	return st.dirty, true
}

// Flush empties the cache (counters are preserved).
func (c *Cache) Flush() { c.table.Flush() }

// Occupancy returns the fraction of lines currently valid.
func (c *Cache) Occupancy() float64 {
	return float64(c.table.Len()) / float64(c.table.Capacity())
}

// ClassLines returns how many valid lines currently hold each class, for
// pollution introspection.
func (c *Cache) ClassLines() [access.NumClasses]int {
	var counts [access.NumClasses]int
	c.table.Range(func(_ uint64, st lineState) bool {
		counts[st.class]++
		return true
	})
	return counts
}
