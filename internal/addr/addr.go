// Package addr defines the address arithmetic shared by every component of
// the simulator: virtual and physical address types, x86-64 page geometry
// (4 KB and 2 MB pages), radix page-table indexing, the flattened L2/L1
// index used by NDPage, and cache-line math.
//
// The package is pure arithmetic with no state; everything in it is safe for
// concurrent use.
package addr

import "fmt"

// Fundamental x86-64 virtual-memory geometry.
const (
	// PageShift is log2 of the base page size (4 KB).
	PageShift = 12
	// PageSize is the base page size in bytes.
	PageSize = 1 << PageShift
	// PageMask masks the offset bits within a base page.
	PageMask = PageSize - 1

	// HugePageShift is log2 of the huge page size (2 MB).
	HugePageShift = 21
	// HugePageSize is the huge page size in bytes.
	HugePageSize = 1 << HugePageShift
	// HugePageMask masks the offset bits within a huge page.
	HugePageMask = HugePageSize - 1

	// LevelBits is the number of virtual-address bits consumed by one
	// radix page-table level (512 entries per table node).
	LevelBits = 9
	// EntriesPerTable is the fan-out of one radix table node.
	EntriesPerTable = 1 << LevelBits

	// FlatBits is the number of bits consumed by NDPage's flattened
	// L2/L1 level: 18 bits indexing a single 2 MB node of 262,144 PTEs.
	FlatBits = 2 * LevelBits
	// FlatEntries is the fan-out of a flattened L2/L1 node.
	FlatEntries = 1 << FlatBits

	// VABits is the number of translated virtual-address bits (x86-64
	// canonical 48-bit addressing: 36 translated bits + 12 offset bits).
	VABits = 48

	// PTESize is the size of one page-table entry in bytes.
	PTESize = 8

	// LineShift is log2 of the cache-line size (64 B).
	LineShift = 6
	// LineSize is the cache-line size in bytes.
	LineSize = 1 << LineShift
)

// Level identifies one level of the radix page table. The paper (and Intel
// convention) numbers them PL4 (root) down to PL1 (leaf).
type Level int

// Radix page-table levels. L2L1 is NDPage's merged level.
const (
	PL1 Level = 1 + iota
	PL2
	PL3
	PL4
	// L2L1 denotes NDPage's flattened node merging PL2 and PL1.
	L2L1
)

// String returns the conventional name of the level.
func (l Level) String() string {
	switch l {
	case PL1:
		return "PL1"
	case PL2:
		return "PL2"
	case PL3:
		return "PL3"
	case PL4:
		return "PL4"
	case L2L1:
		return "PL2L1"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Depth returns a level's distance from the radix root: PL4 is 0, PL3 is
// 1, PL2 is 2, PL1 is 3. The flattened L2L1 level sits where PL2 does
// (it is reached from a PL3 entry). Unknown levels return -1.
func Depth(l Level) int {
	switch l {
	case PL4:
		return 0
	case PL3:
		return 1
	case PL2, L2L1:
		return 2
	case PL1:
		return 3
	default:
		return -1
	}
}

// V is a virtual address.
type V uint64

// P is a physical address.
type P uint64

// VPN is a virtual page number (virtual address >> PageShift).
type VPN uint64

// PFN is a physical frame number (physical address >> PageShift).
type PFN uint64

// Page returns the virtual page number containing v.
func (v V) Page() VPN { return VPN(v >> PageShift) }

// HugePage returns the 2 MB-aligned virtual page number containing v,
// expressed in base-page units (i.e. the VPN of the first 4 KB page).
func (v V) HugePage() VPN { return VPN(v>>HugePageShift) << (HugePageShift - PageShift) }

// Offset returns the byte offset of v within its 4 KB page.
func (v V) Offset() uint64 { return uint64(v) & PageMask }

// HugeOffset returns the byte offset of v within its 2 MB page.
func (v V) HugeOffset() uint64 { return uint64(v) & HugePageMask }

// Line returns the index of the 64 B cache line containing v.
func (v V) Line() uint64 { return uint64(v) >> LineShift }

// Addr returns the first virtual address of the page.
func (n VPN) Addr() V { return V(n << PageShift) }

// HugeAligned reports whether the VPN is aligned to a 2 MB boundary.
func (n VPN) HugeAligned() bool { return n&(EntriesPerTable-1) == 0 }

// Addr returns the first physical address of the frame.
func (n PFN) Addr() P { return P(n << PageShift) }

// Page returns the physical frame number containing p.
func (p P) Page() PFN { return PFN(p >> PageShift) }

// Line returns the index of the 64 B cache line containing p.
func (p P) Line() uint64 { return uint64(p) >> LineShift }

// Index returns the 9-bit radix index of v at the given conventional level
// (PL4 selects bits 47:39, PL3 38:30, PL2 29:21, PL1 20:12).
func Index(v V, l Level) uint64 {
	switch l {
	case PL4:
		return uint64(v>>39) & (EntriesPerTable - 1)
	case PL3:
		return uint64(v>>30) & (EntriesPerTable - 1)
	case PL2:
		return uint64(v>>21) & (EntriesPerTable - 1)
	case PL1:
		return uint64(v>>12) & (EntriesPerTable - 1)
	case L2L1:
		return FlatIndex(v)
	default:
		panic("addr: invalid page-table level " + l.String())
	}
}

// FlatIndex returns the 18-bit index into NDPage's flattened L2/L1 node:
// virtual-address bits 29:12, i.e. the concatenation of the PL2 and PL1
// indices.
func FlatIndex(v V) uint64 {
	return uint64(v>>PageShift) & (FlatEntries - 1)
}

// Prefix returns the virtual-address prefix identifying the level-l page
// table *entry* that a walk for v reads: the VA bits consumed down through
// level l's index. This is the tag a level-l page-walk cache uses — a hit
// on the level-l prefix yields the base of the child table below l, so the
// walk can resume there. PL4 entries are tagged by the 9-bit PL4 index
// (v>>39), PL3 by 18 bits (v>>30), PL2 by 27 bits (v>>21), and PL1 (or the
// flattened L2L1 leaf) by the full 36-bit VPN (v>>12).
func Prefix(v V, l Level) uint64 {
	switch l {
	case PL4:
		return uint64(v >> 39)
	case PL3:
		return uint64(v >> 30)
	case PL2:
		return uint64(v >> 21)
	case PL1, L2L1:
		return uint64(v >> PageShift)
	default:
		panic("addr: invalid page-table level " + l.String())
	}
}

// Canonical reports whether v is a canonical 48-bit address (bits 63:47 are
// a sign extension of bit 47). The simulator only issues canonical
// lower-half addresses; the check guards against workload generator bugs.
func Canonical(v V) bool {
	top := uint64(v) >> (VABits - 1)
	return top == 0 || top == (1<<(64-VABits+1))-1
}

// AlignUp rounds n up to the next multiple of align (a power of two).
func AlignUp(n, align uint64) uint64 {
	return (n + align - 1) &^ (align - 1)
}

// AlignDown rounds n down to a multiple of align (a power of two).
func AlignDown(n, align uint64) uint64 {
	return n &^ (align - 1)
}
