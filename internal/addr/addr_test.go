package addr

import (
	"testing"
	"testing/quick"
)

func TestPageGeometryConstants(t *testing.T) {
	if PageSize != 4096 {
		t.Fatalf("PageSize = %d, want 4096", PageSize)
	}
	if HugePageSize != 2<<20 {
		t.Fatalf("HugePageSize = %d, want 2 MiB", HugePageSize)
	}
	if EntriesPerTable != 512 {
		t.Fatalf("EntriesPerTable = %d, want 512", EntriesPerTable)
	}
	if FlatEntries != 262144 {
		t.Fatalf("FlatEntries = %d, want 262144 (paper: 2^9 x 2^9)", FlatEntries)
	}
	if HugePageSize != PageSize*EntriesPerTable {
		t.Fatal("one PL2 entry must cover exactly EntriesPerTable base pages")
	}
	// The flattened node spans what one PL2 table plus its 512 PL1
	// children span: 1 GB of virtual space.
	if uint64(FlatEntries)*PageSize != 1<<30 {
		t.Fatal("flattened node must cover 1 GB of virtual space")
	}
}

func TestPageAndOffset(t *testing.T) {
	tests := []struct {
		v      V
		vpn    VPN
		offset uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{4095, 0, 4095},
		{4096, 1, 0},
		{0x7fff_ffff_f123, 0x7fff_ffff_f, 0x123},
	}
	for _, tt := range tests {
		if got := tt.v.Page(); got != tt.vpn {
			t.Errorf("V(%#x).Page() = %#x, want %#x", uint64(tt.v), got, tt.vpn)
		}
		if got := tt.v.Offset(); got != tt.offset {
			t.Errorf("V(%#x).Offset() = %#x, want %#x", uint64(tt.v), got, tt.offset)
		}
	}
}

func TestIndexSplitsVA(t *testing.T) {
	// Construct an address with known per-level indices.
	const (
		i4 = 0x1
		i3 = 0x1ff
		i2 = 0x0aa
		i1 = 0x155
	)
	v := V(i4<<39 | i3<<30 | i2<<21 | i1<<12 | 0xabc)
	if got := Index(v, PL4); got != i4 {
		t.Errorf("PL4 index = %#x, want %#x", got, uint64(i4))
	}
	if got := Index(v, PL3); got != i3 {
		t.Errorf("PL3 index = %#x, want %#x", got, uint64(i3))
	}
	if got := Index(v, PL2); got != i2 {
		t.Errorf("PL2 index = %#x, want %#x", got, uint64(i2))
	}
	if got := Index(v, PL1); got != i1 {
		t.Errorf("PL1 index = %#x, want %#x", got, uint64(i1))
	}
	if got := FlatIndex(v); got != i2<<9|i1 {
		t.Errorf("FlatIndex = %#x, want %#x", got, uint64(i2<<9|i1))
	}
}

// TestFlatIndexComposition is the paper's structural claim (Section V-B):
// the 18-bit flattened index is exactly the concatenation of the PL2 and
// PL1 indices, for every address.
func TestFlatIndexComposition(t *testing.T) {
	f := func(raw uint64) bool {
		v := V(raw & ((1 << VABits) - 1))
		return FlatIndex(v) == Index(v, PL2)<<LevelBits|Index(v, PL1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestIndexReassembly: splitting a canonical VA into level indices plus the
// page offset and reassembling them yields the original address.
func TestIndexReassembly(t *testing.T) {
	f := func(raw uint64) bool {
		v := V(raw & ((1 << VABits) - 1))
		re := Index(v, PL4)<<39 | Index(v, PL3)<<30 | Index(v, PL2)<<21 |
			Index(v, PL1)<<12 | v.Offset()
		return V(re) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefix(t *testing.T) {
	v := V(0x1<<39 | 0x2<<30 | 0x3<<21 | 0x4<<12)
	if got := Prefix(v, PL4); got != 0x1 {
		t.Errorf("PL4 prefix = %#x, want 0x1", got)
	}
	if got := Prefix(v, PL3); got != 0x1<<9|0x2 {
		t.Errorf("PL3 prefix = %#x", got)
	}
	if got := Prefix(v, PL2); got != (0x1<<9|0x2)<<9|0x3 {
		t.Errorf("PL2 prefix = %#x", got)
	}
	if got := Prefix(v, PL1); got != ((0x1<<9|0x2)<<9|0x3)<<9|0x4 {
		t.Errorf("PL1 prefix = %#x", got)
	}
	if got, want := Prefix(v, L2L1), Prefix(v, PL1); got != want {
		t.Errorf("L2L1 prefix = %#x, want PL1 prefix %#x", got, want)
	}
	// Pages sharing a 2 MB region share the PL2 prefix but not PL1.
	v2 := v + addr4K
	if Prefix(v, PL2) != Prefix(v2, PL2) {
		t.Error("sibling pages must share the PL2 prefix")
	}
	if Prefix(v, PL1) == Prefix(v2, PL1) {
		t.Error("distinct pages must differ in the PL1 prefix")
	}
}

const addr4K = V(PageSize)

func TestHugePage(t *testing.T) {
	v := V(5*HugePageSize + 12345)
	if got := v.HugePage(); got != VPN(5*EntriesPerTable) {
		t.Errorf("HugePage = %d, want %d", got, 5*EntriesPerTable)
	}
	if got := v.HugeOffset(); got != 12345 {
		t.Errorf("HugeOffset = %d, want 12345", got)
	}
	if !VPN(512).HugeAligned() {
		t.Error("VPN 512 should be 2MB-aligned")
	}
	if VPN(513).HugeAligned() {
		t.Error("VPN 513 should not be 2MB-aligned")
	}
}

func TestCanonical(t *testing.T) {
	if !Canonical(0) || !Canonical(V(1<<47-1)) {
		t.Error("lower-half addresses should be canonical")
	}
	if !Canonical(V(^uint64(0))) {
		t.Error("all-ones is canonical (sign-extended)")
	}
	if Canonical(V(1 << 47)) {
		t.Error("1<<47 without sign extension is non-canonical")
	}
}

func TestAlign(t *testing.T) {
	if got := AlignUp(0, 4096); got != 0 {
		t.Errorf("AlignUp(0) = %d", got)
	}
	if got := AlignUp(1, 4096); got != 4096 {
		t.Errorf("AlignUp(1) = %d", got)
	}
	if got := AlignUp(4096, 4096); got != 4096 {
		t.Errorf("AlignUp(4096) = %d", got)
	}
	if got := AlignDown(4097, 4096); got != 4096 {
		t.Errorf("AlignDown(4097) = %d", got)
	}
	f := func(n uint32) bool {
		u := AlignUp(uint64(n), LineSize)
		d := AlignDown(uint64(n), LineSize)
		return u >= uint64(n) && d <= uint64(n) && u-d < 2*LineSize &&
			u%LineSize == 0 && d%LineSize == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{PL1: "PL1", PL2: "PL2", PL3: "PL3", PL4: "PL4", L2L1: "PL2L1"} {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), got, want)
		}
	}
	if got := Level(42).String(); got != "Level(42)" {
		t.Errorf("unknown level String() = %q", got)
	}
}

func TestLineMath(t *testing.T) {
	if got := V(63).Line(); got != 0 {
		t.Errorf("V(63).Line() = %d", got)
	}
	if got := V(64).Line(); got != 1 {
		t.Errorf("V(64).Line() = %d", got)
	}
	if got := P(128).Line(); got != 2 {
		t.Errorf("P(128).Line() = %d", got)
	}
}

func TestVPNPFNRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		vpn := VPN(n)
		pfn := PFN(n)
		return vpn.Addr().Page() == vpn && pfn.Addr().Page() == pfn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
