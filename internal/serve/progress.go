package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"ndpage/internal/core"
	"ndpage/internal/memsys"
	"ndpage/internal/sim"
	"ndpage/internal/sweep"
)

// maxPlans bounds how many plans the server remembers for event
// replay; beyond it, the oldest finished plans are forgotten.
const maxPlans = 128

// PlanRequest is the wire form of a sweep.Plan: the serializable axes
// (the Variants axis carries Go closures and stays client-side — a
// client expands variants itself and posts the resulting configs via
// /v1/sim). Expansion, validation, and cross-product semantics are
// exactly sweep.Plan's.
type PlanRequest struct {
	Base       sim.Config       `json:"base"`
	Systems    []memsys.Kind    `json:"systems,omitempty"`
	Mechanisms []core.Mechanism `json:"mechanisms,omitempty"`
	Cores      []int            `json:"cores,omitempty"`
	Workloads  []string         `json:"workloads,omitempty"`
	Seeds      []uint64         `json:"seeds,omitempty"`
}

// PlanResponse answers POST /v1/plan: the plan's identity, its unique-
// key census, and where to stream its progress.
type PlanResponse struct {
	ID string `json:"id"`
	// Total is the number of unique configurations the plan expanded
	// to; Warm of those were already stored, Scheduled went to the
	// worker pool, Collapsed attached to runs already in flight, and
	// Rejected did not fit the admission queue (their events carry the
	// error; resubmit the plan after Retry-After to fill the holes).
	Total     int    `json:"total"`
	Warm      int    `json:"warm"`
	Scheduled int    `json:"scheduled"`
	Collapsed int    `json:"collapsed"`
	Rejected  int    `json:"rejected"`
	Events    string `json:"events"`
}

// planEvent is the wire form of a sweep.Event: one run's fate within a
// plan.
type planEvent struct {
	Key       string `json:"key"`
	Desc      string `json:"desc"`
	Cached    bool   `json:"cached,omitempty"`
	Err       string `json:"err,omitempty"`
	Cycles    uint64 `json:"cycles,omitempty"`
	ElapsedNS int64  `json:"elapsed_ns,omitempty"`
}

// plan tracks one submitted plan's progress: an append-only event log
// plus a broadcast channel recreated on every append, so any number of
// streams can replay the log and then wait for the next event.
type plan struct {
	id    string
	seq   int
	total int

	mu     sync.Mutex
	events []planEvent
	wake   chan struct{}
}

func newPlan(id string, seq, total int) *plan {
	return &plan{id: id, seq: seq, total: total, wake: make(chan struct{})}
}

// record appends one event and wakes every waiting stream.
func (p *plan) record(e planEvent) {
	p.mu.Lock()
	p.events = append(p.events, e)
	close(p.wake)
	p.wake = make(chan struct{})
	p.mu.Unlock()
}

// snapshot returns the events from index i on, the current wake
// channel, and whether the plan is complete.
func (p *plan) snapshot(i int) ([]planEvent, chan struct{}, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.events[i:], p.wake, len(p.events) == p.total
}

// addPlan registers a new plan, evicting the oldest finished plans
// past the retention cap.
func (s *Server) addPlan(total int) *plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.planSeq++
	p := newPlan("p"+strconv.Itoa(s.planSeq), s.planSeq, total)
	s.plans[p.id] = p
	if len(s.plans) > maxPlans {
		var finished []*plan
		for _, q := range s.plans {
			if evs, _, done := q.snapshot(0); done && len(evs) == q.total {
				finished = append(finished, q)
			}
		}
		sort.Slice(finished, func(a, b int) bool { return finished[a].seq < finished[b].seq })
		for _, q := range finished {
			if len(s.plans) <= maxPlans {
				break
			}
			delete(s.plans, q.id)
		}
	}
	return p
}

// watch records a flight's outcome into a plan when it completes.
func (s *Server) watch(p *plan, f *flight) {
	<-f.done
	e := planEvent{Key: f.key, Desc: f.cfg.Desc(), ElapsedNS: int64(f.elapsed)}
	switch {
	case f.err != nil:
		e.Err = f.err.Error()
	default:
		e.Cycles = f.res.Cycles
		e.Cached = f.cached
	}
	p.record(e)
}

// handlePlan expands a PlanRequest and schedules every cold unique key,
// answering 202 with the plan's census and its event-stream URL. Warm
// keys are recorded as cached events immediately; keys the admission
// queue cannot take are recorded as failed events (and counted in
// Rejected) so the stream still terminates — the client resubmits after
// Retry-After to fill the holes, finding the completed keys warm.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var preq PlanRequest
	if err := dec.Decode(&preq); err != nil {
		http.Error(w, fmt.Sprintf("decode plan: %v", err), http.StatusBadRequest)
		return
	}
	cfgs, err := sweep.Plan{
		Base:       preq.Base,
		Systems:    preq.Systems,
		Mechanisms: preq.Mechanisms,
		Cores:      preq.Cores,
		Workloads:  preq.Workloads,
		Seeds:      preq.Seeds,
	}.Configs()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Unique keys in plan order.
	type cell struct {
		cfg sim.Config
		key string
	}
	var cells []cell
	seen := make(map[string]bool)
	for _, cfg := range cfgs {
		n := cfg.Normalize()
		k := n.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		cells = append(cells, cell{n, k})
	}

	p := s.addPlan(len(cells))
	resp := PlanResponse{ID: p.id, Total: len(cells), Events: "/v1/events/" + p.id}
	for _, c := range cells {
		res, ok, err := s.store.Get(c.key)
		if err != nil {
			p.record(planEvent{Key: c.key, Desc: c.cfg.Desc(), Err: fmt.Sprintf("store: %v", err)})
			continue
		}
		if ok {
			s.hits.Add(1)
			resp.Warm++
			p.record(planEvent{Key: c.key, Desc: c.cfg.Desc(), Cached: true, Cycles: res.Cycles})
			continue
		}
		s.misses.Add(1)
		f, created, err := s.submit(c.cfg, c.key)
		if err != nil {
			resp.Rejected++
			p.record(planEvent{Key: c.key, Desc: c.cfg.Desc(), Err: "not scheduled: " + err.Error()})
			continue
		}
		if created {
			resp.Scheduled++
		} else {
			resp.Collapsed++
		}
		go s.watch(p, f)
	}
	if resp.Rejected > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(resp)
}

// handleEvents streams a plan's progress: every event recorded so far
// is replayed, then events arrive live until the plan completes. The
// default framing is SSE (`data: {json}` records, a final `event: done`
// frame); ?format=ndjson switches to bare JSON lines over a chunked
// response, with a final {"done":true} line.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	p := s.plans[id]
	s.mu.Unlock()
	if p == nil {
		http.Error(w, "unknown plan", http.StatusNotFound)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ndjson := r.URL.Query().Get("format") == "ndjson"
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
	}
	w.Header().Set("Cache-Control", "no-store")

	i := 0
	for {
		events, wake, done := p.snapshot(i)
		for _, e := range events {
			b, _ := json.Marshal(e)
			if ndjson {
				fmt.Fprintf(w, "%s\n", b)
			} else {
				fmt.Fprintf(w, "data: %s\n\n", b)
			}
			i++
		}
		if len(events) > 0 {
			flusher.Flush()
		}
		if done {
			if ndjson {
				fmt.Fprintf(w, "{\"done\":true,\"total\":%d}\n", p.total)
			} else {
				fmt.Fprintf(w, "event: done\ndata: {\"total\":%d}\n\n", p.total)
			}
			flusher.Flush()
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}
