package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"ndpage/internal/fault"
	"ndpage/internal/sim"
	"ndpage/internal/sweep"
)

// TestWorkerRecoversPanic: a panicking configuration costs one failed
// request — a 500 marked X-Sim-Permanent — while the process, its
// workers, and subsequent healthy runs all survive.
func TestWorkerRecoversPanic(t *testing.T) {
	var logLines int
	s, ts := newTestServer(t, Options{
		Workers: 1,
		Simulate: func(cfg sim.Config) (*sim.Result, error) {
			if cfg.Seed == 13 {
				panic("poisoned page-table state")
			}
			return fakeResult(cfg), nil
		},
		Logf: func(string, ...any) { logLines++ },
	})

	resp := postSim(t, ts.URL, testBase(13))
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking config: %d %q, want 500", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Sim-Permanent") != "true" {
		t.Error("real panic not classified permanent for the client")
	}

	// The process shrugged: the same worker serves the next run.
	resp = postSim(t, ts.URL, testBase(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy run after panic: %d", resp.StatusCode)
	}
	resp.Body.Close()

	snap := s.Snapshot()
	if snap.PanicsRecovered != 1 || snap.Failures != 1 || snap.Simulations != 1 {
		t.Errorf("stats = {Panics:%d Failures:%d Sims:%d}, want 1/1/1",
			snap.PanicsRecovered, snap.Failures, snap.Simulations)
	}
	if logLines == 0 {
		t.Error("recovered panic was not logged")
	}
}

// TestWatchdogKillsRunawayRun: a run past RunTimeout fails transiently
// (the client may retry) and its worker moves on; when the detached
// goroutine eventually finishes, the result is salvaged into the store
// so the retry finds the key warm.
func TestWatchdogKillsRunawayRun(t *testing.T) {
	g := newGate()
	store := sweep.NewMemStore()
	s, ts := newTestServer(t, Options{
		Store:      store,
		Workers:    1,
		Simulate:   g.simulate,
		RunTimeout: 10 * time.Millisecond,
	})

	cfg := testBase(5)
	resp := postSim(t, ts.URL, cfg)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("runaway run: %d %q, want 500", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Sim-Permanent") == "true" {
		t.Error("watchdog kill classified permanent — retries would be suppressed")
	}
	if snap := s.Snapshot(); snap.WatchdogKills != 1 {
		t.Fatalf("WatchdogKills = %d, want 1", snap.WatchdogKills)
	}

	// The runaway run finishes late; its result is salvaged.
	close(g.release)
	waitFor(t, "late result salvaged", func() bool { return s.Snapshot().Salvaged == 1 })
	if _, ok, _ := store.Get(cfg.Normalize().Key()); !ok {
		t.Error("salvaged result not in store")
	}
	// The retry is warm: no new simulation scheduled.
	resp = postSim(t, ts.URL, cfg)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("retry after salvage: %d, X-Cache %q; want warm hit", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	resp.Body.Close()
}

// TestChaosEndToEnd is the acceptance scenario at library level: a
// server over a fault-injected DirStore (first simulation panics, first
// store write torn) serving a client whose transport injects resets,
// 5xx bursts, and body truncation. Two full passes must converge to
// byte-identical results, the server must never die, and /statsz must
// account for every recovery.
func TestChaosEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ds, err := sweep.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	serverPlan := fault.ServerPlan(1)
	s, ts := newTestServer(t, Options{
		Store:    &fault.Store{Inner: ds, Plan: serverPlan, Dir: ds.Dir()},
		Simulate: serverPlan.WrapSim(sim.RunConfig),
		Workers:  2,
	})

	plan := sweep.Plan{Base: testBase(0), Seeds: []uint64{1, 2}}
	clientPlan := fault.ClientPlan(1)
	pass := func() string {
		remote, err := sweep.NewRemoteStore(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		remote.Client = &http.Client{Transport: &fault.Transport{Plan: clientPlan}}
		remote.BackoffBase = time.Millisecond
		remote.BackoffCap = 2 * time.Millisecond
		r := &sweep.Runner{Store: remote, Parallel: 1}
		out, err := r.RunPlan(t.Context(), plan)
		if err != nil {
			t.Fatalf("sweep under chaos: %v", err)
		}
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	first := pass()
	second := pass() // fresh client; re-reads the torn entry from disk
	if first != second {
		t.Error("results diverged across chaos passes")
	}

	snap := s.Snapshot()
	if snap.PanicsRecovered != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", snap.PanicsRecovered)
	}
	if snap.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1 (probed through the fault wrapper)", snap.Quarantined)
	}
	if snap.Failures != 1 {
		t.Errorf("Failures = %d, want 1 (the recovered panic)", snap.Failures)
	}
	if snap.Simulations != 3 {
		t.Errorf("Simulations = %d, want 3 (2 cold + 1 quarantine heal)", snap.Simulations)
	}
	if ds.Quarantined() != 1 {
		t.Errorf("DirStore quarantined = %d, want 1", ds.Quarantined())
	}
	if serverPlan.Total() != 2 || clientPlan.Total() == 0 {
		t.Errorf("injected faults: server %d (want 2), client %d (want >0): %s | %s",
			serverPlan.Total(), clientPlan.Total(), serverPlan.Counts(), clientPlan.Counts())
	}
	// The server is alive and the healed entry is served warm.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos: %v %v", resp, err)
	}
	resp.Body.Close()
}
