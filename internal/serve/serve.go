// Package serve implements ndpserve: the shared sweep-result service
// that turns the content-addressed run cache (internal/sweep) into
// multi-user infrastructure. The server answers warm keys straight from
// a backing sweep.Store and schedules cold keys on a bounded worker
// pool with singleflight dedupe, so a thundering herd of identical
// configurations — any number of clients, any interleaving — costs
// exactly one simulation. See DESIGN.md section 8.
//
// HTTP surface (all JSON):
//
//	GET  /healthz            liveness probe
//	GET  /statsz             counter snapshot (hits, misses, collapses,
//	                         queue depth, worker utilization, inventory)
//	GET  /v1/result/{key}    warm-key fetch; ETag/If-None-Match → 304;
//	                         404 on a cold key (never schedules work)
//	PUT  /v1/result/{key}    client upload of a locally computed result
//	POST /v1/sim             body sim.Config: warm → result; cold →
//	                         singleflight-scheduled run (blocks); full
//	                         queue → 429 + Retry-After
//	POST /v1/plan            body PlanRequest: expand, schedule every
//	                         cold key, return a plan id
//	GET  /v1/events/{id}     progress stream for a plan: replays events
//	                         so far, then live (SSE; ?format=ndjson for
//	                         chunked JSON lines)
//
// The package is transport and scheduling only: simulation semantics,
// config validation (sim.Config.Normalize/Validate/Key), and storage
// all come from the packages the CLI already uses.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ndpage/internal/sim"
	"ndpage/internal/sweep"
)

// Options configures a Server.
type Options struct {
	// Store backs the service: warm keys are served from it, completed
	// runs are written to it. Required. A store implementing
	// sweep.Inventory (MemStore, DirStore) lets /statsz report the
	// stored-result count.
	Store sweep.Store
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds runs admitted but not yet started (0 = 64).
	// When the queue is full, new work is rejected with 429 and a
	// Retry-After hint instead of queuing without bound.
	QueueDepth int
	// RetryAfter is the pacing hint sent with 429 responses, in seconds
	// (0 = 2).
	RetryAfter int
	// Simulate overrides the simulation function (tests). Nil selects
	// sim.RunConfig. Whatever the function, the server runs it under
	// sweep.Guard: a panic becomes a structured per-run error, never a
	// dead process.
	Simulate func(sim.Config) (*sim.Result, error)
	// RunTimeout is the per-run watchdog deadline (0 = none). A run that
	// exceeds it fails with a transient sweep.RunError and its worker
	// moves on; the runaway goroutine detaches, and if it ever finishes
	// its result is salvaged into the store.
	RunTimeout time.Duration
	// Logf, when non-nil, receives one line per notable failure event
	// (panic recovered, watchdog kill, salvage). log.Printf fits.
	Logf func(format string, args ...any)
}

// Server is the sweep-result service: an http.Handler plus the worker
// pool behind it. Create with New, serve with any http.Server, and
// Close on shutdown to drain in-flight work.
type Server struct {
	store      sweep.Store
	simulate   func(sim.Config) (*sim.Result, error)
	workers    int
	retryAfter int
	runTimeout time.Duration
	logf       func(format string, args ...any)
	queue      chan *flight
	mux        *http.ServeMux
	start      time.Time
	wg         sync.WaitGroup

	mu      sync.Mutex
	flights map[string]*flight // in-flight runs by key (singleflight)
	plans   map[string]*plan
	planSeq int
	closed  bool

	hits      atomic.Uint64
	misses    atomic.Uint64
	collapses atomic.Uint64
	sims      atomic.Uint64
	failures  atomic.Uint64
	uploads   atomic.Uint64
	rejected  atomic.Uint64
	storeErrs atomic.Uint64
	panics    atomic.Uint64
	watchdog  atomic.Uint64
	salvaged  atomic.Uint64
	busy      atomic.Int64
}

// New builds a Server over opts and starts its worker pool.
func New(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, errors.New("serve: Options.Store is required")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	retry := opts.RetryAfter
	if retry <= 0 {
		retry = 2
	}
	simulate := opts.Simulate
	if simulate == nil {
		simulate = sim.RunConfig
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		store:      opts.Store,
		simulate:   sweep.Guard(simulate),
		workers:    workers,
		retryAfter: retry,
		runTimeout: opts.RunTimeout,
		logf:       logf,
		queue:      make(chan *flight, depth),
		flights:    make(map[string]*flight),
		plans:      make(map[string]*plan),
		start:      time.Now(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /v1/result/{key}", s.handleResultGet)
	s.mux.HandleFunc("PUT /v1/result/{key}", s.handleResultPut)
	s.mux.HandleFunc("POST /v1/sim", s.handleSim)
	s.mux.HandleFunc("POST /v1/plan", s.handlePlan)
	s.mux.HandleFunc("GET /v1/events/{id}", s.handleEvents)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close drains the service: no new work is admitted, queued and
// in-flight runs complete and are stored, then the workers exit. Safe
// to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// Stats is the /statsz snapshot: the service's traffic and scheduling
// counters since start.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Hits counts requests answered from the store without scheduling
	// any work (warm GETs, 304 revalidations, warm POST /v1/sim and
	// warm plan keys).
	Hits uint64 `json:"hits"`
	// Misses counts requests whose key was not in the store.
	Misses uint64 `json:"misses"`
	// Collapses counts cold requests that attached to an already
	// in-flight run instead of scheduling their own — the singleflight
	// savings.
	Collapses uint64 `json:"collapses"`
	// Simulations counts completed simulation runs; Failures the runs
	// that errored.
	Simulations uint64 `json:"simulations"`
	Failures    uint64 `json:"failures"`
	// Uploads counts results written by clients via PUT.
	Uploads uint64 `json:"uploads"`
	// Rejected counts runs refused with 429 because the queue was full.
	Rejected uint64 `json:"rejected"`
	// StoreErrors counts failed writes of completed results.
	StoreErrors uint64 `json:"store_errors"`
	// PanicsRecovered counts simulator panics caught by the worker's
	// guard — each one a run that failed structurally instead of killing
	// the process.
	PanicsRecovered uint64 `json:"panics_recovered"`
	// WatchdogKills counts runs abandoned past the RunTimeout deadline;
	// Salvaged the abandoned runs whose detached goroutine finished
	// anyway and landed its result in the store.
	WatchdogKills uint64 `json:"watchdog_kills"`
	Salvaged      uint64 `json:"salvaged"`

	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	Workers       int `json:"workers"`
	BusyWorkers   int `json:"busy_workers"`
	// Stored is the store's result inventory (-1 when the store does
	// not implement sweep.Inventory).
	Stored int `json:"stored"`
	// Quarantined is the backing store's corrupt-entry count (-1 when
	// the store does not implement sweep.Quarantiner).
	Quarantined int `json:"quarantined"`
	Plans       int `json:"plans"`
	// Breaker is the backing store's circuit position ("" when the
	// store has no breaker — the normal case; set when the server is
	// itself layered over a RemoteStore).
	Breaker string `json:"breaker,omitempty"`
}

// storeUnwrapper is implemented by store wrappers (fault injection,
// instrumentation layers) so capability probes can see through them.
type storeUnwrapper interface {
	Unwrap() sweep.Store
}

// probeStore walks the store's wrapper chain until visit returns true.
func probeStore(s sweep.Store, visit func(sweep.Store) bool) {
	for s != nil {
		if visit(s) {
			return
		}
		w, ok := s.(storeUnwrapper)
		if !ok {
			return
		}
		s = w.Unwrap()
	}
}

// Snapshot returns the current Stats.
func (s *Server) Snapshot() Stats {
	stored, quarantined, breaker := -1, -1, ""
	probeStore(s.store, func(st sweep.Store) bool {
		inv, ok := st.(sweep.Inventory)
		if ok {
			stored = inv.Len()
		}
		return ok
	})
	probeStore(s.store, func(st sweep.Store) bool {
		q, ok := st.(sweep.Quarantiner)
		if ok {
			quarantined = q.Quarantined()
		}
		return ok
	})
	probeStore(s.store, func(st sweep.Store) bool {
		b, ok := st.(interface{ Breaker() sweep.BreakerState })
		if ok {
			breaker = b.Breaker().String()
		}
		return ok
	})
	s.mu.Lock()
	plans := len(s.plans)
	s.mu.Unlock()
	return Stats{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		Collapses:       s.collapses.Load(),
		Simulations:     s.sims.Load(),
		Failures:        s.failures.Load(),
		Uploads:         s.uploads.Load(),
		Rejected:        s.rejected.Load(),
		StoreErrors:     s.storeErrs.Load(),
		PanicsRecovered: s.panics.Load(),
		WatchdogKills:   s.watchdog.Load(),
		Salvaged:        s.salvaged.Load(),
		QueueDepth:      len(s.queue),
		QueueCapacity:   cap(s.queue),
		Workers:         s.workers,
		BusyWorkers:     int(s.busy.Load()),
		Stored:          stored,
		Quarantined:     quarantined,
		Plans:           plans,
		Breaker:         breaker,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}

// etagFor returns the strong validator for a key. Results are
// content-addressed, so the key IS the entity tag: a key's bytes can
// only ever be one result.
func etagFor(key string) string { return `"` + key + `"` }

// etagMatch reports whether an If-None-Match header matches etag.
func etagMatch(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(part), "W/"))
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// writeResult sends a stored result with its validator.
func writeResult(w http.ResponseWriter, key string, res *sim.Result, xcache string) {
	w.Header().Set("ETag", etagFor(key))
	w.Header().Set("Content-Type", "application/json")
	if xcache != "" {
		w.Header().Set("X-Cache", xcache)
	}
	json.NewEncoder(w).Encode(res)
}

// handleResultGet is the warm-key read path: it never schedules work.
// A cold key is a plain 404 — clients that want the server to compute
// it POST /v1/sim instead.
func (s *Server) handleResultGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	res, ok, err := s.store.Get(key)
	if err != nil {
		http.Error(w, fmt.Sprintf("store: %v", err), http.StatusInternalServerError)
		return
	}
	if !ok {
		s.misses.Add(1)
		http.Error(w, "unknown key", http.StatusNotFound)
		return
	}
	s.hits.Add(1)
	etag := etagFor(key)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeResult(w, key, res, "hit")
}

// handleResultPut accepts a client-computed result. The body must be a
// full sim.Result whose embedded configuration is valid and hashes to
// the key in the URL — the server re-derives the content address, so a
// client cannot poison another configuration's cache slot.
func (s *Server) handleResultPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	var res sim.Result
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&res); err != nil {
		http.Error(w, fmt.Sprintf("decode result: %v", err), http.StatusBadRequest)
		return
	}
	if err := res.Config.Validate(); err != nil {
		http.Error(w, fmt.Sprintf("result config: %v", err), http.StatusBadRequest)
		return
	}
	if got := res.Config.Key(); got != key {
		http.Error(w, fmt.Sprintf("content address mismatch: config hashes to %s, not %s", got, key), http.StatusBadRequest)
		return
	}
	if err := s.store.Put(key, &res); err != nil {
		s.storeErrs.Add(1)
		http.Error(w, fmt.Sprintf("store: %v", err), http.StatusInternalServerError)
		return
	}
	s.uploads.Add(1)
	w.Header().Set("ETag", etagFor(key))
	w.WriteHeader(http.StatusNoContent)
}

// decodeConfig parses and validates a request-body configuration,
// returning its normalized form and content key. Unknown fields are
// rejected: a client built against a newer Config schema would
// otherwise silently hash to a different key than it thinks.
func decodeConfig(body io.Reader) (sim.Config, string, error) {
	dec := json.NewDecoder(io.LimitReader(body, 1<<20))
	dec.DisallowUnknownFields()
	var cfg sim.Config
	if err := dec.Decode(&cfg); err != nil {
		return cfg, "", fmt.Errorf("decode config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, "", err
	}
	n := cfg.Normalize()
	return n, n.Key(), nil
}

// handleSim is the cold-run path: warm keys return immediately, cold
// keys are scheduled with singleflight dedupe and the handler blocks
// until the (possibly shared) run completes. A full queue is a 429
// with a Retry-After pacing hint. A client that disconnects mid-run
// detaches; the run itself completes and is stored — the next request
// for the key is warm.
func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	cfg, key, err := decodeConfig(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, ok, err := s.store.Get(key)
	if err != nil {
		http.Error(w, fmt.Sprintf("store: %v", err), http.StatusInternalServerError)
		return
	}
	if ok {
		s.hits.Add(1)
		writeResult(w, key, res, "hit")
		return
	}
	s.misses.Add(1)
	f, _, err := s.submit(cfg, key)
	if err != nil {
		s.reject(w, err)
		return
	}
	select {
	case <-f.done:
	case <-r.Context().Done():
		// Client gone. The flight is not cancelled: the simulation is
		// already paid for (or shared with other waiters), so it runs
		// to completion and lands in the store.
		return
	}
	if f.err != nil {
		// Tell the client whether a retry is worth it: a permanent
		// failure is a property of the configuration and will reproduce.
		if sweep.IsPermanent(f.err) {
			w.Header().Set("X-Sim-Permanent", "true")
		}
		http.Error(w, fmt.Sprintf("simulation: %v", f.err), http.StatusInternalServerError)
		return
	}
	xcache := "sim"
	if f.cached {
		xcache = "hit"
	}
	writeResult(w, key, f.res, xcache)
}

// reject writes the backpressure (or shutdown) response for a submit
// failure.
func (s *Server) reject(w http.ResponseWriter, err error) {
	if errors.Is(err, errClosed) {
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter))
	http.Error(w, "queue full, retry later", http.StatusTooManyRequests)
}
