package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndpage/internal/core"
	"ndpage/internal/memsys"
	"ndpage/internal/sim"
	"ndpage/internal/sweep"
)

// testBase is a small valid configuration; distinct seeds give
// distinct content keys.
func testBase(seed uint64) sim.Config {
	return sim.Config{
		System:         memsys.NDP,
		Cores:          1,
		Mechanism:      core.Radix,
		Workload:       "rnd",
		FootprintBytes: 64 << 20,
		MemoryBytes:    1 << 30,
		Warmup:         500,
		Instructions:   2_000,
		Seed:           seed,
	}
}

// fakeResult fabricates a result whose content address matches cfg.
func fakeResult(cfg sim.Config) *sim.Result {
	n := cfg.Normalize()
	return &sim.Result{Config: n, Cycles: 1000 + n.Seed}
}

// gate is a Simulate stub that counts calls and blocks each run until
// released.
type gate struct {
	calls   atomic.Int64
	release chan struct{}
}

func newGate() *gate { return &gate{release: make(chan struct{})} }

func (g *gate) simulate(cfg sim.Config) (*sim.Result, error) {
	g.calls.Add(1)
	<-g.release
	return fakeResult(cfg), nil
}

// instantSim counts calls and returns immediately.
func instantSim(calls *atomic.Int64) func(sim.Config) (*sim.Result, error) {
	return func(cfg sim.Config) (*sim.Result, error) {
		calls.Add(1)
		return fakeResult(cfg), nil
	}
}

// newTestServer builds a Server plus an httptest front end; both are
// torn down with the test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Store == nil {
		opts.Store = sweep.NewMemStore()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// waitFor blocks until cond holds, re-checking on a ticker channel and
// bailing at the deadline — a select over channels, not a bare sleep
// loop, so a heavily loaded CI machine delays the check instead of
// missing the window.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	deadline := time.NewTimer(5 * time.Second)
	defer deadline.Stop()
	for !cond() {
		select {
		case <-tick.C:
		case <-deadline.C:
			t.Fatalf("timed out waiting for %s", what)
		}
	}
}

// postSim posts cfg to /v1/sim and returns the response.
func postSim(t *testing.T, base string, cfg sim.Config) *http.Response {
	t.Helper()
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sim", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeBody decodes a result response body.
func decodeBody(t *testing.T, resp *http.Response) *sim.Result {
	t.Helper()
	defer resp.Body.Close()
	var res sim.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return &res
}

// TestSingleflightCollapse is the dedupe contract: N concurrent
// identical cold requests cost exactly one simulation, and every
// request receives the one result.
func TestSingleflightCollapse(t *testing.T) {
	g := newGate()
	s, ts := newTestServer(t, Options{Simulate: g.simulate, Workers: 2})

	const n = 8
	cfg := testBase(7)
	var wg sync.WaitGroup
	results := make([]*sim.Result, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postSim(t, ts.URL, cfg)
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				results[i] = decodeBody(t, resp)
			} else {
				resp.Body.Close()
			}
		}(i)
	}

	// All n requests miss and attach to one flight: 1 scheduled, n-1
	// collapsed. Only then release the simulation.
	waitFor(t, "all requests attached", func() bool {
		return s.Snapshot().Collapses == n-1
	})
	if got := g.calls.Load(); got != 1 {
		t.Fatalf("simulations started before release: %d, want 1", got)
	}
	close(g.release)
	wg.Wait()

	want := fakeResult(cfg)
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if results[i].Cycles != want.Cycles {
			t.Fatalf("request %d: cycles %d, want %d", i, results[i].Cycles, want.Cycles)
		}
	}
	snap := s.Snapshot()
	if g.calls.Load() != 1 || snap.Simulations != 1 {
		t.Errorf("simulations = %d (stub %d), want 1", snap.Simulations, g.calls.Load())
	}
	if snap.Misses != n || snap.Collapses != n-1 {
		t.Errorf("misses/collapses = %d/%d, want %d/%d", snap.Misses, snap.Collapses, n, n-1)
	}
	// The result landed in the store: the next request is a pure hit.
	resp := postSim(t, ts.URL, cfg)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("post-flight request: status %d, X-Cache %q, want warm hit", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	resp.Body.Close()
}

// TestWarmKeyNoScheduling: GETs and warm sims never touch the worker
// pool, and If-None-Match revalidation answers 304 with no body.
func TestWarmKeyNoScheduling(t *testing.T) {
	var calls atomic.Int64
	store := sweep.NewMemStore()
	cfg := testBase(1)
	key := cfg.Key()
	if err := store.Put(key, fakeResult(cfg)); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Options{Store: store, Simulate: instantSim(&calls)})

	resp, err := http.Get(ts.URL + "/v1/result/" + key)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm GET: status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag != `"`+key+`"` {
		t.Fatalf("ETag %q, want quoted key", etag)
	}
	if got := decodeBody(t, resp).Cycles; got != 1001 {
		t.Fatalf("warm GET cycles %d, want 1001", got)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/result/"+key, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation: status %d, want 304", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postSim(t, ts.URL, cfg)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("warm sim: status %d X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	resp.Body.Close()

	snap := s.Snapshot()
	if calls.Load() != 0 || snap.Simulations != 0 || snap.QueueDepth != 0 {
		t.Errorf("warm path scheduled work: calls %d, sims %d, queue %d", calls.Load(), snap.Simulations, snap.QueueDepth)
	}
	if snap.Hits != 3 {
		t.Errorf("hits = %d, want 3", snap.Hits)
	}

	// A cold GET is a 404, never a scheduled run.
	resp, err = http.Get(ts.URL + "/v1/result/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold GET: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	if calls.Load() != 0 || s.Snapshot().QueueDepth != 0 {
		t.Error("cold GET scheduled work")
	}
}

// TestMalformedRequests: broken JSON, unknown fields, and invalid
// configurations are all 400s, on both /v1/sim and /v1/plan.
func TestMalformedRequests(t *testing.T) {
	var calls atomic.Int64
	_, ts := newTestServer(t, Options{Simulate: instantSim(&calls)})

	post := func(path, body string) int {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	badCfg, _ := json.Marshal(func() sim.Config { c := testBase(1); c.Cores = 999; return c }())
	cases := []struct {
		name, path, body string
	}{
		{"broken json", "/v1/sim", `{"Cores": `},
		{"unknown field", "/v1/sim", `{"Cores": 1, "Bogus": true}`},
		{"invalid config", "/v1/sim", string(badCfg)},
		{"unknown workload", "/v1/sim", `{"Workload": "no-such-kernel"}`},
		{"plan broken json", "/v1/plan", `{"base": [}`},
		{"plan invalid axis", "/v1/plan", `{"base": ` + string(badCfg) + `}`},
	}
	for _, c := range cases {
		if got := post(c.path, c.body); got != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, got)
		}
	}
	if calls.Load() != 0 {
		t.Errorf("malformed requests reached the simulator: %d calls", calls.Load())
	}
}

// TestCancelMidRequest: a client that disconnects mid-run detaches;
// the flight completes, lands in the store, and the server stays
// healthy.
func TestCancelMidRequest(t *testing.T) {
	g := newGate()
	store := sweep.NewMemStore()
	s, ts := newTestServer(t, Options{Store: store, Simulate: g.simulate})

	cfg := testBase(3)
	key := cfg.Key()
	b, _ := json.Marshal(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sim", bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()

	waitFor(t, "simulation to start", func() bool { return g.calls.Load() == 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request returned no error")
	}

	// The run was NOT cancelled with the client: it completes and is
	// stored, so the next request for the key is warm.
	close(g.release)
	waitFor(t, "result to land in the store", func() bool {
		_, ok, _ := store.Get(key)
		return ok
	})
	if snap := s.Snapshot(); snap.Simulations != 1 {
		t.Errorf("simulations = %d, want 1", snap.Simulations)
	}
	resp := postSim(t, ts.URL, cfg)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("post-cancel request: status %d X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	resp.Body.Close()
}

// TestBackpressure: a full admission queue answers 429 with the
// configured Retry-After, and the rejected key succeeds on retry once
// the queue drains.
func TestBackpressure(t *testing.T) {
	g := newGate()
	s, ts := newTestServer(t, Options{Simulate: g.simulate, Workers: 1, QueueDepth: 1, RetryAfter: 7})

	resps := make(chan int, 2)
	post := func(seed uint64) {
		resp := postSim(t, ts.URL, testBase(seed))
		resp.Body.Close()
		resps <- resp.StatusCode
	}
	go post(1)
	waitFor(t, "worker busy", func() bool { return g.calls.Load() == 1 })
	go post(2)
	waitFor(t, "queue full", func() bool { return s.Snapshot().QueueDepth == 1 })

	resp := postSim(t, ts.URL, testBase(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After %q, want \"7\"", ra)
	}
	resp.Body.Close()

	close(g.release)
	for i := 0; i < 2; i++ {
		if code := <-resps; code != http.StatusOK {
			t.Errorf("in-queue request finished with %d", code)
		}
	}
	// The rejected key was never admitted; retried now, it runs.
	resp = postSim(t, ts.URL, testBase(3))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("retry after drain: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if snap := s.Snapshot(); snap.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", snap.Rejected)
	}
}

// TestUploadIntegrity: PUT stores a valid result, and the server
// re-derives the content address so a mangled upload cannot poison a
// different key.
func TestUploadIntegrity(t *testing.T) {
	store := sweep.NewMemStore()
	s, ts := newTestServer(t, Options{Store: store})

	cfg := testBase(5)
	key := cfg.Key()
	res := fakeResult(cfg)
	b, _ := json.Marshal(res)
	put := func(k string, body []byte) int {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/result/"+k, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := put(key, b); code != http.StatusNoContent {
		t.Fatalf("upload: status %d, want 204", code)
	}
	if got, ok, _ := store.Get(key); !ok || got.Cycles != res.Cycles {
		t.Fatal("upload did not land in the store")
	}
	if code := put(testBase(6).Key(), b); code != http.StatusBadRequest {
		t.Errorf("mismatched-key upload: status %d, want 400", code)
	}
	if code := put(key, []byte(`{"Cycles": `)); code != http.StatusBadRequest {
		t.Errorf("broken upload: status %d, want 400", code)
	}
	if snap := s.Snapshot(); snap.Uploads != 1 {
		t.Errorf("uploads = %d, want 1", snap.Uploads)
	}
}

// readEvents consumes a plan's ndjson stream until its done marker.
func readEvents(t *testing.T, url string) []planEvent {
	t.Helper()
	resp, err := http.Get(url + "?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	var events []planEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, `"done":true`) {
			return events
		}
		var e planEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		events = append(events, e)
	}
	t.Fatalf("stream ended without done marker: %v", sc.Err())
	return nil
}

// TestPlanAndEventStream: a posted plan expands, warm keys are
// replayed as cached events, cold keys stream as they complete, and
// both framings (SSE and ndjson) terminate with a done marker.
func TestPlanAndEventStream(t *testing.T) {
	var calls atomic.Int64
	store := sweep.NewMemStore()
	warm := testBase(1)
	if err := store.Put(warm.Key(), fakeResult(warm)); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Options{Store: store, Simulate: instantSim(&calls)})

	preq := PlanRequest{Base: testBase(0), Seeds: []uint64{1, 2, 3}}
	b, _ := json.Marshal(preq)
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("plan: status %d, want 202", resp.StatusCode)
	}
	var pr PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pr.Total != 3 || pr.Warm != 1 || pr.Scheduled != 2 || pr.Rejected != 0 {
		t.Fatalf("plan census = %+v, want total 3, warm 1, scheduled 2", pr)
	}

	events := readEvents(t, ts.URL+pr.Events)
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(events), events)
	}
	cached := 0
	for _, e := range events {
		if e.Err != "" {
			t.Errorf("event %s failed: %s", e.Key, e.Err)
		}
		if e.Cached {
			cached++
		}
	}
	if cached != 1 {
		t.Errorf("cached events = %d, want 1 (the warm key)", cached)
	}
	if calls.Load() != 2 {
		t.Errorf("simulations = %d, want 2", calls.Load())
	}

	// Replay after completion: a late subscriber sees the full log.
	if replay := readEvents(t, ts.URL+pr.Events); len(replay) != 3 {
		t.Errorf("replay got %d events, want 3", len(replay))
	}

	// SSE framing of the same stream.
	resp, err = http.Get(ts.URL + pr.Events)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(body, []byte("data: ")); got != 4 { // 3 events + done
		t.Errorf("SSE data frames = %d, want 4\n%s", got, body)
	}
	if !bytes.Contains(body, []byte("event: done")) {
		t.Errorf("SSE stream missing done frame:\n%s", body)
	}

	// Resubmitting the plan finds everything warm.
	resp, err = http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var pr2 PlanResponse
	json.NewDecoder(resp.Body).Decode(&pr2)
	resp.Body.Close()
	if pr2.Warm != 3 || pr2.Scheduled != 0 {
		t.Errorf("resubmitted plan: %+v, want all warm", pr2)
	}
	if calls.Load() != 2 {
		t.Errorf("resubmission re-simulated: %d calls", calls.Load())
	}
	if s.Snapshot().Plans != 2 {
		t.Errorf("plans = %d, want 2", s.Snapshot().Plans)
	}

	if resp, err := http.Get(ts.URL + "/v1/events/nope"); err != nil {
		t.Fatal(err)
	} else {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown plan: status %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestCloseDrains: Close admits nothing new but queued and in-flight
// runs complete and land in the store.
func TestCloseDrains(t *testing.T) {
	g := newGate()
	store := sweep.NewMemStore()
	s, err := New(Options{Store: store, Simulate: g.simulate, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	f1, _, err := s.submit(testBase(1).Normalize(), testBase(1).Key())
	if err != nil {
		t.Fatal(err)
	}
	f2, _, err := s.submit(testBase(2).Normalize(), testBase(2).Key())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker busy", func() bool { return g.calls.Load() == 1 })
	close(g.release)
	s.Close()
	<-f1.done
	<-f2.done
	for _, cfg := range []sim.Config{testBase(1), testBase(2)} {
		if _, ok, _ := store.Get(cfg.Key()); !ok {
			t.Errorf("queued run %s not drained into the store", cfg.Key())
		}
	}
	if _, _, err := s.submit(testBase(3).Normalize(), testBase(3).Key()); err == nil {
		t.Error("submit after Close succeeded")
	}
}

// TestHealthAndStats: the probes answer, and /statsz reports the
// store inventory through sweep.Inventory.
func TestHealthAndStats(t *testing.T) {
	store := sweep.NewMemStore()
	cfg := testBase(1)
	store.Put(cfg.Key(), fakeResult(cfg))
	_, ts := newTestServer(t, Options{Store: store, Workers: 3, QueueDepth: 5})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap Stats
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Stored != 1 {
		t.Errorf("stored = %d, want 1 (inventory)", snap.Stored)
	}
	if snap.Workers != 3 || snap.QueueCapacity != 5 {
		t.Errorf("workers/queue = %d/%d, want 3/5", snap.Workers, snap.QueueCapacity)
	}
}

// TestEndToEndRemoteDedupe is the acceptance proof at library level:
// two independent sweep clients (each a Runner over its own
// RemoteStore) run the same plan concurrently against one server, and
// the server performs exactly one simulation per unique key. A third
// client then finds every key warm.
func TestEndToEndRemoteDedupe(t *testing.T) {
	// Flights hold at a gate until both clients have attached, so the
	// overlap the test needs is guaranteed by channels, not by hoping a
	// sleep outlasts the scheduler.
	g := newGate()
	calls := &g.calls
	s, ts := newTestServer(t, Options{Simulate: g.simulate, Workers: 4})

	plan := sweep.Plan{Base: testBase(0), Seeds: []uint64{1, 2, 3, 4}}
	runClient := func() ([]*sim.Result, error) {
		remote, err := sweep.NewRemoteStore(ts.URL)
		if err != nil {
			return nil, err
		}
		r := &sweep.Runner{Store: remote, Parallel: 4}
		return r.RunPlan(context.Background(), plan)
	}

	var wg sync.WaitGroup
	outs := make([][]*sim.Result, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = runClient()
		}(i)
	}
	// 4 collapses = every key requested by both clients; only then do
	// the gated simulations run.
	waitFor(t, "both clients attached to all flights", func() bool {
		return s.Snapshot().Collapses == 4
	})
	close(g.release)
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		for j, res := range outs[i] {
			if res == nil || res.Cycles != 1000+plan.Seeds[j] {
				t.Fatalf("client %d result %d wrong: %+v", i, j, res)
			}
		}
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("two concurrent clients cost %d simulations, want 4 (one per unique key)", got)
	}
	if snap := s.Snapshot(); snap.Simulations != 4 {
		t.Errorf("server simulations = %d, want 4", snap.Simulations)
	}

	// Third client: all warm, nothing scheduled, no extra simulation.
	out, err := runClient()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 || calls.Load() != 4 {
		t.Fatalf("warm client re-simulated: %d calls", calls.Load())
	}
}

// TestStatszJSONShape guards the field names the CI smoke job greps.
func TestStatszJSONShape(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, field := range []string{
		`"hits"`, `"misses"`, `"collapses"`, `"simulations"`, `"failures"`,
		`"uploads"`, `"rejected"`, `"queue_depth"`, `"workers"`, `"busy_workers"`, `"stored"`,
	} {
		if !bytes.Contains(body, []byte(field)) {
			t.Errorf("statsz missing %s:\n%s", field, body)
		}
	}
}
