package serve

import (
	"errors"
	"fmt"
	"time"

	"ndpage/internal/sim"
	"ndpage/internal/sweep"
)

// errBusy reports a full admission queue (→ 429 + Retry-After);
// errClosed a server past Close (→ 503).
var (
	errBusy   = errors.New("serve: queue full")
	errClosed = errors.New("serve: closed")
)

// flight is one in-flight (or queued) simulation. All requests for the
// same key share a single flight while it is live — the singleflight
// invariant — and read its outcome after done closes. The fields above
// done are set once, before the close, and immutable afterwards.
type flight struct {
	cfg     sim.Config // normalized
	key     string
	res     *sim.Result
	err     error
	cached  bool // resolved from the store (raced with an upload), not simulated
	elapsed time.Duration
	done    chan struct{}
}

// submit schedules a cold key, collapsing onto an existing flight if
// one is live. It returns the flight and whether this call created it;
// errBusy when the admission queue is full, errClosed after Close.
func (s *Server) submit(cfg sim.Config, key string) (*flight, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.flights[key]; f != nil {
		s.collapses.Add(1)
		return f, false, nil
	}
	if s.closed {
		return nil, false, errClosed
	}
	f := &flight{cfg: cfg, key: key, done: make(chan struct{})}
	select {
	case s.queue <- f:
		s.flights[key] = f
		return f, true, nil
	default:
		s.rejected.Add(1)
		return nil, false, errBusy
	}
}

// worker drains the admission queue until Close. Each flight runs to
// completion whatever happens to the requests waiting on it.
func (s *Server) worker() {
	defer s.wg.Done()
	for f := range s.queue {
		s.busy.Add(1)
		s.runFlight(f)
		s.busy.Add(-1)
	}
}

// runFlight resolves one flight: re-check the store (an upload or a
// sibling's run may have landed the key while this flight queued),
// simulate on a miss, store the result, then release every waiter.
func (s *Server) runFlight(f *flight) {
	start := time.Now()
	if res, ok, err := s.store.Get(f.key); err == nil && ok {
		f.res = res
		f.cached = true
	} else {
		res, err := s.runSim(f)
		if err != nil {
			f.err = err
			s.failures.Add(1)
		} else {
			f.res = res
			s.sims.Add(1)
			if perr := s.store.Put(f.key, res); perr != nil {
				// The result is still served to waiters; only its
				// persistence failed. Count it — /statsz is how an
				// operator notices a sick disk.
				s.storeErrs.Add(1)
			}
		}
	}
	f.elapsed = time.Since(start)
	s.mu.Lock()
	delete(s.flights, f.key)
	s.mu.Unlock()
	close(f.done)
}

// notePanic counts (and logs) a recovered simulator panic.
func (s *Server) notePanic(err error) {
	var re *sweep.RunError
	if errors.As(err, &re) && re.Panicked {
		s.panics.Add(1)
		s.logf("serve: recovered panic in %s: %v", re.Desc, re.Err)
	}
}

// runSim executes a flight's simulation. The simulate function is
// already guarded (sweep.Guard, applied in New), so a panicking
// configuration surfaces here as a RunError. When a RunTimeout is set,
// the run additionally races a watchdog: past the deadline the flight
// fails with a transient RunError and the worker moves on. Go cannot
// kill the runaway goroutine, so it detaches — and if it ever does
// finish, its result is salvaged into the store, making the key warm
// for the client's retry.
func (s *Server) runSim(f *flight) (*sim.Result, error) {
	if s.runTimeout <= 0 {
		res, err := s.simulate(f.cfg)
		s.notePanic(err)
		return res, err
	}
	type outcome struct {
		res *sim.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := s.simulate(f.cfg)
		ch <- outcome{res, err}
	}()
	t := time.NewTimer(s.runTimeout)
	defer t.Stop()
	select {
	case o := <-ch:
		s.notePanic(o.err)
		return o.res, o.err
	case <-t.C:
		s.watchdog.Add(1)
		s.logf("serve: watchdog killed %s after %v", f.cfg.Desc(), s.runTimeout)
		go func() {
			o := <-ch
			s.notePanic(o.err)
			if o.err == nil && o.res != nil && s.store.Put(f.key, o.res) == nil {
				s.salvaged.Add(1)
				s.logf("serve: salvaged late result for %s", f.cfg.Desc())
			}
		}()
		return nil, &sweep.RunError{
			Op:   "watchdog",
			Desc: f.cfg.Desc(),
			Err:  fmt.Errorf("run exceeded %v deadline", s.runTimeout),
		}
	}
}
