package workload

import (
	"testing"

	"ndpage/internal/addr"
	"ndpage/internal/xrand"
)

// fakeMem is a Mem that just bump-allocates virtual regions and remembers
// them, so workload tests need no OS model.
type fakeMem struct {
	brk     addr.V
	regions []struct {
		base addr.V
		size uint64
		name string
		lazy bool
	}
}

func newFakeMem() *fakeMem { return &fakeMem{brk: 1 << 39} }

func (m *fakeMem) alloc(size uint64, name string, lazy bool) addr.V {
	size = addr.AlignUp(size, addr.HugePageSize)
	base := m.brk
	m.brk += addr.V(size)
	m.regions = append(m.regions, struct {
		base addr.V
		size uint64
		name string
		lazy bool
	}{base, size, name, lazy})
	return base
}

func (m *fakeMem) Alloc(size uint64, name string) addr.V { return m.alloc(size, name, false) }
func (m *fakeMem) AllocLazy(size uint64, name string) addr.V {
	return m.alloc(size, name, true)
}

func (m *fakeMem) contains(a addr.V) bool {
	for _, r := range m.regions {
		if a >= r.base && a < r.base+addr.V(r.size) {
			return true
		}
	}
	return false
}

func (m *fakeMem) total() uint64 {
	var t uint64
	for _, r := range m.regions {
		t += r.size
	}
	return t
}

const testFootprint = 64 << 20

func drive(t *testing.T, w Workload, threads, opsPerThread int) (*fakeMem, []Op) {
	t.Helper()
	mem := newFakeMem()
	w.Init(mem, xrand.New(1), testFootprint, threads)
	var ops []Op
	for c := 0; c < threads; c++ {
		g := w.Thread(c, uint64(100+c))
		var op Op
		for i := 0; i < opsPerThread; i++ {
			g.Next(&op)
			ops = append(ops, op)
		}
	}
	return mem, ops
}

func TestAllWorkloadsEmitValidStreams(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec := MustLookup(name)
			mem, ops := drive(t, spec.New(), 2, 20000)
			loads, stores, computes := 0, 0, 0
			for _, op := range ops {
				switch op.Kind {
				case Load:
					loads++
				case Store:
					stores++
				case Compute:
					computes++
					if op.Cycles == 0 {
						t.Fatal("compute op with zero cycles")
					}
					continue
				}
				if !mem.contains(op.Addr) {
					t.Fatalf("%v op to %#x outside any region", op.Kind, uint64(op.Addr))
				}
				if !addr.Canonical(op.Addr) {
					t.Fatalf("non-canonical address %#x", uint64(op.Addr))
				}
			}
			if loads == 0 {
				t.Error("no loads emitted")
			}
			if computes == 0 {
				t.Error("no compute ops emitted")
			}
			// Data-intensive: memory ops dominate (paper's premise).
			if memOps := loads + stores; memOps < computes {
				t.Errorf("not memory-bound: %d mem ops vs %d compute", memOps, computes)
			}
		})
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	for _, name := range Names() {
		spec := MustLookup(name)
		_, a := drive(t, spec.New(), 1, 5000)
		_, b := drive(t, spec.New(), 1, 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: op %d differs between identical runs", name, i)
			}
		}
	}
}

func TestThreadsEmitDistinctStreams(t *testing.T) {
	for _, name := range []string{"pr", "rnd", "gen"} {
		spec := MustLookup(name)
		mem := newFakeMem()
		w := spec.New()
		w.Init(mem, xrand.New(1), testFootprint, 2)
		g0, g1 := w.Thread(0, 100), w.Thread(1, 101)
		same := 0
		var a, b Op
		for i := 0; i < 1000; i++ {
			g0.Next(&a)
			g1.Next(&b)
			if a == b {
				same++
			}
		}
		if same > 900 {
			t.Errorf("%s: threads emitted %d/1000 identical ops", name, same)
		}
	}
}

func TestFootprintScalesWithBudget(t *testing.T) {
	for _, name := range Names() {
		spec := MustLookup(name)
		small := newFakeMem()
		spec.New().Init(small, xrand.New(1), 32<<20, 1)
		big := newFakeMem()
		spec.New().Init(big, xrand.New(1), 256<<20, 1)
		if big.total() <= small.total() {
			t.Errorf("%s: footprint did not grow with budget (%d vs %d)",
				name, small.total(), big.total())
		}
		// Total stays within ~2x of the budget (lazy growth regions may
		// exceed it virtually).
		if small.total() > 4*32<<20 {
			t.Errorf("%s: small budget ballooned to %d", name, small.total())
		}
	}
}

func TestGraphTopologyConsistency(t *testing.T) {
	g := &graphData{maxDeg: 8}
	mem := newFakeMem()
	g.initGraph(mem, xrand.New(3), testFootprint, 1)
	for u := uint64(0); u < 100; u++ {
		d := g.degree(u)
		if d < g.maxDeg/2 || d > g.maxDeg {
			t.Fatalf("degree(%d) = %d out of range", u, d)
		}
		if g.degree(u) != d {
			t.Fatal("degree not stable")
		}
		for k := uint64(0); k < d; k++ {
			v := g.neighbor(u, k)
			if v >= g.n {
				t.Fatalf("neighbor(%d,%d) = %d out of range", u, k, v)
			}
			if g.neighbor(u, k) != v {
				t.Fatal("neighbor not stable")
			}
		}
	}
}

func TestBFSVisitsEachVertexOnce(t *testing.T) {
	// The BFS thread must never enqueue a visited vertex: stores to the
	// visited bitmap for one vertex happen at most once per traversal.
	spec := MustLookup("bfs")
	w := spec.New().(*bfs)
	mem := newFakeMem()
	w.Init(mem, xrand.New(5), 32<<20, 1)
	g := w.Thread(0, 7)
	storeCount := map[addr.V]int{}
	restarts := 0
	var op Op
	for i := 0; i < 200000 && restarts == 0; i++ {
		g.Next(&op)
		if op.Kind == Store && op.Addr >= w.visitedVA && op.Addr < w.visitedVA+addr.V(w.n/8) {
			storeCount[op.Addr]++
		}
	}
	// A visited-word can be stored up to 8 times (8 vertices/byte), never
	// more within one traversal.
	for a, c := range storeCount {
		if c > 8 {
			t.Fatalf("visited word %#x stored %d times (revisit bug)", uint64(a), c)
		}
	}
}

func TestSweeperCoversAllResidues(t *testing.T) {
	g := &graphData{maxDeg: 8}
	mem := newFakeMem()
	g.initGraph(mem, xrand.New(3), 32<<20, 4)
	sw := newSweeper(g, 1)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		u := sw.vertex()
		if u%4 != 1 {
			t.Fatalf("thread 1 visited vertex %d (wrong residue)", u)
		}
		seen[u] = true
	}
	if len(seen) < 900 {
		t.Errorf("sweeper revisits too early: %d distinct of 1000", len(seen))
	}
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 11 {
		t.Fatalf("Table II has 11 workloads, registry has %d", len(names))
	}
	suites := map[string]bool{}
	for _, n := range names {
		s := MustLookup(n)
		if s.New == nil || s.Suite == "" || s.PaperDataset == "" {
			t.Errorf("incomplete spec for %s", n)
		}
		if got := s.New().Name(); got != n {
			t.Errorf("workload %s reports name %s", n, got)
		}
		suites[s.Suite] = true
	}
	if len(suites) != 5 {
		t.Errorf("Table II spans 5 suites, registry has %d", len(suites))
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup accepted junk")
	}
}

func TestLazyRegionsExistWhereExpected(t *testing.T) {
	// BFS/BC/SP frontiers, DLRM output and GEN table grow in-window.
	lazyExpected := map[string]bool{"bfs": true, "bc": true, "sp": true, "dlrm": true, "gen": true}
	for _, name := range Names() {
		mem := newFakeMem()
		w := MustLookup(name).New()
		w.Init(mem, xrand.New(1), testFootprint, 1)
		hasLazy := false
		for _, r := range mem.regions {
			if r.lazy {
				hasLazy = true
			}
		}
		if lazyExpected[name] && !hasLazy {
			t.Errorf("%s: expected a lazily populated growth region", name)
		}
		if !lazyExpected[name] && hasLazy {
			t.Errorf("%s: unexpected lazy region", name)
		}
	}
}

func TestGeneratorsDoNotAllocateInSteadyState(t *testing.T) {
	spec := MustLookup("pr")
	mem := newFakeMem()
	w := spec.New()
	w.Init(mem, xrand.New(1), 32<<20, 1)
	g := w.Thread(0, 9)
	var op Op
	for i := 0; i < 10000; i++ {
		g.Next(&op) // warm up buffers
	}
	allocs := testing.AllocsPerRun(1000, func() {
		g.Next(&op)
	})
	if allocs > 0.1 {
		t.Errorf("PR generator allocates %.2f per op in steady state", allocs)
	}
}
