package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Spec describes one workload the registry can build: a Table II
// benchmark, a user registration (Register), or a trace replay
// (resolved on the fly for "trace:<path>" names).
type Spec struct {
	Name        string
	Suite       string
	Description string
	// PaperDataset is the dataset size the paper used (Table II); this
	// reproduction scales footprints down (see DESIGN.md).
	PaperDataset string
	New          func() Workload
	// Params is extra identity material for registered workloads: a
	// string identifying the kernel's tuning knobs. Identity hashes it
	// (with the name) into sim.Config.Key(), so two registrations that
	// differ only in parameters content-address their runs apart.
	// Built-in workloads leave it empty.
	Params string
}

// specs is the Table II registry.
var specs = map[string]Spec{
	"bc":   {Name: "bc", Suite: "GraphBIG", Description: "Betweenness centrality", PaperDataset: "8 GB", New: NewBC},
	"bfs":  {Name: "bfs", Suite: "GraphBIG", Description: "Breadth-first search", PaperDataset: "8 GB", New: NewBFS},
	"cc":   {Name: "cc", Suite: "GraphBIG", Description: "Connected components", PaperDataset: "8 GB", New: NewCC},
	"gc":   {Name: "gc", Suite: "GraphBIG", Description: "Graph coloring", PaperDataset: "8 GB", New: NewGC},
	"pr":   {Name: "pr", Suite: "GraphBIG", Description: "PageRank", PaperDataset: "8 GB", New: NewPR},
	"tc":   {Name: "tc", Suite: "GraphBIG", Description: "Triangle counting", PaperDataset: "8 GB", New: NewTC},
	"sp":   {Name: "sp", Suite: "GraphBIG", Description: "Shortest path", PaperDataset: "8 GB", New: NewSP},
	"xs":   {Name: "xs", Suite: "XSBench", Description: "Particle simulation", PaperDataset: "9 GB", New: NewXS},
	"rnd":  {Name: "rnd", Suite: "GUPS", Description: "Random access", PaperDataset: "10 GB", New: NewRND},
	"dlrm": {Name: "dlrm", Suite: "DLRM", Description: "Sparse-length sum", PaperDataset: "10 GB", New: NewDLRM},
	"gen":  {Name: "gen", Suite: "GenomicsBench", Description: "k-mer counting", PaperDataset: "33 GB", New: NewGEN},
}

// paperOrder is the presentation order of the paper's figures.
var paperOrder = []string{"bc", "bfs", "cc", "gc", "pr", "tc", "sp", "xs", "rnd", "dlrm", "gen"}

// registered holds user-registered workloads (Register), guarded by
// regMu. Built-ins stay in specs so the paper's evaluation set is
// immutable.
var (
	regMu      sync.RWMutex
	registered = map[string]Spec{}
)

// Names returns the Table II workload names in the paper's figure
// order. It deliberately excludes registered and trace workloads: the
// paper's evaluation sweeps (internal/exp) iterate this set.
func Names() []string {
	out := make([]string, len(paperOrder))
	copy(out, paperOrder)
	return out
}

// Registered returns the names of user-registered workloads, sorted.
func Registered() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registered))
	for n := range registered {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// validName reports whether a registration name is acceptable:
// lowercase alphanumerics plus ._- (no ":" — reserved for scheme
// prefixes like "trace:").
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case i > 0 && (c == '.' || c == '_' || c == '-'):
		default:
			return false
		}
	}
	return true
}

// Register adds a user-defined workload to the registry, making its
// name valid everywhere a built-in name is: sim.Config.Workload,
// sweep plans, and the CLIs. The name must be lowercase
// ([a-z0-9][a-z0-9._-]*), must not collide with a Table II benchmark
// or a previous registration, and spec.New must be non-nil. Safe for
// concurrent use.
func Register(s Spec) error {
	if !validName(s.Name) {
		return fmt.Errorf("workload: invalid registration name %q (want [a-z0-9][a-z0-9._-]*)", s.Name)
	}
	if s.New == nil {
		return fmt.Errorf("workload: register %q: nil constructor", s.Name)
	}
	if _, ok := specs[s.Name]; ok {
		return fmt.Errorf("workload: register %q: collides with a built-in Table II benchmark", s.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registered[s.Name]; ok {
		return fmt.Errorf("workload: register %q: already registered", s.Name)
	}
	registered[s.Name] = s
	return nil
}

// Lookup resolves a workload name: a Table II benchmark, a registered
// workload, or a "trace:<path>" replay (validated by reading the
// capture's header).
func Lookup(name string) (Spec, error) {
	if strings.HasPrefix(name, TracePrefix) {
		return traceSpec(name)
	}
	if s, ok := specs[name]; ok {
		return s, nil
	}
	regMu.RLock()
	s, ok := registered[name]
	regMu.RUnlock()
	if ok {
		return s, nil
	}
	all := make([]string, 0, len(specs))
	for n := range specs {
		all = append(all, n)
	}
	sort.Strings(all)
	all = append(all, Registered()...)
	return Spec{}, fmt.Errorf("unknown workload %q (have %v, or trace:<path> to replay a capture)", name, all)
}

// MustLookup is Lookup for static names.
func MustLookup(name string) Spec {
	s, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Identity returns the extra identity material a workload name
// contributes to sim.Config.Key(): empty for built-ins (whose behavior
// is fully determined by the name, keeping pre-existing keys stable),
// name+params for registered workloads, and a content digest for trace
// replays (so editing a capture invalidates its cached runs).
func Identity(name string) string {
	if strings.HasPrefix(name, TracePrefix) {
		return traceIdentity(name)
	}
	if _, ok := specs[name]; ok {
		return ""
	}
	regMu.RLock()
	s, ok := registered[name]
	regMu.RUnlock()
	if ok {
		return "reg\x00" + s.Name + "\x00" + s.Params
	}
	// Unknown names fail Validate before any key is ever stored.
	return ""
}
