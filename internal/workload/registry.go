package workload

import (
	"fmt"
	"sort"
)

// Spec describes one benchmark of Table II.
type Spec struct {
	Name        string
	Suite       string
	Description string
	// PaperDataset is the dataset size the paper used (Table II); this
	// reproduction scales footprints down (see DESIGN.md).
	PaperDataset string
	New          func() Workload
}

// specs is the Table II registry.
var specs = map[string]Spec{
	"bc":   {"bc", "GraphBIG", "Betweenness centrality", "8 GB", NewBC},
	"bfs":  {"bfs", "GraphBIG", "Breadth-first search", "8 GB", NewBFS},
	"cc":   {"cc", "GraphBIG", "Connected components", "8 GB", NewCC},
	"gc":   {"gc", "GraphBIG", "Graph coloring", "8 GB", NewGC},
	"pr":   {"pr", "GraphBIG", "PageRank", "8 GB", NewPR},
	"tc":   {"tc", "GraphBIG", "Triangle counting", "8 GB", NewTC},
	"sp":   {"sp", "GraphBIG", "Shortest path", "8 GB", NewSP},
	"xs":   {"xs", "XSBench", "Particle simulation", "9 GB", NewXS},
	"rnd":  {"rnd", "GUPS", "Random access", "10 GB", NewRND},
	"dlrm": {"dlrm", "DLRM", "Sparse-length sum", "10 GB", NewDLRM},
	"gen":  {"gen", "GenomicsBench", "k-mer counting", "33 GB", NewGEN},
}

// paperOrder is the presentation order of the paper's figures.
var paperOrder = []string{"bc", "bfs", "cc", "gc", "pr", "tc", "sp", "xs", "rnd", "dlrm", "gen"}

// Names returns all workload names in the paper's figure order.
func Names() []string {
	out := make([]string, len(paperOrder))
	copy(out, paperOrder)
	return out
}

// Lookup returns the spec for a workload name.
func Lookup(name string) (Spec, error) {
	if s, ok := specs[name]; ok {
		return s, nil
	}
	all := make([]string, 0, len(specs))
	for n := range specs {
		all = append(all, n)
	}
	sort.Strings(all)
	return Spec{}, fmt.Errorf("unknown workload %q (have %v)", name, all)
}

// MustLookup is Lookup for static names.
func MustLookup(name string) Spec {
	s, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return s
}
