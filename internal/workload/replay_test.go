package workload

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ndpage/internal/addr"
	"ndpage/internal/workload/trace"
	"ndpage/internal/xrand"
)

// bumpMem is a fixed-base bump allocator implementing Mem.
type bumpMem struct{ brk addr.V }

func (m *bumpMem) Alloc(size uint64, name string) addr.V {
	base := m.brk
	m.brk += addr.V(addr.AlignUp(size, addr.PageSize))
	return base
}
func (m *bumpMem) AllocLazy(size uint64, name string) addr.V { return m.Alloc(size, name) }

// writeCapture encodes streams into a temp .ndpt file.
func writeCapture(t *testing.T, streams [][]trace.Op) string {
	t.Helper()
	w := trace.NewWriter("test", 1, len(streams))
	for i, s := range streams {
		for _, op := range s {
			w.Append(i, op)
		}
	}
	var buf bytes.Buffer
	if err := w.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "capture.ndpt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func pull(g Generator, n int) []Op {
	out := make([]Op, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}

func TestReplayRebaseAndLoop(t *testing.T) {
	const base = 0x8000000000
	path := writeCapture(t, [][]trace.Op{{
		{Kind: trace.Load, Addr: base},
		{Kind: trace.Compute, Cycles: 5},
		{Kind: trace.Store, Addr: base + 0x1000},
	}})
	spec, err := Lookup(TracePrefix + path)
	if err != nil {
		t.Fatal(err)
	}
	w := spec.New()
	mem := &bumpMem{brk: 1 << 30}
	w.Init(mem, xrand.New(1), 0, 1)

	ops := pull(w.Thread(0, 99), 7)
	want := []Op{
		{Kind: Load, Addr: 1 << 30},
		{Kind: Compute, Cycles: 5},
		{Kind: Store, Addr: 1<<30 + 0x1000},
	}
	for i, wop := range append(append(append([]Op{}, want...), want...), want[0]) {
		if ops[i] != wop {
			t.Fatalf("op %d = %+v, want %+v (rebased, looping)", i, ops[i], wop)
		}
	}
}

func TestReplayDemuxMatchesThreadSemantics(t *testing.T) {
	s0 := []trace.Op{{Kind: trace.Load, Addr: 0x1000}}
	s1 := []trace.Op{{Kind: trace.Store, Addr: 0x2000}}
	path := writeCapture(t, [][]trace.Op{s0, s1})
	spec := MustLookup(TracePrefix + path)
	w := spec.New()
	w.Init(&bumpMem{brk: 0x1000}, xrand.New(1), 0, 4)

	// Cores beyond the capture's stream count wrap round-robin, and two
	// cores sharing a stream get independent generators (same sequence).
	for core, wantKind := range map[int]OpKind{0: Load, 1: Store, 2: Load, 3: Store} {
		var op Op
		w.Thread(core, uint64(core)).Next(&op)
		if op.Kind != wantKind {
			t.Errorf("core %d got kind %d, want %d", core, op.Kind, wantKind)
		}
	}
	a := pull(w.Thread(0, 1), 3)
	b := pull(w.Thread(2, 7), 3)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cores sharing stream 0 diverge at op %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestReplayEmptyStreamDegeneratesToCompute(t *testing.T) {
	path := writeCapture(t, [][]trace.Op{{}})
	w := MustLookup(TracePrefix + path).New()
	w.Init(&bumpMem{}, xrand.New(1), 0, 1)
	for _, op := range pull(w.Thread(0, 1), 3) {
		if op.Kind != Compute || op.Cycles != 1 {
			t.Fatalf("empty stream emitted %+v, want compute(1)", op)
		}
	}
}

func TestTraceLookupErrors(t *testing.T) {
	if _, err := Lookup("trace:"); err == nil {
		t.Error("empty trace path accepted")
	}
	if _, err := Lookup("trace:/nonexistent/file.ndpt"); err == nil {
		t.Error("missing capture accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.ndpt")
	if err := os.WriteFile(bad, []byte("not a capture"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup(TracePrefix + bad); err == nil {
		t.Error("garbage capture accepted")
	}
}

// TestTraceLookupRejectsCorruptPayload: a syntactically valid header
// that lies about its payload (huge op count, truncated streams) must
// fail cleanly at Lookup — not panic in Init, and not attempt a
// header-sized allocation.
func TestTraceLookupRejectsCorruptPayload(t *testing.T) {
	buf := []byte(trace.Magic)
	buf = binary.AppendUvarint(buf, trace.Version)
	buf = binary.AppendUvarint(buf, 0)     // name
	buf = binary.AppendUvarint(buf, 0)     // seed
	buf = binary.AppendUvarint(buf, 0)     // base
	buf = binary.AppendUvarint(buf, 0)     // footprint
	buf = binary.AppendUvarint(buf, 1)     // one stream...
	buf = binary.AppendUvarint(buf, 1<<62) // ...claiming 2^62 ops, no payload
	var gzbuf bytes.Buffer
	gz := gzip.NewWriter(&gzbuf)
	if _, err := gz.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lying.ndpt")
	if err := os.WriteFile(path, gzbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup(TracePrefix + path); err == nil {
		t.Fatal("Lookup accepted a capture whose payload contradicts its header")
	}
}

// TestCaptureDecodeShared: two instances replaying one aged capture
// share the decoded streams (one in-memory copy per content version).
func TestCaptureDecodeShared(t *testing.T) {
	path := writeCapture(t, [][]trace.Op{{{Kind: trace.Load, Addr: 0x1000}}})
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	mk := func() *replay {
		w := MustLookup(TracePrefix + path).New().(*replay)
		w.Init(&bumpMem{brk: 0x1000}, xrand.New(1), 0, 1)
		return w
	}
	a, b := mk(), mk()
	if &a.streams[0][0] != &b.streams[0][0] {
		t.Error("two replays of one aged capture hold separate decoded copies")
	}
}

func TestRegisterValidation(t *testing.T) {
	mk := func() Workload { return NewRND() }
	cases := []struct {
		name string
		spec Spec
	}{
		{"empty name", Spec{New: mk}},
		{"uppercase", Spec{Name: "Chase", New: mk}},
		{"colon", Spec{Name: "trace:x", New: mk}},
		{"leading dash", Spec{Name: "-x", New: mk}},
		{"builtin collision", Spec{Name: "bfs", New: mk}},
		{"nil constructor", Spec{Name: "nilctor"}},
	}
	for _, c := range cases {
		if err := Register(c.spec); err == nil {
			t.Errorf("%s: Register accepted %+v", c.name, c.spec)
		}
	}
}

func TestRegisterLookupAndIdentity(t *testing.T) {
	spec := Spec{
		Name:        "reg-test.kernel",
		Suite:       "custom",
		Description: "registry test kernel",
		Params:      "n=64",
		New:         func() Workload { return NewRND() },
	}
	if err := Register(spec); err != nil {
		t.Fatal(err)
	}
	if err := Register(spec); err == nil {
		t.Error("duplicate registration accepted")
	}
	got, err := Lookup("reg-test.kernel")
	if err != nil {
		t.Fatal(err)
	}
	if got.Suite != "custom" || got.Params != "n=64" {
		t.Errorf("Lookup returned %+v", got)
	}
	found := false
	for _, n := range Registered() {
		if n == "reg-test.kernel" {
			found = true
		}
	}
	if !found {
		t.Error("Registered() misses the new workload")
	}
	// Registered names stay out of the paper's evaluation set.
	for _, n := range Names() {
		if n == "reg-test.kernel" {
			t.Error("Names() leaked a registered workload into the Table II set")
		}
	}

	if id := Identity("bfs"); id != "" {
		t.Errorf("builtin identity = %q, want empty (key stability)", id)
	}
	id := Identity("reg-test.kernel")
	if !strings.Contains(id, "reg-test.kernel") || !strings.Contains(id, "n=64") {
		t.Errorf("registered identity %q misses name or params", id)
	}
}

func TestTraceIdentityTracksContent(t *testing.T) {
	path := writeCapture(t, [][]trace.Op{{{Kind: trace.Load, Addr: 0x1000}}})
	id1 := Identity(TracePrefix + path)
	if id1 == "" || strings.Contains(id1, "unreadable") {
		t.Fatalf("identity of a readable capture = %q", id1)
	}
	if id2 := Identity(TracePrefix + path); id2 != id1 {
		t.Errorf("identity not stable: %q vs %q", id1, id2)
	}
	// Rewriting the capture must change the identity (cache soundness).
	w := trace.NewWriter("test", 2, 1)
	w.Append(0, trace.Op{Kind: trace.Store, Addr: 0x2000})
	var buf bytes.Buffer
	if err := w.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if id3 := Identity(TracePrefix + path); id3 == id1 {
		t.Error("identity unchanged after the capture's content changed")
	}
	if id := Identity("trace:/nonexistent/file.ndpt"); !strings.Contains(id, "unreadable") {
		t.Errorf("identity of a missing capture = %q, want unreadable placeholder", id)
	}
}
