package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"ndpage/internal/addr"
	"ndpage/internal/workload/trace"
	"ndpage/internal/xrand"
)

// TracePrefix is the scheme prefix that makes a workload name a trace
// replay: Config.Workload = "trace:<path>" replays the capture at
// <path> (binary .ndpt or ndptrace CSV; see internal/workload/trace).
const TracePrefix = "trace:"

// traceSpec resolves a "trace:<path>" name into a replay Spec,
// validating the capture by decoding it (memoized — the simulation's
// replay reuses the same decode, so a multi-GB capture is parsed once
// per content version, not once per validation plus once per run).
func traceSpec(name string) (Spec, error) {
	path := strings.TrimPrefix(name, TracePrefix)
	if path == "" {
		return Spec{}, fmt.Errorf("workload: %q names no capture file (want trace:<path>)", name)
	}
	hdr, _, err := loadCapture(path)
	if err != nil {
		return Spec{}, fmt.Errorf("workload %q: %w", name, err)
	}
	return Spec{
		Name:  name,
		Suite: "trace",
		Description: fmt.Sprintf("replay of %s (%d streams, %d ops)",
			filepath.Base(path), hdr.Streams(), hdr.TotalOps()),
		PaperDataset: fmt.Sprintf("%.1f MB span", float64(hdr.Footprint)/1e6),
		New:          func() Workload { return &replay{name: name, path: path} },
	}, nil
}

// replay is the trace-replay workload: it re-issues a captured op
// stream per core. The capture's address span is rebased onto one
// region allocated from the simulated address space, core c reads
// stream c modulo the capture's stream count, and a stream that runs
// out loops deterministically back to its first op — so the replay is
// an infinite Generator like every other workload.
type replay struct {
	name, path string
	hdr        trace.Header
	streams    [][]trace.Op
	// delta rebases captured addresses into the allocated region:
	// replayed = captured + delta (two's-complement wrapping).
	delta uint64
}

// Name returns the full registry name ("trace:<path>").
func (r *replay) Name() string { return r.name }

// Init loads the capture (usually a cache hit — Lookup fully decoded
// it at validation) and reserves its address span. A capture that
// disappears or corrupts between validation and machine construction
// panics rather than limping on.
func (r *replay) Init(mem Mem, rng *xrand.RNG, footprint uint64, threads int) {
	hdr, streams, err := loadCapture(r.path)
	if err != nil {
		panic(fmt.Sprintf("workload: trace replay %s: %v", r.path, err))
	}
	r.hdr, r.streams = hdr, streams
	// The capture's own span wins over the configured footprint: the
	// trace is the dataset. Eagerly populated, like a dataset that
	// exists before the measurement window.
	if hdr.Footprint > 0 {
		base := mem.Alloc(hdr.Footprint, "trace-replay")
		r.delta = uint64(base) - hdr.Base
	}
}

// Thread returns core's replay stream: stream core mod the capture's
// stream count (a capture with fewer streams than cores is demuxed
// round-robin; cores sharing a stream replay identical sequences).
// The seed is ignored — determinism comes from the file.
func (r *replay) Thread(core int, seed uint64) Generator {
	return &replayGen{ops: r.streams[core%len(r.streams)], delta: r.delta}
}

// replayGen walks one captured stream, looping at the end.
type replayGen struct {
	ops   []trace.Op
	i     int
	delta uint64
}

// Next implements Generator. An empty stream degenerates to an
// infinite compute loop (a capture with zero ops has nothing to
// replay but generators must never block).
func (g *replayGen) Next(op *Op) {
	if len(g.ops) == 0 {
		*op = Op{Kind: Compute, Cycles: 1}
		return
	}
	t := g.ops[g.i]
	g.i++
	if g.i == len(g.ops) {
		g.i = 0
	}
	switch t.Kind {
	case trace.Load:
		// PCs are code addresses, not dataset addresses: they pass
		// through unrebased (zero for v1 captures).
		*op = Op{Kind: Load, Addr: addr.V(t.Addr + g.delta), PC: t.PC}
	case trace.Store:
		*op = Op{Kind: Store, Addr: addr.V(t.Addr + g.delta), PC: t.PC}
	default:
		*op = Op{Kind: Compute, Cycles: t.Cycles}
	}
}

// mtimeGuard is the staleness window for the file caches below: a
// cache entry is trusted only when the file's mtime is at least this
// old, because a same-size rewrite within the filesystem's timestamp
// granularity would otherwise revalidate against stale content (the
// classic racy-stat problem). Recently-modified captures are simply
// re-read/re-hashed until they age past the guard.
const mtimeGuard = 2 * time.Second

// captureCache memoizes decoded captures by path, revalidated by
// size+mtime. Decoded streams are immutable (replay only reads them),
// so every machine of a parallel sweep over one capture shares a
// single in-memory copy, and validation's decode is the run's decode.
// Bounded to a few entries since streams can be large.
var (
	captureMu    sync.Mutex
	captureCache = map[string]*captureEntry{}
)

const captureCacheMax = 4

type captureEntry struct {
	size    int64
	mtime   time.Time
	hdr     trace.Header
	streams [][]trace.Op
}

// loadCapture reads and decodes a capture, memoized.
func loadCapture(path string) (trace.Header, [][]trace.Op, error) {
	st, err := os.Stat(path)
	if err != nil {
		return trace.Header{}, nil, fmt.Errorf("trace: %w", err)
	}
	cacheable := time.Since(st.ModTime()) >= mtimeGuard
	if cacheable {
		captureMu.Lock()
		e, ok := captureCache[path]
		captureMu.Unlock()
		if ok && e.size == st.Size() && e.mtime.Equal(st.ModTime()) {
			return e.hdr, e.streams, nil
		}
	}
	hdr, streams, err := trace.ReadFile(path)
	if err != nil {
		return trace.Header{}, nil, err
	}
	if cacheable {
		captureMu.Lock()
		if len(captureCache) >= captureCacheMax {
			for k := range captureCache { // drop an arbitrary entry
				delete(captureCache, k)
				break
			}
		}
		captureCache[path] = &captureEntry{size: st.Size(), mtime: st.ModTime(), hdr: hdr, streams: streams}
		captureMu.Unlock()
	}
	return hdr, streams, nil
}

// digestCache memoizes trace-file digests by path, revalidated against
// size+mtime (with the same recent-mtime guard) so an edited capture
// re-hashes.
var digestCache sync.Map // path -> digestEntry

type digestEntry struct {
	size  int64
	mtime time.Time
	sum   string
}

// traceIdentity returns the key material of a trace workload: a
// content digest of the capture file, so two different captures at the
// same path — or one capture that was edited — content-address their
// runs apart.
func traceIdentity(name string) string {
	path := strings.TrimPrefix(name, TracePrefix)
	sum, err := fileDigest(path)
	if err != nil {
		// An unreadable capture fails Validate before any result is
		// stored; the error placeholder only keeps Key() total.
		return "trace\x00unreadable\x00" + path
	}
	return "trace\x00" + sum
}

// fileDigest returns the hex SHA-256 of the file's content, memoized
// for files whose mtime has aged past the staleness guard.
func fileDigest(path string) (string, error) {
	st, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	cacheable := time.Since(st.ModTime()) >= mtimeGuard
	if cacheable {
		if e, ok := digestCache.Load(path); ok {
			ent := e.(digestEntry)
			if ent.size == st.Size() && ent.mtime.Equal(st.ModTime()) {
				return ent.sum, nil
			}
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	sum := hex.EncodeToString(h.Sum(nil))
	if cacheable {
		digestCache.Store(path, digestEntry{size: st.Size(), mtime: st.ModTime(), sum: sum})
	}
	return sum, nil
}
