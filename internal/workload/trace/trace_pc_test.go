package trace

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// fixtureStreamsPC is the v2 capture pinned by testdata/golden_pc.ndpt:
// the v1 fixture's op shapes plus a PC stream exercising repeats (a hot
// loop), backward PC deltas, and a zero PC ("no PC recorded").
func fixtureStreamsPC() [][]Op {
	return [][]Op{
		{
			{Kind: Load, Addr: 0x8000000000, PC: 0x400010},
			{Kind: Compute, Cycles: 3},
			{Kind: Store, Addr: 0x8000000040, PC: 0x400010}, // same PC: zero delta
			{Kind: Load, Addr: 0x8000000000, PC: 0x400004},  // backward PC delta
			{Kind: Store, Addr: 0x80000fffc0, PC: 0x7fff00000000},
		},
		{
			{Kind: Compute, Cycles: 1},
			{Kind: Load, Addr: 0x8000001000, PC: 0x401000},
			{Kind: Load, Addr: 0x8000001040}, // PC 0: no PC recorded
		},
	}
}

// encodePC builds a version-2 binary capture from streams.
func encodePC(t *testing.T, name string, seed uint64, streams [][]Op) []byte {
	t.Helper()
	w := NewWriterPC(name, seed, len(streams))
	for i, s := range streams {
		for _, op := range s {
			w.Append(i, op)
		}
	}
	var buf bytes.Buffer
	if err := w.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPCBinaryRoundTrip(t *testing.T) {
	in := fixtureStreamsPC()
	b := encodePC(t, "pcfix", 9, in)
	h, out, err := Decode(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != VersionPC {
		t.Errorf("version = %d, want %d", h.Version, VersionPC)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("decoded streams differ:\n got %v\nwant %v", out, in)
	}
	if err := h.Check(out); err != nil {
		t.Errorf("Check rejected a faithful decode: %v", err)
	}
}

// TestV1WriterDiscardsPCs pins the compatibility contract on the write
// side: a version-1 Writer fed PC-carrying ops produces output
// byte-identical to the same ops with their PCs stripped — old captures
// stay reproducible whatever the capture pipeline now threads through.
func TestV1WriterDiscardsPCs(t *testing.T) {
	withPCs := fixtureStreamsPC()
	stripped := make([][]Op, len(withPCs))
	for i, s := range withPCs {
		stripped[i] = make([]Op, len(s))
		for j, op := range s {
			op.PC = 0
			stripped[i][j] = op
		}
	}
	a := encode(t, "v1", 3, withPCs)
	b := encode(t, "v1", 3, stripped)
	if !bytes.Equal(a, b) {
		t.Error("v1 writer output depends on op PCs")
	}
	h, out, err := Decode(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != Version {
		t.Errorf("version = %d, want %d", h.Version, Version)
	}
	if !reflect.DeepEqual(out, stripped) {
		t.Error("v1 round trip did not zero the PCs")
	}
}

// TestV1GoldenStillReads pins the read side: the committed version-1
// fixture decodes under the v2-aware reader with Version 1 and no PCs.
func TestV1GoldenStillReads(t *testing.T) {
	h, streams, err := ReadFile(filepath.Join("testdata", "golden.ndpt"))
	if err != nil {
		t.Fatalf("v1 golden unreadable by the v2-aware decoder: %v", err)
	}
	if h.Version != Version {
		t.Errorf("v1 golden reports version %d, want %d", h.Version, Version)
	}
	for i, s := range streams {
		for j, op := range s {
			if op.PC != 0 {
				t.Fatalf("stream %d op %d: v1 decode produced PC %#x, want 0", i, j, op.PC)
			}
		}
	}
}

// TestGoldenPCFixture pins v2 reader compatibility the same way
// TestGoldenFixture pins v1: the committed capture must keep decoding
// to the same streams. Regenerate (after a deliberate format change,
// with a version bump) via:
//
//	go test ./internal/workload/trace -run Golden -update
func TestGoldenPCFixture(t *testing.T) {
	path := filepath.Join("testdata", "golden_pc.ndpt")
	if *update {
		if err := os.WriteFile(path, encodePC(t, "golden-pc", 42, fixtureStreamsPC()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	h, streams, err := ReadFile(path)
	if err != nil {
		t.Fatalf("v2 golden fixture unreadable: %v (regenerate with -update after a deliberate format change)", err)
	}
	if h.Version != VersionPC || h.Name != "golden-pc" || h.Seed != 42 {
		t.Errorf("golden header = v%d %q/%d, want v%d golden-pc/42", h.Version, h.Name, h.Seed, VersionPC)
	}
	if !reflect.DeepEqual(streams, fixtureStreamsPC()) {
		t.Errorf("v2 golden decode drifted:\n got %v\nwant %v", streams, fixtureStreamsPC())
	}
}

// TestCorruptPCStream hits the v2-specific error path: a capture whose
// payload ends mid-op, after the address delta but before the PC delta
// the version-2 header promises.
func TestCorruptPCStream(t *testing.T) {
	good := encodePC(t, "corrupt", 1, [][]Op{{
		{Kind: Load, Addr: 0x8000000000, PC: 0x400000},
		{Kind: Load, Addr: 0x8000000040, PC: 0x400004}, // 1-byte PC delta, last on the wire
	}})
	gz, err := gzip.NewReader(bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the final byte — the second op's PC delta — and reframe with
	// a valid checksum so only the trace layer can object.
	truncated := regzip(t, payload[:len(payload)-1])
	_, _, err = Decode(bytes.NewReader(truncated))
	if err == nil {
		t.Fatal("Decode accepted a capture with a truncated PC stream")
	}
	if !strings.Contains(err.Error(), "pc delta") {
		t.Errorf("error %q does not mention the pc delta", err)
	}
}

// TestCSVPCRoundTrip covers the three-column CSV form: EncodeCSV
// switches to the pc column when any op carries one, and DecodeCSV
// brings the PCs back.
func TestCSVPCRoundTrip(t *testing.T) {
	ops := fixtureStreamsPC()[0]
	var buf bytes.Buffer
	if err := EncodeCSV(&buf, ops); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), CSVHeaderPC) {
		t.Fatalf("PC-carrying ops did not select the pc header:\n%s", buf.String())
	}
	h, streams, err := DecodeCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != VersionPC {
		t.Errorf("derived version = %d, want %d", h.Version, VersionPC)
	}
	if len(streams) != 1 || !reflect.DeepEqual(streams[0], ops) {
		t.Errorf("CSV PC round trip: got %v, want %v", streams, [][]Op{ops})
	}
}

func TestCSVPCErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"bad pc", CSVHeaderPC + "\nL,0x10,zzz\n"},
		{"missing pc column", CSVHeaderPC + "\nL,0x10\n"},
		{"pc on compute", CSVHeaderPC + "\nC,4,0x10\n"},
	}
	for _, c := range cases {
		if _, _, err := DecodeCSV(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: DecodeCSV accepted corrupt input", c.name)
		}
	}
}
