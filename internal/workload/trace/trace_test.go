package trace

import (
	"bytes"
	"compress/gzip"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden capture fixture")

// fixtureStreams is the capture pinned by testdata/golden.ndpt: two
// streams exercising every op kind, backward address deltas, and a
// compute-only tail.
func fixtureStreams() [][]Op {
	return [][]Op{
		{
			{Kind: Load, Addr: 0x8000000000},
			{Kind: Compute, Cycles: 3},
			{Kind: Store, Addr: 0x8000000040},
			{Kind: Load, Addr: 0x8000000000}, // negative delta
			{Kind: Store, Addr: 0x80000fffc0},
		},
		{
			{Kind: Compute, Cycles: 1},
			{Kind: Load, Addr: 0x8000001000},
			{Kind: Compute, Cycles: 250},
		},
	}
}

// encode builds a binary capture from streams.
func encode(t *testing.T, name string, seed uint64, streams [][]Op) []byte {
	t.Helper()
	w := NewWriter(name, seed, len(streams))
	for i, s := range streams {
		for _, op := range s {
			w.Append(i, op)
		}
	}
	var buf bytes.Buffer
	if err := w.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBinaryRoundTrip(t *testing.T) {
	in := fixtureStreams()
	b := encode(t, "fixture", 7, in)
	h, out, err := Decode(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "fixture" || h.Seed != 7 {
		t.Errorf("header identity = %q/%d, want fixture/7", h.Name, h.Seed)
	}
	if h.Base != 0x8000000000 {
		t.Errorf("base = %#x, want 0x8000000000", h.Base)
	}
	if want := uint64(0x80000fffc0-0x8000000000) + lineBytes; h.Footprint != want {
		t.Errorf("footprint = %d, want %d", h.Footprint, want)
	}
	if !reflect.DeepEqual(h.Ops, []uint64{5, 3}) {
		t.Errorf("per-stream ops = %v, want [5 3]", h.Ops)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("decoded streams differ:\n got %v\nwant %v", out, in)
	}
	if err := h.Check(out); err != nil {
		t.Errorf("Check rejected a faithful decode: %v", err)
	}
}

func TestHeaderOnlyDecode(t *testing.T) {
	b := encode(t, "hdr", 1, fixtureStreams())
	h, err := DecodeHeader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if h.Streams() != 2 || h.TotalOps() != 8 {
		t.Errorf("header = %d streams / %d ops, want 2 / 8", h.Streams(), h.TotalOps())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ops := fixtureStreams()[0]
	var buf bytes.Buffer
	if err := EncodeCSV(&buf, ops); err != nil {
		t.Fatal(err)
	}
	h, streams, err := DecodeCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 1 || !reflect.DeepEqual(streams[0], ops) {
		t.Errorf("CSV round trip: got %v, want %v", streams, [][]Op{ops})
	}
	if h.Base != 0x8000000000 || h.Ops[0] != 5 {
		t.Errorf("derived header = %+v", h)
	}
}

func TestDecodeErrors(t *testing.T) {
	good := encode(t, "err", 1, fixtureStreams())
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"not gzip", []byte("op,addr-ish garbage"), "not a gzip-framed"},
		{"truncated frame", good[:len(good)/2], ""},
		{"empty", nil, "not a gzip-framed"},
	}
	for _, c := range cases {
		if _, _, err := Decode(bytes.NewReader(c.data)); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", c.name)
		} else if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// regzip frames a hand-built payload so header-level corruption gets
// past the gzip layer with a valid checksum.
func regzip(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCorruptHeaderErrors(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		want    string
	}{
		{"bad magic", []byte("XXXX\x01"), "bad magic"},
		{"future version", []byte(Magic + "\x63"), "unsupported format version"},
		{"truncated header", []byte(Magic), "truncated"},
		{"absurd stream count", append([]byte(Magic+"\x01\x00\x00\x00\x00"), 0xff, 0xff, 0xff, 0xff, 0x7f), "corrupt header"},
	}
	for _, c := range cases {
		_, err := DecodeHeader(bytes.NewReader(regzip(t, c.payload)))
		if err == nil {
			t.Errorf("%s: DecodeHeader accepted corrupt input", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"wrong header", "kind,address\n"},
		{"malformed row", CSVHeader + "\nL\n"},
		{"bad address", CSVHeader + "\nL,zzz\n"},
		{"bad cycles", CSVHeader + "\nC,-4\n"},
		{"unknown op", CSVHeader + "\nX,0x10\n"},
	}
	for _, c := range cases {
		if _, _, err := DecodeCSV(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: DecodeCSV accepted corrupt input", c.name)
		}
	}
}

func TestCheckCatchesTamperedHeader(t *testing.T) {
	h := Header{Base: 0x1000, Footprint: lineBytes, Ops: []uint64{1}}
	streams := [][]Op{{{Kind: Load, Addr: 0x1000}}}
	if err := h.Check(streams); err != nil {
		t.Fatalf("consistent header rejected: %v", err)
	}
	bad := h
	bad.Footprint = 4096
	if err := bad.Check(streams); err == nil {
		t.Error("Check accepted a tampered footprint")
	}
	bad = h
	bad.Ops = []uint64{2}
	if err := bad.Check(streams); err == nil {
		t.Error("Check accepted a tampered op count")
	}
}

// TestGoldenFixture pins reader compatibility: the committed .ndpt file
// must keep decoding to the same streams, whatever the writer evolves
// into. Regenerate (after a deliberate format change, with a version
// bump) via: go test ./internal/workload/trace -run Golden -update
func TestGoldenFixture(t *testing.T) {
	path := filepath.Join("testdata", "golden.ndpt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, encode(t, "golden", 42, fixtureStreams()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	h, streams, err := ReadFile(path)
	if err != nil {
		t.Fatalf("golden fixture unreadable: %v (regenerate with -update after a deliberate format change)", err)
	}
	if h.Name != "golden" || h.Seed != 42 {
		t.Errorf("golden header identity = %q/%d", h.Name, h.Seed)
	}
	if !reflect.DeepEqual(streams, fixtureStreams()) {
		t.Errorf("golden decode drifted:\n got %v\nwant %v", streams, fixtureStreams())
	}
}

func TestSniffAndReadFile(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "t.ndpt")
	if err := os.WriteFile(bin, encode(t, "s", 1, fixtureStreams()), 0o644); err != nil {
		t.Fatal(err)
	}
	csv := filepath.Join(dir, "t.csv")
	var buf bytes.Buffer
	if err := EncodeCSV(&buf, fixtureStreams()[0]); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(csv, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{bin, csv} {
		h, err := Sniff(path)
		if err != nil {
			t.Fatalf("Sniff(%s): %v", path, err)
		}
		if h.Base != 0x8000000000 {
			t.Errorf("Sniff(%s): base %#x", path, h.Base)
		}
		if _, streams, err := ReadFile(path); err != nil || len(streams) == 0 {
			t.Errorf("ReadFile(%s): %v", path, err)
		}
	}
	if _, err := Sniff(filepath.Join(dir, "missing.ndpt")); err == nil {
		t.Error("Sniff accepted a missing file")
	}
}
