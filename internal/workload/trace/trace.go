// Package trace defines the capture formats of the workload platform:
// the op streams ndptrace dumps and the "trace:<path>" replay workload
// consumes. Two formats share one in-memory model ([]Op per stream):
//
//   - CSV ("op,addr" header, or "op,addr,pc" with instruction PCs;
//     L/S/C rows) — single-stream, line-per-op, meant for eyeballing
//     and for feeding other tools.
//   - Binary .ndpt — gzip-framed, varint-delta encoded, multi-stream,
//     with a header carrying the stream count, address span, and
//     per-stream op totals. Meant for multi-GB captures.
//
// The binary layout (inside the gzip frame) is, all integers
// little-endian varints (encoding/binary Uvarint/Varint):
//
//	magic   4 bytes "NDPT"
//	version uvarint (1, or 2 when ops carry instruction PCs)
//	name    uvarint length + bytes (source workload, informational)
//	seed    uvarint (capture seed, informational)
//	base    uvarint (lowest address touched; replay rebases against it)
//	span    uvarint (footprint: bytes from base through the last
//	        touched cache line)
//	streams uvarint, then one uvarint op count per stream
//	payload streams in order; per op:
//	        uvarint kind (0 compute, 1 load, 2 store), then
//	        compute: uvarint cycles
//	        load/store: varint address delta from the stream's
//	        previous load/store address (first delta is from 0, i.e.
//	        the absolute address); version 2 appends a varint PC
//	        delta from the stream's previous load/store PC
//
// Version 2 differs from version 1 only in that extra PC delta: a
// version-1 file decodes exactly as before, and a writer without PCs
// emits bytes identical to a version-1 writer. Address and PC deltas
// are per-stream, so streams decode independently of one another and
// of the header's base. WORKLOADS.md is the normative specification of
// both formats.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Kind is the kind of one captured operation. Values are the wire
// encoding and deliberately mirror workload.OpKind.
type Kind uint8

// Operation kinds.
const (
	Compute Kind = iota
	Load
	Store
)

// Op is one captured operation: a load/store address or a compute
// burst. PC is the issuing instruction's address, carried by format
// version 2 (and the optional CSV pc column); zero in version-1
// captures.
type Op struct {
	Kind   Kind
	Addr   uint64 // Load/Store
	PC     uint64 // Load/Store, format v2 only
	Cycles uint32 // Compute
}

// lineBytes is the cache-line width assumed when closing the footprint
// span over the last touched address (matches addr.LineSize; kept local
// so the format package stays dependency-free).
const lineBytes = 64

// Magic identifies a binary .ndpt capture (after gzip deframing).
const Magic = "NDPT"

// Version is the binary format version this package writes by default.
const Version = 1

// VersionPC is the binary format version carrying per-op instruction
// PCs (NewWriterPC). Decoding accepts both versions.
const VersionPC = 2

// Header describes a capture: identity of the source, the address span
// the streams touch, and the per-stream op totals.
type Header struct {
	// Version is the binary format version the capture was encoded
	// with (Version or VersionPC); CSV-derived headers report Version,
	// or VersionPC when the pc column is present.
	Version uint64
	// Name is the source workload's registry name (informational).
	Name string
	// Seed is the capture seed (informational).
	Seed uint64
	// Base is the lowest load/store address in the capture; replay
	// rebases every address by (allocated base - Base).
	Base uint64
	// Footprint is the captured address span in bytes: from Base
	// through the end of the last touched cache line. Zero when the
	// capture holds no loads or stores.
	Footprint uint64
	// Ops holds one op count per stream; len(Ops) is the stream count.
	Ops []uint64
}

// Streams returns the number of captured streams.
func (h Header) Streams() int { return len(h.Ops) }

// TotalOps returns the op count summed over all streams.
func (h Header) TotalOps() uint64 {
	var n uint64
	for _, c := range h.Ops {
		n += c
	}
	return n
}

// Check verifies that the header's totals describe streams: per-stream
// op counts, and the base/footprint of the addresses actually present.
// It is the consistency predicate behind ndptrace -verify.
func (h Header) Check(streams [][]Op) error {
	if len(streams) != len(h.Ops) {
		return fmt.Errorf("trace: header declares %d streams, payload has %d", len(h.Ops), len(streams))
	}
	var span spanTracker
	for i, s := range streams {
		if uint64(len(s)) != h.Ops[i] {
			return fmt.Errorf("trace: stream %d: header declares %d ops, payload has %d", i, h.Ops[i], len(s))
		}
		for _, op := range s {
			if op.Kind == Load || op.Kind == Store {
				span.touch(op.Addr)
			}
		}
	}
	base, footprint := span.bounds()
	if base != h.Base || footprint != h.Footprint {
		return fmt.Errorf("trace: header declares base %#x footprint %d, payload spans base %#x footprint %d",
			h.Base, h.Footprint, base, footprint)
	}
	return nil
}

// spanTracker accumulates the address span of a capture.
type spanTracker struct {
	min, max uint64
	touched  bool
}

func (s *spanTracker) touch(a uint64) {
	if !s.touched || a < s.min {
		s.min = a
	}
	if !s.touched || a > s.max {
		s.max = a
	}
	s.touched = true
}

// bounds returns (base, footprint); (0, 0) when nothing was touched.
func (s *spanTracker) bounds() (uint64, uint64) {
	if !s.touched {
		return 0, 0
	}
	return s.min, s.max - s.min + lineBytes
}

// Writer builds a binary capture incrementally: Append ops to streams,
// then Encode the gzip-framed file. Streams are delta-encoded as they
// arrive, so the builder holds the compact wire form (a few bytes per
// op), not the ops themselves.
type Writer struct {
	name    string
	seed    uint64
	pcs     bool
	streams []streamBuf
	span    spanTracker
}

type streamBuf struct {
	enc    []byte
	prev   uint64
	prevPC uint64
	ops    uint64
}

// NewWriter returns a builder for a version-1 capture of the given
// stream count. Op PCs are discarded; the output is byte-identical to
// captures from before the PC stream existed.
func NewWriter(name string, seed uint64, streams int) *Writer {
	if streams < 1 {
		panic("trace: NewWriter needs at least one stream")
	}
	return &Writer{name: name, seed: seed, streams: make([]streamBuf, streams)}
}

// NewWriterPC returns a builder for a version-2 capture that records
// each load/store's instruction PC alongside its address.
func NewWriterPC(name string, seed uint64, streams int) *Writer {
	w := NewWriter(name, seed, streams)
	w.pcs = true
	return w
}

// Append records one op on the given stream.
func (w *Writer) Append(stream int, op Op) {
	s := &w.streams[stream]
	s.ops++
	s.enc = binary.AppendUvarint(s.enc, uint64(op.Kind))
	switch op.Kind {
	case Compute:
		s.enc = binary.AppendUvarint(s.enc, uint64(op.Cycles))
	case Load, Store:
		s.enc = binary.AppendVarint(s.enc, int64(op.Addr-s.prev))
		s.prev = op.Addr
		if w.pcs {
			s.enc = binary.AppendVarint(s.enc, int64(op.PC-s.prevPC))
			s.prevPC = op.PC
		}
		w.span.touch(op.Addr)
	default:
		panic(fmt.Sprintf("trace: unknown op kind %d", op.Kind))
	}
}

// Header returns the header the capture built so far would carry.
func (w *Writer) Header() Header {
	h := Header{Version: Version, Name: w.name, Seed: w.seed, Ops: make([]uint64, len(w.streams))}
	if w.pcs {
		h.Version = VersionPC
	}
	h.Base, h.Footprint = w.span.bounds()
	for i := range w.streams {
		h.Ops[i] = w.streams[i].ops
	}
	return h
}

// Encode writes the capture as a gzip-framed .ndpt file.
func (w *Writer) Encode(out io.Writer) error {
	gz := gzip.NewWriter(out)
	h := w.Header()
	buf := []byte(Magic)
	buf = binary.AppendUvarint(buf, h.Version)
	buf = binary.AppendUvarint(buf, uint64(len(h.Name)))
	buf = append(buf, h.Name...)
	buf = binary.AppendUvarint(buf, h.Seed)
	buf = binary.AppendUvarint(buf, h.Base)
	buf = binary.AppendUvarint(buf, h.Footprint)
	buf = binary.AppendUvarint(buf, uint64(len(h.Ops)))
	for _, c := range h.Ops {
		buf = binary.AppendUvarint(buf, c)
	}
	if _, err := gz.Write(buf); err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	for i := range w.streams {
		if _, err := gz.Write(w.streams[i].enc); err != nil {
			return fmt.Errorf("trace: encode stream %d: %w", i, err)
		}
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// decoder reads the binary format. Every varint is expected (counts
// are declared up front), so EOF inside or between values is always a
// truncation.
type decoder struct {
	br *bufio.Reader
}

func (d *decoder) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, fmt.Errorf("trace: truncated %s: %w", what, err)
	}
	return v, nil
}

func (d *decoder) varint(what string) (int64, error) {
	v, err := binary.ReadVarint(d.br)
	if err != nil {
		return 0, fmt.Errorf("trace: truncated %s: %w", what, err)
	}
	return v, nil
}

// header parses the magic and header fields.
func (d *decoder) header() (Header, error) {
	var h Header
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(d.br, magic); err != nil {
		return h, fmt.Errorf("trace: truncated header: %w", err)
	}
	if string(magic) != Magic {
		return h, fmt.Errorf("trace: bad magic %q (not an .ndpt capture)", magic)
	}
	v, err := d.uvarint("version")
	if err != nil {
		return h, err
	}
	if v != Version && v != VersionPC {
		return h, fmt.Errorf("trace: unsupported format version %d (have %d and %d)", v, Version, VersionPC)
	}
	h.Version = v
	nameLen, err := d.uvarint("name length")
	if err != nil {
		return h, err
	}
	if nameLen > 1<<16 {
		return h, fmt.Errorf("trace: corrupt header: name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(d.br, name); err != nil {
		return h, fmt.Errorf("trace: truncated name: %w", err)
	}
	h.Name = string(name)
	if h.Seed, err = d.uvarint("seed"); err != nil {
		return h, err
	}
	if h.Base, err = d.uvarint("base"); err != nil {
		return h, err
	}
	if h.Footprint, err = d.uvarint("footprint"); err != nil {
		return h, err
	}
	streams, err := d.uvarint("stream count")
	if err != nil {
		return h, err
	}
	if streams < 1 || streams > 1<<20 {
		return h, fmt.Errorf("trace: corrupt header: %d streams", streams)
	}
	h.Ops = make([]uint64, streams)
	for i := range h.Ops {
		if h.Ops[i], err = d.uvarint("stream op count"); err != nil {
			return h, err
		}
	}
	return h, nil
}

// streams decodes the payload declared by h.
func (d *decoder) streamsOf(h Header) ([][]Op, error) {
	out := make([][]Op, len(h.Ops))
	for i, count := range h.Ops {
		// The count is file-supplied: cap the preallocation so a corrupt
		// header cannot panic makeslice or balloon memory before the
		// payload read fails; honest streams just grow past the hint.
		hint := count
		if hint > 1<<20 {
			hint = 1 << 20
		}
		ops := make([]Op, 0, hint)
		var prev, prevPC uint64
		for n := uint64(0); n < count; n++ {
			k, err := d.uvarint("op kind")
			if err != nil {
				return nil, fmt.Errorf("stream %d op %d: %w", i, n, err)
			}
			switch Kind(k) {
			case Compute:
				c, err := d.uvarint("compute cycles")
				if err != nil {
					return nil, fmt.Errorf("stream %d op %d: %w", i, n, err)
				}
				if c > 1<<32-1 {
					return nil, fmt.Errorf("trace: stream %d op %d: corrupt compute burst %d", i, n, c)
				}
				ops = append(ops, Op{Kind: Compute, Cycles: uint32(c)})
			case Load, Store:
				delta, err := d.varint("address delta")
				if err != nil {
					return nil, fmt.Errorf("stream %d op %d: %w", i, n, err)
				}
				prev += uint64(delta)
				op := Op{Kind: Kind(k), Addr: prev}
				if h.Version >= VersionPC {
					pcDelta, err := d.varint("pc delta")
					if err != nil {
						return nil, fmt.Errorf("stream %d op %d: %w", i, n, err)
					}
					prevPC += uint64(pcDelta)
					op.PC = prevPC
				}
				ops = append(ops, op)
			default:
				return nil, fmt.Errorf("trace: stream %d op %d: unknown op kind %d", i, n, k)
			}
		}
		out[i] = ops
	}
	switch _, err := d.br.ReadByte(); err {
	case io.EOF:
	case nil:
		return nil, fmt.Errorf("trace: trailing data after declared streams")
	default:
		return nil, fmt.Errorf("trace: corrupt frame: %w", err)
	}
	return out, nil
}

// DecodeHeader reads only the header of a binary capture.
func DecodeHeader(r io.Reader) (Header, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return Header{}, fmt.Errorf("trace: not a gzip-framed capture: %w", err)
	}
	defer gz.Close()
	d := &decoder{br: bufio.NewReader(gz)}
	return d.header()
}

// Decode reads a full binary capture: header plus every stream.
func Decode(r io.Reader) (Header, [][]Op, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return Header{}, nil, fmt.Errorf("trace: not a gzip-framed capture: %w", err)
	}
	defer gz.Close()
	d := &decoder{br: bufio.NewReader(gz)}
	h, err := d.header()
	if err != nil {
		return Header{}, nil, err
	}
	streams, err := d.streamsOf(h)
	if err != nil {
		return Header{}, nil, err
	}
	return h, streams, nil
}

// CSVHeader is the first line of a CSV capture.
const CSVHeader = "op,addr"

// CSVHeaderPC is the first line of a CSV capture whose load/store rows
// carry a third column: the issuing instruction's PC in hex.
const CSVHeaderPC = "op,addr,pc"

// EncodeCSV writes a single-stream capture in the CSV format. The pc
// column is emitted only when some op carries a nonzero PC, so captures
// without PCs stay byte-identical to the two-column format.
func EncodeCSV(w io.Writer, ops []Op) error {
	pcs := false
	for _, op := range ops {
		if (op.Kind == Load || op.Kind == Store) && op.PC != 0 {
			pcs = true
			break
		}
	}
	bw := bufio.NewWriter(w)
	if pcs {
		fmt.Fprintln(bw, CSVHeaderPC)
	} else {
		fmt.Fprintln(bw, CSVHeader)
	}
	for _, op := range ops {
		switch op.Kind {
		case Load, Store:
			k := "L"
			if op.Kind == Store {
				k = "S"
			}
			if pcs {
				fmt.Fprintf(bw, "%s,%#x,%#x\n", k, op.Addr, op.PC)
			} else {
				fmt.Fprintf(bw, "%s,%#x\n", k, op.Addr)
			}
		case Compute:
			fmt.Fprintf(bw, "C,%d\n", op.Cycles)
		default:
			return fmt.Errorf("trace: unknown op kind %d", op.Kind)
		}
	}
	return bw.Flush()
}

// DecodeCSV reads a CSV capture: one stream, a derived header (base,
// footprint, and op count computed from the rows; name and seed empty).
// Both headers are accepted; under the pc header, load/store rows carry
// a third hex column (the instruction PC) and the derived header
// reports VersionPC.
func DecodeCSV(r io.Reader) (Header, [][]Op, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	if !sc.Scan() {
		return Header{}, nil, fmt.Errorf("trace: empty CSV capture (want %q header)", CSVHeader)
	}
	pcs := false
	switch got := strings.TrimSpace(sc.Text()); got {
	case CSVHeader:
	case CSVHeaderPC:
		pcs = true
	default:
		return Header{}, nil, fmt.Errorf("trace: CSV header %q (want %q or %q)", got, CSVHeader, CSVHeaderPC)
	}
	var ops []Op
	var span spanTracker
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		kind, val, ok := strings.Cut(text, ",")
		if !ok {
			return Header{}, nil, fmt.Errorf("trace: CSV line %d: malformed row %q", line, text)
		}
		switch kind {
		case "L", "S":
			var pc uint64
			if pcs {
				addrField, pcField, ok := strings.Cut(val, ",")
				if !ok {
					return Header{}, nil, fmt.Errorf("trace: CSV line %d: missing pc column in %q", line, text)
				}
				p, err := strconv.ParseUint(strings.TrimPrefix(pcField, "0x"), 16, 64)
				if err != nil {
					return Header{}, nil, fmt.Errorf("trace: CSV line %d: bad pc %q", line, pcField)
				}
				val, pc = addrField, p
			}
			a, err := strconv.ParseUint(strings.TrimPrefix(val, "0x"), 16, 64)
			if err != nil {
				return Header{}, nil, fmt.Errorf("trace: CSV line %d: bad address %q", line, val)
			}
			k := Load
			if kind == "S" {
				k = Store
			}
			ops = append(ops, Op{Kind: k, Addr: a, PC: pc})
			span.touch(a)
		case "C":
			c, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return Header{}, nil, fmt.Errorf("trace: CSV line %d: bad cycle count %q", line, val)
			}
			ops = append(ops, Op{Kind: Compute, Cycles: uint32(c)})
		default:
			return Header{}, nil, fmt.Errorf("trace: CSV line %d: unknown op %q", line, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return Header{}, nil, fmt.Errorf("trace: read CSV: %w", err)
	}
	h := Header{Version: Version, Ops: []uint64{uint64(len(ops))}}
	if pcs {
		h.Version = VersionPC
	}
	h.Base, h.Footprint = span.bounds()
	return h, [][]Op{ops}, nil
}

// gzipMagic are the two bytes every gzip stream starts with; they sniff
// binary captures apart from CSV.
var gzipMagic = []byte{0x1f, 0x8b}

// ReadFile loads a capture in either format, sniffed by content (gzip
// magic means binary, anything else is parsed as CSV).
func ReadFile(path string) (Header, [][]Op, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(2)
	if err == nil && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		return Decode(br)
	}
	return DecodeCSV(br)
}

// Sniff validates path as a capture and returns its header without
// retaining the streams: binary captures read only the header; CSV
// captures are scanned fully (their header is derived from the rows).
func Sniff(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(2)
	if err == nil && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		return DecodeHeader(br)
	}
	h, _, err := DecodeCSV(br)
	return h, err
}
