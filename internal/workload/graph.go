package workload

import (
	"fmt"

	"ndpage/internal/addr"
	"ndpage/internal/xrand"
)

// graphData is the shared synthetic graph used by the GraphBIG kernels:
// a CSR-like layout with fixed-stride adjacency slots. Topology is
// derived from a stateless hash, so the multi-GB edge array exists only
// as virtual addresses; the *structure* (degrees, neighbor ids) is still
// deterministic and consistent across traversals, which is what the
// kernels' control flow needs.
type graphData struct {
	n       uint64 // vertices
	maxDeg  uint64 // adjacency slots per vertex
	seed    uint64
	local   uint64 // percent of edges to nearby vertices (community locality)
	threads int

	// vertices is an array-of-structs region of 64 B vertex records —
	// GraphBIG is a property-graph framework whose vertices are fat
	// objects (row pointers, properties, framework metadata). The AoS
	// layout is what makes neighbour gathers touch a multi-GB region,
	// which is the paper's address-translation stress.
	vertices addr.V
	// edges holds fixed-stride CSR adjacency slots, 4 B per slot.
	edges addr.V
}

// vertexRecord is the size of one vertex object. Field offsets within it:
// row pointers at +0, primary property (rank/sigma) at +8, secondary
// property (next rank/dependency) at +16, label (component/color/dist)
// at +24; the rest is framework metadata.
const (
	vertexRecord = 64
	fieldRow     = 0
	fieldPropA   = 8
	fieldPropB   = 16
	fieldLabel   = 24
)

// graphBytesPerVertex is the virtual footprint per vertex:
// the 64 B vertex object plus 4 B per adjacency slot.
func graphBytesPerVertex(maxDeg uint64) uint64 { return vertexRecord + 4*maxDeg }

// initGraph sizes the graph to the footprint and reserves its regions.
func (g *graphData) initGraph(mem Mem, rng *xrand.RNG, footprint uint64, threads int) {
	if g.maxDeg == 0 {
		g.maxDeg = 16
	}
	g.threads = threads
	g.seed = rng.Uint64()
	g.n = footprint / graphBytesPerVertex(g.maxDeg)
	if g.n < 1<<16 {
		g.n = 1 << 16
	}
	g.vertices = mem.Alloc(vertexRecord*g.n, "vertex-objects")
	g.edges = mem.Alloc(4*g.n*g.maxDeg, "csr-edges")
}

// degree returns vertex u's degree in [maxDeg/2, maxDeg].
func (g *graphData) degree(u uint64) uint64 {
	return g.maxDeg/2 + xrand.Hash64(g.seed^u)%(g.maxDeg/2+1)
}

// hubPct is the percentage of edges that point at power-law hub vertices.
// Real graph datasets are scale-free: a thin head of hubs receives a
// large share of all edges, giving neighbour gathers genuine cache
// locality — the locality that PTE pollution destroys (Figure 7).
const hubPct = 30

// neighbor returns the k-th neighbor of u: a mix of power-law hubs,
// community-local vertices, and uniform-random vertices.
func (g *graphData) neighbor(u, k uint64) uint64 {
	h := xrand.Hash64(g.seed ^ (u*64 + k + 1))
	r := h % 100
	if r < hubPct {
		// Zipf-like hub selection: frac^8 concentrates ~22% of hub
		// draws on the hottest few hundred vertices.
		f := float64(h>>8&0xFFFFFF) / float64(1<<24)
		f2 := f * f
		f4 := f2 * f2
		return uint64(f4 * f4 * float64(g.n))
	}
	if g.local > 0 && r < hubPct+g.local {
		return (u + 1 + (h>>8)%4096) % g.n
	}
	return (h >> 8) % g.n
}

func (g *graphData) field(u uint64, off uint64) addr.V {
	return g.vertices + addr.V(vertexRecord*u+off)
}
func (g *graphData) edgeAddr(u, k uint64) addr.V {
	return g.edges + addr.V(4*(u*g.maxDeg+k))
}
func (g *graphData) propAAddr(u uint64) addr.V { return g.field(u, fieldPropA) }
func (g *graphData) propBAddr(u uint64) addr.V { return g.field(u, fieldPropB) }
func (g *graphData) labelAddr(u uint64) addr.V { return g.field(u, fieldLabel) }

// emitRow emits the row-pointer load for vertex u (both row bounds sit in
// the vertex object's first word pair — one line).
func (g *graphData) emitRow(e *emitter, u uint64) {
	e.load(g.field(u, fieldRow))
}

// sweeper iterates vertices in thread-strided order, the GraphBIG OpenMP
// partitioning.
type sweeper struct {
	g    *graphData
	next uint64
}

func newSweeper(g *graphData, core int) *sweeper {
	return &sweeper{g: g, next: uint64(core) % g.n}
}

func (s *sweeper) vertex() uint64 {
	u := s.next
	s.next += uint64(s.g.threads)
	if s.next >= s.g.n {
		s.next %= uint64(s.g.threads)
	}
	return u
}

// ---------------------------------------------------------------------------
// PR: PageRank. Sequential vertex sweep; per edge a random rank gather;
// one rank store per vertex.

type pagerank struct{ graphData }

// NewPR returns the GraphBIG PageRank workload.
func NewPR() Workload { return &pagerank{graphData{local: 20}} }

func (p *pagerank) Name() string { return "pr" }

func (p *pagerank) Init(mem Mem, rng *xrand.RNG, footprint uint64, threads int) {
	p.initGraph(mem, rng, footprint, threads)
}

func (p *pagerank) Thread(core int, seed uint64) Generator {
	sw := newSweeper(&p.graphData, core)
	return newThread(func(e *emitter) {
		u := sw.vertex()
		p.emitRow(e, u)
		for k, d := uint64(0), p.degree(u); k < d; k++ {
			e.load(p.edgeAddr(u, k))
			e.load(p.propAAddr(p.neighbor(u, k))) // gather neighbor rank
			e.compute(1)
		}
		e.compute(2)            // damping arithmetic
		e.store(p.propBAddr(u)) // scatter new rank
	})
}

// ---------------------------------------------------------------------------
// CC: connected components by label propagation.

type concomp struct{ graphData }

// NewCC returns the GraphBIG Connected Components workload.
func NewCC() Workload { return &concomp{graphData{local: 30}} }

func (c *concomp) Name() string { return "cc" }

func (c *concomp) Init(mem Mem, rng *xrand.RNG, footprint uint64, threads int) {
	c.initGraph(mem, rng, footprint, threads)
}

func (c *concomp) Thread(core int, seed uint64) Generator {
	sw := newSweeper(&c.graphData, core)
	return newThread(func(e *emitter) {
		u := sw.vertex()
		c.emitRow(e, u)
		e.load(c.labelAddr(u))
		for k, d := uint64(0), c.degree(u); k < d; k++ {
			e.load(c.edgeAddr(u, k))
			e.load(c.labelAddr(c.neighbor(u, k)))
			e.compute(1) // min
		}
		e.store(c.labelAddr(u))
	})
}

// ---------------------------------------------------------------------------
// GC: greedy graph coloring.

type coloring struct{ graphData }

// NewGC returns the GraphBIG Graph Coloring workload.
func NewGC() Workload { return &coloring{graphData{local: 30}} }

func (c *coloring) Name() string { return "gc" }

func (c *coloring) Init(mem Mem, rng *xrand.RNG, footprint uint64, threads int) {
	c.initGraph(mem, rng, footprint, threads)
}

func (c *coloring) Thread(core int, seed uint64) Generator {
	sw := newSweeper(&c.graphData, core)
	return newThread(func(e *emitter) {
		u := sw.vertex()
		c.emitRow(e, u)
		for k, d := uint64(0), c.degree(u); k < d; k++ {
			e.load(c.edgeAddr(u, k))
			e.load(c.labelAddr(c.neighbor(u, k))) // neighbor color
			e.compute(1)                          // mark used color
		}
		e.compute(2) // first-fit scan
		e.store(c.labelAddr(u))
	})
}

// ---------------------------------------------------------------------------
// TC: triangle counting by adjacency-list intersection.

type triangles struct{ graphData }

// NewTC returns the GraphBIG Triangle Counting workload.
func NewTC() Workload { return &triangles{graphData{local: 40}} }

func (t *triangles) Name() string { return "tc" }

func (t *triangles) Init(mem Mem, rng *xrand.RNG, footprint uint64, threads int) {
	t.initGraph(mem, rng, footprint, threads)
}

func (t *triangles) Thread(core int, seed uint64) Generator {
	sw := newSweeper(&t.graphData, core)
	return newThread(func(e *emitter) {
		u := sw.vertex()
		t.emitRow(e, u)
		du := t.degree(u)
		for k := uint64(0); k < du; k++ {
			e.load(t.edgeAddr(u, k))
			v := t.neighbor(u, k)
			t.emitRow(e, v)
			// Merge-intersect adj(u) x adj(v): two sequential streams.
			dv := t.degree(v)
			for i, j := uint64(0), uint64(0); i < du && j < dv; {
				e.load(t.edgeAddr(u, i))
				e.load(t.edgeAddr(v, j))
				e.compute(1)
				if xrand.Hash64(u+i)&1 == 0 {
					i++
				} else {
					j++
				}
			}
		}
	})
}

// ---------------------------------------------------------------------------
// BFS: level-synchronous breadth-first search. Real visited state drives
// control flow; the frontier queue lives in a lazily populated region
// that grows inside the measurement window.

type bfs struct {
	graphData
	queueVA   addr.V
	queueSpan uint64
	visitedVA addr.V
}

// NewBFS returns the GraphBIG Breadth-First Search workload.
func NewBFS() Workload { return &bfs{graphData: graphData{local: 25}} }

func (b *bfs) Name() string { return "bfs" }

func (b *bfs) Init(mem Mem, rng *xrand.RNG, footprint uint64, threads int) {
	// Reserve ~1/8 of the budget for traversal state.
	b.initGraph(mem, rng, footprint*7/8, threads)
	b.visitedVA = mem.Alloc(b.n/8+addr.PageSize, "bfs-visited")
	b.queueSpan = 4 * b.n
	b.queueVA = mem.AllocLazy(b.queueSpan*uint64(threads), "bfs-frontier")
}

// bfsThread holds one traversal's real state.
type bfsThread struct {
	b       *bfs
	rng     *xrand.RNG
	visited []uint64
	queue   []uint32
	head    int
	qBase   addr.V // this thread's slice of the frontier region
	qPos    uint64 // monotonically increasing append cursor
}

func (b *bfs) Thread(core int, seed uint64) Generator {
	t := &bfsThread{
		b:       b,
		rng:     xrand.New(seed),
		visited: make([]uint64, b.n/64+1),
		qBase:   b.queueVA + addr.V(b.queueSpan*uint64(core)),
	}
	return newThread(t.step)
}

const bfsQueueCap = 1 << 15

func (t *bfsThread) qAddr() addr.V {
	a := t.qBase + addr.V(4*(t.qPos%(t.b.queueSpan/4)))
	t.qPos++
	return a
}

func (t *bfsThread) step(e *emitter) {
	b := t.b
	if t.head >= len(t.queue) {
		// Frontier exhausted: restart from a fresh source.
		for i := range t.visited {
			t.visited[i] = 0
		}
		t.queue = t.queue[:0]
		t.head = 0
		src := t.rng.Uint64n(b.n)
		t.visited[src/64] |= 1 << (src % 64)
		t.queue = append(t.queue, uint32(src))
		e.store(t.qAddr())
		return
	}
	u := uint64(t.queue[t.head])
	t.head++
	if t.head > bfsQueueCap {
		// Compact the consumed prefix to bound Go-side memory.
		t.queue = append(t.queue[:0], t.queue[t.head:]...)
		t.head = 0
	}
	e.load(t.qAddr()) // dequeue
	b.emitRow(e, u)
	for k, d := uint64(0), b.degree(u); k < d; k++ {
		e.load(b.edgeAddr(u, k))
		v := b.neighbor(u, k)
		e.load(b.visitedVA + addr.V(v/8)) // visited probe
		if t.visited[v/64]&(1<<(v%64)) == 0 {
			t.visited[v/64] |= 1 << (v % 64)
			e.store(b.visitedVA + addr.V(v/8))
			if len(t.queue)-t.head < bfsQueueCap {
				t.queue = append(t.queue, uint32(v))
			}
			e.store(t.qAddr()) // enqueue (append to frontier region)
			e.compute(1)
		}
	}
}

// ---------------------------------------------------------------------------
// BC: betweenness centrality — BFS forward passes plus a reverse
// dependency-accumulation sweep over the discovered order.

type bc struct {
	bfs
}

// NewBC returns the GraphBIG Betweenness Centrality workload.
func NewBC() Workload { return &bc{bfs{graphData: graphData{local: 25}}} }

func (b *bc) Name() string { return "bc" }

type bcThread struct {
	bfsThread
	order   []uint32 // visit order of the current traversal
	backPos int      // reverse sweep position, -1 when in forward phase
}

func (b *bc) Thread(core int, seed uint64) Generator {
	t := &bcThread{
		bfsThread: bfsThread{
			b:       &b.bfs,
			rng:     xrand.New(seed),
			visited: make([]uint64, b.n/64+1),
			qBase:   b.queueVA + addr.V(b.queueSpan*uint64(core)),
		},
		backPos: -1,
	}
	return newThread(t.step)
}

func (t *bcThread) step(e *emitter) {
	b := t.b
	if t.backPos >= 0 {
		// Reverse phase: accumulate dependencies.
		u := uint64(t.order[t.backPos])
		t.backPos--
		e.load(b.propAAddr(u)) // sigma[u]
		for k, d := uint64(0), b.degree(u); k < d; k++ {
			v := b.neighbor(u, k)
			e.load(b.propAAddr(v)) // sigma[v]
			e.load(b.propBAddr(v)) // dep[v]
			e.compute(1)
		}
		e.store(b.propBAddr(u)) // dep[u]
		if t.backPos < 0 {
			t.order = t.order[:0] // traversal finished
		}
		return
	}
	if t.head >= len(t.queue) {
		if len(t.order) > 0 {
			// Forward phase done: switch to the reverse sweep.
			t.backPos = len(t.order) - 1
			return
		}
		for i := range t.visited {
			t.visited[i] = 0
		}
		t.queue = t.queue[:0]
		t.head = 0
		src := t.rng.Uint64n(b.n)
		t.visited[src/64] |= 1 << (src % 64)
		t.queue = append(t.queue, uint32(src))
		e.store(t.qAddr())
		return
	}
	u := uint64(t.queue[t.head])
	t.head++
	if t.head > bfsQueueCap {
		t.queue = append(t.queue[:0], t.queue[t.head:]...)
		t.head = 0
	}
	if len(t.order) < 4*bfsQueueCap {
		t.order = append(t.order, uint32(u))
	}
	e.load(t.qAddr())
	b.emitRow(e, u)
	e.load(b.propAAddr(u)) // sigma[u]
	e.compute(1)
	for k, d := uint64(0), b.degree(u); k < d; k++ {
		e.load(b.edgeAddr(u, k))
		v := b.neighbor(u, k)
		e.load(b.visitedVA + addr.V(v/8))
		e.compute(1) // path-count arithmetic
		if t.visited[v/64]&(1<<(v%64)) == 0 {
			t.visited[v/64] |= 1 << (v % 64)
			e.store(b.visitedVA + addr.V(v/8))
			e.store(b.propAAddr(v)) // sigma[v] += sigma[u]
			if len(t.queue)-t.head < bfsQueueCap {
				t.queue = append(t.queue, uint32(v))
			}
			e.store(t.qAddr())
		}
	}
}

// ---------------------------------------------------------------------------
// SP: single-source shortest path, delta-stepping flavour: a worklist of
// relaxations with hash-derived improvement decisions.

type sssp struct {
	bfs
}

// NewSP returns the GraphBIG Shortest Path workload.
func NewSP() Workload { return &sssp{bfs{graphData: graphData{local: 20}}} }

func (s *sssp) Name() string { return "sp" }

type spThread struct {
	bfsThread
	round uint64
}

func (s *sssp) Thread(core int, seed uint64) Generator {
	t := &spThread{bfsThread: bfsThread{
		b:       &s.bfs,
		rng:     xrand.New(seed),
		visited: make([]uint64, s.n/64+1),
		qBase:   s.queueVA + addr.V(s.queueSpan*uint64(core)),
	}}
	return newThread(t.step)
}

func (t *spThread) step(e *emitter) {
	b := t.b
	if t.head >= len(t.queue) {
		t.round++
		t.queue = t.queue[:0]
		t.head = 0
		src := t.rng.Uint64n(b.n)
		t.queue = append(t.queue, uint32(src))
		e.store(t.qAddr())
		e.store(b.labelAddr(src)) // dist[src] = 0
		return
	}
	u := uint64(t.queue[t.head])
	t.head++
	if t.head > bfsQueueCap {
		t.queue = append(t.queue[:0], t.queue[t.head:]...)
		t.head = 0
	}
	e.load(t.qAddr())
	b.emitRow(e, u)
	e.load(b.labelAddr(u)) // dist[u]
	for k, d := uint64(0), b.degree(u); k < d; k++ {
		e.load(b.edgeAddr(u, k)) // edge + weight
		v := b.neighbor(u, k)
		e.load(b.labelAddr(v)) // dist[v]
		e.compute(1)
		// Improvement probability decays as relaxation converges.
		h := xrand.Hash64(b.seed ^ (u*131 + v + t.round))
		if h%100 < 30/(1+t.round%8) {
			e.store(b.labelAddr(v))
			if len(t.queue)-t.head < bfsQueueCap {
				t.queue = append(t.queue, uint32(v))
			}
			e.store(t.qAddr())
		}
	}
}

// String helps debugging.
func (g *graphData) String() string {
	return fmt.Sprintf("graph{n=%d, maxDeg=%d}", g.n, g.maxDeg)
}
