package workload

import (
	"ndpage/internal/addr"
	"ndpage/internal/xrand"
)

// ---------------------------------------------------------------------------
// XS: XSBench — Monte Carlo neutron transport cross-section lookups. Each
// lookup binary-searches the unionized energy grid and gathers one point
// per nuclide of a randomly chosen material.

type xsbench struct {
	gridPoints uint64
	nuclides   uint64
	egrid      addr.V // 8 B per grid point
	xsdata     addr.V // 16 B per (nuclide, grid point)
	seed       uint64
}

// NewXS returns the XSBench workload.
func NewXS() Workload { return &xsbench{nuclides: 64} }

func (x *xsbench) Name() string { return "xs" }

func (x *xsbench) Init(mem Mem, rng *xrand.RNG, footprint uint64, threads int) {
	// bytes/gridpoint = 8 (egrid) + 16*nuclides (xsdata).
	x.seed = rng.Uint64()
	x.gridPoints = footprint / (8 + 16*x.nuclides)
	if x.gridPoints < 1<<14 {
		x.gridPoints = 1 << 14
	}
	x.egrid = mem.Alloc(8*x.gridPoints, "xs-egrid")
	x.xsdata = mem.Alloc(16*x.gridPoints*x.nuclides, "xs-data")
}

func (x *xsbench) Thread(core int, seed uint64) Generator {
	rng := xrand.New(seed)
	return newThread(func(e *emitter) {
		// Sample a particle energy: binary search the energy grid.
		// Particle energies cluster (thermal spectrum), so hot grid
		// ranges see real reuse.
		target := rng.Zipf(x.gridPoints, 0.6)
		lo, hi := uint64(0), x.gridPoints-1
		for lo < hi {
			mid := (lo + hi) / 2
			// The comparison overlaps the next probe; only the load is
			// on the critical path.
			e.load(x.egrid + addr.V(8*mid))
			if mid < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		e.compute(1)
		// Gather cross sections for the material's nuclides.
		mat := 5 + rng.Uint64n(25)
		for i := uint64(0); i < mat; i++ {
			nuc := (xrand.Hash64(x.seed^(target*64+i)) % x.nuclides)
			e.load(x.xsdata + addr.V(16*(nuc*x.gridPoints+target)))
			e.compute(1)
		}
		e.compute(3) // macroscopic XS accumulation
	})
}

// ---------------------------------------------------------------------------
// RND: GUPS random access — read-modify-write of random table entries.

type gups struct {
	tableLen uint64 // 8 B entries
	table    addr.V
}

// NewRND returns the GUPS random-access workload.
func NewRND() Workload { return &gups{} }

func (g *gups) Name() string { return "rnd" }

func (g *gups) Init(mem Mem, rng *xrand.RNG, footprint uint64, threads int) {
	g.tableLen = footprint / 8
	if g.tableLen < 1<<16 {
		g.tableLen = 1 << 16
	}
	g.table = mem.Alloc(8*g.tableLen, "gups-table")
}

func (g *gups) Thread(core int, seed uint64) Generator {
	rng := xrand.New(seed)
	return newThread(func(e *emitter) {
		a := g.table + addr.V(8*rng.Uint64n(g.tableLen))
		e.load(a)
		e.compute(1) // xor
		e.store(a)
	})
}

// ---------------------------------------------------------------------------
// DLRM: sparse-length-sum — gather embedding rows from many tables,
// reduce, and append the result to an output buffer.

type dlrm struct {
	tables  uint64
	rows    uint64 // per table
	rowB    uint64 // bytes per row
	lookups uint64 // per table per sample
	emb     addr.V
	out     addr.V
	outSpan uint64
}

// NewDLRM returns the DLRM sparse-length-sum workload.
func NewDLRM() Workload {
	return &dlrm{tables: 16, rowB: 128, lookups: 4}
}

func (d *dlrm) Name() string { return "dlrm" }

func (d *dlrm) Init(mem Mem, rng *xrand.RNG, footprint uint64, threads int) {
	d.rows = footprint / (d.tables * d.rowB)
	if d.rows < 1<<14 {
		d.rows = 1 << 14
	}
	d.emb = mem.Alloc(d.tables*d.rows*d.rowB, "dlrm-embeddings")
	d.outSpan = 64 << 20
	d.out = mem.AllocLazy(d.outSpan*uint64(threads), "dlrm-output")
}

type dlrmThread struct {
	d      *dlrm
	rng    *xrand.RNG
	outPos uint64
	base   addr.V
}

func (d *dlrm) Thread(core int, seed uint64) Generator {
	t := &dlrmThread{d: d, rng: xrand.New(seed), base: d.out + addr.V(d.outSpan*uint64(core))}
	return newThread(t.step)
}

func (t *dlrmThread) step(e *emitter) {
	d := t.d
	for tab := uint64(0); tab < d.tables; tab++ {
		for l := uint64(0); l < d.lookups; l++ {
			row := t.rng.Zipf(d.rows, 0.9) // hot embeddings dominate
			rowBase := d.emb + addr.V((tab*d.rows+row)*d.rowB)
			for b := uint64(0); b < d.rowB; b += addr.LineSize {
				e.load(rowBase + addr.V(b))
			}
			e.compute(1) // accumulate
		}
	}
	// Append the pooled result (one row) to the output buffer.
	o := t.base + addr.V(t.outPos%t.d.outSpan)
	t.outPos += d.rowB
	for b := uint64(0); b < d.rowB; b += addr.LineSize {
		e.store(o + addr.V(b))
	}
}

// ---------------------------------------------------------------------------
// GEN: GenomicsBench k-mer counting — stream the genome, hash each k-mer,
// and bump a counter in a huge hash table. The table grows inside the
// window (lazy region) with the heavy-tailed reuse of real k-mer spectra:
// hot k-mers dominate, the cold tail keeps touching fresh pages.

type genomics struct {
	genomeLen uint64
	hotLen    uint64 // 16 B buckets in the established (eager) table
	coldLen   uint64 // 16 B slots in the growth arena (lazy)
	genome    addr.V
	hot       addr.V
	cold      addr.V
	seed      uint64
	threads   int
}

// NewGEN returns the k-mer counting workload.
func NewGEN() Workload { return &genomics{} }

func (g *genomics) Name() string { return "gen" }

func (g *genomics) Init(mem Mem, rng *xrand.RNG, footprint uint64, threads int) {
	g.seed = rng.Uint64()
	g.threads = threads
	g.genomeLen = footprint / 4
	if g.genomeLen < 1<<20 {
		g.genomeLen = 1 << 20
	}
	// The established table (k-mers counted so far) dominates the
	// footprint and exists before the window; the growth arena receives
	// newly discovered k-mers and faults inside the window.
	hotBytes := footprint - g.genomeLen - footprint/8
	g.hotLen = hotBytes / 16
	g.coldLen = footprint / 8 / 16 * uint64(g.threads)
	g.genome = mem.Alloc(g.genomeLen, "genome")
	g.hot = mem.Alloc(16*g.hotLen, "kmer-table")
	g.cold = mem.AllocLazy(16*g.coldLen, "kmer-growth")
}

type genThread struct {
	g        *genomics
	rng      *xrand.RNG
	pos      uint64
	partBase uint64 // this thread's growth-arena partition (byte offset)
	partLen  uint64 // partition length in bytes
	frontier uint64 // discovery cursor within the partition
}

func (g *genomics) Thread(core int, seed uint64) Generator {
	part := (16 * g.coldLen / uint64(g.threads)) &^ 15
	t := &genThread{
		g:        g,
		rng:      xrand.New(seed),
		partBase: part * uint64(core),
		partLen:  part,
	}
	// Threads scan staggered genome segments.
	t.pos = xrand.Hash64(seed) % g.genomeLen
	return newThread(t.step)
}

// genGrowProb is the fraction of table accesses that insert a *new*
// k-mer; genGrowStride spaces the claimed slots (new k-mers hash into
// fresh bucket neighbourhoods, so discovery touches the arena sparsely —
// the access class that makes transparent huge pages expensive under
// contiguity pressure, Section VII-B).
const (
	genGrowProb   = 0.01
	genGrowStride = 32 << 10
)

func (t *genThread) step(e *emitter) {
	g := t.g
	// Slide the k-mer window: sequential genome bytes.
	e.load(g.genome + addr.V(t.pos))
	t.pos = (t.pos + 4) % g.genomeLen
	e.compute(2) // rolling hash
	var a addr.V
	if t.rng.Bool(genGrowProb) {
		// New k-mer: claim a slot at the growth-arena frontier.
		a = g.cold + addr.V(t.partBase+t.frontier)
		t.frontier = (t.frontier + genGrowStride) % t.partLen
	} else {
		// Known k-mer: heavy-tailed popularity over the established
		// table (hot k-mers concentrate at low offsets).
		a = g.hot + addr.V(16*t.rng.Zipf(g.hotLen, 0.6))
	}
	e.load(a)
	e.compute(1) // compare/increment
	e.store(a)
}
