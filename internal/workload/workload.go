// Package workload implements the eleven data-intensive benchmarks of
// Table II as synthetic kernels: the GraphBIG suite (BC, BFS, CC, GC, PR,
// TC, SP), XSBench particle transport lookups (XS), GUPS random access
// (RND), DLRM sparse-length-sum (DLRM), and GenomicsBench k-mer counting
// (GEN).
//
// A workload is the *address stream* of the real kernel, not its
// arithmetic: each generator executes the kernel's control flow over a
// synthetic dataset and emits the loads, stores and compute gaps the real
// program would issue. Dataset topology (graph adjacency, k-mer hashes,
// embedding rows) is derived from a stateless hash so multi-gigabyte
// virtual footprints need no Go-side storage; only state that feeds back
// into control flow (BFS visited sets, work queues) is materialized.
//
// Following the paper's multicore methodology, one workload instance owns
// a shared dataset and serves one Generator per simulated core (the
// paper's suites are multithreaded; cores share an address space and
// partition work).
package workload

import (
	"ndpage/internal/addr"
	"ndpage/internal/xrand"
)

// OpKind is the kind of one instruction-level operation.
type OpKind uint8

// Operation kinds.
const (
	// Compute is a non-memory instruction burst of Op.Cycles cycles.
	Compute OpKind = iota
	// Load reads Op.Addr.
	Load
	// Store writes Op.Addr.
	Store
)

// Op is one instruction emitted by a generator.
//
// PC is the virtual address of the static instruction issuing the op,
// used by PC-indexed translation (the PCAX mechanism). Builtin kernels
// assign deterministic synthetic PCs to their loads and stores (a small
// set per kernel, modeling the static memory instructions of an inner
// loop); trace replays carry the captured PC when the trace has one
// (.ndpt format v2, or the optional CSV pc column). PC 0 means "no PC":
// such ops skip the PC-indexed table and PCAX degenerates to Radix.
type Op struct {
	Kind   OpKind
	Addr   addr.V
	PC     uint64
	Cycles uint32
}

// Mem is the allocation interface a workload uses to reserve its dataset.
// It is implemented by the OS model's AddressSpace.
type Mem interface {
	// Alloc reserves and eagerly populates memory (datasets that exist
	// before the measurement window).
	Alloc(size uint64, name string) addr.V
	// AllocLazy reserves memory populated on first touch (structures
	// that grow during execution and fault inside the window).
	AllocLazy(size uint64, name string) addr.V
}

// Workload is a benchmark: a shared dataset plus per-core op streams.
type Workload interface {
	// Name returns the paper's workload abbreviation (lowercase).
	Name() string
	// Init allocates the shared dataset sized to roughly footprint
	// bytes, for the given thread count.
	Init(mem Mem, rng *xrand.RNG, footprint uint64, threads int)
	// Thread returns the op stream for one core. Init must have been
	// called. Streams are infinite.
	Thread(core int, seed uint64) Generator
}

// Generator is an infinite instruction stream.
type Generator interface {
	Next(op *Op)
}

// emitter is a small FIFO op buffer shared by all generators: kernels
// refill it a step at a time, Next drains it. The backing array is reused
// so steady-state generation does not allocate.
type emitter struct {
	buf  []Op
	head int
}

func (e *emitter) empty() bool { return e.head >= len(e.buf) }

func (e *emitter) reset() {
	e.buf = e.buf[:0]
	e.head = 0
}

func (e *emitter) pop(op *Op) {
	*op = e.buf[e.head]
	e.head++
}

// Synthetic PCs for builtin kernels: each load/store takes a PC from a
// small per-refill-position window, modeling the bounded set of static
// memory instructions in a kernel's inner loop. Position-derived PCs are
// deterministic (a pure function of the op stream, so same-seed runs and
// shard replications see identical PCs) and stable across refills.
const (
	pcBase  = 0x400000 // conventional text-segment base
	pcSlots = 128      // distinct synthetic PCs per kernel
)

func (e *emitter) pc() uint64 { return pcBase + 4*uint64(len(e.buf)&(pcSlots-1)) }

func (e *emitter) load(a addr.V)    { e.buf = append(e.buf, Op{Kind: Load, Addr: a, PC: e.pc()}) }
func (e *emitter) store(a addr.V)   { e.buf = append(e.buf, Op{Kind: Store, Addr: a, PC: e.pc()}) }
func (e *emitter) compute(c uint32) { e.buf = append(e.buf, Op{Kind: Compute, Cycles: c}) }

// thread adapts a refill function to the Generator interface.
type thread struct {
	emitter
	refill func(e *emitter)
}

// Next implements Generator.
func (t *thread) Next(op *Op) {
	for t.empty() {
		t.reset()
		t.refill(&t.emitter)
	}
	t.pop(op)
}

// newThread builds a Generator from a refill step.
func newThread(refill func(e *emitter)) Generator {
	return &thread{refill: refill}
}
