package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"ndpage/internal/core"
	"ndpage/internal/workload"
)

// Normalize returns the configuration with every zero-valued optional
// field replaced by its documented default. It is idempotent, and it is
// the identity on which run caching is defined: two Configs that
// normalize equally describe the same simulation, and Key hashes the
// normalized form. sim.New normalizes internally, so callers only need
// Normalize when they want to inspect the effective configuration (or
// its Key) without building a machine.
func (c Config) Normalize() Config {
	if c.Cores == 0 {
		c.Cores = 1
	}
	if c.FootprintBytes == 0 {
		// 9.5 GB at 1 core up to 13.5 GB at 8 cores: the paper's
		// datasets (8-33 GB) scaled to the 16 GB machine, growing with
		// core count ("as the workload scale and the number of NDP
		// cores increase", Section VII-B).
		c.FootprintBytes = uint64(19+c.Cores) << 29
	}
	if c.MemoryBytes == 0 {
		c.MemoryBytes = 16 << 30
	}
	if c.FragHoles == 0 {
		c.FragHoles = int(800 * (c.MemoryBytes >> 30) / 16)
	}
	if c.Instructions == 0 {
		c.Instructions = 300_000
	}
	if c.Warmup == 0 {
		c.Warmup = 30_000
	}
	if c.FetchEvery == 0 {
		c.FetchEvery = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.WalkerWidth == 0 {
		c.WalkerWidth = 1
	}
	if c.MLP == 0 {
		c.MLP = 1
	}
	if c.Mechanism == core.Victima && c.VictimaGate == 0 {
		c.VictimaGate = 2
	}
	if c.Mechanism == core.PCAX && c.PCXEntries == 0 {
		c.PCXEntries = 512
	}
	return c
}

// Validate rejects configurations that cannot run or whose knobs would
// be silently meaningless. It validates the normalized form, so zero
// values (= defaults) always pass; explicit garbage does not.
func (c Config) Validate() error {
	n := c.Normalize()
	if n.Cores < 1 || n.Cores > 64 {
		return fmt.Errorf("sim: core count %d out of range [1, 64]", n.Cores)
	}
	if n.MLP < 1 || n.MLP > 64 {
		return fmt.Errorf("sim: MLP window %d out of range [1, 64]", n.MLP)
	}
	if n.WalkerWidth < 1 {
		return fmt.Errorf("sim: walker width %d must be positive", n.WalkerWidth)
	}
	if n.FragHoles < 0 {
		return fmt.Errorf("sim: FragHoles %d must not be negative", n.FragHoles)
	}
	if n.FetchEvery < 1 {
		return fmt.Errorf("sim: FetchEvery %d must be positive", n.FetchEvery)
	}
	if n.HBMChannels < 0 || (n.HBMChannels > 0 && n.HBMChannels&(n.HBMChannels-1) != 0) {
		return fmt.Errorf("sim: HBMChannels %d must be 0 (default) or a power of two", n.HBMChannels)
	}
	if _, err := workload.Lookup(n.Workload); err != nil {
		return err
	}
	// A width above 1 needs a walk unit that can actually see two walks
	// at once: either one shared across cores, or a non-blocking core
	// (MLP > 1) overlapping its own walks. On a blocking core with
	// private walkers the extra slots can never fill.
	if n.WalkerWidth > 1 && !n.SharedWalker && n.MLP == 1 {
		return fmt.Errorf("sim: WalkerWidth %d is inert without SharedWalker on a blocking core (set SharedWalker or MLP > 1)",
			n.WalkerWidth)
	}
	// Mechanism-specific knobs are inert under any other mechanism.
	if n.VictimaGate != 0 && n.Mechanism != core.Victima {
		return fmt.Errorf("sim: VictimaGate %d is inert under Mechanism %s (only Victima fills translation blocks)",
			n.VictimaGate, n.Mechanism)
	}
	if n.VictimaGate < 0 {
		return fmt.Errorf("sim: VictimaGate %d must not be negative", n.VictimaGate)
	}
	if n.PCXEntries != 0 && n.Mechanism != core.PCAX {
		return fmt.Errorf("sim: PCXEntries %d is inert under Mechanism %s (only PCAX probes the PC-indexed table)",
			n.PCXEntries, n.Mechanism)
	}
	if n.Mechanism == core.PCAX {
		sets := n.PCXEntries / 4
		if n.PCXEntries < 4 || n.PCXEntries%4 != 0 || sets&(sets-1) != 0 {
			return fmt.Errorf("sim: PCXEntries %d must be 4 ways times a power-of-two set count", n.PCXEntries)
		}
	}
	if n.IdentityPromote && n.Mechanism != core.NMT {
		return fmt.Errorf("sim: IdentityPromote is inert under Mechanism %s (only NMT keeps identity segments)",
			n.Mechanism)
	}
	// Without eager population no chunk is ever identity-covered, so the
	// whole mechanism degenerates to Radix unless faults promote.
	if n.Mechanism == core.NMT && n.DemandPaging && !n.IdentityPromote {
		return fmt.Errorf("sim: Mechanism NMT is inert under DemandPaging (no chunk is identity-mapped; set IdentityPromote)")
	}
	return nil
}

// Key returns a stable content hash of the fully-normalized
// configuration: two Configs share a Key exactly when they describe the
// same simulation, defaults resolved. Sweep stores content-address
// results by this Key, so cached runs survive process restarts and
// resume incrementally. The hash covers every Config field; adding a
// field to Config changes the Key of every configuration, which
// deliberately invalidates caches recorded under the old schema.
//
// For workloads whose name alone does not pin their behavior, the
// workload's identity material joins the hash: registered workloads
// contribute their name+params, trace replays a content digest of the
// capture file (workload.Identity). Built-in Table II names contribute
// nothing, so their keys are unchanged from earlier schemas.
func (c Config) Key() string {
	n := c.Normalize()
	b, err := json.Marshal(n)
	if err != nil {
		// Config is a struct of scalars and strings; Marshal cannot fail.
		panic(fmt.Sprintf("sim: config hash: %v", err))
	}
	h := sha256.New()
	h.Write(b)
	if id := workload.Identity(n.Workload); id != "" {
		h.Write([]byte{0})
		h.Write([]byte(id))
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// Desc formats the configuration for progress lines and error messages:
// the matrix coordinates (system/mechanism/cores/workload) plus a suffix
// per non-default sensitivity knob.
func (c Config) Desc() string {
	s := fmt.Sprintf("%s/%s/%dc/%s", c.System, c.Mechanism, c.Cores, c.Workload)
	if c.DisablePWC {
		s += "+nopwc"
	}
	if c.HBMChannels > 0 {
		s += fmt.Sprintf("+hbm=%d", c.HBMChannels)
	}
	if c.DemandPaging {
		s += "+demand"
	}
	if c.ResidentLimitBytes > 0 {
		s += fmt.Sprintf("+resident=%dM", c.ResidentLimitBytes>>20)
	}
	if c.ECHWayPrediction {
		s += "+waypred"
	}
	if c.SharedWalker {
		s += "+shared"
	}
	if c.WalkerWidth > 1 {
		s += fmt.Sprintf("+w=%d", c.WalkerWidth)
	}
	if c.MLP > 1 {
		s += fmt.Sprintf("+mlp=%d", c.MLP)
	}
	if c.VictimaGate > 0 {
		s += fmt.Sprintf("+gate=%d", c.VictimaGate)
	}
	if c.IdentityPromote {
		s += "+promote"
	}
	if c.PCXEntries > 0 {
		s += fmt.Sprintf("+pcx=%d", c.PCXEntries)
	}
	return s
}
