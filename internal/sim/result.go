package sim

import (
	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/pagetable"
	"ndpage/internal/pwc"
	"ndpage/internal/stats"
	"ndpage/internal/walker"
)

// Result aggregates one measurement window across all cores: everything
// the paper's figures report.
type Result struct {
	Config Config

	// Cycles is the parallel completion time: the maximum per-core
	// measured cycle count. TotalCycles is the sum across cores (the
	// denominator for overhead fractions).
	Cycles      uint64
	TotalCycles uint64

	Instructions uint64
	Loads        uint64
	Stores       uint64

	// Cycle attribution (sums across cores).
	TranslationCycles uint64
	DataCycles        uint64
	ComputeCycles     uint64
	FaultCycles       uint64

	// Translation micro-metrics.
	Walks       uint64
	WalkCycles  uint64
	PTEAccesses uint64
	L1TLB       stats.HitMiss // DTLB, aggregated over cores
	L2TLB       stats.HitMiss
	PWC         map[addr.Level]stats.HitMiss

	// Walker concurrency metrics (aggregated over distinct walk units;
	// a shared walker is counted once).
	MSHRHits           uint64 // walk requests coalesced onto an in-flight walk
	OverlappedWalks    uint64 // walks that began with another in flight
	QueuedWalks        uint64 // walks that waited for a free walk slot
	WalkQueueCycles    uint64 // total cycles walks spent waiting for slots
	MaxConcurrentWalks int    // peak simultaneously active walks in one unit
	// WalkOverlapHist[k] counts performed walks that began with k walks
	// in flight in their walk unit, the walk itself included (index 0
	// unused). All mass sits at k=1 unless walks can overlap.
	WalkOverlapHist []uint64

	// InFlightHist[k] counts memory-op issues that brought their core's
	// MLP window to k in-flight ops, the op itself included (index 0
	// unused). With the blocking core (MLP=1) every issue is solo, so
	// the histogram is [0, Loads+Stores].
	InFlightHist []uint64

	// L1 data-cache behaviour (aggregated over cores).
	L1Data           stats.HitMiss
	L1PTE            stats.HitMiss
	L1Bypassed       uint64
	DataEvictedByPTE uint64

	// Mechanism-specific activity (zero unless the mechanism ran).

	// Victima translation-block store: walker probes/hits, predictor-
	// admitted fills, predictor-deferred fill offers, and data lines
	// displaced by translation blocks.
	VictimaProbes     uint64
	VictimaHits       uint64
	VictimaFills      uint64
	VictimaDeferred   uint64
	DataEvictedByXlat uint64
	// NMT identity-segment range checks (hits skip TLBs and walker).
	IdentityHits   uint64
	IdentityMisses uint64
	// PCAX PC-indexed table probes, aggregated over cores.
	PCX stats.HitMiss

	// Memory traffic by class.
	DRAM            [access.NumClasses]uint64
	DRAMMeanLatency float64
	DRAMMeanQueue   float64

	// Page-table structure (shared table).
	Occupancy   []pagetable.LevelOccupancy
	MappedPages uint64

	// OS events in the window.
	Faults4K         uint64
	Faults2M         uint64
	HugeFallbacks    uint64
	CompactionCycles uint64
	ReclaimedChunks  uint64
}

// collect gathers the Result after the measurement window.
func (m *Machine) collect() *Result {
	r := &Result{
		Config: m.cfg,
		PWC:    make(map[addr.Level]stats.HitMiss),
	}
	seenWalker := make(map[*walker.Walker]bool)
	seenPWC := make(map[*pwc.PWC]bool)
	for _, c := range m.cores {
		elapsed := c.clock - c.start
		if elapsed > r.Cycles {
			r.Cycles = elapsed
		}
		r.TotalCycles += elapsed
		r.Instructions += c.instructions
		r.Loads += c.loads
		r.Stores += c.stores
		r.TranslationCycles += c.translationCycles
		r.DataCycles += c.dataCycles
		r.ComputeCycles += c.computeCycles
		r.FaultCycles += c.faultCycles

		if wk := c.mmu.Walker(); !seenWalker[wk] {
			seenWalker[wk] = true
			ws := wk.Stats()
			r.Walks += ws.Walks.Value()
			r.WalkCycles += ws.WalkCycles.Value()
			r.PTEAccesses += ws.PTEAccesses.Value()
			r.MSHRHits += ws.MSHRHits.Value()
			r.OverlappedWalks += ws.OverlappedWalks.Value()
			r.QueuedWalks += ws.QueuedWalks.Value()
			r.WalkQueueCycles += ws.QueueCycles.Value()
			if ws.MaxInFlight > r.MaxConcurrentWalks {
				r.MaxConcurrentWalks = ws.MaxInFlight
			}
			r.WalkOverlapHist = mergeHist(r.WalkOverlapHist, ws.InFlightHist)
		}
		r.InFlightHist = mergeHist(r.InFlightHist, c.windowHist)
		r.L1TLB.Merge(*c.mmu.DTLB().Stats())
		r.L2TLB.Merge(*c.mmu.STLB().Stats())
		if pwcs := c.mmu.PWC(); pwcs != nil && !seenPWC[pwcs] {
			seenPWC[pwcs] = true
			for _, l := range pwcs.Levels() {
				hm := r.PWC[l]
				hm.Merge(*pwcs.Stats(l))
				r.PWC[l] = hm
			}
		}

		ms := c.mmu.Stats()
		r.IdentityHits += ms.IdentityHits.Value()
		r.IdentityMisses += ms.IdentityMisses.Value()
		if pcx := c.mmu.PCXTable(); pcx != nil {
			r.PCX.Merge(*pcx.Stats())
		}

		l1 := m.hier.L1D(c.id).Stats()
		r.L1Data.Merge(l1.PerClass[access.Data])
		r.L1PTE.Merge(l1.PerClass[access.PTE])
		r.L1Bypassed += l1.Bypassed.Value()
		r.DataEvictedByPTE += l1.DataEvictedByPTE.Value()
		r.DataEvictedByXlat += l1.DataEvictedByXlat.Value()
	}

	if v := m.hier.Victima(); v != nil {
		vs := v.Stats()
		r.VictimaProbes = vs.Probes.Value()
		r.VictimaHits = vs.Hits.Value()
		r.VictimaFills = vs.Fills.Value()
		r.VictimaDeferred = vs.Deferred.Value()
	}
	if l3 := m.hier.L3(); l3 != nil {
		// On CPU systems translation blocks live in the shared L3, so
		// that is where they displace data.
		r.DataEvictedByXlat += l3.Stats().DataEvictedByXlat.Value()
	}

	ds := m.hier.DRAM().Stats()
	for cls := 0; cls < access.NumClasses; cls++ {
		r.DRAM[cls] = ds.PerClass[cls].Value()
	}
	r.DRAMMeanLatency = ds.MeanLatency()
	r.DRAMMeanQueue = ds.MeanQueue()

	r.Occupancy = m.space.Table().Occupancy()
	r.MappedPages = m.space.Table().MappedPages()

	os := m.space.Stats()
	r.Faults4K = os.Faults4K
	r.Faults2M = os.Faults2M
	r.HugeFallbacks = os.HugeFallbacks
	r.CompactionCycles = os.CompactionCycles
	r.ReclaimedChunks = os.ReclaimedChunks

	// The blocking core issues exactly one memory op at a time; its
	// window histogram is synthesized rather than tracked in the hot
	// loop.
	if m.cfg.MLP == 1 && r.Loads+r.Stores > 0 {
		r.InFlightHist = []uint64{0, r.Loads + r.Stores}
	}
	return r
}

// mergeHist accumulates src into dst element-wise, growing dst.
func mergeHist(dst, src []uint64) []uint64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// histMean returns the count-weighted mean index of a histogram whose
// index 0 is unused.
func histMean(h []uint64) float64 {
	var n, sum uint64
	for k, v := range h {
		n += v
		sum += uint64(k) * v
	}
	return stats.Ratio(sum, n)
}

// MeanInFlight returns the average per-core window occupancy at memory-
// op issue (1 for the blocking core; up to Config.MLP for non-blocking
// front-ends saturating their window).
func (r *Result) MeanInFlight() float64 { return histMean(r.InFlightHist) }

// MeanWalkConcurrency returns the average number of walks in flight in
// a walk unit when a walk begins (1 unless walks overlap).
func (r *Result) MeanWalkConcurrency() float64 { return histMean(r.WalkOverlapHist) }

// MeanPTWLatency returns the average page-table-walk latency in cycles
// (Figure 4 / Figure 6a).
func (r *Result) MeanPTWLatency() float64 {
	return stats.Ratio(r.WalkCycles, r.Walks)
}

// TranslationOverhead returns the fraction of execution time spent on
// address translation (Figure 5 / Figure 6b).
func (r *Result) TranslationOverhead() float64 {
	return stats.Ratio(r.TranslationCycles, r.TotalCycles)
}

// MSHRHitRate returns the fraction of walk requests satisfied by
// coalescing onto an in-flight walk (0 unless walks can overlap, e.g.
// with a shared walker).
func (r *Result) MSHRHitRate() float64 {
	return stats.Ratio(r.MSHRHits, r.MSHRHits+r.Walks)
}

// WalkOverlapRate returns the fraction of performed walks that began
// while another walk was in flight.
func (r *Result) WalkOverlapRate() float64 {
	return stats.Ratio(r.OverlappedWalks, r.Walks)
}

// MeanWalkQueueCycles returns the average slot-wait delay per performed
// walk (contention for the walker's width).
func (r *Result) MeanWalkQueueCycles() float64 {
	return stats.Ratio(r.WalkQueueCycles, r.Walks)
}

// TLBMissRate returns the overall TLB miss rate: the fraction of
// translations that missed both TLB levels and walked (Section IV-A's
// 91.27%).
func (r *Result) TLBMissRate() float64 {
	return stats.Ratio(r.Walks, r.L1TLB.Total())
}

// PTEAccessShare returns the fraction of memory-system requests that
// carry PTEs (Section IV-A's 65.8%).
func (r *Result) PTEAccessShare() float64 {
	return stats.Ratio(r.PTEAccesses, r.PTEAccesses+r.Loads+r.Stores)
}

// L1DataMissRate returns the L1 miss rate of normal data (Figure 7).
func (r *Result) L1DataMissRate() float64 { return r.L1Data.MissRate() }

// L1PTEMissRate returns the L1 miss rate of metadata (Figure 7); 0 when
// PTEs bypass the L1.
func (r *Result) L1PTEMissRate() float64 { return r.L1PTE.MissRate() }

// PWCHitRate returns the hit rate of the level-l page-walk cache.
func (r *Result) PWCHitRate(l addr.Level) float64 {
	hm, ok := r.PWC[l]
	if !ok {
		return 0
	}
	return hm.HitRate()
}

// VictimaHitRate returns the fraction of walker probes of the Victima
// translation-block store that hit (0 unless Mechanism is Victima).
func (r *Result) VictimaHitRate() float64 {
	return stats.Ratio(r.VictimaHits, r.VictimaProbes)
}

// IdentityHitRate returns the fraction of NMT range checks that resolved
// by identity (0 unless Mechanism is NMT).
func (r *Result) IdentityHitRate() float64 {
	return stats.Ratio(r.IdentityHits, r.IdentityHits+r.IdentityMisses)
}

// PCXHitRate returns the PCAX table's hit rate on L1-TLB misses (0
// unless Mechanism is PCAX).
func (r *Result) PCXHitRate() float64 { return r.PCX.HitRate() }

// CPI returns cycles (parallel) per instruction (per core).
func (r *Result) CPI() float64 {
	return stats.Ratio(r.TotalCycles, r.Instructions)
}

// OccupancyRate returns the occupancy of the given table level (Figure 8).
func (r *Result) OccupancyRate(l addr.Level) float64 {
	for _, o := range r.Occupancy {
		if o.Level == l {
			return o.Rate()
		}
	}
	return 0
}
