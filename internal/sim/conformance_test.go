package sim_test

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"ndpage/internal/core"
	"ndpage/internal/memsys"
	"ndpage/internal/sim"
	"ndpage/internal/sweep"
)

// conformanceMechanisms is every selectable mechanism: the paper's
// evaluated set, the NDPage ablation variants, and the related-work
// mechanisms (DESIGN.md "Mechanism zoo"). A mechanism added to
// core.ParseMechanism without joining this list fails
// TestConformanceCoversAllMechanisms.
var conformanceMechanisms = []core.Mechanism{
	core.Radix, core.ECH, core.HugePage, core.NDPage, core.Ideal,
	core.FlattenOnly, core.BypassOnly, core.Victima, core.NMT, core.PCAX,
}

// conformanceCfg is the pinned mini-matrix cell: small enough that the
// full mechanism x MLP matrix runs in seconds (also under -race), large
// enough that every mechanism's machinery engages (TLB misses, walks,
// demand faults in the cold tail).
func conformanceCfg(mech core.Mechanism, mlp int) sim.Config {
	return sim.Config{
		System:         memsys.NDP,
		Cores:          2,
		Mechanism:      mech,
		Workload:       "rnd",
		FootprintBytes: 1 << 30,
		MemoryBytes:    4 << 30,
		Instructions:   4_000,
		Warmup:         500,
		MLP:            mlp,
	}
}

// TestConformanceCoversAllMechanisms pins the matrix to the parseable
// mechanism set, so a new mechanism cannot ship without conformance
// coverage.
func TestConformanceCoversAllMechanisms(t *testing.T) {
	covered := map[core.Mechanism]bool{}
	for _, m := range conformanceMechanisms {
		covered[m] = true
	}
	for _, m := range conformanceMechanisms {
		if _, err := core.ParseMechanism(m.String()); err != nil {
			t.Errorf("conformance mechanism %s is not parseable: %v", m, err)
		}
	}
	// Every named mechanism parses back to itself; probe the namespace
	// by round-tripping the String of a generous enum range.
	for i := 0; i < 64; i++ {
		m := core.Mechanism(i)
		parsed, err := core.ParseMechanism(m.String())
		if err != nil {
			continue // not a real mechanism (String falls back)
		}
		if parsed == m && !covered[m] {
			t.Errorf("mechanism %s is selectable but not in the conformance matrix", m)
		}
	}
}

// TestConformanceMatrix runs every mechanism under both core models and
// asserts the cross-mechanism invariants: translation counts match the
// issued memory ops, derived rates are finite fractions, the sim.Result
// survives a JSON round trip, and a same-seed rerun is cycle-identical.
func TestConformanceMatrix(t *testing.T) {
	for _, mech := range conformanceMechanisms {
		for _, mlp := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/mlp%d", mech, mlp), func(t *testing.T) {
				cfg := conformanceCfg(mech, mlp)
				m, err := sim.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res := m.Run()

				if res.Instructions == 0 || res.Loads+res.Stores == 0 {
					t.Fatalf("empty window: %d instructions, %d loads, %d stores",
						res.Instructions, res.Loads, res.Stores)
				}
				// Every measured load/store translated exactly once
				// (TranslateCode is counted separately).
				var translations uint64
				for i := 0; i < cfg.Normalize().Cores; i++ {
					translations += m.MMU(i).Stats().Translations.Value()
				}
				if translations != res.Loads+res.Stores {
					t.Errorf("translations = %d, want loads+stores = %d",
						translations, res.Loads+res.Stores)
				}

				for name, rate := range map[string]float64{
					"TLBMissRate":     res.TLBMissRate(),
					"L1TLB miss":      res.L1TLB.MissRate(),
					"L2TLB miss":      res.L2TLB.MissRate(),
					"L1DataMissRate":  res.L1DataMissRate(),
					"L1PTEMissRate":   res.L1PTEMissRate(),
					"PTEAccessShare":  res.PTEAccessShare(),
					"MSHRHitRate":     res.MSHRHitRate(),
					"WalkOverlapRate": res.WalkOverlapRate(),
					"VictimaHitRate":  res.VictimaHitRate(),
					"IdentityHitRate": res.IdentityHitRate(),
					"PCXHitRate":      res.PCXHitRate(),
				} {
					if rate < 0 || rate > 1 || rate != rate {
						t.Errorf("%s = %v, want a fraction in [0, 1]", name, rate)
					}
				}
				// Per-op translation cycles overlap under MLP > 1, so the
				// overhead is a ratio, not a fraction — but always finite
				// and non-negative.
				if ov := res.TranslationOverhead(); ov < 0 || ov != ov {
					t.Errorf("TranslationOverhead = %v, want finite and non-negative", ov)
				}

				// Mechanism-specific machinery engages exactly under its
				// mechanism.
				switch mech {
				case core.Victima:
					if res.VictimaProbes == 0 {
						t.Error("Victima ran but the store saw no probes")
					}
				case core.NMT:
					if res.IdentityHits+res.IdentityMisses == 0 {
						t.Error("NMT ran but no identity range checks happened")
					}
				case core.PCAX:
					if res.PCX.Total() == 0 {
						t.Error("PCAX ran but the PC-indexed table saw no probes")
					}
				default:
					if res.VictimaProbes != 0 || res.IdentityHits+res.IdentityMisses != 0 || res.PCX.Total() != 0 {
						t.Errorf("%s leaked mechanism-specific activity: victima=%d identity=%d pcx=%d",
							mech, res.VictimaProbes, res.IdentityHits+res.IdentityMisses, res.PCX.Total())
					}
				}

				// sim.Result survives a JSON round trip (the sweep cache's
				// storage format).
				b, err := json.Marshal(res)
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				var back sim.Result
				if err := json.Unmarshal(b, &back); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				if !reflect.DeepEqual(*res, back) {
					t.Error("sim.Result did not survive a JSON round trip")
				}

				// Same-seed determinism: an identical machine reproduces
				// the run bit for bit.
				m2, err := sim.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res2 := m2.Run()
				b2, err := json.Marshal(res2)
				if err != nil {
					t.Fatalf("marshal rerun: %v", err)
				}
				if string(b) != string(b2) {
					t.Errorf("same-seed rerun diverged (%d vs %d cycles)", res.Cycles, res2.Cycles)
				}
			})
		}
	}
}

// TestConformanceSharded runs the whole mechanism matrix through the
// sharded replication runner at two shard counts and asserts the
// results are identical: the execution schedule must not leak into the
// simulated timing.
func TestConformanceSharded(t *testing.T) {
	var cfgs []sim.Config
	for _, mech := range conformanceMechanisms {
		cfgs = append(cfgs, conformanceCfg(mech, 2))
	}
	runAt := func(shards int) []*sim.Result {
		r := &sweep.Runner{Store: sweep.NewMemStore()}
		out, err := r.RunSharded(context.Background(), cfgs, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return out
	}
	one, four := runAt(1), runAt(4)
	for i := range cfgs {
		a, _ := json.Marshal(one[i])
		b, _ := json.Marshal(four[i])
		if string(a) != string(b) {
			t.Errorf("%s: results differ between 1 and 4 shards", cfgs[i].Desc())
		}
	}
}
