package sim

import (
	"testing"

	"ndpage/internal/core"
	"ndpage/internal/memsys"
)

// mlpCfg is the acceptance configuration: 4 cores, shared width-2
// walker, non-blocking front-ends.
func mlpCfg(mlp int) Config {
	cfg := testCfg(memsys.NDP, 4, core.Radix, "rnd")
	cfg.SharedWalker = true
	cfg.WalkerWidth = 2
	cfg.MLP = mlp
	return cfg
}

func TestMLPDefaultsToBlocking(t *testing.T) {
	cfg := testCfg(memsys.NDP, 1, core.Radix, "rnd")
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Config().MLP; got != 1 {
		t.Errorf("defaulted MLP = %d, want 1", got)
	}
	r := m.Run()
	// The blocking histogram is all-solo.
	if len(r.InFlightHist) != 2 || r.InFlightHist[1] != r.Loads+r.Stores {
		t.Errorf("blocking InFlightHist = %v, want [0 %d]", r.InFlightHist, r.Loads+r.Stores)
	}
	if got := r.MeanInFlight(); got != 1 {
		t.Errorf("blocking MeanInFlight = %v, want 1", got)
	}
}

func TestMLPOutOfRangeRejected(t *testing.T) {
	for _, mlp := range []int{-1, 65} {
		cfg := testCfg(memsys.NDP, 1, core.Radix, "rnd")
		cfg.MLP = mlp
		if _, err := New(cfg); err == nil {
			t.Errorf("MLP=%d accepted", mlp)
		}
	}
}

// TestMLPOverlapEmerges is the acceptance criterion: with MLP=4 over a
// shared width-2 walker, walks overlap, queue on real slots, coalesce in
// the MSHRs, and the window histogram shows multi-op occupancy.
func TestMLPOverlapEmerges(t *testing.T) {
	r := run(t, mlpCfg(4))
	if r.OverlappedWalks == 0 {
		t.Error("MLP=4 shared walker recorded no overlapped walks")
	}
	if r.QueuedWalks == 0 {
		t.Error("width-2 walker under MLP=4 never queued a walk")
	}
	if r.MSHRHits == 0 {
		t.Error("no MSHR coalescing under MLP=4 (duplicate in-window pages expected)")
	}
	if r.MaxConcurrentWalks < 2 {
		t.Errorf("peak concurrent walks %d, want >= 2", r.MaxConcurrentWalks)
	}
	// Window occupancy beyond 1 must appear...
	deep := uint64(0)
	for k := 2; k < len(r.InFlightHist); k++ {
		deep += r.InFlightHist[k]
	}
	if deep == 0 {
		t.Errorf("InFlightHist %v shows no multi-op occupancy", r.InFlightHist)
	}
	// ...and never exceed the window.
	if len(r.InFlightHist) > 5 {
		t.Errorf("InFlightHist %v exceeds MLP=4 window", r.InFlightHist)
	}
	if mean := r.MeanInFlight(); mean <= 1 || mean > 4 {
		t.Errorf("MeanInFlight = %.2f, want in (1, 4]", mean)
	}
}

// TestMLPImprovesRunTime: overlapping memory ops must not slow the
// simulated workload down; GUPS-style independent accesses should gain.
func TestMLPImprovesRunTime(t *testing.T) {
	blocking := run(t, mlpCfg(1))
	overlapped := run(t, mlpCfg(4))
	if overlapped.Cycles >= blocking.Cycles {
		t.Errorf("MLP=4 (%d cycles) not faster than blocking (%d cycles)",
			overlapped.Cycles, blocking.Cycles)
	}
	if blocking.Instructions != overlapped.Instructions {
		t.Errorf("instruction budgets differ: %d vs %d",
			blocking.Instructions, overlapped.Instructions)
	}
}

// TestMLPCountersConsistent: the non-blocking model keeps the
// accounting identities that hold per-op (budgets, op counts); cycle
// attribution sums may exceed wall-clock because components overlap.
func TestMLPCountersConsistent(t *testing.T) {
	cfg := mlpCfg(4)
	r := run(t, cfg)
	if r.Instructions != uint64(cfg.Cores)*cfg.Instructions {
		t.Errorf("instructions = %d, want %d", r.Instructions, uint64(cfg.Cores)*cfg.Instructions)
	}
	if r.Loads == 0 || r.Stores == 0 {
		t.Error("no memory ops recorded")
	}
	if r.Cycles == 0 || r.TotalCycles < r.Cycles {
		t.Errorf("cycles inconsistent: max %d total %d", r.Cycles, r.TotalCycles)
	}
	var issues uint64
	for _, v := range r.InFlightHist {
		issues += v
	}
	if issues != r.Loads+r.Stores {
		t.Errorf("histogram mass %d != memory ops %d", issues, r.Loads+r.Stores)
	}
	var walkStarts uint64
	for _, v := range r.WalkOverlapHist {
		walkStarts += v
	}
	if walkStarts != r.Walks {
		t.Errorf("walk-overlap histogram mass %d != walks %d", walkStarts, r.Walks)
	}
}

// TestMLPPrivateWalkerAlsoOverlaps: even without a shared walker, a
// non-blocking core overlaps its own walks on its private unit when the
// width allows, and queues them at width 1.
func TestMLPPrivateWalkerAlsoOverlaps(t *testing.T) {
	cfg := testCfg(memsys.NDP, 2, core.Radix, "rnd")
	cfg.MLP = 4
	r := run(t, cfg) // private width-1 walkers
	if r.QueuedWalks == 0 {
		t.Error("MLP=4 over width-1 private walkers never queued")
	}
	if r.OverlappedWalks != 0 {
		t.Errorf("width-1 walker overlapped %d walks", r.OverlappedWalks)
	}

	cfg.WalkerWidth = 4
	rw := run(t, cfg)
	if rw.OverlappedWalks == 0 {
		t.Error("MLP=4 over width-4 private walkers never overlapped")
	}
}

// TestMLPWorksAcrossMechanisms: every translation mechanism runs under
// the non-blocking front-end.
func TestMLPWorksAcrossMechanisms(t *testing.T) {
	for _, mech := range core.Mechanisms {
		cfg := testCfg(memsys.NDP, 2, mech, "rnd")
		cfg.MLP = 4
		cfg.Warmup, cfg.Instructions = 2_000, 6_000
		r := run(t, cfg)
		if r.Instructions != uint64(cfg.Cores)*cfg.Instructions {
			t.Errorf("%v: ran %d instructions, want %d", mech,
				r.Instructions, uint64(cfg.Cores)*cfg.Instructions)
		}
	}
}

// TestFragHolesDefault pins the documented default: 800 holes on 16 GB,
// scaled linearly with memory size (the FragHoles doc/code mismatch fix).
func TestFragHolesDefault(t *testing.T) {
	cfg := Config{MemoryBytes: 16 << 30}.Normalize()
	if cfg.FragHoles != 800 {
		t.Errorf("16 GB default FragHoles = %d, want 800", cfg.FragHoles)
	}
	cfg = Config{MemoryBytes: 4 << 30}.Normalize()
	if cfg.FragHoles != 200 {
		t.Errorf("4 GB default FragHoles = %d, want 200", cfg.FragHoles)
	}
	cfg = Config{}.Normalize() // MemoryBytes defaults to 16 GB
	if cfg.FragHoles != 800 {
		t.Errorf("all-defaults FragHoles = %d, want 800", cfg.FragHoles)
	}
}
