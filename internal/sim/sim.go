// Package sim is the trace-driven, cycle-approximate multicore simulator:
// cores execute workload op streams through per-core MMUs and the shared
// memory hierarchy on a discrete-event engine (internal/engine), so
// cross-core queueing in DRAM banks, channel buses, and the mesh emerges
// naturally from the schedule.
//
// Two core models share the engine:
//
//   - Config.MLP = 1 (default) is the in-order blocking core: each op
//     runs to completion inside one event and the core's next event is
//     scheduled at the op's completion. Event dispatch order
//     (time, core, seq) reproduces the old per-step min-clock scan
//     exactly, so blocking timing is bit-identical to the step-driven
//     engine it replaced — without the O(cores) scan per instruction.
//
//   - Config.MLP > 1 is the non-blocking front-end: a core may keep up
//     to MLP loads/stores in flight. Translation becomes a
//     request/completion pair on the engine (MMU.TranslateAsync), walks
//     contend for real walker slots, the data access issues inside the
//     translation's completion event, and a window-release event retires
//     each op. The front-end stalls only on faults, compute bursts, and
//     a full window.
//
// One simulation = one machine (CPU or NDP, Table I), one translation
// mechanism, one multithreaded workload sharing an address space across
// cores (the paper's methodology: 500M instructions per core; this
// reproduction's instruction budget is configurable and defaults far
// smaller — rates converge quickly at scaled footprints).
package sim

import (
	"fmt"

	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/core"
	"ndpage/internal/engine"
	"ndpage/internal/memsys"
	"ndpage/internal/osmm"
	"ndpage/internal/phys"
	"ndpage/internal/workload"
	"ndpage/internal/xrand"
)

// Config describes one simulation run.
type Config struct {
	System    memsys.Kind
	Cores     int
	Mechanism core.Mechanism
	// Workload names the op-stream source: a Table II benchmark
	// (workload.Names), a registered workload (workload.Register), or
	// "trace:<path>" to replay a captured op stream (see ndptrace and
	// WORKLOADS.md).
	Workload string
	// FootprintBytes is the shared dataset budget. Zero selects the
	// core-count-scaled default ((19+cores)/2 GB: 10 GB at 1 core up to
	// 13.5 GB at 8), mirroring the paper's "workload scale grows with
	// the number of cores". Footprints must comfortably exceed both TLB
	// reach and the L1's ability to cache upper-level PTEs for the
	// paper's regime to appear.
	FootprintBytes uint64
	// MemoryBytes is physical memory (Table I: 16 GB).
	MemoryBytes uint64
	// FragHoles scatters single-frame background allocations that break
	// up 2 MB contiguity before the workload starts. Zero selects the
	// default of 800 holes on a 16 GB machine — damaging up to ~10% of
	// its 8192 2 MB blocks — scaled linearly with MemoryBytes.
	FragHoles int
	// Warmup and Instructions are per-core op budgets; statistics reset
	// after warmup. Zeros select defaults (30k warmup, 300k measured).
	Warmup       uint64
	Instructions uint64
	// FetchEvery models one instruction fetch per N ops through the
	// ITLB/L1I (0 selects the default of 8).
	FetchEvery int
	Seed       uint64

	// Sensitivity knobs (DESIGN.md Section 5). Zero values are the
	// paper configuration.

	// DisablePWC removes the page-walk caches.
	DisablePWC bool
	// HBMChannels overrides the NDP memory channel count (0 = default).
	HBMChannels int
	// DemandPaging disables eager dataset population: every page faults
	// on first touch inside the window.
	DemandPaging bool
	// ResidentLimitBytes caps resident memory, modelling datasets larger
	// than DRAM (the paper's GenomicsBench is 33 GB against 16 GB):
	// beyond it, faults reclaim the oldest 2 MB chunks, so cold data
	// re-faults. Zero disables (default).
	ResidentLimitBytes uint64
	// ECHWayPrediction equips ECH walkers with the original ECH paper's
	// cuckoo-walk cache (way prediction), cutting most walks from d
	// probes to one. Off by default to match the NDPage paper's ECH
	// baseline.
	ECHWayPrediction bool
	// WalkerWidth sets the number of concurrent walk slots per walker
	// (0 = 1, the conventional blocking walker). Widths above 1 only
	// matter when walks can actually overlap — with SharedWalker, or on
	// a non-blocking core (MLP > 1); Validate rejects the inert
	// remainder.
	WalkerWidth int
	// SharedWalker serves every core's TLB misses from one
	// cluster-level walk unit (walker + page-walk caches) instead of a
	// private unit per MMU. Concurrent walks then contend for the
	// walker's slots and duplicate walks coalesce in its MSHRs — the
	// walker-width sensitivity study's configuration.
	SharedWalker bool
	// MLP is the per-core memory-level-parallelism window: how many
	// loads/stores one core may have in flight. 0 or 1 (the default)
	// models the conventional in-order blocking core and reproduces the
	// pre-engine step-driven timing bit for bit. Values above 1 switch
	// the core to a non-blocking front-end whose translations and data
	// accesses overlap on the event engine — the regime where walker
	// slots contend, MSHRs coalesce, and the in-flight histograms in
	// Result fill out.
	MLP int

	// Mechanism-specific knobs (DESIGN.md "Mechanism zoo"). Each is
	// meaningful only under its mechanism; Validate rejects the inert
	// combinations.

	// VictimaGate is Victima's TLB-miss-predictor threshold: a
	// translation block is admitted into the last-level cache after this
	// many walks have demanded it. Zero selects the default of 2 when
	// Mechanism is Victima.
	VictimaGate int
	// IdentityPromote extends NMT's identity segments to demand-faulted
	// chunks: without it only eagerly-populated chunks are covered, so
	// under DemandPaging the mechanism would cover nothing (Validate
	// rejects that combination).
	IdentityPromote bool
	// PCXEntries sizes PCAX's PC-indexed translation table. Zero selects
	// the default of 512 entries (4-way) when Mechanism is PCAX.
	PCXEntries int
}

// Machine is an assembled simulation ready to run.
type Machine struct {
	cfg    Config
	alloc  *phys.Allocator
	hier   *memsys.Hierarchy
	space  *osmm.AddressSpace
	eng    *engine.Engine
	cores  []*simCore
	target uint64 // per-core instruction budget of the current phase
	// opFree heads the free list of pooled in-flight memory-op records
	// (MLP > 1), so issuing a load/store allocates nothing in steady
	// state.
	opFree *memOp
}

// Event kinds delivered to a simCore (engine.Actor). The front-end
// event carries no payload; the completion event's time is the op's
// completion, delivered as the event's `now`.
const (
	evFrontEnd  uint8 = iota // run the core's front-end (stepEvent or issueStaged)
	evMemOpDone              // retire one in-flight memory op (MLP > 1)
)

// simCore is one simulated core: its op stream, MMU, and local clock.
// The clock is the front-end's time; with MLP > 1 completions of
// in-flight ops may trail it (maxDone tracks the latest). The core is
// an engine.Actor: its front-end and op-retirement events are typed
// (kind, payload) pairs, so the per-instruction path schedules without
// allocating.
type simCore struct {
	id    int
	m     *Machine
	clock uint64
	gen   workload.Generator
	mmu   *core.MMU
	op    workload.Op

	codeBase addr.V
	codePos  uint64
	fetchCnt int

	// Non-blocking front-end state (Config.MLP > 1). The staged issue
	// pipeline (issueStaged) resumes at stage after fault reschedules;
	// stalled marks a front-end waiting for a window slot.
	inFlight int
	opValid  bool
	stage    int
	stalled  bool
	fetchDue bool
	fetchVA  addr.V
	maxDone  uint64

	// measurement-window counters
	start             uint64
	instructions      uint64
	loads, stores     uint64
	computeCycles     uint64
	translationCycles uint64
	dataCycles        uint64
	faultCycles       uint64
	// windowHist[k] counts memory-op issues that brought the in-flight
	// window to k ops (index 0 unused; MLP > 1 only — the blocking
	// model's histogram is synthesized at collection).
	windowHist []uint64
}

// codeBytes is the per-core instruction footprint (a loop of a few pages).
const codeBytes = 16 << 10

// New builds the machine: physical memory with background fragmentation,
// the memory hierarchy, the shared address space with the mechanism's
// page table, the workload dataset, and one MMU + op stream per core.
func New(cfg Config) (*Machine, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, err := workload.Lookup(cfg.Workload)
	if err != nil {
		return nil, err
	}

	alloc := phys.New(cfg.MemoryBytes)
	rng := xrand.New(cfg.Seed)
	alloc.InjectFragmentation(rng, cfg.FragHoles, 1)

	mcfg := memsys.Default(cfg.System, cfg.Cores)
	mcfg.BypassL1PTE = cfg.Mechanism.BypassL1PTE()
	mcfg.VictimaGate = cfg.VictimaGate // nonzero only under Victima (Validate)
	if cfg.HBMChannels > 0 {
		mcfg.DRAM.Channels = cfg.HBMChannels
	}
	hier := memsys.New(mcfg)

	table := cfg.Mechanism.NewTable(alloc)
	oscfg := osmm.DefaultConfig(cfg.Mechanism.Policy(), alloc.TotalFrames())
	// Datasets are ~97.5% resident when the window opens; the remaining
	// chunks fault on first touch inside the window (cold-start tail).
	oscfg.HoleFraction = 0.025
	oscfg.HoleSeed = cfg.Seed * 7919
	oscfg.DemandPaging = cfg.DemandPaging
	oscfg.ResidentLimitFrames = cfg.ResidentLimitBytes / addr.PageSize
	oscfg.IdentityMap = cfg.Mechanism == core.NMT
	oscfg.IdentityPromote = cfg.IdentityPromote
	space := osmm.New(table, alloc, oscfg)

	w := spec.New()
	w.Init(space, rng, cfg.FootprintBytes, cfg.Cores)

	m := &Machine{cfg: cfg, alloc: alloc, hier: hier, space: space, eng: engine.New()}
	opts := core.Options{
		DisablePWC:       cfg.DisablePWC,
		ECHWayPrediction: cfg.ECHWayPrediction,
		WalkerWidth:      cfg.WalkerWidth,
		PCXEntries:       cfg.PCXEntries, // nonzero only under PCAX (Validate)
	}
	if cfg.Mechanism == core.NMT {
		opts.Identity = space
	}
	if cfg.SharedWalker {
		opts.SharedUnit = core.NewWalkUnit(cfg.Mechanism, table, hier, opts)
	}
	for i := 0; i < cfg.Cores; i++ {
		c := &simCore{
			id:       i,
			m:        m,
			gen:      w.Thread(i, cfg.Seed*1_000_003+uint64(i)),
			mmu:      core.NewMMUWithOptions(cfg.Mechanism, i, table, hier, opts),
			codeBase: space.Alloc(codeBytes, fmt.Sprintf("code.%d", i)),
		}
		m.cores = append(m.cores, c)
	}
	return m, nil
}

// OnEvent implements engine.Actor: route the core's typed events.
func (c *simCore) OnEvent(now uint64, kind uint8, payload uint64) {
	switch kind {
	case evFrontEnd:
		if c.m.cfg.MLP == 1 {
			c.m.stepEvent(c)
		} else {
			c.m.issueStaged(c)
		}
	case evMemOpDone:
		c.m.completeMemOp(c, now)
	default:
		panic(fmt.Sprintf("sim: unknown event kind %d", kind))
	}
}

// Config returns the (defaults-resolved) configuration.
func (m *Machine) Config() Config { return m.cfg }

// Space returns the shared address space (tests and tools).
func (m *Machine) Space() *osmm.AddressSpace { return m.space }

// Hierarchy returns the memory system (tests and tools).
func (m *Machine) Hierarchy() *memsys.Hierarchy { return m.hier }

// Allocator returns the physical allocator (tests and tools).
func (m *Machine) Allocator() *phys.Allocator { return m.alloc }

// MMU returns core i's MMU (tests and tools).
func (m *Machine) MMU(i int) *core.MMU { return m.cores[i].mmu }

// step executes one op on core c to completion: the blocking core model
// (Config.MLP = 1). The whole op — fetch, faults, translation, data
// access — runs inside the current event, and the caller schedules the
// core's next event at the updated clock, which reproduces the
// pre-engine min-clock step loop bit for bit. Kept as the one-op
// reference semantics behind stepEvent's compute-run fusion (and used
// directly by tests).
func (m *Machine) step(c *simCore) {
	c.gen.Next(&c.op)
	c.instructions++
	switch c.op.Kind {
	case workload.Compute:
		c.clock += uint64(c.op.Cycles)
		c.computeCycles += uint64(c.op.Cycles)
		return
	case workload.Load, workload.Store:
	default:
		panic(fmt.Sprintf("sim: unknown op kind %d", c.op.Kind))
	}
	m.stepMem(c)
}

// stepMem executes the memory op already decoded into c.op: fetch
// bookkeeping, demand faults, translation, and the data access.
func (m *Machine) stepMem(c *simCore) {
	// Instruction fetch: every FetchEvery-th op walks the code region
	// through the ITLB/L1I (overlapped with the pipeline: structure
	// activity, no cycle charge).
	c.fetchCnt++
	if c.fetchCnt >= m.cfg.FetchEvery {
		c.fetchCnt = 0
		va := c.codeBase + addr.V(c.codePos)
		c.codePos = (c.codePos + addr.LineSize) % codeBytes
		if cost := m.space.Touch(va); cost > 0 {
			c.clock += cost
			c.faultCycles += cost
		}
		pa := c.mmu.TranslateCode(va)
		m.hier.Access(c.id, c.clock, pa, access.Read, access.Code)
	}

	v := c.op.Addr
	op := access.Read
	if c.op.Kind == workload.Store {
		op = access.Write
		c.stores++
	} else {
		c.loads++
	}

	// OS demand paging resolves before the hardware retry of the access.
	if cost := m.space.Touch(v); cost > 0 {
		c.clock += cost
		c.faultCycles += cost
	}

	// Address translation (the op's PC feeds PCAX; others ignore it).
	pa, tEnd := c.mmu.TranslatePC(c.clock, v, op, c.op.PC)
	c.translationCycles += tEnd - c.clock
	c.clock = tEnd

	// The data access itself.
	done := m.hier.Access(c.id, c.clock, pa, op, access.Data)
	c.dataCycles += done - c.clock
	c.clock = done
}

// run advances all cores to the target instruction count (per core) on
// the event engine. Cores seed the queue at their local clocks; the
// engine's (time, core, seq) dispatch order interleaves them in global
// time order. The phase ends when the queue drains: every core has
// issued its budget and (MLP > 1) retired its in-flight window.
func (m *Machine) run(target uint64) {
	m.target = target
	m.eng.Rewind() // cores may re-enter before the last phase's horizon
	for _, c := range m.cores {
		if c.instructions < target {
			m.scheduleFrontEnd(c, c.clock)
		}
	}
	m.eng.Run()
	for _, c := range m.cores {
		// Drain: a non-blocking core is done when its last in-flight op
		// retires, which may trail the front-end clock.
		if c.clock < c.maxDone {
			c.clock = c.maxDone
		}
	}
}

// scheduleFrontEnd schedules core c's next front-end event at time t.
func (m *Machine) scheduleFrontEnd(c *simCore, t uint64) {
	m.eng.Schedule(t, c.id, c, evFrontEnd, 0)
}

// stepEvent is the blocking model's event. It executes the memory op
// this event was scheduled for (if one is pending), then decodes ahead:
// runs of compute ops execute inline — a compute op touches only the
// core's private clock and counters, so its standalone event was pure
// front-end bookkeeping no other actor could observe — and the next
// memory op is deferred to a fresh event at exactly the dispatch time
// the unfused schedule gave it. Every shared-structure access therefore
// keeps its pre-fusion (time, core) dispatch slot while the engine
// round-trips for compute ops disappear. c.opValid marks the deferred
// op between the two events (the staged MLP > 1 front-end owns the same
// flag; the paths are mutually exclusive per configuration).
func (m *Machine) stepEvent(c *simCore) {
	if c.opValid {
		c.opValid = false
		m.stepMem(c)
	}
	for c.instructions < m.target {
		c.gen.Next(&c.op)
		c.instructions++
		switch c.op.Kind {
		case workload.Compute:
			c.clock += uint64(c.op.Cycles)
			c.computeCycles += uint64(c.op.Cycles)
		case workload.Load, workload.Store:
			c.opValid = true
			m.eng.Schedule(c.clock, c.id, c, evFrontEnd, 0)
			return
		default:
			panic(fmt.Sprintf("sim: unknown op kind %d", c.op.Kind))
		}
	}
}

// Stages of the non-blocking front-end's per-op pipeline. A stage that
// advances the clock (a fault, a compute burst) reschedules the
// front-end at the new time so other actors' earlier events dispatch
// first and every memory-system request is issued in global time order.
const (
	stFetch       = iota // fetch bookkeeping + code-side demand fault
	stFetchAccess        // code fetch through the ITLB/L1I
	stDataFault          // data-side demand fault
	stIssue              // translation request + data access issue
)

// issueStaged is the non-blocking front-end (Config.MLP > 1): decode and
// issue ops until the window fills, the op stream needs sim time
// (compute, faults), or the phase budget is reached. Memory ops enter
// the window and complete via engine events; the front-end does not wait
// for them unless the window is full.
func (m *Machine) issueStaged(c *simCore) {
	for {
		if !c.opValid {
			if c.instructions >= m.target {
				return // issued everything; completions drain the window
			}
			c.gen.Next(&c.op)
			c.instructions++
			c.opValid = true
			c.stage = stFetch
		}
		switch c.op.Kind {
		case workload.Compute:
			c.opValid = false
			c.clock += uint64(c.op.Cycles)
			c.computeCycles += uint64(c.op.Cycles)
			m.scheduleFrontEnd(c, c.clock)
			return
		case workload.Load, workload.Store:
		default:
			panic(fmt.Sprintf("sim: unknown op kind %d", c.op.Kind))
		}
		if c.stage == stFetch {
			c.stage = stFetchAccess
			c.fetchDue = false
			c.fetchCnt++
			if c.fetchCnt >= m.cfg.FetchEvery {
				c.fetchCnt = 0
				c.fetchDue = true
				c.fetchVA = c.codeBase + addr.V(c.codePos)
				c.codePos = (c.codePos + addr.LineSize) % codeBytes
				if cost := m.space.Touch(c.fetchVA); cost > 0 {
					c.clock += cost
					c.faultCycles += cost
					m.scheduleFrontEnd(c, c.clock)
					return
				}
			}
		}
		if c.stage == stFetchAccess {
			c.stage = stDataFault
			if c.fetchDue {
				pa := c.mmu.TranslateCode(c.fetchVA)
				m.hier.Access(c.id, c.clock, pa, access.Read, access.Code)
			}
		}
		if c.stage == stDataFault {
			c.stage = stIssue
			if cost := m.space.Touch(c.op.Addr); cost > 0 {
				c.clock += cost
				c.faultCycles += cost
				m.scheduleFrontEnd(c, c.clock)
				return
			}
		}
		// stIssue: the op needs a window slot.
		if c.inFlight >= m.cfg.MLP {
			c.stalled = true
			return // a completion event resumes the front-end
		}
		v := c.op.Addr
		op := access.Read
		if c.op.Kind == workload.Store {
			op = access.Write
			c.stores++
		} else {
			c.loads++
		}
		c.opValid = false
		c.inFlight++
		for len(c.windowHist) <= c.inFlight {
			c.windowHist = append(c.windowHist, 0)
		}
		c.windowHist[c.inFlight]++
		m.issueMemOp(c, c.clock, v, op, c.op.PC)
	}
}

// memOp is one in-flight load/store (MLP > 1): the context needed when
// its translation completes. Records are pooled on the machine's free
// list and handed to the MMU as TranslationClients, so issuing an op
// allocates nothing in steady state.
type memOp struct {
	c      *simCore
	issued uint64
	op     access.Op
	next   *memOp
}

var _ core.TranslationClient = (*memOp)(nil)

// OnTranslated implements core.TranslationClient: issue the data access
// at the translation's completion, recycle the record, and schedule the
// window-release event that retires the op.
func (o *memOp) OnTranslated(pa addr.P, at uint64) {
	c := o.c
	m := c.m
	c.translationCycles += at - o.issued
	done := m.hier.Access(c.id, at, pa, o.op, access.Data)
	c.dataCycles += done - at
	m.putMemOp(o)
	m.eng.Schedule(done, c.id, c, evMemOpDone, 0)
}

// getMemOp takes a pooled op record (or grows the pool).
func (m *Machine) getMemOp(c *simCore, issued uint64, op access.Op) *memOp {
	o := m.opFree
	if o == nil {
		o = &memOp{}
	} else {
		m.opFree = o.next
	}
	o.c, o.issued, o.op, o.next = c, issued, op, nil
	return o
}

// putMemOp returns a retired record to the free list.
func (m *Machine) putMemOp(o *memOp) {
	o.c = nil
	o.next = m.opFree
	m.opFree = o
}

// issueMemOp sends one load/store down the translation+access pipeline:
// the translation completes as an engine event (inline for TLB hits),
// the data access issues inside that completion, and a window-release
// event retires the op.
func (m *Machine) issueMemOp(c *simCore, issued uint64, v addr.V, op access.Op, pc uint64) {
	c.mmu.TranslateAsyncPC(m.eng, issued, v, op, pc, m.getMemOp(c, issued, op))
}

// completeMemOp retires one in-flight op at time done and resumes a
// front-end that stalled on the full window.
func (m *Machine) completeMemOp(c *simCore, done uint64) {
	c.inFlight--
	if done > c.maxDone {
		c.maxDone = done
	}
	if c.stalled {
		c.stalled = false
		// Remaining completion events are no earlier than this one, so
		// the stalled front-end resumes exactly when its slot freed.
		if done > c.clock {
			c.clock = done
		}
		m.issueStaged(c)
	}
}

// resetStats zeroes every statistic at the warmup/measurement boundary.
func (m *Machine) resetStats() {
	m.hier.ResetStats()
	m.space.ResetFaultStats()
	for _, c := range m.cores {
		c.mmu.ResetStats()
		c.start = c.clock
		c.instructions = 0
		c.loads, c.stores = 0, 0
		c.computeCycles = 0
		c.translationCycles = 0
		c.dataCycles = 0
		c.faultCycles = 0
		for i := range c.windowHist {
			c.windowHist[i] = 0
		}
	}
}

// Run executes warmup, resets statistics, executes the measurement
// window, and collects results.
func (m *Machine) Run() *Result {
	m.run(m.cfg.Warmup)
	m.resetStats() // zeroes per-core instruction counters too
	m.run(m.cfg.Instructions)
	return m.collect()
}

// RunConfig builds a machine from cfg and runs it.
func RunConfig(cfg Config) (*Result, error) {
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(), nil
}
