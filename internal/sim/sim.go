// Package sim is the trace-driven, cycle-approximate multicore simulator:
// in-order blocking cores execute workload op streams through per-core
// MMUs and the shared memory hierarchy, interleaved in global time order
// (the core with the smallest local clock steps next), so cross-core
// queueing in DRAM banks, channel buses, and the mesh emerges naturally.
//
// One simulation = one machine (CPU or NDP, Table I), one translation
// mechanism, one multithreaded workload sharing an address space across
// cores (the paper's methodology: 500M instructions per core; this
// reproduction's instruction budget is configurable and defaults far
// smaller — rates converge quickly at scaled footprints).
package sim

import (
	"fmt"

	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/core"
	"ndpage/internal/memsys"
	"ndpage/internal/osmm"
	"ndpage/internal/phys"
	"ndpage/internal/workload"
	"ndpage/internal/xrand"
)

// Config describes one simulation run.
type Config struct {
	System    memsys.Kind
	Cores     int
	Mechanism core.Mechanism
	// Workload names a Table II benchmark (see workload.Names).
	Workload string
	// FootprintBytes is the shared dataset budget. Zero selects the
	// core-count-scaled default ((5+cores) GB), mirroring the paper's
	// "workload scale grows with the number of cores". Footprints must
	// comfortably exceed both TLB reach and the L1's ability to cache
	// upper-level PTEs for the paper's regime to appear.
	FootprintBytes uint64
	// MemoryBytes is physical memory (Table I: 16 GB).
	MemoryBytes uint64
	// FragHoles scatters single-frame background allocations that break
	// up 2 MB contiguity before the workload starts. Zero selects the
	// default (3700 holes ~ 36% of blocks damaged on 16 GB).
	FragHoles int
	// Warmup and Instructions are per-core op budgets; statistics reset
	// after warmup. Zeros select defaults (60k warmup, 240k measured).
	Warmup       uint64
	Instructions uint64
	// FetchEvery models one instruction fetch per N ops through the
	// ITLB/L1I (0 selects the default of 8).
	FetchEvery int
	Seed       uint64

	// Sensitivity knobs (DESIGN.md Section 5). Zero values are the
	// paper configuration.

	// DisablePWC removes the page-walk caches.
	DisablePWC bool
	// HBMChannels overrides the NDP memory channel count (0 = default).
	HBMChannels int
	// DemandPaging disables eager dataset population: every page faults
	// on first touch inside the window.
	DemandPaging bool
	// ResidentLimitBytes caps resident memory, modelling datasets larger
	// than DRAM (the paper's GenomicsBench is 33 GB against 16 GB):
	// beyond it, faults reclaim the oldest 2 MB chunks, so cold data
	// re-faults. Zero disables (default).
	ResidentLimitBytes uint64
	// ECHWayPrediction equips ECH walkers with the original ECH paper's
	// cuckoo-walk cache (way prediction), cutting most walks from d
	// probes to one. Off by default to match the NDPage paper's ECH
	// baseline.
	ECHWayPrediction bool
	// WalkerWidth sets the number of concurrent walk slots per walker
	// (0 = 1, the conventional blocking walker). Widths above 1 only
	// matter when walks can actually overlap, i.e. with SharedWalker.
	WalkerWidth int
	// SharedWalker serves every core's TLB misses from one
	// cluster-level walk unit (walker + page-walk caches) instead of a
	// private unit per MMU. Concurrent walks then contend for the
	// walker's slots and duplicate walks coalesce in its MSHRs — the
	// walker-width sensitivity study's configuration.
	SharedWalker bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		c.Cores = 1
	}
	if c.FootprintBytes == 0 {
		// 9.5 GB at 1 core up to 13.5 GB at 8 cores: the paper's
		// datasets (8-33 GB) scaled to the 16 GB machine, growing with
		// core count ("as the workload scale and the number of NDP
		// cores increase", Section VII-B).
		c.FootprintBytes = uint64(19+c.Cores) << 29
	}
	if c.MemoryBytes == 0 {
		c.MemoryBytes = 16 << 30
	}
	if c.FragHoles == 0 {
		c.FragHoles = int(800 * (c.MemoryBytes >> 30) / 16)
	}
	if c.Instructions == 0 {
		c.Instructions = 300_000
	}
	if c.Warmup == 0 {
		c.Warmup = 30_000
	}
	if c.FetchEvery == 0 {
		c.FetchEvery = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Machine is an assembled simulation ready to run.
type Machine struct {
	cfg   Config
	alloc *phys.Allocator
	hier  *memsys.Hierarchy
	space *osmm.AddressSpace
	cores []*simCore
}

// simCore is one in-order core: its op stream, MMU, and local clock.
type simCore struct {
	id    int
	clock uint64
	gen   workload.Generator
	mmu   *core.MMU
	op    workload.Op

	codeBase addr.V
	codePos  uint64
	fetchCnt int

	// measurement-window counters
	start             uint64
	instructions      uint64
	loads, stores     uint64
	computeCycles     uint64
	translationCycles uint64
	dataCycles        uint64
	faultCycles       uint64
}

// codeBytes is the per-core instruction footprint (a loop of a few pages).
const codeBytes = 16 << 10

// New builds the machine: physical memory with background fragmentation,
// the memory hierarchy, the shared address space with the mechanism's
// page table, the workload dataset, and one MMU + op stream per core.
func New(cfg Config) (*Machine, error) {
	cfg = cfg.withDefaults()
	spec, err := workload.Lookup(cfg.Workload)
	if err != nil {
		return nil, err
	}
	if cfg.Cores < 1 || cfg.Cores > 64 {
		return nil, fmt.Errorf("sim: core count %d out of range", cfg.Cores)
	}

	alloc := phys.New(cfg.MemoryBytes)
	rng := xrand.New(cfg.Seed)
	alloc.InjectFragmentation(rng, cfg.FragHoles, 1)

	mcfg := memsys.Default(cfg.System, cfg.Cores)
	mcfg.BypassL1PTE = cfg.Mechanism.BypassL1PTE()
	if cfg.HBMChannels > 0 {
		mcfg.DRAM.Channels = cfg.HBMChannels
	}
	hier := memsys.New(mcfg)

	table := cfg.Mechanism.NewTable(alloc)
	oscfg := osmm.DefaultConfig(cfg.Mechanism.Policy(), alloc.TotalFrames())
	// Datasets are ~97.5% resident when the window opens; the remaining
	// chunks fault on first touch inside the window (cold-start tail).
	oscfg.HoleFraction = 0.025
	oscfg.HoleSeed = cfg.Seed * 7919
	oscfg.DemandPaging = cfg.DemandPaging
	oscfg.ResidentLimitFrames = cfg.ResidentLimitBytes / addr.PageSize
	space := osmm.New(table, alloc, oscfg)

	w := spec.New()
	w.Init(space, rng, cfg.FootprintBytes, cfg.Cores)

	m := &Machine{cfg: cfg, alloc: alloc, hier: hier, space: space}
	opts := core.Options{
		DisablePWC:       cfg.DisablePWC,
		ECHWayPrediction: cfg.ECHWayPrediction,
		WalkerWidth:      cfg.WalkerWidth,
	}
	if cfg.SharedWalker {
		opts.SharedUnit = core.NewWalkUnit(cfg.Mechanism, table, hier, opts)
	}
	for i := 0; i < cfg.Cores; i++ {
		c := &simCore{
			id:       i,
			gen:      w.Thread(i, cfg.Seed*1_000_003+uint64(i)),
			mmu:      core.NewMMUWithOptions(cfg.Mechanism, i, table, hier, opts),
			codeBase: space.Alloc(codeBytes, fmt.Sprintf("code.%d", i)),
		}
		m.cores = append(m.cores, c)
	}
	return m, nil
}

// Config returns the (defaults-resolved) configuration.
func (m *Machine) Config() Config { return m.cfg }

// Space returns the shared address space (tests and tools).
func (m *Machine) Space() *osmm.AddressSpace { return m.space }

// Hierarchy returns the memory system (tests and tools).
func (m *Machine) Hierarchy() *memsys.Hierarchy { return m.hier }

// Allocator returns the physical allocator (tests and tools).
func (m *Machine) Allocator() *phys.Allocator { return m.alloc }

// MMU returns core i's MMU (tests and tools).
func (m *Machine) MMU(i int) *core.MMU { return m.cores[i].mmu }

// step executes one op on core c.
func (m *Machine) step(c *simCore) {
	c.gen.Next(&c.op)
	c.instructions++
	switch c.op.Kind {
	case workload.Compute:
		c.clock += uint64(c.op.Cycles)
		c.computeCycles += uint64(c.op.Cycles)
		return
	case workload.Load, workload.Store:
	default:
		panic(fmt.Sprintf("sim: unknown op kind %d", c.op.Kind))
	}

	// Instruction fetch: every FetchEvery-th op walks the code region
	// through the ITLB/L1I (overlapped with the pipeline: structure
	// activity, no cycle charge).
	c.fetchCnt++
	if c.fetchCnt >= m.cfg.FetchEvery {
		c.fetchCnt = 0
		va := c.codeBase + addr.V(c.codePos)
		c.codePos = (c.codePos + addr.LineSize) % codeBytes
		if cost := m.space.Touch(va); cost > 0 {
			c.clock += cost
			c.faultCycles += cost
		}
		pa := c.mmu.TranslateCode(va)
		m.hier.Access(c.id, c.clock, pa, access.Read, access.Code)
	}

	v := c.op.Addr
	op := access.Read
	if c.op.Kind == workload.Store {
		op = access.Write
		c.stores++
	} else {
		c.loads++
	}

	// OS demand paging resolves before the hardware retry of the access.
	if cost := m.space.Touch(v); cost > 0 {
		c.clock += cost
		c.faultCycles += cost
	}

	// Address translation.
	pa, tEnd := c.mmu.Translate(c.clock, v, op)
	c.translationCycles += tEnd - c.clock
	c.clock = tEnd

	// The data access itself.
	done := m.hier.Access(c.id, c.clock, pa, op, access.Data)
	c.dataCycles += done - c.clock
	c.clock = done
}

// run advances all cores to the target instruction count (per core).
func (m *Machine) run(target uint64) {
	for {
		var next *simCore
		for _, c := range m.cores {
			if c.instructions >= target {
				continue
			}
			if next == nil || c.clock < next.clock {
				next = c
			}
		}
		if next == nil {
			return
		}
		m.step(next)
	}
}

// resetStats zeroes every statistic at the warmup/measurement boundary.
func (m *Machine) resetStats() {
	m.hier.ResetStats()
	m.space.ResetFaultStats()
	for _, c := range m.cores {
		c.mmu.ResetStats()
		c.start = c.clock
		c.instructions = 0
		c.loads, c.stores = 0, 0
		c.computeCycles = 0
		c.translationCycles = 0
		c.dataCycles = 0
		c.faultCycles = 0
	}
}

// Run executes warmup, resets statistics, executes the measurement
// window, and collects results.
func (m *Machine) Run() *Result {
	m.run(m.cfg.Warmup)
	m.resetStats() // zeroes per-core instruction counters too
	m.run(m.cfg.Instructions)
	return m.collect()
}

// RunConfig builds a machine from cfg and runs it.
func RunConfig(cfg Config) (*Result, error) {
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(), nil
}
