package sim

import (
	"testing"

	"ndpage/internal/addr"
	"ndpage/internal/core"
	"ndpage/internal/memsys"
)

// testCfg returns a small, fast configuration.
func testCfg(system memsys.Kind, cores int, mech core.Mechanism, wl string) Config {
	return Config{
		System:         system,
		Cores:          cores,
		Mechanism:      mech,
		Workload:       wl,
		FootprintBytes: 256 << 20,
		MemoryBytes:    4 << 30,
		FragHoles:      900,
		Warmup:         8_000,
		Instructions:   30_000,
		Seed:           7,
	}
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestUnknownWorkloadRejected(t *testing.T) {
	if _, err := RunConfig(Config{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestCountersConsistent(t *testing.T) {
	cfg := testCfg(memsys.NDP, 2, core.Radix, "rnd")
	r := run(t, cfg)
	if r.Instructions != uint64(cfg.Cores)*cfg.Instructions {
		t.Errorf("instructions = %d, want %d", r.Instructions, uint64(cfg.Cores)*cfg.Instructions)
	}
	if r.Loads == 0 || r.Stores == 0 {
		t.Error("no memory ops recorded")
	}
	if r.Cycles == 0 || r.TotalCycles < r.Cycles {
		t.Errorf("cycles inconsistent: max %d total %d", r.Cycles, r.TotalCycles)
	}
	// Attribution roughly covers the total (fetch is uncharged; compute+
	// translation + data + faults account for every charged cycle).
	sum := r.TranslationCycles + r.DataCycles + r.ComputeCycles + r.FaultCycles
	if sum != r.TotalCycles {
		t.Errorf("cycle attribution %d != total %d", sum, r.TotalCycles)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testCfg(memsys.NDP, 2, core.NDPage, "bfs")
	a, b := run(t, cfg), run(t, cfg)
	if a.Cycles != b.Cycles || a.Walks != b.Walks || a.PTEAccesses != b.PTEAccesses {
		t.Errorf("nondeterministic: %d/%d vs %d/%d cycles/walks",
			a.Cycles, a.Walks, b.Cycles, b.Walks)
	}
}

func TestSeedChangesRun(t *testing.T) {
	cfg := testCfg(memsys.NDP, 1, core.Radix, "rnd")
	a := run(t, cfg)
	cfg.Seed = 8
	b := run(t, cfg)
	if a.Cycles == b.Cycles {
		t.Error("different seeds produced identical cycle counts (suspicious)")
	}
}

// TestMechanismOrderingOnNDP is the paper's headline: on the NDP system,
// Ideal < NDPage < Radix in execution time, with ECH between NDPage and
// Radix (single-core, Figure 12 ordering).
func TestMechanismOrderingOnNDP(t *testing.T) {
	cycles := map[core.Mechanism]uint64{}
	for _, mech := range []core.Mechanism{core.Radix, core.ECH, core.NDPage, core.Ideal} {
		cycles[mech] = run(t, testCfg(memsys.NDP, 1, mech, "rnd")).Cycles
	}
	if !(cycles[core.Ideal] < cycles[core.NDPage]) {
		t.Errorf("Ideal (%d) not faster than NDPage (%d)", cycles[core.Ideal], cycles[core.NDPage])
	}
	if !(cycles[core.NDPage] < cycles[core.Radix]) {
		t.Errorf("NDPage (%d) not faster than Radix (%d)", cycles[core.NDPage], cycles[core.Radix])
	}
	if !(cycles[core.NDPage] < cycles[core.ECH]) {
		t.Errorf("NDPage (%d) not faster than ECH (%d)", cycles[core.NDPage], cycles[core.ECH])
	}
}

// TestTLBMissRateHigh: data-intensive workloads over footprints far
// beyond TLB reach must miss heavily (paper: 91.27%).
func TestTLBMissRateHigh(t *testing.T) {
	r := run(t, testCfg(memsys.NDP, 1, core.Radix, "rnd"))
	if got := r.TLBMissRate(); got < 0.3 {
		t.Errorf("TLB miss rate = %.3f, want high for GUPS", got)
	}
}

// TestPTEShareSubstantial: PTE accesses are a large share of memory
// traffic on the baseline (paper: 65.8% of accesses).
func TestPTEShareSubstantial(t *testing.T) {
	r := run(t, testCfg(memsys.NDP, 1, core.Radix, "rnd"))
	if got := r.PTEAccessShare(); got < 0.2 {
		t.Errorf("PTE share = %.3f, want substantial", got)
	}
}

// TestOccupancyShape is Figure 8: dense datasets nearly fill PL1/PL2
// while PL3/PL4 stay nearly empty.
func TestOccupancyShape(t *testing.T) {
	r := run(t, testCfg(memsys.NDP, 1, core.Radix, "pr"))
	pl1, pl2 := r.OccupancyRate(addr.PL1), r.OccupancyRate(addr.PL2)
	pl3, pl4 := r.OccupancyRate(addr.PL3), r.OccupancyRate(addr.PL4)
	if pl1 < 0.5 || pl2 < 0.2 {
		t.Errorf("PL1/PL2 occupancy %.3f/%.3f too low", pl1, pl2)
	}
	if pl3 > 0.1 || pl4 > 0.1 {
		t.Errorf("PL3/PL4 occupancy %.3f/%.3f too high", pl3, pl4)
	}
}

// TestFlattenedOccupancy: NDPage's combined node occupancy mirrors the
// paper's "combined PL2/PL1" bar.
func TestFlattenedOccupancy(t *testing.T) {
	r := run(t, testCfg(memsys.NDP, 1, core.NDPage, "pr"))
	if got := r.OccupancyRate(addr.L2L1); got < 0.2 {
		t.Errorf("flattened occupancy = %.3f, want substantial", got)
	}
}

// TestCPUWalksFasterThanNDP is Figure 4's premise: the CPU's deep cache
// hierarchy absorbs PTE accesses, so its walks are much faster.
func TestCPUWalksFasterThanNDP(t *testing.T) {
	ndp := run(t, testCfg(memsys.NDP, 2, core.Radix, "rnd"))
	cpu := run(t, testCfg(memsys.CPU, 2, core.Radix, "rnd"))
	if !(cpu.MeanPTWLatency() < ndp.MeanPTWLatency()) {
		t.Errorf("CPU PTW %.1f not faster than NDP PTW %.1f",
			cpu.MeanPTWLatency(), ndp.MeanPTWLatency())
	}
}

// TestNDPTranslationOverheadExceedsCPU is Figure 5's shape.
func TestNDPTranslationOverheadExceedsCPU(t *testing.T) {
	ndp := run(t, testCfg(memsys.NDP, 2, core.Radix, "rnd"))
	cpu := run(t, testCfg(memsys.CPU, 2, core.Radix, "rnd"))
	if !(ndp.TranslationOverhead() > cpu.TranslationOverhead()) {
		t.Errorf("NDP overhead %.3f not above CPU %.3f",
			ndp.TranslationOverhead(), cpu.TranslationOverhead())
	}
}

// TestPTWLatencyGrowsWithCores is Figure 6(a) for the NDP system.
func TestPTWLatencyGrowsWithCores(t *testing.T) {
	one := run(t, testCfg(memsys.NDP, 1, core.Radix, "rnd"))
	four := run(t, testCfg(memsys.NDP, 4, core.Radix, "rnd"))
	if !(four.MeanPTWLatency() > one.MeanPTWLatency()) {
		t.Errorf("PTW latency did not grow: 1-core %.1f vs 4-core %.1f",
			one.MeanPTWLatency(), four.MeanPTWLatency())
	}
}

// TestBypassEliminatesL1PTETraffic: with NDPage no PTE ever probes the
// L1; with Radix the L1 sees heavy PTE traffic that misses nearly always
// (Figure 7's metadata bar: 98.28%).
func TestBypassEliminatesL1PTETraffic(t *testing.T) {
	nd := run(t, testCfg(memsys.NDP, 1, core.NDPage, "rnd"))
	if nd.L1PTE.Total() != 0 {
		t.Errorf("NDPage: %d PTE probes reached the L1", nd.L1PTE.Total())
	}
	if nd.L1Bypassed == 0 {
		t.Error("NDPage: no bypasses recorded")
	}
	rx := run(t, testCfg(memsys.NDP, 1, core.Radix, "rnd"))
	if rx.L1PTE.Total() == 0 {
		t.Error("Radix: no PTE traffic in L1")
	}
}

// TestPollutionVisibleOnCacheFriendlyWorkload: for a workload with real
// data locality, Radix's PTE fills raise the data miss rate above the
// Ideal run's (Figure 7: 35.89% vs 26.16%).
func TestPollutionVisibleOnCacheFriendlyWorkload(t *testing.T) {
	radix := run(t, testCfg(memsys.NDP, 1, core.Radix, "dlrm"))
	ideal := run(t, testCfg(memsys.NDP, 1, core.Ideal, "dlrm"))
	if !(radix.L1DataMissRate() > ideal.L1DataMissRate()) {
		t.Errorf("no pollution: radix %.4f vs ideal %.4f",
			radix.L1DataMissRate(), ideal.L1DataMissRate())
	}
}

// TestPWCHitRateShape (Section V-C): PL4/PL3 PWCs hit nearly always;
// the PL2 PWC hit rate is low.
func TestPWCHitRateShape(t *testing.T) {
	r := run(t, testCfg(memsys.NDP, 1, core.Radix, "rnd"))
	if got := r.PWCHitRate(addr.PL4); got < 0.95 {
		t.Errorf("PL4 PWC hit rate = %.3f, want ~1", got)
	}
	if got := r.PWCHitRate(addr.PL3); got < 0.90 {
		t.Errorf("PL3 PWC hit rate = %.3f, want high", got)
	}
	pl2 := r.PWCHitRate(addr.PL2)
	if pl2 > 0.6 {
		t.Errorf("PL2 PWC hit rate = %.3f, want low (the NDPage motivation)", pl2)
	}
}

// TestHugePageReducesWalks: the 2 MB policy multiplies TLB reach, but the
// benefit is bounded by the small 2M sub-TLB (32 entries; the unified L2
// TLB holds 4 KB entries only), so the reduction is real yet limited —
// one reason Huge Page underdelivers in the paper.
func TestHugePageReducesWalks(t *testing.T) {
	radix := run(t, testCfg(memsys.NDP, 1, core.Radix, "rnd"))
	huge := run(t, testCfg(memsys.NDP, 1, core.HugePage, "rnd"))
	if !(huge.Walks < radix.Walks) {
		t.Errorf("HugePage walks = %d, want below Radix %d", huge.Walks, radix.Walks)
	}
	// Each huge walk is also shorter (3 levels, leaf at PL2).
	if !(huge.MeanPTWLatency() < radix.MeanPTWLatency()) {
		t.Errorf("HugePage PTW %.1f not below Radix %.1f",
			huge.MeanPTWLatency(), radix.MeanPTWLatency())
	}
}

// TestHugePagePaysFaultsOnGrowth: on a workload with in-window growth
// (gen), the Huge policy's fault cycles appear in the window.
func TestHugePagePaysFaultsOnGrowth(t *testing.T) {
	huge := run(t, testCfg(memsys.NDP, 1, core.HugePage, "gen"))
	if huge.Faults2M == 0 {
		t.Error("no 2MB faults recorded for gen under HugePage")
	}
	if huge.FaultCycles == 0 {
		t.Error("no fault cycles charged")
	}
}

func TestIdealHasZeroTranslation(t *testing.T) {
	r := run(t, testCfg(memsys.NDP, 2, core.Ideal, "bfs"))
	if r.TranslationCycles != 0 || r.Walks != 0 || r.PTEAccesses != 0 {
		t.Errorf("Ideal not free: %d cycles, %d walks", r.TranslationCycles, r.Walks)
	}
	if r.TranslationOverhead() != 0 {
		t.Error("Ideal overhead nonzero")
	}
}

func TestAllWorkloadsRunOnAllMechanisms(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix smoke is not short")
	}
	for _, wl := range []string{"bc", "bfs", "cc", "gc", "pr", "tc", "sp", "xs", "rnd", "dlrm", "gen"} {
		for _, mech := range core.Mechanisms {
			cfg := testCfg(memsys.NDP, 1, mech, wl)
			cfg.Warmup, cfg.Instructions = 2_000, 6_000
			r := run(t, cfg)
			if r.Instructions != cfg.Instructions {
				t.Errorf("%s/%v: ran %d instructions", wl, mech, r.Instructions)
			}
		}
	}
}

// TestSharedWalkerContention: funneling every core's walks through one
// width-1 walker must not beat a wide shared walker, the narrow walker
// must record slot queueing, and private per-core walkers (the default)
// must record no concurrency events at all.
func TestSharedWalkerContention(t *testing.T) {
	base := testCfg(memsys.NDP, 4, core.Radix, "rnd")
	if r := run(t, base); r.MSHRHits != 0 || r.OverlappedWalks != 0 || r.QueuedWalks != 0 {
		t.Errorf("private blocking walkers recorded concurrency: mshr=%d overlap=%d queued=%d",
			r.MSHRHits, r.OverlappedWalks, r.QueuedWalks)
	}

	narrow := base
	narrow.SharedWalker = true
	narrow.WalkerWidth = 1
	wide := base
	wide.SharedWalker = true
	wide.WalkerWidth = 8
	rn, rw := run(t, narrow), run(t, wide)
	if rn.QueuedWalks == 0 || rn.WalkQueueCycles == 0 {
		t.Error("width-1 shared walker saw no slot contention across 4 cores")
	}
	if rn.MeanPTWLatency() < rw.MeanPTWLatency() {
		t.Errorf("width-1 shared PTW %.1f below width-8 %.1f",
			rn.MeanPTWLatency(), rw.MeanPTWLatency())
	}
	if rw.MaxConcurrentWalks < 2 {
		t.Errorf("width-8 shared walker never overlapped (peak %d)", rw.MaxConcurrentWalks)
	}
}

// TestSharedWalkerDeterminism: the shared-walker configuration is as
// reproducible as the default one.
func TestSharedWalkerDeterminism(t *testing.T) {
	cfg := testCfg(memsys.NDP, 2, core.Radix, "rnd")
	cfg.SharedWalker = true
	cfg.WalkerWidth = 2
	a, b := run(t, cfg), run(t, cfg)
	if a.Cycles != b.Cycles || a.MSHRHits != b.MSHRHits || a.QueuedWalks != b.QueuedWalks {
		t.Errorf("nondeterministic shared walker: %d/%d/%d vs %d/%d/%d",
			a.Cycles, a.MSHRHits, a.QueuedWalks, b.Cycles, b.MSHRHits, b.QueuedWalks)
	}
}
