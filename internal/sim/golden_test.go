package sim

import (
	"reflect"
	"testing"

	"ndpage/internal/core"
	"ndpage/internal/memsys"
)

// goldenCfg is the pinned regression configuration: small enough to run
// in CI, large enough to exercise faults, TLB misses, and DRAM queueing.
func goldenCfg(cores int, mech core.Mechanism, wl string) Config {
	return Config{
		System:         memsys.NDP,
		Cores:          cores,
		Mechanism:      mech,
		Workload:       wl,
		FootprintBytes: 256 << 20,
		MemoryBytes:    4 << 30,
		FragHoles:      900,
		Warmup:         8_000,
		Instructions:   30_000,
		Seed:           7,
	}
}

// TestGoldenBlockingTiming pins the blocking core model (MLP=1,
// WalkerWidth=1) to the exact cycle counts the pre-engine step-driven
// simulator produced, so the event-scheduled engine is verified
// bit-identical on defaults. The numbers were captured on the step loop
// immediately before the engine refactor.
func TestGoldenBlockingTiming(t *testing.T) {
	type golden struct {
		cfg                                   Config
		cycles, totalCycles                   uint64
		translation, data, compute, fault     uint64
		walks, walkCycles, pte, loads, stores uint64
	}
	cases := map[string]golden{
		"radix-2core-rnd": {
			cfg:    goldenCfg(2, core.Radix, "rnd"),
			cycles: 3_700_123, totalCycles: 7_391_694,
			translation: 3_024_245, data: 2_747_449, compute: 20_000, fault: 1_600_000,
			walks: 19_544, walkCycles: 2_744_461, pte: 34_211, loads: 20_000, stores: 20_000,
		},
		"ndpage-4core-bfs": {
			cfg:    goldenCfg(4, core.NDPage, "bfs"),
			cycles: 1_219_754, totalCycles: 4_839_786,
			translation: 775_066, data: 3_607_437, compute: 22_283, fault: 435_000,
			walks: 3_740, walkCycles: 580_965, pte: 3_740, loads: 53_152, stores: 44_565,
		},
	}
	// The shared width-2 walker still runs the synchronous walk path at
	// MLP=1; its interval slot bookkeeping is pinned too.
	shared := goldenCfg(4, core.Radix, "rnd")
	shared.SharedWalker = true
	shared.WalkerWidth = 2

	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			r := run(t, g.cfg)
			if r.Cycles != g.cycles || r.TotalCycles != g.totalCycles {
				t.Errorf("cycles %d/%d, want %d/%d", r.Cycles, r.TotalCycles, g.cycles, g.totalCycles)
			}
			if r.TranslationCycles != g.translation || r.DataCycles != g.data ||
				r.ComputeCycles != g.compute || r.FaultCycles != g.fault {
				t.Errorf("attribution %d/%d/%d/%d, want %d/%d/%d/%d",
					r.TranslationCycles, r.DataCycles, r.ComputeCycles, r.FaultCycles,
					g.translation, g.data, g.compute, g.fault)
			}
			if r.Walks != g.walks || r.WalkCycles != g.walkCycles || r.PTEAccesses != g.pte {
				t.Errorf("walks %d/%d/%d, want %d/%d/%d",
					r.Walks, r.WalkCycles, r.PTEAccesses, g.walks, g.walkCycles, g.pte)
			}
			if r.Loads != g.loads || r.Stores != g.stores {
				t.Errorf("ops %d/%d, want %d/%d", r.Loads, r.Stores, g.loads, g.stores)
			}
		})
	}

	t.Run("sharedwalker-w2", func(t *testing.T) {
		r := run(t, shared)
		if r.Cycles != 4_021_787 || r.Walks != 39_099 || r.PTEAccesses != 68_483 {
			t.Errorf("cycles/walks/pte %d/%d/%d, want 4021787/39099/68483",
				r.Cycles, r.Walks, r.PTEAccesses)
		}
		if r.MSHRHits != 0 || r.QueuedWalks != 11_941 || r.OverlappedWalks != 31_139 {
			t.Errorf("mshr/queued/overlap %d/%d/%d, want 0/11941/31139",
				r.MSHRHits, r.QueuedWalks, r.OverlappedWalks)
		}
	})
}

// TestDeterminismWithMLP: the non-blocking front-end is exactly as
// reproducible as the blocking one — two runs of one configuration
// produce deeply equal Results.
func TestDeterminismWithMLP(t *testing.T) {
	cfg := goldenCfg(4, core.Radix, "rnd")
	cfg.MLP = 4
	cfg.SharedWalker = true
	cfg.WalkerWidth = 2
	a, b := run(t, cfg), run(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("MLP=4 shared-walker run not reproducible:\n  a: cycles=%d walks=%d mshr=%d queued=%d hist=%v\n  b: cycles=%d walks=%d mshr=%d queued=%d hist=%v",
			a.Cycles, a.Walks, a.MSHRHits, a.QueuedWalks, a.InFlightHist,
			b.Cycles, b.Walks, b.MSHRHits, b.QueuedWalks, b.InFlightHist)
	}
}

// TestDeterminismBlockingDeep: full-Result determinism for the default
// blocking model too (the original determinism test compares only a few
// counters).
func TestDeterminismBlockingDeep(t *testing.T) {
	cfg := goldenCfg(2, core.NDPage, "pr")
	a, b := run(t, cfg), run(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("blocking run not deeply reproducible: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}
