package sim

import (
	"testing"

	"ndpage/internal/core"
	"ndpage/internal/memsys"
)

// BenchmarkStepThroughput measures raw engine speed in simulated
// instructions per second for each mechanism (the simulator's own
// performance, not the simulated machine's).
func BenchmarkStepThroughput(b *testing.B) {
	for _, mech := range core.Mechanisms {
		b.Run(mech.String(), func(b *testing.B) {
			m, err := New(Config{
				System:         memsys.NDP,
				Cores:          4,
				Mechanism:      mech,
				Workload:       "pr",
				FootprintBytes: 512 << 20,
				MemoryBytes:    4 << 30,
				FragHoles:      200,
				Warmup:         1,
				Instructions:   1,
			})
			if err != nil {
				b.Fatal(err)
			}
			m.run(1) // settle init
			b.ResetTimer()
			target := uint64(1)
			for i := 0; i < b.N; i++ {
				target++
				m.run(target)
			}
			b.ReportMetric(float64(len(m.cores)), "cores")
		})
	}
}

// BenchmarkMachineConstruction measures setup cost (allocator,
// fragmentation, dataset population, table build).
func BenchmarkMachineConstruction(b *testing.B) {
	for _, mech := range []core.Mechanism{core.Radix, core.NDPage, core.ECH} {
		b.Run(mech.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := New(Config{
					System:         memsys.NDP,
					Cores:          2,
					Mechanism:      mech,
					Workload:       "rnd",
					FootprintBytes: 512 << 20,
					MemoryBytes:    4 << 30,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
