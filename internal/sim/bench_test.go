package sim

import (
	"testing"

	"ndpage/internal/core"
	"ndpage/internal/memsys"
)

// BenchmarkStepThroughput measures raw engine speed in simulated
// instructions per second for each mechanism (the simulator's own
// performance, not the simulated machine's). Each iteration advances
// every core by one instruction, so ns/op is per Cores instructions —
// and allocs/op is the steady-state measured-instruction-path
// allocation count, which must stay ~0 (the CI bench job budgets
// against it via scripts/bench.sh).
func BenchmarkStepThroughput(b *testing.B) {
	for _, mech := range core.Mechanisms {
		b.Run(mech.String(), func(b *testing.B) {
			b.ReportAllocs()
			m, err := New(Config{
				System:         memsys.NDP,
				Cores:          4,
				Mechanism:      mech,
				Workload:       "pr",
				FootprintBytes: 512 << 20,
				MemoryBytes:    4 << 30,
				FragHoles:      200,
				Warmup:         1,
				Instructions:   1,
			})
			if err != nil {
				b.Fatal(err)
			}
			m.run(1) // settle init
			b.ResetTimer()
			target := uint64(1)
			for i := 0; i < b.N; i++ {
				target++
				m.run(target)
			}
			b.ReportMetric(float64(len(m.cores)), "cores")
		})
	}
}

// BenchmarkStepThroughputMLP is the non-blocking variant: typed
// translation/completion events, pooled in-flight op records, and
// walker slot contention on the event schedule. Its allocs/op pins the
// zero-allocation property of the MLP > 1 path, which used to allocate
// several closures per instruction.
func BenchmarkStepThroughputMLP(b *testing.B) {
	b.ReportAllocs()
	m, err := New(Config{
		System:         memsys.NDP,
		Cores:          4,
		Mechanism:      core.Radix,
		Workload:       "pr",
		FootprintBytes: 512 << 20,
		MemoryBytes:    4 << 30,
		FragHoles:      200,
		Warmup:         1,
		Instructions:   1,
		MLP:            4,
		SharedWalker:   true,
		WalkerWidth:    2,
	})
	if err != nil {
		b.Fatal(err)
	}
	m.run(1) // settle init
	b.ResetTimer()
	target := uint64(1)
	for i := 0; i < b.N; i++ {
		target++
		m.run(target)
	}
	b.ReportMetric(float64(len(m.cores)), "cores")
}

// BenchmarkMachineConstruction measures setup cost (allocator,
// fragmentation, dataset population, table build).
func BenchmarkMachineConstruction(b *testing.B) {
	for _, mech := range []core.Mechanism{core.Radix, core.NDPage, core.ECH} {
		b.Run(mech.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := New(Config{
					System:         memsys.NDP,
					Cores:          2,
					Mechanism:      mech,
					Workload:       "rnd",
					FootprintBytes: 512 << 20,
					MemoryBytes:    4 << 30,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
