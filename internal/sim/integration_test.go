package sim

import (
	"testing"

	"ndpage/internal/access"
	"ndpage/internal/core"
	"ndpage/internal/memsys"
)

// Integration tests: cross-module behaviour of the assembled machine.

func TestCoresShareOnePageTable(t *testing.T) {
	m, err := New(testCfg(memsys.NDP, 4, core.Radix, "pr"))
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	// The table is shared: the mapped footprint reflects the dataset
	// once, not once per core (4 KB pages of a ~256 MB footprint).
	pages := m.Space().Table().MappedPages()
	if pages > 600<<20/4096 {
		t.Errorf("mapped pages = %d, looks like per-core duplication", pages)
	}
	// All cores translated against it.
	for i := 0; i < 4; i++ {
		if m.MMU(i).Stats().Translations == 0 {
			t.Errorf("core %d performed no translations", i)
		}
	}
}

func TestSharedDatasetThreadsTouchSameRegions(t *testing.T) {
	// Two cores run PR over the same graph: their data accesses hit the
	// same physical memory (shared HBM), observable as core 1 warming
	// lines core 0 later reuses is not required, but both must generate
	// DRAM traffic to the same device.
	m, err := New(testCfg(memsys.NDP, 2, core.Radix, "pr"))
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run()
	if r.DRAM[access.Data] == 0 || r.DRAM[access.PTE] == 0 {
		t.Fatal("no shared-memory traffic recorded")
	}
}

func TestWarmupIsolatesMeasurement(t *testing.T) {
	// A run with warmup must report fewer cold effects than one without:
	// specifically, TLB/caches start warm, so the measured CPI is lower.
	cold := testCfg(memsys.NDP, 1, core.Radix, "pr")
	cold.Warmup = 1 // effectively no warmup
	warm := testCfg(memsys.NDP, 1, core.Radix, "pr")
	warm.Warmup = 20_000
	rc := run(t, cold)
	rw := run(t, warm)
	if rw.CPI() >= rc.CPI() {
		t.Errorf("warm CPI %.2f not below cold CPI %.2f", rw.CPI(), rc.CPI())
	}
}

func TestInstructionBudgetExact(t *testing.T) {
	for _, cores := range []int{1, 3, 8} {
		cfg := testCfg(memsys.NDP, cores, core.NDPage, "rnd")
		r := run(t, cfg)
		if r.Instructions != uint64(cores)*cfg.Instructions {
			t.Errorf("%d cores: ran %d instructions, want %d",
				cores, r.Instructions, uint64(cores)*cfg.Instructions)
		}
	}
}

func TestClocksAdvanceTogether(t *testing.T) {
	// Min-clock interleaving keeps cores loosely synchronized: after a
	// run, per-core measured windows differ by far less than a window.
	m, err := New(testCfg(memsys.NDP, 4, core.Radix, "rnd"))
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	var min, max uint64 = ^uint64(0), 0
	for _, c := range m.cores {
		e := c.clock - c.start
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	if min == 0 || float64(max-min)/float64(max) > 0.25 {
		t.Errorf("core windows diverged: min %d, max %d", min, max)
	}
}

func TestSensitivityKnobs(t *testing.T) {
	base := testCfg(memsys.NDP, 2, core.Radix, "rnd")
	r0 := run(t, base)

	noPWC := base
	noPWC.DisablePWC = true
	r1 := run(t, noPWC)
	if r1.MeanPTWLatency() <= r0.MeanPTWLatency() {
		t.Errorf("disabling PWCs did not lengthen walks: %.1f vs %.1f",
			r1.MeanPTWLatency(), r0.MeanPTWLatency())
	}
	if len(r1.PWC) != 0 {
		t.Error("PWC stats present with PWCs disabled")
	}

	wide := base
	wide.HBMChannels = 8
	r2 := run(t, wide)
	if r2.Cycles >= r0.Cycles {
		t.Errorf("8-channel HBM not faster than 2-channel: %d vs %d", r2.Cycles, r0.Cycles)
	}

	demand := base
	demand.DemandPaging = true
	r3 := run(t, demand)
	if r3.Faults4K == 0 {
		t.Error("demand paging produced no in-window faults")
	}
	if r3.Cycles <= r0.Cycles {
		t.Error("demand paging should cost cycles")
	}
}

// TestBypassOnlyAndFlattenOnlyAreDistinct checks the ablation variants
// actually differ from NDPage and from each other.
func TestAblationVariants(t *testing.T) {
	bypass := run(t, testCfg(memsys.NDP, 1, core.BypassOnly, "rnd"))
	flatten := run(t, testCfg(memsys.NDP, 1, core.FlattenOnly, "rnd"))
	full := run(t, testCfg(memsys.NDP, 1, core.NDPage, "rnd"))

	// BypassOnly uses a radix table: 4-deep cold walks.
	if bypass.L1PTE.Total() != 0 {
		t.Error("BypassOnly let PTEs into the L1")
	}
	if bypass.PTEAccesses <= flatten.PTEAccesses {
		t.Errorf("radix-based BypassOnly should issue more PTE accesses (%d) than flattened (%d)",
			bypass.PTEAccesses, flatten.PTEAccesses)
	}
	// FlattenOnly does not bypass: its PTEs probe the L1.
	if flatten.L1PTE.Total() == 0 {
		t.Error("FlattenOnly should probe the L1 for PTEs")
	}
	// Full NDPage: flattened depth and no L1 PTE traffic.
	if full.L1PTE.Total() != 0 {
		t.Error("NDPage let PTEs into the L1")
	}
	if full.PTEAccesses != flatten.PTEAccesses {
		t.Errorf("NDPage and FlattenOnly walk the same table: %d vs %d accesses",
			full.PTEAccesses, flatten.PTEAccesses)
	}
}

func TestOutOfRangeCoresRejected(t *testing.T) {
	cfg := testCfg(memsys.NDP, 1, core.Radix, "rnd")
	cfg.Cores = 65
	if _, err := New(cfg); err == nil {
		t.Fatal("65 cores accepted")
	}
}

func TestECHWayPredictionEndToEnd(t *testing.T) {
	base := testCfg(memsys.NDP, 2, core.ECH, "rnd")
	plain := run(t, base)
	base.ECHWayPrediction = true
	cwc := run(t, base)
	if cwc.PTEAccesses >= plain.PTEAccesses {
		t.Errorf("way prediction did not cut PTE traffic: %d vs %d",
			cwc.PTEAccesses, plain.PTEAccesses)
	}
	if cwc.Cycles >= plain.Cycles {
		t.Errorf("way prediction did not help end-to-end: %d vs %d cycles",
			cwc.Cycles, plain.Cycles)
	}
}
