package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ndpage/internal/addr"
	"ndpage/internal/core"
	"ndpage/internal/memsys"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// jsonCfg exercises every structured Result field: the shared width-2
// walker and MLP=4 fill the PWC map, the walk-overlap histogram, and
// the in-flight histogram.
func jsonCfg() Config {
	cfg := testCfg(memsys.NDP, 2, core.Radix, "rnd")
	cfg.SharedWalker = true
	cfg.WalkerWidth = 2
	cfg.MLP = 4
	return cfg
}

// TestResultJSONRoundTrip: a Result survives JSON losslessly — the
// requirement behind the sweep package's on-disk store.
func TestResultJSONRoundTrip(t *testing.T) {
	r := run(t, jsonCfg())
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, &back) {
		t.Errorf("round trip lossy:\n got %+v\nwant %+v", &back, r)
	}
	// Re-encoding the decoded value reproduces the bytes exactly.
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("re-encoded JSON differs from the original encoding")
	}

	// The tricky fields explicitly: the integer-keyed PWC map and the
	// histograms.
	if len(r.PWC) == 0 {
		t.Fatal("run produced no PWC stats; the round-trip test needs them")
	}
	for lvl, hm := range r.PWC {
		if back.PWC[lvl] != hm {
			t.Errorf("PWC[%v] = %+v after round trip, want %+v", lvl, back.PWC[lvl], hm)
		}
	}
	if len(r.WalkOverlapHist) < 2 || len(r.InFlightHist) < 2 {
		t.Fatalf("histograms not populated: overlap %v, in-flight %v",
			r.WalkOverlapHist, r.InFlightHist)
	}
	if !reflect.DeepEqual(back.WalkOverlapHist, r.WalkOverlapHist) ||
		!reflect.DeepEqual(back.InFlightHist, r.InFlightHist) {
		t.Error("histograms corrupted by round trip")
	}
	// Derived metrics agree, so a decoded result feeds figure tables
	// identically to a fresh one.
	if back.MeanPTWLatency() != r.MeanPTWLatency() ||
		back.TranslationOverhead() != r.TranslationOverhead() ||
		back.PWCHitRate(addr.PL4) != r.PWCHitRate(addr.PL4) ||
		back.MeanInFlight() != r.MeanInFlight() {
		t.Error("derived metrics differ after round trip")
	}
}

// TestResultJSONGolden pins the serialized form: the on-disk sweep
// cache format is a contract across processes (and PR boundaries).
// Regenerate with `go test ./internal/sim -run Golden -update` after a
// deliberate Result or simulator change.
func TestResultJSONGolden(t *testing.T) {
	r := run(t, jsonCfg())
	got, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "result_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("serialized Result drifted from %s (regenerate with -update if deliberate)", path)
	}
	// The golden file itself decodes into the same result: the cache
	// format is readable, not just writable.
	var back Result
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, &back) {
		t.Error("golden file does not decode to the live result")
	}
}
