package sim

import (
	"reflect"
	"testing"

	"ndpage/internal/core"
	"ndpage/internal/engine"
)

// TestEngineQueueDifferential runs whole simulations through both event
// queues — the calendar wheel and the retained binary-heap fallback —
// and requires identical Results. The goldens pin the wheel to the
// recorded pre-wheel numbers; this test additionally pins every counter
// of fresh configurations (blocking and MLP, narrow and shared walkers)
// to the heap oracle, so any dispatch-order divergence the goldens'
// two configurations miss still fails.
func TestEngineQueueDifferential(t *testing.T) {
	if engine.UseHeapFallback {
		t.Fatal("UseHeapFallback set on entry")
	}
	cfgs := map[string]Config{
		"blocking-2core-bfs": goldenCfg(2, core.NDPage, "bfs"),
		"blocking-4core-rnd": goldenCfg(4, core.Radix, "rnd"),
	}
	mlp := goldenCfg(4, core.ECH, "dlrm")
	mlp.MLP = 8
	mlp.SharedWalker = true
	mlp.WalkerWidth = 4
	cfgs["mlp8-4core-dlrm"] = mlp

	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			calendar := run(t, cfg)
			engine.UseHeapFallback = true
			heap := run(t, cfg)
			engine.UseHeapFallback = false
			if !reflect.DeepEqual(calendar, heap) {
				t.Errorf("results diverge between calendar queue and heap oracle:\ncalendar: %+v\nheap:     %+v",
					calendar, heap)
			}
		})
	}
}

// TestEngineBatchesSameTickEvents checks the wheel's same-tick batching
// actually engages on a real simulation: a multi-core run dispatches a
// measurable fraction of its events as batch continuations.
func TestEngineBatchesSameTickEvents(t *testing.T) {
	m, err := New(goldenCfg(4, core.NDPage, "bfs"))
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	d, b := m.eng.Dispatched(), m.eng.Batched()
	if d == 0 {
		t.Fatal("no events dispatched")
	}
	if b == 0 {
		t.Error("no same-tick batch continuations on a 4-core run; batching never engaged")
	}
	t.Logf("dispatched %d events, %d batched (%.2f%%)", d, b, 100*float64(b)/float64(d))
}
