package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndpage/internal/core"
	"ndpage/internal/memsys"
	"ndpage/internal/workload"
	"ndpage/internal/workload/trace"
)

func TestValidate(t *testing.T) {
	base := testCfg(memsys.NDP, 2, core.Radix, "rnd")
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring; "" = valid
	}{
		{"defaults", func(c *Config) { *c = Config{Workload: "rnd"} }, ""},
		{"base", func(c *Config) {}, ""},
		{"negative cores", func(c *Config) { c.Cores = -1 }, "core count"},
		{"too many cores", func(c *Config) { c.Cores = 65 }, "core count"},
		{"negative MLP", func(c *Config) { c.MLP = -1 }, "MLP"},
		{"huge MLP", func(c *Config) { c.MLP = 65 }, "MLP"},
		{"negative walker width", func(c *Config) { c.WalkerWidth = -2 }, "walker width"},
		{"negative frag holes", func(c *Config) { c.FragHoles = -1 }, "FragHoles"},
		{"negative fetch every", func(c *Config) { c.FetchEvery = -8 }, "FetchEvery"},
		{"negative HBM channels", func(c *Config) { c.HBMChannels = -4 }, "HBMChannels"},
		{"non-power-of-two HBM channels", func(c *Config) { c.HBMChannels = 3 }, "power of two"},
		{"power-of-two HBM channels", func(c *Config) { c.HBMChannels = 4 }, ""},
		{"unknown workload", func(c *Config) { c.Workload = "no-such" }, "no-such"},
		{"empty workload", func(c *Config) { c.Workload = "" }, "workload"},
		{"inert width, blocking private", func(c *Config) { c.WalkerWidth = 4 }, "inert"},
		{"wide shared walker", func(c *Config) { c.WalkerWidth = 4; c.SharedWalker = true }, ""},
		{"wide private walker, MLP>1", func(c *Config) { c.WalkerWidth = 4; c.MLP = 4 }, ""},
		{"width 1 private", func(c *Config) { c.WalkerWidth = 1 }, ""},
		{"victima defaults", func(c *Config) { c.Mechanism = core.Victima }, ""},
		{"victima explicit gate", func(c *Config) { c.Mechanism = core.Victima; c.VictimaGate = 4 }, ""},
		{"inert victima gate", func(c *Config) { c.VictimaGate = 2 }, "inert"},
		{"negative victima gate", func(c *Config) { c.Mechanism = core.Victima; c.VictimaGate = -1 }, "negative"},
		{"nmt defaults", func(c *Config) { c.Mechanism = core.NMT }, ""},
		{"inert identity promote", func(c *Config) { c.IdentityPromote = true }, "inert"},
		{"nmt under demand paging", func(c *Config) { c.Mechanism = core.NMT; c.DemandPaging = true }, "IdentityPromote"},
		{"nmt demand paging with promote", func(c *Config) {
			c.Mechanism = core.NMT
			c.DemandPaging = true
			c.IdentityPromote = true
		}, ""},
		{"pcax defaults", func(c *Config) { c.Mechanism = core.PCAX }, ""},
		{"pcax explicit entries", func(c *Config) { c.Mechanism = core.PCAX; c.PCXEntries = 256 }, ""},
		{"inert pcx entries", func(c *Config) { c.PCXEntries = 512 }, "inert"},
		{"pcax bad geometry", func(c *Config) { c.Mechanism = core.PCAX; c.PCXEntries = 100 }, "power-of-two"},
		{"pcax negative entries", func(c *Config) { c.Mechanism = core.PCAX; c.PCXEntries = -4 }, "power-of-two"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantErr)
			}
			// New must reject everything Validate rejects.
			if _, nerr := New(cfg); nerr == nil {
				t.Fatalf("New accepted a config Validate rejects (%v)", err)
			}
		})
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	cfg := Config{Workload: "rnd"}.Normalize()
	if cfg.Normalize() != cfg {
		t.Errorf("Normalize not idempotent: %+v vs %+v", cfg.Normalize(), cfg)
	}
	if cfg.Cores != 1 || cfg.MLP != 1 || cfg.WalkerWidth != 1 || cfg.Seed != 42 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func TestKeyIdentity(t *testing.T) {
	a := testCfg(memsys.NDP, 2, core.Radix, "rnd")
	if a.Key() != a.Key() {
		t.Fatal("Key not deterministic")
	}
	// A config and its normalized form share a key: zero fields mean
	// their defaults.
	zero := Config{Workload: "rnd"}
	if zero.Key() != zero.Normalize().Key() {
		t.Error("zero config and normalized config hash differently")
	}
	// Spelling the defaults out changes nothing.
	explicit := zero.Normalize()
	explicit.MLP = 1
	explicit.Seed = 42
	if explicit.Key() != zero.Key() {
		t.Error("explicit defaults changed the key")
	}
	// Any substantive knob changes the key.
	for name, mutate := range map[string]func(*Config){
		"cores":     func(c *Config) { c.Cores = 4 },
		"mechanism": func(c *Config) { c.Mechanism = core.NDPage },
		"system":    func(c *Config) { c.System = memsys.CPU },
		"workload":  func(c *Config) { c.Workload = "pr" },
		"seed":      func(c *Config) { c.Seed = 99 },
		"mlp":       func(c *Config) { c.MLP = 4 },
		"pwc":       func(c *Config) { c.DisablePWC = true },
		"footprint": func(c *Config) { c.FootprintBytes = 1 << 30 },
	} {
		cfg := a
		mutate(&cfg)
		if cfg.Key() == a.Key() {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}

// TestKeyMechanismKnobs: each mechanism-specific knob distinguishes keys
// under its own mechanism (against that mechanism's defaults).
func TestKeyMechanismKnobs(t *testing.T) {
	for name, tc := range map[string]struct {
		mech   core.Mechanism
		mutate func(*Config)
	}{
		"victima gate":     {core.Victima, func(c *Config) { c.VictimaGate = 4 }},
		"identity promote": {core.NMT, func(c *Config) { c.IdentityPromote = true }},
		"pcx entries":      {core.PCAX, func(c *Config) { c.PCXEntries = 256 }},
	} {
		base := testCfg(memsys.NDP, 2, tc.mech, "rnd")
		cfg := base
		tc.mutate(&cfg)
		if cfg.Key() == base.Key() {
			t.Errorf("changing %s did not change the key", name)
		}
	}
	// The knob defaults spelled out hash like the zero form.
	zero := testCfg(memsys.NDP, 2, core.Victima, "rnd")
	explicit := zero
	explicit.VictimaGate = 2
	if zero.Key() != explicit.Key() {
		t.Error("explicit default VictimaGate changed the key")
	}
}

// TestKeyWorkloadIdentity: non-builtin workloads mix their identity
// material into the key — a trace key follows the capture's *content*,
// a registered key its name+params — while builtins hash exactly as
// before (no identity suffix).
func TestKeyWorkloadIdentity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k.ndpt")
	writeOps := func(a uint64) {
		w := trace.NewWriter("k", 1, 1)
		w.Append(0, trace.Op{Kind: trace.Load, Addr: a})
		var buf bytes.Buffer
		if err := w.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeOps(0x1000)
	cfg := testCfg(memsys.NDP, 1, core.Radix, "trace:"+path)
	k1 := cfg.Key()
	if k2 := cfg.Key(); k2 != k1 {
		t.Fatal("trace key not deterministic")
	}
	writeOps(0x2000)
	if cfg.Key() == k1 {
		t.Error("trace key unchanged after the capture's content changed")
	}

	if err := workload.Register(workload.Spec{
		Name:   "sim-key-test",
		Params: "v1",
		New:    workload.MustLookup("rnd").New,
	}); err != nil {
		t.Fatal(err)
	}
	reg := testCfg(memsys.NDP, 1, core.Radix, "sim-key-test")
	if reg.Key() == testCfg(memsys.NDP, 1, core.Radix, "rnd").Key() {
		t.Error("registered workload key collides with a builtin's")
	}
	if reg.Key() != reg.Key() {
		t.Error("registered key not deterministic")
	}
}

// TestTraceReplayRuns: a "trace:" workload drives a full simulation
// end to end — Validate, New, Run — and the measured instruction count
// matches the budget (the replay loops when the sim outruns the file).
func TestTraceReplayRuns(t *testing.T) {
	w := trace.NewWriter("e2e", 1, 2)
	for s := 0; s < 2; s++ {
		base := uint64(0x100000 * (s + 1))
		for i := uint64(0); i < 64; i++ {
			w.Append(s, trace.Op{Kind: trace.Load, Addr: base + 4096*i})
			w.Append(s, trace.Op{Kind: trace.Compute, Cycles: 2})
			w.Append(s, trace.Op{Kind: trace.Store, Addr: base + 4096*i})
		}
	}
	var buf bytes.Buffer
	if err := w.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "e2e.ndpt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := testCfg(memsys.NDP, 2, core.NDPage, "trace:"+path)
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != cfg.Instructions*uint64(cfg.Cores) {
		t.Errorf("instructions = %d, want %d", res.Instructions, cfg.Instructions*uint64(cfg.Cores))
	}
	if res.Loads == 0 || res.Stores == 0 {
		t.Errorf("replay issued no memory traffic: %d loads, %d stores", res.Loads, res.Stores)
	}
	// Determinism: an identical second run reproduces the cycle count.
	res2, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles != res.Cycles {
		t.Errorf("replay not deterministic: %d vs %d cycles", res2.Cycles, res.Cycles)
	}
}

func TestDescMentionsKnobs(t *testing.T) {
	cfg := testCfg(memsys.NDP, 4, core.Radix, "rnd")
	cfg.SharedWalker = true
	cfg.WalkerWidth = 2
	cfg.MLP = 8
	d := cfg.Desc()
	for _, want := range []string{"ndp", "Radix", "4c", "rnd", "+shared", "+w=2", "+mlp=8"} {
		if !strings.Contains(d, want) {
			t.Errorf("Desc %q missing %q", d, want)
		}
	}
	if plain := testCfg(memsys.CPU, 1, core.ECH, "pr").Desc(); strings.Contains(plain, "+") {
		t.Errorf("default-knob Desc %q has knob suffixes", plain)
	}

	mechCfg := testCfg(memsys.NDP, 2, core.Victima, "rnd")
	mechCfg.VictimaGate = 3
	if d := mechCfg.Desc(); !strings.Contains(d, "+gate=3") {
		t.Errorf("Desc %q missing +gate=3", d)
	}
	mechCfg = testCfg(memsys.NDP, 2, core.NMT, "rnd")
	mechCfg.IdentityPromote = true
	if d := mechCfg.Desc(); !strings.Contains(d, "+promote") {
		t.Errorf("Desc %q missing +promote", d)
	}
	mechCfg = testCfg(memsys.NDP, 2, core.PCAX, "rnd")
	mechCfg.PCXEntries = 256
	if d := mechCfg.Desc(); !strings.Contains(d, "+pcx=256") {
		t.Errorf("Desc %q missing +pcx=256", d)
	}
}
