package stats

import (
	"fmt"
	"strings"
)

// Table is a simple named-column table used by the experiment harness to
// render each paper figure as aligned text and CSV. Cells are stored as
// strings; numeric helpers format consistently so figures line up.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row. Rows shorter than the header are padded with
// empty cells; longer rows panic (a harness bug, not a data condition).
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("stats: row has %d cells but table %q has %d columns",
			len(cells), t.Title, len(t.Columns)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-text footnote rendered below the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// F formats a float with 2 decimal places for use as a cell.
func F(x float64) string { return fmt.Sprintf("%.2f", x) }

// F3 formats a float with 3 decimal places for use as a cell.
func F3(x float64) string { return fmt.Sprintf("%.3f", x) }

// Pct formats a ratio (0..1 scale already applied by caller) as "12.34%".
func Pct(x float64) string { return fmt.Sprintf("%.2f%%", x) }

// I formats an integer cell.
func I(x uint64) string { return fmt.Sprintf("%d", x) }

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quoting cells containing
// commas or quotes). Notes are emitted as trailing comment lines prefixed
// with "#".
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}
