package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Errorf("Counter = %d, want 10", c.Value())
	}
}

func TestHitMissRates(t *testing.T) {
	var h HitMiss
	if h.HitRate() != 0 || h.MissRate() != 0 {
		t.Error("zero-value HitMiss must report 0 rates")
	}
	for i := 0; i < 3; i++ {
		h.Hit()
	}
	h.Miss()
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
	if got := h.HitRate(); got != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", got)
	}
	if got := h.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %v, want 0.25", got)
	}
}

func TestHitMissRecordAndMerge(t *testing.T) {
	var a, b HitMiss
	a.Record(true)
	a.Record(false)
	b.Record(true)
	a.Merge(b)
	if a.Hits != 2 || a.Misses != 1 {
		t.Errorf("after merge: %+v", a)
	}
}

// Property: hit rate and miss rate always sum to 1 for non-empty counters.
func TestRatesSumToOne(t *testing.T) {
	f := func(hits, misses uint16) bool {
		if hits == 0 && misses == 0 {
			return true
		}
		h := HitMiss{Hits: Counter(hits), Misses: Counter(misses)}
		return math.Abs(h.HitRate()+h.MissRate()-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Error("zero-value Mean must be 0")
	}
	m.Add(2)
	m.Add(4)
	if m.Value() != 3 {
		t.Errorf("Mean = %v, want 3", m.Value())
	}
	m.AddN(3, 2)
	if m.Value() != 3 {
		t.Errorf("Mean after AddN = %v, want 3", m.Value())
	}
	var other Mean
	other.Add(13)
	m.Merge(other)
	if m.Count != 5 {
		t.Errorf("Count after merge = %d, want 5", m.Count)
	}
}

func TestRatioPercent(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator must be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio(3,4) != 0.75")
	}
	if Percent(1, 4) != 25 {
		t.Error("Percent(1,4) != 25")
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) must be 0")
	}
	got := GeoMean([]float64{2, 8})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	// Non-positive entries are ignored, not fatal.
	got = GeoMean([]float64{0, 4, -1, 4})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean with junk = %v, want 4", got)
	}
}

// Property: geometric mean lies between min and max of positive inputs.
func TestGeoMeanBounds(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithMeanMinMax(t *testing.T) {
	if ArithMean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty-slice helpers must return 0")
	}
	xs := []float64{3, 1, 2}
	if ArithMean(xs) != 2 {
		t.Error("ArithMean != 2")
	}
	if Min(xs) != 1 || Max(xs) != 3 {
		t.Error("Min/Max wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Fig X", "workload", "value")
	tab.AddRow("bfs", F(1.5))
	tab.AddRow("pr")
	tab.AddNote("scaled run")
	s := tab.String()
	for _, want := range []string{"== Fig X ==", "workload", "bfs", "1.50", "note: scaled run"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "bfs,1.50") {
		t.Errorf("CSV missing row: %s", csv)
	}
	if !strings.Contains(csv, "# scaled run") {
		t.Errorf("CSV missing note: %s", csv)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := NewTable("q", "a", "b")
	tab.AddRow(`va"l`, "x,y")
	csv := tab.CSV()
	if !strings.Contains(csv, `"va""l"`) || !strings.Contains(csv, `"x,y"`) {
		t.Errorf("CSV quoting wrong: %s", csv)
	}
}

func TestTableRowOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized row did not panic")
		}
	}()
	NewTable("t", "only").AddRow("a", "b")
}

func TestCellFormatters(t *testing.T) {
	if F(1.005) != "1.00" && F(1.005) != "1.01" { // float rounding either way is fine
		t.Errorf("F(1.005) = %q", F(1.005))
	}
	if F3(0.1234) != "0.123" {
		t.Errorf("F3 = %q", F3(0.1234))
	}
	if Pct(12.345) != "12.35%" && Pct(12.345) != "12.34%" {
		t.Errorf("Pct = %q", Pct(12.345))
	}
	if I(7) != "7" {
		t.Errorf("I = %q", I(7))
	}
}
