// Package stats provides the lightweight metric plumbing shared by the
// simulator: hit/miss counters, running means, geometric means, and a small
// table type used by the experiment harness to render paper figures as
// aligned text and CSV.
package stats

import "math"

// Counter is a monotonically increasing event count. The zero value is
// ready to use. Counters are not safe for concurrent use; the simulator is
// single-threaded by design (conservative min-clock interleaving).
type Counter uint64

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { *c++ }

// Value returns the current count.
func (c Counter) Value() uint64 { return uint64(c) }

// HitMiss tracks accesses that either hit or miss in some structure.
// The zero value is ready to use.
type HitMiss struct {
	Hits   Counter
	Misses Counter
}

// Hit records a hit.
func (h *HitMiss) Hit() { h.Hits.Inc() }

// Miss records a miss.
func (h *HitMiss) Miss() { h.Misses.Inc() }

// Record records a hit when hit is true and a miss otherwise.
func (h *HitMiss) Record(hit bool) {
	if hit {
		h.Hits.Inc()
	} else {
		h.Misses.Inc()
	}
}

// Total returns hits + misses.
func (h HitMiss) Total() uint64 { return uint64(h.Hits) + uint64(h.Misses) }

// HitRate returns hits / (hits + misses), or 0 when there were no accesses.
func (h HitMiss) HitRate() float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Hits) / float64(t)
}

// MissRate returns misses / (hits + misses), or 0 when there were no
// accesses.
func (h HitMiss) MissRate() float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Misses) / float64(t)
}

// Merge adds other's counts into h.
func (h *HitMiss) Merge(other HitMiss) {
	h.Hits += other.Hits
	h.Misses += other.Misses
}

// Mean is a running arithmetic mean with sum and count exposed.
// The zero value is ready to use.
type Mean struct {
	Sum   float64
	Count uint64
}

// Add folds one observation into the mean.
func (m *Mean) Add(x float64) {
	m.Sum += x
	m.Count++
}

// AddN folds n identical observations into the mean.
func (m *Mean) AddN(x float64, n uint64) {
	m.Sum += x * float64(n)
	m.Count += n
}

// Value returns the arithmetic mean, or 0 when no observations were added.
func (m Mean) Value() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / float64(m.Count)
}

// Merge folds other into m.
func (m *Mean) Merge(other Mean) {
	m.Sum += other.Sum
	m.Count += other.Count
}

// Ratio returns a/b, or 0 when b is zero. It exists because nearly every
// reported metric is a quotient of two counters and the zero-denominator
// guard must be uniform.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Percent returns 100*a/b, or 0 when b is zero.
func Percent(a, b uint64) float64 { return 100 * Ratio(a, b) }

// GeoMean returns the geometric mean of xs, ignoring non-positive entries
// (a speedup of 0 means "run did not execute" and must not zero the mean).
// It returns 0 if no positive entries exist.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// ArithMean returns the arithmetic mean of xs, or 0 for an empty slice.
func ArithMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
