package memsys

import (
	"ndpage/internal/addr"
	"ndpage/internal/assoc"
	"ndpage/internal/cache"
	"ndpage/internal/stats"
)

// VictimaStats counts the translation-block store's activity.
type VictimaStats struct {
	// Probes and Hits cover walker probes of the store.
	Probes stats.Counter
	Hits   stats.Counter
	// Fills counts translation blocks the predictor admitted into the
	// cache; Deferred counts fill offers it rejected (walk count for the
	// block still below the gate).
	Fills    stats.Counter
	Deferred stats.Counter
}

// HitRate returns the fraction of probes that hit.
func (s *VictimaStats) HitRate() float64 {
	return stats.Ratio(s.Hits.Value(), s.Probes.Value())
}

// VictimaStore is Victima-style translation caching (Kanellopoulos et
// al., MICRO 2023): the last-level cache accepts leaf translation
// blocks alongside data lines, so PTE reach scales with cache capacity
// instead of with dedicated TLB entries. It adapts the hierarchy's
// shared last-level cache into a translation-block cache satisfying
// walker.XlatCache — the walker probes it before walking, and a hit
// supplies the leaf PTE at cache latency with zero PTE traffic, while
// insertion is gated by a TLB-miss predictor so translation blocks
// displace data only where they will be reused. On CPU systems the
// target is the shared L3; the evaluated NDP organization has no
// shared level, so blocks live in the probing core's L1D — the
// underutilized data capacity nearest the walker.
type VictimaStore struct {
	h    *Hierarchy
	gate int
	pred *assoc.Table[uint8] // walks seen per block, keyed by block ordinal
	st   VictimaStats
}

// predictor geometry: 256 sets x 4 ways = 1024 tracked blocks.
const victimaPredSets, victimaPredWays = 256, 4

func newVictimaStore(h *Hierarchy, gate int) *VictimaStore {
	return &VictimaStore{h: h, gate: gate, pred: assoc.New[uint8](victimaPredSets, victimaPredWays)}
}

// Stats returns the live counters.
func (s *VictimaStore) Stats() *VictimaStats { return &s.st }

// target returns the cache holding translation blocks for core.
func (s *VictimaStore) target(core int) *cache.Cache {
	if s.h.l3 != nil {
		return s.h.l3
	}
	return s.h.l1d[core]
}

// Probe implements walker.XlatCache: check for the translation block
// covering v at the target cache's latency.
func (s *VictimaStore) Probe(core int, t uint64, v addr.V) (uint64, bool) {
	s.st.Probes.Inc()
	c := s.target(core)
	t += c.Latency()
	if c.LookupXlat(v.Page()) {
		s.st.Hits.Inc()
		return t, true
	}
	return t, false
}

// Fill implements walker.XlatCache: offer the block covering v after a
// completed walk. The predictor admits it only once gate walks have
// demanded the block; an admitted fill that displaces a dirty data line
// writes the victim back to memory.
func (s *VictimaStore) Fill(core int, t uint64, v addr.V) {
	key := uint64(v.Page()) / cache.XlatBlockPages
	n, _ := s.pred.Lookup(key)
	if int(n)+1 < s.gate {
		s.pred.Insert(key, n+1)
		s.st.Deferred.Inc()
		return
	}
	s.pred.Invalidate(key)
	s.st.Fills.Inc()
	if ev, evicted := s.target(core).FillXlat(v.Page()); evicted && ev.Dirty {
		s.h.asyncWrite(ev.Line, ev.Class, t)
	}
}

// ResetStats zeroes the counters (predictor and cache contents persist).
func (s *VictimaStore) ResetStats() { s.st = VictimaStats{} }
