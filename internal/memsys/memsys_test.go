package memsys

import (
	"testing"

	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/xrand"
)

func TestDefaultConfigs(t *testing.T) {
	cpu := Default(CPU, 4)
	if cpu.L2.Size == 0 || cpu.L3.Size == 0 {
		t.Error("CPU config must have L2 and L3")
	}
	ndp := Default(NDP, 4)
	if ndp.L2.Size != 0 || ndp.L3.Size != 0 {
		t.Error("NDP config must have no L2/L3 (Table I)")
	}
	if ndp.Mesh.Hops >= cpu.Mesh.Hops {
		t.Error("NDP cores must sit closer to memory than CPU cores")
	}
	if CPU.String() != "cpu" || NDP.String() != "ndp" {
		t.Error("Kind.String wrong")
	}
}

func TestInvalidCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("0 cores did not panic")
		}
	}()
	New(Default(NDP, 0))
}

func TestL3ScalesWithCores(t *testing.T) {
	h4 := New(Default(CPU, 4))
	h1 := New(Default(CPU, 1))
	// 2 MB per core: the 4-core L3 has 4x the lines.
	if h4.L3() == nil || h1.L3() == nil {
		t.Fatal("missing L3")
	}
	// Fill h1's L3 working set; h4 must hold 4x.
	// (indirect check via config)
	if got := h4.Config().L3.Size; got != h1.Config().L3.Size {
		t.Errorf("config L3 Size should stay per-core: %d vs %d", got, h1.Config().L3.Size)
	}
}

func TestNDPHitLatency(t *testing.T) {
	h := New(Default(NDP, 1))
	pa := addr.P(0x1000)
	// Cold access: L1(4) + mesh(4) + HBM(110+4) + mesh back(4).
	done := h.Access(0, 0, pa, access.Read, access.Data)
	want := uint64(4) + 4 + (110 + 4) + 4
	if done != want {
		t.Errorf("NDP cold access = %d cycles, want %d", done, want)
	}
	// Warm access: L1 hit only.
	start := done
	done = h.Access(0, start, pa, access.Read, access.Data)
	if done-start != 4 {
		t.Errorf("NDP L1 hit = %d cycles, want 4", done-start)
	}
}

func TestCPUHitLatencies(t *testing.T) {
	h := New(Default(CPU, 1))
	pa := addr.P(0x2000)
	h.Access(0, 0, pa, access.Read, access.Data) // cold fill of all levels
	// L1 hit.
	s := uint64(100000)
	if d := h.Access(0, s, pa, access.Read, access.Data) - s; d != 4 {
		t.Errorf("L1 hit = %d", d)
	}
	// Evict from L1 only (fill conflicting lines into L1 set).
	// Simpler: invalidate L1 line to force L2 hit.
	h.L1D(0).Invalidate(pa.Line())
	if d := h.Access(0, s, pa, access.Read, access.Data) - s; d != 4+16 {
		t.Errorf("L2 hit = %d, want 20", d)
	}
	h.L1D(0).Invalidate(pa.Line())
	h.L2(0).Invalidate(pa.Line())
	if d := h.Access(0, s, pa, access.Read, access.Data) - s; d != 4+16+35 {
		t.Errorf("L3 hit = %d, want 55", d)
	}
}

func TestCPUMemoryAccessCostsMeshBothWays(t *testing.T) {
	h := New(Default(CPU, 1))
	pa := addr.P(0x3000)
	done := h.Access(0, 0, pa, access.Read, access.Data)
	// L1+L2+L3 misses (4+16+35) + mesh 16 + DRAM (114+14) + mesh 16.
	want := uint64(4+16+35) + 16 + (114 + 14) + 16
	if done != want {
		t.Errorf("CPU cold access = %d, want %d", done, want)
	}
}

func TestBypassSkipsL1(t *testing.T) {
	cfg := Default(NDP, 1)
	cfg.BypassL1PTE = true
	h := New(cfg)
	pa := addr.P(0x4000)
	// PTE access: no L1 latency, no L1 fill.
	done := h.Access(0, 0, pa, access.Read, access.PTE)
	want := uint64(4) + (110 + 4) + 4 // mesh + HBM + mesh
	if done != want {
		t.Errorf("bypassed PTE access = %d, want %d", done, want)
	}
	if h.L1D(0).Contains(pa.Line()) {
		t.Error("bypassed PTE line was filled into L1")
	}
	if h.L1D(0).Stats().Bypassed.Value() != 1 {
		t.Error("bypass not counted")
	}
	// Data accesses still use the L1.
	done2 := h.Access(0, 1000, pa, access.Read, access.Data)
	if done2-1000 <= 4 {
		t.Error("data access suspiciously fast")
	}
	if !h.L1D(0).Contains(pa.Line()) {
		t.Error("data line not filled into L1")
	}
}

func TestNoBypassPTEFillsL1(t *testing.T) {
	h := New(Default(NDP, 1))
	pa := addr.P(0x5000)
	h.Access(0, 0, pa, access.Read, access.PTE)
	if !h.L1D(0).Contains(pa.Line()) {
		t.Error("baseline must cache PTEs in L1 (that is the pollution problem)")
	}
}

func TestCodeUsesL1I(t *testing.T) {
	h := New(Default(NDP, 1))
	pa := addr.P(0x6000)
	h.Access(0, 0, pa, access.Read, access.Code)
	if !h.L1I(0).Contains(pa.Line()) || h.L1D(0).Contains(pa.Line()) {
		t.Error("code access must fill L1I, not L1D")
	}
}

func TestPrivateL1PerCore(t *testing.T) {
	h := New(Default(NDP, 2))
	pa := addr.P(0x7000)
	h.Access(0, 0, pa, access.Read, access.Data)
	if h.L1D(1).Contains(pa.Line()) {
		t.Error("core 1's L1 contains core 0's line")
	}
	// Core 1 misses L1 but both share HBM banks.
	d := h.Access(1, 0, pa, access.Read, access.Data)
	if d <= 4 {
		t.Error("core 1 should not hit its empty L1")
	}
}

func TestSharedL3AcrossCores(t *testing.T) {
	h := New(Default(CPU, 2))
	pa := addr.P(0x8000)
	h.Access(0, 0, pa, access.Read, access.Data)
	// Core 1: misses private L1/L2, hits shared L3.
	s := uint64(10000)
	d := h.Access(1, s, pa, access.Read, access.Data) - s
	if d != 4+16+35 {
		t.Errorf("core 1 shared-L3 hit = %d, want 55", d)
	}
}

func TestDirtyEvictionReachesDRAM(t *testing.T) {
	cfg := Default(NDP, 1)
	// Tiny L1 to force evictions quickly.
	cfg.L1D.Size = 2 * addr.LineSize
	cfg.L1D.Ways = 2
	h := New(cfg)
	rng := xrand.New(3)
	t0 := uint64(0)
	for i := 0; i < 64; i++ {
		pa := addr.P(rng.Uint64n(1<<24)) &^ addr.LineSize
		t0 = h.Access(0, t0, pa, access.Write, access.Data)
	}
	wr := h.DRAM().Stats().PerClass[access.Data].Value()
	wbs := h.L1D(0).Stats().Writebacks.Value()
	if wbs == 0 {
		t.Fatal("no writebacks recorded")
	}
	// DRAM sees fills + async write-backs: strictly more accesses than
	// the 64 demand fills.
	if wr <= 64 {
		t.Errorf("DRAM accesses = %d, want > 64 (write-backs missing)", wr)
	}
}

func TestResetStatsPreservesContents(t *testing.T) {
	h := New(Default(CPU, 1))
	pa := addr.P(0x9000)
	h.Access(0, 0, pa, access.Read, access.Data)
	h.ResetStats()
	if h.L1D(0).Stats().Total().Total() != 0 {
		t.Error("L1 stats not reset")
	}
	if h.DRAM().Stats().Accesses.Value() != 0 {
		t.Error("DRAM stats not reset")
	}
	// Contents preserved: warm hit.
	s := uint64(50000)
	if d := h.Access(0, s, pa, access.Read, access.Data) - s; d != 4 {
		t.Errorf("post-reset access = %d, want warm L1 hit (4)", d)
	}
}

// TestPollutionObservable reproduces the Figure 7 mechanism in miniature:
// interleaving PTE traffic with a data working set that fits the L1 raises
// the data miss rate.
func TestPollutionObservable(t *testing.T) {
	missRate := func(pteTraffic bool) float64 {
		h := New(Default(NDP, 1))
		rng := xrand.New(7)
		tm := uint64(0)
		dataLines := 256 // 16 KB working set: fits 32 KB L1
		for i := 0; i < 20000; i++ {
			pa := addr.P(rng.Uint64n(uint64(dataLines)) << addr.LineShift)
			tm = h.Access(0, tm, pa, access.Read, access.Data)
			if pteTraffic && i%2 == 0 {
				ppa := addr.P(1<<30 + rng.Uint64n(1<<28)<<3)
				tm = h.Access(0, tm, ppa, access.Read, access.PTE)
			}
		}
		return h.L1D(0).Stats().PerClass[access.Data].MissRate()
	}
	clean := missRate(false)
	polluted := missRate(true)
	if polluted <= clean*1.5 {
		t.Errorf("pollution invisible: clean %.4f vs polluted %.4f", clean, polluted)
	}
}
