// Package memsys composes the per-system memory hierarchy from Table I:
//
//	CPU:  per-core L1I/L1D (32 KB) -> per-core L2 (512 KB) ->
//	      shared L3 (2 MB/core) -> 4-hop mesh -> DDR4-2400
//	NDP:  per-core L1I/L1D (32 KB) -> 1-hop vault link -> HBM2
//
// Every request carries an access.Class. The hierarchy supports NDPage's
// metadata bypass: when enabled, PTE-class requests skip the L1 entirely
// and go straight to memory, so they are neither slowed by a pointless L1
// probe-and-fill nor allowed to evict data lines (paper Section V-A).
// Classes are otherwise treated identically, which is exactly the
// baseline behaviour the paper criticizes.
package memsys

import (
	"fmt"

	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/cache"
	"ndpage/internal/dram"
	"ndpage/internal/noc"
)

// Kind selects CPU or NDP system organization.
type Kind int

// System kinds.
const (
	CPU Kind = iota
	NDP
)

// String names the kind.
func (k Kind) String() string {
	if k == NDP {
		return "ndp"
	}
	return "cpu"
}

// Config describes the full memory system of one simulated machine.
type Config struct {
	Kind  Kind
	Cores int
	L1D   cache.Config
	L1I   cache.Config
	L2    cache.Config // per core; used when Kind == CPU
	L3    cache.Config // shared; Size is per core and scaled by Cores
	Mesh  noc.Config
	DRAM  dram.Config
	// BypassL1PTE enables NDPage's metadata bypass (PTE-class requests
	// skip the L1 and go straight to memory).
	BypassL1PTE bool
	// VictimaGate enables the Victima translation-block store when > 0:
	// the shared last-level cache accepts leaf translation blocks, and
	// a block is admitted after VictimaGate walks have demanded it.
	VictimaGate int
}

// Default returns the Table I configuration for the given kind and core
// count.
func Default(kind Kind, cores int) Config {
	cfg := Config{
		Kind:  kind,
		Cores: cores,
		L1D:   cache.Config{Name: "L1D", Size: 32 << 10, Ways: 8, Latency: 4},
		L1I:   cache.Config{Name: "L1I", Size: 32 << 10, Ways: 8, Latency: 4},
	}
	if kind == CPU {
		cfg.L2 = cache.Config{Name: "L2", Size: 512 << 10, Ways: 16, Latency: 16}
		cfg.L3 = cache.Config{Name: "L3", Size: 2 << 20, Ways: 16, Latency: 35}
		cfg.Mesh = noc.CPUMesh()
		cfg.DRAM = dram.DDR4()
	} else {
		cfg.Mesh = noc.NDPMesh()
		cfg.DRAM = dram.HBM2()
	}
	return cfg
}

// Hierarchy is the instantiated memory system. Not safe for concurrent
// use; the simulator serializes accesses in global time order.
type Hierarchy struct {
	cfg     Config
	l1d     []*cache.Cache
	l1i     []*cache.Cache
	l2      []*cache.Cache
	l3      *cache.Cache
	mesh    *noc.Mesh
	mem     *dram.Memory
	victima *VictimaStore
}

// New instantiates the hierarchy.
func New(cfg Config) *Hierarchy {
	if cfg.Cores <= 0 {
		panic(fmt.Sprintf("memsys: invalid core count %d", cfg.Cores))
	}
	h := &Hierarchy{
		cfg:  cfg,
		mesh: noc.New(cfg.Mesh),
		mem:  dram.New(cfg.DRAM),
	}
	for i := 0; i < cfg.Cores; i++ {
		d := cfg.L1D
		d.Name = fmt.Sprintf("L1D.%d", i)
		h.l1d = append(h.l1d, cache.New(d))
		ic := cfg.L1I
		ic.Name = fmt.Sprintf("L1I.%d", i)
		h.l1i = append(h.l1i, cache.New(ic))
		if cfg.Kind == CPU {
			l2 := cfg.L2
			l2.Name = fmt.Sprintf("L2.%d", i)
			h.l2 = append(h.l2, cache.New(l2))
		}
	}
	if cfg.Kind == CPU {
		l3 := cfg.L3
		l3.Size *= uint64(cfg.Cores) // 2 MB per core, shared
		h.l3 = cache.New(l3)
	}
	if cfg.VictimaGate > 0 {
		h.victima = newVictimaStore(h, cfg.VictimaGate)
	}
	return h
}

// Config returns the configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// L1D returns core i's L1 data cache (for statistics).
func (h *Hierarchy) L1D(core int) *cache.Cache { return h.l1d[core] }

// L1I returns core i's L1 instruction cache.
func (h *Hierarchy) L1I(core int) *cache.Cache { return h.l1i[core] }

// L2 returns core i's L2 cache, or nil on NDP systems.
func (h *Hierarchy) L2(core int) *cache.Cache {
	if h.l2 == nil {
		return nil
	}
	return h.l2[core]
}

// L3 returns the shared L3, or nil on NDP systems.
func (h *Hierarchy) L3() *cache.Cache { return h.l3 }

// Mesh returns the interconnect.
func (h *Hierarchy) Mesh() *noc.Mesh { return h.mesh }

// DRAM returns the memory device.
func (h *Hierarchy) DRAM() *dram.Memory { return h.mem }

// Victima returns the translation-block store, or nil when
// Config.VictimaGate is zero.
func (h *Hierarchy) Victima() *VictimaStore { return h.victima }

// Access issues one 64 B request from a core at absolute time now and
// returns the absolute completion time.
func (h *Hierarchy) Access(core int, now uint64, pa addr.P, op access.Op, class access.Class) uint64 {
	if h.cfg.BypassL1PTE && class == access.PTE {
		// NDPage metadata bypass: no L1 probe, no L1 fill. On CPU
		// systems the deeper levels still apply; the evaluated NDP
		// configuration has no deeper levels, so this goes straight
		// to memory.
		h.l1d[core].Stats().Bypassed.Inc()
		if h.cfg.Kind == CPU {
			return h.cpuBeyondL1(core, now, pa, op, class)
		}
		return h.memAccess(now, pa, op, class)
	}

	l1 := h.l1d[core]
	if class == access.Code {
		l1 = h.l1i[core]
	}
	line := pa.Line()
	t := now + l1.Latency()
	if l1.Lookup(line, op, class) {
		return t
	}
	if h.cfg.Kind == CPU {
		t = h.cpuBeyondL1(core, t, pa, op, class)
	} else {
		t = h.memAccess(t, pa, op, class)
	}
	h.fill(core, l1, 0, line, op, class, t)
	return t
}

// cpuBeyondL1 walks L2 -> L3 -> memory on the CPU system, filling on the
// way back.
func (h *Hierarchy) cpuBeyondL1(core int, t uint64, pa addr.P, op access.Op, class access.Class) uint64 {
	line := pa.Line()
	l2 := h.l2[core]
	t += l2.Latency()
	if l2.Lookup(line, op, class) {
		return t
	}
	t += h.l3.Latency()
	if h.l3.Lookup(line, op, class) {
		h.fill(core, l2, 1, line, op, class, t)
		return t
	}
	t = h.memAccess(t, pa, op, class)
	h.fill(core, h.l3, 2, line, op, class, t)
	h.fill(core, l2, 1, line, op, class, t)
	return t
}

// memAccess crosses the interconnect, accesses DRAM, and returns.
func (h *Hierarchy) memAccess(t uint64, pa addr.P, op access.Op, class access.Class) uint64 {
	t = h.mesh.Traverse(t)
	t = h.mem.Access(t, pa, op, class)
	return t + h.mesh.OneWay() // response path
}

// fill inserts a line into cache c (depth 0 = L1, 1 = L2, 2 = L3) and
// routes any dirty victim outward: inner victims are absorbed by the next
// level that holds the line; victims leaving the outermost level become
// asynchronous DRAM writes (they occupy a bank but do not stall the core).
func (h *Hierarchy) fill(core int, c *cache.Cache, depth int, line uint64, op access.Op, class access.Class, t uint64) {
	ev, evicted := c.Fill(line, op, class)
	if !evicted || !ev.Dirty {
		return
	}
	switch {
	case h.cfg.Kind == CPU && depth == 0:
		if h.l2[core].WritebackInto(ev.Line) {
			return
		}
		fallthrough
	case h.cfg.Kind == CPU && depth == 1:
		if h.l3.WritebackInto(ev.Line) {
			return
		}
		fallthrough
	default:
		h.asyncWrite(ev.Line, ev.Class, t)
	}
}

// asyncWrite models a write-back leaving the cache hierarchy.
func (h *Hierarchy) asyncWrite(line uint64, class access.Class, t uint64) {
	wt := h.mesh.Traverse(t)
	h.mem.Access(wt, addr.P(line<<addr.LineShift), access.Write, class)
}

// ResetStats zeroes every component's counters; timing state (bank
// occupancy, cache contents) is preserved so measurement windows start
// warm.
func (h *Hierarchy) ResetStats() {
	for i := range h.l1d {
		h.l1d[i].ResetStats()
		h.l1i[i].ResetStats()
	}
	for i := range h.l2 {
		h.l2[i].ResetStats()
	}
	if h.l3 != nil {
		h.l3.ResetStats()
	}
	*h.mesh.Stats() = noc.Stats{}
	*h.mem.Stats() = dram.Stats{}
	if h.victima != nil {
		h.victima.ResetStats()
	}
}
