// Package engine is the simulator's event-scheduled execution core: a
// deterministic discrete-event queue that replaces the per-step
// min-clock scan over all cores. Actors (cores, walkers) schedule
// closures at absolute times; Run dispatches them in strict
// (time, actor, seq) order, so ties between actors resolve by actor id
// (matching the old scan's lowest-index-first choice) and ties within an
// actor resolve by scheduling order. The queue is a binary min-heap, so
// each dispatch costs O(log n) in the number of pending events instead
// of the O(cores) scan the step-driven loop paid per instruction.
//
// The engine is single-threaded and allocation-light: one heap slot per
// pending event, no goroutines, no channels. A simulation owns exactly
// one engine; separate simulations (the exp Runner prefetches runs
// across goroutines) own separate engines and share nothing.
package engine

import "fmt"

// event is one scheduled closure.
type event struct {
	time  uint64
	actor int
	seq   uint64
	fn    func()
}

// before is the strict (time, actor, seq) order.
func (e *event) before(o *event) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	if e.actor != o.actor {
		return e.actor < o.actor
	}
	return e.seq < o.seq
}

// Engine is a deterministic discrete-event scheduler. Not safe for
// concurrent use; one simulation drives one engine from one goroutine.
type Engine struct {
	heap []event
	seq  uint64
	now  uint64
	// dispatched counts events executed over the engine's lifetime.
	dispatched uint64
}

// New returns an empty engine at time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the time of the most recently dispatched event. Time never
// moves backwards.
func (e *Engine) Now() uint64 { return e.now }

// Len returns the number of pending events.
func (e *Engine) Len() int { return len(e.heap) }

// Dispatched returns the number of events executed so far.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// Rewind moves the clock back to zero between event horizons: the
// simulator's warmup and measurement phases each drain the queue, and
// the next phase re-seeds it from per-actor clocks that may lie before
// the previous phase's final event. Rewinding with events still pending
// would reorder them and panics.
func (e *Engine) Rewind() {
	if len(e.heap) != 0 {
		panic("engine: Rewind with pending events")
	}
	e.now = 0
}

// Schedule enqueues fn to run at absolute time t on behalf of actor.
// Events fire in (time, actor, seq) order; seq is the global scheduling
// order, so two events at the same (time, actor) fire in the order they
// were scheduled. Scheduling into the past is a model bug and panics.
func (e *Engine) Schedule(t uint64, actor int, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("engine: event scheduled at %d, before current time %d", t, e.now))
	}
	e.heap = append(e.heap, event{time: t, actor: actor, seq: e.seq, fn: fn})
	e.seq++
	e.up(len(e.heap) - 1)
}

// Step dispatches the earliest pending event. It returns false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap[last] = event{} // release the closure
	e.heap = e.heap[:last]
	if last > 0 {
		e.down(0)
	}
	e.now = ev.time
	e.dispatched++
	ev.fn()
	return true
}

// Run dispatches events in order until none remain. Events scheduled
// during dispatch are folded into the same run.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// up restores the heap property from leaf i toward the root.
func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heap[i].before(&e.heap[parent]) {
			return
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// down restores the heap property from node i toward the leaves.
func (e *Engine) down(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && e.heap[l].before(&e.heap[least]) {
			least = l
		}
		if r < n && e.heap[r].before(&e.heap[least]) {
			least = r
		}
		if least == i {
			return
		}
		e.heap[i], e.heap[least] = e.heap[least], e.heap[i]
		i = least
	}
}
