// Package engine is the simulator's event-scheduled execution core: a
// deterministic discrete-event queue that replaces the per-step
// min-clock scan over all cores. Actors (cores, walkers) implement the
// Actor interface once; events are typed — a (kind, payload) pair
// delivered to a target actor at an absolute time — and are stored
// inline in the heap as value structs, so scheduling an event performs
// no heap allocation. Run dispatches in strict (time, actor, seq)
// order, so ties between actors resolve by actor id (matching the old
// scan's lowest-index-first choice) and ties within an actor resolve by
// scheduling order. The queue is a binary min-heap, so each dispatch
// costs O(log n) in the number of pending events instead of the
// O(cores) scan the step-driven loop paid per instruction.
//
// The engine is single-threaded and allocation-free on the hot path:
// one inline heap slot per pending event, no closures, no goroutines,
// no channels. A simulation owns exactly one engine; separate
// simulations (the sweep Runner fans runs out across goroutines) own
// separate engines and share nothing.
package engine

import "fmt"

// Actor receives dispatched events. Cores and walkers implement it once
// and interpret (kind, payload) themselves: kind namespaces are private
// to each actor type, and payload carries whatever one word of context
// the event needs (a slot index, a completion time — or nothing).
type Actor interface {
	OnEvent(now uint64, kind uint8, payload uint64)
}

// event is one scheduled typed event, stored inline in the heap.
type event struct {
	time    uint64
	seq     uint64
	payload uint64
	target  Actor
	actor   int32
	kind    uint8
}

// before is the strict (time, actor, seq) order.
func (e *event) before(o *event) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	if e.actor != o.actor {
		return e.actor < o.actor
	}
	return e.seq < o.seq
}

// Engine is a deterministic discrete-event scheduler. Not safe for
// concurrent use; one simulation drives one engine from one goroutine.
type Engine struct {
	heap []event
	seq  uint64
	now  uint64
	// dispatched counts events executed over the engine's lifetime.
	dispatched uint64
}

// New returns an empty engine at time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the time of the most recently dispatched event. Time never
// moves backwards.
func (e *Engine) Now() uint64 { return e.now }

// Len returns the number of pending events.
func (e *Engine) Len() int { return len(e.heap) }

// Dispatched returns the number of events executed so far.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// Rewind moves the clock back to zero between event horizons: the
// simulator's warmup and measurement phases each drain the queue, and
// the next phase re-seeds it from per-actor clocks that may lie before
// the previous phase's final event. Rewinding with events still pending
// would reorder them and panics.
func (e *Engine) Rewind() {
	if len(e.heap) != 0 {
		panic("engine: Rewind with pending events")
	}
	e.now = 0
}

// Schedule enqueues a (kind, payload) event for target at absolute time
// t, ordered on behalf of actor. The actor id is purely an ordering
// key: a walker schedules its release events under the requesting
// core's id so that ties at equal times resolve exactly as they did
// when the core itself did the work. Events fire in (time, actor, seq)
// order; seq is the global scheduling order, so two events at the same
// (time, actor) fire in the order they were scheduled. Scheduling into
// the past is a model bug and panics.
func (e *Engine) Schedule(t uint64, actor int, target Actor, kind uint8, payload uint64) {
	if t < e.now {
		panic(fmt.Sprintf("engine: event scheduled at %d, before current time %d", t, e.now))
	}
	e.heap = append(e.heap, event{time: t, seq: e.seq, payload: payload, target: target, actor: int32(actor), kind: kind})
	e.seq++
	e.up(len(e.heap) - 1)
}

// Step dispatches the earliest pending event. It returns false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap[last] = event{} // drop the vacated slot's Actor reference
	e.heap = e.heap[:last]
	if last > 0 {
		e.down(0)
	}
	e.now = ev.time
	e.dispatched++
	ev.target.OnEvent(ev.time, ev.kind, ev.payload)
	return true
}

// Run dispatches events in order until none remain. Events scheduled
// during dispatch are folded into the same run.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// up restores the heap property from leaf i toward the root.
func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heap[i].before(&e.heap[parent]) {
			return
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// down restores the heap property from node i toward the leaves.
func (e *Engine) down(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && e.heap[l].before(&e.heap[least]) {
			least = l
		}
		if r < n && e.heap[r].before(&e.heap[least]) {
			least = r
		}
		if least == i {
			return
		}
		e.heap[i], e.heap[least] = e.heap[least], e.heap[i]
		i = least
	}
}
