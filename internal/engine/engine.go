// Package engine is the simulator's event-scheduled execution core: a
// deterministic discrete-event queue that replaces the per-step
// min-clock scan over all cores. Actors (cores, walkers) implement the
// Actor interface once; events are typed — a (kind, payload) pair
// delivered to a target actor at an absolute time — and are stored
// inline as value structs, so scheduling an event performs no heap
// allocation. Dispatch follows the strict (time, actor, seq) order, so
// ties between actors resolve by actor id (matching the old scan's
// lowest-index-first choice) and ties within an actor resolve by
// scheduling order.
//
// The queue is a hierarchical calendar queue (a bucketed timing wheel
// with an overflow far list), the classic discrete-event-simulation
// structure for schedules whose event-time deltas are small and
// regular — exactly the simulator's regime, where deltas are cache,
// DRAM, and mesh latencies of tens to hundreds of cycles:
//
//   - nBuckets buckets of power-of-two width cover the sliding window
//     [base, base + nBuckets<<shift). Scheduling is O(1): index the
//     bucket, append, set an occupancy bit.
//   - Events beyond the window land in an unsorted far list. When the
//     wheel drains, the window rebases onto the earliest far event and
//     the far list redistributes — the far list is bounded by the
//     pending-event count (O(cores × MLP)), so the occasional scan is
//     cheap.
//   - The bucket width adapts: observed schedule deltas are averaged
//     and each rebase re-picks the width so a typical delta spans
//     about an eighth of the window (see adapt), keeping buckets at
//     O(1) occupancy without overflowing everything to the far list.
//   - Dispatch extracts the earliest bucket's full batch of
//     same-timestamp events at once, sorted by (actor, seq), and
//     drains the batch without re-probing the wheel; events scheduled
//     mid-batch at the batch's own timestamp merge into the remaining
//     batch in sorted position, reproducing the heap's semantics
//     exactly.
//
// The binary min-heap the wheel replaced is retained in-package
// (UseHeapFallback) as the oracle for differential tests: randomized
// schedules must dispatch identically through both queues.
//
// The engine is single-threaded and allocation-free on the hot path:
// events are value structs in reused bucket slices, no closures, no
// goroutines, no channels. A simulation owns exactly one engine;
// separate simulations (the sweep Runner fans runs out across
// goroutines) own separate engines and share nothing.
package engine

import (
	"fmt"
	"math/bits"
)

// Actor receives dispatched events. Cores and walkers implement it once
// and interpret (kind, payload) themselves: kind namespaces are private
// to each actor type, and payload carries whatever one word of context
// the event needs (a slot index, a completion time — or nothing).
type Actor interface {
	OnEvent(now uint64, kind uint8, payload uint64)
}

// event is one scheduled typed event, stored inline in a bucket (or in
// the heap-fallback queue).
type event struct {
	time    uint64
	seq     uint64
	payload uint64
	target  Actor
	actor   int32
	kind    uint8
}

// before is the strict (time, actor, seq) order (heap fallback).
func (e *event) before(o *event) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	if e.actor != o.actor {
		return e.actor < o.actor
	}
	return e.seq < o.seq
}

// UseHeapFallback, when set before New, builds engines on the retained
// binary min-heap instead of the calendar queue. It exists for the
// differential tests that pin the two queues to identical dispatch
// orders (and as an escape hatch while the wheel beds in); production
// code leaves it false. Not safe to flip concurrently with New.
var UseHeapFallback = false

const (
	// nBuckets is the wheel size. 256 buckets at the adaptive width
	// cover several typical event-time spans, so rebases are rare
	// relative to dispatches.
	nBuckets = 256
	occWords = nBuckets / 64
	// initShift is the pre-adaptation bucket width (2^6 = 64 cycles),
	// sized for the simulator's cache/DRAM latency deltas.
	initShift = 6
	// maxShift caps the adaptive width so the window arithmetic stays
	// comfortably inside uint64.
	maxShift = 48
	// crowdLimit triggers a re-bucketing when one bucket accumulates
	// this many events: the width is too coarse for the observed
	// deltas, and rebases alone would not shrink it (a huge window
	// never drains to the far list).
	crowdLimit = 64
)

// Engine is a deterministic discrete-event scheduler. Not safe for
// concurrent use; one simulation drives one engine from one goroutine.
type Engine struct {
	// Calendar wheel: buckets[i] holds events with
	// time in [base + i<<shift, base + (i+1)<<shift), unordered; occ is
	// the non-empty-bucket bitmap; wheelN counts wheel-resident events.
	buckets [nBuckets][]event
	occ     [occWords]uint64
	wheelN  int
	base    uint64
	shift   uint
	// far holds events at or beyond the window's horizon, unordered.
	far []event

	// batch is the current same-timestamp dispatch batch, sorted by
	// (actor, seq) from batchPos on; everything before batchPos has
	// been dispatched.
	batch    []event
	batchPos int

	// Observed schedule deltas (time - now), for width adaptation.
	deltaSum uint64
	deltaCnt uint64

	// heap is the binary-min-heap fallback queue (UseHeapFallback).
	heap    []event
	useHeap bool

	seq uint64
	now uint64
	// dispatched counts events executed over the engine's lifetime;
	// batched counts the subset delivered from an already-extracted
	// batch, i.e. without re-probing the wheel.
	dispatched uint64
	batched    uint64
}

// bucketSeedCap is the per-bucket capacity carved from the construction
// arena; buckets that outgrow it fall back to ordinary append growth
// (and keep the grown capacity for the engine's lifetime).
const bucketSeedCap = 4

// New returns an empty engine at time zero. Every bucket's initial
// backing storage is carved from one arena allocation, so the wheel
// reaches its steady no-allocation state without 256 first-touch
// growths.
func New() *Engine {
	e := &Engine{shift: initShift, useHeap: UseHeapFallback}
	if !e.useHeap {
		arena := make([]event, nBuckets*bucketSeedCap)
		for i := range e.buckets {
			e.buckets[i] = arena[i*bucketSeedCap : i*bucketSeedCap : (i+1)*bucketSeedCap]
		}
	}
	return e
}

// Now returns the time of the most recently dispatched event. Time never
// moves backwards.
func (e *Engine) Now() uint64 { return e.now }

// Len returns the number of pending events.
func (e *Engine) Len() int {
	if e.useHeap {
		return len(e.heap)
	}
	return e.wheelN + len(e.far) + (len(e.batch) - e.batchPos)
}

// Dispatched returns the number of events executed so far.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// Batched returns how many dispatches were served from an
// already-extracted same-timestamp batch — that is, without probing the
// wheel at all. The ratio Batched/Dispatched is the same-tick batching
// rate.
func (e *Engine) Batched() uint64 { return e.batched }

// Rewind moves the clock back to zero between event horizons: the
// simulator's warmup and measurement phases each drain the queue, and
// the next phase re-seeds it from per-actor clocks that may lie before
// the previous phase's final event. Rewinding resets the calendar
// queue's window too — the bucket base returns to zero alongside the
// clock, while the adaptively learned bucket width carries over to the
// next phase (the deltas that tuned it are a property of the machine,
// not the phase). Rewinding with events still pending would reorder
// them and panics.
func (e *Engine) Rewind() {
	if e.Len() != 0 {
		panic("engine: Rewind with pending events")
	}
	e.now = 0
	e.base = 0
	e.batch = e.batch[:0]
	e.batchPos = 0
}

// Schedule enqueues a (kind, payload) event for target at absolute time
// t, ordered on behalf of actor. The actor id is purely an ordering
// key: a walker schedules its release events under the requesting
// core's id so that ties at equal times resolve exactly as they did
// when the core itself did the work. Events fire in (time, actor, seq)
// order; seq is the global scheduling order, so two events at the same
// (time, actor) fire in the order they were scheduled. Scheduling into
// the past is a model bug and panics.
func (e *Engine) Schedule(t uint64, actor int, target Actor, kind uint8, payload uint64) {
	if t < e.now {
		panic(fmt.Sprintf("engine: event scheduled at %d, before current time %d", t, e.now))
	}
	ev := event{time: t, seq: e.seq, payload: payload, target: target, actor: int32(actor), kind: kind}
	e.seq++
	if e.useHeap {
		e.heapPush(ev)
		return
	}
	e.deltaSum += t - e.now
	e.deltaCnt++
	if e.deltaCnt == 1<<20 { // decay: recent deltas dominate the average
		e.deltaSum >>= 1
		e.deltaCnt >>= 1
	}
	if t == e.now && e.batchPos < len(e.batch) {
		// The event joins the in-flight batch at its own timestamp: it
		// must dispatch in (actor, seq) order against the batch's
		// remaining events, exactly as a heap insert at the current
		// time would.
		e.batchInsert(ev)
		return
	}
	e.enqueue(ev)
}

// enqueue places ev in its wheel bucket, or in the far list when it
// lies beyond the window's horizon. Callers guarantee ev.time >= base.
func (e *Engine) enqueue(ev event) {
	if d := (ev.time - e.base) >> e.shift; d < nBuckets {
		b := int(d)
		e.buckets[b] = append(e.buckets[b], ev)
		e.occ[b>>6] |= 1 << (uint(b) & 63)
		e.wheelN++
		return
	}
	e.far = append(e.far, ev)
}

// batchInsert merges ev into the remaining (undispatched) batch, which
// is sorted by (actor, seq). ev carries the largest seq issued, so its
// slot is immediately before the first remaining event with a greater
// actor id.
func (e *Engine) batchInsert(ev event) {
	i := e.batchPos
	for i < len(e.batch) && e.batch[i].actor <= ev.actor {
		i++
	}
	e.batch = append(e.batch, event{})
	copy(e.batch[i+1:], e.batch[i:len(e.batch)-1])
	e.batch[i] = ev
}

// Step dispatches the earliest pending event. It returns false when the
// queue is empty.
func (e *Engine) Step() bool {
	if e.useHeap {
		return e.heapStep()
	}
	if e.batchPos < len(e.batch) {
		e.batched++ // same-tick continuation: no wheel probe
		i := e.batchPos
		ev := e.batch[i]
		e.batch[i] = event{} // drop the vacated slot's Actor reference
		e.batchPos++
		e.dispatched++
		ev.target.OnEvent(ev.time, ev.kind, ev.payload)
		return true
	}
	ev, ok := e.next()
	if !ok {
		return false
	}
	e.dispatched++
	ev.target.OnEvent(ev.time, ev.kind, ev.payload)
	return true
}

// Run dispatches events in order until none remain. Events scheduled
// during dispatch are folded into the same run; runs of events at one
// timestamp drain from a single extracted batch.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// next advances the clock to the earliest pending timestamp and
// returns its first event, rebasing the window from the far list when
// the wheel is empty. A timestamp with a single event — the common
// case — dispatches straight out of its bucket; ties extract the whole
// same-timestamp batch at once, sorted by (actor, seq), which Step then
// drains without re-probing the wheel. The second result is false when
// no events remain anywhere.
func (e *Engine) next() (event, bool) {
	if e.wheelN == 0 {
		if len(e.far) == 0 {
			return event{}, false
		}
		e.rebase()
	}
	b := e.nextBucket()
	bkt := e.buckets[b]
	if len(bkt) >= crowdLimit {
		// The bucket width is too coarse for the observed deltas (and
		// a too-wide window may never rebase on its own): re-pick the
		// width now and re-spread the wheel.
		if s := e.pickShift(); s < e.shift {
			e.rebucket(s)
			b = e.nextBucket()
			bkt = e.buckets[b]
		}
	}
	tmin, argmin, ties := bkt[0].time, 0, 1
	for i := 1; i < len(bkt); i++ {
		switch t := bkt[i].time; {
		case t < tmin:
			tmin, argmin, ties = t, i, 1
		case t == tmin:
			ties++
		}
	}
	e.now = tmin
	if ties == 1 {
		// Singleton fast path: no batch round-trip. Bucket order is
		// not semantically meaningful (ties sort at extraction), so a
		// swap-remove suffices.
		ev := bkt[argmin]
		last := len(bkt) - 1
		bkt[argmin] = bkt[last]
		bkt[last] = event{} // drop the vacated slot's Actor reference
		e.buckets[b] = bkt[:last]
		e.wheelN--
		if last == 0 {
			e.occ[b>>6] &^= 1 << (uint(b) & 63)
		}
		return ev, true
	}
	// Extract the full batch at tmin, compacting the bucket in place.
	e.batch = e.batch[:0]
	e.batchPos = 0
	w := 0
	for i := range bkt {
		if bkt[i].time == tmin {
			e.batch = append(e.batch, bkt[i])
		} else {
			bkt[w] = bkt[i]
			w++
		}
	}
	for i := w; i < len(bkt); i++ {
		bkt[i] = event{} // drop vacated slots' Actor references
	}
	e.buckets[b] = bkt[:w]
	e.wheelN -= len(e.batch)
	if w == 0 {
		e.occ[b>>6] &^= 1 << (uint(b) & 63)
	}
	sortBatch(e.batch)
	ev := e.batch[0]
	e.batch[0] = event{}
	e.batchPos = 1
	return ev, true
}

// nextBucket returns the lowest non-empty bucket index at or after the
// current time's bucket. Buckets below the current time are empty by
// construction (events cannot be scheduled into the past, and dispatch
// always drains the earliest bucket first).
func (e *Engine) nextBucket() int {
	cur := 0
	if e.now > e.base {
		if d := (e.now - e.base) >> e.shift; d < nBuckets {
			cur = int(d)
		} else {
			cur = nBuckets - 1
		}
	}
	i := cur >> 6
	w := e.occ[i] & (^uint64(0) << (uint(cur) & 63))
	for {
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
		i++
		if i >= occWords {
			panic("engine: occupancy bitmap inconsistent with wheel population")
		}
		w = e.occ[i]
	}
}

// rebase slides the window onto the earliest far event: the width
// re-adapts to the deltas observed since the last rebase, base moves to
// the far minimum (guaranteeing at least one event lands in the wheel),
// and the far list redistributes.
func (e *Engine) rebase() {
	minT := e.far[0].time
	for i := 1; i < len(e.far); i++ {
		if e.far[i].time < minT {
			minT = e.far[i].time
		}
	}
	e.shift = e.pickShift()
	e.base = minT
	e.spreadFar()
}

// spreadFar moves every far event inside the current window into its
// bucket, keeping the remainder in the far list.
func (e *Engine) spreadFar() {
	keep := e.far[:0]
	for _, ev := range e.far {
		if d := (ev.time - e.base) >> e.shift; d < nBuckets {
			b := int(d)
			e.buckets[b] = append(e.buckets[b], ev)
			e.occ[b>>6] |= 1 << (uint(b) & 63)
			e.wheelN++
		} else {
			keep = append(keep, ev)
		}
	}
	for i := len(keep); i < len(e.far); i++ {
		e.far[i] = event{}
	}
	e.far = keep
}

// rebucket re-spreads the whole wheel at a new bucket width, keeping
// base (which is at or below every pending event's time).
func (e *Engine) rebucket(shift uint) {
	for b := 0; b < nBuckets && e.wheelN > 0; b++ {
		bkt := e.buckets[b]
		if len(bkt) == 0 {
			continue
		}
		e.far = append(e.far, bkt...)
		for i := range bkt {
			bkt[i] = event{}
		}
		e.buckets[b] = bkt[:0]
		e.wheelN -= len(bkt)
	}
	e.occ = [occWords]uint64{}
	e.wheelN = 0
	e.shift = shift
	e.spreadFar()
}

// pickShift chooses the bucket width from the observed mean schedule
// delta: the smallest power-of-two width at which the mean delta spans
// no more than an eighth of the window. Small regular deltas get
// fine-grained buckets (O(1) occupancy); rare huge deltas (fault
// penalties) widen the window instead of overflowing every event to
// the far list.
func (e *Engine) pickShift() uint {
	if e.deltaCnt == 0 {
		return e.shift
	}
	avg := e.deltaSum / e.deltaCnt
	var s uint
	for avg>>s > nBuckets/8 && s < maxShift {
		s++
	}
	return s
}

// sortBatch insertion-sorts a same-timestamp batch by (actor, seq).
// Batches are a handful of events, and bucket extraction preserves
// per-actor seq order, so the sort is near-linear in practice.
func sortBatch(b []event) {
	for i := 1; i < len(b); i++ {
		ev := b[i]
		j := i
		for j > 0 && (ev.actor < b[j-1].actor || (ev.actor == b[j-1].actor && ev.seq < b[j-1].seq)) {
			b[j] = b[j-1]
			j--
		}
		b[j] = ev
	}
}
