package engine

import "testing"

// Calendar-queue-specific behavior: same-tick batching, window rebase
// through the far list, width adaptation, and the Rewind bucket reset.

// TestSameTickBatchDrainsWithoutReprobe pins the batch fast path: a run
// of events at one timestamp is extracted once and drained without
// probing the wheel again, which Batched() counts.
func TestSameTickBatchDrainsWithoutReprobe(t *testing.T) {
	e := New()
	r := &recorder{}
	for i := 0; i < 8; i++ {
		e.Schedule(42, i, r, 0, uint64(i))
	}
	e.Schedule(50, 0, r, 0, 99)
	e.Run()
	if len(r.got) != 9 {
		t.Fatalf("dispatched %d events, want 9", len(r.got))
	}
	for i := 0; i < 8; i++ {
		if r.got[i].now != 42 || r.got[i].payload != uint64(i) {
			t.Fatalf("dispatch %d = %+v, want time 42 payload %d", i, r.got[i], i)
		}
	}
	// 8 events at t=42: one wheel probe extracts the batch, 7 dispatch
	// as same-tick continuations; the t=50 event probes again.
	if e.Batched() != 7 {
		t.Errorf("Batched = %d, want 7", e.Batched())
	}
	if e.Dispatched() != 9 {
		t.Errorf("Dispatched = %d, want 9", e.Dispatched())
	}
}

// TestFarEventsRebaseIntoWindow schedules events far beyond the wheel's
// horizon and checks they dispatch in order after the window rebases.
func TestFarEventsRebaseIntoWindow(t *testing.T) {
	e := New()
	r := &recorder{}
	horizon := uint64(nBuckets) << e.shift
	times := []uint64{1, horizon * 3, horizon * 3, horizon*10 + 5, horizon * 42}
	for i, at := range times {
		e.Schedule(at, i, r, 0, uint64(i))
	}
	if len(e.far) == 0 {
		t.Fatal("no events landed in the far list; horizon math changed?")
	}
	e.Run()
	if len(r.got) != len(times) {
		t.Fatalf("dispatched %d events, want %d", len(r.got), len(times))
	}
	for i, d := range r.got {
		if d.now != times[i] || d.payload != uint64(i) {
			t.Fatalf("dispatch %d = %+v, want time %d payload %d", i, d, times[i], i)
		}
	}
}

// TestWidthAdaptsToLargeDeltas drives the engine with deltas far wider
// than the initial bucket width and checks a rebase widens the buckets
// (the adaptation policy: mean delta spans at most an eighth of the
// window).
func TestWidthAdaptsToLargeDeltas(t *testing.T) {
	e := New()
	r := &recorder{}
	for i := 1; i <= 64; i++ {
		e.Schedule(uint64(i)<<20, 0, r, 0, uint64(i)) // megacycle spacing, all beyond the window
	}
	e.Run()
	if len(r.got) != 64 {
		t.Fatalf("dispatched %d events, want 64", len(r.got))
	}
	if e.shift <= initShift {
		t.Errorf("shift = %d after 1M-cycle deltas, want > %d (width did not adapt up)", e.shift, initShift)
	}
}

// TestCrowdedBucketRebuckets forces many distinct timestamps into one
// bucket (a learned-too-wide width) and checks dispatch stays correct
// and the width re-adapts downward.
func TestCrowdedBucketRebuckets(t *testing.T) {
	e := New()
	e.shift = 20 // pretend a previous phase learned 1M-cycle buckets
	r := &recorder{}
	n := crowdLimit * 2
	for i := 0; i < n; i++ {
		e.Schedule(uint64(i), 0, r, 0, uint64(i)) // n distinct ticks, one bucket
	}
	e.Run()
	if len(r.got) != n {
		t.Fatalf("dispatched %d events, want %d", len(r.got), n)
	}
	for i, d := range r.got {
		if d.now != uint64(i) {
			t.Fatalf("dispatch %d at time %d, want %d", i, d.now, i)
		}
	}
	if e.shift >= 20 {
		t.Errorf("shift = %d after crowded bucket, want re-adapted below 20", e.shift)
	}
}

// TestRewindAfterBatchedRun pins the Rewind satellite: after a run that
// drained through same-tick batches (including mid-batch inserts), the
// engine rewinds cleanly — clock and window base return to zero and a
// new phase scheduled below the old horizon runs in order.
func TestRewindAfterBatchedRun(t *testing.T) {
	e := New()
	r := &recorder{}
	r.hook = func(now uint64, kind uint8, payload uint64) {
		if kind == 1 {
			// Mid-batch same-tick insert: joins the in-flight batch.
			e.Schedule(now, 5, r, 0, 1000)
		}
	}
	for i := 0; i < 4; i++ {
		e.Schedule(700, i, r, 0, uint64(i))
	}
	e.Schedule(700, 0, r, 1, 100) // triggers the mid-batch insert
	e.Run()
	if got := len(r.got); got != 6 {
		t.Fatalf("phase 1 dispatched %d events, want 6", got)
	}

	e.Rewind()
	if e.Now() != 0 || e.base != 0 {
		t.Fatalf("Rewind left now=%d base=%d, want 0/0", e.Now(), e.base)
	}
	if e.Len() != 0 || e.batchPos != len(e.batch) {
		t.Fatal("Rewind left pending or batched events")
	}

	// The next phase re-seeds below the previous horizon and must
	// dispatch in order, including a fresh same-tick batch.
	r.hook = nil
	r.got = r.got[:0]
	e.Schedule(5, 1, r, 0, 1)
	e.Schedule(5, 0, r, 0, 0)
	e.Schedule(3, 2, r, 0, 2)
	e.Run()
	if len(r.got) != 3 || r.got[0].payload != 2 || r.got[1].payload != 0 || r.got[2].payload != 1 {
		t.Fatalf("post-Rewind order wrong: %+v", r.got)
	}
	if e.Batched() == 0 {
		t.Error("batched runs recorded no same-tick continuations")
	}
}

// TestLenCountsAllRegions checks Len across the wheel, the far list,
// and a partially drained batch.
func TestLenCountsAllRegions(t *testing.T) {
	e := New()
	r := &recorder{}
	e.Schedule(1, 0, r, 0, 0)
	e.Schedule(1, 1, r, 0, 0)
	e.Schedule(2, 0, r, 0, 0)
	e.Schedule(uint64(nBuckets)<<e.shift+12345, 0, r, 0, 0) // far
	if e.Len() != 4 {
		t.Fatalf("Len = %d, want 4", e.Len())
	}
	if !e.Step() { // extracts the t=1 batch, dispatches one of two
		t.Fatal("Step found no work")
	}
	if e.Len() != 3 {
		t.Fatalf("Len after one Step = %d, want 3 (one batched event pending)", e.Len())
	}
	e.Run()
	if e.Len() != 0 {
		t.Fatalf("Len after Run = %d, want 0", e.Len())
	}
}
