package engine

import (
	"testing"
)

func TestDispatchOrderByTimeActorSeq(t *testing.T) {
	e := New()
	var got []int
	rec := func(id int) func() { return func() { got = append(got, id) } }

	// Shuffled inserts covering every tie-break tier:
	//   time 10 actor 2 (first scheduled at that slot) -> id 3
	//   time 10 actor 2 (second scheduled)             -> id 4
	//   time 10 actor 0                                -> id 2
	//   time  5 actor 7                                -> id 1
	//   time  0 actor 9                                -> id 0
	//   time 20 actor 1                                -> id 5
	e.Schedule(10, 2, rec(3))
	e.Schedule(20, 1, rec(5))
	e.Schedule(0, 9, rec(0))
	e.Schedule(10, 2, rec(4))
	e.Schedule(5, 7, rec(1))
	e.Schedule(10, 0, rec(2))

	e.Run()
	want := []int{0, 1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Errorf("Now = %d, want 20", e.Now())
	}
	if e.Dispatched() != 6 {
		t.Errorf("Dispatched = %d, want 6", e.Dispatched())
	}
}

func TestEventsScheduledDuringRunAreDispatched(t *testing.T) {
	e := New()
	var trace []uint64
	e.Schedule(1, 0, func() {
		trace = append(trace, e.Now())
		e.Schedule(3, 0, func() { trace = append(trace, e.Now()) })
	})
	e.Schedule(2, 0, func() { trace = append(trace, e.Now()) })
	e.Run()
	if len(trace) != 3 || trace[0] != 1 || trace[1] != 2 || trace[2] != 3 {
		t.Errorf("trace = %v, want [1 2 3]", trace)
	}
}

func TestSameTimeRescheduleRunsAfterOtherActors(t *testing.T) {
	// An actor rescheduling at the current time yields to other actors'
	// events at that time with lower ids (seq breaks the final tie).
	e := New()
	var got []string
	e.Schedule(5, 1, func() {
		got = append(got, "b1")
		e.Schedule(5, 0, func() { got = append(got, "a") })
		e.Schedule(5, 1, func() { got = append(got, "b2") })
	})
	e.Run()
	if len(got) != 3 || got[0] != "b1" || got[1] != "a" || got[2] != "b2" {
		t.Errorf("order = %v, want [b1 a b2]", got)
	}
}

func TestSchedulingIntoThePastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, 0, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling before Now did not panic")
		}
	}()
	e.Schedule(9, 0, func() {})
}

func TestRewindBetweenPhases(t *testing.T) {
	e := New()
	e.Schedule(100, 0, func() {})
	e.Run()
	e.Rewind()
	if e.Now() != 0 {
		t.Errorf("Now after Rewind = %d, want 0", e.Now())
	}
	fired := false
	e.Schedule(5, 0, func() { fired = true }) // before the old horizon
	e.Run()
	if !fired {
		t.Error("post-Rewind event did not fire")
	}

	e.Schedule(10, 0, func() {})
	defer func() {
		if recover() == nil {
			t.Error("Rewind with pending events did not panic")
		}
	}()
	e.Rewind()
}

func TestStepAndLen(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step on empty engine reported work")
	}
	e.Schedule(1, 0, func() {})
	e.Schedule(2, 0, func() {})
	if e.Len() != 2 {
		t.Errorf("Len = %d, want 2", e.Len())
	}
	if !e.Step() || e.Len() != 1 {
		t.Errorf("after one Step: Len = %d, want 1", e.Len())
	}
	e.Run()
	if e.Len() != 0 {
		t.Errorf("after Run: Len = %d, want 0", e.Len())
	}
}

// TestHeapOrderLargeShuffle drives the heap through a large
// pseudo-random insert/dispatch mix and checks times never regress.
func TestHeapOrderLargeShuffle(t *testing.T) {
	e := New()
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	var last uint64
	var dispatched int
	var schedule func(depth int)
	schedule = func(depth int) {
		if depth == 0 {
			return
		}
		at := e.Now() + next()%1000
		e.Schedule(at, int(next()%16), func() {
			if e.Now() < last {
				t.Fatalf("time regressed: %d after %d", e.Now(), last)
			}
			last = e.Now()
			dispatched++
			if dispatched < 5000 {
				schedule(2)
			}
		})
	}
	schedule(2)
	e.Run()
	if dispatched < 5000 {
		t.Errorf("dispatched %d events, want >= 5000", dispatched)
	}
}
