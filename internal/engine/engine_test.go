package engine

import (
	"sort"
	"testing"
)

// recorder is a test actor that logs every delivered event and can run
// a per-kind hook to schedule follow-on events.
type recorder struct {
	got  []delivered
	hook func(now uint64, kind uint8, payload uint64)
}

type delivered struct {
	now     uint64
	kind    uint8
	payload uint64
}

func (r *recorder) OnEvent(now uint64, kind uint8, payload uint64) {
	r.got = append(r.got, delivered{now, kind, payload})
	if r.hook != nil {
		r.hook(now, kind, payload)
	}
}

func TestDispatchOrderByTimeActorSeq(t *testing.T) {
	e := New()
	r := &recorder{}

	// Shuffled inserts covering every tie-break tier; the payload is the
	// expected dispatch position:
	//   time 10 actor 2 (first scheduled at that slot) -> 3
	//   time 10 actor 2 (second scheduled)             -> 4
	//   time 10 actor 0                                -> 2
	//   time  5 actor 7                                -> 1
	//   time  0 actor 9                                -> 0
	//   time 20 actor 1                                -> 5
	e.Schedule(10, 2, r, 0, 3)
	e.Schedule(20, 1, r, 0, 5)
	e.Schedule(0, 9, r, 0, 0)
	e.Schedule(10, 2, r, 0, 4)
	e.Schedule(5, 7, r, 0, 1)
	e.Schedule(10, 0, r, 0, 2)

	e.Run()
	if len(r.got) != 6 {
		t.Fatalf("dispatched %d events, want 6", len(r.got))
	}
	for i, d := range r.got {
		if d.payload != uint64(i) {
			t.Fatalf("dispatch %d delivered payload %d (order wrong)", i, d.payload)
		}
	}
	if e.Now() != 20 {
		t.Errorf("Now = %d, want 20", e.Now())
	}
	if e.Dispatched() != 6 {
		t.Errorf("Dispatched = %d, want 6", e.Dispatched())
	}
}

func TestKindAndPayloadDeliveredVerbatim(t *testing.T) {
	e := New()
	r := &recorder{}
	e.Schedule(7, 0, r, 42, 0xDEADBEEF)
	e.Run()
	if len(r.got) != 1 {
		t.Fatalf("dispatched %d events, want 1", len(r.got))
	}
	d := r.got[0]
	if d.now != 7 || d.kind != 42 || d.payload != 0xDEADBEEF {
		t.Errorf("delivered (now=%d kind=%d payload=%#x), want (7, 42, 0xDEADBEEF)",
			d.now, d.kind, d.payload)
	}
}

func TestEventsScheduledDuringRunAreDispatched(t *testing.T) {
	e := New()
	r := &recorder{}
	r.hook = func(now uint64, kind uint8, payload uint64) {
		if kind == 1 {
			e.Schedule(3, 0, r, 0, 0)
		}
	}
	e.Schedule(1, 0, r, 1, 0)
	e.Schedule(2, 0, r, 0, 0)
	e.Run()
	if len(r.got) != 3 || r.got[0].now != 1 || r.got[1].now != 2 || r.got[2].now != 3 {
		t.Errorf("trace = %v, want events at times 1, 2, 3", r.got)
	}
}

func TestSameTimeRescheduleRunsAfterOtherActors(t *testing.T) {
	// An actor rescheduling at the current time yields to other actors'
	// events at that time with lower ids (seq breaks the final tie).
	// Payload tags: 1 = b1, 2 = a, 3 = b2.
	e := New()
	r := &recorder{}
	r.hook = func(now uint64, kind uint8, payload uint64) {
		if payload == 1 {
			e.Schedule(5, 0, r, 0, 2)
			e.Schedule(5, 1, r, 0, 3)
		}
	}
	e.Schedule(5, 1, r, 0, 1)
	e.Run()
	if len(r.got) != 3 || r.got[0].payload != 1 || r.got[1].payload != 2 || r.got[2].payload != 3 {
		t.Errorf("order = %v, want payloads [1 2 3]", r.got)
	}
}

func TestSchedulingIntoThePastPanics(t *testing.T) {
	e := New()
	r := &recorder{}
	e.Schedule(10, 0, r, 0, 0)
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling before Now did not panic")
		}
	}()
	e.Schedule(9, 0, r, 0, 0)
}

func TestRewindBetweenPhases(t *testing.T) {
	e := New()
	r := &recorder{}
	e.Schedule(100, 0, r, 0, 0)
	e.Run()
	e.Rewind()
	if e.Now() != 0 {
		t.Errorf("Now after Rewind = %d, want 0", e.Now())
	}
	e.Schedule(5, 0, r, 0, 1) // before the old horizon
	e.Run()
	if len(r.got) != 2 || r.got[1].now != 5 {
		t.Error("post-Rewind event did not fire")
	}
}

// TestRewindWithPendingTypedEventsPanics pins the typed-event queue's
// phase-boundary invariant: Rewind with any typed event still pending
// would reorder it against the next phase's re-seeded events and must
// panic.
func TestRewindWithPendingTypedEventsPanics(t *testing.T) {
	e := New()
	r := &recorder{}
	e.Schedule(10, 3, r, 7, 99)
	defer func() {
		if recover() == nil {
			t.Error("Rewind with pending typed events did not panic")
		}
	}()
	e.Rewind()
}

func TestStepAndLen(t *testing.T) {
	e := New()
	r := &recorder{}
	if e.Step() {
		t.Error("Step on empty engine reported work")
	}
	e.Schedule(1, 0, r, 0, 0)
	e.Schedule(2, 0, r, 0, 0)
	if e.Len() != 2 {
		t.Errorf("Len = %d, want 2", e.Len())
	}
	if !e.Step() || e.Len() != 1 {
		t.Errorf("after one Step: Len = %d, want 1", e.Len())
	}
	e.Run()
	if e.Len() != 0 {
		t.Errorf("after Run: Len = %d, want 0", e.Len())
	}
}

// TestTypedDispatchOrderProperty is a randomized property test: any
// batch of typed events, scheduled in any order, dispatches exactly in
// the documented (time, actor, seq) order. The expected order is
// computed independently with a stable sort over the schedule log.
func TestTypedDispatchOrderProperty(t *testing.T) {
	state := uint64(0x243F6A8885A308D3) // deterministic xorshift seed
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}

	type scheduled struct {
		time  uint64
		actor int
		seq   int // scheduling order
	}

	for round := 0; round < 50; round++ {
		e := New()
		r := &recorder{}
		n := int(next()%200) + 1
		log := make([]scheduled, n)
		for i := 0; i < n; i++ {
			// Small ranges force heavy time and actor collisions so all
			// three tie-break tiers are exercised.
			log[i] = scheduled{time: next() % 16, actor: int(next() % 4), seq: i}
			// The payload carries the schedule-log index so dispatches
			// can be matched back to their insertion.
			e.Schedule(log[i].time, log[i].actor, r, 0, uint64(i))
		}

		want := make([]scheduled, n)
		copy(want, log)
		sort.SliceStable(want, func(a, b int) bool {
			if want[a].time != want[b].time {
				return want[a].time < want[b].time
			}
			if want[a].actor != want[b].actor {
				return want[a].actor < want[b].actor
			}
			return want[a].seq < want[b].seq
		})

		e.Run()
		if len(r.got) != n {
			t.Fatalf("round %d: dispatched %d of %d events", round, len(r.got), n)
		}
		for i, d := range r.got {
			if int(d.payload) != want[i].seq {
				t.Fatalf("round %d: dispatch %d was schedule #%d, want #%d (time=%d actor=%d)",
					round, i, d.payload, want[i].seq, want[i].time, want[i].actor)
			}
			if d.now != want[i].time {
				t.Fatalf("round %d: dispatch %d at time %d, want %d", round, i, d.now, want[i].time)
			}
		}
		r.got = r.got[:0]
	}
}

// TestHeapOrderLargeShuffle drives the heap through a large
// pseudo-random insert/dispatch mix and checks times never regress.
type shuffler struct {
	t          *testing.T
	e          *Engine
	next       func() uint64
	last       uint64
	dispatched int
}

func (s *shuffler) OnEvent(now uint64, kind uint8, payload uint64) {
	if now < s.last {
		s.t.Fatalf("time regressed: %d after %d", now, s.last)
	}
	s.last = now
	s.dispatched++
	if s.dispatched < 5000 {
		s.schedule(2)
	}
}

func (s *shuffler) schedule(count int) {
	for i := 0; i < count; i++ {
		at := s.e.Now() + s.next()%1000
		s.e.Schedule(at, int(s.next()%16), s, 0, 0)
	}
}

func TestHeapOrderLargeShuffle(t *testing.T) {
	state := uint64(0x9E3779B97F4A7C15)
	s := &shuffler{t: t, e: New(), next: func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}}
	s.schedule(2)
	s.e.Run()
	if s.dispatched < 5000 {
		t.Errorf("dispatched %d events, want >= 5000", s.dispatched)
	}
}

// TestScheduleDoesNotAllocate pins the zero-allocation property of the
// hot path: scheduling and dispatching typed events performs no heap
// allocation once the event heap has reached its high-water capacity.
func TestScheduleDoesNotAllocate(t *testing.T) {
	e := New()
	r := &recorder{}
	r.got = make([]delivered, 0, 4096)
	// Reach steady-state capacity first: spin the clock across several
	// window spans so every calendar bucket, the far list, and the
	// batch buffer hit their high-water capacities.
	for round := 0; round < 3*nBuckets; round++ {
		base := e.Now()
		for i := 0; i < 8; i++ {
			e.Schedule(base+uint64(i*37), i, r, 0, 0)
		}
		e.Run()
		r.got = r.got[:0]
	}

	allocs := testing.AllocsPerRun(100, func() {
		base := e.Now()
		for i := 0; i < 32; i++ {
			e.Schedule(base+uint64(i), i, r, 0, uint64(i))
		}
		e.Run()
		r.got = r.got[:0]
	})
	if allocs != 0 {
		t.Errorf("schedule+dispatch allocated %.1f times per run, want 0", allocs)
	}
}
