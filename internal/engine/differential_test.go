package engine

import "testing"

// The differential property tests pin the calendar queue to the
// retained binary heap: any randomized schedule/dispatch sequence must
// produce an identical dispatch order through both queues. The heap is
// the oracle — it is the PR 4 implementation whose order the pinned
// goldens were recorded under.

// newHeapEngine builds an engine on the fallback heap queue.
func newHeapEngine() *Engine {
	UseHeapFallback = true
	defer func() { UseHeapFallback = false }()
	return New()
}

// xorshift is the tests' deterministic PRNG.
type xorshift uint64

func (s *xorshift) next() uint64 {
	x := uint64(*s)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = xorshift(x)
	return x
}

// diffRecorder logs dispatches and, via react, schedules follow-on
// events. Both engines run the same deterministic reaction policy, so
// as long as the dispatch orders match, the generated schedules match
// step for step — any divergence is caught at the first differing
// dispatch.
type diffRecorder struct {
	e     *Engine
	rng   xorshift
	got   []delivered
	react bool
}

func (r *diffRecorder) OnEvent(now uint64, kind uint8, payload uint64) {
	r.got = append(r.got, delivered{now, kind, payload})
	if !r.react {
		return
	}
	// A third of dispatches schedule one or two follow-on events, at
	// deltas that heavily collide on the current time (exercising the
	// mid-batch same-tick merge) and occasionally jump far ahead
	// (exercising the overflow list and rebase).
	switch r.rng.next() % 3 {
	case 0:
		n := 1 + int(r.rng.next()%2)
		for i := 0; i < n; i++ {
			var delta uint64
			switch r.rng.next() % 4 {
			case 0:
				delta = 0 // same tick as the in-flight batch
			case 1:
				delta = r.rng.next() % 8
			case 2:
				delta = r.rng.next() % 512
			case 3:
				delta = r.rng.next() % 100_000 // far beyond the window
			}
			r.e.Schedule(now+delta, int(r.rng.next()%8), r, uint8(r.rng.next()), r.rng.next())
		}
	}
}

// runDiffScenario drives one engine through a deterministic randomized
// scenario: a seed batch of events, then Run with reactive scheduling.
func runDiffScenario(e *Engine, seed uint64, react bool) []delivered {
	r := &diffRecorder{e: e, rng: xorshift(seed), react: react}
	rng := xorshift(seed * 0x9E3779B97F4A7C15)
	n := int(rng.next()%300) + 1
	for i := 0; i < n; i++ {
		// Small time/actor ranges force heavy same-(time, actor)
		// collisions so every tie-break tier is exercised.
		e.Schedule(rng.next()%64, int(rng.next()%6), r, uint8(rng.next()), rng.next())
	}
	e.Run()
	return r.got
}

// TestDifferentialCalendarVsHeap runs randomized schedule/dispatch
// sequences — with and without reactive scheduling during dispatch —
// through the calendar queue and the heap oracle and requires
// byte-identical dispatch sequences.
func TestDifferentialCalendarVsHeap(t *testing.T) {
	for _, react := range []bool{false, true} {
		for round := 0; round < 40; round++ {
			seed := uint64(round)*0x5DEECE66D + 11
			cal := runDiffScenario(New(), seed, react)
			hp := runDiffScenario(newHeapEngine(), seed, react)
			if len(cal) != len(hp) {
				t.Fatalf("react=%v round %d: calendar dispatched %d events, heap %d",
					react, round, len(cal), len(hp))
			}
			for i := range cal {
				if cal[i] != hp[i] {
					t.Fatalf("react=%v round %d: dispatch %d diverged: calendar %+v, heap %+v",
						react, round, i, cal[i], hp[i])
				}
			}
		}
	}
}

// TestDifferentialMultiPhase pins the queues to each other across
// Rewind boundaries: drain, rewind, re-seed below the previous horizon
// — the simulator's warmup/measurement phase structure.
func TestDifferentialMultiPhase(t *testing.T) {
	run := func(e *Engine) []delivered {
		var all []delivered
		rng := xorshift(0xABCDEF12345)
		for phase := 0; phase < 5; phase++ {
			r := &diffRecorder{e: e, rng: xorshift(uint64(phase) + 7), react: true}
			for i := 0; i < 40; i++ {
				e.Schedule(rng.next()%32, int(rng.next()%4), r, uint8(rng.next()), rng.next())
			}
			e.Run()
			all = append(all, r.got...)
			e.Rewind()
		}
		return all
	}
	cal := run(New())
	hp := run(newHeapEngine())
	if len(cal) != len(hp) {
		t.Fatalf("calendar dispatched %d events, heap %d", len(cal), len(hp))
	}
	for i := range cal {
		if cal[i] != hp[i] {
			t.Fatalf("dispatch %d diverged: calendar %+v, heap %+v", i, cal[i], hp[i])
		}
	}
}

// TestHeapFallbackSelectsHeap sanity-checks the fallback wiring: a
// heap-backed engine services the public API identically.
func TestHeapFallbackSelectsHeap(t *testing.T) {
	e := newHeapEngine()
	if !e.useHeap {
		t.Fatal("UseHeapFallback did not select the heap queue")
	}
	r := &recorder{}
	e.Schedule(5, 1, r, 2, 3)
	e.Schedule(1, 0, r, 4, 5)
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
	e.Run()
	if len(r.got) != 2 || r.got[0].now != 1 || r.got[1].now != 5 {
		t.Fatalf("heap fallback dispatch order wrong: %+v", r.got)
	}
	e.Rewind()
	if e.Now() != 0 {
		t.Fatal("heap fallback Rewind did not reset the clock")
	}
}
