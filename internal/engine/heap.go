// The binary min-heap queue the calendar wheel replaced, retained as
// the fallback behind UseHeapFallback. It is the oracle for the
// differential tests pinning the wheel's dispatch order (randomized
// schedules must dispatch identically through both queues) and an
// escape hatch while the wheel beds in. Each dispatch costs O(log n)
// sift operations; the wheel's amortized O(1) replaces it on the hot
// path.
package engine

// heapPush inserts ev and restores the heap property.
func (e *Engine) heapPush(ev event) {
	e.heap = append(e.heap, ev)
	e.up(len(e.heap) - 1)
}

// heapStep dispatches the earliest pending event from the fallback
// heap. It returns false when the queue is empty.
func (e *Engine) heapStep() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap[last] = event{} // drop the vacated slot's Actor reference
	e.heap = e.heap[:last]
	if last > 0 {
		e.down(0)
	}
	e.now = ev.time
	e.dispatched++
	ev.target.OnEvent(ev.time, ev.kind, ev.payload)
	return true
}

// up restores the heap property from leaf i toward the root.
func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heap[i].before(&e.heap[parent]) {
			return
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// down restores the heap property from node i toward the leaves.
func (e *Engine) down(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && e.heap[l].before(&e.heap[least]) {
			least = l
		}
		if r < n && e.heap[r].before(&e.heap[least]) {
			least = r
		}
		if least == i {
			return
		}
		e.heap[i], e.heap[least] = e.heap[least], e.heap[i]
		i = least
	}
}
