package dram

import (
	"testing"

	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/xrand"
)

func testCfg() Config {
	return Config{
		Name:     "test",
		Channels: 2,
		Banks:    2,
		RowBytes: 1 << 10,
		RowHit:   40,
		RowMiss:  110,
		Transfer: 8,
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Channels: 0, Banks: 2, RowBytes: 1024},
		{Channels: 3, Banks: 2, RowBytes: 1024},
		{Channels: 2, Banks: 0, RowBytes: 1024},
		{Channels: 2, Banks: 2, RowBytes: 100},
		{Channels: 2, Banks: 2, RowBytes: 32},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New(%+v) did not panic", i, cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestUncontendedLatency(t *testing.T) {
	m := New(testCfg())
	done := m.Access(1000, addr.P(0), access.Read, access.Data)
	// Cold access: row miss + transfer.
	if want := uint64(1000 + 110 + 8); done != want {
		t.Errorf("cold access done = %d, want %d", done, want)
	}
	if m.Stats().RowMisses != 1 {
		t.Error("cold access must be a row miss")
	}
}

func TestRowBufferHit(t *testing.T) {
	m := New(testCfg())
	end1 := m.Access(0, addr.P(0), access.Read, access.Data)
	// Same row (same bank, adjacent column): channel interleaving means
	// addr 0 and addr 64 are on different channels; stride by
	// lines*channels to stay in the same bank and row.
	sameRow := addr.P(uint64(addr.LineSize) * uint64(testCfg().Channels) * uint64(testCfg().Banks))
	done := m.Access(end1, sameRow, access.Read, access.Data)
	if lat := done - end1; lat != 40+8 {
		t.Errorf("row-hit latency = %d, want 48", lat)
	}
	if m.Stats().RowHits != 1 {
		t.Errorf("RowHits = %d, want 1", m.Stats().RowHits.Value())
	}
}

func TestRowConflict(t *testing.T) {
	m := New(testCfg())
	cfg := testCfg()
	end1 := m.Access(0, addr.P(0), access.Read, access.Data)
	// Same bank, different row: offset by a full row span of that bank.
	rowSpan := cfg.RowBytes * uint64(cfg.Channels) * uint64(cfg.Banks)
	done := m.Access(end1, addr.P(rowSpan), access.Read, access.Data)
	if lat := done - end1; lat != 110+8 {
		t.Errorf("row-conflict latency = %d, want 118", lat)
	}
}

func TestBankQueueing(t *testing.T) {
	m := New(testCfg())
	// Two simultaneous requests to the same bank: the second waits.
	d1 := m.Access(0, addr.P(0), access.Read, access.Data)
	cfg := testCfg()
	rowSpan := cfg.RowBytes * uint64(cfg.Channels) * uint64(cfg.Banks)
	d2 := m.Access(0, addr.P(rowSpan), access.Read, access.Data)
	if d2 <= d1 {
		t.Errorf("second request to busy bank finished at %d, first at %d", d2, d1)
	}
	if m.Stats().MeanQueue() == 0 {
		t.Error("queueing not recorded")
	}
}

func TestChannelParallelism(t *testing.T) {
	m := New(testCfg())
	// Lines 0 and 1 map to different channels: both complete with no
	// queueing when issued at the same instant.
	d1 := m.Access(0, addr.P(0), access.Read, access.Data)
	d2 := m.Access(0, addr.P(addr.LineSize), access.Read, access.Data)
	if d1 != d2 {
		t.Errorf("parallel channels should give equal completion: %d vs %d", d1, d2)
	}
	if q := m.Stats().QueueCycles.Value(); q != 0 {
		t.Errorf("cross-channel accesses queued %d cycles", q)
	}
}

func TestBusSerializationWithinChannel(t *testing.T) {
	cfg := testCfg()
	m := New(cfg)
	// Same channel, different banks, same instant: banks overlap their
	// service but the shared data bus serializes the transfers.
	lineStride := uint64(addr.LineSize) * uint64(cfg.Channels) // next bank, same channel
	d1 := m.Access(0, addr.P(0), access.Read, access.Data)
	d2 := m.Access(0, addr.P(lineStride), access.Read, access.Data)
	if d2 != d1+cfg.Transfer {
		t.Errorf("bus serialization: d1=%d d2=%d, want d2 = d1+%d", d1, d2, cfg.Transfer)
	}
}

func TestPerClassCounting(t *testing.T) {
	m := New(testCfg())
	m.Access(0, addr.P(0), access.Read, access.Data)
	m.Access(0, addr.P(64), access.Read, access.PTE)
	m.Access(0, addr.P(128), access.Read, access.PTE)
	s := m.Stats()
	if s.PerClass[access.Data].Value() != 1 || s.PerClass[access.PTE].Value() != 2 {
		t.Errorf("per-class = %v", s.PerClass)
	}
	if s.Accesses.Value() != 3 {
		t.Errorf("Accesses = %d", s.Accesses.Value())
	}
	if s.MeanLatency() <= 0 {
		t.Error("MeanLatency not recorded")
	}
}

func TestIdleDrains(t *testing.T) {
	m := New(testCfg())
	done := m.Access(0, addr.P(0), access.Read, access.Data)
	if m.Idle(0) {
		t.Error("device idle while request in flight")
	}
	if !m.Idle(done) {
		t.Error("device not idle after completion time")
	}
}

// TestLoadLatencyGrowth is the Fig 6(a) mechanism in miniature: mean
// latency under 8 concurrent random-access streams must exceed mean
// latency under 1 stream.
func TestLoadLatencyGrowth(t *testing.T) {
	latencyUnderLoad := func(streams int) float64 {
		m := New(HBM2())
		rng := xrand.New(99)
		clocks := make([]uint64, streams)
		for i := 0; i < 20000; i++ {
			// Advance the earliest stream, issuing a random access.
			c := 0
			for j := 1; j < streams; j++ {
				if clocks[j] < clocks[c] {
					c = j
				}
			}
			pa := addr.P(rng.Uint64n(1 << 30))
			done := m.Access(clocks[c], pa, access.Read, access.Data)
			clocks[c] = done + 20 // small compute gap
		}
		return m.Stats().MeanLatency()
	}
	l1 := latencyUnderLoad(1)
	l8 := latencyUnderLoad(8)
	if l8 <= l1*1.05 {
		t.Errorf("no queueing growth: 1-stream %.1f vs 8-stream %.1f cycles", l1, l8)
	}
}

func TestPresetConfigs(t *testing.T) {
	for _, cfg := range []Config{DDR4(), HBM2()} {
		m := New(cfg) // must not panic
		if m.Config().Name == "" {
			t.Error("preset missing name")
		}
		if cfg.RowMiss <= cfg.RowHit {
			t.Errorf("%s: row miss (%d) must cost more than row hit (%d)",
				cfg.Name, cfg.RowMiss, cfg.RowHit)
		}
	}
	if DDR4().Transfer <= HBM2().Transfer {
		t.Error("HBM2 must have lower transfer occupancy than DDR4 (wider bus)")
	}
}

func BenchmarkDRAMAccess(b *testing.B) {
	m := New(HBM2())
	rng := xrand.New(3)
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = m.Access(now, addr.P(rng.Uint64n(1<<30)), access.Read, access.Data)
	}
}
