// Package dram models main-memory timing at channel/bank granularity with
// open-row buffers and busy-until occupancy tracking.
//
// The model is deliberately simple but captures the two effects the paper
// depends on:
//
//  1. Row-buffer locality: sequential lines hit the open row (cheap);
//     irregular PTE and pointer-chase accesses close/open rows
//     (expensive).
//  2. Queueing under multi-core load: each bank and each channel data bus
//     is a resource with a free-at timestamp, so concurrent cores see
//     growing wait times — the mechanism behind Figure 6(a), where NDP
//     page-table-walk latency climbs from 242.85 cycles (1 core) to
//     551.83 cycles (8 cores) while the CPU's stays flat.
//
// Latencies are in core cycles (2.6 GHz, Table I).
package dram

import (
	"fmt"
	"math/bits"

	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/resource"
	"ndpage/internal/stats"
)

// Config describes one memory device (DDR4 or HBM2 stack partition).
type Config struct {
	Name     string
	Channels int    // power of two
	Banks    int    // per channel, power of two
	RowBytes uint64 // row-buffer size per bank, power of two
	RowHit   uint64 // cycles for an open-row access
	RowMiss  uint64 // cycles for a row activate + access
	Transfer uint64 // channel data-bus occupancy per 64 B line
}

// DDR4 returns the CPU-side DDR4-2400 configuration from Table I:
// dual-channel, 8 banks, timings in 2.6 GHz core cycles
// (tCL ~ 16 ns -> ~42 cycles; row miss ~ tRP+tRCD+tCL ~ 44 ns -> ~114).
func DDR4() Config {
	return Config{
		Name:     "DDR4-2400",
		Channels: 2,
		Banks:    8,
		RowBytes: 8 << 10,
		RowHit:   42,
		RowMiss:  114,
		Transfer: 14, // 64 B over a 64-bit 2400 MT/s channel ~ 5.3 ns
	}
}

// HBM2 returns the NDP-side HBM2 configuration. Logic-layer cores reach
// the vaults of their own stack partition: two pseudo-channels with eight
// banks each are visible to the simulated core cluster, with a wide bus
// (low transfer occupancy) but DRAM-class device timings — HBM's
// advantage for NDP is proximity and bandwidth per pin, not latency.
// The narrow channel partition is what lets concurrent page-table-walk
// storms queue up at 4 and 8 cores (Figure 6a).
func HBM2() Config {
	return Config{
		Name:     "HBM2",
		Channels: 2,
		Banks:    8,
		RowBytes: 2 << 10,
		RowHit:   42,
		RowMiss:  110,
		Transfer: 4, // 64 B over a 128-bit 2.4 GT/s pseudo-channel
	}
}

// Stats aggregates device activity.
type Stats struct {
	PerClass  [access.NumClasses]stats.Counter // accesses by class
	RowHits   stats.Counter
	RowMisses stats.Counter
	// QueueCycles accumulates time spent waiting for a busy bank or bus;
	// QueueMean reports it per access.
	QueueCycles stats.Counter
	// ServiceCycles accumulates total latency (completion - arrival).
	ServiceCycles stats.Counter
	Accesses      stats.Counter
}

// MeanLatency returns the average access latency in cycles.
func (s *Stats) MeanLatency() float64 {
	return stats.Ratio(s.ServiceCycles.Value(), s.Accesses.Value())
}

// MeanQueue returns the average queueing delay in cycles.
func (s *Stats) MeanQueue() float64 {
	return stats.Ratio(s.QueueCycles.Value(), s.Accesses.Value())
}

type bank struct {
	slots   resource.Slots
	openRow uint64
	hasOpen bool
}

// Memory is one memory device shared by all cores of a system.
// Not safe for concurrent use.
type Memory struct {
	cfg      Config
	banks    []bank
	buses    []resource.Slots // per channel
	chanMask uint64
	bankMask uint64
	chanBits uint
	bankBits uint
	colBits  uint
	stats    Stats
}

// New builds a memory device from cfg.
func New(cfg Config) *Memory {
	if cfg.Channels <= 0 || cfg.Channels&(cfg.Channels-1) != 0 {
		panic(fmt.Sprintf("dram %q: channels must be a positive power of two", cfg.Name))
	}
	if cfg.Banks <= 0 || cfg.Banks&(cfg.Banks-1) != 0 {
		panic(fmt.Sprintf("dram %q: banks must be a positive power of two", cfg.Name))
	}
	if cfg.RowBytes < addr.LineSize || cfg.RowBytes&(cfg.RowBytes-1) != 0 {
		panic(fmt.Sprintf("dram %q: invalid row size %d", cfg.Name, cfg.RowBytes))
	}
	return &Memory{
		cfg:      cfg,
		banks:    make([]bank, cfg.Channels*cfg.Banks),
		buses:    make([]resource.Slots, cfg.Channels),
		chanMask: uint64(cfg.Channels - 1),
		bankMask: uint64(cfg.Banks - 1),
		chanBits: uint(bits.TrailingZeros(uint(cfg.Channels))),
		bankBits: uint(bits.TrailingZeros(uint(cfg.Banks))),
		colBits:  uint(bits.TrailingZeros(uint(cfg.RowBytes / addr.LineSize))),
	}
}

// Config returns the device configuration.
func (m *Memory) Config() Config { return m.cfg }

// Stats returns the live counters.
func (m *Memory) Stats() *Stats { return &m.stats }

// route decomposes a physical address into channel, bank index (global),
// and row, using line-interleaved channel mapping.
func (m *Memory) route(pa addr.P) (ch uint64, bankIdx uint64, row uint64) {
	x := pa.Line()
	ch = x & m.chanMask
	x >>= m.chanBits
	b := x & m.bankMask
	x >>= m.bankBits
	row = x >> m.colBits
	return ch, ch*uint64(m.cfg.Banks) + b, row
}

// Access performs one 64 B access arriving at time `now` and returns its
// absolute completion time. op is currently immaterial to timing (reads
// and writes occupy the bank identically in this model) but is kept for
// symmetry and future write-queue modelling.
//
// Requests may arrive out of order in wall time (the blocking-core engine
// advances one core's chain before stepping the next): banks and buses
// are busy-interval trackers, so an earlier-timestamped request overlaps
// the way the hardware would, instead of queueing behind a future chain.
func (m *Memory) Access(now uint64, pa addr.P, op access.Op, class access.Class) uint64 {
	ch, bi, row := m.route(pa)
	b := &m.banks[bi]

	service := m.cfg.RowMiss
	if b.hasOpen && b.openRow == row {
		service = m.cfg.RowHit
		m.stats.RowHits.Inc()
	} else {
		m.stats.RowMisses.Inc()
	}
	b.hasOpen = true
	b.openRow = row

	start := b.slots.Reserve(now, service)
	dataReady := start + service
	busStart := m.buses[ch].Reserve(dataReady, m.cfg.Transfer)
	done := busStart + m.cfg.Transfer

	m.stats.Accesses.Inc()
	m.stats.PerClass[class].Inc()
	m.stats.QueueCycles.Add((start - now) + (busStart - dataReady))
	m.stats.ServiceCycles.Add(done - now)
	return done
}

// Idle reports whether every bank and bus is free at time now — useful
// for tests asserting the queueing model drains.
func (m *Memory) Idle(now uint64) bool {
	for i := range m.banks {
		if !m.banks[i].slots.IdleAt(now) {
			return false
		}
	}
	for i := range m.buses {
		if !m.buses[i].IdleAt(now) {
			return false
		}
	}
	return true
}
