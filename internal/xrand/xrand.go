// Package xrand provides the deterministic pseudo-random number generator
// used by every workload generator and stochastic model in the simulator.
//
// Reproducibility is a hard requirement: a given (workload, seed, core)
// triple must emit the identical address stream on every run so that paper
// figures regenerate bit-identically. math/rand would satisfy that too, but
// a local splitmix64/xoshiro-style generator keeps the hot path inlineable
// and makes the stream format part of this repository's contract rather
// than the standard library's.
package xrand

import "math"

// RNG is a small, fast, deterministic generator (xorshift64* seeded through
// splitmix64). The zero value is usable and behaves as NewRNG(0).
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Distinct seeds — including
// consecutive integers — produce decorrelated streams because the seed is
// diffused through splitmix64 first.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the stream identified by seed.
func (r *RNG) Seed(seed uint64) {
	// splitmix64 step: guarantees a non-zero, well-mixed initial state
	// even for seed == 0.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	r.state = z
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	if r.state == 0 {
		r.Seed(0)
	}
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
// Uses the widening-multiply technique with a rejection step to avoid
// modulo bias.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire's method, 64x64 -> 128 via math/bits-free decomposition:
	// fall back to simple rejection sampling on the top bits, which is
	// unbiased and cheap for the n ranges the simulator uses.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Zipf draws from a bounded Zipf-like distribution over [0, n) with skew
// parameter s (s = 0 is uniform; s around 0.8–1.2 matches the hot-cold
// popularity skew of embedding-table and graph-degree accesses). It uses
// the rejection-inversion-free approximation n * u^(1/(1-s)) clipped to
// range, which preserves the heavy head that matters for cache behaviour
// while staying O(1) per draw.
func (r *RNG) Zipf(n uint64, s float64) uint64 {
	if n == 0 {
		panic("xrand: Zipf called with n == 0")
	}
	if s <= 0 {
		return r.Uint64n(n)
	}
	if s >= 0.999 {
		s = 0.999
	}
	u := r.Float64()
	// Inverse-CDF of the continuous Pareto-truncated approximation.
	v := math.Pow(u, 1/(1-s))
	idx := uint64(v * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Perm fills p with a pseudo-random permutation of [0, len(p)).
func (r *RNG) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Hash64 mixes x through a fixed 64-bit finalizer (stateless). Workload
// generators use it to derive reproducible per-element values (e.g. k-mer
// hashes) without consuming generator state.
func Hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
