package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDecorrelate(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 produced %d identical draws out of 1000", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Errorf("zero-value RNG produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(7)
	f := func(n uint32) bool {
		m := uint64(n%1000) + 1
		v := r.Uint64n(m)
		return v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(1 << 10); v >= 1<<10 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestZipfPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Zipf(0, s) did not panic")
		}
	}()
	New(1).Zipf(0, 0.9)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestUniformity(t *testing.T) {
	// Chi-squared-ish sanity: bucket 100k draws into 16 buckets; each
	// should be within 10% of the expected count.
	r := New(11)
	const draws, buckets = 100000, 16
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := draws / buckets
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 0.1*float64(want) {
			t.Errorf("bucket %d: %d draws, want ~%d", i, c, want)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With skew, low indices must be drawn much more often than the tail.
	r := New(13)
	const n = 1 << 20
	head, tail := 0, 0
	for i := 0; i < 100000; i++ {
		v := r.Zipf(n, 0.9)
		if v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		if v < n/100 {
			head++
		}
		if v > n-n/100 {
			tail++
		}
	}
	if head < 10*tail {
		t.Errorf("Zipf(0.9) head=%d tail=%d: expected strong head skew", head, tail)
	}
	// Zero skew degenerates to uniform: head and tail buckets comparable.
	head, tail = 0, 0
	for i := 0; i < 100000; i++ {
		v := r.Zipf(n, 0)
		if v < n/100 {
			head++
		}
		if v > n-n/100 {
			tail++
		}
	}
	if head > 3*tail || tail > 3*head {
		t.Errorf("Zipf(0) head=%d tail=%d: expected roughly uniform", head, tail)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / draws
	if got < 0.23 || got > 0.27 {
		t.Errorf("Bool(0.25) observed rate %.4f", got)
	}
}

func TestPerm(t *testing.T) {
	r := New(19)
	p := make([]int, 257)
	r.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: value %d", v)
		}
		seen[v] = true
	}
}

func TestHash64Stateless(t *testing.T) {
	if Hash64(12345) != Hash64(12345) {
		t.Error("Hash64 is not deterministic")
	}
	if Hash64(1) == Hash64(2) {
		t.Error("Hash64 collides trivially")
	}
	// Avalanche sanity: flipping one input bit flips ~half the output bits.
	a, b := Hash64(0xdeadbeef), Hash64(0xdeadbeef^1)
	diff := a ^ b
	bits := 0
	for diff != 0 {
		bits += int(diff & 1)
		diff >>= 1
	}
	if bits < 16 || bits > 48 {
		t.Errorf("poor avalanche: %d bits flipped", bits)
	}
}
