// Package fault is the deterministic fault-injection layer for the
// sweep/serve stack: seeded, scheduled chaos that makes resilience
// testable. Three injectors cover the pipeline's failure surface:
//
//   - Store wraps any sweep.Store with scheduled Get/Put errors,
//     latency, and — for directory-backed stores — torn writes that
//     bypass the atomic rename, planting exactly the corrupt entries
//     DirStore's quarantine exists to heal.
//   - Transport wraps an http.RoundTripper with connection resets,
//     injected 5xx responses, timeouts, latency, and mid-body
//     truncation, exercising RemoteStore's retry/backoff/breaker path.
//   - Plan.WrapSim wraps a simulation function with scheduled panics,
//     exercising the panic guards in sweep.Runner and the ndpserve
//     worker pool.
//
// Every injector draws its schedule from a Plan: an explicit rule list
// ("fail every 3rd Put, twice") driven by per-operation counters, plus
// a seeded RNG for the parameters of each fault (latency amounts,
// truncation points). The schedule itself is counter-based, not
// random — so a test can assert exact injection counts — while the
// seed makes the fault *shapes* reproducible: same seed, same chaos,
// byte-identical reruns.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// Kind is a fault flavor.
type Kind string

const (
	// KindErr makes the operation return an injected error.
	KindErr Kind = "error"
	// KindLatency delays the operation, then lets it proceed.
	KindLatency Kind = "latency"
	// KindTorn corrupts a store write: a truncated entry lands on disk
	// as if the process died mid-write with the rename already done.
	KindTorn Kind = "torn"
	// KindReset fails a transport request with a connection reset.
	KindReset Kind = "reset"
	// KindTimeout fails a transport request with a timeout error.
	KindTimeout Kind = "timeout"
	// KindServerErr answers a transport request with a synthesized 503
	// without reaching the server.
	KindServerErr Kind = "5xx"
	// KindTruncate cuts a transport response body off mid-stream.
	KindTruncate Kind = "truncate"
	// KindPanic panics the simulation with an InjectedPanic value.
	KindPanic Kind = "panic"
)

// Operation classes. Each Rule targets one class; each class keeps its
// own 1-based operation counter.
const (
	// OpGet is a Store.Get call.
	OpGet = "store.get"
	// OpPut is a Store.Put call.
	OpPut = "store.put"
	// OpRequest is an outgoing HTTP request (Transport).
	OpRequest = "transport.request"
	// OpBody is an HTTP response body delivery (Transport).
	OpBody = "transport.body"
	// OpSim is a simulation run (Plan.WrapSim).
	OpSim = "sim"
)

// Rule schedules one fault kind against one operation class: it fires
// on every Every'th operation of the class (1-based, so Every=3 fires
// on ops 3, 6, 9, …), at most Count times (0 = unlimited).
type Rule struct {
	Op    string
	Kind  Kind
	Every int
	Count int
}

// Plan is a deterministic fault schedule: rules driven by per-class
// operation counters, parameterized by a seeded RNG. A Plan is safe for
// concurrent use and is meant to be shared by every injector in one
// chaos scenario, so the injected-fault ledger (Counts, Total) covers
// the whole run.
type Plan struct {
	seed  int64
	rules []Rule

	mu       sync.Mutex
	rng      *rand.Rand
	ops      map[string]int // per-class operation counter
	fired    []int          // per-rule fire counter
	injected map[string]int // "class/kind" → fires
}

// NewPlan builds a schedule over rules, parameterized by seed.
func NewPlan(seed int64, rules ...Rule) *Plan {
	return &Plan{
		seed:     seed,
		rules:    rules,
		rng:      rand.New(rand.NewSource(seed)),
		ops:      make(map[string]int),
		fired:    make([]int, len(rules)),
		injected: make(map[string]int),
	}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// next advances the class's operation counter and returns the fault to
// inject into this operation, if any. At most one rule fires per
// operation (first match wins, in rule order).
func (p *Plan) next(op string) (Kind, bool) {
	if p == nil {
		return "", false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ops[op]++
	n := p.ops[op]
	for i, r := range p.rules {
		if r.Op != op || r.Every <= 0 || n%r.Every != 0 {
			continue
		}
		if r.Count > 0 && p.fired[i] >= r.Count {
			continue
		}
		p.fired[i]++
		p.injected[op+"/"+string(r.Kind)]++
		return r.Kind, true
	}
	return "", false
}

// intn draws from the plan's seeded RNG (fault parameters only — the
// schedule never consults it).
func (p *Plan) intn(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Intn(n)
}

// Total returns the number of faults injected so far.
func (p *Plan) Total() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t := 0
	for _, n := range p.injected {
		t += n
	}
	return t
}

// Counts returns the injected-fault ledger as sorted "class/kind=n"
// terms — one line for a log or an assertion message.
func (p *Plan) Counts() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	terms := make([]string, 0, len(p.injected))
	for k, n := range p.injected {
		terms = append(terms, fmt.Sprintf("%s=%d", k, n))
	}
	p.mu.Unlock()
	sort.Strings(terms)
	return strings.Join(terms, " ")
}

// InjectedPanic is the value a scheduled KindPanic throws. It satisfies
// the sweep package's transient-panic contract: a guard recovering one
// of these classifies the failure transient (the injector caused it,
// not the configuration), so a retry runs the configuration for real.
type InjectedPanic struct {
	// Op is the operation class the fault was scheduled against.
	Op string
}

// InjectedFault marks the panic as deliberately injected.
func (InjectedPanic) InjectedFault() bool { return true }

func (p InjectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic (%s)", p.Op)
}
