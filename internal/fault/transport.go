package fault

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// resetError mimics a connection reset: a transport-level failure the
// client sees as a failed round trip.
type resetError struct{}

func (resetError) Error() string { return "fault: injected connection reset" }

// timeoutError mimics an I/O timeout; it satisfies net.Error's Timeout
// contract so callers that special-case timeouts treat it as one.
type timeoutError struct{}

func (timeoutError) Error() string   { return "fault: injected timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// Transport wraps an http.RoundTripper with scheduled faults. Outgoing
// requests consult the Plan (class OpRequest):
//
//   - KindReset fails the round trip with a connection-reset error
//     before the request reaches the wire.
//   - KindTimeout fails it with an error satisfying net.Error.Timeout.
//   - KindServerErr synthesizes a 503 response (Retry-After free — a
//     generic overloaded-gateway shape) without reaching the server.
//   - KindLatency sleeps 1–50ms, then proceeds.
//
// Successful responses then consult class OpBody: KindTruncate cuts the
// body off mid-stream (half its bytes for buffered responses), which a
// JSON decoder surfaces as an unexpected-EOF — the torn-connection
// shape RemoteStore must retry through.
//
// Faults injected before the wire never perturb server-side state:
// a reset request was never sent, so the server's counters see nothing.
// Only KindTruncate touches a real exchange, and it corrupts the copy
// in flight, not the entry the server holds.
type Transport struct {
	// Base is the wrapped transport (nil = http.DefaultTransport).
	Base http.RoundTripper
	// Plan schedules the faults (nil injects nothing).
	Plan *Plan
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch kind, _ := t.Plan.next(OpRequest); kind {
	case KindReset:
		// The request body (if any) must be consumed per the
		// RoundTripper contract before failing.
		drain(req)
		return nil, resetError{}
	case KindTimeout:
		drain(req)
		return nil, timeoutError{}
	case KindServerErr:
		drain(req)
		return synthesize(req, http.StatusServiceUnavailable, "fault: injected server error"), nil
	case KindLatency:
		time.Sleep(time.Duration(1+t.Plan.intn(50)) * time.Millisecond)
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if kind, _ := t.Plan.next(OpBody); kind == KindTruncate {
		resp.Body = truncateBody(resp.Body)
	}
	return resp, nil
}

func drain(req *http.Request) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}

// synthesize fabricates an error response that never touched the wire.
func synthesize(req *http.Request, code int, msg string) *http.Response {
	body := msg + "\n"
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody delivers half the body's bytes, then reports an abrupt
// connection loss (io.ErrUnexpectedEOF) instead of a clean EOF.
func truncateBody(body io.ReadCloser) io.ReadCloser {
	b, err := io.ReadAll(body)
	body.Close()
	if err != nil {
		// The real body already failed; pass that through.
		return io.NopCloser(&failReader{err: err})
	}
	return io.NopCloser(&failReader{r: bytes.NewReader(b[:len(b)/2]), err: io.ErrUnexpectedEOF})
}

// failReader serves r, then fails with err instead of io.EOF.
type failReader struct {
	r   io.Reader
	err error
}

func (f *failReader) Read(p []byte) (int, error) {
	if f.r != nil {
		n, err := f.r.Read(p)
		if err == nil || err != io.EOF {
			return n, err
		}
		f.r = nil
		if n > 0 {
			return n, nil
		}
	}
	return 0, f.err
}
