package fault

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ndpage/internal/core"
	"ndpage/internal/memsys"
	"ndpage/internal/sim"
	"ndpage/internal/sweep"
)

func testCfg(seed uint64) sim.Config {
	return sim.Config{
		System:         memsys.NDP,
		Cores:          1,
		Mechanism:      core.Radix,
		Workload:       "rnd",
		FootprintBytes: 64 << 20,
		MemoryBytes:    1 << 30,
		Warmup:         500,
		Instructions:   2000,
		Seed:           seed,
	}.Normalize()
}

// TestPlanSchedule: rules fire on exact operation counts, honor Count
// caps, and the ledger reports what fired.
func TestPlanSchedule(t *testing.T) {
	p := NewPlan(1,
		Rule{Op: OpGet, Kind: KindErr, Every: 3, Count: 2},
		Rule{Op: OpPut, Kind: KindTorn, Every: 1, Count: 1},
	)
	var fires []int
	for i := 1; i <= 12; i++ {
		if kind, ok := p.next(OpGet); ok {
			if kind != KindErr {
				t.Fatalf("op %d injected %q", i, kind)
			}
			fires = append(fires, i)
		}
	}
	if len(fires) != 2 || fires[0] != 3 || fires[1] != 6 {
		t.Errorf("KindErr fired on ops %v, want [3 6]", fires)
	}
	if kind, ok := p.next(OpPut); !ok || kind != KindTorn {
		t.Errorf("first put = %q, %v; want torn", kind, ok)
	}
	if _, ok := p.next(OpPut); ok {
		t.Error("torn rule fired past its Count")
	}
	if p.Total() != 3 {
		t.Errorf("Total = %d, want 3", p.Total())
	}
	if got := p.Counts(); got != "store.get/error=2 store.put/torn=1" {
		t.Errorf("Counts = %q", got)
	}
}

// TestPlanDeterministic: two plans with the same seed and rules inject
// identical schedules and identical fault parameters.
func TestPlanDeterministic(t *testing.T) {
	a := NewPlan(42, Rule{Op: OpGet, Kind: KindErr, Every: 2})
	b := NewPlan(42, Rule{Op: OpGet, Kind: KindErr, Every: 2})
	for i := 0; i < 20; i++ {
		ka, oka := a.next(OpGet)
		kb, okb := b.next(OpGet)
		if ka != kb || oka != okb {
			t.Fatalf("op %d diverged: (%q,%v) vs (%q,%v)", i, ka, oka, kb, okb)
		}
		if a.intn(1000) != b.intn(1000) {
			t.Fatal("seeded parameter streams diverged")
		}
	}
}

// TestStoreInjectsErrors: a scheduled KindErr surfaces as ErrInjected;
// unfaulted operations pass through.
func TestStoreInjectsErrors(t *testing.T) {
	inner := sweep.NewMemStore()
	fs := &Store{Inner: inner, Plan: NewPlan(1, Rule{Op: OpGet, Kind: KindErr, Every: 2, Count: 1})}
	cfg := testCfg(1)
	key := cfg.Key()
	if err := fs.Put(key, &sim.Result{Config: cfg, Cycles: 7}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := fs.Get(key); !ok || err != nil {
		t.Fatalf("op 1 (unfaulted) = %v, %v", ok, err)
	}
	if _, _, err := fs.Get(key); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 2 err = %v, want ErrInjected", err)
	}
	if _, ok, err := fs.Get(key); !ok || err != nil {
		t.Fatalf("op 3 (count exhausted) = %v, %v", ok, err)
	}
}

// TestStoreTornWriteQuarantined is the end-to-end self-healing loop:
// a torn write plants a corrupt entry in a real DirStore, the next read
// quarantines it and reports a miss, and a clean re-simulation restores
// the key — the sweep-level guarantee the chaos CI job leans on.
func TestStoreTornWriteQuarantined(t *testing.T) {
	dir := t.TempDir()
	inner, err := sweep.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs := &Store{
		Inner: inner,
		Plan:  NewPlan(7, Rule{Op: OpPut, Kind: KindTorn, Every: 1, Count: 1}),
		Dir:   inner.Dir(),
	}
	cfg := testCfg(3)
	key := cfg.Key()
	res := &sim.Result{Config: cfg, Cycles: 99}
	if err := fs.Put(key, res); err != nil {
		t.Fatal(err) // the tear reports success
	}
	if _, ok, err := fs.Get(key); ok || err != nil {
		t.Fatalf("read of torn entry = hit %v, err %v; want quarantined miss", ok, err)
	}
	if inner.Quarantined() != 1 {
		t.Errorf("Quarantined = %d, want 1", inner.Quarantined())
	}
	if err := fs.Put(key, res); err != nil {
		t.Fatal(err) // rule count exhausted: this write is clean
	}
	got, ok, err := fs.Get(key)
	if err != nil || !ok || got.Cycles != 99 {
		t.Fatalf("healed Get = %+v, %v, %v", got, ok, err)
	}
}

// TestStoreUnwrap: capability probes see through the wrapper.
func TestStoreUnwrap(t *testing.T) {
	inner := sweep.NewMemStore()
	fs := &Store{Inner: inner, Plan: NewPlan(1)}
	var unwrapped sweep.Store = fs.Unwrap()
	if unwrapped != sweep.Store(inner) {
		t.Error("Unwrap did not return the inner store")
	}
}

// TestTransportFaults walks each transport fault kind against a live
// test server.
func TestTransportFaults(t *testing.T) {
	const body = `{"answer": 42}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	defer ts.Close()

	do := func(tr *Transport) (*http.Response, error) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL, strings.NewReader("ping"))
		return tr.RoundTrip(req)
	}

	t.Run("reset", func(t *testing.T) {
		tr := &Transport{Plan: NewPlan(1, Rule{Op: OpRequest, Kind: KindReset, Every: 1, Count: 1})}
		if _, err := do(tr); err == nil || !strings.Contains(err.Error(), "reset") {
			t.Fatalf("err = %v, want injected reset", err)
		}
		if resp, err := do(tr); err != nil || resp.StatusCode != 200 {
			t.Fatalf("second request = %v, %v; want clean 200", resp, err)
		}
	})
	t.Run("timeout", func(t *testing.T) {
		tr := &Transport{Plan: NewPlan(1, Rule{Op: OpRequest, Kind: KindTimeout, Every: 1})}
		_, err := do(tr)
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("err = %v, want net.Error timeout", err)
		}
	})
	t.Run("5xx", func(t *testing.T) {
		tr := &Transport{Plan: NewPlan(1, Rule{Op: OpRequest, Kind: KindServerErr, Every: 1})}
		resp, err := do(tr)
		if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("resp = %v, %v; want synthesized 503", resp, err)
		}
		resp.Body.Close()
	})
	t.Run("truncate", func(t *testing.T) {
		tr := &Transport{Plan: NewPlan(1, Rule{Op: OpBody, Kind: KindTruncate, Every: 1})}
		resp, err := do(tr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("read err = %v, want unexpected EOF", err)
		}
		if len(b) != len(body)/2 {
			t.Errorf("delivered %d bytes, want %d", len(b), len(body)/2)
		}
	})
}

// TestWrapSimPanicIsTransient: an injected panic is recovered by
// sweep.Guard and classified transient, so chaos never pollutes the
// negative cache — the retry simulates for real.
func TestWrapSimPanicIsTransient(t *testing.T) {
	p := NewPlan(5, Rule{Op: OpSim, Kind: KindPanic, Every: 1, Count: 1})
	var calls int
	wrapped := sweep.Guard(p.WrapSim(func(cfg sim.Config) (*sim.Result, error) {
		calls++
		return &sim.Result{Config: cfg, Cycles: 1}, nil
	}))
	cfg := testCfg(9)
	_, err := wrapped(cfg)
	var re *sweep.RunError
	if !errors.As(err, &re) || !re.Panicked || re.Permanent {
		t.Fatalf("err = %v, want transient recovered panic", err)
	}
	if calls != 0 {
		t.Fatal("simulator ran despite the injected panic")
	}
	res, err := wrapped(cfg)
	if err != nil || res.Cycles != 1 {
		t.Fatalf("retry = %+v, %v; want clean run", res, err)
	}
}

// TestRunnerSurvivesChaos drives a whole sweep through a faulty store
// and panicking simulator: every fault is transient, so retried Runs
// converge to complete, correct results with zero process crashes.
func TestRunnerSurvivesChaos(t *testing.T) {
	dir := t.TempDir()
	inner, err := sweep.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(11,
		Rule{Op: OpPut, Kind: KindTorn, Every: 2, Count: 1},
		Rule{Op: OpSim, Kind: KindPanic, Every: 3, Count: 1},
	)
	simFn := plan.WrapSim(func(cfg sim.Config) (*sim.Result, error) {
		return &sim.Result{Config: cfg, Cycles: 1000 + cfg.Seed}, nil
	})
	cfgs := []sim.Config{testCfg(1), testCfg(2), testCfg(3), testCfg(4)}
	r := &sweep.Runner{
		Store:    &Store{Inner: inner, Plan: plan, Dir: inner.Dir()},
		Simulate: simFn,
	}
	// Retry until clean: transient faults may fail individual Runs, but
	// the chaos budget is finite (both rules have Count caps).
	var out []*sim.Result
	for attempt := 0; attempt < 5; attempt++ {
		if out, err = r.Run(t.Context(), cfgs); err == nil {
			break
		}
		if sweep.IsPermanent(err) {
			t.Fatalf("chaos produced a permanent failure: %v", err)
		}
	}
	if err != nil {
		t.Fatalf("sweep did not converge under chaos: %v", err)
	}
	for i, res := range out {
		if res == nil || res.Cycles != 1000+uint64(i+1) {
			t.Fatalf("result %d wrong under chaos: %+v", i, res)
		}
	}
	if plan.Total() == 0 {
		t.Fatal("no faults were injected — the chaos test tested nothing")
	}
}
