package fault

import (
	"ndpage/internal/sim"
)

// WrapSim wraps a simulation function with scheduled panics (class
// OpSim): a firing KindPanic rule throws an InjectedPanic before the
// simulator runs. The panic value satisfies the sweep package's
// transient-panic contract, so the guard that recovers it classifies
// the failure transient and a retry runs the configuration for real —
// injected chaos never changes which results a sweep converges to,
// only how much adversity it survives on the way.
func (p *Plan) WrapSim(fn func(sim.Config) (*sim.Result, error)) func(sim.Config) (*sim.Result, error) {
	return func(cfg sim.Config) (*sim.Result, error) {
		if kind, _ := p.next(OpSim); kind == KindPanic {
			panic(InjectedPanic{Op: OpSim})
		}
		return fn(cfg)
	}
}

// ServerPlan is the canned server-side chaos schedule used by ndpserve
// -chaos-seed and the CI chaos-smoke job: the first simulation panics
// (recovered by the worker guard, retried by the client), and the first
// store write is torn (quarantined and re-simulated on the next read).
// The counts are deliberately exact — one panic, one torn write — so a
// smoke test can assert the precise /statsz deltas.
func ServerPlan(seed int64) *Plan {
	return NewPlan(seed,
		Rule{Op: OpSim, Kind: KindPanic, Every: 1, Count: 1},
		Rule{Op: OpPut, Kind: KindTorn, Every: 1, Count: 1},
	)
}

// LocalPlan is the canned directory-cache chaos schedule used by ndpexp
// -chaos-seed against a local cache: every 5th store write is torn
// (healed by quarantine on the next read) and every 3rd read is
// delayed. Tables stay byte-identical — the sweep serves results from
// memory within a pass and re-simulates deterministically across
// passes.
func LocalPlan(seed int64) *Plan {
	return NewPlan(seed,
		Rule{Op: OpPut, Kind: KindTorn, Every: 5},
		Rule{Op: OpGet, Kind: KindLatency, Every: 3},
	)
}

// ClientPlan is the canned client-side chaos schedule used by ndpexp
// -chaos-seed: sparse connection resets, synthesized 5xx responses, and
// mid-body truncation, spread over co-prime periods so they land on
// different requests. Every fault is transient and fires before (or
// independent of) server state, so a resilient client converges to
// byte-identical results; the periods keep at most two consecutive
// requests faulty, well under RemoteStore's retry budget and breaker
// threshold.
func ClientPlan(seed int64) *Plan {
	return NewPlan(seed,
		Rule{Op: OpRequest, Kind: KindReset, Every: 5},
		Rule{Op: OpRequest, Kind: KindServerErr, Every: 7},
		Rule{Op: OpBody, Kind: KindTruncate, Every: 11},
	)
}
