package fault

import (
	"errors"
	"os"
	"path/filepath"
	"time"

	"ndpage/internal/sim"
	"ndpage/internal/sweep"
)

// ErrInjected is the root cause of every injected store error, so
// tests (and humans reading logs) can tell scheduled chaos from real
// failures.
var ErrInjected = errors.New("fault: injected failure")

// Store wraps a sweep.Store with scheduled faults. Gets and Puts
// consult the Plan (classes OpGet / OpPut) before delegating:
//
//   - KindErr fails the operation with ErrInjected.
//   - KindLatency sleeps 1–50ms (seeded), then delegates.
//   - KindTorn (Put only, needs Dir) reports success but writes a
//     truncated entry straight into the directory — simulating a write
//     that died after the rename, the exact debris DirStore's
//     quarantine path exists to heal. Without Dir it degrades to
//     dropping the write silently.
//
// The wrapper forwards the Inventory / Quarantiner / Simulator
// capabilities of the inner store via Unwrap, which the serve package's
// capability probes follow.
type Store struct {
	// Inner is the wrapped store. Required.
	Inner sweep.Store
	// Plan schedules the faults (nil injects nothing).
	Plan *Plan
	// Dir, when set, is Inner's backing directory (DirStore.Dir()),
	// enabling torn-write injection.
	Dir string
}

// Unwrap exposes the wrapped store to capability probes.
func (s *Store) Unwrap() sweep.Store { return s.Inner }

func (s *Store) latency() {
	time.Sleep(time.Duration(1+s.Plan.intn(50)) * time.Millisecond)
}

// Get implements sweep.Store.
func (s *Store) Get(key string) (*sim.Result, bool, error) {
	switch kind, _ := s.Plan.next(OpGet); kind {
	case KindErr:
		return nil, false, ErrInjected
	case KindLatency:
		s.latency()
	}
	return s.Inner.Get(key)
}

// Put implements sweep.Store.
func (s *Store) Put(key string, res *sim.Result) error {
	switch kind, _ := s.Plan.next(OpPut); kind {
	case KindErr:
		return ErrInjected
	case KindLatency:
		s.latency()
	case KindTorn:
		s.tear(key)
		return nil
	}
	return s.Inner.Put(key, res)
}

// tear plants a corrupt entry: the real write is skipped and a
// truncated JSON fragment lands under the entry's final name — as if
// the writer died with the rename already done. The caller is told the
// write succeeded; the corruption is only discovered, and quarantined,
// when the entry is next read. Without a Dir the write is silently
// dropped instead (the entry simply stays cold).
func (s *Store) tear(key string) {
	if s.Dir == "" {
		return
	}
	frag := []byte(`{"Config":{"Sys`) // cut mid-key: unparseable
	os.WriteFile(filepath.Join(s.Dir, key+".json"), frag, 0o644)
}
