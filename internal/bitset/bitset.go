// Package bitset provides a paged bitmap over uint64 keys: a directory
// of fixed-size bit pages allocated on first touch. It backs the OS
// model's per-chunk state (huge-page fallback marks, residency tracking)
// that used to live in map[addr.VPN]bool sets — a Get is two array
// indexes and a mask instead of a map-bucket probe, which matters
// because the residency and fallback checks sit on the demand-paging
// path of every simulated load and store.
//
// Keys are expected to be dense-ish (the simulator's address spaces
// bump-allocate virtual chunks from a fixed base, so chunk ordinals are
// a short dense run); sparse keys still work, paying one page per
// occupied key range. The zero value is an empty set ready to use.
package bitset

// pageBits is log2 of the bits per directory page. 1<<15 bits = 4 KB of
// words per page, so a 16 GB address space's 2 MB-chunk ordinals (8192
// chunks) fit in a single page.
const (
	pageBits = 15
	pageSize = 1 << pageBits // bits per page
	words    = pageSize / 64
)

// Paged is a paged bitmap. Not safe for concurrent use.
type Paged struct {
	pages [][]uint64
	count uint64
}

// Get reports whether key is in the set.
func (p *Paged) Get(key uint64) bool {
	pi := key >> pageBits
	if pi >= uint64(len(p.pages)) || p.pages[pi] == nil {
		return false
	}
	bit := key & (pageSize - 1)
	return p.pages[pi][bit>>6]&(1<<(bit&63)) != 0
}

// Set adds key to the set, allocating its page on first touch.
func (p *Paged) Set(key uint64) {
	pi := key >> pageBits
	for uint64(len(p.pages)) <= pi {
		p.pages = append(p.pages, nil)
	}
	if p.pages[pi] == nil {
		p.pages[pi] = make([]uint64, words)
	}
	bit := key & (pageSize - 1)
	w, m := bit>>6, uint64(1)<<(bit&63)
	if p.pages[pi][w]&m == 0 {
		p.pages[pi][w] |= m
		p.count++
	}
}

// Clear removes key from the set.
func (p *Paged) Clear(key uint64) {
	pi := key >> pageBits
	if pi >= uint64(len(p.pages)) || p.pages[pi] == nil {
		return
	}
	bit := key & (pageSize - 1)
	w, m := bit>>6, uint64(1)<<(bit&63)
	if p.pages[pi][w]&m != 0 {
		p.pages[pi][w] &^= m
		p.count--
	}
}

// Len returns the number of keys in the set.
func (p *Paged) Len() uint64 { return p.count }
