// Package bitset provides a paged bitmap over uint64 keys: a directory
// of fixed-size bit pages allocated on first touch. It backs the OS
// model's per-chunk state (huge-page fallback marks, residency tracking)
// that used to live in map[addr.VPN]bool sets — a Get is two array
// indexes and a mask instead of a map-bucket probe, which matters
// because the residency and fallback checks sit on the demand-paging
// path of every simulated load and store.
//
// Keys are expected to be dense-ish (the simulator's address spaces
// bump-allocate virtual chunks from a fixed base, so chunk ordinals are
// a short dense run); sparse keys still work, paying one page per
// occupied key range. The zero value is an empty set ready to use.
package bitset

import (
	"math/bits"
	"slices"
)

// pageBits is log2 of the bits per directory page. 1<<15 bits = 4 KB of
// words per page, so a 16 GB address space's 2 MB-chunk ordinals (8192
// chunks) fit in a single page.
const (
	pageBits = 15
	pageSize = 1 << pageBits // bits per page
	words    = pageSize / 64
)

// Paged is a paged bitmap. Not safe for concurrent use.
type Paged struct {
	pages [][]uint64
	count uint64
}

// Get reports whether key is in the set.
func (p *Paged) Get(key uint64) bool {
	pi := key >> pageBits
	if pi >= uint64(len(p.pages)) || p.pages[pi] == nil {
		return false
	}
	bit := key & (pageSize - 1)
	return p.pages[pi][bit>>6]&(1<<(bit&63)) != 0
}

// Set adds key to the set, allocating its page on first touch.
func (p *Paged) Set(key uint64) {
	pi := key >> pageBits
	if n := int(pi) + 1 - len(p.pages); n > 0 {
		p.pages = slices.Grow(p.pages, n)[:pi+1]
	}
	if p.pages[pi] == nil {
		p.pages[pi] = make([]uint64, words)
	}
	bit := key & (pageSize - 1)
	w, m := bit>>6, uint64(1)<<(bit&63)
	if p.pages[pi][w]&m == 0 {
		p.pages[pi][w] |= m
		p.count++
	}
}

// Clear removes key from the set.
func (p *Paged) Clear(key uint64) {
	pi := key >> pageBits
	if pi >= uint64(len(p.pages)) || p.pages[pi] == nil {
		return
	}
	bit := key & (pageSize - 1)
	w, m := bit>>6, uint64(1)<<(bit&63)
	if p.pages[pi][w]&m != 0 {
		p.pages[pi][w] &^= m
		p.count--
	}
}

// Len returns the number of keys in the set.
func (p *Paged) Len() uint64 { return p.count }

// Word-bitmap helpers: operations on caller-owned []uint64 bitmaps, for
// structures that know their capacity up front and want the bits inline
// (page-table present sets, per-way occupancy maps). All helpers index
// bit i at words[i>>6] bit i&63 and assume i is in range; they are small
// enough to inline into the lookup paths that motivate them.

// WordsFor returns the number of uint64 words covering n bits.
func WordsFor(n uint64) int { return int((n + 63) / 64) }

// TestBit reports whether bit i is set.
func TestBit(words []uint64, i uint64) bool {
	return words[i>>6]&(1<<(i&63)) != 0
}

// SetBit sets bit i, reporting whether it was previously clear.
func SetBit(words []uint64, i uint64) bool {
	w, m := i>>6, uint64(1)<<(i&63)
	if words[w]&m != 0 {
		return false
	}
	words[w] |= m
	return true
}

// ClearBit clears bit i, reporting whether it was previously set.
func ClearBit(words []uint64, i uint64) bool {
	w, m := i>>6, uint64(1)<<(i&63)
	if words[w]&m == 0 {
		return false
	}
	words[w] &^= m
	return true
}

// SetRun sets bits [i, i+n), returning how many were previously clear
// (popcount of the freshly set bits, word at a time) — bulk-population
// paths use the return value to maintain used counts without a
// per-entry test.
func SetRun(words []uint64, i, n uint64) uint64 {
	fresh := uint64(0)
	for n > 0 {
		w, off := i>>6, i&63
		span := 64 - off
		if span > n {
			span = n
		}
		mask := (^uint64(0) >> (64 - span)) << off
		fresh += uint64(bits.OnesCount64(mask &^ words[w]))
		words[w] |= mask
		i += span
		n -= span
	}
	return fresh
}

// Count returns the population count of the bitmap.
func Count(words []uint64) uint64 {
	total := uint64(0)
	for _, w := range words {
		total += uint64(bits.OnesCount64(w))
	}
	return total
}
