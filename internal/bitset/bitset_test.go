package bitset

import "testing"

func TestZeroValueIsEmpty(t *testing.T) {
	var p Paged
	if p.Get(0) || p.Get(1<<40) {
		t.Error("zero-value set reports membership")
	}
	if p.Len() != 0 {
		t.Errorf("Len = %d, want 0", p.Len())
	}
}

func TestSetGetClear(t *testing.T) {
	var p Paged
	keys := []uint64{0, 1, 63, 64, pageSize - 1, pageSize, pageSize + 7, 3 * pageSize}
	for _, k := range keys {
		p.Set(k)
	}
	if p.Len() != uint64(len(keys)) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(keys))
	}
	for _, k := range keys {
		if !p.Get(k) {
			t.Errorf("key %d missing after Set", k)
		}
	}
	// Neighbors unaffected.
	for _, k := range []uint64{2, 62, 65, pageSize + 1, 2 * pageSize} {
		if p.Get(k) {
			t.Errorf("key %d present without Set", k)
		}
	}
	p.Clear(keys[0])
	p.Clear(keys[3])
	if p.Get(keys[0]) || p.Get(keys[3]) {
		t.Error("cleared keys still present")
	}
	if p.Len() != uint64(len(keys)-2) {
		t.Errorf("Len after clears = %d, want %d", p.Len(), len(keys)-2)
	}
}

func TestSetIdempotentAndClearMissing(t *testing.T) {
	var p Paged
	p.Set(100)
	p.Set(100)
	if p.Len() != 1 {
		t.Errorf("double Set counted twice: Len = %d", p.Len())
	}
	p.Clear(200)     // absent key in an existing page range? (page 0 exists)
	p.Clear(1 << 30) // absent key in an unallocated page
	if p.Len() != 1 {
		t.Errorf("Clear of absent keys changed Len = %d", p.Len())
	}
}

// TestMatchesMapReference drives the paged bitmap and a map[uint64]bool
// through a pseudo-random Set/Clear/Get mix and requires identical
// membership.
func TestMatchesMapReference(t *testing.T) {
	var p Paged
	ref := map[uint64]bool{}
	state := uint64(0x2545F4914F6CDD1D)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < 100000; i++ {
		// Dense-ish keys with occasional far outliers, mirroring chunk
		// ordinals from a bump allocator plus reclaim churn.
		key := next() % 10000
		if next()%100 == 0 {
			key += 1 << 20
		}
		switch next() % 3 {
		case 0:
			p.Set(key)
			ref[key] = true
		case 1:
			p.Clear(key)
			delete(ref, key)
		default:
			if p.Get(key) != ref[key] {
				t.Fatalf("op %d: Get(%d) = %v, reference %v", i, key, p.Get(key), ref[key])
			}
		}
	}
	if p.Len() != uint64(len(ref)) {
		t.Fatalf("Len = %d, reference %d", p.Len(), len(ref))
	}
}
