package exp

import (
	"ndpage/internal/addr"
	"ndpage/internal/core"
	"ndpage/internal/memsys"
	"ndpage/internal/stats"
	"ndpage/internal/sweep"
	"ndpage/internal/workload"
)

// Paper-reported values used for side-by-side comparison rows. These are
// the numbers printed in the paper's text; per-workload bars are read off
// figures and not transcribed.
const (
	paperFig4NDPMeanPTW   = 474.56 // 4-core NDP mean PTW latency (cycles)
	paperFig4IncrementPct = 229    // NDP PTW vs CPU (+%)
	paperFig5NDPOverhead  = 67.1   // % of execution time, 4-core NDP
	paperFig5CPUOverhead  = 34.51  // % of execution time, 4-core CPU
	paperFig6NDP1         = 242.85 // NDP mean PTW, 1 core
	paperFig6NDP8         = 551.83 // NDP mean PTW, 8 cores
	paperTLBMissPct       = 91.27  // Section IV-A
	paperPTEShare         = 65.8   // % of memory accesses that are PTEs
	paperPTEL1Miss        = 98.28  // metadata L1 miss %
	paperDataMissActual   = 35.89  // normal data L1 miss %, with translation
	paperDataMissIdeal    = 26.16  // normal data L1 miss %, ideal
	paperPL1Occ           = 97.97  // Figure 8 occupancy %
	paperPL2Occ           = 98.24
	paperPL3Occ           = 3.12
	paperPL4Occ           = 0.43
	paperPWCPL4           = 100.0 // Section V-C hit rates %
	paperPWCPL3           = 98.6
	paperPWCPL2           = 15.4
	paperFig12NDPage      = 1.344 // single-core mean speedups over Radix
	paperFig12OverECH     = 1.143
	paperFig12OverHuge    = 1.244
	paperFig13OverECH     = 1.098 // 4-core NDPage over ECH
	paperFig14OverECH     = 1.305 // 8-core NDPage over ECH
	paperFig14OverHuge    = 1.562
	paperFig14HugeSpeedup = 0.901
)

// Fig4 reproduces Figure 4: average page-table-walk latency per workload
// on the 4-core NDP and CPU systems (Radix), and the NDP increment.
func (r *Runner) Fig4() (*stats.Table, error) {
	if err := r.prefetch(r.radixPairPlan(4)); err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 4: mean PTW latency, 4-core Radix (cycles)",
		"workload", "cpu", "ndp", "ndp/cpu")
	var cpuAll, ndpAll []float64
	for _, wl := range r.WorkloadNames() {
		cpuRes, err := r.get(r.matrix(memsys.CPU, core.Radix, 4, wl))
		if err != nil {
			return nil, err
		}
		ndpRes, err := r.get(r.matrix(memsys.NDP, core.Radix, 4, wl))
		if err != nil {
			return nil, err
		}
		cpu, ndp := cpuRes.MeanPTWLatency(), ndpRes.MeanPTWLatency()
		cpuAll = append(cpuAll, cpu)
		ndpAll = append(ndpAll, ndp)
		t.AddRow(wl, stats.F(cpu), stats.F(ndp), stats.F(ndp/cpu))
	}
	mc, mn := stats.ArithMean(cpuAll), stats.ArithMean(ndpAll)
	t.AddRow("mean", stats.F(mc), stats.F(mn), stats.F(mn/mc))
	t.AddNote("paper: NDP mean %.2f cycles, +%d%% over CPU", paperFig4NDPMeanPTW, paperFig4IncrementPct)
	return t, nil
}

// Fig5 reproduces Figure 5: fraction of execution time spent on address
// translation in the 4-core systems.
func (r *Runner) Fig5() (*stats.Table, error) {
	if err := r.prefetch(r.radixPairPlan(4)); err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 5: address-translation overhead, 4-core Radix (% of time)",
		"workload", "cpu", "ndp")
	var cpuAll, ndpAll []float64
	for _, wl := range r.WorkloadNames() {
		cpuRes, err := r.get(r.matrix(memsys.CPU, core.Radix, 4, wl))
		if err != nil {
			return nil, err
		}
		ndpRes, err := r.get(r.matrix(memsys.NDP, core.Radix, 4, wl))
		if err != nil {
			return nil, err
		}
		cpu := 100 * cpuRes.TranslationOverhead()
		ndp := 100 * ndpRes.TranslationOverhead()
		cpuAll = append(cpuAll, cpu)
		ndpAll = append(ndpAll, ndp)
		t.AddRow(wl, stats.Pct(cpu), stats.Pct(ndp))
	}
	t.AddRow("mean", stats.Pct(stats.ArithMean(cpuAll)), stats.Pct(stats.ArithMean(ndpAll)))
	t.AddNote("paper: NDP %.1f%%, CPU %.2f%%", paperFig5NDPOverhead, paperFig5CPUOverhead)
	return t, nil
}

// Fig6 reproduces Figure 6: core-count scaling of (a) mean PTW latency
// and (b) translation overhead, averaged over the workloads.
func (r *Runner) Fig6() (*stats.Table, error) {
	coreCounts := []int{1, 4, 8}
	if err := r.prefetch(r.radixPairPlan(coreCounts...)); err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 6: scaling with core count (Radix, workload mean)",
		"cores", "cpu ptw", "ndp ptw", "cpu xlat%", "ndp xlat%")
	for _, c := range coreCounts {
		var cp, np, co, no []float64
		for _, wl := range r.WorkloadNames() {
			cpu, err := r.get(r.matrix(memsys.CPU, core.Radix, c, wl))
			if err != nil {
				return nil, err
			}
			ndp, err := r.get(r.matrix(memsys.NDP, core.Radix, c, wl))
			if err != nil {
				return nil, err
			}
			cp = append(cp, cpu.MeanPTWLatency())
			np = append(np, ndp.MeanPTWLatency())
			co = append(co, 100*cpu.TranslationOverhead())
			no = append(no, 100*ndp.TranslationOverhead())
		}
		t.AddRow(stats.I(uint64(c)), stats.F(stats.ArithMean(cp)), stats.F(stats.ArithMean(np)),
			stats.Pct(stats.ArithMean(co)), stats.Pct(stats.ArithMean(no)))
	}
	t.AddNote("paper (a): NDP PTW %.2f -> %.2f cycles from 1 to 8 cores; CPU stays flat", paperFig6NDP1, paperFig6NDP8)
	t.AddNote("paper (b): NDP overhead keeps growing with cores; CPU stays similar")
	return t, nil
}

// Fig7 reproduces Figure 7: L1 miss rates of normal data (ideal vs
// actual) and metadata, on the 4-core NDP system.
func (r *Runner) Fig7() (*stats.Table, error) {
	plan := sweep.Plan{
		Base:       r.base(),
		Systems:    []memsys.Kind{memsys.NDP},
		Mechanisms: []core.Mechanism{core.Radix, core.Ideal},
		Cores:      []int{4},
		Workloads:  r.WorkloadNames(),
	}
	if err := r.prefetch(plan); err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 7: L1 miss rates, 4-core NDP (%)",
		"workload", "data (ideal)", "data (actual)", "metadata")
	var id, ac, md []float64
	for _, wl := range r.WorkloadNames() {
		idealRes, err := r.get(r.matrix(memsys.NDP, core.Ideal, 4, wl))
		if err != nil {
			return nil, err
		}
		radix, err := r.get(r.matrix(memsys.NDP, core.Radix, 4, wl))
		if err != nil {
			return nil, err
		}
		ideal := 100 * idealRes.L1DataMissRate()
		actual := 100 * radix.L1DataMissRate()
		meta := 100 * radix.L1PTEMissRate()
		id, ac, md = append(id, ideal), append(ac, actual), append(md, meta)
		t.AddRow(wl, stats.Pct(ideal), stats.Pct(actual), stats.Pct(meta))
	}
	t.AddRow("mean", stats.Pct(stats.ArithMean(id)), stats.Pct(stats.ArithMean(ac)), stats.Pct(stats.ArithMean(md)))
	t.AddNote("paper: data %.2f%% ideal vs %.2f%% actual; metadata %.2f%%",
		paperDataMissIdeal, paperDataMissActual, paperPTEL1Miss)
	return t, nil
}

// Fig8 reproduces Figure 8: page-table occupancy per level, plus the
// flattened table's combined PL2/PL1 occupancy.
func (r *Runner) Fig8() (*stats.Table, error) {
	plan := sweep.Plan{
		Base:       r.base(),
		Systems:    []memsys.Kind{memsys.NDP},
		Mechanisms: []core.Mechanism{core.Radix, core.NDPage},
		Cores:      []int{4},
		Workloads:  r.WorkloadNames(),
	}
	if err := r.prefetch(plan); err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 8: page-table occupancy, 4-core (%)",
		"workload", "PL4", "PL3", "PL2", "PL1", "PL2/PL1 (flat)")
	for _, wl := range r.WorkloadNames() {
		radix, err := r.get(r.matrix(memsys.NDP, core.Radix, 4, wl))
		if err != nil {
			return nil, err
		}
		flat, err := r.get(r.matrix(memsys.NDP, core.NDPage, 4, wl))
		if err != nil {
			return nil, err
		}
		t.AddRow(wl,
			stats.Pct(100*radix.OccupancyRate(addr.PL4)),
			stats.Pct(100*radix.OccupancyRate(addr.PL3)),
			stats.Pct(100*radix.OccupancyRate(addr.PL2)),
			stats.Pct(100*radix.OccupancyRate(addr.PL1)),
			stats.Pct(100*flat.OccupancyRate(addr.L2L1)))
	}
	t.AddNote("paper: PL1 %.2f%%, PL2 %.2f%%, PL3 %.2f%%, PL4 %.2f%%",
		paperPL1Occ, paperPL2Occ, paperPL3Occ, paperPL4Occ)
	return t, nil
}

// Motivation reproduces the Section IV-A scalar observations on the
// 4-core NDP system.
func (r *Runner) Motivation() (*stats.Table, error) {
	if err := r.prefetch(r.radixPairPlan(4)); err != nil {
		return nil, err
	}
	var tlbMiss, pteShare, pteDRAMRatio stats.Mean
	for _, wl := range r.WorkloadNames() {
		ndp, err := r.get(r.matrix(memsys.NDP, core.Radix, 4, wl))
		if err != nil {
			return nil, err
		}
		cpu, err := r.get(r.matrix(memsys.CPU, core.Radix, 4, wl))
		if err != nil {
			return nil, err
		}
		tlbMiss.Add(100 * ndp.TLBMissRate())
		pteShare.Add(100 * ndp.PTEAccessShare())
		cpuPTE := cpu.DRAM[1] // access.PTE
		if cpuPTE > 0 {
			pteDRAMRatio.Add(float64(ndp.DRAM[1]) / float64(cpuPTE))
		}
	}
	t := stats.NewTable("Section IV-A: motivation scalars, 4-core NDP",
		"metric", "measured", "paper")
	t.AddRow("TLB miss rate", stats.Pct(tlbMiss.Value()), stats.Pct(paperTLBMissPct))
	t.AddRow("PTE share of memory accesses", stats.Pct(pteShare.Value()), stats.Pct(paperPTEShare))
	t.AddRow("NDP/CPU PTE DRAM traffic", stats.F(pteDRAMRatio.Value())+"x", "200.4x")
	return t, nil
}

// PWCRates reproduces the Section V-C page-walk-cache hit rates on the
// 4-core NDP Radix system.
func (r *Runner) PWCRates() (*stats.Table, error) {
	if err := r.prefetch(r.radixPairPlan(4)); err != nil {
		return nil, err
	}
	var pl4, pl3, pl2 stats.Mean
	for _, wl := range r.WorkloadNames() {
		res, err := r.get(r.matrix(memsys.NDP, core.Radix, 4, wl))
		if err != nil {
			return nil, err
		}
		pl4.Add(100 * res.PWCHitRate(addr.PL4))
		pl3.Add(100 * res.PWCHitRate(addr.PL3))
		pl2.Add(100 * res.PWCHitRate(addr.PL2))
	}
	t := stats.NewTable("Section V-C: PWC hit rates, 4-core NDP Radix",
		"level", "measured", "paper")
	t.AddRow("PL4", stats.Pct(pl4.Value()), stats.Pct(paperPWCPL4))
	t.AddRow("PL3", stats.Pct(pl3.Value()), stats.Pct(paperPWCPL3))
	t.AddRow("PL2", stats.Pct(pl2.Value()), stats.Pct(paperPWCPL2))
	return t, nil
}

// speedupFigure renders one of Figures 12/13/14.
func (r *Runner) speedupFigure(cores int, title string, notes func(*stats.Table, map[core.Mechanism]float64)) (*stats.Table, error) {
	if err := r.prefetch(r.speedupPlan(cores)); err != nil {
		return nil, err
	}
	mechs := []core.Mechanism{core.ECH, core.HugePage, core.NDPage, core.Ideal}
	t := stats.NewTable(title, "workload", "ECH", "HugePage", "NDPage", "Ideal")
	perMech := map[core.Mechanism][]float64{}
	for _, wl := range r.WorkloadNames() {
		baseRes, err := r.get(r.matrix(memsys.NDP, core.Radix, cores, wl))
		if err != nil {
			return nil, err
		}
		base := baseRes.Cycles
		row := []string{wl}
		for _, m := range mechs {
			res, err := r.get(r.matrix(memsys.NDP, m, cores, wl))
			if err != nil {
				return nil, err
			}
			s := float64(base) / float64(res.Cycles)
			perMech[m] = append(perMech[m], s)
			row = append(row, stats.F3(s))
		}
		t.AddRow(row...)
	}
	means := map[core.Mechanism]float64{}
	row := []string{"geomean"}
	for _, m := range mechs {
		means[m] = stats.GeoMean(perMech[m])
		row = append(row, stats.F3(means[m]))
	}
	t.AddRow(row...)
	notes(t, means)
	return t, nil
}

// Fig12 reproduces Figure 12: single-core NDP speedups over Radix.
func (r *Runner) Fig12() (*stats.Table, error) {
	return r.speedupFigure(1, "Figure 12: speedup over Radix, 1-core NDP",
		func(t *stats.Table, m map[core.Mechanism]float64) {
			t.AddNote("paper: NDPage %.3fx over Radix, %.3fx over ECH, %.3fx over HugePage",
				paperFig12NDPage, paperFig12OverECH, paperFig12OverHuge)
			t.AddNote("measured: NDPage/ECH = %.3f, NDPage/HugePage = %.3f",
				m[core.NDPage]/m[core.ECH], m[core.NDPage]/m[core.HugePage])
		})
}

// Fig13 reproduces Figure 13: 4-core NDP speedups over Radix.
func (r *Runner) Fig13() (*stats.Table, error) {
	return r.speedupFigure(4, "Figure 13: speedup over Radix, 4-core NDP",
		func(t *stats.Table, m map[core.Mechanism]float64) {
			t.AddNote("paper: NDPage %.3fx over ECH (and 1.426x over Radix)", paperFig13OverECH)
			t.AddNote("measured: NDPage/ECH = %.3f", m[core.NDPage]/m[core.ECH])
		})
}

// Fig14 reproduces Figure 14: 8-core NDP speedups over Radix.
func (r *Runner) Fig14() (*stats.Table, error) {
	return r.speedupFigure(8, "Figure 14: speedup over Radix, 8-core NDP",
		func(t *stats.Table, m map[core.Mechanism]float64) {
			t.AddNote("paper: NDPage %.3fx over ECH, %.3fx over HugePage; HugePage %.3fx of Radix",
				paperFig14OverECH, paperFig14OverHuge, paperFig14HugeSpeedup)
			t.AddNote("measured: NDPage/ECH = %.3f, NDPage/HugePage = %.3f, HugePage = %.3fx",
				m[core.NDPage]/m[core.ECH], m[core.NDPage]/m[core.HugePage], m[core.HugePage])
		})
}

// Ablation decomposes NDPage into its two mechanisms (DESIGN.md
// Section 5) on the 4-core NDP system.
func (r *Runner) Ablation() (*stats.Table, error) {
	plan := sweep.Plan{
		Base:       r.base(),
		Systems:    []memsys.Kind{memsys.NDP},
		Mechanisms: core.AblationMechanisms,
		Cores:      []int{4},
		Workloads:  r.WorkloadNames(),
	}
	if err := r.prefetch(plan); err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: NDPage decomposition, 4-core NDP (speedup over Radix)",
		"workload", "BypassOnly", "FlattenOnly", "NDPage")
	perMech := map[core.Mechanism][]float64{}
	for _, wl := range r.WorkloadNames() {
		baseRes, err := r.get(r.matrix(memsys.NDP, core.Radix, 4, wl))
		if err != nil {
			return nil, err
		}
		base := baseRes.Cycles
		row := []string{wl}
		for _, m := range []core.Mechanism{core.BypassOnly, core.FlattenOnly, core.NDPage} {
			res, err := r.get(r.matrix(memsys.NDP, m, 4, wl))
			if err != nil {
				return nil, err
			}
			s := float64(base) / float64(res.Cycles)
			perMech[m] = append(perMech[m], s)
			row = append(row, stats.F3(s))
		}
		t.AddRow(row...)
	}
	t.AddRow("geomean",
		stats.F3(stats.GeoMean(perMech[core.BypassOnly])),
		stats.F3(stats.GeoMean(perMech[core.FlattenOnly])),
		stats.F3(stats.GeoMean(perMech[core.NDPage])))
	t.AddNote("both mechanisms contribute; their combination is NDPage (paper Section V)")
	return t, nil
}

// MechanismComparison sweeps the full mechanism zoo on the 4-core NDP
// system: the paper's baselines plus the related-work mechanisms added
// behind the same Config axis — Victima (translation blocks in the data
// cache), NMT (near-memory identity segments), and PCAX (a PC-indexed
// translation table). Speedup over Radix per workload, geomean last.
// Each mechanism runs with its documented default knobs (DESIGN.md
// "Mechanism zoo").
func (r *Runner) MechanismComparison() (*stats.Table, error) {
	plan := sweep.Plan{
		Base:       r.base(),
		Systems:    []memsys.Kind{memsys.NDP},
		Mechanisms: core.ComparisonMechanisms,
		Cores:      []int{4},
		Workloads:  r.WorkloadNames(),
	}
	if err := r.prefetch(plan); err != nil {
		return nil, err
	}
	mechs := []core.Mechanism{core.ECH, core.HugePage, core.Victima, core.NMT, core.PCAX, core.NDPage, core.Ideal}
	t := stats.NewTable("Mechanism comparison: speedup over Radix, 4-core NDP",
		"workload", "ECH", "HugePage", "Victima", "NMT", "PCAX", "NDPage", "Ideal")
	perMech := map[core.Mechanism][]float64{}
	for _, wl := range r.WorkloadNames() {
		baseRes, err := r.get(r.matrix(memsys.NDP, core.Radix, 4, wl))
		if err != nil {
			return nil, err
		}
		base := baseRes.Cycles
		row := []string{wl}
		for _, m := range mechs {
			res, err := r.get(r.matrix(memsys.NDP, m, 4, wl))
			if err != nil {
				return nil, err
			}
			s := float64(base) / float64(res.Cycles)
			perMech[m] = append(perMech[m], s)
			row = append(row, stats.F3(s))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for _, m := range mechs {
		row = append(row, stats.F3(stats.GeoMean(perMech[m])))
	}
	t.AddRow(row...)
	t.AddNote("Victima: Kanellopoulos et al. (MICRO 2023); NMT: Picorel et al. (MEMSYS 2017); PCAX: PC-indexed translation")
	t.AddNote("the NDP system has no shared LLC, so Victima's translation blocks live in the tiny L1D and NMT depends on eager population")
	return t, nil
}

// All runs every experiment and returns the tables in report order,
// stopping at the first failing simulation.
func (r *Runner) All() ([]*stats.Table, error) {
	figs := []func() (*stats.Table, error){
		r.Fig4, r.Fig5, r.Fig6, r.Fig7, r.Fig8,
		r.Motivation, r.PWCRates,
		r.Fig12, r.Fig13, r.Fig14, r.Ablation,
	}
	var out []*stats.Table
	for _, f := range figs {
		t, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// TableII renders the workload registry: the Table II benchmarks plus
// any workloads registered in this process (workload.Register).
func TableII() *stats.Table {
	t := stats.NewTable("Table II: evaluated workloads",
		"workload", "suite", "description", "paper dataset")
	for _, name := range append(workload.Names(), workload.Registered()...) {
		s := workload.MustLookup(name)
		t.AddRow(s.Name, s.Suite, s.Description, s.PaperDataset)
	}
	return t
}
