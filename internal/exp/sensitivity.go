package exp

import (
	"fmt"

	"ndpage/internal/core"
	"ndpage/internal/memsys"
	"ndpage/internal/sim"
	"ndpage/internal/stats"
	"ndpage/internal/sweep"
)

// Sensitivity studies are sweep plans like the figure matrices: the
// knob axis is a Variant list, so every (workload x knob) run executes
// on the worker pool and lands in the shared store — persistent caching
// and resumption apply to the sensitivity sweeps exactly as to the
// figures (the old runCustom path ran them uncached and sequentially).

// knobPlan builds the cross product of the runner's workloads with the
// given knob variants on one (system, mechanisms, cores) slice.
func (r *Runner) knobPlan(sys memsys.Kind, mechs []core.Mechanism, cores int, variants []sweep.Variant) sweep.Plan {
	return sweep.Plan{
		Base:       r.base(),
		Systems:    []memsys.Kind{sys},
		Mechanisms: mechs,
		Cores:      []int{cores},
		Workloads:  r.WorkloadNames(),
		Variants:   variants,
	}
}

// cell returns the result for one (workload, mechanism) cell with the
// variant's knobs applied.
func (r *Runner) cell(sys memsys.Kind, mech core.Mechanism, cores int, wl string, v sweep.Variant) (*sim.Result, error) {
	cfg := r.matrix(sys, mech, cores, wl)
	if v.Mutate != nil {
		v.Mutate(&cfg)
	}
	return r.get(cfg)
}

// PWCSensitivity measures DESIGN.md ablation 2: walks with and without
// page-walk caches, Radix vs NDPage, on the 4-core NDP system.
func (r *Runner) PWCSensitivity() (*stats.Table, error) {
	withPWC := sweep.Variant{Name: "pwc"}
	withoutPWC := sweep.Variant{Name: "nopwc", Mutate: func(c *sim.Config) { c.DisablePWC = true }}
	mechs := []core.Mechanism{core.Radix, core.NDPage}
	plan := r.knobPlan(memsys.NDP, mechs, 4, []sweep.Variant{withPWC, withoutPWC})
	if err := r.prefetch(plan); err != nil {
		return nil, err
	}
	t := stats.NewTable("Sensitivity: page-walk caches (4-core NDP)",
		"workload", "mech", "ptw with pwc", "ptw without", "slowdown")
	for _, wl := range r.WorkloadNames() {
		for _, mech := range mechs {
			with, err := r.cell(memsys.NDP, mech, 4, wl, withPWC)
			if err != nil {
				return nil, err
			}
			without, err := r.cell(memsys.NDP, mech, 4, wl, withoutPWC)
			if err != nil {
				return nil, err
			}
			t.AddRow(wl, mech.String(),
				stats.F(with.MeanPTWLatency()),
				stats.F(without.MeanPTWLatency()),
				stats.F(float64(without.Cycles)/float64(with.Cycles)))
		}
	}
	t.AddNote("PWCs absorb the PL4/PL3 accesses; removing them lengthens every walk")
	return t, nil
}

// HBMChannelSensitivity measures DESIGN.md ablation 3: the Figure 6a
// queueing driver as a function of the NDP vault partition width.
func (r *Runner) HBMChannelSensitivity() (*stats.Table, error) {
	channels := []int{1, 2, 4, 8}
	variants := make([]sweep.Variant, len(channels))
	for i, ch := range channels {
		ch := ch
		variants[i] = sweep.Variant{
			Name:   fmt.Sprintf("hbm=%d", ch),
			Mutate: func(c *sim.Config) { c.HBMChannels = ch },
		}
	}
	plan := r.knobPlan(memsys.NDP, []core.Mechanism{core.Radix}, 8, variants)
	if err := r.prefetch(plan); err != nil {
		return nil, err
	}
	t := stats.NewTable("Sensitivity: HBM channels visible to the NDP cluster (8-core Radix)",
		"workload", "1ch ptw", "2ch ptw", "4ch ptw", "8ch ptw")
	for _, wl := range r.WorkloadNames() {
		row := []string{wl}
		for _, v := range variants {
			res, err := r.cell(memsys.NDP, core.Radix, 8, wl, v)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.F(res.MeanPTWLatency()))
		}
		t.AddRow(row...)
	}
	t.AddNote("narrower partitions queue concurrent walks; 2 channels is the default")
	return t, nil
}

// WalkerWidthSensitivity sweeps the walker's concurrent-walk slots
// (Table-I-style knob) with the cluster-shared walker, on the 4-core NDP
// Radix system: every core's misses funnel through one walk unit, so
// width 1 serializes all concurrent walks, wider walkers overlap them,
// and duplicate walks for one page coalesce in the MSHRs regardless of
// width.
func (r *Runner) WalkerWidthSensitivity() (*stats.Table, error) {
	widths := []int{1, 2, 4, 8}
	variants := make([]sweep.Variant, len(widths))
	for i, w := range widths {
		w := w
		variants[i] = sweep.Variant{
			Name:   fmt.Sprintf("w=%d", w),
			Mutate: func(c *sim.Config) { c.SharedWalker = true; c.WalkerWidth = w },
		}
	}
	plan := r.knobPlan(memsys.NDP, []core.Mechanism{core.Radix}, 4, variants)
	if err := r.prefetch(plan); err != nil {
		return nil, err
	}
	t := stats.NewTable("Sensitivity: shared-walker width (4-core NDP Radix)",
		"workload", "w=1 ptw", "w=2 ptw", "w=4 ptw", "w=8 ptw", "mshr hit% (w=4)", "overlap% (w=4)", "queue/walk (w=1)")
	for _, wl := range r.WorkloadNames() {
		row := []string{wl}
		var at4, at1 *sim.Result
		for i, v := range variants {
			res, err := r.cell(memsys.NDP, core.Radix, 4, wl, v)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.F(res.MeanPTWLatency()))
			switch widths[i] {
			case 1:
				at1 = res
			case 4:
				at4 = res
			}
		}
		row = append(row,
			stats.Pct(100*at4.MSHRHitRate()),
			stats.Pct(100*at4.WalkOverlapRate()),
			stats.F(at1.MeanWalkQueueCycles()))
		t.AddRow(row...)
	}
	t.AddNote("one shared walker serves all 4 cores: width 1 queues every concurrent walk,")
	t.AddNote("width >= cores removes slot contention; MSHR hits coalesce duplicate walks")
	return t, nil
}

// MLPSensitivity sweeps the per-core memory-level-parallelism window on
// the 4-core NDP Radix system with a cluster-shared width-2 walker:
// MLP=1 is the blocking baseline, deeper windows let each core keep
// several translations and data accesses in flight, so walks overlap,
// contend for the walker's two slots, and duplicate walks coalesce in
// the MSHRs — the engine-scheduled regime the NDPage paper's many-core
// motivation lives in.
func (r *Runner) MLPSensitivity() (*stats.Table, error) {
	mlps := []int{1, 2, 4, 8}
	variants := make([]sweep.Variant, len(mlps))
	for i, mlp := range mlps {
		mlp := mlp
		variants[i] = sweep.Variant{
			Name: fmt.Sprintf("mlp=%d", mlp),
			Mutate: func(c *sim.Config) {
				c.SharedWalker = true
				c.WalkerWidth = 2
				c.MLP = mlp
			},
		}
	}
	plan := r.knobPlan(memsys.NDP, []core.Mechanism{core.Radix}, 4, variants)
	if err := r.prefetch(plan); err != nil {
		return nil, err
	}
	t := stats.NewTable("Sensitivity: core MLP window (4-core NDP Radix, shared width-2 walker)",
		"workload", "mlp=1 cycles", "mlp=2", "mlp=4", "mlp=8",
		"speedup(8)", "in-flight (8)", "overlap% (8)", "mshr% (8)", "queue/walk (8)")
	for _, wl := range r.WorkloadNames() {
		row := []string{wl}
		var at1, at8 *sim.Result
		for i, v := range variants {
			res, err := r.cell(memsys.NDP, core.Radix, 4, wl, v)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2fM", float64(res.Cycles)/1e6))
			switch mlps[i] {
			case 1:
				at1 = res
			case 8:
				at8 = res
			}
		}
		row = append(row,
			stats.F(float64(at1.Cycles)/float64(at8.Cycles)),
			stats.F(at8.MeanInFlight()),
			stats.Pct(100*at8.WalkOverlapRate()),
			stats.Pct(100*at8.MSHRHitRate()),
			stats.F(at8.MeanWalkQueueCycles()))
		t.AddRow(row...)
	}
	t.AddNote("deeper windows overlap translation+data latency until the two walk slots and")
	t.AddNote("the vault channels saturate; the mshr column counts duplicate walks absorbed in flight")
	return t, nil
}

// PopulationSensitivity measures DESIGN.md ablation 4: eager versus full
// demand population, exposing fault costs per mechanism (2-core NDP keeps
// the demand runs affordable).
func (r *Runner) PopulationSensitivity() (*stats.Table, error) {
	eagerV := sweep.Variant{Name: "eager"}
	demandV := sweep.Variant{Name: "demand", Mutate: func(c *sim.Config) { c.DemandPaging = true }}
	mechs := []core.Mechanism{core.Radix, core.HugePage}
	plan := r.knobPlan(memsys.NDP, mechs, 2, []sweep.Variant{eagerV, demandV})
	if err := r.prefetch(plan); err != nil {
		return nil, err
	}
	t := stats.NewTable("Sensitivity: eager vs demand population (2-core NDP)",
		"workload", "mech", "eager cycles", "demand cycles", "demand faults")
	for _, wl := range r.WorkloadNames() {
		for _, mech := range mechs {
			eager, err := r.cell(memsys.NDP, mech, 2, wl, eagerV)
			if err != nil {
				return nil, err
			}
			demand, err := r.cell(memsys.NDP, mech, 2, wl, demandV)
			if err != nil {
				return nil, err
			}
			t.AddRow(wl, mech.String(),
				fmt.Sprintf("%.1fM", float64(eager.Cycles)/1e6),
				fmt.Sprintf("%.1fM", float64(demand.Cycles)/1e6),
				stats.I(demand.Faults4K+demand.Faults2M))
		}
	}
	t.AddNote("demand population charges every first touch inside the window;")
	t.AddNote("the paper's measurement windows (500M instr) amortize this, short windows cannot")
	return t, nil
}

// OversubscriptionStudy models datasets larger than memory (the paper's
// GenomicsBench is 33 GB against 16 GB of DRAM): a resident-memory cap
// forces FIFO chunk reclaim, so cold data re-faults inside the window.
// This is the regime where transparent huge pages collapse — every
// re-fault zero-fills 2 MB and stalls on compaction — and a key reason
// the paper's 8-core Huge Page bar drops below Radix.
func (r *Runner) OversubscriptionStudy() (*stats.Table, error) {
	const wl = "gen"
	fitsV := sweep.Variant{Name: "fits"}
	overV := sweep.Variant{Name: "oversubscribed", Mutate: func(c *sim.Config) {
		c.ResidentLimitBytes = 3 << 30
		c.FootprintBytes = 6 << 30
	}}
	mechs := []core.Mechanism{core.Radix, core.HugePage, core.NDPage}
	plan := r.knobPlan(memsys.NDP, mechs, 2, []sweep.Variant{fitsV, overV})
	plan.Workloads = []string{wl} // fixed benchmark regardless of the active set
	if err := r.prefetch(plan); err != nil {
		return nil, err
	}
	t := stats.NewTable("Extension: dataset larger than memory (2-core NDP, gen)",
		"mech", "fits (cycles)", "oversubscribed", "slowdown", "reclaims", "faults")
	for _, mech := range mechs {
		fits, err := r.cell(memsys.NDP, mech, 2, wl, fitsV)
		if err != nil {
			return nil, err
		}
		over, err := r.cell(memsys.NDP, mech, 2, wl, overV)
		if err != nil {
			return nil, err
		}
		t.AddRow(mech.String(),
			fmt.Sprintf("%.1fM", float64(fits.Cycles)/1e6),
			fmt.Sprintf("%.1fM", float64(over.Cycles)/1e6),
			stats.F(float64(over.Cycles)/float64(fits.Cycles)),
			stats.I(over.ReclaimedChunks),
			stats.I(over.Faults4K+over.Faults2M))
	}
	t.AddNote("reclaim makes huge pages pay 2MB zero-fill + compaction per re-fault;")
	t.AddNote("4KB mechanisms re-fault only the touched pages")
	return t, nil
}
