package exp

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"ndpage/internal/core"
	"ndpage/internal/memsys"
	"ndpage/internal/sim"
	"ndpage/internal/stats"
	"ndpage/internal/sweep"
)

// quickRunner keeps experiment tests fast: tiny windows, two workloads,
// small footprint.
func quickRunner() *Runner {
	return &Runner{
		Instructions: 12_000,
		Warmup:       3_000,
		Footprint:    256 << 20,
		Workloads:    []string{"rnd", "pr"},
	}
}

// table runs one figure method and fails the test on error.
func table(t *testing.T, f func() (*stats.Table, error)) *stats.Table {
	t.Helper()
	tab, err := f()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestGetMemoizes(t *testing.T) {
	r := quickRunner()
	cfg := r.matrix(memsys.NDP, core.Radix, 1, "rnd")
	a, err := r.get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second get did not return the memoized result")
	}
}

func TestGetPropagatesErrors(t *testing.T) {
	r := quickRunner()
	cfg := r.matrix(memsys.NDP, core.Radix, 1, "no-such-workload")
	if _, err := r.get(cfg); err == nil {
		t.Fatal("get accepted an unknown workload")
	}
	// The failure is reported again without re-running, and prefetch
	// surfaces it too.
	if _, err := r.get(cfg); err == nil {
		t.Fatal("repeated get lost the error")
	}
	plan := sweep.Plan{Base: r.scale(cfg)}
	if err := r.prefetch(plan); err == nil {
		t.Fatal("prefetch swallowed the error")
	}
}

func TestPrefetchParallelMatchesSequential(t *testing.T) {
	seq := quickRunner()
	c1 := seq.matrix(memsys.NDP, core.Radix, 1, "rnd")
	c2 := seq.matrix(memsys.NDP, core.NDPage, 1, "rnd")
	a1, err1 := seq.get(c1)
	a2, err2 := seq.get(c2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}

	par := quickRunner()
	par.Parallel = 2
	plan := sweep.Plan{
		Base:       par.base(),
		Systems:    []memsys.Kind{memsys.NDP},
		Mechanisms: []core.Mechanism{core.Radix, core.NDPage, core.Radix}, // duplicate must be deduplicated
		Cores:      []int{1},
		Workloads:  []string{"rnd"},
	}
	if err := par.prefetch(plan); err != nil {
		t.Fatal(err)
	}
	b1, err1 := par.get(c1)
	b2, err2 := par.get(c2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a1.Cycles != b1.Cycles || a2.Cycles != b2.Cycles {
		t.Errorf("parallel prefetch changed results: %d/%d vs %d/%d",
			a1.Cycles, a2.Cycles, b1.Cycles, b2.Cycles)
	}
}

// countingStore wraps a Store and counts writes: each Put is one
// simulation that actually ran.
type countingStore struct {
	sweep.Store
	puts atomic.Int64
}

func (s *countingStore) Put(key string, res *sim.Result) error {
	s.puts.Add(1)
	return s.Store.Put(key, res)
}

// TestFiguresShareRuns: Figure 4 and Figure 5 read the same matrix; the
// second figure must perform zero new simulations.
func TestFiguresShareRuns(t *testing.T) {
	store := &countingStore{Store: sweep.NewMemStore()}
	r := quickRunner()
	r.Store = store
	if _, err := r.Fig4(); err != nil {
		t.Fatal(err)
	}
	after4 := store.puts.Load()
	if after4 == 0 {
		t.Fatal("Fig4 simulated nothing")
	}
	if _, err := r.Fig5(); err != nil {
		t.Fatal(err)
	}
	if store.puts.Load() != after4 {
		t.Errorf("Fig5 re-simulated: %d puts after Fig4, %d after Fig5",
			after4, store.puts.Load())
	}
}

// TestPersistentStoreSkipsSimulations: a second Runner over the same
// store regenerates a figure without running anything — the cached
// figure regeneration path ndpexp -cache uses.
func TestPersistentStoreSkipsSimulations(t *testing.T) {
	mem := sweep.NewMemStore()
	first := quickRunner()
	first.Store = mem
	tab1, err := first.Fig4()
	if err != nil {
		t.Fatal(err)
	}

	store := &countingStore{Store: mem}
	second := quickRunner()
	second.Store = store
	tab2, err := second.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if store.puts.Load() != 0 {
		t.Errorf("warm regeneration simulated %d runs, want 0", store.puts.Load())
	}
	if tab1.String() != tab2.String() {
		t.Errorf("cached regeneration changed the table:\n%s\nvs\n%s", tab1, tab2)
	}
}

// TestProgressReportsFailures: every sweep event renders a line —
// including failures, which the old Runner completed silently on.
func TestProgressReportsFailures(t *testing.T) {
	var buf strings.Builder
	r := quickRunner()
	r.Progress = &buf
	cfg := r.matrix(memsys.NDP, core.Radix, 4, "rnd").Normalize()
	r.progress(sweep.Event{Config: cfg, Err: fmt.Errorf("walker exploded")})
	r.progress(sweep.Event{Config: cfg, Cycles: 2_000_000})
	r.progress(sweep.Event{Config: cfg, Cached: true, Cycles: 2_000_000})
	out := buf.String()
	for _, want := range []string{"fail ", "walker exploded", "done ", "cached ", "ndp/Radix/4c/rnd"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
}

func TestFig4ShowsNDPPenalty(t *testing.T) {
	tab := table(t, quickRunner().Fig4)
	if len(tab.Rows) != 3 { // 2 workloads + mean
		t.Fatalf("Fig4 rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.String(), "paper") {
		t.Error("missing paper comparison note")
	}
}

func TestFig6CoversCoreCounts(t *testing.T) {
	r := quickRunner()
	tab := table(t, r.Fig6)
	if len(tab.Rows) != 3 {
		t.Fatalf("Fig6 rows = %d, want 3 core counts", len(tab.Rows))
	}
	if tab.Rows[0][0] != "1" || tab.Rows[2][0] != "8" {
		t.Errorf("core counts wrong: %v", tab.Rows)
	}
}

func TestFig12SpeedupsSane(t *testing.T) {
	r := quickRunner()
	tab := table(t, r.Fig12)
	// geomean row: Ideal column must show the largest speedup and all
	// speedups must be positive.
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "geomean" {
		t.Fatalf("last row = %v", last)
	}
	var vals []float64
	for _, cell := range last[1:] {
		var v float64
		if _, err := sscan(cell, &v); err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		if v <= 0 {
			t.Fatalf("non-positive speedup %v", v)
		}
		vals = append(vals, v)
	}
	// Columns: ECH, HugePage, NDPage, Ideal. ECH and NDPage differ from
	// Ideal only in translation cost, so they are bounded by it.
	// HugePage additionally changes *data* placement (2 MB physical
	// contiguity improves row-buffer locality), so it may exceed Ideal
	// at small scales and is not asserted here.
	ech, ndpage, ideal := vals[0], vals[2], vals[3]
	if ech > ideal || ndpage > ideal {
		t.Errorf("translation-only mechanisms exceed Ideal: ECH %.3f, NDPage %.3f, Ideal %.3f",
			ech, ndpage, ideal)
	}
}

func TestAblationTable(t *testing.T) {
	r := quickRunner()
	tab := table(t, r.Ablation)
	if len(tab.Columns) != 4 {
		t.Fatalf("ablation columns = %v", tab.Columns)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("ablation rows = %d", len(tab.Rows))
	}
}

func TestTableII(t *testing.T) {
	tab := TableII()
	if len(tab.Rows) != 11 {
		t.Fatalf("Table II rows = %d, want 11", len(tab.Rows))
	}
	s := tab.String()
	for _, suite := range []string{"GraphBIG", "XSBench", "GUPS", "DLRM", "GenomicsBench"} {
		if !strings.Contains(s, suite) {
			t.Errorf("Table II missing suite %s", suite)
		}
	}
}

// sscan parses a float cell.
func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestPWCSensitivity(t *testing.T) {
	r := quickRunner()
	r.Workloads = []string{"rnd"}
	tab := table(t, r.PWCSensitivity)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Removing PWCs must not speed anything up.
	for _, row := range tab.Rows {
		var with, without float64
		fmt.Sscan(row[2], &with)
		fmt.Sscan(row[3], &without)
		if without < with {
			t.Errorf("%s/%s: PTW without PWC (%v) < with (%v)", row[0], row[1], without, with)
		}
	}
}

func TestHBMChannelSensitivity(t *testing.T) {
	r := quickRunner()
	r.Workloads = []string{"rnd"}
	tab := table(t, r.HBMChannelSensitivity)
	row := tab.Rows[0]
	var ch1, ch8 float64
	fmt.Sscan(row[1], &ch1)
	fmt.Sscan(row[4], &ch8)
	if ch1 <= ch8 {
		t.Errorf("1-channel PTW (%v) should exceed 8-channel (%v)", ch1, ch8)
	}
}

func TestWalkerWidthSensitivity(t *testing.T) {
	r := quickRunner()
	r.Workloads = []string{"rnd"}
	tab := table(t, r.WalkerWidthSensitivity)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	row := tab.Rows[0]
	var w1, w8 float64
	fmt.Sscan(row[1], &w1)
	fmt.Sscan(row[4], &w8)
	// Funneling 4 cores' walks through one slot must not be faster than
	// giving them 8 slots.
	if w1 < w8 {
		t.Errorf("width-1 shared PTW (%v) below width-8 (%v)", w1, w8)
	}
	var queue float64
	fmt.Sscan(row[7], &queue)
	if queue <= 0 {
		t.Errorf("width-1 shared walker shows no slot queueing (%v cycles/walk)", queue)
	}
}

func TestMLPSensitivity(t *testing.T) {
	r := quickRunner()
	r.Workloads = []string{"rnd"}
	tab := table(t, r.MLPSensitivity)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	row := tab.Rows[0]
	var speedup, inflight float64
	fmt.Sscan(row[5], &speedup)
	fmt.Sscan(row[6], &inflight)
	// Overlapping GUPS-style accesses must not slow the run down, and
	// the MLP=8 window must actually hold more than one op on average.
	if speedup < 1 {
		t.Errorf("MLP=8 slower than blocking (speedup %v)", speedup)
	}
	if inflight <= 1 {
		t.Errorf("MLP=8 mean in-flight %v, want > 1", inflight)
	}
}

func TestPopulationSensitivity(t *testing.T) {
	r := quickRunner()
	r.Workloads = []string{"rnd"}
	tab := table(t, r.PopulationSensitivity)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The Radix row must fault in-window (4 KB pages trickle in far
	// longer than 2 MB chunks, which warmup can cover at test scale).
	var faults uint64
	fmt.Sscan(tab.Rows[0][4], &faults)
	if faults == 0 {
		t.Errorf("%s/%s: demand population produced no faults", tab.Rows[0][0], tab.Rows[0][1])
	}
}

func TestOversubscriptionStudy(t *testing.T) {
	r := quickRunner()
	tab := table(t, r.OversubscriptionStudy)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var slowdown float64
		fmt.Sscan(row[3], &slowdown)
		if slowdown < 1 {
			t.Errorf("%s: oversubscription sped things up (%.3f)", row[0], slowdown)
		}
		var reclaims uint64
		fmt.Sscan(row[4], &reclaims)
		if reclaims == 0 {
			t.Errorf("%s: no reclaims under oversubscription", row[0])
		}
	}
}
