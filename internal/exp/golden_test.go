package exp

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ndpage/internal/stats"
)

var updateGoldens = flag.Bool("update", false, "rewrite the figure-table goldens under testdata/")

// goldenRunner pins the exact reduced scale the committed goldens were
// generated at. Everything that feeds the figures is deterministic at a
// fixed scale, so the CSV bytes are too.
func goldenRunner() *Runner {
	return &Runner{
		Instructions: 12_000,
		Warmup:       3_000,
		Footprint:    256 << 20,
		Workloads:    []string{"rnd", "pr"},
	}
}

// TestFigureTablesMatchGoldens regenerates every paper figure at the
// pinned reduced scale and diffs the CSV against the committed golden.
// The figures run only the paper's mechanism set — the related-work
// mechanisms (Victima, NMT, PCAX) stay disabled — so this is the
// regression gate that adding a mechanism must not move a single byte
// of the existing evaluation. Regenerate deliberately with
//
//	go test ./internal/exp -run FigureTables -update
func TestFigureTablesMatchGoldens(t *testing.T) {
	r := goldenRunner()
	figures := []struct {
		name string
		run  func() (*stats.Table, error)
	}{
		{"fig4", r.Fig4}, {"fig5", r.Fig5}, {"fig6", r.Fig6},
		{"fig7", r.Fig7}, {"fig8", r.Fig8},
		{"motivation", r.Motivation}, {"pwc", r.PWCRates},
		{"fig12", r.Fig12}, {"fig13", r.Fig13}, {"fig14", r.Fig14},
		{"ablation", r.Ablation},
	}
	for _, f := range figures {
		t.Run(f.name, func(t *testing.T) {
			tab, err := f.run()
			if err != nil {
				t.Fatal(err)
			}
			got := tab.CSV()
			path := filepath.Join("testdata", f.name+".golden.csv")
			if *updateGoldens {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden for %s (generate with -update): %v", f.name, err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from its golden (regenerate with -update if deliberate):\ngot:\n%s\nwant:\n%s",
					f.name, got, want)
			}
		})
	}
}

// TestMechanismComparisonTable sanity-checks the new comparison figure
// itself (not golden-pinned: it exists to explore the new mechanisms,
// and its columns will move as they are tuned).
func TestMechanismComparisonTable(t *testing.T) {
	r := quickRunner()
	tab := table(t, r.MechanismComparison)
	if len(tab.Rows) != 3 { // 2 workloads + geomean
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "geomean" {
		t.Fatalf("last row = %v", last)
	}
	// Columns: workload, ECH, HugePage, Victima, NMT, PCAX, NDPage, Ideal.
	if len(tab.Columns) != 8 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	for _, row := range tab.Rows {
		for i, cell := range row[1:] {
			var v float64
			if _, err := fmt.Sscan(cell, &v); err != nil {
				t.Fatalf("%s/%s: bad cell %q", row[0], tab.Columns[i+1], cell)
			}
			if v <= 0 {
				t.Errorf("%s/%s: non-positive speedup %v", row[0], tab.Columns[i+1], v)
			}
		}
	}
}
