// Package exp regenerates every table and figure of the paper's
// evaluation (DESIGN.md Section 4): the motivation studies (Figures 4-8,
// the Section IV-A scalars, the Section V-C PWC rates), the headline
// speedup figures (12, 13, 14), the NDPage ablation called out in
// DESIGN.md, and the sensitivity sweeps.
//
// The figure methods are thin table-builders over the sweep subsystem
// (internal/sweep): each figure declares its configuration cross product
// as a sweep.Plan, prefetches it through a shared sweep.Runner — which
// deduplicates runs figures share (e.g. Figure 4 and Figure 6) by
// content hash, runs misses on a worker pool, and memoizes failures —
// and then reads the per-cell results back from the Runner's Store.
// Pointing Store at a sweep.DirStore makes every figure incremental
// across processes: interrupted or repeated regenerations skip runs
// whose results are already on disk. Simulation failures propagate as
// errors from every figure method.
package exp

import (
	"context"
	"fmt"
	"io"
	"sync"

	"ndpage/internal/core"
	"ndpage/internal/memsys"
	"ndpage/internal/sim"
	"ndpage/internal/sweep"
	"ndpage/internal/workload"
)

// Runner executes and memoizes the evaluation's simulations.
type Runner struct {
	// Instructions and Warmup override the per-core op budgets (0 =
	// simulator defaults). Experiments and quick benches share all other
	// configuration with sim.Config defaults.
	Instructions uint64
	Warmup       uint64
	// Footprint overrides the dataset size (0 = core-scaled default).
	Footprint uint64
	// Workloads restricts the benchmark set (nil = all of Table II).
	Workloads []string
	// Parallel bounds concurrent simulations (0 = min(4, GOMAXPROCS)).
	Parallel int
	// Shards, when positive, runs figure prefetches through the sharded
	// replication runner (sweep.Runner.RunSharded): each unique
	// configuration is pinned to one of Shards goroutines by content
	// key, so a figure's replications spread across cores with a
	// schedule that is a pure function of the configuration set.
	Shards int
	// Progress, when non-nil, receives one line per run: completed,
	// served from a persistent cache, or failed.
	Progress io.Writer
	// Store caches results across figures — and, for a sweep.DirStore,
	// across processes (cached figure regeneration). Nil selects a
	// per-Runner in-memory store.
	Store sweep.Store
	// Context cancels in-flight sweeps (nil = context.Background()).
	Context context.Context

	once  sync.Once
	sweep *sweep.Runner
}

// runner lazily builds the shared sweep runner. A persistent Store is
// wrapped in a read-through memo so the per-cell gets that follow each
// figure's prefetch hit process memory instead of re-reading and
// re-parsing the on-disk JSON for every table cell. A Store that can
// also compute (sweep.Simulator — a RemoteStore offloading cold runs
// to an ndpserve instance) keeps that role through the wrapper.
func (r *Runner) runner() *sweep.Runner {
	r.once.Do(func() {
		store := r.Store
		if store != nil {
			store = &memoStore{mem: sweep.NewMemStore(), back: store}
		}
		r.sweep = &sweep.Runner{
			Store:    store,
			Parallel: r.Parallel,
			Progress: r.progress,
		}
		if s, ok := r.Store.(sweep.Simulator); ok {
			r.sweep.Simulate = s.Simulate
		}
	})
	return r.sweep
}

// memoStore layers an in-process map over a persistent backing store:
// reads populate the map, writes go to both. Safe for concurrent use
// (both layers are).
type memoStore struct {
	mem  *sweep.MemStore
	back sweep.Store
}

func (s *memoStore) Get(key string) (*sim.Result, bool, error) {
	if res, ok, _ := s.mem.Get(key); ok {
		return res, true, nil
	}
	res, ok, err := s.back.Get(key)
	if err != nil || !ok {
		return nil, false, err
	}
	s.mem.Put(key, res)
	return res, true, nil
}

func (s *memoStore) Put(key string, res *sim.Result) error {
	s.mem.Put(key, res)
	return s.back.Put(key, res)
}

// progress renders sweep events as lines: fresh runs, cache hits, and —
// crucially — failures, so a sweep that loses runs says so instead of
// completing silently thinner.
func (r *Runner) progress(e sweep.Event) {
	if r.Progress == nil {
		return
	}
	switch {
	case e.Err != nil:
		fmt.Fprintf(r.Progress, "fail %s: %v\n", e.Desc(), e.Err)
	case e.Cached:
		fmt.Fprintf(r.Progress, "cached %s (%.2fM cycles)\n", e.Desc(), float64(e.Cycles)/1e6)
	default:
		fmt.Fprintf(r.Progress, "done %s (%.2fM cycles)\n", e.Desc(), float64(e.Cycles)/1e6)
	}
}

// ctx returns the cancellation context.
func (r *Runner) ctx() context.Context {
	if r.Context != nil {
		return r.Context
	}
	return context.Background()
}

// WorkloadNames returns the active benchmark set in paper order.
func (r *Runner) WorkloadNames() []string {
	if r.Workloads != nil {
		return r.Workloads
	}
	return workload.Names()
}

// base is the configuration every evaluation run starts from: the
// Runner's budget and footprint overrides.
func (r *Runner) base() sim.Config {
	return sim.Config{
		Instructions:   r.Instructions,
		Warmup:         r.Warmup,
		FootprintBytes: r.Footprint,
	}
}

// scale fills cfg's zero budget fields from the Runner's overrides, so
// sensitivity configurations written against simulator defaults inherit
// the evaluation's scale.
func (r *Runner) scale(cfg sim.Config) sim.Config {
	if cfg.Instructions == 0 {
		cfg.Instructions = r.Instructions
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = r.Warmup
	}
	if cfg.FootprintBytes == 0 {
		cfg.FootprintBytes = r.Footprint
	}
	return cfg
}

// matrix builds the evaluation-matrix configuration for one cell.
func (r *Runner) matrix(sys memsys.Kind, mech core.Mechanism, cores int, wl string) sim.Config {
	cfg := r.base()
	cfg.System = sys
	cfg.Mechanism = mech
	cfg.Cores = cores
	cfg.Workload = wl
	return cfg
}

// get returns the result for cfg, simulating it if no store or memo
// holds it yet. Figure methods call prefetch first so gets are cache
// hits; a direct get still works (one synchronous run).
func (r *Runner) get(cfg sim.Config) (*sim.Result, error) {
	res, err := r.runner().RunOne(r.ctx(), r.scale(cfg))
	if err != nil {
		return nil, fmt.Errorf("exp: %w", err)
	}
	return res, nil
}

// prefetch runs every configuration of the plan through the worker
// pool (deduplicated against the store) and returns the first error.
// With Shards set, the plan instead runs through the sharded
// replication runner: configurations pin to shard goroutines by content
// key, so the execution schedule is reproducible run to run.
func (r *Runner) prefetch(p sweep.Plan) error {
	p.Base = r.scale(p.Base)
	if r.Shards > 0 {
		cfgs, err := p.Configs()
		if err != nil {
			return fmt.Errorf("exp: %w", err)
		}
		if _, err := r.runner().RunSharded(r.ctx(), cfgs, r.Shards); err != nil {
			return fmt.Errorf("exp: %w", err)
		}
		return nil
	}
	if _, err := r.runner().RunPlan(r.ctx(), p); err != nil {
		return fmt.Errorf("exp: %w", err)
	}
	return nil
}

// speedupPlan enumerates the Figure 12/13/14 matrix for one core count:
// every mechanism on the NDP system.
func (r *Runner) speedupPlan(cores int) sweep.Plan {
	return sweep.Plan{
		Base:       r.base(),
		Systems:    []memsys.Kind{memsys.NDP},
		Mechanisms: core.Mechanisms,
		Cores:      []int{cores},
		Workloads:  r.WorkloadNames(),
	}
}

// radixPairPlan enumerates CPU+NDP Radix runs (Figures 4-6) for the
// given core counts.
func (r *Runner) radixPairPlan(cores ...int) sweep.Plan {
	return sweep.Plan{
		Base:       r.base(),
		Systems:    []memsys.Kind{memsys.NDP, memsys.CPU},
		Mechanisms: []core.Mechanism{core.Radix},
		Cores:      cores,
		Workloads:  r.WorkloadNames(),
	}
}
