// Package exp regenerates every table and figure of the paper's
// evaluation (DESIGN.md Section 4): the motivation studies (Figures 4-8,
// the Section IV-A scalars, the Section V-C PWC rates), the headline
// speedup figures (12, 13, 14), and the NDPage ablation called out in
// DESIGN.md.
//
// A Runner memoizes simulation results by (system, mechanism, cores,
// workload) so figures sharing runs (e.g. Figure 4 and Figure 6) execute
// each configuration once, and prefetches independent runs across
// goroutines (each run builds its own Machine; nothing is shared).
// Simulation failures propagate as errors from every figure method.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"ndpage/internal/core"
	"ndpage/internal/memsys"
	"ndpage/internal/sim"
	"ndpage/internal/workload"
)

// Key identifies one simulation configuration.
type Key struct {
	System   memsys.Kind
	Mech     core.Mechanism
	Cores    int
	Workload string
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%dc/%s", k.System, k.Mech, k.Cores, k.Workload)
}

// outcome is one memoized run: its result or the error that ended it.
type outcome struct {
	res *sim.Result
	err error
}

// Runner executes and memoizes simulations.
type Runner struct {
	// Instructions and Warmup override the per-core op budgets (0 =
	// simulator defaults). Experiments and quick benches share all other
	// configuration with sim.Config defaults.
	Instructions uint64
	Warmup       uint64
	// Footprint overrides the dataset size (0 = core-scaled default).
	Footprint uint64
	// Workloads restricts the benchmark set (nil = all of Table II).
	Workloads []string
	// Parallel bounds concurrent simulations (0 = min(4, NumCPU)).
	Parallel int
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer

	mu    sync.Mutex
	cache map[Key]outcome
}

// WorkloadNames returns the active benchmark set in paper order.
func (r *Runner) WorkloadNames() []string {
	if r.Workloads != nil {
		return r.Workloads
	}
	return workload.Names()
}

// config builds the sim.Config for a key.
func (r *Runner) config(k Key) sim.Config {
	return sim.Config{
		System:         k.System,
		Cores:          k.Cores,
		Mechanism:      k.Mech,
		Workload:       k.Workload,
		Instructions:   r.Instructions,
		Warmup:         r.Warmup,
		FootprintBytes: r.Footprint,
	}
}

// Get returns the memoized result for k, running it if needed. A failed
// run is memoized too, so repeated figures report the same error without
// re-simulating.
func (r *Runner) Get(k Key) (*sim.Result, error) {
	r.mu.Lock()
	if r.cache == nil {
		r.cache = make(map[Key]outcome)
	}
	if o, ok := r.cache[k]; ok {
		r.mu.Unlock()
		return o.res, o.err
	}
	r.mu.Unlock()

	res, err := sim.RunConfig(r.config(k))
	if err != nil {
		err = fmt.Errorf("exp: %s: %w", k, err)
	}
	r.mu.Lock()
	r.cache[k] = outcome{res, err}
	r.mu.Unlock()
	if err == nil && r.Progress != nil {
		fmt.Fprintf(r.Progress, "done %s (%.2fM cycles)\n", k, float64(res.Cycles)/1e6)
	}
	return res, err
}

// Prefetch runs the given keys concurrently (memoized; duplicates are
// deduplicated) and returns the first error any run produced.
func (r *Runner) Prefetch(keys []Key) error {
	seen := map[Key]bool{}
	var todo []Key
	r.mu.Lock()
	if r.cache == nil {
		r.cache = make(map[Key]outcome)
	}
	for _, k := range keys {
		if _, cached := r.cache[k]; !cached && !seen[k] {
			seen[k] = true
			todo = append(todo, k)
		}
	}
	r.mu.Unlock()

	par := r.Parallel
	if par <= 0 {
		par = runtime.NumCPU()
		if par > 4 {
			par = 4
		}
	}
	// Run heavier configurations first for better packing.
	sort.SliceStable(todo, func(i, j int) bool { return todo[i].Cores > todo[j].Cores })

	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for _, k := range todo {
		wg.Add(1)
		go func(k Key) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r.Get(k)
		}(k)
	}
	wg.Wait()
	// Every key is memoized now; surface the first failure, including
	// ones cached before this call.
	for _, k := range keys {
		if _, err := r.Get(k); err != nil {
			return err
		}
	}
	return nil
}

// speedupKeys enumerates the Figure 12/13/14 matrix for one core count.
func (r *Runner) speedupKeys(cores int) []Key {
	var keys []Key
	for _, wl := range r.WorkloadNames() {
		for _, mech := range core.Mechanisms {
			keys = append(keys, Key{memsys.NDP, mech, cores, wl})
		}
	}
	return keys
}

// radixPairKeys enumerates CPU+NDP Radix runs (Figures 4-6).
func (r *Runner) radixPairKeys(cores int) []Key {
	var keys []Key
	for _, wl := range r.WorkloadNames() {
		keys = append(keys,
			Key{memsys.NDP, core.Radix, cores, wl},
			Key{memsys.CPU, core.Radix, cores, wl})
	}
	return keys
}
