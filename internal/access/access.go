// Package access defines the vocabulary types that flow through the memory
// system: the operation kind (read/write) and the request class. The class
// distinguishes normal program data from page-table metadata — the paper's
// central distinction — so every cache, DRAM channel, and statistics
// counter can account for them separately, and so the NDPage L1-bypass can
// route PTE requests around the cache.
package access

// Op is the kind of memory operation.
type Op uint8

// Memory operation kinds.
const (
	Read Op = iota
	Write
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == Write {
		return "write"
	}
	return "read"
}

// Class labels what a memory request carries.
type Class uint8

// Request classes. Data is normal program data; PTE is page-table metadata
// (the paper's "metadata"); Code is instruction fetch; Xlat is a cached
// translation block (Victima-style PTE blocks living in a data cache).
const (
	Data Class = iota
	PTE
	Code
	Xlat

	// NumClasses is the number of distinct classes, for array sizing.
	NumClasses = 4
)

// String returns the class name used in reports.
func (c Class) String() string {
	switch c {
	case Data:
		return "data"
	case PTE:
		return "pte"
	case Code:
		return "code"
	case Xlat:
		return "xlat"
	default:
		return "unknown"
	}
}
