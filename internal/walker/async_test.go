package walker_test

import (
	"testing"

	"ndpage/internal/addr"
	"ndpage/internal/engine"
	"ndpage/internal/walker"
)

// asyncResp collects one WalkAsync outcome plus the engine time the
// waiter was woken at. It implements walker.Waiter.
type asyncResp struct {
	walker.Response
	eng     *engine.Engine
	firedAt uint64
	done    bool
}

func (r *asyncResp) OnWalkDone(resp walker.Response) {
	r.Response = resp
	r.firedAt = r.eng.Now()
	r.done = true
}

// walkIssuer is a test actor that injects WalkAsync requests (and
// arbitrary checks) as engine events, the way the MMU's miss path does.
type walkIssuer struct {
	eng *engine.Engine
	w   *walker.Walker
	fns []func()
}

func (wi *walkIssuer) OnEvent(now uint64, kind uint8, payload uint64) {
	wi.fns[payload]()
}

func (wi *walkIssuer) at(t uint64, core int, fn func()) {
	wi.fns = append(wi.fns, fn)
	wi.eng.Schedule(t, core, wi, 0, uint64(len(wi.fns)-1))
}

func newIssuer(eng *engine.Engine, w *walker.Walker) *walkIssuer {
	return &walkIssuer{eng: eng, w: w}
}

func (wi *walkIssuer) walkAt(t uint64, core int, v addr.V, out *asyncResp) {
	out.eng = wi.eng
	wi.at(t, core, func() {
		wi.w.WalkAsync(wi.eng, walker.Request{Core: core, V: v, Time: t}, out)
	})
}

func TestAsyncMatchesBlockingTiming(t *testing.T) {
	w, base := radixRig(t, walker.Config{})
	eng := engine.New()
	wi := newIssuer(eng, w)
	var r asyncResp
	wi.walkAt(1000, 0, base, &r)
	eng.Run()
	if !r.done || !r.Found {
		t.Fatal("async walk did not complete with a mapping")
	}
	// Same cold radix timing as the synchronous path: 4 dependent
	// accesses of 100 cycles, waiter woken inside the completion event.
	if r.Done != 1400 || r.firedAt != 1400 {
		t.Errorf("walk done=%d fired=%d, want 1400/1400", r.Done, r.firedAt)
	}
	s := w.Stats()
	if s.Walks.Value() != 1 || s.PTEAccesses.Value() != 4 || s.MSHRHits != 0 || s.QueuedWalks != 0 {
		t.Errorf("stats walks=%d pte=%d mshr=%d queued=%d, want 1/4/0/0",
			s.Walks.Value(), s.PTEAccesses.Value(), s.MSHRHits.Value(), s.QueuedWalks.Value())
	}
}

func TestAsyncWidthOneQueuesOnReleaseEvent(t *testing.T) {
	w, base := radixRig(t, walker.Config{Width: 1})
	eng := engine.New()
	wi := newIssuer(eng, w)
	var a, b asyncResp
	wi.walkAt(0, 0, base, &a)
	wi.walkAt(100, 1, base+addr.PageSize, &b)
	wi.at(100, 2, func() {
		if got := w.PendingWalks(); got != 1 {
			t.Errorf("at t=100: %d pending walks, want 1 (slot held until release)", got)
		}
	})
	eng.Run()
	if a.Done != 400 {
		t.Fatalf("first walk done at %d, want 400", a.Done)
	}
	// The release event at 400 hands the slot to the queued walk.
	if b.Done != 800 || b.firedAt != 800 {
		t.Errorf("queued walk done=%d fired=%d, want 800/800", b.Done, b.firedAt)
	}
	s := w.Stats()
	if s.QueuedWalks.Value() != 1 || s.QueueCycles.Value() != 300 {
		t.Errorf("queued=%d cycles=%d, want 1/300", s.QueuedWalks.Value(), s.QueueCycles.Value())
	}
	if s.OverlappedWalks != 0 {
		t.Error("width-1 walker overlapped walks")
	}
}

func TestAsyncCoalescesOntoLiveWalk(t *testing.T) {
	w, base := radixRig(t, walker.Config{Width: 4})
	eng := engine.New()
	wi := newIssuer(eng, w)
	var a, b asyncResp
	wi.walkAt(0, 0, base, &a)
	wi.walkAt(50, 1, base+64, &b) // same page, in flight
	eng.Run()
	if !b.Coalesced {
		t.Fatal("duplicate in-flight walk was not coalesced")
	}
	if b.Done != a.Done || b.firedAt != a.Done || b.Entry != a.Entry {
		t.Errorf("coalesced response done=%d fired=%d entry=%+v, want walk's %d/%+v",
			b.Done, b.firedAt, b.Entry, a.Done, a.Entry)
	}
	s := w.Stats()
	if s.Walks.Value() != 1 || s.MSHRHits.Value() != 1 || s.PTEAccesses.Value() != 4 {
		t.Errorf("walks=%d mshr=%d pte=%d, want 1/1/4", s.Walks.Value(), s.MSHRHits.Value(), s.PTEAccesses.Value())
	}

	// After the release event the walk no longer coalesces.
	var c asyncResp
	wi.walkAt(a.Done+10, 0, base, &c)
	eng.Run()
	if c.Coalesced {
		t.Error("retired walk still coalescing")
	}
	if w.Stats().Walks.Value() != 2 {
		t.Errorf("walks = %d, want 2", w.Stats().Walks.Value())
	}
}

func TestAsyncOverlapAndHistogram(t *testing.T) {
	w, base := radixRig(t, walker.Config{Width: 2})
	eng := engine.New()
	wi := newIssuer(eng, w)
	var a, b, c asyncResp
	wi.walkAt(0, 0, base, &a)
	wi.walkAt(100, 1, base+addr.PageSize, &b)
	wi.walkAt(150, 2, base+2*addr.PageSize, &c)
	eng.Run()
	if a.Done != 400 || b.Done != 500 {
		t.Errorf("overlapped walks done at %d/%d, want 400/500", a.Done, b.Done)
	}
	// The third walk queues until a's release at 400 and walks [400, 800].
	if c.Done != 800 {
		t.Errorf("third walk done at %d, want 800", c.Done)
	}
	s := w.Stats()
	if s.OverlappedWalks.Value() != 2 || s.MaxInFlight != 2 {
		t.Errorf("overlapped=%d max=%d, want 2/2", s.OverlappedWalks.Value(), s.MaxInFlight)
	}
	// Histogram: a started solo; b overlapped a; c started while b was
	// still in flight.
	if len(s.InFlightHist) != 3 || s.InFlightHist[1] != 1 || s.InFlightHist[2] != 2 {
		t.Errorf("InFlightHist = %v, want [_ 1 2]", s.InFlightHist)
	}
}

// TestAsyncDequeuedWalkWaitsForItsRequestTime: requests are stamped
// after the TLB lookups (req.Time > arrival event time), so a slot that
// frees in that gap must not start the walk early — and the latency
// accounting must never wrap (the walk could otherwise "complete"
// before its own request).
func TestAsyncDequeuedWalkWaitsForItsRequestTime(t *testing.T) {
	w, base := radixRig(t, walker.Config{Width: 1})
	eng := engine.New()
	wi := newIssuer(eng, w)
	var a, b asyncResp
	wi.walkAt(0, 0, base, &a) // [0, 400]
	// Arrives (event) at 397 but carries a post-TLB timestamp of 410:
	// the slot frees at 400, before the request time.
	b.eng = eng
	wi.at(397, 1, func() {
		w.WalkAsync(eng, walker.Request{Core: 1, V: base + addr.PageSize, Time: 410}, &b)
	})
	eng.Run()
	if !b.done {
		t.Fatal("parked walk never completed")
	}
	if b.Done != 410+400 {
		t.Errorf("walk done at %d, want 810 (started at its request time, not the release)", b.Done)
	}
	s := w.Stats()
	if s.QueuedWalks.Value() != 0 {
		t.Errorf("queued = %d, want 0 (slot freed before the request time)", s.QueuedWalks.Value())
	}
	if s.MaxWalkCycles > 1000 {
		t.Errorf("MaxWalkCycles = %d — latency accounting wrapped", s.MaxWalkCycles)
	}
}

// TestAsyncPendingDuplicateCoalesces: a duplicate of a walk still
// waiting for a slot coalesces at request arrival (MSHRs allocate on
// arrival, not on slot grant) instead of performing a redundant walk.
func TestAsyncPendingDuplicateCoalesces(t *testing.T) {
	w, base := radixRig(t, walker.Config{Width: 1})
	eng := engine.New()
	wi := newIssuer(eng, w)
	var a, b, c asyncResp
	wi.walkAt(0, 0, base, &a)                   // [0, 400]
	wi.walkAt(50, 1, base+addr.PageSize, &b)    // parked
	wi.walkAt(60, 2, base+addr.PageSize+64, &c) // duplicate of parked b
	eng.Run()
	if !c.Coalesced {
		t.Fatal("duplicate of a pending walk was not coalesced")
	}
	if c.Done != b.Done || c.Entry != b.Entry {
		t.Errorf("coalesced completion (%d, %+v) differs from walk (%d, %+v)",
			c.Done, c.Entry, b.Done, b.Entry)
	}
	s := w.Stats()
	if s.Walks.Value() != 2 || s.MSHRHits.Value() != 1 {
		t.Errorf("walks=%d mshr=%d, want 2/1", s.Walks.Value(), s.MSHRHits.Value())
	}
}

func TestAsyncFIFONoQueueJumping(t *testing.T) {
	// Width 1; two walks parked; a third arriving exactly when the slot
	// frees must line up behind them.
	w, base := radixRig(t, walker.Config{Width: 1})
	eng := engine.New()
	wi := newIssuer(eng, w)
	var a, b, c, d asyncResp
	wi.walkAt(0, 0, base, &a)                  // [0, 400]
	wi.walkAt(10, 1, base+addr.PageSize, &b)   // parked
	wi.walkAt(20, 2, base+2*addr.PageSize, &c) // parked
	// Arrives at the release instant; actor id 3 orders it after the
	// release event's work at t=400.
	wi.walkAt(400, 3, base+3*addr.PageSize, &d)
	eng.Run()
	if b.Done != 800 || c.Done != 1200 || d.Done != 1600 {
		t.Errorf("FIFO order violated: b=%d c=%d d=%d, want 800/1200/1600", b.Done, c.Done, d.Done)
	}
}

// TestAsyncSteadyStateDoesNotAllocate pins the pooled walk records:
// after warmup, a stream of misses, coalesces, and queued walks
// performs no heap allocation inside the walker.
func TestAsyncSteadyStateDoesNotAllocate(t *testing.T) {
	w, base := radixRig(t, walker.Config{Width: 2})
	eng := engine.New()
	out := make([]asyncResp, 8)
	var start uint64
	round := func() {
		for i := range out {
			out[i] = asyncResp{eng: eng}
			v := base + addr.V(i/2)*addr.PageSize // pairs share a page: coalesce
			req := walker.Request{Core: i % 4, V: v, Time: start + uint64(10*i)}
			w.WalkAsync(eng, req, &out[i])
		}
		eng.Run()
		start = eng.Now() + 1
	}
	round() // warm the pools
	allocs := testing.AllocsPerRun(50, round)
	if allocs > 0 {
		t.Errorf("steady-state WalkAsync allocated %.1f times per round, want 0", allocs)
	}
}
