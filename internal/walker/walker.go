// Package walker models the hardware page-table walker as a first-class,
// non-blocking unit, the way Victima and ChampSim's PTW do: walk requests
// tagged with (core, address, issue time) enter an MSHR table that
// coalesces duplicate in-flight walks for the same virtual page, a
// configurable number of walk slots bounds how many walks proceed
// concurrently, and the walker owns the two issue strategies the
// simulator's page tables require — the radix sequential walk shortened
// by page-walk-cache hits, and the hashed parallel probe with optional
// cuckoo-walk way prediction.
//
// The simulator's cores are in-order and blocking, so a per-core walker
// with the default width of 1 reproduces the blocking-walk timing
// exactly: each request arrives after the previous walk retired, no slot
// is ever contended, and no MSHR ever coalesces. The unit becomes
// interesting when it is shared between cores (sim.Config.SharedWalker)
// or widened (sim.Config.WalkerWidth): concurrent walks then queue on
// the slot table, duplicate walks merge in the MSHRs, and both effects
// are surfaced as statistics — the concurrent-walk contention the NDPage
// paper measures as its motivation.
package walker

import (
	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/assoc"
	"ndpage/internal/pagetable"
	"ndpage/internal/pwc"
	"ndpage/internal/stats"
)

// Request is one page-walk demand: which core misses, for which address,
// at what absolute time.
type Request struct {
	Core int
	V    addr.V
	Time uint64
}

// Response is the outcome of a walk request.
type Response struct {
	// Entry is the resolved leaf translation; Found is false when the
	// page is unmapped (the caller decides how to fault).
	Entry pagetable.Entry
	Found bool
	// Done is the absolute completion time of the walk.
	Done uint64
	// Coalesced reports that the request was satisfied by an MSHR hit on
	// an in-flight walk for the same page, issuing no PTE traffic.
	Coalesced bool
}

// Stats counts the walker's activity.
type Stats struct {
	// Walks and WalkCycles cover walks actually performed (MSHR hits are
	// excluded, matching the blocking model's per-walk accounting).
	Walks         stats.Counter
	WalkCycles    stats.Counter
	MaxWalkCycles uint64
	// PTEAccesses counts PTE memory requests issued.
	PTEAccesses stats.Counter
	// MSHRHits counts requests coalesced onto an in-flight walk.
	MSHRHits stats.Counter
	// OverlappedWalks counts walks that began while at least one other
	// walk was still in flight (width > 1 only).
	OverlappedWalks stats.Counter
	// QueuedWalks and QueueCycles measure walks that waited for a free
	// walk slot, and for how long.
	QueuedWalks stats.Counter
	QueueCycles stats.Counter
	// MaxInFlight is the largest number of simultaneously active walks
	// observed (including the one being started).
	MaxInFlight int
}

// MeanWalkLatency returns the average performed-walk latency in cycles.
func (s *Stats) MeanWalkLatency() float64 {
	return stats.Ratio(s.WalkCycles.Value(), s.Walks.Value())
}

// MSHRHitRate returns the fraction of walk requests satisfied by an
// in-flight walk.
func (s *Stats) MSHRHitRate() float64 {
	return stats.Ratio(s.MSHRHits.Value(), s.MSHRHits.Value()+s.Walks.Value())
}

// Memory is the walker's view of the memory hierarchy: issue one request
// at an absolute time and learn when it completes. *memsys.Hierarchy
// satisfies it.
type Memory interface {
	Access(core int, now uint64, pa addr.P, op access.Op, class access.Class) uint64
}

// Config tunes a walker.
type Config struct {
	// Width is the number of concurrent walk slots (Table-I-style knob).
	// 0 or 1 models the conventional blocking walker.
	Width int
	// Cache is the optional page-walk cache probed before sequential
	// walks and filled after them. nil disables.
	Cache pwc.Cache
	// WayPrediction adds the ECH paper's cuckoo-walk cache for parallel
	// (hashed) walks: most walks probe one predicted way instead of d,
	// with a full second round on misprediction.
	WayPrediction bool
}

// mshr is one miss-status holding register: an in-flight (or just
// retired) walk whose result later duplicate requests can share.
type mshr struct {
	vpn        addr.VPN
	start, end uint64
	entry      pagetable.Entry
	found      bool
}

// Walker is a hardware page-table walker over one page-table
// organization. Not safe for concurrent use; the simulator serializes
// requests in global time order.
type Walker struct {
	cfg   Config
	width int
	table pagetable.Table
	mem   Memory

	inflight []mshr
	walk     pagetable.Walk      // scratch reused across walks
	fillBuf  []addr.Level        // scratch for PWC fills
	wayCache *assoc.Table[uint8] // ECH cuckoo-walk cache (optional)
	stats    Stats
}

// New builds a walker over table, issuing PTE requests to mem.
func New(table pagetable.Table, mem Memory, cfg Config) *Walker {
	w := &Walker{cfg: cfg, width: cfg.Width, table: table, mem: mem}
	if w.width < 1 {
		w.width = 1
	}
	if cfg.WayPrediction {
		// 64 entries x 4-way over 32 KB regions (8 pages per entry).
		w.wayCache = assoc.New[uint8](16, 4)
	}
	return w
}

// Width returns the number of concurrent walk slots.
func (w *Walker) Width() int { return w.width }

// Cache returns the page-walk cache the walker probes, or nil.
func (w *Walker) Cache() pwc.Cache { return w.cfg.Cache }

// Stats returns the live counters.
func (w *Walker) Stats() *Stats { return &w.stats }

// ResetStats zeroes the counters (MSHR and cache contents persist).
func (w *Walker) ResetStats() { w.stats = Stats{} }

// InFlight returns the number of walks occupying a slot at time now
// (started and not yet retired).
func (w *Walker) InFlight(now uint64) int {
	n := 0
	for i := range w.inflight {
		if w.inflight[i].start <= now && w.inflight[i].end > now {
			n++
		}
	}
	return n
}

// cwcRegion is the way-prediction granularity: one entry covers 8 pages.
func cwcRegion(v addr.V) uint64 { return uint64(v.Page()) >> 3 }

// Walk resolves one walk request: coalesce onto an in-flight walk for
// the same page if one exists, otherwise claim a walk slot (waiting for
// one to free when all Width slots are busy) and perform the table's
// access sequence.
func (w *Walker) Walk(req Request) Response {
	w.prune(req.Time)

	// MSHR check: a duplicate in-flight walk supplies the result with no
	// new PTE traffic; the request completes when that walk does. Only
	// walks already started by req.Time qualify — coalescing onto a walk
	// another core issued in this request's future (timestamp skew from
	// a long page fault) would stall the requester for the whole skew
	// when its own walk would finish far sooner.
	vpn := req.V.Page()
	for i := range w.inflight {
		f := &w.inflight[i]
		if f.vpn == vpn && f.start <= req.Time && f.end > req.Time {
			w.stats.MSHRHits.Inc()
			return Response{Entry: f.entry, Found: f.found, Done: f.end, Coalesced: true}
		}
	}

	// Slot allocation: the walk begins at the earliest time at or after
	// the request when fewer than Width walks occupy their [start, end)
	// interval. Occupancy is interval-based rather than arrival-order-
	// based because the simulator's min-clock stepping can deliver a
	// request timestamped *before* a walk another core issued after a
	// long page fault; that future walk must not block this one.
	start := w.slotFree(req.Time)
	if start > req.Time {
		w.stats.QueuedWalks.Inc()
		w.stats.QueueCycles.Add(start - req.Time)
	}
	if n := w.InFlight(start) + 1; n > 1 {
		w.stats.OverlappedWalks.Inc()
		if n > w.stats.MaxInFlight {
			w.stats.MaxInFlight = n
		}
	} else if w.stats.MaxInFlight == 0 {
		w.stats.MaxInFlight = 1
	}

	end := w.issue(start, req.Core, req.V)

	w.stats.Walks.Inc()
	// Walk latency is measured from the request, so slot-queue delay is
	// part of it — what a stalled core actually experiences.
	lat := end - req.Time
	w.stats.WalkCycles.Add(lat)
	if lat > w.stats.MaxWalkCycles {
		w.stats.MaxWalkCycles = lat
	}
	w.inflight = append(w.inflight, mshr{
		vpn: vpn, start: start, end: end,
		entry: w.walk.Entry, found: w.walk.Found,
	})
	return Response{Entry: w.walk.Entry, Found: w.walk.Found, Done: end}
}

// retainedMSHRs bounds the MSHR table. Retired entries are invisible to
// every check (all filter on end > time), but they are kept around until
// the table exceeds this bound: a later-arriving request can carry an
// *earlier* timestamp (min-clock stepping delivers a fault-delayed
// core's walk first), and for that request a recently-retired walk is
// still in flight and must coalesce and occupy its slot.
const retainedMSHRs = 64

// prune drops MSHRs retired at or before now, but only once the table
// outgrows retainedMSHRs — see the constant's comment.
func (w *Walker) prune(now uint64) {
	if len(w.inflight) <= retainedMSHRs {
		return
	}
	live := w.inflight[:0]
	for _, f := range w.inflight {
		if f.end > now {
			live = append(live, f)
		}
	}
	w.inflight = live
}

// slotFree returns the earliest time at or after t when a walk slot is
// available: occupancy at a candidate time counts walks whose
// [start, end) interval covers it, and each full candidate advances to
// the earliest retirement among the occupying walks. (A walk's duration
// is unknown until issued, so occupancy is checked at the start instant
// only; a walk overrunning into a future-started one is tolerated — the
// model is cycle-approximate.)
func (w *Walker) slotFree(t uint64) uint64 {
	for {
		n := 0
		next := uint64(0)
		for i := range w.inflight {
			f := &w.inflight[i]
			if f.start <= t && f.end > t {
				n++
				if next == 0 || f.end < next {
					next = f.end
				}
			}
		}
		if n < w.width {
			return t
		}
		t = next
	}
}

// issue performs the table's access sequence for v starting at t0 and
// returns the completion time, leaving the outcome in w.walk.
func (w *Walker) issue(t0 uint64, core int, v addr.V) uint64 {
	w.table.WalkInto(v, &w.walk)
	if w.walk.Kind() == pagetable.Parallel {
		return w.issueParallel(t0, core, v)
	}
	return w.issueSequential(t0, core, v)
}

// issueSequential is the radix-style dependent walk, shortened by the
// deepest page-walk-cache hit: a hit at level L supplies the child-table
// base below L, so only deeper entries are read from memory.
func (w *Walker) issueSequential(t uint64, core int, v addr.V) uint64 {
	skipDepth := -1
	if w.cfg.Cache != nil {
		t += w.cfg.Cache.Latency()
		if deepest, ok := w.cfg.Cache.Probe(v); ok {
			skipDepth = addr.Depth(deepest)
		}
	}
	for _, a := range w.walk.Accesses() {
		if addr.Depth(a.Level) <= skipDepth {
			continue
		}
		t = w.mem.Access(core, t, a.PA, access.Read, access.PTE)
		w.stats.PTEAccesses.Inc()
	}
	if w.cfg.Cache != nil {
		// Record the non-leaf entries this walk resolved.
		w.fillBuf = w.fillBuf[:0]
		for i, a := range w.walk.Seq {
			if i < len(w.walk.Seq)-1 {
				w.fillBuf = append(w.fillBuf, a.Level)
			}
		}
		w.cfg.Cache.Fill(v, w.fillBuf)
	}
	return t
}

// issueParallel is the hash-table (ECH) walk: d parallel probes, or —
// with the cuckoo-walk cache — one predicted probe with a full second
// round on misprediction.
func (w *Walker) issueParallel(t uint64, core int, v addr.V) uint64 {
	probeAll := func(t uint64, skip int) uint64 {
		end := t
		for i, a := range w.walk.Accesses() {
			if i == skip {
				continue
			}
			done := w.mem.Access(core, t, a.PA, access.Read, access.PTE)
			w.stats.PTEAccesses.Inc()
			if done > end {
				end = done
			}
		}
		return end
	}

	if w.wayCache == nil {
		return probeAll(t, -1)
	}
	region := cwcRegion(v)
	t++ // CWC probe
	hint, ok := w.wayCache.Lookup(region)
	if ok && int(hint) < len(w.walk.Par) {
		a := w.walk.Par[hint]
		t = w.mem.Access(core, t, a.PA, access.Read, access.PTE)
		w.stats.PTEAccesses.Inc()
		if w.walk.FoundIdx != int(hint) {
			// Mispredict: fall back to a full round for the rest.
			t = probeAll(t, int(hint))
		}
	} else {
		t = probeAll(t, -1)
	}
	if w.walk.FoundIdx >= 0 {
		w.wayCache.Insert(region, uint8(w.walk.FoundIdx))
	}
	return t
}
