// Package walker models the hardware page-table walker as a first-class,
// non-blocking unit, the way Victima and ChampSim's PTW do: walk requests
// tagged with (core, address, issue time) enter an MSHR table that
// coalesces duplicate in-flight walks for the same virtual page, a
// configurable number of walk slots bounds how many walks proceed
// concurrently, and the walker owns the two issue strategies the
// simulator's page tables require — the radix sequential walk shortened
// by page-walk-cache hits, and the hashed parallel probe with optional
// cuckoo-walk way prediction.
//
// The walker serves two execution models:
//
//   - Walk is the synchronous path for the blocking core model
//     (sim.Config.MLP = 1). Blocking cores advance on a min-clock
//     schedule that can deliver requests with out-of-order timestamps
//     (a fault-delayed core's walk carries a far-future time), so this
//     path keeps interval-based slot occupancy and a retained-MSHR table
//     that tolerate such skew. A per-core width-1 walker under a
//     blocking core reproduces the conventional blocking-walk timing
//     exactly.
//
//   - WalkAsync is the event-scheduled path for the non-blocking core
//     model (sim.Config.MLP > 1). Requests arrive in global time order
//     from the engine, so slots are really acquired and released: a busy
//     counter gates admission, blocked requests wait on a FIFO, a typed
//     release event scheduled at each walk's completion frees the slot
//     and starts the next queued walk, and duplicate requests attach to
//     the in-flight walk's waiter list. MSHR coalescing and slot
//     queueing then emerge from the schedule instead of being
//     reconstructed from intervals — the concurrent-walk contention the
//     NDPage paper measures as its motivation. The path allocates
//     nothing in steady state: waiters are interface values over
//     caller-owned request records, in-flight walk records are pooled,
//     and the release event is a (kind, payload) pair whose payload is
//     the walk's slot index.
package walker

import (
	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/assoc"
	"ndpage/internal/engine"
	"ndpage/internal/pagetable"
	"ndpage/internal/pwc"
	"ndpage/internal/stats"
)

// Request is one page-walk demand: which core misses, for which address,
// at what absolute time.
type Request struct {
	Core int
	V    addr.V
	Time uint64
}

// Response is the outcome of a walk request.
type Response struct {
	// Entry is the resolved leaf translation; Found is false when the
	// page is unmapped (the caller decides how to fault).
	Entry pagetable.Entry
	Found bool
	// Done is the absolute completion time of the walk.
	Done uint64
	// Coalesced reports that the request was satisfied by an MSHR hit on
	// an in-flight walk for the same page, issuing no PTE traffic.
	Coalesced bool
}

// Stats counts the walker's activity.
type Stats struct {
	// Walks and WalkCycles cover walks actually performed (MSHR hits are
	// excluded, matching the blocking model's per-walk accounting).
	Walks         stats.Counter
	WalkCycles    stats.Counter
	MaxWalkCycles uint64
	// PTEAccesses counts PTE memory requests issued.
	PTEAccesses stats.Counter
	// MSHRHits counts requests coalesced onto an in-flight walk.
	MSHRHits stats.Counter
	// OverlappedWalks counts walks that began while at least one other
	// walk was still in flight (width > 1 only).
	OverlappedWalks stats.Counter
	// QueuedWalks and QueueCycles measure walks that waited for a free
	// walk slot, and for how long.
	QueuedWalks stats.Counter
	QueueCycles stats.Counter
	// XlatProbes and XlatHits count probes of the translation-block
	// cache (the Victima mechanism); a hit short-circuits the walk with
	// zero PTE traffic.
	XlatProbes stats.Counter
	XlatHits   stats.Counter
	// MaxInFlight is the largest number of simultaneously active walks
	// observed (including the one being started).
	MaxInFlight int
	// InFlightHist[k] counts walks that began with k walks in flight
	// (including themselves): index 1 is a solo walk, index 2 a pairwise
	// overlap, and so on. Index 0 is unused.
	InFlightHist []uint64
}

// noteStart records one walk beginning with n walks in flight (n >= 1,
// counting itself) into the overlap statistics.
func (s *Stats) noteStart(n int) {
	if n > 1 {
		s.OverlappedWalks.Inc()
	}
	if n > s.MaxInFlight {
		s.MaxInFlight = n
	}
	for len(s.InFlightHist) <= n {
		s.InFlightHist = append(s.InFlightHist, 0)
	}
	s.InFlightHist[n]++
}

// MeanWalkLatency returns the average performed-walk latency in cycles.
func (s *Stats) MeanWalkLatency() float64 {
	return stats.Ratio(s.WalkCycles.Value(), s.Walks.Value())
}

// MSHRHitRate returns the fraction of walk requests satisfied by an
// in-flight walk.
func (s *Stats) MSHRHitRate() float64 {
	return stats.Ratio(s.MSHRHits.Value(), s.MSHRHits.Value()+s.Walks.Value())
}

// Memory is the walker's view of the memory hierarchy: issue one request
// at an absolute time and learn when it completes. *memsys.Hierarchy
// satisfies it.
type Memory interface {
	Access(core int, now uint64, pa addr.P, op access.Op, class access.Class) uint64
}

// XlatCache is an optional cache of leaf translation blocks probed
// before a sequential walk (the Victima mechanism: PTE blocks living in
// the shared data cache). A hit resolves the walk at the probe's
// completion time with zero PTE traffic; a completed walk offers its
// block back via Fill, where the implementation's predictor decides
// admission. memsys.VictimaStore satisfies it.
type XlatCache interface {
	// Probe checks for the translation block covering v, starting at
	// absolute time t; done is the probe's completion time either way.
	Probe(core int, t uint64, v addr.V) (done uint64, hit bool)
	// Fill offers the block covering v after a walk completing at t.
	Fill(core int, t uint64, v addr.V)
}

// Config tunes a walker.
type Config struct {
	// Width is the number of concurrent walk slots (Table-I-style knob).
	// 0 or 1 models the conventional blocking walker.
	Width int
	// Cache is the optional page-walk cache probed before sequential
	// walks and filled after them. nil disables.
	Cache pwc.Cache
	// Xlat is the optional translation-block cache probed before
	// sequential walks (Victima). nil disables.
	Xlat XlatCache
	// WayPrediction adds the ECH paper's cuckoo-walk cache for parallel
	// (hashed) walks: most walks probe one predicted way instead of d,
	// with a full second round on misprediction.
	WayPrediction bool
}

// mshr is one miss-status holding register: an in-flight (or just
// retired) walk whose result later duplicate requests can share.
type mshr struct {
	vpn        addr.VPN
	start, end uint64
	entry      pagetable.Entry
	found      bool
}

// Scheduler is the walker's view of the event engine: schedule a typed
// (kind, payload) event for a target actor at an absolute time, ordered
// under an actor id. *engine.Engine satisfies it; tests may substitute
// their own.
type Scheduler interface {
	Schedule(t uint64, actor int, target engine.Actor, kind uint8, payload uint64)
}

// Waiter receives the outcome of an event-scheduled walk. The walk's
// own requester and every coalesced duplicate register one Waiter each;
// OnWalkDone is invoked exactly once per Waiter, inside the walk's
// release event. Implementations are caller-owned records (the MMU
// pools its translation requests), so registering a Waiter allocates
// nothing.
type Waiter interface {
	OnWalkDone(Response)
}

// evRelease is the walker's only event kind: a walk slot release at a
// walk's completion time. The payload is the slot index.
const evRelease uint8 = 0

// liveWalk is one event-scheduled walk: its request, its result once
// issued, and the waiters registered on it (the walk's own requester
// first, coalesced duplicates after). The same pooled record serves a
// walk through both lifecycle phases — parked on the FIFO waiting for
// a slot (MSHRs allocate at request arrival, before a slot is won),
// then occupying a slot until the release event retires it.
type liveWalk struct {
	req     Request
	vpn     addr.VPN
	end     uint64
	entry   pagetable.Entry
	found   bool
	waiters []Waiter
}

// Walker is a hardware page-table walker over one page-table
// organization. Not safe for concurrent use; the simulator serializes
// requests in global time order.
type Walker struct {
	cfg   Config
	width int
	table pagetable.Table
	mem   Memory

	inflight []mshr
	walk     pagetable.Walk      // scratch reused across walks
	fillBuf  []addr.Level        // scratch for PWC fills
	wayCache *assoc.Table[uint8] // ECH cuckoo-walk cache (optional)
	stats    Stats

	// Event-scheduled (WalkAsync) state: live walks hold real slots
	// (slots[i] != nil, counted by busy), releases are typed engine
	// events whose payload is the slot index, blocked requests wait in
	// FIFO order, and retired records return to a free pool. Disjoint
	// from the synchronous path's interval bookkeeping.
	sched   Scheduler
	busy    int
	slots   []*liveWalk
	pending []*liveWalk
	lwPool  []*liveWalk
}

var _ engine.Actor = (*Walker)(nil)

// New builds a walker over table, issuing PTE requests to mem.
func New(table pagetable.Table, mem Memory, cfg Config) *Walker {
	w := &Walker{cfg: cfg, width: cfg.Width, table: table, mem: mem}
	if w.width < 1 {
		w.width = 1
	}
	if cfg.WayPrediction {
		// 64 entries x 4-way over 32 KB regions (8 pages per entry).
		w.wayCache = assoc.New[uint8](16, 4)
	}
	return w
}

// Width returns the number of concurrent walk slots.
func (w *Walker) Width() int { return w.width }

// Cache returns the page-walk cache the walker probes, or nil.
func (w *Walker) Cache() pwc.Cache { return w.cfg.Cache }

// Stats returns the live counters.
func (w *Walker) Stats() *Stats { return &w.stats }

// ResetStats zeroes the counters (MSHR and cache contents persist).
func (w *Walker) ResetStats() { w.stats = Stats{} }

// InFlight returns the number of walks occupying a slot at time now
// (started and not yet retired).
func (w *Walker) InFlight(now uint64) int {
	n := 0
	for i := range w.inflight {
		if w.inflight[i].start <= now && w.inflight[i].end > now {
			n++
		}
	}
	return n
}

// cwcRegion is the way-prediction granularity: one entry covers 8 pages.
func cwcRegion(v addr.V) uint64 { return uint64(v.Page()) >> 3 }

// Walk resolves one walk request: coalesce onto an in-flight walk for
// the same page if one exists, otherwise claim a walk slot (waiting for
// one to free when all Width slots are busy) and perform the table's
// access sequence.
func (w *Walker) Walk(req Request) Response {
	w.prune(req.Time)

	// MSHR check: a duplicate in-flight walk supplies the result with no
	// new PTE traffic; the request completes when that walk does. Only
	// walks already started by req.Time qualify — coalescing onto a walk
	// another core issued in this request's future (timestamp skew from
	// a long page fault) would stall the requester for the whole skew
	// when its own walk would finish far sooner.
	vpn := req.V.Page()
	for i := range w.inflight {
		f := &w.inflight[i]
		if f.vpn == vpn && f.start <= req.Time && f.end > req.Time {
			w.stats.MSHRHits.Inc()
			return Response{Entry: f.entry, Found: f.found, Done: f.end, Coalesced: true}
		}
	}

	// Slot allocation: the walk begins at the earliest time at or after
	// the request when fewer than Width walks occupy their [start, end)
	// interval. Occupancy is interval-based rather than arrival-order-
	// based because the simulator's min-clock stepping can deliver a
	// request timestamped *before* a walk another core issued after a
	// long page fault; that future walk must not block this one.
	start := w.slotFree(req.Time)
	if start > req.Time {
		w.stats.QueuedWalks.Inc()
		w.stats.QueueCycles.Add(start - req.Time)
	}
	w.stats.noteStart(w.InFlight(start) + 1)

	end := w.issue(start, req.Core, req.V)

	w.stats.Walks.Inc()
	// Walk latency is measured from the request, so slot-queue delay is
	// part of it — what a stalled core actually experiences.
	lat := end - req.Time
	w.stats.WalkCycles.Add(lat)
	if lat > w.stats.MaxWalkCycles {
		w.stats.MaxWalkCycles = lat
	}
	w.inflight = append(w.inflight, mshr{
		vpn: vpn, start: start, end: end,
		entry: w.walk.Entry, found: w.walk.Found,
	})
	return Response{Entry: w.walk.Entry, Found: w.walk.Found, Done: end}
}

// retainedMSHRs bounds the MSHR table. Retired entries are invisible to
// every check (all filter on end > time), but they are kept around until
// the table exceeds this bound: a later-arriving request can carry an
// *earlier* timestamp (min-clock stepping delivers a fault-delayed
// core's walk first), and for that request a recently-retired walk is
// still in flight and must coalesce and occupy its slot.
const retainedMSHRs = 64

// prune drops MSHRs retired at or before now, but only once the table
// outgrows retainedMSHRs — see the constant's comment.
func (w *Walker) prune(now uint64) {
	if len(w.inflight) <= retainedMSHRs {
		return
	}
	live := w.inflight[:0]
	for _, f := range w.inflight {
		if f.end > now {
			live = append(live, f)
		}
	}
	w.inflight = live
}

// slotFree returns the earliest time at or after t when a walk slot is
// available: occupancy at a candidate time counts walks whose
// [start, end) interval covers it, and each full candidate advances to
// the earliest retirement among the occupying walks. (A walk's duration
// is unknown until issued, so occupancy is checked at the start instant
// only; a walk overrunning into a future-started one is tolerated — the
// model is cycle-approximate.)
func (w *Walker) slotFree(t uint64) uint64 {
	for {
		n := 0
		next := uint64(0)
		for i := range w.inflight {
			f := &w.inflight[i]
			if f.start <= t && f.end > t {
				n++
				if next == 0 || f.end < next {
					next = f.end
				}
			}
		}
		if n < w.width {
			return t
		}
		t = next
	}
}

// WalkAsync resolves one walk request on the event schedule: wt's
// OnWalkDone is invoked exactly once, inside an engine event at the
// walk's completion time. A duplicate in-flight walk coalesces the
// request onto its waiter list; a free slot starts the walk immediately
// and schedules its release; a saturated walker parks the request on
// the FIFO until a release event frees a slot. Callers must deliver
// requests in nondecreasing time order (the engine's dispatch order
// guarantees this), which is what lets slots be held by a simple busy
// counter instead of the synchronous path's interval bookkeeping.
func (w *Walker) WalkAsync(s Scheduler, req Request, wt Waiter) {
	// Release events for parked walks fire through w.sched, so
	// switching schedulers while walks are in flight would strand them
	// on the old one; rebinding is only legal when the walker is idle
	// (e.g. tests driving one walker with a fresh engine per phase).
	if w.sched != s {
		if w.busy > 0 || len(w.pending) > 0 {
			panic("walker: WalkAsync called with a different Scheduler while walks are in flight")
		}
		w.sched = s
	}
	vpn := req.V.Page()
	for _, lw := range w.slots {
		if lw != nil && lw.vpn == vpn {
			w.stats.MSHRHits.Inc()
			lw.waiters = append(lw.waiters, wt)
			return
		}
	}
	// A duplicate of a walk still waiting for a slot coalesces too: the
	// MSHR is allocated at request arrival, not at slot grant.
	for _, lw := range w.pending {
		if lw.vpn == vpn {
			w.stats.MSHRHits.Inc()
			lw.waiters = append(lw.waiters, wt)
			return
		}
	}
	lw := w.getWalkRecord(req, wt)
	// Park when saturated — or when earlier requests are already parked,
	// so a request arriving as a slot frees cannot jump the FIFO.
	if w.busy >= w.width || len(w.pending) > 0 {
		w.pending = append(w.pending, lw)
		return
	}
	w.startAsync(lw, req.Time)
}

// PendingWalks returns the number of event-scheduled requests waiting
// for a walk slot (tests and stats).
func (w *Walker) PendingWalks() int { return len(w.pending) }

// getWalkRecord takes a walk record from the pool (or grows it) and
// initializes it for req with wt as the first waiter.
func (w *Walker) getWalkRecord(req Request, wt Waiter) *liveWalk {
	var lw *liveWalk
	if n := len(w.lwPool); n > 0 {
		lw = w.lwPool[n-1]
		w.lwPool[n-1] = nil
		w.lwPool = w.lwPool[:n-1]
	} else {
		lw = &liveWalk{}
	}
	lw.req = req
	lw.vpn = req.V.Page()
	lw.waiters = append(lw.waiters, wt)
	return lw
}

// putWalkRecord returns a retired record to the pool, dropping its
// waiter references.
func (w *Walker) putWalkRecord(lw *liveWalk) {
	for i := range lw.waiters {
		lw.waiters[i] = nil
	}
	lw.waiters = lw.waiters[:0]
	w.lwPool = append(w.lwPool, lw)
}

// startAsync acquires a slot at time at and performs lw's walk,
// scheduling the release event at its completion. The walker lazily
// sizes its slot table to Width on first use.
func (w *Walker) startAsync(lw *liveWalk, at uint64) {
	// A slot can free before the request's own timestamp: requests are
	// issued at their event time but stamped after the TLB lookups, so a
	// parked request's walk cannot begin until the miss actually reaches
	// the walker.
	if at < lw.req.Time {
		at = lw.req.Time
	}
	if at > lw.req.Time {
		w.stats.QueuedWalks.Inc()
		w.stats.QueueCycles.Add(at - lw.req.Time)
	}
	w.busy++
	w.stats.noteStart(w.busy)

	end := w.issue(at, lw.req.Core, lw.req.V)

	w.stats.Walks.Inc()
	// Walk latency is measured from the request, so slot-queue delay is
	// part of it — what the stalled load actually experiences.
	lat := end - lw.req.Time
	w.stats.WalkCycles.Add(lat)
	if lat > w.stats.MaxWalkCycles {
		w.stats.MaxWalkCycles = lat
	}
	lw.end = end
	lw.entry = w.walk.Entry
	lw.found = w.walk.Found

	if w.slots == nil {
		w.slots = make([]*liveWalk, w.width)
	}
	slot := -1
	for i, s := range w.slots {
		if s == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		panic("walker: no free slot despite busy < width")
	}
	w.slots[slot] = lw
	w.sched.Schedule(end, lw.req.Core, w, evRelease, uint64(slot))
}

// OnEvent implements engine.Actor: the walker's only event kind is the
// slot release at a walk's completion, with the slot index as payload.
func (w *Walker) OnEvent(now uint64, kind uint8, payload uint64) {
	switch kind {
	case evRelease:
		w.release(int(payload))
	default:
		panic("walker: unknown event kind")
	}
}

// release is the slot-release event at a walk's completion: retire the
// walk, wake every waiter, and hand the freed slot to the FIFO head.
func (w *Walker) release(slot int) {
	lw := w.slots[slot]
	w.slots[slot] = nil
	w.busy--
	for i, wt := range lw.waiters {
		wt.OnWalkDone(Response{Entry: lw.entry, Found: lw.found, Done: lw.end, Coalesced: i > 0})
	}
	if len(w.pending) > 0 && w.busy < w.width {
		next := w.pending[0]
		copy(w.pending, w.pending[1:])
		w.pending[len(w.pending)-1] = nil
		w.pending = w.pending[:len(w.pending)-1]
		w.startAsync(next, lw.end)
	}
	w.putWalkRecord(lw)
}

// issue performs the table's access sequence for v starting at t0 and
// returns the completion time, leaving the outcome in w.walk.
func (w *Walker) issue(t0 uint64, core int, v addr.V) uint64 {
	w.table.WalkInto(v, &w.walk)
	if w.walk.Kind() == pagetable.Parallel {
		return w.issueParallel(t0, core, v)
	}
	return w.issueSequential(t0, core, v)
}

// issueSequential is the radix-style dependent walk, shortened by the
// deepest page-walk-cache hit: a hit at level L supplies the child-table
// base below L, so only deeper entries are read from memory. A
// translation-block cache, when configured, is probed first: a hit
// supplies the leaf PTE directly and the walk ends at the probe.
func (w *Walker) issueSequential(t uint64, core int, v addr.V) uint64 {
	if w.cfg.Xlat != nil {
		w.stats.XlatProbes.Inc()
		done, hit := w.cfg.Xlat.Probe(core, t, v)
		if hit && w.walk.Found {
			w.stats.XlatHits.Inc()
			return done
		}
		t = done
	}
	skipDepth := -1
	if w.cfg.Cache != nil {
		t += w.cfg.Cache.Latency()
		if deepest, ok := w.cfg.Cache.Probe(v); ok {
			skipDepth = addr.Depth(deepest)
		}
	}
	for _, a := range w.walk.Accesses() {
		if addr.Depth(a.Level) <= skipDepth {
			continue
		}
		t = w.mem.Access(core, t, a.PA, access.Read, access.PTE)
		w.stats.PTEAccesses.Inc()
	}
	if w.cfg.Cache != nil {
		// Record the non-leaf entries this walk resolved.
		w.fillBuf = w.fillBuf[:0]
		for i, a := range w.walk.Seq {
			if i < len(w.walk.Seq)-1 {
				w.fillBuf = append(w.fillBuf, a.Level)
			}
		}
		w.cfg.Cache.Fill(v, w.fillBuf)
	}
	if w.cfg.Xlat != nil && w.walk.Found {
		w.cfg.Xlat.Fill(core, t, v)
	}
	return t
}

// issueParallel is the hash-table (ECH) walk: d parallel probes, or —
// with the cuckoo-walk cache — one predicted probe with a full second
// round on misprediction.
func (w *Walker) issueParallel(t uint64, core int, v addr.V) uint64 {
	probeAll := func(t uint64, skip int) uint64 {
		end := t
		for i, a := range w.walk.Accesses() {
			if i == skip {
				continue
			}
			done := w.mem.Access(core, t, a.PA, access.Read, access.PTE)
			w.stats.PTEAccesses.Inc()
			if done > end {
				end = done
			}
		}
		return end
	}

	if w.wayCache == nil {
		return probeAll(t, -1)
	}
	region := cwcRegion(v)
	t++ // CWC probe
	hint, ok := w.wayCache.Lookup(region)
	if ok && int(hint) < len(w.walk.Par) {
		a := w.walk.Par[hint]
		t = w.mem.Access(core, t, a.PA, access.Read, access.PTE)
		w.stats.PTEAccesses.Inc()
		if w.walk.FoundIdx != int(hint) {
			// Mispredict: fall back to a full round for the rest.
			t = probeAll(t, int(hint))
		}
	} else {
		t = probeAll(t, -1)
	}
	if w.walk.FoundIdx >= 0 {
		w.wayCache.Insert(region, uint8(w.walk.FoundIdx))
	}
	return t
}
