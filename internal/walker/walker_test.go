package walker_test

import (
	"testing"

	"ndpage/internal/access"
	"ndpage/internal/addr"
	"ndpage/internal/osmm"
	"ndpage/internal/pagetable"
	"ndpage/internal/phys"
	"ndpage/internal/pwc"
	"ndpage/internal/walker"
)

// fakeMem is a fixed-latency memory: every access completes lat cycles
// after issue, so walk timing is exactly predictable.
type fakeMem struct {
	lat uint64
}

func (m *fakeMem) Access(core int, now uint64, pa addr.P, op access.Op, class access.Class) uint64 {
	return now + m.lat
}

// radixRig maps a 64 MB region in a radix table and returns a walker
// over it with the given config.
func radixRig(t *testing.T, cfg walker.Config) (*walker.Walker, addr.V) {
	t.Helper()
	alloc := phys.New(1 << 30)
	table := pagetable.NewRadix(alloc)
	as := osmm.New(table, alloc, osmm.DefaultConfig(osmm.Base4K, alloc.TotalFrames()))
	base := as.Alloc(64<<20, "data")
	return walker.New(table, &fakeMem{lat: 100}, cfg), base
}

func TestBlockingWalkTiming(t *testing.T) {
	w, base := radixRig(t, walker.Config{})
	resp := w.Walk(walker.Request{Core: 0, V: base, Time: 1000})
	if !resp.Found {
		t.Fatal("mapped page not found")
	}
	// A cold radix walk with no PWC is 4 dependent accesses.
	if resp.Done != 1000+4*100 {
		t.Errorf("walk completed at %d, want %d", resp.Done, 1000+4*100)
	}
	s := w.Stats()
	if s.Walks.Value() != 1 || s.PTEAccesses.Value() != 4 {
		t.Errorf("walks=%d pte=%d, want 1/4", s.Walks.Value(), s.PTEAccesses.Value())
	}
	if s.MSHRHits != 0 || s.OverlappedWalks != 0 || s.QueuedWalks != 0 {
		t.Error("blocking walk recorded concurrency events")
	}
	if s.MaxInFlight != 1 {
		t.Errorf("MaxInFlight = %d, want 1", s.MaxInFlight)
	}
}

func TestMSHRCoalescesDuplicateInFlightVPN(t *testing.T) {
	w, base := radixRig(t, walker.Config{Width: 4})
	a := w.Walk(walker.Request{Core: 0, V: base, Time: 0})
	// A second request for the same page while the first walk is still in
	// flight coalesces: same completion time, no new PTE traffic.
	b := w.Walk(walker.Request{Core: 1, V: base + 64, Time: 50})
	if !b.Coalesced {
		t.Fatal("duplicate in-flight walk was not coalesced")
	}
	if b.Done != a.Done || b.Entry != a.Entry {
		t.Errorf("coalesced response (%d, %+v) differs from walk (%d, %+v)",
			b.Done, b.Entry, a.Done, a.Entry)
	}
	s := w.Stats()
	if s.Walks.Value() != 1 || s.MSHRHits.Value() != 1 {
		t.Errorf("walks=%d mshrHits=%d, want 1/1", s.Walks.Value(), s.MSHRHits.Value())
	}
	if s.PTEAccesses.Value() != 4 {
		t.Errorf("coalesced request issued PTE traffic: %d accesses", s.PTEAccesses.Value())
	}
	if got := s.MSHRHitRate(); got != 0.5 {
		t.Errorf("MSHRHitRate = %v, want 0.5", got)
	}

	// After the walk retires it no longer coalesces: a fresh request for
	// the same page walks again.
	c := w.Walk(walker.Request{Core: 0, V: base, Time: a.Done + 10})
	if c.Coalesced {
		t.Error("retired walk still coalescing")
	}
	if w.Stats().Walks.Value() != 2 {
		t.Errorf("walks = %d, want 2", w.Stats().Walks.Value())
	}
}

func TestWidthOneQueuesConcurrentWalks(t *testing.T) {
	w, base := radixRig(t, walker.Config{Width: 1})
	a := w.Walk(walker.Request{Core: 0, V: base, Time: 0}) // ends at 400
	b := w.Walk(walker.Request{Core: 1, V: base + addr.PageSize, Time: 100})
	if a.Done != 400 {
		t.Fatalf("first walk ends at %d, want 400", a.Done)
	}
	// The single slot is busy until 400; the second walk starts there.
	if b.Done != 400+400 {
		t.Errorf("queued walk completed at %d, want 800", b.Done)
	}
	s := w.Stats()
	if s.QueuedWalks.Value() != 1 || s.QueueCycles.Value() != 300 {
		t.Errorf("queued=%d queueCycles=%d, want 1/300", s.QueuedWalks.Value(), s.QueueCycles.Value())
	}
	if s.OverlappedWalks != 0 {
		t.Error("width-1 walker overlapped walks")
	}
}

func TestWidthTwoOverlapsConcurrentWalks(t *testing.T) {
	w, base := radixRig(t, walker.Config{Width: 2})
	a := w.Walk(walker.Request{Core: 0, V: base, Time: 0})
	b := w.Walk(walker.Request{Core: 1, V: base + addr.PageSize, Time: 100})
	if a.Done != 400 || b.Done != 500 {
		t.Errorf("walks ended at %d/%d, want 400/500 (overlapped)", a.Done, b.Done)
	}
	s := w.Stats()
	if s.OverlappedWalks.Value() != 1 {
		t.Errorf("overlapped = %d, want 1", s.OverlappedWalks.Value())
	}
	if s.QueuedWalks != 0 {
		t.Error("width-2 walker queued with a free slot")
	}
	if s.MaxInFlight != 2 {
		t.Errorf("MaxInFlight = %d, want 2", s.MaxInFlight)
	}

	// A third concurrent walk exceeds the two slots and queues until the
	// earliest in-flight walk (a, at 400) frees its slot.
	c := w.Walk(walker.Request{Core: 2, V: base + 2*addr.PageSize, Time: 150})
	if c.Done != 400+400 {
		t.Errorf("third walk completed at %d, want 800", c.Done)
	}
	if got := w.Stats().QueuedWalks.Value(); got != 1 {
		t.Errorf("queued = %d, want 1", got)
	}
}

func TestOutOfOrderRequestNotBlockedByFutureWalk(t *testing.T) {
	// The simulator's min-clock stepping can deliver a request
	// timestamped before a walk another core issued after paying a long
	// page fault. A walk that has not started yet must not hold a slot
	// against the earlier request.
	w, base := radixRig(t, walker.Config{Width: 1})
	a := w.Walk(walker.Request{Core: 0, V: base, Time: 20_100}) // [20100, 20500]
	if a.Done != 20_500 {
		t.Fatalf("first walk ends at %d, want 20500", a.Done)
	}
	b := w.Walk(walker.Request{Core: 1, V: base + addr.PageSize, Time: 150})
	if b.Done != 150+400 {
		t.Errorf("earlier-timestamped walk completed at %d, want 550 (not queued behind the future walk)", b.Done)
	}
	if got := w.Stats().QueuedWalks.Value(); got != 0 {
		t.Errorf("queued = %d, want 0", got)
	}
}

func TestOutOfOrderRequestNotCoalescedOntoFutureWalk(t *testing.T) {
	// Same skew, same page: a request must not coalesce onto a walk that
	// starts in its future — it would inherit the whole fault delay when
	// walking itself finishes far sooner.
	w, base := radixRig(t, walker.Config{Width: 1})
	a := w.Walk(walker.Request{Core: 0, V: base, Time: 20_100})
	b := w.Walk(walker.Request{Core: 1, V: base + 64, Time: 150})
	if b.Coalesced {
		t.Error("request coalesced onto a future-started walk")
	}
	if b.Done != 150+400 {
		t.Errorf("earlier-timestamped duplicate completed at %d, want 550", b.Done)
	}
	if a.Entry != b.Entry {
		t.Error("duplicate walks disagree on the translation")
	}
}

func TestRetiredMSHRServesEarlierTimestampedRequest(t *testing.T) {
	// A fault-delayed core's request can arrive (in execution order)
	// between a walk and a later request timestamped inside that walk's
	// lifetime. The intervening high-timestamp request must not flush
	// the MSHR the earlier-timestamped one needs.
	w, base := radixRig(t, walker.Config{Width: 4})
	w.Walk(walker.Request{Core: 0, V: base, Time: 0}) // [0, 400)
	w.Walk(walker.Request{Core: 1, V: base + addr.PageSize, Time: 50_000})
	d := w.Walk(walker.Request{Core: 2, V: base + 64, Time: 100})
	if !d.Coalesced {
		t.Error("retired-by-50000 MSHR no longer served the request timestamped 100")
	}
	if d.Done != 400 {
		t.Errorf("coalesced completion %d, want 400", d.Done)
	}
}

func TestPWCSkipShortensWalk(t *testing.T) {
	alloc := phys.New(1 << 30)
	table := pagetable.NewRadix(alloc)
	as := osmm.New(table, alloc, osmm.DefaultConfig(osmm.Base4K, alloc.TotalFrames()))
	base := as.Alloc(64<<20, "data")
	pwcs := pwc.New(pwc.Default())
	w := walker.New(table, &fakeMem{lat: 100}, walker.Config{Cache: pwcs})

	a := w.Walk(walker.Request{Core: 0, V: base, Time: 0})
	// Cold: 1-cycle PWC probe (miss) + 4 accesses.
	if a.Done != 1+400 {
		t.Errorf("cold walk ended at %d, want 401", a.Done)
	}
	// Same 2 MB region, different page, after the first walk retired:
	// the PL2 PWC entry filled by walk 1 skips all but the PL1 access.
	b := w.Walk(walker.Request{Core: 0, V: base + 7*addr.PageSize, Time: 10_000})
	if b.Done != 10_000+1+100 {
		t.Errorf("PWC-assisted walk ended at %d, want %d", b.Done, 10_000+1+100)
	}
	if got := w.Stats().PTEAccesses.Value(); got != 5 {
		t.Errorf("total PTE accesses = %d, want 5 (4 cold + 1 assisted)", got)
	}
}

// parTable is a stub hash table with controlled placement: every page
// maps to frame vpn+1, probed with d=3 parallel ways, and the way that
// holds each page is chosen by the test.
type parTable struct {
	ways    int
	foundAt map[addr.VPN]int
}

func (p *parTable) Kind() string                                { return "stub-hash" }
func (p *parTable) Map(vpn addr.VPN, pfn addr.PFN)              {}
func (p *parTable) MapHuge(vpn addr.VPN, base addr.PFN)         { panic("no huge") }
func (p *parTable) MapRange(vpn addr.VPN, n uint64, b addr.PFN) {}
func (p *parTable) Lookup(vpn addr.VPN) (pagetable.Entry, bool) {
	return pagetable.Entry{PFN: addr.PFN(vpn + 1)}, true
}
func (p *parTable) Unmap(vpn addr.VPN) (pagetable.Entry, bool) { return pagetable.Entry{}, false }
func (p *parTable) WalkInto(v addr.V, w *pagetable.Walk) {
	w.Reset()
	vpn := v.Page()
	for i := 0; i < p.ways; i++ {
		w.Par = append(w.Par, pagetable.Access{Level: pagetable.HashLevel, PA: addr.P(uint64(vpn)*8 + uint64(i))})
	}
	w.Found = true
	w.Entry = pagetable.Entry{PFN: addr.PFN(vpn + 1)}
	w.FoundIdx = p.foundAt[vpn]
}
func (p *parTable) Present(vpn addr.VPN) bool             { return true }
func (p *parTable) Occupancy() []pagetable.LevelOccupancy { return nil }
func (p *parTable) MappedPages() uint64                   { return uint64(len(p.foundAt)) }
func (p *parTable) MetadataBytes() uint64                 { return 0 }

func TestWayPredictionMispredictFallback(t *testing.T) {
	// Pages 0..7 share one way-prediction region. Page 0 lives in way 1,
	// page 1 in way 2, page 2 also in way 2.
	table := &parTable{ways: 3, foundAt: map[addr.VPN]int{0: 1, 1: 2, 2: 2}}
	w := walker.New(table, &fakeMem{lat: 100}, walker.Config{WayPrediction: true})

	// Cold region: no hint, all 3 ways probed in parallel after the
	// 1-cycle cuckoo-walk-cache probe.
	a := w.Walk(walker.Request{Core: 0, V: 0, Time: 0})
	if a.Done != 1+100 {
		t.Errorf("cold hash walk ended at %d, want 101", a.Done)
	}
	if got := w.Stats().PTEAccesses.Value(); got != 3 {
		t.Fatalf("cold hash walk probes = %d, want 3", got)
	}

	// The cache learned way 1 for the region, but page 1 lives in way 2:
	// one predicted probe, then a full fallback round over the other two
	// ways — serialized after the mispredict is detected.
	b := w.Walk(walker.Request{Core: 0, V: addr.PageSize, Time: 1000})
	if b.Done != 1000+1+100+100 {
		t.Errorf("mispredicted walk ended at %d, want %d", b.Done, 1000+1+100+100)
	}
	if got := w.Stats().PTEAccesses.Value(); got != 3+3 {
		t.Errorf("mispredict probes = %d, want 3", got-3)
	}

	// The mispredict retrained the hint to way 2; page 2 now predicts
	// correctly and probes a single way.
	c := w.Walk(walker.Request{Core: 0, V: 2 * addr.PageSize, Time: 2000})
	if c.Done != 2000+1+100 {
		t.Errorf("predicted walk ended at %d, want %d", c.Done, 2000+1+100)
	}
	if got := w.Stats().PTEAccesses.Value(); got != 6+1 {
		t.Errorf("predicted probes = %d, want 1", got-6)
	}
}

func TestResetStatsPreservesMSHRs(t *testing.T) {
	w, base := radixRig(t, walker.Config{Width: 2})
	a := w.Walk(walker.Request{Core: 0, V: base, Time: 0})
	w.ResetStats()
	s := w.Stats()
	if s.Walks != 0 || s.PTEAccesses != 0 {
		t.Error("stats not reset")
	}
	// The in-flight walk survives the reset and still coalesces.
	b := w.Walk(walker.Request{Core: 1, V: base, Time: a.Done - 1})
	if !b.Coalesced || s.MSHRHits.Value() != 1 {
		t.Error("MSHR contents lost by ResetStats")
	}
}

func TestUnmappedWalkReportsNotFound(t *testing.T) {
	w, _ := radixRig(t, walker.Config{})
	resp := w.Walk(walker.Request{Core: 0, V: addr.V(0x7000_0000_0000), Time: 0})
	if resp.Found {
		t.Error("unmapped address reported found")
	}
}
