package phys

import (
	"testing"
	"testing/quick"

	"ndpage/internal/addr"
	"ndpage/internal/xrand"
)

const testMem = 64 << 20 // 64 MB = 16384 frames = 32 huge blocks

func TestNewAccounting(t *testing.T) {
	a := New(testMem)
	if got := a.TotalFrames(); got != testMem/addr.PageSize {
		t.Fatalf("TotalFrames = %d", got)
	}
	if a.FreeFrames() != a.TotalFrames() {
		t.Fatal("fresh allocator must be fully free")
	}
	if got := a.IntactHugeBlocks(); got != testMem/addr.HugePageSize {
		t.Fatalf("IntactHugeBlocks = %d, want %d", got, testMem/addr.HugePageSize)
	}
}

func TestNewRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(4096) should panic: not a 2MB multiple")
		}
	}()
	New(4096)
}

func TestAllocFrameUnique(t *testing.T) {
	a := New(testMem)
	seen := map[addr.PFN]bool{}
	for i := uint64(0); i < a.TotalFrames(); i++ {
		pfn, ok := a.AllocFrame()
		if !ok {
			t.Fatalf("allocation %d failed with %d frames free", i, a.FreeFrames())
		}
		if seen[pfn] {
			t.Fatalf("frame %d handed out twice", pfn)
		}
		seen[pfn] = true
	}
	if _, ok := a.AllocFrame(); ok {
		t.Fatal("allocation succeeded from an exhausted allocator")
	}
}

func TestAllocHugeAlignment(t *testing.T) {
	a := New(testMem)
	for {
		pfn, ok := a.AllocHuge()
		if !ok {
			break
		}
		if !addr.VPN(pfn).HugeAligned() {
			t.Fatalf("huge block at frame %d not 2MB-aligned", pfn)
		}
	}
	if a.FreeFrames() != 0 {
		t.Fatalf("%d frames stranded after exhausting huge blocks", a.FreeFrames())
	}
	if a.Stats().HugeFailures == 0 {
		t.Error("failed huge alloc not counted")
	}
}

func TestFreeCoalescesToHuge(t *testing.T) {
	a := New(testMem)
	var frames []addr.PFN
	for i := uint64(0); i < a.TotalFrames(); i++ {
		pfn, ok := a.AllocFrame()
		if !ok {
			t.Fatal("alloc failed")
		}
		frames = append(frames, pfn)
	}
	if a.IntactHugeBlocks() != 0 {
		t.Fatal("no huge blocks should remain")
	}
	for _, pfn := range frames {
		a.Free(pfn)
	}
	if got := a.IntactHugeBlocks(); got != testMem/addr.HugePageSize {
		t.Fatalf("after freeing everything: %d intact huge blocks, want %d",
			got, testMem/addr.HugePageSize)
	}
	if a.FreeFrames() != a.TotalFrames() {
		t.Fatal("frame accounting leaked")
	}
}

func TestFreeUnallocatedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Free of unallocated frame should panic")
		}
	}()
	New(testMem).Free(addr.PFN(3))
}

func TestMixedOrderRoundTrip(t *testing.T) {
	a := New(testMem)
	type block struct {
		pfn   addr.PFN
		order int
	}
	rng := xrand.New(5)
	var blocks []block
	for i := 0; i < 200; i++ {
		o := rng.Intn(MaxOrder + 1)
		if pfn, ok := a.AllocOrder(o); ok {
			blocks = append(blocks, block{pfn, o})
		}
	}
	// Free in shuffled order.
	perm := make([]int, len(blocks))
	rng.Perm(perm)
	for _, i := range perm {
		a.Free(blocks[i].pfn)
	}
	if a.FreeFrames() != a.TotalFrames() {
		t.Fatalf("leak: %d free of %d", a.FreeFrames(), a.TotalFrames())
	}
	if got := a.IntactHugeBlocks(); got != testMem/addr.HugePageSize {
		t.Fatalf("coalescing incomplete: %d huge blocks", got)
	}
}

func TestAllocAt(t *testing.T) {
	a := New(testMem)
	if !a.AllocAt(addr.PFN(1000)) {
		t.Fatal("AllocAt on free memory failed")
	}
	if a.AllocAt(addr.PFN(1000)) {
		t.Fatal("AllocAt twice on same frame succeeded")
	}
	if a.AllocAt(addr.PFN(a.TotalFrames())) {
		t.Fatal("AllocAt out of range succeeded")
	}
	// The hole must have destroyed exactly one huge block.
	if got := a.IntactHugeBlocks(); got != testMem/addr.HugePageSize-1 {
		t.Fatalf("IntactHugeBlocks = %d after one hole", got)
	}
	// Freeing the hole restores it.
	a.Free(addr.PFN(1000))
	if got := a.IntactHugeBlocks(); got != testMem/addr.HugePageSize {
		t.Fatalf("IntactHugeBlocks = %d after healing", got)
	}
}

func TestAllocAtThenFrameAllocNoOverlap(t *testing.T) {
	a := New(testMem)
	a.AllocAt(addr.PFN(7))
	seen := map[addr.PFN]bool{7: true}
	for {
		pfn, ok := a.AllocFrame()
		if !ok {
			break
		}
		if seen[pfn] {
			t.Fatalf("frame %d double-allocated", pfn)
		}
		seen[pfn] = true
	}
	if uint64(len(seen)) != a.TotalFrames() {
		t.Fatalf("allocated %d frames, want %d", len(seen), a.TotalFrames())
	}
}

func TestInjectFragmentationDestroysContiguity(t *testing.T) {
	a := New(testMem)
	blocks := testMem / addr.HugePageSize
	claimed := a.InjectFragmentation(xrand.New(1), blocks*4, 1)
	if claimed == 0 {
		t.Fatal("no frames claimed")
	}
	got := a.IntactHugeBlocks()
	if got >= blocks/2 {
		t.Errorf("fragmentation too weak: %d of %d huge blocks intact", got, blocks)
	}
	// Frame-level allocation must still serve everything that is free.
	free := a.FreeFrames()
	for i := uint64(0); i < free; i++ {
		if _, ok := a.AllocFrame(); !ok {
			t.Fatalf("frame alloc %d of %d failed after fragmentation", i, free)
		}
	}
}

func TestInjectFragmentationDeterministic(t *testing.T) {
	a1, a2 := New(testMem), New(testMem)
	c1 := a1.InjectFragmentation(xrand.New(42), 100, 3)
	c2 := a2.InjectFragmentation(xrand.New(42), 100, 3)
	if c1 != c2 || a1.IntactHugeBlocks() != a2.IntactHugeBlocks() {
		t.Error("fragmentation injection is not deterministic")
	}
}

// Property: for any interleaving of small allocations and frees, the free
// frame count is consistent and nothing is handed out twice.
func TestAllocFreeProperty(t *testing.T) {
	f := func(ops []byte) bool {
		a := New(8 << 20) // small: 2048 frames
		live := map[addr.PFN]bool{}
		var order []addr.PFN
		for _, op := range ops {
			if op%3 != 0 || len(order) == 0 {
				if pfn, ok := a.AllocFrame(); ok {
					if live[pfn] {
						return false
					}
					live[pfn] = true
					order = append(order, pfn)
				}
			} else {
				pfn := order[len(order)-1]
				order = order[:len(order)-1]
				delete(live, pfn)
				a.Free(pfn)
			}
		}
		return a.FreeFrames() == a.TotalFrames()-uint64(len(live))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHugeCounterTracksExactly(t *testing.T) {
	a := New(testMem)
	count := func() int {
		// Reference: scan freeOrder.
		n := 0
		for _, o := range a.freeOrder {
			if o == MaxOrder {
				n++
			}
		}
		return n
	}
	rng := xrand.New(77)
	var blocks []addr.PFN
	for i := 0; i < 500; i++ {
		switch rng.Intn(4) {
		case 0:
			if pfn, ok := a.AllocHuge(); ok {
				blocks = append(blocks, pfn)
			}
		case 1:
			if pfn, ok := a.AllocFrame(); ok {
				blocks = append(blocks, pfn)
			}
		case 2:
			a.AllocAt(addr.PFN(rng.Uint64n(a.TotalFrames())))
		case 3:
			if len(blocks) > 0 {
				a.Free(blocks[len(blocks)-1])
				blocks = blocks[:len(blocks)-1]
			}
		}
		if got, want := a.IntactHugeBlocks(), count(); got != want {
			t.Fatalf("step %d: counter %d != scan %d", i, got, want)
		}
	}
}

func TestContiguityRatio(t *testing.T) {
	a := New(testMem)
	if a.ContiguityRatio() != 1.0 {
		t.Fatalf("fresh ratio = %v", a.ContiguityRatio())
	}
	half := a.TotalHugeBlocks() / 2
	for i := 0; i < half; i++ {
		a.AllocHuge()
	}
	if got := a.ContiguityRatio(); got != 0.5 {
		t.Fatalf("ratio after half = %v", got)
	}
}
