// Package phys models physical memory as a buddy allocator over 4 KB
// frames with a maximum order of 2 MB (the x86-64 huge-page size).
//
// The allocator serves two roles in the simulator:
//
//  1. It hands out frames for demand paging, so virtual-to-physical
//     mappings are realistic (scattered, allocation-order dependent)
//     rather than identity mappings.
//  2. It is the substrate for the Huge Page mechanism's failure mode: the
//     paper observes (Section VII-B) that at 8 cores Huge Page performs
//     *worse* than the Radix baseline because physical-memory contiguity
//     is rapidly consumed. InjectFragmentation seeds the background
//     fragmentation that, combined with multi-core demand, exhausts
//     intact 2 MB blocks and forces 4 KB fallbacks.
//
// Determinism: free blocks are managed as LIFO stacks with lazy deletion,
// so allocation order is a pure function of the call sequence and the
// injected RNG — no map-iteration nondeterminism.
package phys

import (
	"fmt"

	"ndpage/internal/addr"
	"ndpage/internal/xrand"
)

// MaxOrder is the largest buddy order: order 9 blocks are 512 frames,
// i.e. one 2 MB huge page.
const MaxOrder = addr.HugePageShift - addr.PageShift // 9

// Stats summarizes allocator activity.
type Stats struct {
	FrameAllocs     uint64 // successful 4 KB allocations
	HugeAllocs      uint64 // successful 2 MB allocations
	HugeFailures    uint64 // 2 MB allocations that found no intact block
	Frees           uint64 // blocks returned
	FragmentFrames  uint64 // frames consumed by injected background fragmentation
	AllocatedFrames uint64 // frames currently allocated (incl. fragmentation)
}

// Allocator is a buddy allocator over a fixed number of physical frames.
// It is not safe for concurrent use; the simulator is single-threaded.
type Allocator struct {
	totalFrames uint64
	// free[o] is a LIFO stack of candidate block starts at order o.
	// Entries may be stale; freeOrder is the source of truth.
	free [MaxOrder + 1][]uint64
	// freeOrder maps a block start to its order iff the block is free.
	freeOrder map[uint64]int
	// allocOrder maps a block start to its order iff the block is
	// allocated (needed by Free to know how much to return).
	allocOrder map[uint64]int
	// hugeFree counts free blocks of exactly MaxOrder, maintained
	// incrementally so the OS model can read contiguity pressure on
	// every fault without scanning.
	hugeFree int
	stats    Stats
}

// New returns an allocator managing totalBytes of physical memory.
// totalBytes must be a positive multiple of the huge-page size.
func New(totalBytes uint64) *Allocator {
	if totalBytes == 0 || totalBytes%addr.HugePageSize != 0 {
		panic(fmt.Sprintf("phys: total memory %d is not a positive multiple of 2 MB", totalBytes))
	}
	a := &Allocator{
		totalFrames: totalBytes / addr.PageSize,
		freeOrder:   make(map[uint64]int),
		allocOrder:  make(map[uint64]int),
	}
	for start := uint64(0); start < a.totalFrames; start += 1 << MaxOrder {
		a.push(start, MaxOrder)
	}
	return a
}

// TotalFrames returns the number of 4 KB frames managed.
func (a *Allocator) TotalFrames() uint64 { return a.totalFrames }

// FreeFrames returns the number of currently free 4 KB frames.
func (a *Allocator) FreeFrames() uint64 {
	return a.totalFrames - a.stats.AllocatedFrames
}

// Stats returns a copy of the allocator's counters.
func (a *Allocator) Stats() Stats { return a.stats }

// IntactHugeBlocks returns how many free 2 MB blocks exist, i.e. how many
// more huge pages could be allocated right now. O(1).
func (a *Allocator) IntactHugeBlocks() int { return a.hugeFree }

// TotalHugeBlocks returns the machine's total 2 MB block capacity.
func (a *Allocator) TotalHugeBlocks() int {
	return int(a.totalFrames >> MaxOrder)
}

// ContiguityRatio returns IntactHugeBlocks/TotalHugeBlocks — the signal
// the OS model reads as transparent-huge-page allocation pressure.
func (a *Allocator) ContiguityRatio() float64 {
	return float64(a.hugeFree) / float64(a.TotalHugeBlocks())
}

func (a *Allocator) push(start uint64, order int) {
	a.free[order] = append(a.free[order], start)
	a.freeOrder[start] = order
	if order == MaxOrder {
		a.hugeFree++
	}
}

// removeFree drops a block from the free set (lazy stack entries are
// skipped later), maintaining the huge-block counter.
func (a *Allocator) removeFree(start uint64, order int) {
	delete(a.freeOrder, start)
	if order == MaxOrder {
		a.hugeFree--
	}
}

// pop returns a valid free block of exactly the given order, skipping
// stale stack entries, or false if none exists.
func (a *Allocator) pop(order int) (uint64, bool) {
	stack := a.free[order]
	for len(stack) > 0 {
		start := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if o, ok := a.freeOrder[start]; ok && o == order {
			a.removeFree(start, order)
			a.free[order] = stack
			return start, true
		}
	}
	a.free[order] = stack
	return 0, false
}

// AllocOrder allocates a block of 2^order frames, splitting larger blocks
// as needed. It returns the first frame of the block and whether the
// allocation succeeded.
func (a *Allocator) AllocOrder(order int) (addr.PFN, bool) {
	if order < 0 || order > MaxOrder {
		panic(fmt.Sprintf("phys: invalid order %d", order))
	}
	for o := order; o <= MaxOrder; o++ {
		start, ok := a.pop(o)
		if !ok {
			continue
		}
		// Split down to the requested order, returning the upper
		// halves to the free lists.
		for o > order {
			o--
			a.push(start+1<<o, o)
		}
		a.allocOrder[start] = order
		a.stats.AllocatedFrames += 1 << order
		return addr.PFN(start), true
	}
	return 0, false
}

// AllocFrame allocates a single 4 KB frame.
func (a *Allocator) AllocFrame() (addr.PFN, bool) {
	pfn, ok := a.AllocOrder(0)
	if ok {
		a.stats.FrameAllocs++
	}
	return pfn, ok
}

// AllocHuge allocates one 2 MB-aligned block of 512 frames. Failure means
// physical contiguity is exhausted; callers (the OS memory manager) fall
// back to 4 KB pages, reproducing the paper's Huge Page degradation.
func (a *Allocator) AllocHuge() (addr.PFN, bool) {
	pfn, ok := a.AllocOrder(MaxOrder)
	if ok {
		a.stats.HugeAllocs++
	} else {
		a.stats.HugeFailures++
	}
	return pfn, ok
}

// Free returns a previously allocated block (identified by its first
// frame) and coalesces buddies. Freeing an unallocated address panics:
// it is a simulator bug, not a recoverable condition.
func (a *Allocator) Free(pfn addr.PFN) {
	start := uint64(pfn)
	order, ok := a.allocOrder[start]
	if !ok {
		panic(fmt.Sprintf("phys: Free of unallocated frame %#x", start))
	}
	delete(a.allocOrder, start)
	a.stats.AllocatedFrames -= 1 << order
	a.stats.Frees++
	// Coalesce with free buddies as far as possible.
	for order < MaxOrder {
		buddy := start ^ (1 << order)
		if o, free := a.freeOrder[buddy]; !free || o != order {
			break
		}
		a.removeFree(buddy, order) // lazy deletion from the stack
		if buddy < start {
			start = buddy
		}
		order++
	}
	a.push(start, order)
}

// AllocAt carves out the specific frame pfn, splitting whatever free block
// contains it. It returns false if the frame is already allocated. It is
// used by fragmentation injection to punch holes at chosen positions,
// which a plain buddy allocator would never do on its own.
func (a *Allocator) AllocAt(pfn addr.PFN) bool {
	frame := uint64(pfn)
	if frame >= a.totalFrames {
		return false
	}
	// Find the free block containing the frame.
	for o := 0; o <= MaxOrder; o++ {
		start := frame &^ (1<<o - 1)
		fo, ok := a.freeOrder[start]
		if !ok || fo != o {
			continue
		}
		a.removeFree(start, o)
		// Split repeatedly, keeping the half containing frame.
		for o > 0 {
			o--
			lower, upper := start, start+1<<o
			if frame >= upper {
				a.push(lower, o)
				start = upper
			} else {
				a.push(upper, o)
			}
		}
		a.allocOrder[frame] = 0
		a.stats.AllocatedFrames++
		return true
	}
	return false
}

// InjectFragmentation punches `holes` runs of `runLen` consecutive 4 KB
// frames at pseudo-random positions, modelling long-running background
// allocation that has broken up physical contiguity before the workload
// starts. It returns the number of frames actually claimed (positions
// already occupied are skipped, not retried).
func (a *Allocator) InjectFragmentation(rng *xrand.RNG, holes, runLen int) int {
	if runLen <= 0 {
		runLen = 1
	}
	claimed := 0
	for i := 0; i < holes; i++ {
		base := rng.Uint64n(a.totalFrames)
		for j := 0; j < runLen; j++ {
			f := base + uint64(j)
			if f >= a.totalFrames {
				break
			}
			if a.AllocAt(addr.PFN(f)) {
				claimed++
			}
		}
	}
	a.stats.FragmentFrames += uint64(claimed)
	return claimed
}
