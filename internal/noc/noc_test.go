package noc

import "testing"

func TestOneWayLatency(t *testing.T) {
	m := New(Config{Name: "t", Hops: 4, HopLatency: 4, LinkOccupancy: 1})
	if m.OneWay() != 16 {
		t.Fatalf("OneWay = %d, want 16", m.OneWay())
	}
	if got := m.Traverse(100); got != 116 {
		t.Fatalf("Traverse(100) = %d, want 116", got)
	}
}

func TestLinkSerialization(t *testing.T) {
	m := New(Config{Name: "t", Hops: 1, HopLatency: 4, LinkOccupancy: 2})
	a := m.Traverse(0)
	b := m.Traverse(0) // same instant: waits one occupancy slot
	c := m.Traverse(0)
	if a != 4 || b != 6 || c != 8 {
		t.Fatalf("serialized arrivals = %d,%d,%d, want 4,6,8", a, b, c)
	}
	if m.Stats().Messages.Value() != 3 {
		t.Errorf("Messages = %d", m.Stats().Messages.Value())
	}
	if m.Stats().QueueCycles.Value() != 2+4 {
		t.Errorf("QueueCycles = %d, want 6", m.Stats().QueueCycles.Value())
	}
}

func TestNoQueueWhenSpaced(t *testing.T) {
	m := New(Config{Name: "t", Hops: 2, HopLatency: 4, LinkOccupancy: 1})
	m.Traverse(0)
	m.Traverse(10)
	if m.Stats().QueueCycles.Value() != 0 {
		t.Error("spaced messages should not queue")
	}
}

func TestPresets(t *testing.T) {
	cpu, ndp := New(CPUMesh()), New(NDPMesh())
	if cpu.OneWay() <= ndp.OneWay() {
		t.Errorf("CPU mesh path (%d) must be longer than NDP vault path (%d)",
			cpu.OneWay(), ndp.OneWay())
	}
}
