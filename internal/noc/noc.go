// Package noc models the on-chip/in-package interconnect between cores
// and memory as a fixed-hop mesh path with a serialized ingress link.
//
// Table I specifies a mesh with 4-cycle hop latency and 512-bit links.
// The simulator uses the mesh asymmetrically, which is the architectural
// point of NDP:
//
//   - CPU cores sit several mesh hops from the memory controllers
//     (default 4 hops each way).
//   - NDP cores sit in the logic layer of the 3D stack, one hop from
//     their vault (default 1 hop).
//
// A 64 B message occupies one 512-bit link slot, so the ingress link
// serializes at one message per cycle; under multi-core load this adds a
// small queueing term on top of DRAM bank contention.
package noc

import (
	"ndpage/internal/resource"
	"ndpage/internal/stats"
)

// Config describes one core-to-memory path.
type Config struct {
	Name       string
	Hops       int    // one-way hop count
	HopLatency uint64 // cycles per hop
	// LinkOccupancy is the serialization occupancy per message on the
	// shared ingress link (cycles). 64 B / 512-bit link = 1 slot.
	LinkOccupancy uint64
}

// CPUMesh returns the CPU-side path: cores reach the memory controller
// across the chip mesh.
func CPUMesh() Config {
	return Config{Name: "cpu-mesh", Hops: 4, HopLatency: 4, LinkOccupancy: 1}
}

// NDPMesh returns the NDP-side path: logic-layer cores reach their local
// vault controller in one hop.
func NDPMesh() Config {
	return Config{Name: "ndp-vault", Hops: 1, HopLatency: 4, LinkOccupancy: 1}
}

// Stats aggregates interconnect activity.
type Stats struct {
	Messages    stats.Counter
	QueueCycles stats.Counter
}

// Mesh is a shared path from a set of cores to memory.
// Not safe for concurrent use.
type Mesh struct {
	cfg   Config
	link  resource.Slots
	stats Stats
}

// New builds a mesh path from cfg.
func New(cfg Config) *Mesh {
	return &Mesh{cfg: cfg}
}

// Config returns the configured parameters.
func (m *Mesh) Config() Config { return m.cfg }

// Stats returns the live counters.
func (m *Mesh) Stats() *Stats { return &m.stats }

// OneWay returns the uncontended one-way traversal latency in cycles.
func (m *Mesh) OneWay() uint64 {
	return uint64(m.cfg.Hops) * m.cfg.HopLatency
}

// Traverse sends one message at time now and returns its arrival time at
// the far side, including serialization on the shared ingress link.
// Out-of-order-in-wall-time sends overlap correctly (see package
// resource).
func (m *Mesh) Traverse(now uint64) uint64 {
	start := m.link.Reserve(now, m.cfg.LinkOccupancy)
	m.stats.Messages.Inc()
	m.stats.QueueCycles.Add(start - now)
	return start + m.OneWay()
}
