package pagetable

import (
	"fmt"
	"slices"
	"unsafe"

	"ndpage/internal/addr"
	"ndpage/internal/bitset"
	"ndpage/internal/phys"
)

// flatChunks is the number of 512-entry runs in one flattened node
// (2^18 entries / 512), and chunkWords the uint64 words of one chunk's
// present bitmap.
const (
	flatChunks = addr.FlatEntries / addr.EntriesPerTable
	chunkWords = addr.EntriesPerTable / 64
)

// flatChunk is one lazily materialized 512-entry run of a flattened
// node: a bit-packed present set (64 B — one cache line) and the frame
// numbers. Only chunks that hold mappings are resident, so a sparse
// node (most of Table II's footprints) costs its pointer directory plus
// ~4 KB per populated 2 MB span instead of a fully materialized 2^18
// entry array, and the present probe of the demand-paging check stays
// inside metadata small enough to be cache-resident.
type flatChunk struct {
	present [chunkWords]uint64
	used    uint32 // mapped entries in this chunk; 0 releases the chunk
	pfns    [addr.EntriesPerTable]addr.PFN
}

// flatNode is one flattened L2/L1 node: 2^18 entries covering 1 GB of
// virtual space, replacing one PL2 node and its 512 PL1 children (paper
// Section V-B, Figure 9).
//
// Physically the paper allocates the node as a single 2 MB page. The
// simulator first tries exactly that (one huge block from the allocator);
// if contiguity is unavailable it backs the node with per-chunk 4 KB
// frames. Either way the *walk* cost is identical — one directly indexed
// PTE access — because flattening removes the dependent pointer chase,
// not the physical placement.
//
// The simulator-side metadata (which entries exist, and their frames) is
// materialized per 512-entry chunk in leaves; the physical *backing* of
// the node (chunks/chunkOK) is a separate axis — a chunk-backed node
// lazily allocates PTE frames the first time a walk touches a 512-entry
// run, whether or not any entry there is mapped.
type flatNode struct {
	// contiguous 2 MB backing (preferred); base is valid when huge.
	huge bool
	base addr.P
	// chunked backing: one frame per 512-entry chunk, allocated lazily;
	// chunkOK is a flatChunks-bit bitmap of which frames exist.
	chunks  []addr.P
	chunkOK []uint64

	leaves [flatChunks]*flatChunk
	used   int
}

// leafFor materializes and returns the chunk holding entry idx.
func (n *flatNode) leafFor(idx uint64) *flatChunk {
	ci := idx >> addr.LevelBits
	c := n.leaves[ci]
	if c == nil {
		c = new(flatChunk)
		n.leaves[ci] = c
	}
	return c
}

// Flattened is NDPage's page table: PL4 -> PL3 -> flattened L2/L1 leaf.
type Flattened struct {
	alloc *phys.Allocator
	// root is the PL4 node; mid maps PL4 index -> PL3 node; flat maps
	// (PL4,PL3) prefix -> flattened node. Node structures mirror the
	// radix layout for the two upper levels.
	root *radixNode
	// flats holds the flattened nodes indexed densely by the PL3 child
	// slot (the 18-bit PL4+PL3 prefix), grown on demand. The simulator's
	// address spaces bump-allocate from a fixed base, so occupied slots
	// are a short dense run and the slice stays small — and Lookup, which
	// runs on every demand-paging check of every load/store, indexes it
	// with no map-bucket probe.
	flats []*flatNode

	nodes      levelCounts
	used       levelCounts
	mapped     uint64
	hugeBacked uint64 // flattened nodes that got a contiguous 2 MB block
	chunkFalls uint64 // flattened nodes that fell back to chunked frames
}

// NewFlattened builds an empty NDPage table backed by alloc.
func NewFlattened(alloc *phys.Allocator) *Flattened {
	f := &Flattened{alloc: alloc}
	f.root = f.newUpperNode(addr.PL4)
	return f
}

// flatAt returns the flattened node at slot, nil when absent.
func (f *Flattened) flatAt(slot uint64) *flatNode {
	if slot >= uint64(len(f.flats)) {
		return nil
	}
	return f.flats[slot]
}

// setFlat stores fn at slot, growing the dense index in one step.
func (f *Flattened) setFlat(slot uint64, fn *flatNode) {
	if n := int(slot) + 1 - len(f.flats); n > 0 {
		f.flats = slices.Grow(f.flats, n)[:slot+1]
	}
	f.flats[slot] = fn
}

// Kind implements Table.
func (f *Flattened) Kind() string { return "flattened" }

func (f *Flattened) newUpperNode(level addr.Level) *radixNode {
	pfn, ok := f.alloc.AllocFrame()
	if !ok {
		panic("pagetable: out of physical memory for a flattened upper node")
	}
	n := &radixNode{basePA: pfn.Addr(), level: level, children: make([]*radixNode, addr.EntriesPerTable)}
	f.nodes[level]++
	return n
}

// newFlatNode allocates the 1 GB-span leaf node. Entry metadata is not
// materialized here — leaves fill in as chunks gain mappings.
func (f *Flattened) newFlatNode() *flatNode {
	n := &flatNode{}
	if base, ok := f.alloc.AllocHuge(); ok {
		n.huge = true
		n.base = base.Addr()
		f.hugeBacked++
	} else {
		n.chunks = make([]addr.P, flatChunks)
		n.chunkOK = make([]uint64, bitset.WordsFor(flatChunks))
		f.chunkFalls++
	}
	f.nodes[addr.L2L1]++
	return n
}

// pteAddr returns the physical address of entry idx within the node.
func (n *flatNode) pteAddr(alloc *phys.Allocator, idx uint64) addr.P {
	if n.huge {
		return n.base + addr.P(idx*addr.PTESize)
	}
	c := idx >> addr.LevelBits
	if !bitset.TestBit(n.chunkOK, c) {
		pfn, ok := alloc.AllocFrame()
		if !ok {
			panic("pagetable: out of physical memory for a flattened chunk")
		}
		n.chunks[c] = pfn.Addr()
		bitset.SetBit(n.chunkOK, c)
	}
	return n.chunks[c] + addr.P((idx&(addr.EntriesPerTable-1))*addr.PTESize)
}

// pl3Slot returns the key identifying the flattened node for v: the
// PL4+PL3 prefix (18 bits).
func pl3Slot(v addr.V) uint64 { return uint64(v >> 30) }

// flatFor returns the flattened node covering v, creating the upper path
// if requested.
func (f *Flattened) flatFor(v addr.V, create bool) *flatNode {
	i4 := addr.Index(v, addr.PL4)
	n3 := f.root.children[i4]
	if n3 == nil {
		if !create {
			return nil
		}
		n3 = f.newUpperNode(addr.PL3)
		f.root.children[i4] = n3
		f.root.used++
		f.used[addr.PL4]++
	}
	slot := pl3Slot(v)
	fn := f.flatAt(slot)
	if fn == nil {
		if !create {
			return nil
		}
		fn = f.newFlatNode()
		f.setFlat(slot, fn)
		n3.used++
		f.used[addr.PL3]++
	}
	return fn
}

// Map implements Table.
func (f *Flattened) Map(vpn addr.VPN, pfn addr.PFN) {
	v := vpn.Addr()
	fn := f.flatFor(v, true)
	idx := addr.FlatIndex(v)
	c := fn.leafFor(idx)
	sub := idx & (addr.EntriesPerTable - 1)
	if bitset.SetBit(c.present[:], sub) {
		c.used++
		fn.used++
		f.used[addr.L2L1]++
		f.mapped++
	}
	c.pfns[sub] = pfn
}

// MapRange implements Table: chunks are filled in bulk — present bits a
// word at a time (the popcount of the freshly set bits maintains the
// used counts) and frames linearly — without re-deriving the node and
// chunk per entry.
func (f *Flattened) MapRange(vpn addr.VPN, count uint64, base addr.PFN) {
	for count > 0 {
		v := vpn.Addr()
		fn := f.flatFor(v, true)
		idx := addr.FlatIndex(v)
		n := uint64(addr.FlatEntries) - idx
		if n > count {
			n = count
		}
		for filled := uint64(0); filled < n; {
			c := fn.leafFor(idx + filled)
			sub := (idx + filled) & (addr.EntriesPerTable - 1)
			run := uint64(addr.EntriesPerTable) - sub
			if run > n-filled {
				run = n - filled
			}
			fresh := bitset.SetRun(c.present[:], sub, run)
			c.used += uint32(fresh)
			fn.used += int(fresh)
			f.used[addr.L2L1] += fresh
			f.mapped += fresh
			b := base + addr.PFN(filled)
			for k := uint64(0); k < run; k++ {
				c.pfns[sub+k] = b + addr.PFN(k)
			}
			filled += run
		}
		vpn += addr.VPN(n)
		base += addr.PFN(n)
		count -= n
	}
}

// MapHuge implements Table. NDPage keeps 4 KB mapping flexibility (that is
// its advantage over Huge Page); 2 MB leaves are expressed as 512 base
// entries.
func (f *Flattened) MapHuge(vpn addr.VPN, base addr.PFN) {
	if !vpn.HugeAligned() {
		panic(fmt.Sprintf("pagetable: MapHuge of unaligned vpn %#x", uint64(vpn)))
	}
	f.MapRange(vpn, addr.EntriesPerTable, base)
}

// Lookup implements Table.
func (f *Flattened) Lookup(vpn addr.VPN) (Entry, bool) {
	v := vpn.Addr()
	fn := f.flatFor(v, false)
	if fn == nil {
		return Entry{}, false
	}
	idx := addr.FlatIndex(v)
	c := fn.leaves[idx>>addr.LevelBits]
	if c == nil {
		return Entry{}, false
	}
	sub := idx & (addr.EntriesPerTable - 1)
	if !bitset.TestBit(c.present[:], sub) {
		return Entry{}, false
	}
	return Entry{PFN: c.pfns[sub]}, true
}

// Present implements Table: the demand-paging fast predicate. It reads
// only the chunk directory and one present word — no frame load, no
// Entry construction — so the 99%-hit path of osmm.Touch stays inside a
// few cache lines of resident metadata.
func (f *Flattened) Present(vpn addr.VPN) bool {
	v := vpn.Addr()
	fn := f.flatFor(v, false)
	if fn == nil {
		return false
	}
	idx := addr.FlatIndex(v)
	c := fn.leaves[idx>>addr.LevelBits]
	return c != nil && bitset.TestBit(c.present[:], idx&(addr.EntriesPerTable-1))
}

// Unmap implements Table. A chunk whose last entry is unmapped is
// released, so reclaim (which evicts whole 2 MB spans) returns the
// metadata too.
func (f *Flattened) Unmap(vpn addr.VPN) (Entry, bool) {
	v := vpn.Addr()
	fn := f.flatFor(v, false)
	if fn == nil {
		return Entry{}, false
	}
	idx := addr.FlatIndex(v)
	ci := idx >> addr.LevelBits
	c := fn.leaves[ci]
	if c == nil {
		return Entry{}, false
	}
	sub := idx & (addr.EntriesPerTable - 1)
	if !bitset.ClearBit(c.present[:], sub) {
		return Entry{}, false
	}
	e := Entry{PFN: c.pfns[sub]}
	c.used--
	fn.used--
	f.used[addr.L2L1]--
	f.mapped--
	if c.used == 0 {
		fn.leaves[ci] = nil
	}
	return e, true
}

// WalkInto implements Table: PL4 access, PL3 access, then one directly
// indexed access into the flattened node — 3 sequential accesses instead
// of the radix table's 4 (paper Figure 9).
func (f *Flattened) WalkInto(v addr.V, w *Walk) {
	w.Reset()
	i4 := addr.Index(v, addr.PL4)
	w.Seq = append(w.Seq, Access{addr.PL4, pteAddr(f.root.basePA, i4)})
	n3 := f.root.children[i4]
	if n3 == nil {
		return
	}
	w.Seq = append(w.Seq, Access{addr.PL3, pteAddr(n3.basePA, addr.Index(v, addr.PL3))})
	fn := f.flatAt(pl3Slot(v))
	if fn == nil {
		return
	}
	idx := addr.FlatIndex(v)
	w.Seq = append(w.Seq, Access{addr.L2L1, fn.pteAddr(f.alloc, idx)})
	c := fn.leaves[idx>>addr.LevelBits]
	sub := idx & (addr.EntriesPerTable - 1)
	if c == nil || !bitset.TestBit(c.present[:], sub) {
		return
	}
	w.Found = true
	w.Entry = Entry{PFN: c.pfns[sub]}
}

// Occupancy implements Table. The L2L1 row reports the paper's "combined
// PL2/PL1" occupancy over 2^18-entry nodes.
func (f *Flattened) Occupancy() []LevelOccupancy {
	out := []LevelOccupancy{
		{Level: addr.PL4, Nodes: f.nodes[addr.PL4], EntriesUsed: f.used[addr.PL4],
			Capacity: f.nodes[addr.PL4] * addr.EntriesPerTable},
		{Level: addr.PL3, Nodes: f.nodes[addr.PL3], EntriesUsed: f.used[addr.PL3],
			Capacity: f.nodes[addr.PL3] * addr.EntriesPerTable},
		{Level: addr.L2L1, Nodes: f.nodes[addr.L2L1], EntriesUsed: f.used[addr.L2L1],
			Capacity: f.nodes[addr.L2L1] * addr.FlatEntries},
	}
	return out
}

// MappedPages implements Table.
func (f *Flattened) MappedPages() uint64 { return f.mapped }

// MetadataBytes implements Table: the simulator-side resident metadata —
// the upper nodes' child directories, the dense node index, and per
// flattened node its chunk directory plus only the materialized chunks.
func (f *Flattened) MetadataBytes() uint64 {
	const ptr = uint64(unsafe.Sizeof((*flatNode)(nil)))
	total := (f.nodes[addr.PL4] + f.nodes[addr.PL3]) *
		(uint64(unsafe.Sizeof(radixNode{})) + addr.EntriesPerTable*ptr)
	total += uint64(len(f.flats)) * ptr
	for _, fn := range f.flats {
		if fn == nil {
			continue
		}
		total += uint64(unsafe.Sizeof(*fn))
		total += uint64(len(fn.chunks))*8 + uint64(len(fn.chunkOK))*8
		for _, c := range fn.leaves {
			if c != nil {
				total += uint64(unsafe.Sizeof(*c))
			}
		}
	}
	return total
}

// HugeBackedNodes returns how many flattened nodes obtained a contiguous
// 2 MB physical block versus falling back to chunked frames.
func (f *Flattened) HugeBackedNodes() (huge, chunked uint64) {
	return f.hugeBacked, f.chunkFalls
}
