package pagetable

import (
	"fmt"

	"ndpage/internal/addr"
	"ndpage/internal/phys"
)

// flatNode is one flattened L2/L1 node: 2^18 entries covering 1 GB of
// virtual space, replacing one PL2 node and its 512 PL1 children (paper
// Section V-B, Figure 9).
//
// Physically the paper allocates the node as a single 2 MB page. The
// simulator first tries exactly that (one huge block from the allocator);
// if contiguity is unavailable it backs the node with per-chunk 4 KB
// frames. Either way the *walk* cost is identical — one directly indexed
// PTE access — because flattening removes the dependent pointer chase,
// not the physical placement.
type flatNode struct {
	// contiguous 2 MB backing (preferred); base is valid when huge.
	huge bool
	base addr.P
	// chunked backing: one frame per 512-entry chunk, allocated lazily.
	chunks  []addr.P
	chunkOK []bool

	pfns    []addr.PFN
	present []bool
	used    int
}

// Flattened is NDPage's page table: PL4 -> PL3 -> flattened L2/L1 leaf.
type Flattened struct {
	alloc *phys.Allocator
	// root is the PL4 node; mid maps PL4 index -> PL3 node; flat maps
	// (PL4,PL3) prefix -> flattened node. Node structures mirror the
	// radix layout for the two upper levels.
	root *radixNode
	// flats holds the flattened nodes indexed densely by the PL3 child
	// slot (the 18-bit PL4+PL3 prefix), grown on demand. The simulator's
	// address spaces bump-allocate from a fixed base, so occupied slots
	// are a short dense run and the slice stays small — and Lookup, which
	// runs on every demand-paging check of every load/store, indexes it
	// with no map-bucket probe.
	flats []*flatNode

	nodes      levelCounts
	used       levelCounts
	mapped     uint64
	hugeBacked uint64 // flattened nodes that got a contiguous 2 MB block
	chunkFalls uint64 // flattened nodes that fell back to chunked frames
}

// NewFlattened builds an empty NDPage table backed by alloc.
func NewFlattened(alloc *phys.Allocator) *Flattened {
	f := &Flattened{alloc: alloc}
	f.root = f.newUpperNode(addr.PL4)
	return f
}

// flatAt returns the flattened node at slot, nil when absent.
func (f *Flattened) flatAt(slot uint64) *flatNode {
	if slot >= uint64(len(f.flats)) {
		return nil
	}
	return f.flats[slot]
}

// setFlat stores fn at slot, growing the dense index as needed.
func (f *Flattened) setFlat(slot uint64, fn *flatNode) {
	for uint64(len(f.flats)) <= slot {
		f.flats = append(f.flats, nil)
	}
	f.flats[slot] = fn
}

// Kind implements Table.
func (f *Flattened) Kind() string { return "flattened" }

func (f *Flattened) newUpperNode(level addr.Level) *radixNode {
	pfn, ok := f.alloc.AllocFrame()
	if !ok {
		panic("pagetable: out of physical memory for a flattened upper node")
	}
	n := &radixNode{basePA: pfn.Addr(), level: level, children: make([]*radixNode, addr.EntriesPerTable)}
	f.nodes[level]++
	return n
}

// newFlatNode allocates the 1 GB-span leaf node.
func (f *Flattened) newFlatNode() *flatNode {
	n := &flatNode{
		pfns:    make([]addr.PFN, addr.FlatEntries),
		present: make([]bool, addr.FlatEntries),
	}
	if base, ok := f.alloc.AllocHuge(); ok {
		n.huge = true
		n.base = base.Addr()
		f.hugeBacked++
	} else {
		n.chunks = make([]addr.P, addr.EntriesPerTable)
		n.chunkOK = make([]bool, addr.EntriesPerTable)
		f.chunkFalls++
	}
	f.nodes[addr.L2L1]++
	return n
}

// pteAddr returns the physical address of entry idx within the node.
func (n *flatNode) pteAddr(alloc *phys.Allocator, idx uint64) addr.P {
	if n.huge {
		return n.base + addr.P(idx*addr.PTESize)
	}
	c := idx >> addr.LevelBits
	if !n.chunkOK[c] {
		pfn, ok := alloc.AllocFrame()
		if !ok {
			panic("pagetable: out of physical memory for a flattened chunk")
		}
		n.chunks[c] = pfn.Addr()
		n.chunkOK[c] = true
	}
	return n.chunks[c] + addr.P((idx&(addr.EntriesPerTable-1))*addr.PTESize)
}

// pl3Slot returns the key identifying the flattened node for v: the
// PL4+PL3 prefix (18 bits).
func pl3Slot(v addr.V) uint64 { return uint64(v >> 30) }

// flatFor returns the flattened node covering v, creating the upper path
// if requested.
func (f *Flattened) flatFor(v addr.V, create bool) *flatNode {
	i4 := addr.Index(v, addr.PL4)
	n3 := f.root.children[i4]
	if n3 == nil {
		if !create {
			return nil
		}
		n3 = f.newUpperNode(addr.PL3)
		f.root.children[i4] = n3
		f.root.used++
		f.used[addr.PL4]++
	}
	slot := pl3Slot(v)
	fn := f.flatAt(slot)
	if fn == nil {
		if !create {
			return nil
		}
		fn = f.newFlatNode()
		f.setFlat(slot, fn)
		n3.used++
		f.used[addr.PL3]++
	}
	return fn
}

// Map implements Table.
func (f *Flattened) Map(vpn addr.VPN, pfn addr.PFN) {
	v := vpn.Addr()
	fn := f.flatFor(v, true)
	idx := addr.FlatIndex(v)
	if !fn.present[idx] {
		fn.present[idx] = true
		fn.used++
		f.used[addr.L2L1]++
		f.mapped++
	}
	fn.pfns[idx] = pfn
}

// MapRange implements Table.
func (f *Flattened) MapRange(vpn addr.VPN, count uint64, base addr.PFN) {
	for count > 0 {
		v := vpn.Addr()
		fn := f.flatFor(v, true)
		idx := addr.FlatIndex(v)
		n := uint64(addr.FlatEntries) - idx
		if n > count {
			n = count
		}
		for k := uint64(0); k < n; k++ {
			if !fn.present[idx+k] {
				fn.present[idx+k] = true
				fn.used++
				f.used[addr.L2L1]++
				f.mapped++
			}
			fn.pfns[idx+k] = base + addr.PFN(k)
		}
		vpn += addr.VPN(n)
		base += addr.PFN(n)
		count -= n
	}
}

// MapHuge implements Table. NDPage keeps 4 KB mapping flexibility (that is
// its advantage over Huge Page); 2 MB leaves are expressed as 512 base
// entries.
func (f *Flattened) MapHuge(vpn addr.VPN, base addr.PFN) {
	if !vpn.HugeAligned() {
		panic(fmt.Sprintf("pagetable: MapHuge of unaligned vpn %#x", uint64(vpn)))
	}
	f.MapRange(vpn, addr.EntriesPerTable, base)
}

// Lookup implements Table.
func (f *Flattened) Lookup(vpn addr.VPN) (Entry, bool) {
	v := vpn.Addr()
	fn := f.flatFor(v, false)
	if fn == nil {
		return Entry{}, false
	}
	idx := addr.FlatIndex(v)
	if !fn.present[idx] {
		return Entry{}, false
	}
	return Entry{PFN: fn.pfns[idx]}, true
}

// Unmap implements Table.
func (f *Flattened) Unmap(vpn addr.VPN) (Entry, bool) {
	v := vpn.Addr()
	fn := f.flatFor(v, false)
	if fn == nil {
		return Entry{}, false
	}
	idx := addr.FlatIndex(v)
	if !fn.present[idx] {
		return Entry{}, false
	}
	fn.present[idx] = false
	fn.used--
	f.used[addr.L2L1]--
	f.mapped--
	return Entry{PFN: fn.pfns[idx]}, true
}

// WalkInto implements Table: PL4 access, PL3 access, then one directly
// indexed access into the flattened node — 3 sequential accesses instead
// of the radix table's 4 (paper Figure 9).
func (f *Flattened) WalkInto(v addr.V, w *Walk) {
	w.Reset()
	i4 := addr.Index(v, addr.PL4)
	w.Seq = append(w.Seq, Access{addr.PL4, pteAddr(f.root.basePA, i4)})
	n3 := f.root.children[i4]
	if n3 == nil {
		return
	}
	w.Seq = append(w.Seq, Access{addr.PL3, pteAddr(n3.basePA, addr.Index(v, addr.PL3))})
	fn := f.flatAt(pl3Slot(v))
	if fn == nil {
		return
	}
	idx := addr.FlatIndex(v)
	w.Seq = append(w.Seq, Access{addr.L2L1, fn.pteAddr(f.alloc, idx)})
	if !fn.present[idx] {
		return
	}
	w.Found = true
	w.Entry = Entry{PFN: fn.pfns[idx]}
}

// Occupancy implements Table. The L2L1 row reports the paper's "combined
// PL2/PL1" occupancy over 2^18-entry nodes.
func (f *Flattened) Occupancy() []LevelOccupancy {
	out := []LevelOccupancy{
		{Level: addr.PL4, Nodes: f.nodes[addr.PL4], EntriesUsed: f.used[addr.PL4],
			Capacity: f.nodes[addr.PL4] * addr.EntriesPerTable},
		{Level: addr.PL3, Nodes: f.nodes[addr.PL3], EntriesUsed: f.used[addr.PL3],
			Capacity: f.nodes[addr.PL3] * addr.EntriesPerTable},
		{Level: addr.L2L1, Nodes: f.nodes[addr.L2L1], EntriesUsed: f.used[addr.L2L1],
			Capacity: f.nodes[addr.L2L1] * addr.FlatEntries},
	}
	return out
}

// MappedPages implements Table.
func (f *Flattened) MappedPages() uint64 { return f.mapped }

// HugeBackedNodes returns how many flattened nodes obtained a contiguous
// 2 MB physical block versus falling back to chunked frames.
func (f *Flattened) HugeBackedNodes() (huge, chunked uint64) {
	return f.hugeBacked, f.chunkFalls
}
