package pagetable

import (
	"fmt"

	"ndpage/internal/addr"
	"ndpage/internal/phys"
	"ndpage/internal/xrand"
)

// Cuckoo implements an elastic cuckoo hash page table (Skarlatos et al.,
// "Elastic Cuckoo Page Tables", ASPLOS 2020) — the paper's ECH baseline.
//
// Translations live in d independent ways (d = 3), each a separate hash
// table. A lookup computes one slot per way and probes all ways *in
// parallel*: WalkInto reports the probes in Walk.Par, and the MMU charges
// the maximum (not the sum) of their memory latencies. This is ECH's
// advantage over the radix walk's four dependent accesses — and its cost
// is d times the PTE memory traffic, which is what NDPage exploits at
// high core counts.
//
// Elastic resizing follows the ECH scheme: when a way's load factor
// crosses the threshold it begins a gradual migration into a table twice
// the size, tracked by a migration pointer. Entries whose old-table slot
// index is below the pointer have been rehashed into the new table, so a
// lookup still needs exactly one probe per way during resizing.
type Cuckoo struct {
	alloc *phys.Allocator
	ways  []*cuckooWay
	salts []uint64
	count uint64

	// MigrateStep entries are rehashed per insert while a way resizes.
	migrateStep int
	// threshold is the per-way load factor that triggers a resize.
	threshold float64

	stats CuckooStats
}

// CuckooStats counts structural events.
type CuckooStats struct {
	Inserts  uint64
	Kicks    uint64 // displacement steps
	Resizes  uint64 // gradual resizes begun
	Migrated uint64 // entries moved during gradual resizes
}

type cuckooSlot struct {
	vpn  addr.VPN
	pfn  addr.PFN
	full bool
}

type cuckooWay struct {
	slots  []cuckooSlot
	frames []addr.P // one frame per slotsPerFrame slots
	count  int

	// resize state
	resizing  bool
	newSlots  []cuckooSlot
	newFrames []addr.P
	migPtr    int
}

// slotsPerFrame is how many 16-byte slots fit a 4 KB frame.
const slotsPerFrame = addr.PageSize / 16

// slotBytes is the size of one cuckoo PTE slot (VPN tag + PFN + flags).
const slotBytes = 16

// NewCuckoo builds an ECH table with the given initial slots per way
// (rounded up to a power of two; minimum one frame's worth).
func NewCuckoo(alloc *phys.Allocator, initialSlots int) *Cuckoo {
	size := slotsPerFrame
	for size < initialSlots {
		size *= 2
	}
	c := &Cuckoo{
		alloc:       alloc,
		salts:       []uint64{0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9},
		migrateStep: 8,
		threshold:   0.6,
	}
	for range c.salts {
		c.ways = append(c.ways, c.newWay(size))
	}
	return c
}

// Kind implements Table.
func (c *Cuckoo) Kind() string { return "cuckoo" }

// Stats returns a copy of the structural counters.
func (c *Cuckoo) Stats() CuckooStats { return c.stats }

func (c *Cuckoo) newWay(size int) *cuckooWay {
	return &cuckooWay{slots: make([]cuckooSlot, size), frames: c.allocFrames(size)}
}

func (c *Cuckoo) allocFrames(slots int) []addr.P {
	n := (slots + slotsPerFrame - 1) / slotsPerFrame
	frames := make([]addr.P, n)
	for i := range frames {
		pfn, ok := c.alloc.AllocFrame()
		if !ok {
			panic("pagetable: out of physical memory for a cuckoo way")
		}
		frames[i] = pfn.Addr()
	}
	return frames
}

func (c *Cuckoo) hash(w int, vpn addr.VPN, size int) int {
	return int(xrand.Hash64(uint64(vpn)^c.salts[w])) & (size - 1)
}

// slotPA returns the physical address of slot i given the backing frames.
func slotPA(frames []addr.P, i int) addr.P {
	return frames[i/slotsPerFrame] + addr.P((i%slotsPerFrame)*slotBytes)
}

// probe resolves where a lookup for vpn lands in way w: the slot index,
// which table (old or new), and the slot's physical address.
func (c *Cuckoo) probe(w int, vpn addr.VPN) (slots []cuckooSlot, idx int, pa addr.P) {
	way := c.ways[w]
	hOld := c.hash(w, vpn, len(way.slots))
	if way.resizing && hOld < way.migPtr {
		hNew := c.hash(w, vpn, len(way.newSlots))
		return way.newSlots, hNew, slotPA(way.newFrames, hNew)
	}
	return way.slots, hOld, slotPA(way.frames, hOld)
}

// Lookup implements Table.
func (c *Cuckoo) Lookup(vpn addr.VPN) (Entry, bool) {
	for w := range c.ways {
		slots, idx, _ := c.probe(w, vpn)
		if s := slots[idx]; s.full && s.vpn == vpn {
			return Entry{PFN: s.pfn}, true
		}
	}
	return Entry{}, false
}

// WalkInto implements Table: d parallel probes, one per way.
func (c *Cuckoo) WalkInto(v addr.V, w *Walk) {
	w.Reset()
	vpn := v.Page()
	for way := range c.ways {
		slots, idx, pa := c.probe(way, vpn)
		w.Par = append(w.Par, Access{HashLevel, pa})
		if s := slots[idx]; s.full && s.vpn == vpn {
			w.Found = true
			w.Entry = Entry{PFN: s.pfn}
			w.FoundIdx = way
		}
	}
}

// Map implements Table.
func (c *Cuckoo) Map(vpn addr.VPN, pfn addr.PFN) {
	c.stats.Inserts++
	// Update in place if present.
	for w := range c.ways {
		slots, idx, _ := c.probe(w, vpn)
		if s := &slots[idx]; s.full && s.vpn == vpn {
			s.pfn = pfn
			return
		}
	}
	c.advanceMigrations()
	c.insert(vpn, pfn, 0)
	c.count++
	c.maybeResize()
}

// insert places (vpn,pfn) using cuckoo displacement, starting the way
// search at startWay. attempts bounds forced-resize recursion.
func (c *Cuckoo) insert(vpn addr.VPN, pfn addr.PFN, attempts int) {
	if attempts > 8 {
		panic("pagetable: cuckoo insertion failed after repeated resizes")
	}
	cur := cuckooSlot{vpn: vpn, pfn: pfn, full: true}
	w := int(uint64(vpn)) % len(c.ways)
	const maxKicks = 32
	for kick := 0; kick < maxKicks; kick++ {
		slots, idx, _ := c.probe(w, cur.vpn)
		if !slots[idx].full {
			slots[idx] = cur
			c.wayFor(w, slots).count++
			return
		}
		// Displace the occupant and move it to the next way.
		slots[idx], cur = cur, slots[idx]
		c.stats.Kicks++
		w = (w + 1) % len(c.ways)
	}
	// Displacement path exhausted: force a resize of the fullest way
	// and retry with the still-homeless entry.
	c.forceResize()
	c.advanceMigrations()
	c.insert(cur.vpn, cur.pfn, attempts+1)
}

// wayFor maps a slots slice back to its way for count bookkeeping. The
// slice identity tells old from new.
func (c *Cuckoo) wayFor(w int, slots []cuckooSlot) *cuckooWay {
	return c.ways[w]
}

// MapRange implements Table.
func (c *Cuckoo) MapRange(vpn addr.VPN, count uint64, base addr.PFN) {
	for k := uint64(0); k < count; k++ {
		c.Map(vpn+addr.VPN(k), base+addr.PFN(k))
	}
}

// MapHuge implements Table. The ECH design keeps separate per-page-size
// hash tables; this reproduction pairs the Huge Page mechanism with the
// radix table instead, so huge mappings are not supported here.
func (c *Cuckoo) MapHuge(vpn addr.VPN, base addr.PFN) {
	panic("pagetable: cuckoo table does not support huge mappings (use Radix.MapHuge)")
}

// Unmap implements Table.
func (c *Cuckoo) Unmap(vpn addr.VPN) (Entry, bool) {
	for w := range c.ways {
		slots, idx, _ := c.probe(w, vpn)
		if s := &slots[idx]; s.full && s.vpn == vpn {
			e := Entry{PFN: s.pfn}
			*s = cuckooSlot{}
			c.ways[w].count--
			c.count--
			return e, true
		}
	}
	return Entry{}, false
}

// maybeResize begins a gradual resize of any way whose load factor
// crossed the threshold.
func (c *Cuckoo) maybeResize() {
	for _, way := range c.ways {
		if !way.resizing && float64(way.count) > c.threshold*float64(len(way.slots)) {
			c.beginResize(way)
		}
	}
}

// forceResize doubles the fullest non-resizing way (insertion pressure
// relief when displacement fails).
func (c *Cuckoo) forceResize() {
	var target *cuckooWay
	best := -1.0
	for _, way := range c.ways {
		if way.resizing {
			continue
		}
		lf := float64(way.count) / float64(len(way.slots))
		if lf > best {
			best, target = lf, way
		}
	}
	if target == nil {
		// Every way is already resizing; push all migrations to
		// completion to free up space.
		for _, way := range c.ways {
			for way.resizing {
				c.migrate(way, len(way.slots))
			}
		}
		return
	}
	c.beginResize(target)
}

func (c *Cuckoo) beginResize(way *cuckooWay) {
	way.resizing = true
	way.newSlots = make([]cuckooSlot, 2*len(way.slots))
	way.newFrames = c.allocFrames(2 * len(way.slots))
	way.migPtr = 0
	c.stats.Resizes++
}

// advanceMigrations moves migrateStep entries per resizing way.
func (c *Cuckoo) advanceMigrations() {
	for _, way := range c.ways {
		if way.resizing {
			c.migrate(way, c.migrateStep)
		}
	}
}

// migrate rehashes up to n old-table slots of way into its new table.
func (c *Cuckoo) migrate(way *cuckooWay, n int) {
	w := c.wayIndex(way)
	for i := 0; i < n && way.migPtr < len(way.slots); i++ {
		s := way.slots[way.migPtr]
		way.migPtr++
		if !s.full {
			continue
		}
		hNew := c.hash(w, s.vpn, len(way.newSlots))
		if way.newSlots[hNew].full {
			// New-slot collision: bounce the entry through the
			// regular insertion path (it may land in another way).
			way.count--
			c.insert(s.vpn, s.pfn, 0)
		} else {
			way.newSlots[hNew] = s
		}
		c.stats.Migrated++
	}
	if way.migPtr >= len(way.slots) {
		// Migration complete: retire the old table.
		for _, f := range way.frames {
			c.alloc.Free(f.Page())
		}
		way.slots = way.newSlots
		way.frames = way.newFrames
		way.newSlots, way.newFrames = nil, nil
		way.resizing = false
	}
}

func (c *Cuckoo) wayIndex(way *cuckooWay) int {
	for i, w := range c.ways {
		if w == way {
			return i
		}
	}
	panic("pagetable: unknown cuckoo way")
}

// Occupancy implements Table: one pseudo-level row describing overall
// hash-table load.
func (c *Cuckoo) Occupancy() []LevelOccupancy {
	var capacity uint64
	for _, way := range c.ways {
		capacity += uint64(len(way.slots))
		if way.resizing {
			capacity += uint64(len(way.newSlots))
		}
	}
	return []LevelOccupancy{{
		Level:       HashLevel,
		Nodes:       uint64(len(c.ways)),
		EntriesUsed: c.count,
		Capacity:    capacity,
	}}
}

// MappedPages implements Table.
func (c *Cuckoo) MappedPages() uint64 { return c.count }

// LoadFactors returns the per-way load factors, for tests and reports.
func (c *Cuckoo) LoadFactors() []float64 {
	out := make([]float64, len(c.ways))
	for i, way := range c.ways {
		size := len(way.slots)
		if way.resizing {
			size += len(way.newSlots)
		}
		out[i] = float64(way.count) / float64(size)
	}
	return out
}

// String summarizes the table state.
func (c *Cuckoo) String() string {
	return fmt.Sprintf("cuckoo{d=%d, entries=%d, resizes=%d}", len(c.ways), c.count, c.stats.Resizes)
}
