package pagetable

import (
	"fmt"
	"unsafe"

	"ndpage/internal/addr"
	"ndpage/internal/bitset"
	"ndpage/internal/phys"
	"ndpage/internal/xrand"
)

// Cuckoo implements an elastic cuckoo hash page table (Skarlatos et al.,
// "Elastic Cuckoo Page Tables", ASPLOS 2020) — the paper's ECH baseline.
//
// Translations live in d independent ways (d = 3), each a separate hash
// table. A lookup computes one slot per way and probes all ways *in
// parallel*: WalkInto reports the probes in Walk.Par, and the MMU charges
// the maximum (not the sum) of their memory latencies. This is ECH's
// advantage over the radix walk's four dependent accesses — and its cost
// is d times the PTE memory traffic, which is what NDPage exploits at
// high core counts.
//
// Elastic resizing follows the ECH scheme: when a way's load factor
// crosses the threshold it begins a gradual migration into a table twice
// the size, tracked by a migration pointer. Entries whose old-table slot
// index is below the pointer have been rehashed into the new table, so a
// lookup still needs exactly one probe per way during resizing.
type Cuckoo struct {
	alloc *phys.Allocator
	ways  []*cuckooWay
	salts []uint64
	count uint64

	// MigrateStep entries are rehashed per insert while a way resizes.
	migrateStep int
	// threshold is the per-way load factor that triggers a resize.
	threshold float64

	stats CuckooStats
}

// CuckooStats counts structural events.
type CuckooStats struct {
	Inserts  uint64
	Kicks    uint64 // displacement steps
	Resizes  uint64 // gradual resizes begun
	Migrated uint64 // entries moved during gradual resizes
}

// cuckooSlot is one hash-table entry: exactly slotBytes wide, matching
// the modelled PTE. Occupancy lives outside the slot array in a per-way
// bitmap, so the slot stays two words and a lookup's emptiness test
// reads bit-packed metadata instead of a padded bool per slot.
type cuckooSlot struct {
	vpn addr.VPN
	pfn addr.PFN
}

// cuckooTab is one hash table (a way's old or new array during gradual
// resizing): the slots, their occupancy bitmap, and the backing frames.
type cuckooTab struct {
	slots  []cuckooSlot
	occ    []uint64 // one bit per slot
	frames []addr.P // one frame per slotsPerFrame slots
}

// full reports whether slot i holds an entry.
func (t *cuckooTab) full(i int) bool { return bitset.TestBit(t.occ, uint64(i)) }

type cuckooWay struct {
	cuckooTab
	count int

	// resize state
	resizing bool
	newTab   cuckooTab
	migPtr   int
}

// slotsPerFrame is how many 16-byte slots fit a 4 KB frame.
const slotsPerFrame = addr.PageSize / 16

// slotBytes is the size of one cuckoo PTE slot (VPN tag + PFN + flags).
const slotBytes = 16

// NewCuckoo builds an ECH table with the given initial slots per way
// (rounded up to a power of two; minimum one frame's worth).
func NewCuckoo(alloc *phys.Allocator, initialSlots int) *Cuckoo {
	size := slotsPerFrame
	for size < initialSlots {
		size *= 2
	}
	c := &Cuckoo{
		alloc:       alloc,
		salts:       []uint64{0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9},
		migrateStep: 8,
		threshold:   0.6,
	}
	for range c.salts {
		c.ways = append(c.ways, c.newWay(size))
	}
	return c
}

// Kind implements Table.
func (c *Cuckoo) Kind() string { return "cuckoo" }

// Stats returns a copy of the structural counters.
func (c *Cuckoo) Stats() CuckooStats { return c.stats }

func (c *Cuckoo) newWay(size int) *cuckooWay {
	return &cuckooWay{cuckooTab: c.newTab(size)}
}

// newTab builds one hash table of size slots.
func (c *Cuckoo) newTab(size int) cuckooTab {
	return cuckooTab{
		slots:  make([]cuckooSlot, size),
		occ:    make([]uint64, bitset.WordsFor(uint64(size))),
		frames: c.allocFrames(size),
	}
}

func (c *Cuckoo) allocFrames(slots int) []addr.P {
	n := (slots + slotsPerFrame - 1) / slotsPerFrame
	frames := make([]addr.P, n)
	for i := range frames {
		pfn, ok := c.alloc.AllocFrame()
		if !ok {
			panic("pagetable: out of physical memory for a cuckoo way")
		}
		frames[i] = pfn.Addr()
	}
	return frames
}

func (c *Cuckoo) hash(w int, vpn addr.VPN, size int) int {
	return int(xrand.Hash64(uint64(vpn)^c.salts[w])) & (size - 1)
}

// slotPA returns the physical address of slot i given the backing frames.
func slotPA(frames []addr.P, i int) addr.P {
	return frames[i/slotsPerFrame] + addr.P((i%slotsPerFrame)*slotBytes)
}

// probe resolves where a lookup for vpn lands in way w: the table (old,
// or new during gradual resizing), the slot index, and the slot's
// physical address.
func (c *Cuckoo) probe(w int, vpn addr.VPN) (tab *cuckooTab, idx int, pa addr.P) {
	way := c.ways[w]
	hOld := c.hash(w, vpn, len(way.slots))
	if way.resizing && hOld < way.migPtr {
		hNew := c.hash(w, vpn, len(way.newTab.slots))
		return &way.newTab, hNew, slotPA(way.newTab.frames, hNew)
	}
	return &way.cuckooTab, hOld, slotPA(way.frames, hOld)
}

// Lookup implements Table.
func (c *Cuckoo) Lookup(vpn addr.VPN) (Entry, bool) {
	for w := range c.ways {
		tab, idx, _ := c.probe(w, vpn)
		if tab.full(idx) && tab.slots[idx].vpn == vpn {
			return Entry{PFN: tab.slots[idx].pfn}, true
		}
	}
	return Entry{}, false
}

// Present implements Table: the demand-paging fast predicate. The probe
// already tags each slot with its VPN, so presence is the same d-way
// probe without constructing an Entry.
func (c *Cuckoo) Present(vpn addr.VPN) bool {
	for w := range c.ways {
		tab, idx, _ := c.probe(w, vpn)
		if tab.full(idx) && tab.slots[idx].vpn == vpn {
			return true
		}
	}
	return false
}

// WalkInto implements Table: d parallel probes, one per way.
func (c *Cuckoo) WalkInto(v addr.V, w *Walk) {
	w.Reset()
	vpn := v.Page()
	for way := range c.ways {
		tab, idx, pa := c.probe(way, vpn)
		w.Par = append(w.Par, Access{HashLevel, pa})
		if tab.full(idx) && tab.slots[idx].vpn == vpn {
			w.Found = true
			w.Entry = Entry{PFN: tab.slots[idx].pfn}
			w.FoundIdx = way
		}
	}
}

// Map implements Table.
func (c *Cuckoo) Map(vpn addr.VPN, pfn addr.PFN) {
	c.stats.Inserts++
	// Update in place if present.
	for w := range c.ways {
		tab, idx, _ := c.probe(w, vpn)
		if tab.full(idx) && tab.slots[idx].vpn == vpn {
			tab.slots[idx].pfn = pfn
			return
		}
	}
	c.advanceMigrations()
	c.insert(vpn, pfn, 0)
	c.count++
	c.maybeResize()
}

// insert places (vpn,pfn) using cuckoo displacement, starting the way
// search at startWay. attempts bounds forced-resize recursion.
func (c *Cuckoo) insert(vpn addr.VPN, pfn addr.PFN, attempts int) {
	if attempts > 8 {
		panic("pagetable: cuckoo insertion failed after repeated resizes")
	}
	cur := cuckooSlot{vpn: vpn, pfn: pfn}
	w := int(uint64(vpn)) % len(c.ways)
	const maxKicks = 32
	for kick := 0; kick < maxKicks; kick++ {
		tab, idx, _ := c.probe(w, cur.vpn)
		if bitset.SetBit(tab.occ, uint64(idx)) {
			tab.slots[idx] = cur
			c.ways[w].count++
			return
		}
		// Displace the occupant and move it to the next way.
		tab.slots[idx], cur = cur, tab.slots[idx]
		c.stats.Kicks++
		w = (w + 1) % len(c.ways)
	}
	// Displacement path exhausted: force a resize of the fullest way
	// and retry with the still-homeless entry.
	c.forceResize()
	c.advanceMigrations()
	c.insert(cur.vpn, cur.pfn, attempts+1)
}

// MapRange implements Table.
func (c *Cuckoo) MapRange(vpn addr.VPN, count uint64, base addr.PFN) {
	for k := uint64(0); k < count; k++ {
		c.Map(vpn+addr.VPN(k), base+addr.PFN(k))
	}
}

// MapHuge implements Table. The ECH design keeps separate per-page-size
// hash tables; this reproduction pairs the Huge Page mechanism with the
// radix table instead, so huge mappings are not supported here.
func (c *Cuckoo) MapHuge(vpn addr.VPN, base addr.PFN) {
	panic("pagetable: cuckoo table does not support huge mappings (use Radix.MapHuge)")
}

// Unmap implements Table.
func (c *Cuckoo) Unmap(vpn addr.VPN) (Entry, bool) {
	for w := range c.ways {
		tab, idx, _ := c.probe(w, vpn)
		if tab.full(idx) && tab.slots[idx].vpn == vpn {
			e := Entry{PFN: tab.slots[idx].pfn}
			tab.slots[idx] = cuckooSlot{}
			bitset.ClearBit(tab.occ, uint64(idx))
			c.ways[w].count--
			c.count--
			return e, true
		}
	}
	return Entry{}, false
}

// maybeResize begins a gradual resize of any way whose load factor
// crossed the threshold.
func (c *Cuckoo) maybeResize() {
	for _, way := range c.ways {
		if !way.resizing && float64(way.count) > c.threshold*float64(len(way.slots)) {
			c.beginResize(way)
		}
	}
}

// forceResize doubles the fullest non-resizing way (insertion pressure
// relief when displacement fails).
func (c *Cuckoo) forceResize() {
	var target *cuckooWay
	best := -1.0
	for _, way := range c.ways {
		if way.resizing {
			continue
		}
		lf := float64(way.count) / float64(len(way.slots))
		if lf > best {
			best, target = lf, way
		}
	}
	if target == nil {
		// Every way is already resizing; push all migrations to
		// completion to free up space.
		for _, way := range c.ways {
			for way.resizing {
				c.migrate(way, len(way.slots))
			}
		}
		return
	}
	c.beginResize(target)
}

func (c *Cuckoo) beginResize(way *cuckooWay) {
	way.resizing = true
	way.newTab = c.newTab(2 * len(way.slots))
	way.migPtr = 0
	c.stats.Resizes++
}

// advanceMigrations moves migrateStep entries per resizing way.
func (c *Cuckoo) advanceMigrations() {
	for _, way := range c.ways {
		if way.resizing {
			c.migrate(way, c.migrateStep)
		}
	}
}

// migrate rehashes up to n old-table slots of way into its new table.
func (c *Cuckoo) migrate(way *cuckooWay, n int) {
	w := c.wayIndex(way)
	for i := 0; i < n && way.migPtr < len(way.slots); i++ {
		i0 := way.migPtr
		s := way.slots[i0]
		way.migPtr++
		if !way.full(i0) {
			continue
		}
		hNew := c.hash(w, s.vpn, len(way.newTab.slots))
		if !bitset.SetBit(way.newTab.occ, uint64(hNew)) {
			// New-slot collision: bounce the entry through the
			// regular insertion path (it may land in another way).
			way.count--
			c.insert(s.vpn, s.pfn, 0)
		} else {
			way.newTab.slots[hNew] = s
		}
		c.stats.Migrated++
	}
	if way.migPtr >= len(way.slots) {
		// Migration complete: retire the old table.
		for _, f := range way.frames {
			c.alloc.Free(f.Page())
		}
		way.cuckooTab = way.newTab
		way.newTab = cuckooTab{}
		way.resizing = false
	}
}

func (c *Cuckoo) wayIndex(way *cuckooWay) int {
	for i, w := range c.ways {
		if w == way {
			return i
		}
	}
	panic("pagetable: unknown cuckoo way")
}

// Occupancy implements Table: one pseudo-level row describing overall
// hash-table load.
func (c *Cuckoo) Occupancy() []LevelOccupancy {
	var capacity uint64
	for _, way := range c.ways {
		capacity += uint64(len(way.slots))
		if way.resizing {
			capacity += uint64(len(way.newTab.slots))
		}
	}
	return []LevelOccupancy{{
		Level:       HashLevel,
		Nodes:       uint64(len(c.ways)),
		EntriesUsed: c.count,
		Capacity:    capacity,
	}}
}

// MappedPages implements Table.
func (c *Cuckoo) MappedPages() uint64 { return c.count }

// MetadataBytes implements Table: the slot arrays, their occupancy
// bitmaps, and backing-frame directories of every way (old and new
// tables both, during gradual resizing).
func (c *Cuckoo) MetadataBytes() uint64 {
	tab := func(t *cuckooTab) uint64 {
		return uint64(len(t.slots))*uint64(unsafe.Sizeof(cuckooSlot{})) +
			uint64(len(t.occ))*8 + uint64(len(t.frames))*8
	}
	var total uint64
	for _, way := range c.ways {
		total += tab(&way.cuckooTab)
		if way.resizing {
			total += tab(&way.newTab)
		}
	}
	return total
}

// LoadFactors returns the per-way load factors, for tests and reports.
func (c *Cuckoo) LoadFactors() []float64 {
	out := make([]float64, len(c.ways))
	for i, way := range c.ways {
		size := len(way.slots)
		if way.resizing {
			size += len(way.newTab.slots)
		}
		out[i] = float64(way.count) / float64(size)
	}
	return out
}

// String summarizes the table state.
func (c *Cuckoo) String() string {
	return fmt.Sprintf("cuckoo{d=%d, entries=%d, resizes=%d}", len(c.ways), c.count, c.stats.Resizes)
}
