package pagetable

import (
	"testing"
	"testing/quick"

	"ndpage/internal/addr"
	"ndpage/internal/xrand"
)

func TestCuckooMapLookup(t *testing.T) {
	c := NewCuckoo(newAlloc(), 1024)
	if _, ok := c.Lookup(42); ok {
		t.Fatal("empty table lookup hit")
	}
	c.Map(42, 1000)
	e, ok := c.Lookup(42)
	if !ok || e.PFN != 1000 {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	c.Map(42, 2000)
	if e, _ := c.Lookup(42); e.PFN != 2000 {
		t.Error("remap did not update in place")
	}
	if c.MappedPages() != 1 {
		t.Errorf("MappedPages = %d, want 1", c.MappedPages())
	}
}

func TestCuckooWalkIsParallel(t *testing.T) {
	c := NewCuckoo(newAlloc(), 1024)
	c.Map(7, 77)
	var w Walk
	c.WalkInto(addr.VPN(7).Addr(), &w)
	if !w.Found || w.Entry.PFN != 77 {
		t.Fatalf("walk = %+v", w)
	}
	if len(w.Par) != 3 || len(w.Seq) != 0 {
		t.Fatalf("ECH walk must be 3 parallel probes, got par=%d seq=%d",
			len(w.Par), len(w.Seq))
	}
	for _, a := range w.Par {
		if a.Level != HashLevel {
			t.Errorf("probe level = %v, want HashLevel", a.Level)
		}
	}
}

func TestCuckooMissedWalkStillProbesAllWays(t *testing.T) {
	c := NewCuckoo(newAlloc(), 1024)
	var w Walk
	c.WalkInto(addr.VPN(123).Addr(), &w)
	if w.Found || len(w.Par) != 3 {
		t.Fatalf("miss walk = %+v", w)
	}
}

func TestCuckooManyInsertsAllRetrievable(t *testing.T) {
	c := NewCuckoo(newAlloc(), 512)
	rng := xrand.New(11)
	want := map[addr.VPN]addr.PFN{}
	for i := 0; i < 50000; i++ {
		vpn := addr.VPN(rng.Uint64n(1 << 40))
		pfn := addr.PFN(i)
		c.Map(vpn, pfn)
		want[vpn] = pfn
	}
	if c.MappedPages() != uint64(len(want)) {
		t.Fatalf("MappedPages = %d, want %d", c.MappedPages(), len(want))
	}
	for vpn, pfn := range want {
		e, ok := c.Lookup(vpn)
		if !ok || e.PFN != pfn {
			t.Fatalf("vpn %#x: got %+v/%v want pfn %d", uint64(vpn), e, ok, pfn)
		}
	}
	if c.Stats().Resizes == 0 {
		t.Error("50k inserts into 512-slot ways must have resized")
	}
}

func TestCuckooLoadFactorBounded(t *testing.T) {
	c := NewCuckoo(newAlloc(), 512)
	rng := xrand.New(13)
	for i := 0; i < 20000; i++ {
		c.Map(addr.VPN(rng.Uint64n(1<<40)), addr.PFN(i))
	}
	for w, lf := range c.LoadFactors() {
		if lf > 0.85 {
			t.Errorf("way %d load factor %.2f exceeds bound", w, lf)
		}
	}
}

func TestCuckooResizePreservesEntriesDuringMigration(t *testing.T) {
	c := NewCuckoo(newAlloc(), 512)
	rng := xrand.New(17)
	var keys []addr.VPN
	// Insert enough to trigger a resize but not complete migration, then
	// verify every key mid-migration.
	for i := 0; i < 400; i++ {
		vpn := addr.VPN(rng.Uint64n(1 << 40))
		c.Map(vpn, addr.PFN(i))
		keys = append(keys, vpn)
		for j, k := range keys {
			if e, ok := c.Lookup(k); !ok || e.PFN != addr.PFN(j) {
				t.Fatalf("after insert %d: key %d lost (%+v, %v)", i, j, e, ok)
			}
		}
	}
}

func TestCuckooMapHugePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MapHuge on cuckoo did not panic")
		}
	}()
	NewCuckoo(newAlloc(), 512).MapHuge(0, 0)
}

func TestCuckooProbeAddressesDistinctWays(t *testing.T) {
	c := NewCuckoo(newAlloc(), 1024)
	var w Walk
	c.WalkInto(addr.VPN(99).Addr(), &w)
	seen := map[addr.P]bool{}
	for _, a := range w.Par {
		if seen[a.PA] {
			t.Errorf("two ways probed the same physical slot %#x", uint64(a.PA))
		}
		seen[a.PA] = true
	}
}

func TestCuckooOccupancyReport(t *testing.T) {
	c := NewCuckoo(newAlloc(), 1024)
	for i := 0; i < 100; i++ {
		c.Map(addr.VPN(i*977), addr.PFN(i))
	}
	occ := c.Occupancy()
	if len(occ) != 1 || occ[0].Level != HashLevel {
		t.Fatalf("occupancy = %+v", occ)
	}
	if occ[0].EntriesUsed != 100 || occ[0].Nodes != 3 {
		t.Errorf("occupancy row = %+v", occ[0])
	}
}

func TestCuckooMapRange(t *testing.T) {
	c := NewCuckoo(newAlloc(), 1024)
	c.MapRange(100, 600, 9000)
	for _, k := range []uint64{0, 599} {
		e, ok := c.Lookup(addr.VPN(100 + k))
		if !ok || e.PFN != addr.PFN(9000+k) {
			t.Fatalf("range page +%d: %+v, %v", k, e, ok)
		}
	}
}

// Property: Map then Lookup agrees for arbitrary key sets (cuckoo vs a
// plain map as the model).
func TestCuckooMatchesModel(t *testing.T) {
	f := func(raw []uint32) bool {
		c := NewCuckoo(newAlloc(), 256)
		model := map[addr.VPN]addr.PFN{}
		for i, r := range raw {
			vpn := addr.VPN(r)
			pfn := addr.PFN(i)
			c.Map(vpn, pfn)
			model[vpn] = pfn
		}
		for vpn, pfn := range model {
			if e, ok := c.Lookup(vpn); !ok || e.PFN != pfn {
				return false
			}
		}
		return c.MappedPages() == uint64(len(model))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCuckooDeterministic(t *testing.T) {
	run := func() CuckooStats {
		c := NewCuckoo(newAlloc(), 256)
		rng := xrand.New(5)
		for i := 0; i < 5000; i++ {
			c.Map(addr.VPN(rng.Uint64n(1<<30)), addr.PFN(i))
		}
		return c.Stats()
	}
	if run() != run() {
		t.Error("cuckoo construction is not deterministic")
	}
}
