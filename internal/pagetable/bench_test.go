package pagetable

import (
	"testing"

	"ndpage/internal/addr"
	"ndpage/internal/phys"
	"ndpage/internal/xrand"
)

// benchTable populates a table with mixed dense+sparse mappings.
func benchTable(b *testing.B, t Table) []addr.V {
	b.Helper()
	t.MapRange(0, 1<<16, 0) // 256 MB dense
	rng := xrand.New(1)
	addrs := make([]addr.V, 4096)
	for i := range addrs {
		vpn := addr.VPN(rng.Uint64n(1 << 16))
		addrs[i] = vpn.Addr()
	}
	return addrs
}

func BenchmarkRadixWalk(b *testing.B) {
	t := NewRadix(phys.New(1 << 30))
	addrs := benchTable(b, t)
	var w Walk
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.WalkInto(addrs[i&4095], &w)
	}
}

func BenchmarkFlattenedWalk(b *testing.B) {
	t := NewFlattened(phys.New(1 << 30))
	addrs := benchTable(b, t)
	var w Walk
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.WalkInto(addrs[i&4095], &w)
	}
}

func BenchmarkCuckooWalk(b *testing.B) {
	t := NewCuckoo(phys.New(1<<30), 4096)
	addrs := benchTable(b, t)
	var w Walk
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.WalkInto(addrs[i&4095], &w)
	}
}

func BenchmarkRadixMapRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := NewRadix(phys.New(1 << 30))
		t.MapRange(0, 1<<16, 0)
	}
}

func BenchmarkCuckooInsert(b *testing.B) {
	t := NewCuckoo(phys.New(1<<30), 1<<16)
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Map(addr.VPN(rng.Uint64n(1<<40)), addr.PFN(i))
	}
}

func BenchmarkRadixLookup(b *testing.B) {
	t := NewRadix(phys.New(1 << 30))
	addrs := benchTable(b, t)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(addrs[i&4095].Page())
	}
}
