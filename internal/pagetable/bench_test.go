package pagetable

import (
	"testing"

	"ndpage/internal/addr"
	"ndpage/internal/phys"
	"ndpage/internal/xrand"
)

// benchTable populates a table with mixed dense+sparse mappings.
func benchTable(b *testing.B, t Table) []addr.V {
	b.Helper()
	t.MapRange(0, 1<<16, 0) // 256 MB dense
	rng := xrand.New(1)
	addrs := make([]addr.V, 4096)
	for i := range addrs {
		vpn := addr.VPN(rng.Uint64n(1 << 16))
		addrs[i] = vpn.Addr()
	}
	return addrs
}

func BenchmarkRadixWalk(b *testing.B) {
	t := NewRadix(phys.New(1 << 30))
	addrs := benchTable(b, t)
	var w Walk
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.WalkInto(addrs[i&4095], &w)
	}
}

func BenchmarkFlattenedWalk(b *testing.B) {
	t := NewFlattened(phys.New(1 << 30))
	addrs := benchTable(b, t)
	var w Walk
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.WalkInto(addrs[i&4095], &w)
	}
}

func BenchmarkCuckooWalk(b *testing.B) {
	t := NewCuckoo(phys.New(1<<30), 4096)
	addrs := benchTable(b, t)
	var w Walk
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.WalkInto(addrs[i&4095], &w)
	}
}

func BenchmarkRadixMapRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := NewRadix(phys.New(1 << 30))
		t.MapRange(0, 1<<16, 0)
	}
}

func BenchmarkCuckooInsert(b *testing.B) {
	t := NewCuckoo(phys.New(1<<30), 1<<16)
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Map(addr.VPN(rng.Uint64n(1<<40)), addr.PFN(i))
	}
}

func BenchmarkRadixLookup(b *testing.B) {
	t := NewRadix(phys.New(1 << 30))
	addrs := benchTable(b, t)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(addrs[i&4095].Page())
	}
}

// benchSparseTable maps a handful of pages per 1 GB region across many
// regions, so lookups cross flat nodes and land in lazily materialized
// chunks.
func benchSparseTable(b *testing.B, t Table) []addr.V {
	b.Helper()
	rng := xrand.New(3)
	addrs := make([]addr.V, 4096)
	for i := range addrs {
		region := rng.Uint64n(64) << 18 // one of 64 flat nodes
		vpn := addr.VPN(region + rng.Uint64n(addr.FlatEntries))
		t.Map(vpn, addr.PFN(i))
		addrs[i] = vpn.Addr()
	}
	return addrs
}

func BenchmarkFlattenedLookup(b *testing.B) {
	b.Run("dense", func(b *testing.B) {
		t := NewFlattened(phys.New(1 << 30))
		addrs := benchTable(b, t)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Lookup(addrs[i&4095].Page())
		}
	})
	b.Run("sparse", func(b *testing.B) {
		t := NewFlattened(phys.New(1 << 32))
		addrs := benchSparseTable(b, t)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Lookup(addrs[i&4095].Page())
		}
	})
}

func BenchmarkFlattenedPresent(b *testing.B) {
	t := NewFlattened(phys.New(1 << 30))
	addrs := benchTable(b, t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Present(addrs[i&4095].Page())
	}
}

// BenchmarkFlattenedReferenceSweep populates the reference sweep — a
// dense 1 GB region plus scattered pages across 63 more — and reports
// resident metadata per mapped page, the bytes_per_mapped_page metric
// scripts/bench.sh records and gates.
func BenchmarkFlattenedReferenceSweep(b *testing.B) {
	var perPage float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := NewFlattened(phys.New(1 << 32))
		t.MapRange(0, addr.FlatEntries, 0) // dense 1 GB
		rng := xrand.New(5)
		for j := 0; j < 1<<14; j++ { // sparse tail over 63 GB
			region := (1 + rng.Uint64n(63)) << 18
			t.Map(addr.VPN(region+rng.Uint64n(addr.FlatEntries)), addr.PFN(j))
		}
		perPage = float64(t.MetadataBytes()) / float64(t.MappedPages())
	}
	b.ReportMetric(perPage, "bytes/page")
}
