package pagetable

import (
	"fmt"
	"unsafe"

	"ndpage/internal/addr"
	"ndpage/internal/bitset"
	"ndpage/internal/phys"
)

// nodeWords is the size of one node-level present bitmap: one bit per
// table entry, packed into uint64 words (8 words = 64 B — one cache
// line — instead of a 512-byte bool array).
const nodeWords = addr.EntriesPerTable / 64

// radixNode is one 4 KB table node. Interior nodes hold child pointers;
// PL2 nodes may also hold 2 MB leaf entries; PL1 nodes hold frame numbers.
type radixNode struct {
	basePA addr.P
	level  addr.Level
	used   int
	// children is populated for interior nodes (PL4, PL3, PL2).
	children []*radixNode
	// hugeLeaf marks PL2 slots that are 2 MB leaf entries; hugePFN holds
	// the base frame. Only allocated for PL2 nodes that need it.
	hugeLeaf []uint64
	hugePFN  []addr.PFN
	// pfns/present are populated for PL1 leaf nodes; present is a
	// bit-packed entry bitmap.
	pfns    []addr.PFN
	present []uint64
}

// isHuge reports whether PL2 slot idx of n holds a 2 MB leaf entry.
func (n *radixNode) isHuge(idx uint64) bool {
	return n.hugeLeaf != nil && bitset.TestBit(n.hugeLeaf, idx)
}

// levelCounts is a dense per-level counter array indexed by addr.Level
// (PL1..L2L1), replacing the map the occupancy bookkeeping used to key
// through: Map/Unmap touch these counters on every call and a map
// bucket probe per mapped page is measurable at population scale.
type levelCounts [addr.L2L1 + 1]uint64

// Radix is the conventional x86-64 4-level page table. It also serves the
// Huge Page mechanism via MapHuge (2 MB leaves at PL2).
type Radix struct {
	alloc  *phys.Allocator
	root   *radixNode
	nodes  levelCounts
	used   levelCounts
	mapped uint64
	// hugeNodes counts PL2 nodes that allocated huge-leaf side arrays
	// (metadata accounting only).
	hugeNodes uint64
}

// NewRadix builds an empty 4-level table whose nodes are backed by frames
// from alloc.
func NewRadix(alloc *phys.Allocator) *Radix {
	r := &Radix{alloc: alloc}
	r.root = r.newNode(addr.PL4)
	return r
}

// Kind implements Table.
func (r *Radix) Kind() string { return "radix" }

func (r *Radix) newNode(level addr.Level) *radixNode {
	pfn, ok := r.alloc.AllocFrame()
	if !ok {
		panic("pagetable: out of physical memory for a radix node")
	}
	n := &radixNode{basePA: pfn.Addr(), level: level}
	if level == addr.PL1 {
		n.pfns = make([]addr.PFN, addr.EntriesPerTable)
		n.present = make([]uint64, nodeWords)
	} else {
		n.children = make([]*radixNode, addr.EntriesPerTable)
	}
	r.nodes[level]++
	return n
}

// child returns (creating if create is set) the child node under n at idx.
func (r *Radix) child(n *radixNode, idx uint64, create bool) *radixNode {
	if c := n.children[idx]; c != nil {
		return c
	}
	if !create {
		return nil
	}
	var lvl addr.Level
	switch n.level {
	case addr.PL4:
		lvl = addr.PL3
	case addr.PL3:
		lvl = addr.PL2
	case addr.PL2:
		lvl = addr.PL1
	default:
		panic("pagetable: child of leaf level")
	}
	c := r.newNode(lvl)
	n.children[idx] = c
	n.used++
	r.used[n.level]++
	return c
}

// pl1For returns the PL1 node covering vpn, creating the path if needed.
func (r *Radix) pl1For(vpn addr.VPN, create bool) *radixNode {
	v := vpn.Addr()
	n := r.child(r.root, addr.Index(v, addr.PL4), create)
	if n == nil {
		return nil
	}
	n = r.child(n, addr.Index(v, addr.PL3), create)
	if n == nil {
		return nil
	}
	i2 := addr.Index(v, addr.PL2)
	if n.isHuge(i2) {
		panic(fmt.Sprintf("pagetable: 4K map under existing 2MB mapping at vpn %#x", uint64(vpn)))
	}
	return r.child(n, i2, create)
}

// Map implements Table.
func (r *Radix) Map(vpn addr.VPN, pfn addr.PFN) {
	leaf := r.pl1For(vpn, true)
	i1 := addr.Index(vpn.Addr(), addr.PL1)
	if bitset.SetBit(leaf.present, i1) {
		leaf.used++
		r.used[addr.PL1]++
		r.mapped++
	}
	leaf.pfns[i1] = pfn
}

// MapRange implements Table with a fast path that fills PL1 nodes block
// by block.
func (r *Radix) MapRange(vpn addr.VPN, count uint64, base addr.PFN) {
	for count > 0 {
		leaf := r.pl1For(vpn, true)
		i1 := addr.Index(vpn.Addr(), addr.PL1)
		n := addr.EntriesPerTable - i1
		if n > count {
			n = count
		}
		fresh := bitset.SetRun(leaf.present, i1, n)
		leaf.used += int(fresh)
		r.used[addr.PL1] += fresh
		r.mapped += fresh
		for k := uint64(0); k < n; k++ {
			leaf.pfns[i1+k] = base + addr.PFN(k)
		}
		vpn += addr.VPN(n)
		base += addr.PFN(n)
		count -= n
	}
}

// MapHuge implements Table: installs a 2 MB leaf at PL2.
func (r *Radix) MapHuge(vpn addr.VPN, base addr.PFN) {
	if !vpn.HugeAligned() {
		panic(fmt.Sprintf("pagetable: MapHuge of unaligned vpn %#x", uint64(vpn)))
	}
	v := vpn.Addr()
	n := r.child(r.root, addr.Index(v, addr.PL4), true)
	n = r.child(n, addr.Index(v, addr.PL3), true)
	i2 := addr.Index(v, addr.PL2)
	if n.children[i2] != nil {
		panic(fmt.Sprintf("pagetable: 2MB map over existing 4K table at vpn %#x", uint64(vpn)))
	}
	if n.hugeLeaf == nil {
		n.hugeLeaf = make([]uint64, nodeWords)
		n.hugePFN = make([]addr.PFN, addr.EntriesPerTable)
		r.hugeNodes++
	}
	if bitset.SetBit(n.hugeLeaf, i2) {
		n.used++
		r.used[n.level]++
		r.mapped += addr.EntriesPerTable
	}
	n.hugePFN[i2] = base
}

// Lookup implements Table.
func (r *Radix) Lookup(vpn addr.VPN) (Entry, bool) {
	v := vpn.Addr()
	n := r.root.children[addr.Index(v, addr.PL4)]
	if n == nil {
		return Entry{}, false
	}
	n = n.children[addr.Index(v, addr.PL3)]
	if n == nil {
		return Entry{}, false
	}
	i2 := addr.Index(v, addr.PL2)
	if n.isHuge(i2) {
		return Entry{PFN: n.hugePFN[i2], Huge: true}, true
	}
	leaf := n.children[i2]
	if leaf == nil {
		return Entry{}, false
	}
	i1 := addr.Index(v, addr.PL1)
	if !bitset.TestBit(leaf.present, i1) {
		return Entry{}, false
	}
	return Entry{PFN: leaf.pfns[i1]}, true
}

// Present implements Table: the demand-paging fast predicate — the same
// descent as Lookup but reading only present bits, never frame numbers.
func (r *Radix) Present(vpn addr.VPN) bool {
	v := vpn.Addr()
	n := r.root.children[addr.Index(v, addr.PL4)]
	if n == nil {
		return false
	}
	n = n.children[addr.Index(v, addr.PL3)]
	if n == nil {
		return false
	}
	i2 := addr.Index(v, addr.PL2)
	if n.isHuge(i2) {
		return true
	}
	leaf := n.children[i2]
	return leaf != nil && bitset.TestBit(leaf.present, addr.Index(v, addr.PL1))
}

// Unmap implements Table.
func (r *Radix) Unmap(vpn addr.VPN) (Entry, bool) {
	v := vpn.Addr()
	n := r.root.children[addr.Index(v, addr.PL4)]
	if n == nil {
		return Entry{}, false
	}
	n = n.children[addr.Index(v, addr.PL3)]
	if n == nil {
		return Entry{}, false
	}
	i2 := addr.Index(v, addr.PL2)
	if n.isHuge(i2) {
		bitset.ClearBit(n.hugeLeaf, i2)
		n.used--
		r.used[addr.PL2]--
		r.mapped -= addr.EntriesPerTable
		return Entry{PFN: n.hugePFN[i2], Huge: true}, true
	}
	leaf := n.children[i2]
	if leaf == nil {
		return Entry{}, false
	}
	i1 := addr.Index(v, addr.PL1)
	if !bitset.ClearBit(leaf.present, i1) {
		return Entry{}, false
	}
	leaf.used--
	r.used[addr.PL1]--
	r.mapped--
	return Entry{PFN: leaf.pfns[i1]}, true
}

// WalkInto implements Table: a sequential walk from PL4 downward. The walk
// records every PTE it reads, stopping at the first non-present entry or
// at the leaf (PL1 entry, or a 2 MB leaf at PL2).
func (r *Radix) WalkInto(v addr.V, w *Walk) {
	w.Reset()
	n := r.root
	w.Seq = append(w.Seq, Access{addr.PL4, pteAddr(n.basePA, addr.Index(v, addr.PL4))})
	n = n.children[addr.Index(v, addr.PL4)]
	if n == nil {
		return
	}
	w.Seq = append(w.Seq, Access{addr.PL3, pteAddr(n.basePA, addr.Index(v, addr.PL3))})
	n = n.children[addr.Index(v, addr.PL3)]
	if n == nil {
		return
	}
	i2 := addr.Index(v, addr.PL2)
	w.Seq = append(w.Seq, Access{addr.PL2, pteAddr(n.basePA, i2)})
	if n.isHuge(i2) {
		w.Found = true
		w.Entry = Entry{PFN: n.hugePFN[i2], Huge: true}
		return
	}
	leaf := n.children[i2]
	if leaf == nil {
		return
	}
	i1 := addr.Index(v, addr.PL1)
	w.Seq = append(w.Seq, Access{addr.PL1, pteAddr(leaf.basePA, i1)})
	if !bitset.TestBit(leaf.present, i1) {
		return
	}
	w.Found = true
	w.Entry = Entry{PFN: leaf.pfns[i1]}
}

// pteAddr returns the physical address of entry idx in the table at base.
func pteAddr(base addr.P, idx uint64) addr.P {
	return base + addr.P(idx*addr.PTESize)
}

// Occupancy implements Table.
func (r *Radix) Occupancy() []LevelOccupancy {
	levels := []addr.Level{addr.PL4, addr.PL3, addr.PL2, addr.PL1}
	out := make([]LevelOccupancy, 0, len(levels))
	for _, l := range levels {
		out = append(out, LevelOccupancy{
			Level:       l,
			Nodes:       r.nodes[l],
			EntriesUsed: r.used[l],
			Capacity:    r.nodes[l] * addr.EntriesPerTable,
		})
	}
	return out
}

// MappedPages implements Table.
func (r *Radix) MappedPages() uint64 { return r.mapped }

// MetadataBytes implements Table: the simulator-side resident metadata,
// computed from the per-level node counts (interior nodes carry a
// 512-pointer child directory, PL1 leaves a frame array plus the
// bit-packed present set).
func (r *Radix) MetadataBytes() uint64 {
	const ptr = uint64(unsafe.Sizeof((*radixNode)(nil)))
	node := uint64(unsafe.Sizeof(radixNode{}))
	interior := r.nodes[addr.PL4] + r.nodes[addr.PL3] + r.nodes[addr.PL2]
	total := interior*(node+addr.EntriesPerTable*ptr) +
		r.nodes[addr.PL1]*(node+addr.EntriesPerTable*8+nodeWords*8)
	total += r.hugeNodes * (nodeWords*8 + addr.EntriesPerTable*8)
	return total
}
