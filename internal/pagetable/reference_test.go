package pagetable

// This file keeps the pre-bitmap flattened-table layout — eager
// per-node []bool present and pfns arrays — as a test-only reference
// implementation. The production table (flattened.go) stores the same
// function in bit-packed, lazily materialized per-chunk metadata; the
// differential tests below drive both through randomized operation
// sequences and require them to agree entry for entry, walk for walk,
// and in the Occupancy()/MappedPages() counts.

import (
	"testing"

	"ndpage/internal/addr"
	"ndpage/internal/phys"
	"ndpage/internal/xrand"
)

// refFlatNode is the old flat-node layout: everything materialized at
// node creation.
type refFlatNode struct {
	huge    bool
	base    addr.P
	chunks  []addr.P
	chunkOK []bool

	pfns    []addr.PFN
	present []bool
	used    int
}

// refFlattened is the old Flattened implementation, kept verbatim in
// behavior (including physical-frame allocation order, so walk PTE
// addresses are comparable against the production table when both run
// over identically seeded allocators).
type refFlattened struct {
	alloc *phys.Allocator
	root  *radixNode
	flats []*refFlatNode

	nodes      levelCounts
	used       levelCounts
	mapped     uint64
	hugeBacked uint64
	chunkFalls uint64
}

func newRefFlattened(alloc *phys.Allocator) *refFlattened {
	f := &refFlattened{alloc: alloc}
	f.root = f.newUpperNode(addr.PL4)
	return f
}

func (f *refFlattened) newUpperNode(level addr.Level) *radixNode {
	pfn, ok := f.alloc.AllocFrame()
	if !ok {
		panic("ref: out of physical memory for an upper node")
	}
	n := &radixNode{basePA: pfn.Addr(), level: level, children: make([]*radixNode, addr.EntriesPerTable)}
	f.nodes[level]++
	return n
}

func (f *refFlattened) newFlatNode() *refFlatNode {
	n := &refFlatNode{
		pfns:    make([]addr.PFN, addr.FlatEntries),
		present: make([]bool, addr.FlatEntries),
	}
	if base, ok := f.alloc.AllocHuge(); ok {
		n.huge = true
		n.base = base.Addr()
		f.hugeBacked++
	} else {
		n.chunks = make([]addr.P, addr.EntriesPerTable)
		n.chunkOK = make([]bool, addr.EntriesPerTable)
		f.chunkFalls++
	}
	f.nodes[addr.L2L1]++
	return n
}

func (n *refFlatNode) pteAddr(alloc *phys.Allocator, idx uint64) addr.P {
	if n.huge {
		return n.base + addr.P(idx*addr.PTESize)
	}
	c := idx >> addr.LevelBits
	if !n.chunkOK[c] {
		pfn, ok := alloc.AllocFrame()
		if !ok {
			panic("ref: out of physical memory for a chunk")
		}
		n.chunks[c] = pfn.Addr()
		n.chunkOK[c] = true
	}
	return n.chunks[c] + addr.P((idx&(addr.EntriesPerTable-1))*addr.PTESize)
}

func (f *refFlattened) flatAt(slot uint64) *refFlatNode {
	if slot >= uint64(len(f.flats)) {
		return nil
	}
	return f.flats[slot]
}

func (f *refFlattened) flatFor(v addr.V, create bool) *refFlatNode {
	i4 := addr.Index(v, addr.PL4)
	n3 := f.root.children[i4]
	if n3 == nil {
		if !create {
			return nil
		}
		n3 = f.newUpperNode(addr.PL3)
		f.root.children[i4] = n3
		f.root.used++
		f.used[addr.PL4]++
	}
	slot := pl3Slot(v)
	fn := f.flatAt(slot)
	if fn == nil {
		if !create {
			return nil
		}
		fn = f.newFlatNode()
		for uint64(len(f.flats)) <= slot {
			f.flats = append(f.flats, nil)
		}
		f.flats[slot] = fn
		n3.used++
		f.used[addr.PL3]++
	}
	return fn
}

func (f *refFlattened) Map(vpn addr.VPN, pfn addr.PFN) {
	v := vpn.Addr()
	fn := f.flatFor(v, true)
	idx := addr.FlatIndex(v)
	if !fn.present[idx] {
		fn.present[idx] = true
		fn.used++
		f.used[addr.L2L1]++
		f.mapped++
	}
	fn.pfns[idx] = pfn
}

func (f *refFlattened) MapRange(vpn addr.VPN, count uint64, base addr.PFN) {
	for count > 0 {
		v := vpn.Addr()
		fn := f.flatFor(v, true)
		idx := addr.FlatIndex(v)
		n := uint64(addr.FlatEntries) - idx
		if n > count {
			n = count
		}
		for k := uint64(0); k < n; k++ {
			if !fn.present[idx+k] {
				fn.present[idx+k] = true
				fn.used++
				f.used[addr.L2L1]++
				f.mapped++
			}
			fn.pfns[idx+k] = base + addr.PFN(k)
		}
		vpn += addr.VPN(n)
		base += addr.PFN(n)
		count -= n
	}
}

func (f *refFlattened) MapHuge(vpn addr.VPN, base addr.PFN) {
	f.MapRange(vpn, addr.EntriesPerTable, base)
}

func (f *refFlattened) Lookup(vpn addr.VPN) (Entry, bool) {
	v := vpn.Addr()
	fn := f.flatFor(v, false)
	if fn == nil {
		return Entry{}, false
	}
	idx := addr.FlatIndex(v)
	if !fn.present[idx] {
		return Entry{}, false
	}
	return Entry{PFN: fn.pfns[idx]}, true
}

func (f *refFlattened) Unmap(vpn addr.VPN) (Entry, bool) {
	v := vpn.Addr()
	fn := f.flatFor(v, false)
	if fn == nil {
		return Entry{}, false
	}
	idx := addr.FlatIndex(v)
	if !fn.present[idx] {
		return Entry{}, false
	}
	fn.present[idx] = false
	fn.used--
	f.used[addr.L2L1]--
	f.mapped--
	return Entry{PFN: fn.pfns[idx]}, true
}

func (f *refFlattened) WalkInto(v addr.V, w *Walk) {
	w.Reset()
	i4 := addr.Index(v, addr.PL4)
	w.Seq = append(w.Seq, Access{addr.PL4, pteAddr(f.root.basePA, i4)})
	n3 := f.root.children[i4]
	if n3 == nil {
		return
	}
	w.Seq = append(w.Seq, Access{addr.PL3, pteAddr(n3.basePA, addr.Index(v, addr.PL3))})
	fn := f.flatAt(pl3Slot(v))
	if fn == nil {
		return
	}
	idx := addr.FlatIndex(v)
	w.Seq = append(w.Seq, Access{addr.L2L1, fn.pteAddr(f.alloc, idx)})
	if !fn.present[idx] {
		return
	}
	w.Found = true
	w.Entry = Entry{PFN: fn.pfns[idx]}
}

func (f *refFlattened) Occupancy() []LevelOccupancy {
	return []LevelOccupancy{
		{Level: addr.PL4, Nodes: f.nodes[addr.PL4], EntriesUsed: f.used[addr.PL4],
			Capacity: f.nodes[addr.PL4] * addr.EntriesPerTable},
		{Level: addr.PL3, Nodes: f.nodes[addr.PL3], EntriesUsed: f.used[addr.PL3],
			Capacity: f.nodes[addr.PL3] * addr.EntriesPerTable},
		{Level: addr.L2L1, Nodes: f.nodes[addr.L2L1], EntriesUsed: f.used[addr.L2L1],
			Capacity: f.nodes[addr.L2L1] * addr.FlatEntries},
	}
}

func (f *refFlattened) MappedPages() uint64 { return f.mapped }

// differentialVPN draws a VPN biased toward locality: most draws land in
// a handful of dense 2 MB spans, the rest scatter across a 4 GB heap so
// multiple flattened nodes (and sparse chunks) appear.
func differentialVPN(rng *xrand.RNG) addr.VPN {
	if rng.Uint64n(4) != 0 {
		span := rng.Uint64n(8) << addr.LevelBits                // one of 8 chunk bases
		return addr.VPN(span + rng.Uint64n(addr.EntriesPerTable))
	}
	return addr.VPN(rng.Uint64n(1 << 20)) // anywhere in 4 GB
}

// runFlattenedDifferential drives the production table and the []bool
// reference through one randomized sequence over identically seeded
// allocators and requires exact agreement.
func runFlattenedDifferential(t *testing.T, seed uint64, fragment bool) {
	t.Helper()
	mkAlloc := func() *phys.Allocator {
		a := phys.New(1 << 30)
		if fragment {
			// Identical fragmentation on both allocators: chunk-backed
			// nodes exercise the lazy PTE-frame path.
			a.InjectFragmentation(xrand.New(7), 8192, 1)
			for {
				if _, ok := a.AllocHuge(); !ok {
					break
				}
			}
		}
		return a
	}
	got := NewFlattened(mkAlloc())
	want := newRefFlattened(mkAlloc())
	rng := xrand.New(seed)

	var wg, ww Walk
	for op := 0; op < 20000; op++ {
		vpn := differentialVPN(rng)
		switch rng.Uint64n(10) {
		case 0, 1, 2:
			pfn := addr.PFN(rng.Uint64n(1 << 22))
			got.Map(vpn, pfn)
			want.Map(vpn, pfn)
		case 3:
			count := rng.Uint64n(2048) + 1
			base := addr.PFN(rng.Uint64n(1 << 22))
			got.MapRange(vpn, count, base)
			want.MapRange(vpn, count, base)
		case 4:
			huge := vpn &^ addr.VPN(addr.EntriesPerTable-1)
			base := addr.PFN(rng.Uint64n(1 << 22))
			got.MapHuge(huge, base)
			want.MapHuge(huge, base)
		case 5:
			eg, okg := got.Unmap(vpn)
			ew, okw := want.Unmap(vpn)
			if okg != okw || eg != ew {
				t.Fatalf("op %d: Unmap(%#x) = %+v,%v want %+v,%v", op, uint64(vpn), eg, okg, ew, okw)
			}
		case 6, 7:
			eg, okg := got.Lookup(vpn)
			ew, okw := want.Lookup(vpn)
			if okg != okw || eg != ew {
				t.Fatalf("op %d: Lookup(%#x) = %+v,%v want %+v,%v", op, uint64(vpn), eg, okg, ew, okw)
			}
			if got.Present(vpn) != okw {
				t.Fatalf("op %d: Present(%#x) = %v, Lookup says %v", op, uint64(vpn), !okw, okw)
			}
		default:
			v := vpn.Addr() + addr.V(rng.Uint64n(addr.PageSize))
			got.WalkInto(v, &wg)
			want.WalkInto(v, &ww)
			if wg.Found != ww.Found || wg.Entry != ww.Entry || len(wg.Seq) != len(ww.Seq) {
				t.Fatalf("op %d: WalkInto(%#x) = %+v want %+v", op, uint64(v), wg, ww)
			}
			for i := range wg.Seq {
				if wg.Seq[i] != ww.Seq[i] {
					t.Fatalf("op %d: walk access %d = %+v want %+v", op, i, wg.Seq[i], ww.Seq[i])
				}
			}
		}
	}

	if g, w := got.MappedPages(), want.MappedPages(); g != w {
		t.Fatalf("MappedPages = %d, want %d", g, w)
	}
	og, ow := got.Occupancy(), want.Occupancy()
	if len(og) != len(ow) {
		t.Fatalf("Occupancy rows = %d, want %d", len(og), len(ow))
	}
	for i := range og {
		if og[i] != ow[i] {
			t.Fatalf("Occupancy[%d] = %+v, want %+v", i, og[i], ow[i])
		}
	}
	// Exhaustive sweep of the touched span: every entry agrees.
	for vpn := addr.VPN(0); vpn < 1<<20; vpn += 17 {
		eg, okg := got.Lookup(vpn)
		ew, okw := want.Lookup(vpn)
		if okg != okw || eg != ew {
			t.Fatalf("final sweep: Lookup(%#x) = %+v,%v want %+v,%v", uint64(vpn), eg, okg, ew, okw)
		}
	}
}

func TestFlattenedDifferentialHugeBacked(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		runFlattenedDifferential(t, seed, false)
	}
}

func TestFlattenedDifferentialChunkBacked(t *testing.T) {
	for seed := uint64(5); seed <= 8; seed++ {
		runFlattenedDifferential(t, seed, true)
	}
}

// TestRadixDifferentialAgainstReference drives Radix and the reference
// flattened layout through the same 4 KB-mapping sequence: two different
// organizations of one function must agree on every translation and on
// the mapped-page count (occupancy shapes differ by design).
func TestRadixDifferentialAgainstReference(t *testing.T) {
	r := NewRadix(phys.New(1 << 30))
	want := newRefFlattened(phys.New(1 << 30))
	rng := xrand.New(11)
	for op := 0; op < 20000; op++ {
		vpn := differentialVPN(rng)
		switch rng.Uint64n(8) {
		case 0, 1, 2:
			pfn := addr.PFN(rng.Uint64n(1 << 22))
			r.Map(vpn, pfn)
			want.Map(vpn, pfn)
		case 3:
			count := rng.Uint64n(2048) + 1
			base := addr.PFN(rng.Uint64n(1 << 22))
			r.MapRange(vpn, count, base)
			want.MapRange(vpn, count, base)
		case 4:
			eg, okg := r.Unmap(vpn)
			ew, okw := want.Unmap(vpn)
			if okg != okw || eg != ew {
				t.Fatalf("op %d: Unmap(%#x) = %+v,%v want %+v,%v", op, uint64(vpn), eg, okg, ew, okw)
			}
		default:
			eg, okg := r.Lookup(vpn)
			ew, okw := want.Lookup(vpn)
			if okg != okw || eg != ew {
				t.Fatalf("op %d: Lookup(%#x) = %+v,%v want %+v,%v", op, uint64(vpn), eg, okg, ew, okw)
			}
			if r.Present(vpn) != okw {
				t.Fatalf("op %d: Present(%#x) disagrees with Lookup", op, uint64(vpn))
			}
		}
	}
	if g, w := r.MappedPages(), want.MappedPages(); g != w {
		t.Fatalf("MappedPages = %d, want %d", g, w)
	}
}

// TestCuckooDifferentialAgainstReference does the same for the elastic
// cuckoo table (no huge mappings there).
func TestCuckooDifferentialAgainstReference(t *testing.T) {
	c := NewCuckoo(phys.New(1<<30), 4096)
	want := newRefFlattened(phys.New(1 << 30))
	rng := xrand.New(13)
	for op := 0; op < 20000; op++ {
		vpn := differentialVPN(rng)
		switch rng.Uint64n(8) {
		case 0, 1, 2:
			pfn := addr.PFN(rng.Uint64n(1 << 22))
			c.Map(vpn, pfn)
			want.Map(vpn, pfn)
		case 3:
			count := rng.Uint64n(512) + 1
			base := addr.PFN(rng.Uint64n(1 << 22))
			c.MapRange(vpn, count, base)
			want.MapRange(vpn, count, base)
		case 4:
			eg, okg := c.Unmap(vpn)
			ew, okw := want.Unmap(vpn)
			if okg != okw || eg != ew {
				t.Fatalf("op %d: Unmap(%#x) = %+v,%v want %+v,%v", op, uint64(vpn), eg, okg, ew, okw)
			}
		default:
			eg, okg := c.Lookup(vpn)
			ew, okw := want.Lookup(vpn)
			if okg != okw || eg != ew {
				t.Fatalf("op %d: Lookup(%#x) = %+v,%v want %+v,%v", op, uint64(vpn), eg, okg, ew, okw)
			}
			if c.Present(vpn) != okw {
				t.Fatalf("op %d: Present(%#x) disagrees with Lookup", op, uint64(vpn))
			}
		}
	}
	if g, w := c.MappedPages(), want.MappedPages(); g != w {
		t.Fatalf("MappedPages = %d, want %d", g, w)
	}
}
