package pagetable

import (
	"testing"

	"ndpage/internal/addr"
	"ndpage/internal/phys"
	"ndpage/internal/xrand"
)

func TestFlattenedMapLookup(t *testing.T) {
	f := NewFlattened(newAlloc())
	if _, ok := f.Lookup(42); ok {
		t.Fatal("empty table lookup found a mapping")
	}
	f.Map(42, 1000)
	e, ok := f.Lookup(42)
	if !ok || e.PFN != 1000 {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	f.Map(42, 2000)
	if f.MappedPages() != 1 {
		t.Errorf("MappedPages after remap = %d", f.MappedPages())
	}
}

func TestFlattenedWalkIsThreeAccesses(t *testing.T) {
	f := NewFlattened(newAlloc())
	vpn := addr.VPN(0x12345)
	f.Map(vpn, 7)
	var w Walk
	f.WalkInto(vpn.Addr(), &w)
	if !w.Found || w.Entry.PFN != 7 {
		t.Fatalf("walk = %+v", w)
	}
	if len(w.Seq) != 3 {
		t.Fatalf("flattened walk = %d accesses, want 3 (paper Fig 9)", len(w.Seq))
	}
	want := []addr.Level{addr.PL4, addr.PL3, addr.L2L1}
	for i, a := range w.Seq {
		if a.Level != want[i] {
			t.Errorf("Seq[%d].Level = %v, want %v", i, a.Level, want[i])
		}
	}
}

// TestFlattenedAgreesWithRadix: the flattened table is a different
// *organization* of the same function — both must produce identical
// translations for identical Map calls.
func TestFlattenedAgreesWithRadix(t *testing.T) {
	f := NewFlattened(newAlloc())
	r := NewRadix(newAlloc())
	rng := xrand.New(3)
	var vpns []addr.VPN
	for i := 0; i < 2000; i++ {
		vpn := addr.VPN(rng.Uint64n(1 << 30)) // spread across many nodes
		pfn := addr.PFN(rng.Uint64n(1 << 22))
		f.Map(vpn, pfn)
		r.Map(vpn, pfn)
		vpns = append(vpns, vpn)
	}
	for _, vpn := range vpns {
		ef, okf := f.Lookup(vpn)
		er, okr := r.Lookup(vpn)
		if okf != okr || ef.PFN != er.PFN {
			t.Fatalf("vpn %#x: flattened %+v/%v vs radix %+v/%v",
				uint64(vpn), ef, okf, er, okr)
		}
	}
}

func TestFlattenedSiblingRegionsShareFlatNode(t *testing.T) {
	f := NewFlattened(newAlloc())
	// Two pages in different 2 MB regions of the same 1 GB span: a radix
	// table would need two PL1 nodes under two PL2 entries; the
	// flattened table serves both from one node with direct indexing.
	a := addr.VPN(0)
	b := addr.VPN(addr.EntriesPerTable * 7) // 7 regions away
	f.Map(a, 1)
	f.Map(b, 2)
	occ := f.Occupancy()
	var flat LevelOccupancy
	for _, o := range occ {
		if o.Level == addr.L2L1 {
			flat = o
		}
	}
	if flat.Nodes != 1 {
		t.Fatalf("flattened nodes = %d, want 1", flat.Nodes)
	}
	var wa, wb Walk
	f.WalkInto(a.Addr(), &wa)
	f.WalkInto(b.Addr(), &wb)
	da := wa.Seq[2].PA
	db := wb.Seq[2].PA
	if da == db {
		t.Error("distinct pages read the same flattened PTE")
	}
}

func TestFlattenedMapRange(t *testing.T) {
	f := NewFlattened(newAlloc())
	const start, count = addr.VPN(1000), uint64(3000)
	f.MapRange(start, count, 5000)
	if f.MappedPages() != count {
		t.Fatalf("MappedPages = %d, want %d", f.MappedPages(), count)
	}
	for _, k := range []uint64{0, 1, 1500, count - 1} {
		e, ok := f.Lookup(start + addr.VPN(k))
		if !ok || e.PFN != 5000+addr.PFN(k) {
			t.Fatalf("page +%d: %+v, %v", k, e, ok)
		}
	}
}

func TestFlattenedMapHugeExpandsTo512(t *testing.T) {
	f := NewFlattened(newAlloc())
	base := addr.VPN(addr.EntriesPerTable * 2)
	f.MapHuge(base, 7000)
	if f.MappedPages() != addr.EntriesPerTable {
		t.Fatalf("MappedPages = %d", f.MappedPages())
	}
	e, ok := f.Lookup(base + 100)
	if !ok || e.PFN != 7100 || e.Huge {
		t.Fatalf("Lookup = %+v, %v (flattened stores 4K entries)", e, ok)
	}
}

func TestFlattenedHugeBackingPreferred(t *testing.T) {
	f := NewFlattened(newAlloc())
	f.Map(1, 1)
	huge, chunked := f.HugeBackedNodes()
	if huge != 1 || chunked != 0 {
		t.Errorf("fresh allocator: huge=%d chunked=%d, want 1/0", huge, chunked)
	}
}

func TestFlattenedChunkFallbackWhenFragmented(t *testing.T) {
	alloc := phys.New(64 << 20)
	// Destroy all 2 MB contiguity.
	blocks := int(64 << 20 / addr.HugePageSize)
	alloc.InjectFragmentation(xrand.New(1), blocks*16, 1)
	for alloc.IntactHugeBlocks() > 0 {
		if _, ok := alloc.AllocHuge(); !ok {
			break
		}
	}
	f := NewFlattened(alloc)
	f.Map(1, 1)
	huge, chunked := f.HugeBackedNodes()
	if chunked != 1 || huge != 0 {
		t.Fatalf("fragmented allocator: huge=%d chunked=%d, want 0/1", huge, chunked)
	}
	// Walks still produce valid, distinct PTE addresses.
	var w Walk
	f.WalkInto(addr.VPN(1).Addr(), &w)
	if !w.Found || len(w.Seq) != 3 {
		t.Fatalf("walk on chunk-backed node = %+v", w)
	}
}

func TestFlattenedOccupancy(t *testing.T) {
	f := NewFlattened(newAlloc())
	// Fill one full 1 GB span: flattened occupancy 100%.
	f.MapRange(0, addr.FlatEntries, 0)
	for _, o := range f.Occupancy() {
		switch o.Level {
		case addr.L2L1:
			if o.Rate() != 1.0 || o.Nodes != 1 {
				t.Errorf("L2L1 occupancy = %+v", o)
			}
		case addr.PL3:
			if o.EntriesUsed != 1 {
				t.Errorf("PL3 entries used = %d, want 1", o.EntriesUsed)
			}
		}
	}
}

func TestFlattenedWalkUnmapped(t *testing.T) {
	f := NewFlattened(newAlloc())
	f.Map(0, 1)
	var w Walk
	// Unmapped page in the mapped 1 GB span: 3 accesses, not found.
	f.WalkInto(addr.V(addr.PageSize*99), &w)
	if w.Found || len(w.Seq) != 3 {
		t.Fatalf("walk = found=%v len=%d", w.Found, len(w.Seq))
	}
	// Different 1 GB span: stops after PL3 lookup fails (2 accesses).
	f.WalkInto(addr.V(1)<<30, &w)
	if w.Found || len(w.Seq) != 2 {
		t.Fatalf("cross-span walk = found=%v len=%d", w.Found, len(w.Seq))
	}
}

// TestFlattenedSparseSlotGrow pins the setFlat growth path: mapping a
// page whose PL3 slot is far beyond the current dense index must grow
// the index in one step (slices.Grow, not element-at-a-time append) and
// leave every intervening slot nil and unmapped.
func TestFlattenedSparseSlotGrow(t *testing.T) {
	f := NewFlattened(newAlloc())
	low := addr.VPN(5)
	f.Map(low, 100)

	// 200 GB away: slot 200 while the index holds 1 entry.
	far := addr.VPN(200 << (30 - addr.PageShift))
	f.Map(far, 200)

	if got := uint64(len(f.flats)); got != pl3Slot(far.Addr())+1 {
		t.Fatalf("flats length = %d, want %d", got, pl3Slot(far.Addr())+1)
	}
	for s := pl3Slot(low.Addr()) + 1; s < pl3Slot(far.Addr()); s++ {
		if f.flats[s] != nil {
			t.Fatalf("intervening slot %d materialized a node", s)
		}
	}
	for _, tc := range []struct {
		vpn addr.VPN
		pfn addr.PFN
	}{{low, 100}, {far, 200}} {
		e, ok := f.Lookup(tc.vpn)
		if !ok || e.PFN != tc.pfn {
			t.Fatalf("Lookup(%#x) = %+v, %v", uint64(tc.vpn), e, ok)
		}
	}
	// Growing backward-compatibly: a slot in the middle lands in the
	// already-grown index without reallocating past the end.
	mid := addr.VPN(100 << (30 - addr.PageShift))
	f.Map(mid, 300)
	if e, ok := f.Lookup(mid); !ok || e.PFN != 300 {
		t.Fatalf("Lookup(mid) = %+v, %v", e, ok)
	}
	if f.MappedPages() != 3 {
		t.Fatalf("MappedPages = %d, want 3", f.MappedPages())
	}
}

// TestFlattenedSparseNodeMetadataBudget enforces the PR acceptance bound:
// a flat node holding a handful of scattered pages must keep its resident
// metadata at no more than 1/4 of the 256 KB the old always-materialized
// present []bool alone consumed.
func TestFlattenedSparseNodeMetadataBudget(t *testing.T) {
	f := NewFlattened(newAlloc())
	empty := f.MetadataBytes()
	rng := xrand.New(3)
	for i := 0; i < 8; i++ { // 8 pages scattered over one 1 GB node
		f.Map(addr.VPN(rng.Uint64n(addr.FlatEntries)), addr.PFN(i))
	}
	sparse := f.MetadataBytes() - empty
	const budget = 256 * 1024 / 4
	if sparse > budget {
		t.Fatalf("sparse flat node metadata = %d B, budget %d B", sparse, budget)
	}
	t.Logf("sparse flat node metadata: %d B (budget %d B)", sparse, budget)

	// Dense comparison point, logged for the record: full node.
	g := NewFlattened(newAlloc())
	base := g.MetadataBytes()
	g.MapRange(0, addr.FlatEntries, 0)
	t.Logf("dense flat node metadata: %d B", g.MetadataBytes()-base)
}
