// Package pagetable implements the four page-table organizations the
// paper evaluates, behind one Table interface:
//
//   - Radix: the conventional x86-64 4-level radix tree (baseline), also
//     supporting 2 MB leaf entries at PL2 for the Huge Page mechanism.
//   - Flattened: NDPage's tailored table — PL4 and PL3 as usual, with the
//     PL2 and PL1 levels merged into single 2 MB nodes of 2^18 entries
//     indexed by 18 virtual-address bits (paper Section V-B).
//   - Cuckoo: an elastic cuckoo hash table (Skarlatos et al., ASPLOS'20),
//     the paper's strongest baseline (ECH): d=3 independent ways probed
//     in parallel, with gradual (elastic) resizing.
//
// A Table does two jobs: it is the *functional* map from virtual page
// numbers to physical frames (Map/Lookup), and it is the *timing* oracle
// telling the hardware walker which physical PTE addresses a walk for a
// given address touches (Walk). Every table node is backed by real frames
// from the shared physical allocator, so PTE accesses land in the same
// DRAM banks as data and contend with it — that contention is the
// paper's motivation.
package pagetable

import (
	"ndpage/internal/addr"
)

// HashLevel labels the parallel probe accesses of a hashed page table in
// Walk results (it is not a radix level).
const HashLevel addr.Level = 0

// Entry is a translation: the physical frame of a 4 KB page, or the base
// frame of a 2 MB region when Huge is set.
type Entry struct {
	PFN  addr.PFN
	Huge bool
}

// Translate resolves the frame for a specific page under this entry.
func (e Entry) Translate(vpn addr.VPN) addr.PFN {
	if !e.Huge {
		return e.PFN
	}
	return e.PFN + addr.PFN(uint64(vpn)&(addr.EntriesPerTable-1))
}

// Access is one PTE memory access a walk performs.
type Access struct {
	Level addr.Level
	PA    addr.P
}

// Walk describes the memory accesses of one page-table walk and its
// outcome. Seq holds dependent accesses issued one after another (radix
// walks); Par holds independent accesses issued simultaneously (hash
// walks). Exactly one of the two is populated. For hash walks, FoundIdx
// is the index within Par whose probe held the entry (-1 when not
// found) — way-prediction caches use it.
type Walk struct {
	Found    bool
	Entry    Entry
	Seq      []Access
	Par      []Access
	FoundIdx int
}

// WalkKind classifies the issue strategy a walk's accesses require.
type WalkKind int

// Walk kinds.
const (
	// Sequential walks issue each access only after the previous one
	// returned (radix pointer chasing).
	Sequential WalkKind = iota
	// Parallel walks issue every access simultaneously (hash-table
	// probes).
	Parallel
)

// Kind reports how the walk's accesses must be issued. A walk with no
// accesses at all (fully cached elsewhere) is Sequential.
func (w *Walk) Kind() WalkKind {
	if len(w.Par) > 0 {
		return Parallel
	}
	return Sequential
}

// Accesses returns the walk's access list — Par for parallel walks, Seq
// otherwise. The slice aliases the walk's storage.
func (w *Walk) Accesses() []Access {
	if w.Kind() == Parallel {
		return w.Par
	}
	return w.Seq
}

// Reset clears w for reuse without freeing its backing arrays. Table
// implementations call it at the top of WalkInto; hardware-walker models
// that reuse one Walk as scratch may also call it directly.
func (w *Walk) Reset() {
	w.Found = false
	w.Entry = Entry{}
	w.Seq = w.Seq[:0]
	w.Par = w.Par[:0]
	w.FoundIdx = -1
}

// LevelOccupancy reports, for one level of a table, how many nodes exist
// and what fraction of their entries are in use — the paper's Figure 8
// metric (PL2/PL1 ~98% occupied, PL3/PL4 nearly empty).
type LevelOccupancy struct {
	Level       addr.Level
	Nodes       uint64
	EntriesUsed uint64
	Capacity    uint64 // Nodes x entries-per-node
}

// Rate returns EntriesUsed/Capacity (0 for no nodes).
func (o LevelOccupancy) Rate() float64 {
	if o.Capacity == 0 {
		return 0
	}
	return float64(o.EntriesUsed) / float64(o.Capacity)
}

// Table is a page-table organization.
type Table interface {
	// Kind returns a short identifier ("radix", "flattened", "cuckoo").
	Kind() string
	// Map installs a 4 KB translation.
	Map(vpn addr.VPN, pfn addr.PFN)
	// MapHuge installs a 2 MB translation; vpn must be 2 MB-aligned.
	// Organizations that do not support huge mappings panic.
	MapHuge(vpn addr.VPN, base addr.PFN)
	// MapRange installs count consecutive 4 KB translations backed by
	// consecutive frames starting at base (the fast path for eager
	// population).
	MapRange(vpn addr.VPN, count uint64, base addr.PFN)
	// Lookup is the functional (zero-cost) translation used by the OS
	// model and the Ideal mechanism.
	Lookup(vpn addr.VPN) (Entry, bool)
	// Present reports whether a translation covers vpn without
	// constructing it: the fast predicate of the OS demand-paging check,
	// which runs on every simulated load and store and hits ~99% of the
	// time after warmup. Implementations keep it inside bit-packed,
	// cache-resident metadata.
	Present(vpn addr.VPN) bool
	// Unmap removes the translation covering vpn, returning what was
	// removed (a Huge entry removes the whole 2 MB mapping). Used by
	// the reclaim model.
	Unmap(vpn addr.VPN) (Entry, bool)
	// WalkInto fills w with the PTE accesses a hardware walk for v
	// performs, reusing w's storage.
	WalkInto(v addr.V, w *Walk)
	// Occupancy reports per-level node occupancy.
	Occupancy() []LevelOccupancy
	// MappedPages returns the number of 4 KB-page translations
	// installed (huge mappings count as 512).
	MappedPages() uint64
	// MetadataBytes reports the simulator-side resident metadata of the
	// organization — the footprint of the lookup structures themselves,
	// not the modelled PTE frames. It is the bytes-per-mapped-page
	// regression metric (scripts/bench.sh).
	MetadataBytes() uint64
}
