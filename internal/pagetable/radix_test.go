package pagetable

import (
	"testing"

	"ndpage/internal/addr"
	"ndpage/internal/phys"
)

func newAlloc() *phys.Allocator {
	return phys.New(256 << 20) // 256 MB is plenty for table nodes in tests
}

func TestRadixMapLookup(t *testing.T) {
	r := NewRadix(newAlloc())
	if _, ok := r.Lookup(42); ok {
		t.Fatal("lookup in empty table found a mapping")
	}
	r.Map(42, 1000)
	e, ok := r.Lookup(42)
	if !ok || e.PFN != 1000 || e.Huge {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	if r.MappedPages() != 1 {
		t.Errorf("MappedPages = %d", r.MappedPages())
	}
	// Remap updates in place without double counting.
	r.Map(42, 2000)
	if e, _ := r.Lookup(42); e.PFN != 2000 {
		t.Error("remap did not update")
	}
	if r.MappedPages() != 1 {
		t.Errorf("MappedPages after remap = %d", r.MappedPages())
	}
}

func TestRadixWalkDepthAndOrder(t *testing.T) {
	r := NewRadix(newAlloc())
	vpn := addr.VPN(0x12345)
	r.Map(vpn, 7)
	var w Walk
	r.WalkInto(vpn.Addr(), &w)
	if !w.Found || w.Entry.PFN != 7 {
		t.Fatalf("walk = %+v", w)
	}
	if len(w.Seq) != 4 || len(w.Par) != 0 {
		t.Fatalf("radix walk must be 4 sequential accesses, got %d/%d", len(w.Seq), len(w.Par))
	}
	wantLevels := []addr.Level{addr.PL4, addr.PL3, addr.PL2, addr.PL1}
	for i, a := range w.Seq {
		if a.Level != wantLevels[i] {
			t.Errorf("Seq[%d].Level = %v, want %v", i, a.Level, wantLevels[i])
		}
	}
	// PTE addresses must be distinct and nonzero-frame-resident.
	seen := map[addr.P]bool{}
	for _, a := range w.Seq {
		if seen[a.PA] {
			t.Errorf("duplicate PTE address %#x", uint64(a.PA))
		}
		seen[a.PA] = true
	}
}

func TestRadixWalkUnmappedStopsEarly(t *testing.T) {
	r := NewRadix(newAlloc())
	r.Map(0, 1) // creates a path under prefix 0
	var w Walk
	// Entirely different PL4 subtree: walk reads only the root entry.
	r.WalkInto(addr.V(1)<<39, &w)
	if w.Found || len(w.Seq) != 1 {
		t.Fatalf("walk into unmapped subtree = %+v", w)
	}
	// Same PL1 node, unmapped entry: full 4 accesses, not found.
	r.WalkInto(addr.V(addr.PageSize), &w)
	if w.Found || len(w.Seq) != 4 {
		t.Fatalf("walk to unmapped sibling = found=%v seq=%d", w.Found, len(w.Seq))
	}
}

func TestRadixSiblingPagesShareNodes(t *testing.T) {
	r := NewRadix(newAlloc())
	r.Map(0, 1)
	r.Map(1, 2)
	var w0, w1 Walk
	r.WalkInto(0, &w0)
	r.WalkInto(addr.V(addr.PageSize), &w1)
	for i := 0; i < 3; i++ {
		if w0.Seq[i].PA != w1.Seq[i].PA {
			t.Errorf("level %d: sibling pages should read the same upper PTEs", i)
		}
	}
	if w0.Seq[3].PA == w1.Seq[3].PA {
		t.Error("distinct pages must read distinct PL1 entries")
	}
	// Both PL1 PTEs are adjacent in the same node.
	if w1.Seq[3].PA-w0.Seq[3].PA != addr.PTESize {
		t.Errorf("adjacent pages: PTE delta = %d, want %d",
			w1.Seq[3].PA-w0.Seq[3].PA, addr.PTESize)
	}
}

func TestRadixMapRangeEquivalentToMapLoop(t *testing.T) {
	a, b := NewRadix(newAlloc()), NewRadix(newAlloc())
	const start, count = addr.VPN(1000), uint64(1500) // crosses PL1 node boundaries
	a.MapRange(start, count, 5000)
	for k := uint64(0); k < count; k++ {
		b.Map(start+addr.VPN(k), 5000+addr.PFN(k))
	}
	if a.MappedPages() != b.MappedPages() {
		t.Fatalf("MappedPages: %d vs %d", a.MappedPages(), b.MappedPages())
	}
	for k := uint64(0); k < count; k++ {
		ea, oka := a.Lookup(start + addr.VPN(k))
		eb, okb := b.Lookup(start + addr.VPN(k))
		if !oka || !okb || ea != eb {
			t.Fatalf("page %d: %+v/%v vs %+v/%v", k, ea, oka, eb, okb)
		}
	}
}

func TestRadixHugeMapping(t *testing.T) {
	r := NewRadix(newAlloc())
	base := addr.VPN(addr.EntriesPerTable * 3) // 2MB-aligned
	r.MapHuge(base, 9000)
	if r.MappedPages() != addr.EntriesPerTable {
		t.Errorf("MappedPages = %d, want 512", r.MappedPages())
	}
	for _, off := range []uint64{0, 1, 511} {
		e, ok := r.Lookup(base + addr.VPN(off))
		if !ok || !e.Huge {
			t.Fatalf("huge lookup at +%d = %+v, %v", off, e, ok)
		}
		if got := e.Translate(base + addr.VPN(off)); got != 9000+addr.PFN(off) {
			t.Errorf("Translate(+%d) = %d", off, got)
		}
	}
	// Walk terminates at PL2 with 3 accesses.
	var w Walk
	r.WalkInto(base.Addr(), &w)
	if !w.Found || len(w.Seq) != 3 || !w.Entry.Huge {
		t.Fatalf("huge walk = %+v", w)
	}
	if w.Seq[2].Level != addr.PL2 {
		t.Errorf("huge leaf level = %v, want PL2", w.Seq[2].Level)
	}
}

func TestRadixHugeUnalignedPanics(t *testing.T) {
	r := NewRadix(newAlloc())
	defer func() {
		if recover() == nil {
			t.Error("unaligned MapHuge did not panic")
		}
	}()
	r.MapHuge(3, 1)
}

func TestRadixConflictingMappingsPanic(t *testing.T) {
	r := NewRadix(newAlloc())
	r.MapHuge(addr.VPN(addr.EntriesPerTable), 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("4K map under huge mapping did not panic")
			}
		}()
		r.Map(addr.VPN(addr.EntriesPerTable+5), 2)
	}()
	r.Map(0, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("huge map over 4K table did not panic")
			}
		}()
		r.MapHuge(0, 2)
	}()
}

func TestRadixOccupancyDenseRegion(t *testing.T) {
	r := NewRadix(newAlloc())
	// Map 4 MB densely: 1024 pages = 2 full PL1 nodes.
	r.MapRange(0, 2*addr.EntriesPerTable, 0)
	occ := map[addr.Level]LevelOccupancy{}
	for _, o := range r.Occupancy() {
		occ[o.Level] = o
	}
	if got := occ[addr.PL1]; got.Nodes != 2 || got.Rate() != 1.0 {
		t.Errorf("PL1 occupancy = %+v", got)
	}
	if got := occ[addr.PL2]; got.Nodes != 1 || got.EntriesUsed != 2 {
		t.Errorf("PL2 occupancy = %+v", got)
	}
	if got := occ[addr.PL4]; got.Nodes != 1 || got.EntriesUsed != 1 {
		t.Errorf("PL4 occupancy = %+v", got)
	}
	// The paper's Fig 8 shape: dense data makes PL1 full while PL3/PL4
	// stay nearly empty.
	if occ[addr.PL1].Rate() <= occ[addr.PL3].Rate() {
		t.Error("PL1 occupancy should exceed PL3 occupancy for dense data")
	}
}

func TestRadixNodesBackedByDistinctFrames(t *testing.T) {
	alloc := newAlloc()
	before := alloc.FreeFrames()
	r := NewRadix(alloc)
	r.MapRange(0, 3*addr.EntriesPerTable, 0) // 3 PL1 nodes + PL2+PL3+PL4
	used := before - alloc.FreeFrames()
	// root + PL3 + PL2 + 3 PL1 = 6 frames.
	if used != 6 {
		t.Errorf("table consumed %d frames, want 6", used)
	}
}
