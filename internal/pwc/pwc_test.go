package pwc

import (
	"testing"

	"ndpage/internal/addr"
)

// va builds an address from per-level indices.
func va(i4, i3, i2, i1 uint64) addr.V {
	return addr.V(i4<<39 | i3<<30 | i2<<21 | i1<<12)
}

func TestGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid geometry did not panic")
		}
	}()
	New(Config{Levels: []addr.Level{addr.PL4}, Entries: 5, Ways: 4})
}

func TestColdProbeMisses(t *testing.T) {
	p := New(Default())
	if _, ok := p.Probe(va(1, 2, 3, 4)); ok {
		t.Fatal("cold probe hit")
	}
	for _, l := range p.Levels() {
		if p.Stats(l).Misses != 1 {
			t.Errorf("level %v misses = %d, want 1", l, p.Stats(l).Misses)
		}
	}
}

func TestFillThenDeepestHit(t *testing.T) {
	p := New(Default())
	v := va(1, 2, 3, 4)
	// A full walk traverses PL4, PL3, PL2 (entries above the leaf).
	p.Fill(v, []addr.Level{addr.PL4, addr.PL3, addr.PL2})
	deepest, ok := p.Probe(v)
	if !ok || deepest != addr.PL2 {
		t.Fatalf("Probe = %v, %v; want PL2 hit", deepest, ok)
	}
}

func TestPartialFillHitsUpperLevelOnly(t *testing.T) {
	p := New(Default())
	v := va(1, 2, 3, 4)
	p.Fill(v, []addr.Level{addr.PL4})
	// Same PL4 index, different PL3/PL2 path: only PL4 can hit.
	v2 := va(1, 9, 9, 9)
	deepest, ok := p.Probe(v2)
	if !ok || deepest != addr.PL4 {
		t.Fatalf("Probe = %v, %v; want PL4 hit", deepest, ok)
	}
}

func TestPrefixSharingAcrossPages(t *testing.T) {
	p := New(Default())
	// Walk for one page fills PWCs; a *different page in the same 2 MB
	// region* shares the PL2 prefix and must hit at PL2.
	p.Fill(va(0, 1, 2, 3), []addr.Level{addr.PL4, addr.PL3, addr.PL2})
	deepest, ok := p.Probe(va(0, 1, 2, 400))
	if !ok || deepest != addr.PL2 {
		t.Fatalf("sibling page: Probe = %v %v, want PL2", deepest, ok)
	}
	// A page in a different 2 MB region but the same 1 GB region hits
	// at PL3.
	deepest, ok = p.Probe(va(0, 1, 99, 3))
	if !ok || deepest != addr.PL3 {
		t.Fatalf("sibling 2MB region: Probe = %v %v, want PL3", deepest, ok)
	}
}

func TestNDPageConfigHasNoPL2(t *testing.T) {
	p := New(NDPage())
	if p.Has(addr.PL2) {
		t.Fatal("NDPage PWC must not cache PL2")
	}
	if !p.Has(addr.PL4) || !p.Has(addr.PL3) {
		t.Fatal("NDPage PWC must cache PL4 and PL3")
	}
	v := va(1, 2, 3, 4)
	p.Fill(v, []addr.Level{addr.PL4, addr.PL3, addr.PL2}) // PL2 fill ignored
	deepest, ok := p.Probe(v)
	if !ok || deepest != addr.PL3 {
		t.Fatalf("Probe = %v %v, want PL3 (deepest NDPage PWC)", deepest, ok)
	}
}

func TestHitRateAccounting(t *testing.T) {
	p := New(Default())
	v := va(3, 3, 3, 3)
	p.Probe(v)                                            // all miss
	p.Fill(v, []addr.Level{addr.PL4, addr.PL3, addr.PL2}) //
	p.Probe(v)                                            // all hit
	if got := p.HitRate(addr.PL4); got != 0.5 {
		t.Errorf("PL4 hit rate = %v, want 0.5", got)
	}
	if got := p.HitRate(addr.PL1); got != 0 {
		t.Errorf("HitRate of uncached level = %v, want 0", got)
	}
}

func TestResetStats(t *testing.T) {
	p := New(Default())
	p.Probe(va(1, 1, 1, 1))
	p.ResetStats()
	for _, l := range p.Levels() {
		if p.Stats(l).Total() != 0 {
			t.Errorf("level %v counters not reset", l)
		}
	}
}

func TestFlush(t *testing.T) {
	p := New(Default())
	v := va(1, 2, 3, 4)
	p.Fill(v, []addr.Level{addr.PL4, addr.PL3, addr.PL2})
	p.Flush()
	if _, ok := p.Probe(v); ok {
		t.Error("probe hit after Flush")
	}
}

func TestCapacityChurn(t *testing.T) {
	// Far more distinct PL2 prefixes than entries: hit rate must stay
	// low — the regime that motivates NDPage's flattening (paper: 15.4%).
	p := New(Default())
	hits := 0
	const n = 4096
	for i := uint64(0); i < n; i++ {
		v := va(0, i>>9, i&511, 0) // distinct 2 MB regions
		if deepest, ok := p.Probe(v); ok && deepest == addr.PL2 {
			hits++
		}
		p.Fill(v, []addr.Level{addr.PL4, addr.PL3, addr.PL2})
	}
	if rate := float64(hits) / n; rate > 0.10 {
		t.Errorf("PL2 hit rate %.3f under churn, want near 0", rate)
	}
	// PL4 should be hitting nearly always (single root prefix).
	if r := p.HitRate(addr.PL4); r < 0.99 {
		t.Errorf("PL4 hit rate = %.3f, want ~1", r)
	}
}
