// Package pwc models page-walk caches (Barr et al., "Translation caching:
// skip, don't walk"): small per-level caches of upper-level page-table
// entries that let the hardware walker skip the top of the radix tree.
//
// A hit in the level-L PWC means the walker already knows the base of the
// next table below L, so the walk starts there. Probes for all levels
// happen in parallel in one cycle; the deepest hit wins.
//
// The paper's Section V-C reports PL4/PL3 PWC hit rates near 100%/98.6%
// but only ~15.4% for the lower levels, which is why NDPage keeps the
// PL4/PL3 PWCs and folds the poorly-cached PL2/PL1 levels into one
// flattened access.
package pwc

import (
	"fmt"

	"ndpage/internal/addr"
	"ndpage/internal/assoc"
	"ndpage/internal/stats"
)

// Config describes a set of page-walk caches.
type Config struct {
	// Levels lists which page-table levels have a PWC, e.g.
	// [PL4, PL3, PL2] for a conventional radix walker or [PL4, PL3]
	// for NDPage.
	Levels  []addr.Level
	Entries int
	Ways    int
	Latency uint64 // one parallel probe of all levels
}

// Default returns the conventional three-PWC configuration (32 entries,
// 4-way each, 1-cycle probe).
func Default() Config {
	return Config{Levels: []addr.Level{addr.PL4, addr.PL3, addr.PL2}, Entries: 32, Ways: 4, Latency: 1}
}

// NDPage returns NDPage's PWC configuration: PL4 and PL3 only (Section
// V-C) — the flattened L2/L1 level is reached directly from a PL3 hit.
func NDPage() Config {
	return Config{Levels: []addr.Level{addr.PL4, addr.PL3}, Entries: 32, Ways: 4, Latency: 1}
}

// Cache is the walker-facing interface of a page-walk cache: one
// parallel probe before the walk issues (its cost is Latency) and one
// fill after the walk resolves. The hardware walker depends only on this
// interface; the concrete PWC stays visible to the MMU for statistics.
type Cache interface {
	// Latency is the cost of one parallel probe of all levels.
	Latency() uint64
	// Probe returns the deepest level whose cache holds the walk prefix
	// of v; ok is false when every level missed.
	Probe(v addr.V) (deepest addr.Level, ok bool)
	// Fill records the upper-level entries a completed walk traversed.
	Fill(v addr.V, walked []addr.Level)
}

// PWC is a set of per-level page-walk caches. The per-level tables and
// counters are dense arrays indexed by addr.Level — Probe runs before
// every sequential walk and Fill after it, so the per-level lookups
// must touch no map buckets. Not safe for concurrent use.
type PWC struct {
	cfg    Config
	tables [addr.L2L1 + 1]*assoc.Table[struct{}]
	stats  [addr.L2L1 + 1]*stats.HitMiss
}

var _ Cache = (*PWC)(nil)

// New builds the per-level caches.
func New(cfg Config) *PWC {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic(fmt.Sprintf("pwc: invalid geometry %+v", cfg))
	}
	p := &PWC{cfg: cfg}
	for _, l := range cfg.Levels {
		if l < 0 || l > addr.L2L1 {
			panic(fmt.Sprintf("pwc: invalid level %v", l))
		}
		p.tables[l] = assoc.New[struct{}](cfg.Entries/cfg.Ways, cfg.Ways)
		p.stats[l] = &stats.HitMiss{}
	}
	return p
}

// Latency returns the cost of one parallel probe of all levels.
func (p *PWC) Latency() uint64 { return p.cfg.Latency }

// Levels returns the levels that have a PWC, in configuration order.
func (p *PWC) Levels() []addr.Level { return p.cfg.Levels }

// Has reports whether level l has a PWC.
func (p *PWC) Has(l addr.Level) bool {
	return l >= 0 && l <= addr.L2L1 && p.tables[l] != nil
}

// Probe checks all per-level caches for the walk of v in one parallel
// access and returns the deepest level whose PWC hit (the level whose
// *child table* the walker can jump to). ok is false when every level
// missed and the walk must start at the root.
//
// Hit/miss statistics are recorded per level on every probe, which is how
// the paper reports per-level PWC hit rates.
func (p *PWC) Probe(v addr.V) (deepest addr.Level, ok bool) {
	for _, l := range p.cfg.Levels {
		_, hit := p.tables[l].Lookup(addr.Prefix(v, l))
		p.stats[l].Record(hit)
		if hit && (!ok || lower(l, deepest)) {
			deepest, ok = l, true
		}
	}
	return deepest, ok
}

// lower reports whether level a sits below level b in the tree (closer to
// the leaf), i.e. a hit at a skips more of the walk.
func lower(a, b addr.Level) bool {
	return addr.Depth(a) > addr.Depth(b)
}

// Fill records the upper-level entries discovered by a completed walk:
// for every cached level that the walk traversed, the entry mapping that
// level's prefix is inserted.
func (p *PWC) Fill(v addr.V, walked []addr.Level) {
	for _, l := range walked {
		if t := p.tables[l]; t != nil {
			t.Insert(addr.Prefix(v, l), struct{}{})
		}
	}
}

// HitRate returns the hit rate of level l's PWC (0 if the level has no
// PWC or saw no probes).
func (p *PWC) HitRate(l addr.Level) float64 {
	if !p.Has(l) {
		return 0
	}
	return p.stats[l].HitRate()
}

// Stats returns the live counters for level l (nil if no PWC at l).
func (p *PWC) Stats(l addr.Level) *stats.HitMiss {
	if l < 0 || l > addr.L2L1 {
		return nil
	}
	return p.stats[l]
}

// ResetStats zeroes all counters (contents preserved).
func (p *PWC) ResetStats() {
	for l := range p.stats {
		if p.stats[l] != nil {
			p.stats[l] = &stats.HitMiss{}
		}
	}
}

// Flush empties all per-level caches.
func (p *PWC) Flush() {
	for _, t := range p.tables {
		if t != nil {
			t.Flush()
		}
	}
}
