package assoc

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []struct{ sets, ways int }{{0, 1}, {3, 1}, {4, 0}, {-4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", bad.sets, bad.ways)
				}
			}()
			New[int](bad.sets, bad.ways)
		}()
	}
	tab := New[int](8, 2)
	if tab.Sets() != 8 || tab.Ways() != 2 || tab.Capacity() != 16 {
		t.Error("geometry accessors wrong")
	}
}

func TestLookupInsert(t *testing.T) {
	tab := New[string](4, 2)
	if _, ok := tab.Lookup(1); ok {
		t.Fatal("lookup in empty table hit")
	}
	tab.Insert(1, "one")
	v, ok := tab.Lookup(1)
	if !ok || v != "one" {
		t.Fatalf("Lookup(1) = %q, %v", v, ok)
	}
	// Replace in place.
	tab.Insert(1, "uno")
	if v, _ := tab.Lookup(1); v != "uno" {
		t.Fatalf("after replace: %q", v)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	// Fully-associative (1 set) makes LRU order easy to check.
	tab := New[int](1, 2)
	tab.Insert(10, 1)
	tab.Insert(20, 2)
	tab.Lookup(10) // promote 10; 20 becomes LRU
	k, v, evicted := tab.Insert(30, 3)
	if !evicted || k != 20 || v != 2 {
		t.Fatalf("evicted (%d,%d,%v), want (20,2,true)", k, v, evicted)
	}
	if _, ok := tab.Lookup(10); !ok {
		t.Error("promoted entry 10 was evicted")
	}
	if _, ok := tab.Lookup(20); ok {
		t.Error("LRU entry 20 still present")
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	tab := New[int](1, 2)
	tab.Insert(1, 1)
	tab.Insert(2, 2)
	tab.Peek(1) // must NOT promote 1
	_, _, evicted := tab.Insert(3, 3)
	if !evicted {
		t.Fatal("expected eviction")
	}
	if _, ok := tab.Peek(1); ok {
		t.Error("1 should have been evicted (Peek must not promote)")
	}
	if _, ok := tab.Peek(2); !ok {
		t.Error("2 should have survived")
	}
}

func TestUpdate(t *testing.T) {
	tab := New[int](1, 2)
	tab.Insert(1, 1)
	tab.Insert(2, 2)
	if !tab.Update(1, 100) {
		t.Fatal("Update of present key failed")
	}
	if tab.Update(99, 0) {
		t.Fatal("Update of absent key succeeded")
	}
	// Update must not promote: 1 is still LRU.
	_, _, _ = tab.Insert(3, 3)
	if _, ok := tab.Peek(1); ok {
		t.Error("Update promoted key 1")
	}
	if v, ok := tab.Peek(2); !ok || v != 2 {
		t.Error("key 2 lost")
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	tab := New[int](4, 2)
	tab.Insert(1, 1)
	tab.Insert(2, 2)
	if !tab.Invalidate(1) {
		t.Fatal("Invalidate of present key failed")
	}
	if tab.Invalidate(1) {
		t.Fatal("Invalidate of absent key succeeded")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
	tab.Flush()
	if tab.Len() != 0 {
		t.Fatal("Flush left entries")
	}
}

func TestRange(t *testing.T) {
	tab := New[int](4, 2)
	for k := uint64(0); k < 5; k++ {
		tab.Insert(k, int(k)*10)
	}
	sum := 0
	tab.Range(func(k uint64, v int) bool {
		sum += v
		return true
	})
	if sum != 0+10+20+30+40 {
		t.Errorf("Range sum = %d", sum)
	}
	count := 0
	tab.Range(func(k uint64, v int) bool {
		count++
		return false // early stop
	})
	if count != 1 {
		t.Errorf("early-stop Range visited %d entries", count)
	}
}

// Property: the table never holds more than capacity entries and a key
// inserted last in its set is always found.
func TestCapacityProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		tab := New[uint64](4, 4)
		for _, k := range keys {
			tab.Insert(k, k)
			if v, ok := tab.Lookup(k); !ok || v != k {
				return false
			}
		}
		return tab.Len() <= tab.Capacity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: with unique keys not exceeding one set's ways, nothing is ever
// evicted from a fully-associative table until capacity is reached.
func TestNoPrematureEviction(t *testing.T) {
	tab := New[int](1, 8)
	for k := uint64(0); k < 8; k++ {
		if _, _, evicted := tab.Insert(k, 0); evicted {
			t.Fatalf("premature eviction at key %d", k)
		}
	}
	if _, _, evicted := tab.Insert(8, 0); !evicted {
		t.Fatal("insert beyond capacity did not evict")
	}
}

func TestSetDistribution(t *testing.T) {
	// Sequential keys must spread over sets, not collide in one.
	tab := New[int](64, 1)
	evictions := 0
	for k := uint64(0); k < 64; k++ {
		if _, _, ev := tab.Insert(k, 0); ev {
			evictions++
		}
	}
	// Perfect spreading would give 0; tolerate mild imbalance from mixing.
	if evictions > 24 {
		t.Errorf("sequential keys caused %d evictions in 64 sets", evictions)
	}
}

// refTable is the pre-SoA array-of-structs implementation, kept verbatim
// as the differential oracle: the SoA table must make identical hit,
// free-way, victim, and Range-order decisions for any operation mix,
// because table decisions feed simulated timing and the golden tests pin
// that timing bit for bit.
type refTable[V any] struct {
	ways  int
	mask  uint64
	lines []refLine[V]
	clock uint64
}

type refLine[V any] struct {
	key   uint64
	value V
	valid bool
	lru   uint64
}

func newRef[V any](sets, ways int) *refTable[V] {
	return &refTable[V]{ways: ways, mask: uint64(sets - 1), lines: make([]refLine[V], sets*ways)}
}

func (t *refTable[V]) set(key uint64) []refLine[V] {
	s := int(mix(key) & t.mask)
	return t.lines[s*t.ways : (s+1)*t.ways]
}

func (t *refTable[V]) Lookup(key uint64) (V, bool) {
	set := t.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			t.clock++
			set[i].lru = t.clock
			return set[i].value, true
		}
	}
	var zero V
	return zero, false
}

func (t *refTable[V]) Insert(key uint64, v V) (uint64, V, bool) {
	var zeroV V
	set := t.set(key)
	t.clock++
	for i := range set {
		if set[i].valid && set[i].key == key {
			set[i].value = v
			set[i].lru = t.clock
			return 0, zeroV, false
		}
	}
	for i := range set {
		if !set[i].valid {
			set[i] = refLine[V]{key: key, value: v, valid: true, lru: t.clock}
			return 0, zeroV, false
		}
	}
	victim := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	ek, ev := set[victim].key, set[victim].value
	set[victim] = refLine[V]{key: key, value: v, valid: true, lru: t.clock}
	return ek, ev, true
}

func (t *refTable[V]) Invalidate(key uint64) bool {
	set := t.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			set[i].valid = false
			return true
		}
	}
	return false
}

func (t *refTable[V]) Range(fn func(key uint64, v V) bool) {
	for i := range t.lines {
		if t.lines[i].valid && !fn(t.lines[i].key, t.lines[i].value) {
			return
		}
	}
}

// TestSoAMatchesAoSReference drives the SoA table and the AoS reference
// through long pseudo-random operation mixes on a small hot table (heavy
// eviction and invalidation) and requires identical results, including
// eviction victims and Range order.
func TestSoAMatchesAoSReference(t *testing.T) {
	state := uint64(0x2545F4914F6CDD1D)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	got := New[uint64](4, 4)
	want := newRef[uint64](4, 4)
	for op := 0; op < 20000; op++ {
		key := next() % 96 // ~6 hot keys per set: constant conflict
		switch next() % 4 {
		case 0, 1:
			gk, gv, ge := got.Insert(key, uint64(op))
			wk, wv, we := want.Insert(key, uint64(op))
			if gk != wk || gv != wv || ge != we {
				t.Fatalf("op %d: Insert(%d) = (%d,%d,%v), reference (%d,%d,%v)",
					op, key, gk, gv, ge, wk, wv, we)
			}
		case 2:
			gv, gok := got.Lookup(key)
			wv, wok := want.Lookup(key)
			if gv != wv || gok != wok {
				t.Fatalf("op %d: Lookup(%d) = (%d,%v), reference (%d,%v)", op, key, gv, gok, wv, wok)
			}
		case 3:
			if g, w := got.Invalidate(key), want.Invalidate(key); g != w {
				t.Fatalf("op %d: Invalidate(%d) = %v, reference %v", op, key, g, w)
			}
		}
		if op%500 == 0 {
			var gSeq, wSeq []uint64
			got.Range(func(k uint64, v uint64) bool { gSeq = append(gSeq, k, v); return true })
			want.Range(func(k uint64, v uint64) bool { wSeq = append(wSeq, k, v); return true })
			if len(gSeq) != len(wSeq) {
				t.Fatalf("op %d: Range visited %d entries, reference %d", op, len(gSeq)/2, len(wSeq)/2)
			}
			for i := range gSeq {
				if gSeq[i] != wSeq[i] {
					t.Fatalf("op %d: Range order diverged at %d: %d vs %d", op, i, gSeq[i], wSeq[i])
				}
			}
		}
	}
}

func BenchmarkLookupHit(b *testing.B) {
	t := New[uint64](64, 8)
	t.Insert(42, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(42)
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	t := New[uint64](64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(uint64(i), uint64(i))
	}
}
