package assoc

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []struct{ sets, ways int }{{0, 1}, {3, 1}, {4, 0}, {-4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", bad.sets, bad.ways)
				}
			}()
			New[int](bad.sets, bad.ways)
		}()
	}
	tab := New[int](8, 2)
	if tab.Sets() != 8 || tab.Ways() != 2 || tab.Capacity() != 16 {
		t.Error("geometry accessors wrong")
	}
}

func TestLookupInsert(t *testing.T) {
	tab := New[string](4, 2)
	if _, ok := tab.Lookup(1); ok {
		t.Fatal("lookup in empty table hit")
	}
	tab.Insert(1, "one")
	v, ok := tab.Lookup(1)
	if !ok || v != "one" {
		t.Fatalf("Lookup(1) = %q, %v", v, ok)
	}
	// Replace in place.
	tab.Insert(1, "uno")
	if v, _ := tab.Lookup(1); v != "uno" {
		t.Fatalf("after replace: %q", v)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	// Fully-associative (1 set) makes LRU order easy to check.
	tab := New[int](1, 2)
	tab.Insert(10, 1)
	tab.Insert(20, 2)
	tab.Lookup(10) // promote 10; 20 becomes LRU
	k, v, evicted := tab.Insert(30, 3)
	if !evicted || k != 20 || v != 2 {
		t.Fatalf("evicted (%d,%d,%v), want (20,2,true)", k, v, evicted)
	}
	if _, ok := tab.Lookup(10); !ok {
		t.Error("promoted entry 10 was evicted")
	}
	if _, ok := tab.Lookup(20); ok {
		t.Error("LRU entry 20 still present")
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	tab := New[int](1, 2)
	tab.Insert(1, 1)
	tab.Insert(2, 2)
	tab.Peek(1) // must NOT promote 1
	_, _, evicted := tab.Insert(3, 3)
	if !evicted {
		t.Fatal("expected eviction")
	}
	if _, ok := tab.Peek(1); ok {
		t.Error("1 should have been evicted (Peek must not promote)")
	}
	if _, ok := tab.Peek(2); !ok {
		t.Error("2 should have survived")
	}
}

func TestUpdate(t *testing.T) {
	tab := New[int](1, 2)
	tab.Insert(1, 1)
	tab.Insert(2, 2)
	if !tab.Update(1, 100) {
		t.Fatal("Update of present key failed")
	}
	if tab.Update(99, 0) {
		t.Fatal("Update of absent key succeeded")
	}
	// Update must not promote: 1 is still LRU.
	_, _, _ = tab.Insert(3, 3)
	if _, ok := tab.Peek(1); ok {
		t.Error("Update promoted key 1")
	}
	if v, ok := tab.Peek(2); !ok || v != 2 {
		t.Error("key 2 lost")
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	tab := New[int](4, 2)
	tab.Insert(1, 1)
	tab.Insert(2, 2)
	if !tab.Invalidate(1) {
		t.Fatal("Invalidate of present key failed")
	}
	if tab.Invalidate(1) {
		t.Fatal("Invalidate of absent key succeeded")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
	tab.Flush()
	if tab.Len() != 0 {
		t.Fatal("Flush left entries")
	}
}

func TestRange(t *testing.T) {
	tab := New[int](4, 2)
	for k := uint64(0); k < 5; k++ {
		tab.Insert(k, int(k)*10)
	}
	sum := 0
	tab.Range(func(k uint64, v int) bool {
		sum += v
		return true
	})
	if sum != 0+10+20+30+40 {
		t.Errorf("Range sum = %d", sum)
	}
	count := 0
	tab.Range(func(k uint64, v int) bool {
		count++
		return false // early stop
	})
	if count != 1 {
		t.Errorf("early-stop Range visited %d entries", count)
	}
}

// Property: the table never holds more than capacity entries and a key
// inserted last in its set is always found.
func TestCapacityProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		tab := New[uint64](4, 4)
		for _, k := range keys {
			tab.Insert(k, k)
			if v, ok := tab.Lookup(k); !ok || v != k {
				return false
			}
		}
		return tab.Len() <= tab.Capacity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: with unique keys not exceeding one set's ways, nothing is ever
// evicted from a fully-associative table until capacity is reached.
func TestNoPrematureEviction(t *testing.T) {
	tab := New[int](1, 8)
	for k := uint64(0); k < 8; k++ {
		if _, _, evicted := tab.Insert(k, 0); evicted {
			t.Fatalf("premature eviction at key %d", k)
		}
	}
	if _, _, evicted := tab.Insert(8, 0); !evicted {
		t.Fatal("insert beyond capacity did not evict")
	}
}

func TestSetDistribution(t *testing.T) {
	// Sequential keys must spread over sets, not collide in one.
	tab := New[int](64, 1)
	evictions := 0
	for k := uint64(0); k < 64; k++ {
		if _, _, ev := tab.Insert(k, 0); ev {
			evictions++
		}
	}
	// Perfect spreading would give 0; tolerate mild imbalance from mixing.
	if evictions > 24 {
		t.Errorf("sequential keys caused %d evictions in 64 sets", evictions)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	t := New[uint64](64, 8)
	t.Insert(42, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(42)
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	t := New[uint64](64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(uint64(i), uint64(i))
	}
}
