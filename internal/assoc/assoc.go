// Package assoc implements the generic set-associative, LRU-replaced
// lookup structure that underlies every tagged hardware array in the
// simulator: data caches, TLBs, and page-walk caches.
//
// Keys are uint64 tags chosen by the caller (cache-line numbers, virtual
// page numbers, walk prefixes). The set index is taken from the low bits
// of the key after a mixing step, so callers may pass keys with poor
// low-bit entropy.
//
// The storage is structure-of-arrays: tags, LRU stamps, and values live
// in three parallel set-major slices, with one occupancy bitmask word
// per set. Lookup — the simulator's second-hottest loop after resource
// reservation — therefore scans a dense run of bare uint64 tags instead
// of striding over full entry structs (for a TLB entry the AoS stride
// was 5 words per way; the tag scan now touches one). Validity lives in
// the occupancy word, so invalid ways cost a bit test, not a struct
// load, and the free-way probe is a single trailing-zeros instruction.
// The parallel arrays are always indexed identically, which keeps
// victim selection, free-way choice (lowest invalid way), and Range
// order exactly what the AoS implementation produced.
package assoc

import "math/bits"

// Table is a set-associative array mapping uint64 keys to values of type V
// with true-LRU replacement within each set.
type Table[V any] struct {
	sets int
	ways int
	mask uint64
	// Parallel set-major arrays, sets*ways entries each: way w of set s
	// is index s*ways+w in all three. A tag or value is meaningful only
	// while the way's occupancy bit is set; clearing the bit is the only
	// invalidation (stale tags never match because the bit gates them).
	tags  []uint64
	lru   []uint64
	vals  []V
	occ   []uint64 // per-set occupancy word; bit w = way w valid
	clock uint64   // global LRU timestamp source
}

// New creates a table with the given number of sets (must be a power of
// two, >= 1) and ways (1..64 — the occupancy bitmask is one word).
func New[V any](sets, ways int) *Table[V] {
	if sets < 1 || sets&(sets-1) != 0 {
		panic("assoc: sets must be a positive power of two")
	}
	if ways < 1 || ways > 64 {
		panic("assoc: ways must be in 1..64")
	}
	return &Table[V]{
		sets: sets,
		ways: ways,
		mask: uint64(sets - 1),
		tags: make([]uint64, sets*ways),
		lru:  make([]uint64, sets*ways),
		vals: make([]V, sets*ways),
		occ:  make([]uint64, sets),
	}
}

// Sets returns the number of sets.
func (t *Table[V]) Sets() int { return t.sets }

// Ways returns the associativity.
func (t *Table[V]) Ways() int { return t.ways }

// Capacity returns sets*ways.
func (t *Table[V]) Capacity() int { return t.sets * t.ways }

// mix spreads key entropy into the set-index bits. Fibonacci hashing; keys
// such as sequential VPNs stay conflict-free, pathological strides do not
// all land in one set.
func mix(key uint64) uint64 {
	return key * 0x9e3779b97f4a7c15 >> 17
}

// find returns the line index of key, or -1. The tag scan runs over the
// dense tag run for the set; the occupancy bit gates stale tags.
func (t *Table[V]) find(key uint64) int {
	s := int(mix(key) & t.mask)
	base := s * t.ways
	occ := t.occ[s]
	for w, tag := range t.tags[base : base+t.ways] {
		if tag == key && occ&(1<<uint(w)) != 0 {
			return base + w
		}
	}
	return -1
}

// Lookup finds key, promoting it to most-recently-used. The second result
// reports whether the key was present.
func (t *Table[V]) Lookup(key uint64) (V, bool) {
	if i := t.find(key); i >= 0 {
		t.clock++
		t.lru[i] = t.clock
		return t.vals[i], true
	}
	var zero V
	return zero, false
}

// Peek finds key without updating recency.
func (t *Table[V]) Peek(key uint64) (V, bool) {
	if i := t.find(key); i >= 0 {
		return t.vals[i], true
	}
	var zero V
	return zero, false
}

// Update replaces the value of an existing key without changing recency.
// It reports whether the key was present.
func (t *Table[V]) Update(key uint64, v V) bool {
	if i := t.find(key); i >= 0 {
		t.vals[i] = v
		return true
	}
	return false
}

// Insert adds key with value v, evicting the LRU entry of the set if it is
// full. If the key is already present its value is replaced and promoted.
// The eviction results report what was displaced, so caches can model
// dirty write-backs.
func (t *Table[V]) Insert(key uint64, v V) (evictedKey uint64, evictedVal V, evicted bool) {
	s := int(mix(key) & t.mask)
	base := s * t.ways
	occ := t.occ[s]
	t.clock++
	// Hit: replace in place.
	for w, tag := range t.tags[base : base+t.ways] {
		if tag == key && occ&(1<<uint(w)) != 0 {
			t.vals[base+w] = v
			t.lru[base+w] = t.clock
			return 0, evictedVal, false
		}
	}
	// Free way: the lowest invalid one, same choice the AoS scan made.
	if w := bits.TrailingZeros64(^occ); w < t.ways {
		t.tags[base+w] = key
		t.vals[base+w] = v
		t.lru[base+w] = t.clock
		t.occ[s] = occ | 1<<uint(w)
		return 0, evictedVal, false
	}
	// Evict LRU (every way is valid here).
	victim := base
	for i := base + 1; i < base+t.ways; i++ {
		if t.lru[i] < t.lru[victim] {
			victim = i
		}
	}
	evictedKey, evictedVal = t.tags[victim], t.vals[victim]
	t.tags[victim] = key
	t.vals[victim] = v
	t.lru[victim] = t.clock
	return evictedKey, evictedVal, true
}

// Invalidate removes key, reporting whether it was present.
func (t *Table[V]) Invalidate(key uint64) bool {
	if i := t.find(key); i >= 0 {
		t.occ[i/t.ways] &^= 1 << uint(i%t.ways)
		return true
	}
	return false
}

// Flush removes every entry.
func (t *Table[V]) Flush() {
	for i := range t.occ {
		t.occ[i] = 0
	}
}

// Len returns the number of valid entries.
func (t *Table[V]) Len() int {
	n := 0
	for _, occ := range t.occ {
		n += bits.OnesCount64(occ)
	}
	return n
}

// Range calls fn for every valid entry; if fn returns false iteration
// stops. Iteration order is internal array order (deterministic).
func (t *Table[V]) Range(fn func(key uint64, v V) bool) {
	for s := 0; s < t.sets; s++ {
		occ := t.occ[s]
		if occ == 0 {
			continue
		}
		base := s * t.ways
		for w := 0; w < t.ways; w++ {
			if occ&(1<<uint(w)) != 0 && !fn(t.tags[base+w], t.vals[base+w]) {
				return
			}
		}
	}
}
