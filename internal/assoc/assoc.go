// Package assoc implements the generic set-associative, LRU-replaced
// lookup structure that underlies every tagged hardware array in the
// simulator: data caches, TLBs, and page-walk caches.
//
// Keys are uint64 tags chosen by the caller (cache-line numbers, virtual
// page numbers, walk prefixes). The set index is taken from the low bits
// of the key after a mixing step, so callers may pass keys with poor
// low-bit entropy.
package assoc

// Table is a set-associative array mapping uint64 keys to values of type V
// with true-LRU replacement within each set.
type Table[V any] struct {
	sets  int
	ways  int
	mask  uint64
	lines []line[V] // sets*ways entries, set-major
	clock uint64    // global LRU timestamp source
}

type line[V any] struct {
	key   uint64
	value V
	valid bool
	lru   uint64
}

// New creates a table with the given number of sets (must be a power of
// two, >= 1) and ways (>= 1).
func New[V any](sets, ways int) *Table[V] {
	if sets < 1 || sets&(sets-1) != 0 {
		panic("assoc: sets must be a positive power of two")
	}
	if ways < 1 {
		panic("assoc: ways must be >= 1")
	}
	return &Table[V]{
		sets:  sets,
		ways:  ways,
		mask:  uint64(sets - 1),
		lines: make([]line[V], sets*ways),
	}
}

// Sets returns the number of sets.
func (t *Table[V]) Sets() int { return t.sets }

// Ways returns the associativity.
func (t *Table[V]) Ways() int { return t.ways }

// Capacity returns sets*ways.
func (t *Table[V]) Capacity() int { return t.sets * t.ways }

// mix spreads key entropy into the set-index bits. Fibonacci hashing; keys
// such as sequential VPNs stay conflict-free, pathological strides do not
// all land in one set.
func mix(key uint64) uint64 {
	return key * 0x9e3779b97f4a7c15 >> 17
}

func (t *Table[V]) set(key uint64) []line[V] {
	s := int(mix(key) & t.mask)
	return t.lines[s*t.ways : (s+1)*t.ways]
}

// Lookup finds key, promoting it to most-recently-used. The second result
// reports whether the key was present.
func (t *Table[V]) Lookup(key uint64) (V, bool) {
	set := t.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			t.clock++
			set[i].lru = t.clock
			return set[i].value, true
		}
	}
	var zero V
	return zero, false
}

// Peek finds key without updating recency.
func (t *Table[V]) Peek(key uint64) (V, bool) {
	set := t.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			return set[i].value, true
		}
	}
	var zero V
	return zero, false
}

// Update replaces the value of an existing key without changing recency.
// It reports whether the key was present.
func (t *Table[V]) Update(key uint64, v V) bool {
	set := t.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			set[i].value = v
			return true
		}
	}
	return false
}

// Insert adds key with value v, evicting the LRU entry of the set if it is
// full. If the key is already present its value is replaced and promoted.
// The eviction results report what was displaced, so caches can model
// dirty write-backs.
func (t *Table[V]) Insert(key uint64, v V) (evictedKey uint64, evictedVal V, evicted bool) {
	set := t.set(key)
	t.clock++
	// Hit: replace in place.
	for i := range set {
		if set[i].valid && set[i].key == key {
			set[i].value = v
			set[i].lru = t.clock
			return 0, evictedVal, false
		}
	}
	// Free way.
	for i := range set {
		if !set[i].valid {
			set[i] = line[V]{key: key, value: v, valid: true, lru: t.clock}
			return 0, evictedVal, false
		}
	}
	// Evict LRU.
	victim := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	evictedKey, evictedVal = set[victim].key, set[victim].value
	set[victim] = line[V]{key: key, value: v, valid: true, lru: t.clock}
	return evictedKey, evictedVal, true
}

// Invalidate removes key, reporting whether it was present.
func (t *Table[V]) Invalidate(key uint64) bool {
	set := t.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			set[i].valid = false
			return true
		}
	}
	return false
}

// Flush removes every entry.
func (t *Table[V]) Flush() {
	for i := range t.lines {
		t.lines[i].valid = false
	}
}

// Len returns the number of valid entries.
func (t *Table[V]) Len() int {
	n := 0
	for i := range t.lines {
		if t.lines[i].valid {
			n++
		}
	}
	return n
}

// Range calls fn for every valid entry; if fn returns false iteration
// stops. Iteration order is internal array order (deterministic).
func (t *Table[V]) Range(fn func(key uint64, v V) bool) {
	for i := range t.lines {
		if t.lines[i].valid && !fn(t.lines[i].key, t.lines[i].value) {
			return
		}
	}
}
