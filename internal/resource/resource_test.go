package resource

import (
	"testing"
	"testing/quick"

	"ndpage/internal/xrand"
)

func TestReserveIdle(t *testing.T) {
	var s Slots
	if got := s.Reserve(100, 10); got != 100 {
		t.Fatalf("idle reserve = %d, want 100", got)
	}
	if !s.IdleAt(110) || s.IdleAt(105) {
		t.Error("IdleAt wrong")
	}
}

func TestReserveQueuesBehindConflict(t *testing.T) {
	var s Slots
	s.Reserve(100, 50) // [100,150)
	if got := s.Reserve(120, 10); got != 150 {
		t.Fatalf("conflicting reserve = %d, want 150", got)
	}
}

// TestEarlierRequestUsesIdleGap is the engine-correctness property: a
// request with an *earlier* timestamp than an existing future booking
// must be served in the idle gap before it, not behind it.
func TestEarlierRequestUsesIdleGap(t *testing.T) {
	var s Slots
	s.Reserve(1000, 100) // a far-future chain from another core
	if got := s.Reserve(10, 50); got != 10 {
		t.Fatalf("earlier request served at %d, want 10 (idle gap)", got)
	}
	// A third request that does not fit the remaining gap goes after.
	if got := s.Reserve(990, 50); got != 1100 {
		t.Fatalf("gap-overflow request served at %d, want 1100", got)
	}
}

func TestExactFitGap(t *testing.T) {
	var s Slots
	s.Reserve(0, 10)  // [0,10)
	s.Reserve(20, 10) // [20,30)
	if got := s.Reserve(0, 10); got != 10 {
		t.Fatalf("exact-fit gap = %d, want 10", got)
	}
}

func TestNextFreeDoesNotBook(t *testing.T) {
	var s Slots
	s.Reserve(0, 10)
	if got := s.NextFree(0, 5); got != 10 {
		t.Fatalf("NextFree = %d, want 10", got)
	}
	// Not booked: the same reservation is still available.
	if got := s.Reserve(0, 5); got != 10 {
		t.Fatalf("Reserve after NextFree = %d, want 10", got)
	}
}

func TestZeroDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-duration Reserve did not panic")
		}
	}()
	var s Slots
	s.Reserve(0, 0)
}

func TestWindowEviction(t *testing.T) {
	var s Slots
	// Far more reservations than the window; must not panic and must
	// remain consistent (monotone service for in-order arrivals).
	last := uint64(0)
	for i := 0; i < 10*window; i++ {
		got := s.Reserve(uint64(i), 3)
		if got < uint64(i) {
			t.Fatalf("reservation %d starts before arrival", i)
		}
		if got < last {
			t.Fatalf("in-order arrivals served out of order: %d after %d", got, last)
		}
		last = got
	}
}

// Property: reservations never overlap (within the remembered window).
func TestNoOverlapProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var s Slots
		type iv struct{ a, b uint64 }
		var placed []iv
		for _, r := range raw {
			now := uint64(r % 1000)
			dur := uint64(r%7 + 1)
			start := s.Reserve(now, dur)
			if start < now {
				return false
			}
			placed = append(placed, iv{start, start + dur})
			if len(placed) > window {
				placed = placed[1:] // only the window is guaranteed
			}
			for i := 0; i < len(placed); i++ {
				for j := i + 1; j < len(placed); j++ {
					a, b := placed[i], placed[j]
					if a.a < b.b && b.a < a.b {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestParallelStreamsOverlap: two independent "cores" issuing at the same
// times onto two different Slots never interfere; onto one Slots they
// serialize only by the occupancy, not by each other's chains.
func TestSerializationIsBoundedByOccupancy(t *testing.T) {
	var s Slots
	rng := xrand.New(1)
	// Core A books a long chain of short slots into the future.
	tA := uint64(0)
	for i := 0; i < 10; i++ {
		start := s.Reserve(tA, 4)
		tA = start + 4 + 100 // dependent chain with gaps
	}
	// Core B arrives at t=2 with short requests: they must fit the gaps,
	// finishing far before core A's horizon.
	tB := uint64(2)
	for i := 0; i < 10; i++ {
		start := s.Reserve(tB, 4)
		if start > tB+20 {
			t.Fatalf("request at %d served at %d: fake serialization", tB, start)
		}
		tB = start + 4 + uint64(rng.Intn(3))
	}
}

func TestReset(t *testing.T) {
	var s Slots
	s.Reserve(0, 100)
	s.Reset()
	if got := s.Reserve(0, 10); got != 0 {
		t.Fatalf("post-Reset reserve = %d, want 0", got)
	}
}

func BenchmarkReserve(b *testing.B) {
	var s Slots
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = s.Reserve(now, 4) + 20
	}
}

// refSlots is the pre-optimization reference implementation (linear
// scan, single eviction, no fast path), kept verbatim for differential
// testing: the fast-path Slots must return identical placements for any
// request sequence, since placements feed simulated timing and the
// golden tests pin that timing bit for bit.
type refSlots struct {
	busy  [window]interval
	n     int
	floor uint64
}

func (s *refSlots) Reserve(now, dur uint64) uint64 {
	candidate := now
	if s.floor > candidate {
		candidate = s.floor
	}
	idx := s.n
	for i := 0; i < s.n; i++ {
		iv := s.busy[i]
		if candidate+dur <= iv.start {
			idx = i
			break
		}
		if iv.end > candidate {
			candidate = iv.end
		}
	}
	s.insert(idx, interval{candidate, candidate + dur})
	return candidate
}

func (s *refSlots) insert(idx int, iv interval) {
	if s.n == window {
		ev := 0
		for i := 1; i < s.n; i++ {
			if s.busy[i].end < s.busy[ev].end {
				ev = i
			}
		}
		if s.busy[ev].end > s.floor {
			s.floor = s.busy[ev].end
		}
		copy(s.busy[ev:], s.busy[ev+1:s.n])
		s.n--
		if ev < idx {
			idx--
		}
	}
	copy(s.busy[idx+1:s.n+1], s.busy[idx:s.n])
	s.busy[idx] = iv
	s.n++
}

func (s *refSlots) IdleAt(t uint64) bool {
	for i := 0; i < s.n; i++ {
		if s.busy[i].end > t {
			return false
		}
	}
	return true
}

func (s *refSlots) NextFree(now, dur uint64) uint64 {
	candidate := now
	if s.floor > candidate {
		candidate = s.floor
	}
	for i := 0; i < s.n; i++ {
		iv := s.busy[i]
		if candidate+dur <= iv.start {
			return candidate
		}
		if iv.end > candidate {
			candidate = iv.end
		}
	}
	return candidate
}

// TestReserveMatchesReferenceImplementation drives the optimized Slots
// and the reference through long pseudo-random request mixes — in-order
// arrivals, out-of-order arrivals, bursts far past the window — and
// requires every Reserve and NextFree result to agree exactly.
func TestReserveMatchesReferenceImplementation(t *testing.T) {
	state := uint64(0xB5297A4D2F8B0E31)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for round := 0; round < 20; round++ {
		var got Slots
		var want refSlots
		var clock uint64
		for i := 0; i < 2000; i++ {
			// Arrival pattern mixes: mostly near the moving clock, some
			// far behind (out-of-order blocking-core chains), some far
			// ahead (post-fault bursts).
			var now uint64
			switch next() % 8 {
			case 0:
				if back := next() % 500; back < clock {
					now = clock - back
				}
			case 1:
				now = clock + next()%5000
			default:
				now = clock + next()%100
			}
			dur := 1 + next()%120
			if next()%4 == 0 {
				g, w := got.NextFree(now, dur), want.NextFree(now, dur)
				if g != w {
					t.Fatalf("round %d op %d: NextFree(%d, %d) = %d, reference %d", round, i, now, dur, g, w)
				}
			}
			if next()%4 == 0 {
				at := now + next()%200
				if g, w := got.IdleAt(at), want.IdleAt(at); g != w {
					t.Fatalf("round %d op %d: IdleAt(%d) = %v, reference %v", round, i, at, g, w)
				}
			}
			g, w := got.Reserve(now, dur), want.Reserve(now, dur)
			if g != w {
				t.Fatalf("round %d op %d: Reserve(%d, %d) = %d, reference %d", round, i, now, dur, g, w)
			}
			if g > clock {
				clock = g
			}
		}
	}
}
