// Package resource provides busy-interval tracking for shared hardware
// resources (DRAM banks, channel buses, mesh links) under the simulator's
// blocking-core interleaving.
//
// The engine steps the core with the smallest local clock, but one step
// executes a whole dependent access chain (translate, then load), pushing
// that core's clock far ahead. The next core then issues requests with
// *earlier* timestamps. A naive single free-at timestamp would serialize
// those earlier requests behind the first core's entire chain, collapsing
// all parallelism (measured: 4-core runtime exactly 4x 1-core). A Slots
// tracker instead remembers a sliding window of recent busy intervals and
// places each request in the earliest gap at or after its arrival, so
// out-of-order-in-wall-time requests overlap exactly as the hardware
// would have overlapped them.
package resource

// window is the number of busy intervals remembered. It bounds how far
// out-of-order request timestamps may interleave: with blocking cores,
// at most one chain per core is in flight, so a window a few times the
// maximum core count is ample.
const window = 48

type interval struct {
	start, end uint64
}

// Slots is one resource's reservation book. The zero value is ready to
// use (fully idle). Not safe for concurrent use.
type Slots struct {
	// busy intervals, sorted by start time.
	busy [window]interval
	n    int
	// floor is the highest end time among evicted (forgotten)
	// intervals: placement never dips below it, so forgetting an old
	// interval can never resurrect an already-spent gap.
	floor uint64
}

// Reserve books the earliest interval of length dur starting at or after
// `now`, records it, and returns its start time. dur must be positive.
func (s *Slots) Reserve(now, dur uint64) uint64 {
	if dur == 0 {
		panic("resource: zero-duration reservation")
	}
	// Find the earliest gap >= max(now, floor) that fits dur.
	candidate := now
	if s.floor > candidate {
		candidate = s.floor
	}
	idx := s.n // insertion position
	for i := 0; i < s.n; i++ {
		iv := s.busy[i]
		if candidate+dur <= iv.start {
			idx = i
			break
		}
		if iv.end > candidate {
			candidate = iv.end
		}
	}
	s.insert(idx, interval{candidate, candidate + dur})
	return candidate
}

// insert places iv at position idx, keeping order and evicting the
// oldest-ending interval when full.
func (s *Slots) insert(idx int, iv interval) {
	if s.n == window {
		// Evict the interval with the smallest end: it constrains the
		// least future placement. (Ties: first found.) Its end becomes
		// the placement floor.
		ev := 0
		for i := 1; i < s.n; i++ {
			if s.busy[i].end < s.busy[ev].end {
				ev = i
			}
		}
		if s.busy[ev].end > s.floor {
			s.floor = s.busy[ev].end
		}
		copy(s.busy[ev:], s.busy[ev+1:s.n])
		s.n--
		if ev < idx {
			idx--
		}
	}
	copy(s.busy[idx+1:s.n+1], s.busy[idx:s.n])
	s.busy[idx] = iv
	s.n++
}

// NextFree returns the earliest time at or after now at which the
// resource could begin a reservation of length dur, without booking it.
func (s *Slots) NextFree(now, dur uint64) uint64 {
	candidate := now
	if s.floor > candidate {
		candidate = s.floor
	}
	for i := 0; i < s.n; i++ {
		iv := s.busy[i]
		if candidate+dur <= iv.start {
			return candidate
		}
		if iv.end > candidate {
			candidate = iv.end
		}
	}
	return candidate
}

// IdleAt reports whether no booked interval covers or follows t.
func (s *Slots) IdleAt(t uint64) bool {
	for i := 0; i < s.n; i++ {
		if s.busy[i].end > t {
			return false
		}
	}
	return true
}

// Reset clears all reservations and the eviction floor.
func (s *Slots) Reset() {
	s.n = 0
	s.floor = 0
}
