// Package resource provides busy-interval tracking for shared hardware
// resources (DRAM banks, channel buses, mesh links) under the simulator's
// blocking-core interleaving.
//
// The engine steps the core with the smallest local clock, but one step
// executes a whole dependent access chain (translate, then load), pushing
// that core's clock far ahead. The next core then issues requests with
// *earlier* timestamps. A naive single free-at timestamp would serialize
// those earlier requests behind the first core's entire chain, collapsing
// all parallelism (measured: 4-core runtime exactly 4x 1-core). A Slots
// tracker instead remembers a sliding window of recent busy intervals and
// places each request in the earliest gap at or after its arrival, so
// out-of-order-in-wall-time requests overlap exactly as the hardware
// would have overlapped them.
//
// Reserve is the simulator's single hottest function (every DRAM bank,
// channel bus, and mesh link access books through it), so the book is
// engineered for the steady state while returning placements that are
// bit-identical to the straightforward scan-and-shift implementation
// (pinned by a differential test — placements feed simulated timing and
// the golden tests pin that timing exactly):
//
//   - The intervals live in a ring buffer, so evicting the oldest-ending
//     interval — almost always the logically first — is a head bump, not
//     a 47-slot shift, and out-of-order inserts shift whichever side is
//     shorter (requests arrive near the frontier, so usually a slot or
//     two at the tail).
//   - Requests arriving at or past every remembered end (idle banks, the
//     common case across the 16 banks) append in O(1) with no scan.
//   - Interval ends are monotone in start order nearly always (service
//     times are similar); while they are, the eviction victim is the
//     front interval with no scan, and the placement scan skips the
//     prefix of intervals whose ends cannot constrain the request via
//     binary search, leaving only the short out-of-order frontier to
//     walk. One flag tracks monotonicity; rare inversions fall back to
//     the full scan, which re-detects monotonicity for the next call.
//   - IdleAt is an O(1) comparison against the high-water end, valid
//     because eviction removes a minimum end and so never forgets the
//     interval holding the maximum.
package resource

// window is the number of busy intervals remembered. It bounds how far
// out-of-order request timestamps may interleave: with blocking cores,
// at most one chain per core is in flight, so a window a few times the
// maximum core count is ample.
const window = 48

// ringCap is the ring-buffer capacity: the smallest power of two at or
// above window, so logical indexes wrap with a mask.
const ringCap = 64

type interval struct {
	start, end uint64
}

// Slots is one resource's reservation book. The zero value is ready to
// use (fully idle). Not safe for concurrent use.
type Slots struct {
	// buf is a ring of busy intervals, sorted by start time in logical
	// order; head is the physical index of logical position 0.
	buf  [ringCap]interval
	head int
	n    int
	// floor is the highest end time among evicted (forgotten)
	// intervals: placement never dips below it, so forgetting an old
	// interval can never resurrect an already-spent gap.
	floor uint64
	// maxEnd is the highest end time booked (monotone until Reset:
	// eviction removes a minimum end, never the maximum). A request
	// arriving at or past maxEnd cannot be constrained by any
	// remembered interval, so Reserve appends with no scan.
	maxEnd uint64
	// unsorted is set while interval ends are NOT known to be monotone
	// nondecreasing in logical order (the zero value claims monotone,
	// which holds for the empty book). While clear, the eviction victim
	// is logical 0 and placement skips the dead prefix by binary
	// search.
	unsorted bool
}

// at returns the interval at logical position i.
func (s *Slots) at(i int) *interval {
	return &s.buf[(s.head+i)&(ringCap-1)]
}

// Reserve books the earliest interval of length dur starting at or after
// `now`, records it, and returns its start time. dur must be positive.
func (s *Slots) Reserve(now, dur uint64) uint64 {
	if dur == 0 {
		panic("resource: zero-duration reservation")
	}
	// Placement never dips below the floor.
	candidate := now
	if s.floor > candidate {
		candidate = s.floor
	}

	if candidate >= s.maxEnd {
		// Fast path: every remembered interval ends at or before the
		// candidate, so none can delay it and none starts after it —
		// the placement is the candidate itself, appended in order.
		// Appending a new global-maximum end preserves whatever end
		// order the book had.
		if s.n == window {
			s.evict()
		}
		*s.at(s.n) = interval{candidate, candidate + dur}
		s.n++
		s.maxEnd = candidate + dur
		return candidate
	}

	// Find the earliest gap >= candidate that fits dur: walk intervals
	// in start order, bumping the candidate over the ends of intervals
	// it cannot clear, until one starts late enough to leave a gap.
	// While ends are monotone, intervals with end <= candidate can
	// neither bump the candidate nor host a gap before it (their starts
	// precede their ends), so the scan begins past them.
	i0 := 0
	if !s.unsorted {
		lo, hi := 0, s.n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if s.at(mid).end > candidate {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		i0 = lo
	}
	idx := s.n // insertion position
	for i := i0; i < s.n; i++ {
		iv := s.at(i)
		if candidate+dur <= iv.start {
			idx = i
			break
		}
		if iv.end > candidate {
			candidate = iv.end
		}
	}

	iv := interval{candidate, candidate + dur}
	if s.n == window {
		ev := s.evict()
		if ev < idx {
			idx--
		}
	}
	s.insertAt(idx, iv)
	if iv.end > s.maxEnd {
		s.maxEnd = iv.end
	}
	return candidate
}

// evict removes the interval with the smallest end (ties: logically
// first), raises the floor to its end, and returns its pre-removal
// logical position. While ends are monotone that interval is logical 0
// and eviction is a head bump; otherwise a scan finds it — and
// re-detects monotonicity for subsequent calls, since removing an
// interval never breaks an order that holds.
func (s *Slots) evict() int {
	ev, evEnd := 0, s.at(0).end
	if s.unsorted {
		mono := true
		prev := evEnd
		for i := 1; i < s.n; i++ {
			e := s.at(i).end
			if e < prev {
				mono = false
			}
			prev = e
			if e < evEnd {
				ev, evEnd = i, e
			}
		}
		if mono {
			s.unsorted = false
		}
	}
	if evEnd > s.floor {
		s.floor = evEnd
	}
	// Remove at ev, shifting whichever side is shorter.
	if ev <= s.n-1-ev {
		for i := ev; i > 0; i-- {
			*s.at(i) = *s.at(i - 1)
		}
		s.head = (s.head + 1) & (ringCap - 1)
	} else {
		for i := ev; i < s.n-1; i++ {
			*s.at(i) = *s.at(i + 1)
		}
	}
	s.n--
	return ev
}

// insertAt places iv at logical position idx, shifting whichever side
// is shorter and tracking end monotonicity across the new neighbors.
func (s *Slots) insertAt(idx int, iv interval) {
	if !s.unsorted {
		if (idx > 0 && s.at(idx-1).end > iv.end) || (idx < s.n && iv.end > s.at(idx).end) {
			s.unsorted = true
		}
	}
	if idx <= s.n-idx {
		s.head = (s.head - 1) & (ringCap - 1)
		for i := 0; i < idx; i++ {
			*s.at(i) = *s.at(i + 1)
		}
	} else {
		for i := s.n; i > idx; i-- {
			*s.at(i) = *s.at(i - 1)
		}
	}
	*s.at(idx) = iv
	s.n++
}

// NextFree returns the earliest time at or after now at which the
// resource could begin a reservation of length dur, without booking it.
// It shares Reserve's placement scan, including the monotone dead-prefix
// skip: intervals ending at or before the candidate can neither bump it
// nor host a gap before it.
func (s *Slots) NextFree(now, dur uint64) uint64 {
	candidate := now
	if s.floor > candidate {
		candidate = s.floor
	}
	if candidate >= s.maxEnd {
		return candidate
	}
	i0 := 0
	if !s.unsorted {
		lo, hi := 0, s.n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if s.at(mid).end > candidate {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		i0 = lo
	}
	for i := i0; i < s.n; i++ {
		iv := s.at(i)
		if candidate+dur <= iv.start {
			return candidate
		}
		if iv.end > candidate {
			candidate = iv.end
		}
	}
	return candidate
}

// IdleAt reports whether no booked interval covers or follows t. This is
// an O(1) maxEnd comparison: eviction always removes a minimum end, so
// the interval holding maxEnd is never forgotten while the book is
// non-empty, and an empty book has maxEnd zero.
func (s *Slots) IdleAt(t uint64) bool {
	return t >= s.maxEnd
}

// Reset clears all reservations and the eviction floor.
func (s *Slots) Reset() {
	s.head = 0
	s.n = 0
	s.floor = 0
	s.maxEnd = 0
	s.unsorted = false
}
