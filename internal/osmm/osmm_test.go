package osmm

import (
	"testing"

	"ndpage/internal/addr"
	"ndpage/internal/pagetable"
	"ndpage/internal/phys"
	"ndpage/internal/xrand"
)

const testMem = 512 << 20

func newAS(policy Policy) (*AddressSpace, *phys.Allocator) {
	alloc := phys.New(testMem)
	var table pagetable.Table = pagetable.NewRadix(alloc)
	return New(table, alloc, DefaultConfig(policy, alloc.TotalFrames())), alloc
}

func TestAllocPopulatesEagerly(t *testing.T) {
	as, _ := newAS(Base4K)
	base := as.Alloc(10<<20, "data")
	// Every page of the region must already be mapped: no fault cost.
	for off := uint64(0); off < 10<<20; off += addr.PageSize {
		if cost := as.Touch(base + addr.V(off)); cost != 0 {
			t.Fatalf("eager region faulted at +%d (cost %d)", off, cost)
		}
	}
	if as.Stats().Faults4K != 0 {
		t.Errorf("eager population recorded faults: %+v", as.Stats())
	}
	if got := as.Stats().Populated; got != 10<<20/addr.PageSize {
		t.Errorf("Populated = %d pages", got)
	}
}

func TestAllocLazyFaultsOnTouch(t *testing.T) {
	as, _ := newAS(Base4K)
	base := as.AllocLazy(4<<20, "growing")
	cost := as.Touch(base)
	if cost != as.cfg.FaultCost4K {
		t.Fatalf("first touch cost = %d, want %d", cost, as.cfg.FaultCost4K)
	}
	if as.Touch(base) != 0 {
		t.Fatal("second touch of same page faulted")
	}
	if as.Touch(base+addr.PageSize) == 0 {
		t.Fatal("next page should fault separately")
	}
	s := as.Stats()
	if s.Faults4K != 2 || s.FaultCycles != 2*as.cfg.FaultCost4K {
		t.Errorf("stats = %+v", s)
	}
}

func TestHugePolicyFaultsWholeChunk(t *testing.T) {
	as, _ := newAS(Huge2M)
	base := as.AllocLazy(4<<20, "growing")
	cost := as.Touch(base + 12345)
	if cost != as.cfg.FaultCost2M {
		t.Fatalf("huge fault cost = %d, want %d", cost, as.cfg.FaultCost2M)
	}
	// The whole 2 MB chunk is now mapped.
	for off := uint64(0); off < addr.HugePageSize; off += addr.PageSize {
		if as.Touch(base+addr.V(off)) != 0 {
			t.Fatalf("page +%d not covered by huge fault", off)
		}
	}
	// Next chunk faults again.
	if as.Touch(base+addr.HugePageSize) != as.cfg.FaultCost2M {
		t.Fatal("second chunk did not fault huge")
	}
	if as.Stats().Faults2M != 2 {
		t.Errorf("Faults2M = %d", as.Stats().Faults2M)
	}
}

func TestHugeFallbackWhenNoContiguity(t *testing.T) {
	alloc := phys.New(64 << 20)
	// Exhaust contiguity.
	for {
		if _, ok := alloc.AllocHuge(); !ok {
			break
		}
	}
	// Free scattered singles so 4 KB allocation works but 2 MB does not.
	// (Simplest: new allocator + fragmentation.)
	alloc = phys.New(64 << 20)
	blocks := int(64 << 20 / addr.HugePageSize)
	alloc.InjectFragmentation(xrand.New(1), blocks*8, 1)
	for alloc.IntactHugeBlocks() > 0 {
		alloc.AllocHuge()
	}

	table := pagetable.NewRadix(alloc)
	as := New(table, alloc, DefaultConfig(Huge2M, alloc.TotalFrames()))
	base := as.AllocLazy(2<<20, "growing")
	cost := as.Touch(base)
	// Contiguity is exhausted (ratio 0): the fault stalls on a full
	// direct-compaction attempt, fails, and falls back to a 4 KB page.
	if cost != as.cfg.CompactionCost+as.cfg.FaultCost4K {
		t.Fatalf("fallback fault cost = %d, want compaction+4K = %d",
			cost, as.cfg.CompactionCost+as.cfg.FaultCost4K)
	}
	if as.Stats().HugeFallbacks != 1 {
		t.Errorf("HugeFallbacks = %d, want 1", as.Stats().HugeFallbacks)
	}
	// Only the touched page is mapped, not the whole chunk.
	if as.Touch(base+addr.PageSize) == 0 {
		t.Error("fallback chunk mapped more than the touched page")
	}
	// The chunk is remembered: no repeated AllocHuge attempts counted.
	if as.Stats().HugeFallbacks != 1 {
		t.Errorf("fallback retried: %d", as.Stats().HugeFallbacks)
	}
}

func TestReclaimPenaltyUnderPressure(t *testing.T) {
	alloc := phys.New(32 << 20)
	table := pagetable.NewRadix(alloc)
	cfg := DefaultConfig(Base4K, alloc.TotalFrames())
	cfg.ReclaimWatermark = alloc.TotalFrames() // always under pressure
	as := New(table, alloc, cfg)
	base := as.AllocLazy(2<<20, "x")
	cost := as.Touch(base)
	if cost != cfg.FaultCost4K+cfg.ReclaimCost {
		t.Fatalf("pressured fault cost = %d, want %d", cost, cfg.FaultCost4K+cfg.ReclaimCost)
	}
	if as.Stats().ReclaimHits != 1 {
		t.Errorf("ReclaimHits = %d", as.Stats().ReclaimHits)
	}
}

func TestRegionsAreAlignedAndDisjoint(t *testing.T) {
	as, _ := newAS(Base4K)
	as.Alloc(3<<20+5, "a") // odd size rounds up
	as.AllocLazy(1<<20, "b")
	as.Alloc(2<<20, "c")
	regions := as.Regions()
	if len(regions) != 3 {
		t.Fatalf("regions = %d", len(regions))
	}
	for i, r := range regions {
		if uint64(r.Base)%addr.HugePageSize != 0 {
			t.Errorf("region %d base %#x not 2MB-aligned", i, uint64(r.Base))
		}
		if r.Size%addr.HugePageSize != 0 {
			t.Errorf("region %d size %d not 2MB-granular", i, r.Size)
		}
		if i > 0 && r.Base < regions[i-1].End() {
			t.Errorf("region %d overlaps previous", i)
		}
	}
	// 3MB+5 -> 4MB, 1MB -> 2MB, 2MB -> 2MB.
	if as.HeapBytes() != 4<<20+2<<20+2<<20 {
		t.Errorf("HeapBytes = %d", as.HeapBytes())
	}
}

func TestTranslateMatchesMapping(t *testing.T) {
	as, _ := newAS(Base4K)
	base := as.Alloc(2<<20, "data")
	pa1, ok := as.Translate(base + 100)
	if !ok {
		t.Fatal("translate of mapped page failed")
	}
	pa2, _ := as.Translate(base + 101)
	if pa2 != pa1+1 {
		t.Error("offsets within a page must translate contiguously")
	}
	if _, ok := as.Translate(as.brk + (1 << 30)); ok {
		t.Error("translate of unmapped address succeeded")
	}
}

func TestTranslateHugeMapping(t *testing.T) {
	as, _ := newAS(Huge2M)
	base := as.Alloc(2<<20, "data")
	paFirst, ok1 := as.Translate(base)
	paLast, ok2 := as.Translate(base + addr.HugePageSize - 1)
	if !ok1 || !ok2 {
		t.Fatal("huge translate failed")
	}
	// Contiguous physical backing across the whole 2 MB chunk.
	if paLast-paFirst != addr.HugePageSize-1 {
		t.Errorf("huge chunk not physically contiguous: %#x..%#x",
			uint64(paFirst), uint64(paLast))
	}
}

func TestZeroSizeAllocPanics(t *testing.T) {
	as, _ := newAS(Base4K)
	defer func() {
		if recover() == nil {
			t.Error("Alloc(0) did not panic")
		}
	}()
	as.Alloc(0, "bad")
}

func TestResetFaultStats(t *testing.T) {
	as, _ := newAS(Base4K)
	base := as.AllocLazy(2<<20, "x")
	as.Touch(base)
	as.ResetFaultStats()
	s := as.Stats()
	if s.Faults4K != 0 || s.FaultCycles != 0 {
		t.Errorf("fault stats not reset: %+v", s)
	}
	if s.Populated == 0 {
		t.Error("structural counters must survive reset")
	}
}

func TestEagerPopulationWithCuckooTable(t *testing.T) {
	alloc := phys.New(testMem)
	table := pagetable.NewCuckoo(alloc, 4096)
	as := New(table, alloc, DefaultConfig(Base4K, alloc.TotalFrames()))
	base := as.Alloc(8<<20, "data")
	for off := uint64(0); off < 8<<20; off += addr.PageSize {
		if _, ok := as.Translate(base + addr.V(off)); !ok {
			t.Fatalf("cuckoo-backed page +%d not mapped", off)
		}
	}
}

func TestEagerPopulationWithFlattenedTable(t *testing.T) {
	alloc := phys.New(testMem)
	table := pagetable.NewFlattened(alloc)
	as := New(table, alloc, DefaultConfig(Base4K, alloc.TotalFrames()))
	base := as.Alloc(8<<20, "data")
	if _, ok := as.Translate(base + 8<<20 - 1); !ok {
		t.Fatal("flattened-backed region not mapped to the end")
	}
}

func TestCompactionCostScalesWithScarcity(t *testing.T) {
	alloc := phys.New(256 << 20)
	cfg := DefaultConfig(Huge2M, alloc.TotalFrames())
	table := pagetable.NewRadix(alloc)
	as := New(table, alloc, cfg)

	// Fresh machine: full contiguity, no compaction charge.
	base := as.AllocLazy(2<<20, "a")
	if cost := as.Touch(base); cost != cfg.FaultCost2M {
		t.Fatalf("unpressured huge fault = %d, want %d", cost, cfg.FaultCost2M)
	}

	// Consume contiguity below the low watermark: full compaction cost.
	for alloc.ContiguityRatio() > cfg.PressureLow {
		if _, ok := alloc.AllocHuge(); !ok {
			break
		}
	}
	base2 := as.AllocLazy(2<<20, "b")
	cost := as.Touch(base2)
	if cost < cfg.CompactionCost {
		t.Fatalf("pressured huge fault = %d, want >= compaction cost %d", cost, cfg.CompactionCost)
	}
	if as.Stats().CompactionCycles == 0 {
		t.Error("compaction cycles not recorded")
	}
}

func TestCompactionChargedEvenOnFallback(t *testing.T) {
	alloc := phys.New(64 << 20)
	// Exhaust every huge block, then release one and punch a hole in it
	// so 4 KB frames exist but 2 MB contiguity does not.
	var last addr.PFN
	for {
		pfn, ok := alloc.AllocHuge()
		if !ok {
			break
		}
		last = pfn
	}
	alloc.Free(last)
	alloc.AllocAt(last + 256)
	cfg := DefaultConfig(Huge2M, alloc.TotalFrames())
	table := pagetable.NewRadix(alloc)
	as := New(table, alloc, cfg)
	base := as.AllocLazy(2<<20, "x")
	cost := as.Touch(base)
	// Failed attempt: compaction + 4K fallback fault.
	if cost != cfg.CompactionCost+cfg.FaultCost4K {
		t.Fatalf("fallback fault = %d, want %d", cost, cfg.CompactionCost+cfg.FaultCost4K)
	}
	// Second page in the same chunk: plain 4K fault, no new compaction.
	if cost := as.Touch(base + addr.PageSize); cost != cfg.FaultCost4K {
		t.Fatalf("second fallback page = %d, want plain 4K fault", cost)
	}
}

func TestResidentLimitReclaims(t *testing.T) {
	alloc := phys.New(128 << 20)
	table := pagetable.NewRadix(alloc)
	cfg := DefaultConfig(Base4K, alloc.TotalFrames())
	cfg.ResidentLimitFrames = 8 << 20 / addr.PageSize // 8 MB resident cap
	as := New(table, alloc, cfg)

	// Populate 16 MB eagerly: only ~8 MB may stay resident.
	base := as.Alloc(16<<20, "big")
	if got := as.residentPages; got > cfg.ResidentLimitFrames {
		t.Fatalf("resident pages %d exceed limit %d", got, cfg.ResidentLimitFrames)
	}
	if as.Stats().ReclaimedChunks == 0 {
		t.Fatal("no chunks reclaimed")
	}
	// Early chunks were evicted: touching them faults again.
	if cost := as.Touch(base); cost == 0 {
		t.Error("evicted page did not re-fault")
	}
	// Recently populated chunks are still resident.
	if cost := as.Touch(base + 16<<20 - addr.PageSize); cost != 0 {
		t.Error("most-recent chunk was evicted (FIFO order broken)")
	}
}

func TestResidentLimitWithHugePolicy(t *testing.T) {
	alloc := phys.New(128 << 20)
	table := pagetable.NewRadix(alloc)
	cfg := DefaultConfig(Huge2M, alloc.TotalFrames())
	cfg.ResidentLimitFrames = 4 << 20 / addr.PageSize // 4 MB = 2 chunks
	as := New(table, alloc, cfg)
	base := as.AllocLazy(12<<20, "big")
	for off := uint64(0); off < 12<<20; off += addr.HugePageSize {
		as.Touch(base + addr.V(off))
	}
	if as.Stats().ReclaimedChunks < 3 {
		t.Errorf("ReclaimedChunks = %d, want >= 3", as.Stats().ReclaimedChunks)
	}
	// Frames were actually returned: the allocator can hand them out.
	if as.residentPages > cfg.ResidentLimitFrames {
		t.Errorf("resident %d over limit", as.residentPages)
	}
	// Thrash: re-touching the first chunk faults huge again.
	if cost := as.Touch(base); cost == 0 {
		t.Error("evicted huge chunk did not re-fault")
	}
}

func TestUnmapFreesConsistently(t *testing.T) {
	alloc := phys.New(64 << 20)
	table := pagetable.NewRadix(alloc)
	cfg := DefaultConfig(Base4K, alloc.TotalFrames())
	cfg.ResidentLimitFrames = 2 << 20 / addr.PageSize
	as := New(table, alloc, cfg)
	free0 := alloc.FreeFrames()
	as.Alloc(8<<20, "churn") // forces eviction of 3 of 4 chunks
	used := free0 - alloc.FreeFrames()
	// Only the resident cap (plus table nodes) may remain allocated.
	if used > cfg.ResidentLimitFrames+64 {
		t.Errorf("frames in use %d, want <= limit+tables", used)
	}
}

// BenchmarkTouchHit measures the demand-paging check on the ~99% path: a
// page that is already mapped. The first pattern revisits pages inside
// the positive VPN cache; the second sweeps a region wider than the
// cache so most checks fall through to Table.Present.
func BenchmarkTouchHit(b *testing.B) {
	run := func(b *testing.B, pages uint64) {
		as, _ := newAS(Base4K)
		base := as.Alloc(pages*addr.PageSize, "hot")
		rng := xrand.New(9)
		addrs := make([]addr.V, 4096)
		for i := range addrs {
			addrs[i] = base + addr.V(rng.Uint64n(pages)*addr.PageSize)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			as.Touch(addrs[i&4095])
		}
	}
	b.Run("cached", func(b *testing.B) { run(b, 1024) })     // fits VPN cache
	b.Run("present", func(b *testing.B) { run(b, 1<<15) })   // spills to Present
}
