// Package osmm is the operating-system memory-management model: virtual
// address-space layout, eager and demand population of page tables, page
// fault costs, and the transparent-huge-page policy with its fallback to
// 4 KB pages when physical contiguity is exhausted.
//
// The model follows the paper's framing:
//
//   - Datasets that exist before the region of interest (graph structure,
//     embedding tables, ...) are allocated with Alloc and populated
//     eagerly — their faults happen "before the measurement window".
//   - Structures that grow during execution (frontiers, output arrays,
//     hash-table extensions) are allocated with AllocLazy and populated
//     on first touch *inside* the window, charging fault latency. This is
//     the channel through which the Huge Page mechanism's fault cost
//     (zero-filling 2 MB, Section VII-B) reaches the measured runtime.
//   - Under the Huge policy, each 2 MB chunk first tries a contiguous
//     block; failure marks the chunk fallen-back and pages map at 4 KB.
//   - When free physical memory drops below a low watermark, every fault
//     additionally pays a reclaim penalty (kswapd pressure) — the paper's
//     "rapid consumption of available physical memory".
package osmm

import (
	"fmt"

	"ndpage/internal/addr"
	"ndpage/internal/bitset"
	"ndpage/internal/pagetable"
	"ndpage/internal/phys"
	"ndpage/internal/xrand"
)

// Policy selects the page size the OS prefers for data regions.
type Policy int

// Policies.
const (
	// Base4K maps everything with 4 KB pages.
	Base4K Policy = iota
	// Huge2M maps 2 MB chunks with huge pages when contiguity allows,
	// falling back to 4 KB.
	Huge2M
)

// String names the policy.
func (p Policy) String() string {
	if p == Huge2M {
		return "huge2m"
	}
	return "base4k"
}

// Config holds the OS cost model.
type Config struct {
	Policy Policy
	// FaultCost4K is the cycle cost of a minor fault on a 4 KB page
	// (trap + allocation + zero-fill).
	FaultCost4K uint64
	// FaultCost2M is the cycle cost of faulting a 2 MB huge page; the
	// dominant term is zero-filling 512x more bytes.
	FaultCost2M uint64
	// ReclaimWatermark is the free-frame count under which faults pay
	// ReclaimCost extra.
	ReclaimWatermark uint64
	// ReclaimCost is the extra fault cost under memory pressure.
	ReclaimCost uint64
	// CompactionCost is the direct-compaction stall charged on a huge
	// allocation attempt at full contiguity pressure. Linux THP faults
	// stall on compaction when 2 MB blocks are scarce — successful or
	// not — which is the paper's "increased page fault latency" and
	// "rapid consumption of physical memory contiguity" at 8 cores.
	// The charge scales linearly from 0 (ratio >= PressureHigh) to
	// CompactionCost (ratio <= PressureLow).
	CompactionCost uint64
	// PressureHigh and PressureLow bound the contiguity ratio band over
	// which compaction cost ramps.
	PressureHigh float64
	PressureLow  float64
	// HoleFraction leaves this fraction of each eagerly allocated
	// region's 2 MB chunks unpopulated: datasets are not fully resident
	// when the measurement window opens, so first touches to those
	// chunks fault inside the window (a 4 KB page at a time under
	// Base4K; a whole chunk — with compaction under pressure — under
	// Huge2M). Zero disables holes.
	HoleFraction float64
	// HoleSeed makes hole placement deterministic.
	HoleSeed uint64
	// DemandPaging disables eager population entirely: Alloc behaves
	// like AllocLazy and every page faults on first touch (sensitivity
	// study; the paper-configuration default is eager).
	DemandPaging bool
	// ResidentLimitFrames caps this address space's resident 4 KB
	// pages, modelling datasets larger than memory: beyond the limit,
	// faults steal frames from the oldest resident 2 MB chunks (FIFO
	// reclaim), unmapping them so later touches re-fault. Each evicted
	// chunk charges ReclaimCost to the faulting core. Zero disables
	// the limit (the default: datasets fit).
	ResidentLimitFrames uint64
	// IdentityMap tracks eagerly populated 2 MB chunks as
	// identity-mapped segments (the NMT mechanism, Picorel et al.): a
	// covered address translates with an O(1) range check instead of a
	// walk. Chunks populated before the measurement window are covered;
	// demand-faulted chunks are not (they fall back to the radix walk)
	// unless IdentityPromote also covers them. Reclaimed chunks lose
	// coverage either way.
	IdentityMap bool
	// IdentityPromote extends identity coverage to chunks that fault in
	// on demand, modelling an OS that re-establishes segment mappings
	// as pages arrive.
	IdentityPromote bool
}

// DefaultConfig returns the cost model used by the experiments: a 4 KB
// fault ~2.5K cycles, a 2 MB fault ~80K cycles (zeroing 2 MB at ~32 B per
// cycle), reclaim pressure under 2% free at ~20K cycles.
func DefaultConfig(policy Policy, totalFrames uint64) Config {
	return Config{
		Policy:           policy,
		FaultCost4K:      2500,
		FaultCost2M:      80000,
		ReclaimWatermark: totalFrames / 50,
		ReclaimCost:      20000,
		CompactionCost:   400000,
		PressureHigh:     0.30,
		PressureLow:      0.05,
	}
}

// compactionPressure maps the allocator's contiguity ratio into [0,1]
// over the configured band.
func (as *AddressSpace) compactionPressure() float64 {
	ratio := as.alloc.ContiguityRatio()
	if ratio >= as.cfg.PressureHigh {
		return 0
	}
	if ratio <= as.cfg.PressureLow {
		return 1
	}
	return (as.cfg.PressureHigh - ratio) / (as.cfg.PressureHigh - as.cfg.PressureLow)
}

// Region is a reserved range of virtual address space.
type Region struct {
	Base addr.V
	Size uint64
	Name string
	Lazy bool
}

// End returns the first address past the region.
func (r Region) End() addr.V { return r.Base + addr.V(r.Size) }

// Stats counts OS events.
type Stats struct {
	Faults4K         uint64
	Faults2M         uint64
	FaultCycles      uint64
	HugeFallbacks    uint64 // 2 MB chunks that could not get contiguity
	ReclaimHits      uint64 // faults that paid the reclaim penalty
	CompactionCycles uint64 // direct-compaction stall cycles
	Populated        uint64 // 4 KB pages populated (eager + demand)
	Holes            uint64 // chunks left unpopulated at allocation
	ReclaimedChunks  uint64 // 2 MB chunks evicted by the resident limit
	ReclaimedPages   uint64 // 4 KB pages those chunks held
}

// AddressSpace is one process's virtual memory: a bump-allocated heap of
// 2 MB-aligned regions above vaBase, mapped through a pagetable.Table and
// backed by the machine-wide physical allocator.
type AddressSpace struct {
	table pagetable.Table
	alloc *phys.Allocator
	cfg   Config

	brk     addr.V
	regions []Region
	// fallback4K marks 2 MB chunks (by chunk ordinal, see chunkKey) that
	// lost the contiguity race under the Huge2M policy. It is consulted
	// on every data-side fault, so it is a paged bitmap rather than a
	// map — no bucket probe on the demand-paging path.
	fallback4K bitset.Paged
	holeRNG    *xrand.RNG

	// identity marks 2 MB chunks covered by identity-mapped segments
	// (by chunk ordinal; only maintained when cfg.IdentityMap is set,
	// so the disabled paths stay untouched).
	identity bitset.Paged

	// Reclaim state (active when cfg.ResidentLimitFrames > 0): FIFO of
	// resident chunks, the resident-chunk bitmap, and the current
	// resident page count.
	residentFIFO  []addr.VPN
	fifoHead      int
	residentSet   bitset.Paged
	residentPages uint64

	// mapped is a direct-mapped cache of VPNs known to be mapped, the
	// Touch fast path: after warmup nearly every Touch is a hit on an
	// installed translation, and this answers it with one 32 KB-table
	// load instead of a page-table Lookup's dependent pointer chases.
	// An entry holds vpn+1 ("vpn is mapped"), 0 when empty. It is a
	// pure positive cache — misses fall through to the table — so the
	// only invariant is no stale positives: reclaimChunk clears the
	// slots of every VPN it unmaps.
	mapped [mapCacheSlots]addr.VPN

	stats Stats
}

// mapCacheSlots sizes the mapped-VPN cache; a power of two so the slot
// index is a mask.
const mapCacheSlots = 4096

// vaBase is where heaps start: PL4 slot 1, giving clean non-zero upper
// indices without colliding across address spaces (each space is private,
// the constant is just hygiene).
const vaBase = addr.V(1) << 39

// chunkKey maps a huge-aligned VPN to its dense 2 MB-chunk ordinal
// relative to the heap base: the bump allocator hands out chunks
// upward from vaBase, so ordinals index the paged bitmaps densely from
// zero.
func chunkKey(vpn addr.VPN) uint64 {
	const basePage = uint64(vaBase) >> addr.PageShift
	if uint64(vpn) < basePage {
		panic(fmt.Sprintf("osmm: chunk VPN %#x below the heap base", uint64(vpn)))
	}
	return (uint64(vpn) - basePage) >> addr.LevelBits
}

// New creates an address space over the given table and allocator.
func New(table pagetable.Table, alloc *phys.Allocator, cfg Config) *AddressSpace {
	return &AddressSpace{
		table:   table,
		alloc:   alloc,
		cfg:     cfg,
		brk:     vaBase,
		holeRNG: xrand.New(cfg.HoleSeed),
	}
}

// noteResident records pages joining chunk (huge-aligned VPN) and
// enforces the resident limit. It returns the reclaim cycles charged.
func (as *AddressSpace) noteResident(chunk addr.VPN, pages uint64) uint64 {
	if as.cfg.ResidentLimitFrames == 0 {
		return 0
	}
	as.residentPages += pages
	if !as.residentSet.Get(chunkKey(chunk)) {
		as.residentSet.Set(chunkKey(chunk))
		as.residentFIFO = append(as.residentFIFO, chunk)
	}
	cost := uint64(0)
	for as.residentPages > as.cfg.ResidentLimitFrames && as.fifoHead < len(as.residentFIFO) {
		victim := as.residentFIFO[as.fifoHead]
		as.fifoHead++
		if !as.residentSet.Get(chunkKey(victim)) || victim == chunk {
			continue // already gone, or the chunk being faulted in
		}
		cost += as.reclaimChunk(victim)
	}
	// Compact the consumed FIFO prefix occasionally.
	if as.fifoHead > 4096 && as.fifoHead > len(as.residentFIFO)/2 {
		as.residentFIFO = append(as.residentFIFO[:0], as.residentFIFO[as.fifoHead:]...)
		as.fifoHead = 0
	}
	return cost
}

// reclaimChunk unmaps every page of the chunk, returning the frames to
// the allocator and charging the reclaim cost.
func (as *AddressSpace) reclaimChunk(chunk addr.VPN) uint64 {
	as.residentSet.Clear(chunkKey(chunk))
	if as.cfg.IdentityMap {
		as.identity.Clear(chunkKey(chunk))
	}
	// Drop the unmapped VPNs from the Touch fast-path cache (clearing a
	// slot another VPN happens to hold is harmless — it is a positive
	// cache).
	for k := uint64(0); k < addr.EntriesPerTable; k++ {
		vpn := chunk + addr.VPN(k)
		slot := uint64(vpn) & (mapCacheSlots - 1)
		if as.mapped[slot] == vpn+1 {
			as.mapped[slot] = 0
		}
	}
	freed := uint64(0)
	for k := uint64(0); k < addr.EntriesPerTable; {
		e, ok := as.table.Unmap(chunk + addr.VPN(k))
		if !ok {
			k++
			continue
		}
		if e.Huge {
			as.alloc.Free(e.PFN)
			freed += addr.EntriesPerTable
			break
		}
		as.alloc.Free(e.PFN)
		freed++
		k++
	}
	as.residentPages -= freed
	as.stats.ReclaimedChunks++
	as.stats.ReclaimedPages += freed
	as.stats.ReclaimHits++
	return as.cfg.ReclaimCost
}

// Table returns the underlying page table.
func (as *AddressSpace) Table() pagetable.Table { return as.table }

// Stats returns a copy of the OS counters.
func (as *AddressSpace) Stats() Stats { return as.stats }

// ResetFaultStats zeroes the fault counters (measurement-window reset);
// structural counters (Populated, HugeFallbacks) are preserved.
func (as *AddressSpace) ResetFaultStats() {
	as.stats.Faults4K = 0
	as.stats.Faults2M = 0
	as.stats.FaultCycles = 0
	as.stats.ReclaimHits = 0
	as.stats.CompactionCycles = 0
}

// Regions returns the reserved regions in allocation order.
func (as *AddressSpace) Regions() []Region { return as.regions }

// HeapBytes returns the total reserved heap span.
func (as *AddressSpace) HeapBytes() uint64 { return uint64(as.brk - vaBase) }

// Alloc reserves size bytes (2 MB-aligned, 2 MB-granular) and populates
// them eagerly — dataset memory that exists before the measurement
// window. It implements the workload Mem interface. Under the
// DemandPaging sensitivity configuration nothing is populated.
func (as *AddressSpace) Alloc(size uint64, name string) addr.V {
	if as.cfg.DemandPaging {
		return as.reserve(size, name, true).Base
	}
	r := as.reserve(size, name, false)
	as.populate(r)
	return r.Base
}

// AllocLazy reserves size bytes without populating; pages fault on first
// touch inside the measurement window.
func (as *AddressSpace) AllocLazy(size uint64, name string) addr.V {
	return as.reserve(size, name, true).Base
}

func (as *AddressSpace) reserve(size uint64, name string, lazy bool) Region {
	if size == 0 {
		panic("osmm: zero-size allocation")
	}
	size = addr.AlignUp(size, addr.HugePageSize)
	r := Region{Base: as.brk, Size: size, Name: name, Lazy: lazy}
	as.regions = append(as.regions, r)
	as.brk += addr.V(size)
	return r
}

// populate maps the pages of r according to the policy, charging nothing
// (pre-window population). A HoleFraction of chunks is skipped and left
// to demand faulting.
func (as *AddressSpace) populate(r Region) {
	for v := r.Base; v < r.End(); v += addr.HugePageSize {
		if as.cfg.HoleFraction > 0 && as.holeRNG.Bool(as.cfg.HoleFraction) {
			as.stats.Holes++
			continue
		}
		as.populateChunk(v.Page())
	}
}

// populateChunk maps one 2 MB-aligned chunk starting at vpn.
func (as *AddressSpace) populateChunk(vpn addr.VPN) {
	as.noteResident(vpn, addr.EntriesPerTable)
	// Eager population establishes identity-segment coverage; every
	// path below maps the full chunk (or panics).
	if as.cfg.IdentityMap {
		as.identity.Set(chunkKey(vpn))
	}
	if as.cfg.Policy == Huge2M {
		if base, ok := as.alloc.AllocHuge(); ok {
			as.table.MapHuge(vpn, base)
			as.stats.Populated += addr.EntriesPerTable
			return
		}
		as.fallback4K.Set(chunkKey(vpn))
		as.stats.HugeFallbacks++
	}
	// 4 KB population; grab contiguity when available purely as a fast
	// path (one allocator call per chunk), else frame-by-frame. Under a
	// resident limit every frame must be individually freeable, so the
	// block fast path is skipped.
	if as.cfg.ResidentLimitFrames == 0 {
		if base, ok := as.alloc.AllocHuge(); ok {
			as.table.MapRange(vpn, addr.EntriesPerTable, base)
			as.stats.Populated += addr.EntriesPerTable
			return
		}
	}
	for k := uint64(0); k < addr.EntriesPerTable; k++ {
		pfn, ok := as.alloc.AllocFrame()
		if !ok {
			panic(fmt.Sprintf("osmm: out of physical memory populating %#x", uint64(vpn)))
		}
		as.table.Map(vpn+addr.VPN(k), pfn)
		as.stats.Populated++
	}
}

// Touch ensures the page containing v is mapped, returning the cycle cost
// charged to the faulting core (0 when already mapped — the common case).
// A VPN-cache miss consults the table through Present — the bit-probe
// predicate — rather than Lookup, so even the cache-miss half of the hit
// path reads only present bitmaps, never frame numbers, before refilling
// the cache.
func (as *AddressSpace) Touch(v addr.V) uint64 {
	vpn := v.Page()
	slot := uint64(vpn) & (mapCacheSlots - 1)
	if as.mapped[slot] == vpn+1 {
		return 0
	}
	if as.table.Present(vpn) {
		as.mapped[slot] = vpn + 1
		return 0
	}
	return as.fault(v)
}

// fault performs demand population for the page containing v.
func (as *AddressSpace) fault(v addr.V) uint64 {
	cost := uint64(0)
	if as.alloc.FreeFrames() < as.cfg.ReclaimWatermark {
		cost += as.cfg.ReclaimCost
		as.stats.ReclaimHits++
	}
	vpn := v.Page()
	chunk := v.HugePage()
	if as.cfg.Policy == Huge2M && !as.fallback4K.Get(chunkKey(chunk)) {
		// A fresh chunk triggers a huge allocation attempt. Under
		// contiguity pressure the fault stalls on direct compaction
		// whether or not a block is ultimately found.
		compact := uint64(float64(as.cfg.CompactionCost) * as.compactionPressure())
		cost += compact
		as.stats.CompactionCycles += compact
		if base, ok := as.alloc.AllocHuge(); ok {
			cost += as.noteResident(chunk, addr.EntriesPerTable)
			as.table.MapHuge(chunk, base)
			if as.cfg.IdentityMap && as.cfg.IdentityPromote {
				as.identity.Set(chunkKey(chunk))
			}
			as.stats.Faults2M++
			as.stats.Populated += addr.EntriesPerTable
			as.stats.FaultCycles += cost + as.cfg.FaultCost2M
			return cost + as.cfg.FaultCost2M
		}
		as.fallback4K.Set(chunkKey(chunk))
		as.stats.HugeFallbacks++
	}
	cost += as.noteResident(chunk, 1)
	pfn, ok := as.alloc.AllocFrame()
	if !ok {
		panic(fmt.Sprintf("osmm: out of physical memory at fault for %#x", uint64(v)))
	}
	as.table.Map(vpn, pfn)
	if as.cfg.IdentityMap && as.cfg.IdentityPromote {
		as.identity.Set(chunkKey(chunk))
	}
	as.stats.Faults4K++
	as.stats.Populated++
	as.stats.FaultCycles += cost + as.cfg.FaultCost4K
	return cost + as.cfg.FaultCost4K
}

// IdentityCovered reports whether v lies in an identity-mapped segment
// (the NMT range-check fast path): an O(1) bitmap probe, always false
// when Config.IdentityMap is off. Coverage is chunk-granular; under
// IdentityPromote a partially faulted chunk counts as covered, which is
// safe because the MMU still resolves the actual frame through the
// functional table and falls back to the walk when the page is absent.
func (as *AddressSpace) IdentityCovered(v addr.V) bool {
	if !as.cfg.IdentityMap || v < vaBase || v >= as.brk {
		return false
	}
	return as.identity.Get(chunkKey(v.HugePage()))
}

// Translate resolves v through the table (functional, no timing): the
// Ideal mechanism's oracle and the OS's own view.
func (as *AddressSpace) Translate(v addr.V) (addr.P, bool) {
	e, ok := as.table.Lookup(v.Page())
	if !ok {
		return 0, false
	}
	pfn := e.Translate(v.Page())
	return pfn.Addr() + addr.P(v.Offset()), true
}
