package ndpage_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndpage"
)

func quick(mech ndpage.Mechanism, system ndpage.System, cores int, wl string) ndpage.Config {
	return ndpage.Config{
		System:         system,
		Cores:          cores,
		Mechanism:      mech,
		Workload:       wl,
		FootprintBytes: 256 << 20,
		MemoryBytes:    4 << 30,
		FragHoles:      200,
		Warmup:         3_000,
		Instructions:   12_000,
	}
}

func TestRunQuickstart(t *testing.T) {
	res, err := ndpage.Run(quick(ndpage.NDPage, ndpage.NDP, 2, "bfs"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Instructions != 24_000 {
		t.Fatalf("unexpected result: cycles=%d instr=%d", res.Cycles, res.Instructions)
	}
	if res.CPI() <= 0 {
		t.Error("CPI not positive")
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	if _, err := ndpage.Run(ndpage.Config{Workload: "bogus"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestWorkloadsRegistry(t *testing.T) {
	// The Table II set leads the listing; workloads registered by other
	// tests in this binary may follow it.
	wls := ndpage.Workloads()
	if len(wls) < 11 {
		t.Fatalf("Workloads() = %d entries, want at least 11 (Table II)", len(wls))
	}
	for i, w := range wls {
		if w.Name == "" || w.Suite == "" {
			t.Errorf("incomplete workload info: %+v", w)
		}
		if i < 11 && w.PaperDataset == "" {
			t.Errorf("Table II entry missing its paper dataset: %+v", w)
		}
		// Every registry workload must actually run.
		if _, err := ndpage.Run(quick(ndpage.Ideal, ndpage.NDP, 1, w.Name)); err != nil {
			t.Errorf("workload %s does not run: %v", w.Name, err)
		}
	}
}

// TestTraceSweepCaching is the platform's acceptance path: capture a
// builtin's op stream, replay it as "trace:<path>" through the public
// Sweep API, and re-run the plan — the second pass must be all cache
// hits (the capture's content digest keys the runs).
func TestTraceSweepCaching(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rnd.csv")
	// A small hand-rolled CSV capture: the replay side treats CSV and
	// binary identically, and CSV keeps the fixture readable.
	var sb strings.Builder
	sb.WriteString("op,addr\n")
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&sb, "L,%#x\n", 0x10000+4096*i)
		fmt.Fprintf(&sb, "C,2\n")
		fmt.Fprintf(&sb, "S,%#x\n", 0x10000+4096*i)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	plan := ndpage.Plan{
		Base:       quick(ndpage.Radix, ndpage.NDP, 1, ""),
		Mechanisms: []ndpage.Mechanism{ndpage.Radix, ndpage.NDPage},
		Workloads:  []string{"trace:" + path},
	}
	store, err := ndpage.NewDirStore(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	run := func() (fresh, cached int) {
		s := &ndpage.Sweep{Store: store, Progress: func(e ndpage.SweepEvent) {
			if e.Cached {
				cached++
			} else if e.Err == nil {
				fresh++
			}
		}}
		results, err := s.RunPlan(context.Background(), plan)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if res == nil || res.Instructions == 0 {
				t.Fatalf("result %d empty", i)
			}
		}
		return
	}
	if fresh, cached := run(); fresh != 2 || cached != 0 {
		t.Fatalf("cold pass: %d fresh / %d cached, want 2 / 0", fresh, cached)
	}
	if fresh, cached := run(); fresh != 0 || cached != 2 {
		t.Fatalf("warm pass: %d fresh / %d cached, want 0 / 2", fresh, cached)
	}

	// Editing the capture invalidates the cache: the content digest is
	// part of every run's key.
	if err := os.WriteFile(path, []byte("op,addr\nL,0x9000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if fresh, cached := run(); fresh != 2 || cached != 0 {
		t.Fatalf("after edit: %d fresh / %d cached, want 2 / 0", fresh, cached)
	}
}

func TestMechanismRoundTrip(t *testing.T) {
	for _, m := range ndpage.Mechanisms() {
		got, err := ndpage.ParseMechanism(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMechanism(%q) = %v, %v", m.String(), got, err)
		}
	}
	if len(ndpage.Mechanisms()) != 5 {
		t.Error("the paper evaluates 5 mechanisms")
	}
}

// TestHeadlineOrdering is the paper's core claim through the public API:
// on the NDP system NDPage outperforms Radix and ECH, and Ideal bounds
// everything translation-only.
func TestHeadlineOrdering(t *testing.T) {
	cycles := func(m ndpage.Mechanism) uint64 {
		res, err := ndpage.Run(quick(m, ndpage.NDP, 1, "rnd"))
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	radix, ech, ndp, ideal := cycles(ndpage.Radix), cycles(ndpage.ECH),
		cycles(ndpage.NDPage), cycles(ndpage.Ideal)
	if !(ndp < radix && ndp < ech && ideal < ndp) {
		t.Errorf("ordering violated: radix=%d ech=%d ndpage=%d ideal=%d",
			radix, ech, ndp, ideal)
	}
}

func TestExperimentsQuick(t *testing.T) {
	e := &ndpage.Experiments{
		Instructions: 8_000,
		Warmup:       2_000,
		Footprint:    192 << 20,
		Workloads:    []string{"rnd"},
	}
	tab, err := e.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "geomean") {
		t.Errorf("Fig12 table missing geomean:\n%s", tab)
	}
	if csv := tab.CSV(); !strings.Contains(csv, "workload,ECH") {
		t.Errorf("CSV header wrong: %s", csv)
	}
}

// TestSweepAPI drives the first-class sweep surface end to end: a
// declarative Plan, a Sweep runner over an explicit store, config
// hashing, and cross-runner reuse of the persisted results.
func TestSweepAPI(t *testing.T) {
	base := quick(ndpage.Radix, ndpage.NDP, 1, "rnd")
	plan := ndpage.Plan{
		Base:       base,
		Mechanisms: []ndpage.Mechanism{ndpage.Radix, ndpage.Ideal},
		Workloads:  []string{"rnd"},
		Variants: []ndpage.Variant{
			{Name: "base"},
			{Name: "nopwc", Mutate: func(c *ndpage.Config) { c.DisablePWC = true }},
		},
	}
	if plan.Size() != 4 {
		t.Fatalf("plan size = %d, want 4", plan.Size())
	}

	store := ndpage.NewMemStore()
	var events, cached int
	s := &ndpage.Sweep{
		Store:    store,
		Parallel: 2,
		Progress: func(e ndpage.SweepEvent) {
			events++
			if e.Cached {
				cached++
			}
		},
	}
	results, err := s.RunPlan(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	for i, res := range results {
		if res == nil || res.Cycles == 0 {
			t.Fatalf("result %d empty", i)
		}
	}
	if events != 4 || cached != 0 {
		t.Errorf("first sweep: %d events (%d cached), want 4 fresh", events, cached)
	}

	// A second runner over the same store simulates nothing.
	warm := &ndpage.Sweep{Store: store}
	again, err := warm.RunPlan(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i] != results[i] {
			t.Errorf("warm result %d not served from the store", i)
		}
	}

	// Config identity: the run's stored config hashes to the same key
	// callers compute.
	if got := results[0].Config.Key(); got != base.Key() {
		t.Errorf("result key %s != config key %s", got, base.Key())
	}
}

func TestConfigValidateExposed(t *testing.T) {
	cfg := quick(ndpage.Radix, ndpage.NDP, 1, "rnd")
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cfg.WalkerWidth = 4 // inert without SharedWalker on a blocking core
	if err := cfg.Validate(); err == nil {
		t.Fatal("inert walker width accepted")
	}
}

func TestTableII(t *testing.T) {
	tab := ndpage.TableII()
	if !strings.Contains(tab.String(), "k-mer") {
		t.Error("Table II missing GenomicsBench description")
	}
}
