package ndpage_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ndpage"
)

// strideWorkload is a minimal user-defined workload: each core streams
// loads through its own partition of one shared buffer at a fixed
// stride. Real kernels live in their own packages; the point here is
// the shape — implement Workload, register it, and the name works
// everywhere a built-in does.
type strideWorkload struct {
	buf   ndpage.VAddr
	bytes uint64
}

func (w *strideWorkload) Name() string { return "stride-demo" }

func (w *strideWorkload) Init(mem ndpage.Mem, rng *ndpage.RNG, footprint uint64, threads int) {
	w.bytes = footprint
	if w.bytes < 1<<20 {
		w.bytes = 1 << 20
	}
	w.buf = mem.Alloc(w.bytes, "stride-buffer")
}

func (w *strideWorkload) Thread(core int, seed uint64) ndpage.Generator {
	return &strideGen{w: w, pos: seed % w.bytes}
}

type strideGen struct {
	w   *strideWorkload
	pos uint64
}

func (g *strideGen) Next(op *ndpage.Op) {
	*op = ndpage.Op{Kind: ndpage.OpLoad, Addr: g.w.buf + ndpage.VAddr(g.pos)}
	g.pos = (g.pos + 4096) % g.w.bytes // one load per page: a TLB stress
}

// ExampleRegisterWorkload registers a user-defined kernel and runs it
// like any Table II benchmark — no internal imports, and the run is
// content-addressed by the workload's name and params.
func ExampleRegisterWorkload() {
	err := ndpage.RegisterWorkload("stride-demo", ndpage.WorkloadSpec{
		Suite:       "custom",
		Description: "page-stride streaming loads",
		Params:      "stride=4096",
		New:         func() ndpage.Workload { return &strideWorkload{} },
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := ndpage.Run(ndpage.Config{
		System:         ndpage.NDP,
		Cores:          2,
		Mechanism:      ndpage.NDPage,
		Workload:       "stride-demo", // the registered name
		FootprintBytes: 64 << 20,
		MemoryBytes:    1 << 30,
		Warmup:         1_000,
		Instructions:   5_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d instructions, %d loads\n", res.Instructions, res.Loads)
	// Output:
	// simulated 10000 instructions, 10000 loads
}

// Example_traceReplay replays a captured op stream: any file in the
// ndptrace CSV (or binary .ndpt) format drives a simulation via
// Config.Workload = "trace:<path>". The stream loops deterministically
// when the run outlives the capture.
func Example_traceReplay() {
	dir, err := os.MkdirTemp("", "ndpage-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Eight ops of a hand-written capture: loads and stores walking two
	// pages, with a compute burst between them. ndptrace produces the
	// same format from any workload (ndptrace -workload bfs > bfs.csv).
	capture := "op,addr\n" +
		"L,0x100000\nC,3\nS,0x100040\n" +
		"L,0x101000\nC,3\nS,0x101040\n"
	path := filepath.Join(dir, "capture.csv")
	if err := os.WriteFile(path, []byte(capture), 0o644); err != nil {
		log.Fatal(err)
	}

	res, err := ndpage.Run(ndpage.Config{
		System:       ndpage.NDP,
		Mechanism:    ndpage.Radix,
		Workload:     "trace:" + path,
		MemoryBytes:  1 << 30,
		Warmup:       600,
		Instructions: 3_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d instructions (%d loads, %d stores)\n",
		res.Instructions, res.Loads, res.Stores)
	// Output:
	// replayed 3000 instructions (1000 loads, 1000 stores)
}
