// Command ndpsim runs one simulation and prints its metric summary.
//
// Usage:
//
//	ndpsim -system ndp -mech NDPage -cores 4 -workload bfs
//	ndpsim -mech Radix -workload rnd -instructions 500000
//	ndpsim -mech Radix -cores 4 -mlp 4 -shared-walker -walker-width 2
//	ndpsim -mech NDPage -workload gups -json > run.json
//
// -json emits the full result — every counter, histogram, and the
// normalized configuration — as the same JSON document the sweep
// cache stores, instead of the human-readable summary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ndpage"
	"ndpage/internal/addr"
)

func main() {
	var (
		system    = flag.String("system", "ndp", "system kind: ndp or cpu (Table I)")
		mechName  = flag.String("mech", "NDPage", "translation mechanism: Radix, ECH, HugePage, NDPage, Ideal, FlattenOnly, BypassOnly")
		cores     = flag.Int("cores", 1, "number of cores (1-64)")
		wl        = flag.String("workload", "bfs", "workload name (see -list)")
		footprint = flag.Uint64("footprint", 0, "dataset bytes (0 = scaled default)")
		memory    = flag.Uint64("memory", 0, "physical memory bytes (0 = 16 GB)")
		instr     = flag.Uint64("instructions", 0, "measured ops per core (0 = 300k)")
		warmup    = flag.Uint64("warmup", 0, "warmup ops per core (0 = 30k)")
		seed      = flag.Uint64("seed", 0, "random seed (0 = 42)")
		width     = flag.Int("walker-width", 0, "concurrent walk slots per walker (0 = 1, blocking)")
		shared    = flag.Bool("shared-walker", false, "serve all cores' misses from one cluster-level walker")
		mlp       = flag.Int("mlp", 0, "per-core in-flight memory-op window (0 = 1, blocking core)")
		jsonOut   = flag.Bool("json", false, "emit the full result as JSON instead of the text summary")
		list      = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *list {
		fmt.Print(ndpage.TableII())
		return
	}

	mech, err := ndpage.ParseMechanism(*mechName)
	if err != nil {
		fatal(err)
	}
	sys := ndpage.NDP
	switch *system {
	case "ndp":
	case "cpu":
		sys = ndpage.CPU
	default:
		fatal(fmt.Errorf("unknown system %q (want ndp or cpu)", *system))
	}

	res, err := ndpage.Run(ndpage.Config{
		System:         sys,
		Cores:          *cores,
		Mechanism:      mech,
		Workload:       *wl,
		FootprintBytes: *footprint,
		MemoryBytes:    *memory,
		Instructions:   *instr,
		Warmup:         *warmup,
		Seed:           *seed,
		WalkerWidth:    *width,
		SharedWalker:   *shared,
		MLP:            *mlp,
	})
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("system=%s mechanism=%s cores=%d workload=%s\n", *system, mech, *cores, *wl)
	fmt.Printf("  instructions        %d (%d loads, %d stores)\n", res.Instructions, res.Loads, res.Stores)
	fmt.Printf("  cycles              %d (CPI %.2f)\n", res.Cycles, res.CPI())
	fmt.Printf("  translation         %.1f%% of time, %d walks, mean PTW %.1f cycles\n",
		100*res.TranslationOverhead(), res.Walks, res.MeanPTWLatency())
	fmt.Printf("  TLB miss rate       %.2f%% (L1 %.2f%%, L2 %.2f%%)\n",
		100*res.TLBMissRate(), 100*res.L1TLB.MissRate(), 100*res.L2TLB.MissRate())
	if *shared || *width > 1 || *mlp > 1 {
		fmt.Printf("  walker              MSHR hits %d (%.2f%%), overlapped %d (%.2f%%), queued %d (%.1f cycles/walk), peak in-flight %d\n",
			res.MSHRHits, 100*res.MSHRHitRate(), res.OverlappedWalks, 100*res.WalkOverlapRate(),
			res.QueuedWalks, res.MeanWalkQueueCycles(), res.MaxConcurrentWalks)
		fmt.Printf("  walk overlap        mean %.2f in flight%s\n", res.MeanWalkConcurrency(), hist(res.WalkOverlapHist))
	}
	if *mlp > 1 {
		fmt.Printf("  core window         mean %.2f ops in flight (MLP %d)%s\n",
			res.MeanInFlight(), res.Config.MLP, hist(res.InFlightHist))
	}
	fmt.Printf("  PTE share           %.1f%% of memory accesses (%d PTE accesses)\n",
		100*res.PTEAccessShare(), res.PTEAccesses)
	fmt.Printf("  L1 miss rates       data %.2f%%, metadata %.2f%% (%d bypassed)\n",
		100*res.L1DataMissRate(), 100*res.L1PTEMissRate(), res.L1Bypassed)
	fmt.Printf("  PWC hit rates       PL4 %.1f%% PL3 %.1f%% PL2 %.1f%%\n",
		100*res.PWCHitRate(addr.PL4), 100*res.PWCHitRate(addr.PL3), 100*res.PWCHitRate(addr.PL2))
	fmt.Printf("  DRAM                mean latency %.1f cycles, mean queue %.1f\n",
		res.DRAMMeanLatency, res.DRAMMeanQueue)
	fmt.Printf("  faults              %d x 4K, %d x 2M, %d huge fallbacks, %d compaction cycles\n",
		res.Faults4K, res.Faults2M, res.HugeFallbacks, res.CompactionCycles)
	fmt.Printf("  page table          %d mapped pages\n", res.MappedPages)
	for _, o := range res.Occupancy {
		fmt.Printf("    %-6s %6d nodes, occupancy %6.2f%%\n", o.Level, o.Nodes, 100*o.Rate())
	}
}

// hist renders a 1-indexed occupancy histogram as "; 1: n1, 2: n2, ...",
// or empty when there is nothing beyond solo occupancy to show.
func hist(h []uint64) string {
	if len(h) <= 2 {
		return ""
	}
	s := ";"
	for k := 1; k < len(h); k++ {
		s += fmt.Sprintf(" %d: %d", k, h[k])
		if k < len(h)-1 {
			s += ","
		}
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ndpsim:", err)
	os.Exit(1)
}
