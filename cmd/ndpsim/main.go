// Command ndpsim runs one simulation and prints its metric summary.
//
// Usage:
//
//	ndpsim -system ndp -mech NDPage -cores 4 -workload bfs
//	ndpsim -mech Radix -workload rnd -instructions 500000
//	ndpsim -mech Radix -cores 4 -mlp 4 -shared-walker -walker-width 2
//	ndpsim -mech NDPage -workload gups -json > run.json
//	ndpsim -mech NDPage -cpuprofile cpu.pprof -memprofile mem.pprof
//	ndpsim -mech NDPage -cores 4 -cache http://host:8947
//
// -json emits the full result — every counter, histogram, and the
// normalized configuration — as the same JSON document the sweep
// cache stores, instead of the human-readable summary.
//
// -cache runs through the content-addressed run cache: a directory
// serves repeat invocations from disk without simulating; an http(s)://
// URL points at a shared ndpserve instance, which serves warm keys
// from its store and runs cold configurations server-side (identical
// requests from any number of clients collapse into one simulation).
//
// -cpuprofile and -memprofile write pprof profiles of the simulation
// (construction + run; the CPU profile excludes flag parsing, the heap
// profile is taken after the run completes), for `go tool pprof`.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ndpage"
	"ndpage/internal/addr"
)

// errFlagParse marks a flag-parsing failure the FlagSet has already
// reported (with usage) on stderr; main exits nonzero without
// repeating it.
var errFlagParse = errors.New("flag parsing failed")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, "ndpsim:", err)
		}
		os.Exit(1)
	}
}

// run executes one ndpsim invocation: parse args, simulate, report.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ndpsim", flag.ContinueOnError)
	var (
		system     = fs.String("system", "ndp", "system kind: ndp or cpu (Table I)")
		mechName   = fs.String("mech", "NDPage", "translation mechanism: Radix, ECH, HugePage, NDPage, Ideal, FlattenOnly, BypassOnly, Victima, NMT, PCAX")
		cores      = fs.Int("cores", 1, "number of cores (1-64)")
		wl         = fs.String("workload", "bfs", "workload name (see -list), or trace:<file> to replay a capture")
		footprint  = fs.Uint64("footprint", 0, "dataset bytes (0 = scaled default)")
		memory     = fs.Uint64("memory", 0, "physical memory bytes (0 = 16 GB)")
		instr      = fs.Uint64("instructions", 0, "measured ops per core (0 = 300k)")
		warmup     = fs.Uint64("warmup", 0, "warmup ops per core (0 = 30k)")
		seed       = fs.Uint64("seed", 0, "random seed (0 = 42)")
		width      = fs.Int("walker-width", 0, "concurrent walk slots per walker (0 = 1, blocking)")
		shared     = fs.Bool("shared-walker", false, "serve all cores' misses from one cluster-level walker")
		mlp        = fs.Int("mlp", 0, "per-core in-flight memory-op window (0 = 1, blocking core)")
		vGate      = fs.Int("victima-gate", 0, "Victima only: walks before a translation block is admitted (0 = 2)")
		promote    = fs.Bool("identity-promote", false, "NMT only: identity-map demand-faulted chunks too")
		pcxEntries = fs.Int("pcx-entries", 0, "PCAX only: PC-indexed table entries (0 = 512)")
		cache      = fs.String("cache", "", "run cache: a directory, or the http(s):// URL of a shared ndpserve instance (empty = always simulate locally)")
		jsonOut    = fs.Bool("json", false, "emit the full result as JSON instead of the text summary")
		list       = fs.Bool("list", false, "list workloads and exit")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the simulation to FILE")
		memProfile = fs.String("memprofile", "", "write a heap profile (post-run) to FILE")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, clean exit
		}
		return errFlagParse
	}

	if *list {
		fmt.Fprint(out, ndpage.TableII())
		return nil
	}

	mech, err := ndpage.ParseMechanism(*mechName)
	if err != nil {
		return err
	}
	sys := ndpage.NDP
	switch *system {
	case "ndp":
	case "cpu":
		sys = ndpage.CPU
	default:
		return fmt.Errorf("unknown system %q (want ndp or cpu)", *system)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := ndpage.Config{
		System:          sys,
		Cores:           *cores,
		Mechanism:       mech,
		Workload:        *wl,
		FootprintBytes:  *footprint,
		MemoryBytes:     *memory,
		Instructions:    *instr,
		Warmup:          *warmup,
		Seed:            *seed,
		WalkerWidth:     *width,
		SharedWalker:    *shared,
		MLP:             *mlp,
		VictimaGate:     *vGate,
		IdentityPromote: *promote,
		PCXEntries:      *pcxEntries,
	}
	var res *ndpage.Result
	if *cache != "" {
		res, err = runCached(*cache, cfg)
	} else {
		res, err = ndpage.Run(cfg)
	}
	if err != nil {
		return err
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize the retained heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}

	printSummary(out, *system, mech, *cores, *wl, *shared, *width, *mlp, res)
	return nil
}

// runCached runs cfg through the content-addressed run cache named by
// arg: a directory (DirStore) serves repeats from disk; an http(s)://
// URL (RemoteStore over ndpserve) serves warm keys from the shared
// store and runs cold configurations server-side.
func runCached(arg string, cfg ndpage.Config) (*ndpage.Result, error) {
	var store ndpage.Store
	if strings.HasPrefix(arg, "http://") || strings.HasPrefix(arg, "https://") {
		remote, err := ndpage.NewRemoteStore(arg)
		if err != nil {
			return nil, err
		}
		store = remote
	} else {
		dir, err := ndpage.NewDirStore(arg)
		if err != nil {
			return nil, err
		}
		store = dir
	}
	// The Sweep runner supplies the cache discipline ndpexp uses: key
	// the normalized config, serve warm keys without simulating, store
	// fresh results — and delegate cold runs to a store that can
	// compute (the remote case).
	runner := &ndpage.Sweep{Store: store, Parallel: 1}
	return runner.RunOne(context.Background(), cfg)
}

// printSummary renders the human-readable metric summary.
func printSummary(out io.Writer, system string, mech ndpage.Mechanism, cores int, wl string, shared bool, width, mlp int, res *ndpage.Result) {
	fmt.Fprintf(out, "system=%s mechanism=%s cores=%d workload=%s\n", system, mech, cores, wl)
	fmt.Fprintf(out, "  instructions        %d (%d loads, %d stores)\n", res.Instructions, res.Loads, res.Stores)
	fmt.Fprintf(out, "  cycles              %d (CPI %.2f)\n", res.Cycles, res.CPI())
	fmt.Fprintf(out, "  translation         %.1f%% of time, %d walks, mean PTW %.1f cycles\n",
		100*res.TranslationOverhead(), res.Walks, res.MeanPTWLatency())
	fmt.Fprintf(out, "  TLB miss rate       %.2f%% (L1 %.2f%%, L2 %.2f%%)\n",
		100*res.TLBMissRate(), 100*res.L1TLB.MissRate(), 100*res.L2TLB.MissRate())
	if shared || width > 1 || mlp > 1 {
		fmt.Fprintf(out, "  walker              MSHR hits %d (%.2f%%), overlapped %d (%.2f%%), queued %d (%.1f cycles/walk), peak in-flight %d\n",
			res.MSHRHits, 100*res.MSHRHitRate(), res.OverlappedWalks, 100*res.WalkOverlapRate(),
			res.QueuedWalks, res.MeanWalkQueueCycles(), res.MaxConcurrentWalks)
		fmt.Fprintf(out, "  walk overlap        mean %.2f in flight%s\n", res.MeanWalkConcurrency(), hist(res.WalkOverlapHist))
	}
	if mlp > 1 {
		fmt.Fprintf(out, "  core window         mean %.2f ops in flight (MLP %d)%s\n",
			res.MeanInFlight(), res.Config.MLP, hist(res.InFlightHist))
	}
	switch mech {
	case ndpage.Victima:
		fmt.Fprintf(out, "  victima             %d probes, %.1f%% hit, %d fills (%d deferred), %d data lines displaced\n",
			res.VictimaProbes, 100*res.VictimaHitRate(), res.VictimaFills, res.VictimaDeferred, res.DataEvictedByXlat)
	case ndpage.NMT:
		fmt.Fprintf(out, "  identity            %.1f%% of translations identity-mapped (%d of %d)\n",
			100*res.IdentityHitRate(), res.IdentityHits, res.IdentityHits+res.IdentityMisses)
	case ndpage.PCAX:
		fmt.Fprintf(out, "  pcx                 %.1f%% hit on L1-TLB miss (%d of %d probes)\n",
			100*res.PCXHitRate(), res.PCX.Hits, res.PCX.Total())
	}
	fmt.Fprintf(out, "  PTE share           %.1f%% of memory accesses (%d PTE accesses)\n",
		100*res.PTEAccessShare(), res.PTEAccesses)
	fmt.Fprintf(out, "  L1 miss rates       data %.2f%%, metadata %.2f%% (%d bypassed)\n",
		100*res.L1DataMissRate(), 100*res.L1PTEMissRate(), res.L1Bypassed)
	fmt.Fprintf(out, "  PWC hit rates       PL4 %.1f%% PL3 %.1f%% PL2 %.1f%%\n",
		100*res.PWCHitRate(addr.PL4), 100*res.PWCHitRate(addr.PL3), 100*res.PWCHitRate(addr.PL2))
	fmt.Fprintf(out, "  DRAM                mean latency %.1f cycles, mean queue %.1f\n",
		res.DRAMMeanLatency, res.DRAMMeanQueue)
	fmt.Fprintf(out, "  faults              %d x 4K, %d x 2M, %d huge fallbacks, %d compaction cycles\n",
		res.Faults4K, res.Faults2M, res.HugeFallbacks, res.CompactionCycles)
	fmt.Fprintf(out, "  page table          %d mapped pages\n", res.MappedPages)
	for _, o := range res.Occupancy {
		fmt.Fprintf(out, "    %-6s %6d nodes, occupancy %6.2f%%\n", o.Level, o.Nodes, 100*o.Rate())
	}
}

// hist renders a 1-indexed occupancy histogram as "; 1: n1, 2: n2, ...",
// or empty when there is nothing beyond solo occupancy to show.
func hist(h []uint64) string {
	if len(h) <= 2 {
		return ""
	}
	s := ";"
	for k := 1; k < len(h); k++ {
		s += fmt.Sprintf(" %d: %d", k, h[k])
		if k < len(h)-1 {
			s += ","
		}
	}
	return s
}
