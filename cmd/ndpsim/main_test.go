package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndpage/internal/serve"
	"ndpage/internal/sweep"
)

// tiny returns arguments for a fast simulation.
func tiny(extra ...string) []string {
	args := []string{
		"-mech", "NDPage", "-workload", "rnd", "-cores", "1",
		"-footprint", "33554432", "-memory", "268435456",
		"-warmup", "200", "-instructions", "1000",
	}
	return append(args, extra...)
}

func TestRunTextSummary(t *testing.T) {
	var out bytes.Buffer
	if err := run(tiny(), &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"system=ndp mechanism=NDPage", "instructions", "TLB miss rate"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(tiny("-json"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"Instructions\"") {
		t.Errorf("JSON output missing Instructions field:\n%.200s", out.String())
	}
}

// TestProfileFlagsWriteFiles: -cpuprofile and -memprofile must create
// non-empty pprof files covering the simulation.
func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	if err := run(tiny("-cpuprofile", cpu, "-memprofile", mem), &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not created: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestCacheDir: -cache <dir> persists the run; the repeat invocation
// serves the identical result from disk.
func TestCacheDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	var first, second bytes.Buffer
	if err := run(tiny("-json", "-cache", dir), &first); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries = %v, %v; want exactly 1", entries, err)
	}
	if err := run(tiny("-json", "-cache", dir), &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("cached re-run produced different output")
	}
}

// TestCacheRemote: -cache http://... delegates the run to an ndpserve
// instance; the repeat invocation is a warm hit costing no second
// simulation.
func TestCacheRemote(t *testing.T) {
	srv, err := serve.New(serve.Options{Store: sweep.NewMemStore(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var first, second bytes.Buffer
	if err := run(tiny("-json", "-cache", ts.URL), &first); err != nil {
		t.Fatal(err)
	}
	if err := run(tiny("-json", "-cache", ts.URL), &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("remote-cached re-run produced different output")
	}
	if snap := srv.Snapshot(); snap.Simulations != 1 {
		t.Errorf("server simulations = %d, want 1 (second run warm)", snap.Simulations)
	}
}

// TestCacheBadURL: a malformed remote cache URL fails loudly.
func TestCacheBadURL(t *testing.T) {
	var out bytes.Buffer
	if err := run(tiny("-cache", "http://"), &out); err == nil {
		t.Error("bad cache URL accepted")
	}
}

func TestRunRejectsUnknownSystem(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-system", "tpu"}, &out); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestHelpFlagIsCleanExit(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err != nil {
		t.Errorf("-h returned error: %v", err)
	}
}

func TestBadFlagReportsOnce(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-no-such-flag"}, &out)
	if err == nil {
		t.Fatal("bad flag accepted")
	}
	if !strings.Contains(err.Error(), "flag parsing failed") {
		t.Errorf("bad flag error = %v, want the already-reported marker", err)
	}
}
