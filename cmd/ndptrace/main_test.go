package main

import (
	"errors"
	"strings"
	"testing"
)

func baseOpts() options {
	return options{
		workload:  "rnd",
		ops:       2_000,
		threads:   1,
		footprint: 64 << 20,
		seed:      42,
	}
}

func TestStatsModeSummarizesOpMix(t *testing.T) {
	opts := baseOpts()
	opts.stats = true
	var sb strings.Builder
	if err := emit(opts, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"workload       rnd", "ops            2000", "loads", "stores", "distinct pages"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "op,addr") {
		t.Error("stats mode emitted the CSV header")
	}
}

func TestTraceModeEmitsCSV(t *testing.T) {
	opts := baseOpts()
	opts.ops = 50
	var sb strings.Builder
	if err := emit(opts, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if lines[0] != "op,addr" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 51 {
		t.Fatalf("emitted %d data lines, want 50", len(lines)-1)
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "L,") && !strings.HasPrefix(l, "S,") && !strings.HasPrefix(l, "C,") {
			t.Fatalf("malformed trace line %q", l)
		}
	}
}

func TestUnknownWorkloadErrors(t *testing.T) {
	opts := baseOpts()
	opts.workload = "nope"
	if err := emit(opts, &strings.Builder{}); err == nil {
		t.Error("unknown workload accepted")
	}
}

// brokenWriter fails every write, standing in for a closed pipe.
type brokenWriter struct{}

var errBroken = errors.New("broken pipe")

func (brokenWriter) Write(p []byte) (int, error) { return 0, errBroken }

// TestFlushErrorPropagates: write failures surface from emit instead of
// being swallowed by a deferred Flush.
func TestFlushErrorPropagates(t *testing.T) {
	for _, stats := range []bool{false, true} {
		opts := baseOpts()
		opts.stats = stats
		if err := emit(opts, brokenWriter{}); !errors.Is(err, errBroken) {
			t.Errorf("stats=%v: emit returned %v, want broken-pipe error", stats, err)
		}
	}
}
