package main

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndpage/internal/addr"
	"ndpage/internal/workload"
	"ndpage/internal/workload/trace"
	"ndpage/internal/xrand"
)

func baseOpts() options {
	return options{
		workload:  "rnd",
		ops:       2_000,
		threads:   1,
		footprint: 64 << 20,
		seed:      42,
	}
}

func TestStatsModeSummarizesOpMix(t *testing.T) {
	opts := baseOpts()
	opts.stats = true
	var sb strings.Builder
	if err := emit(opts, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"workload       rnd", "ops            2000", "loads", "stores", "distinct pages"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "op,addr") {
		t.Error("stats mode emitted the CSV header")
	}
}

func TestTraceModeEmitsCSV(t *testing.T) {
	opts := baseOpts()
	opts.ops = 50
	var sb strings.Builder
	if err := emit(opts, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if lines[0] != "op,addr" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 51 {
		t.Fatalf("emitted %d data lines, want 50", len(lines)-1)
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "L,") && !strings.HasPrefix(l, "S,") && !strings.HasPrefix(l, "C,") {
			t.Fatalf("malformed trace line %q", l)
		}
	}
}

func TestUnknownWorkloadErrors(t *testing.T) {
	opts := baseOpts()
	opts.workload = "nope"
	if err := emit(opts, &strings.Builder{}); err == nil {
		t.Error("unknown workload accepted")
	}
}

// sourceOps regenerates the op stream a capture was taken from:
// the same workload, allocator base, and thread-seed derivation.
func sourceOps(t *testing.T, opts options, thread int, n uint64) []workload.Op {
	t.Helper()
	_, wl, err := build(opts)
	if err != nil {
		t.Fatal(err)
	}
	gen := wl.Thread(thread, threadSeed(opts.seed, thread))
	out := make([]workload.Op, n)
	for i := range out {
		gen.Next(&out[i])
	}
	return out
}

// TestRoundTripAllWorkloads pins the platform's core property: for
// every built-in workload, capture -> binary file -> "trace:" replay
// reproduces the identical per-core op stream, including multi-stream
// demux. A v1 capture carries kind, address, and cycles (PCs are
// discarded on the wire and replay as zero); a v2 capture (-pc) must
// reproduce the instruction PCs too.
func TestRoundTripAllWorkloads(t *testing.T) {
	for _, name := range workload.Names() {
		for _, pcs := range []bool{false, true} {
			ver := "v1"
			if pcs {
				ver = "v2"
			}
			t.Run(name+"/"+ver, func(t *testing.T) {
				opts := baseOpts()
				opts.workload = name
				opts.ops = 400
				opts.threads = 2
				opts.allThreads = true
				opts.pcs = pcs
				opts.out = filepath.Join(t.TempDir(), name+".ndpt")
				if err := run(opts, &strings.Builder{}); err != nil {
					t.Fatal(err)
				}

				hdr, err := trace.Sniff(opts.out)
				if err != nil {
					t.Fatal(err)
				}
				if hdr.Streams() != 2 || hdr.TotalOps() != 800 {
					t.Fatalf("header = %d streams / %d ops, want 2 / 800", hdr.Streams(), hdr.TotalOps())
				}
				wantVer := uint64(trace.Version)
				if pcs {
					wantVer = trace.VersionPC
				}
				if hdr.Version != wantVer {
					t.Fatalf("capture version = %d, want %d", hdr.Version, wantVer)
				}

				// Replay onto a bump allocator at the capture base: the
				// replay's region lands where the capture's lowest address
				// was, so streams must match byte for byte.
				spec, err := workload.Lookup(workload.TracePrefix + opts.out)
				if err != nil {
					t.Fatal(err)
				}
				wl := spec.New()
				wl.Init(&traceMem{brk: addr.V(hdr.Base)}, xrand.New(1), 0, 2)
				var got workload.Op
				for thread := 0; thread < 2; thread++ {
					want := sourceOps(t, opts, thread, opts.ops)
					gen := wl.Thread(thread, 7) // replay ignores the seed
					for i, w := range want {
						gen.Next(&got)
						if !pcs {
							w.PC = 0 // v1 discards PCs on the wire
						}
						if got != w {
							t.Fatalf("thread %d op %d: replay %+v, capture %+v", thread, i, got, w)
						}
					}
				}
			})
		}
	}
}

func TestVerifyAcceptsOwnCaptures(t *testing.T) {
	opts := baseOpts()
	opts.ops = 300
	opts.threads = 2
	opts.allThreads = true
	opts.out = filepath.Join(t.TempDir(), "v.ndpt")
	if err := run(opts, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(options{verify: opts.out}, &sb); err != nil {
		t.Fatalf("verify rejected a fresh capture: %v", err)
	}
	for _, want := range []string{"ok ", "2 streams", "600 ops"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("verify output %q missing %q", sb.String(), want)
		}
	}
}

// TestVerifyCatchesTamperedHeader: re-frame the capture with a bumped
// footprint; -verify must notice the header no longer matches the ops.
func TestVerifyCatchesTamperedHeader(t *testing.T) {
	opts := baseOpts()
	opts.ops = 100
	opts.out = filepath.Join(t.TempDir(), "t.ndpt")
	if err := run(opts, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	hdr, streams, err := trace.ReadFile(opts.out)
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode the file by hand (same wire layout as trace.Writer)
	// with a lying footprint, keeping payload and op counts intact.
	hdr.Footprint += 64
	buf := []byte(trace.Magic)
	buf = binary.AppendUvarint(buf, trace.Version)
	buf = binary.AppendUvarint(buf, uint64(len(hdr.Name)))
	buf = append(buf, hdr.Name...)
	buf = binary.AppendUvarint(buf, hdr.Seed)
	buf = binary.AppendUvarint(buf, hdr.Base)
	buf = binary.AppendUvarint(buf, hdr.Footprint)
	buf = binary.AppendUvarint(buf, uint64(len(hdr.Ops)))
	for _, c := range hdr.Ops {
		buf = binary.AppendUvarint(buf, c)
	}
	for _, s := range streams {
		var prev uint64
		for _, op := range s {
			buf = binary.AppendUvarint(buf, uint64(op.Kind))
			if op.Kind == trace.Compute {
				buf = binary.AppendUvarint(buf, uint64(op.Cycles))
			} else {
				buf = binary.AppendVarint(buf, int64(op.Addr-prev))
				prev = op.Addr
			}
		}
	}
	var tampered bytes.Buffer
	zw := gzip.NewWriter(&tampered)
	if _, err := zw.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(opts.out, tampered.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{verify: opts.out}, &strings.Builder{}); err == nil {
		t.Error("verify accepted a capture whose payload was tampered")
	}
}

func TestFlagConflicts(t *testing.T) {
	opts := baseOpts()
	opts.allThreads = true
	if err := run(opts, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "-o") {
		t.Errorf("-all-threads without -o: err = %v", err)
	}
	opts = baseOpts()
	opts.stats = true
	opts.out = "x.ndpt"
	if err := run(opts, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("-stats with -o: err = %v", err)
	}
	opts = baseOpts()
	opts.threads = 0
	opts.allThreads = true
	opts.out = "x.ndpt"
	if err := run(opts, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "-threads") {
		t.Errorf("-threads 0: err = %v (want a flag error, not a panic)", err)
	}
	opts = baseOpts()
	opts.thread = 5
	if err := run(opts, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("-thread beyond -threads: err = %v", err)
	}
}

// brokenWriter fails every write, standing in for a closed pipe.
type brokenWriter struct{}

var errBroken = errors.New("broken pipe")

func (brokenWriter) Write(p []byte) (int, error) { return 0, errBroken }

// TestFlushErrorPropagates: write failures surface from emit instead of
// being swallowed by a deferred Flush.
func TestFlushErrorPropagates(t *testing.T) {
	for _, stats := range []bool{false, true} {
		opts := baseOpts()
		opts.stats = stats
		if err := emit(opts, brokenWriter{}); !errors.Is(err, errBroken) {
			t.Errorf("stats=%v: emit returned %v, want broken-pipe error", stats, err)
		}
	}
}
