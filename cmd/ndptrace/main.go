// Command ndptrace dumps the virtual-address instruction stream of a
// workload as CSV (op,address) — useful for feeding the synthetic
// kernels into other simulators or inspecting their access patterns.
//
// Usage:
//
//	ndptrace -workload bfs -ops 10000 > bfs.csv
//	ndptrace -workload dlrm -threads 4 -thread 2 -ops 1000
//	ndptrace -workload gen -stats          # op-mix summary instead of the trace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"ndpage/internal/addr"
	"ndpage/internal/workload"
	"ndpage/internal/xrand"
)

// traceMem implements workload.Mem with a plain bump allocator: the
// trace has no OS model, only addresses.
type traceMem struct{ brk addr.V }

func (m *traceMem) alloc(size uint64) addr.V {
	size = addr.AlignUp(size, addr.HugePageSize)
	base := m.brk
	m.brk += addr.V(size)
	return base
}

func (m *traceMem) Alloc(size uint64, name string) addr.V     { return m.alloc(size) }
func (m *traceMem) AllocLazy(size uint64, name string) addr.V { return m.alloc(size) }

// options selects what trace to emit.
type options struct {
	workload  string
	ops       uint64
	threads   int
	thread    int
	footprint uint64
	seed      uint64
	stats     bool
}

// emit writes the trace (or, with opts.stats, the op-mix summary) to w.
// The writer is buffered here, and the buffer's deferred write errors —
// which a bare "defer Flush()" would discard — are returned.
func emit(opts options, w io.Writer) (err error) {
	spec, err := workload.Lookup(opts.workload)
	if err != nil {
		return err
	}
	wl := spec.New()
	mem := &traceMem{brk: 1 << 39}
	wl.Init(mem, xrand.New(opts.seed), opts.footprint, opts.threads)
	gen := wl.Thread(opts.thread, opts.seed*1_000_003+uint64(opts.thread))

	out := bufio.NewWriter(w)
	defer func() {
		if ferr := out.Flush(); err == nil {
			err = ferr
		}
	}()

	var op workload.Op
	if opts.stats {
		var loads, stores, computes, cycles uint64
		pages := map[addr.VPN]struct{}{}
		for i := uint64(0); i < opts.ops; i++ {
			gen.Next(&op)
			switch op.Kind {
			case workload.Load:
				loads++
				pages[op.Addr.Page()] = struct{}{}
			case workload.Store:
				stores++
				pages[op.Addr.Page()] = struct{}{}
			case workload.Compute:
				computes++
				cycles += uint64(op.Cycles)
			}
		}
		fmt.Fprintf(out, "workload       %s (%s: %s)\n", spec.Name, spec.Suite, spec.Description)
		fmt.Fprintf(out, "ops            %d\n", opts.ops)
		fmt.Fprintf(out, "loads          %d (%.1f%%)\n", loads, 100*float64(loads)/float64(opts.ops))
		fmt.Fprintf(out, "stores         %d (%.1f%%)\n", stores, 100*float64(stores)/float64(opts.ops))
		fmt.Fprintf(out, "compute ops    %d (%d cycles)\n", computes, cycles)
		fmt.Fprintf(out, "distinct pages %d (%.1f MB touched)\n", len(pages),
			float64(len(pages))*4096/1e6)
		return nil
	}

	fmt.Fprintln(out, "op,addr")
	for i := uint64(0); i < opts.ops; i++ {
		gen.Next(&op)
		switch op.Kind {
		case workload.Load:
			fmt.Fprintf(out, "L,%#x\n", uint64(op.Addr))
		case workload.Store:
			fmt.Fprintf(out, "S,%#x\n", uint64(op.Addr))
		case workload.Compute:
			fmt.Fprintf(out, "C,%d\n", op.Cycles)
		}
	}
	return nil
}

func main() {
	var opts options
	flag.StringVar(&opts.workload, "workload", "bfs", "workload name")
	flag.Uint64Var(&opts.ops, "ops", 100_000, "number of ops to emit")
	flag.IntVar(&opts.threads, "threads", 1, "total thread count the workload partitions for")
	flag.IntVar(&opts.thread, "thread", 0, "which thread's stream to dump")
	flag.Uint64Var(&opts.footprint, "footprint", 1<<30, "dataset bytes")
	flag.Uint64Var(&opts.seed, "seed", 42, "random seed")
	flag.BoolVar(&opts.stats, "stats", false, "print an op-mix summary instead of the trace")
	flag.Parse()

	if err := emit(opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ndptrace:", err)
		os.Exit(1)
	}
}
