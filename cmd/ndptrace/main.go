// Command ndptrace dumps the virtual-address instruction stream of a
// workload as CSV (op,address) — useful for feeding the synthetic
// kernels into other simulators or inspecting their access patterns.
//
// Usage:
//
//	ndptrace -workload bfs -ops 10000 > bfs.csv
//	ndptrace -workload dlrm -threads 4 -thread 2 -ops 1000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ndpage/internal/addr"
	"ndpage/internal/workload"
	"ndpage/internal/xrand"
)

// traceMem implements workload.Mem with a plain bump allocator: the
// trace has no OS model, only addresses.
type traceMem struct{ brk addr.V }

func (m *traceMem) alloc(size uint64) addr.V {
	size = addr.AlignUp(size, addr.HugePageSize)
	base := m.brk
	m.brk += addr.V(size)
	return base
}

func (m *traceMem) Alloc(size uint64, name string) addr.V     { return m.alloc(size) }
func (m *traceMem) AllocLazy(size uint64, name string) addr.V { return m.alloc(size) }

func main() {
	var (
		wlName    = flag.String("workload", "bfs", "workload name")
		ops       = flag.Uint64("ops", 100_000, "number of ops to emit")
		threads   = flag.Int("threads", 1, "total thread count the workload partitions for")
		thread    = flag.Int("thread", 0, "which thread's stream to dump")
		footprint = flag.Uint64("footprint", 1<<30, "dataset bytes")
		seed      = flag.Uint64("seed", 42, "random seed")
		stats     = flag.Bool("stats", false, "print an op-mix summary instead of the trace")
	)
	flag.Parse()

	spec, err := workload.Lookup(*wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndptrace:", err)
		os.Exit(1)
	}
	w := spec.New()
	mem := &traceMem{brk: 1 << 39}
	w.Init(mem, xrand.New(*seed), *footprint, *threads)
	gen := w.Thread(*thread, *seed*1_000_003+uint64(*thread))

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	var op workload.Op
	if *stats {
		var loads, stores, computes, cycles uint64
		pages := map[addr.VPN]struct{}{}
		for i := uint64(0); i < *ops; i++ {
			gen.Next(&op)
			switch op.Kind {
			case workload.Load:
				loads++
				pages[op.Addr.Page()] = struct{}{}
			case workload.Store:
				stores++
				pages[op.Addr.Page()] = struct{}{}
			case workload.Compute:
				computes++
				cycles += uint64(op.Cycles)
			}
		}
		fmt.Fprintf(out, "workload       %s (%s: %s)\n", spec.Name, spec.Suite, spec.Description)
		fmt.Fprintf(out, "ops            %d\n", *ops)
		fmt.Fprintf(out, "loads          %d (%.1f%%)\n", loads, 100*float64(loads)/float64(*ops))
		fmt.Fprintf(out, "stores         %d (%.1f%%)\n", stores, 100*float64(stores)/float64(*ops))
		fmt.Fprintf(out, "compute ops    %d (%d cycles)\n", computes, cycles)
		fmt.Fprintf(out, "distinct pages %d (%.1f MB touched)\n", len(pages),
			float64(len(pages))*4096/1e6)
		return
	}

	fmt.Fprintln(out, "op,addr")
	for i := uint64(0); i < *ops; i++ {
		gen.Next(&op)
		switch op.Kind {
		case workload.Load:
			fmt.Fprintf(out, "L,%#x\n", uint64(op.Addr))
		case workload.Store:
			fmt.Fprintf(out, "S,%#x\n", uint64(op.Addr))
		case workload.Compute:
			fmt.Fprintf(out, "C,%d\n", op.Cycles)
		}
	}
}
