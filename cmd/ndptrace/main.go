// Command ndptrace is the capture side of the workload platform: it
// dumps the virtual-address instruction stream of any workload as CSV
// (inspectable, single-stream) or as a compact binary .ndpt capture
// (gzip-framed, varint-delta encoded, multi-stream) that the simulator
// replays via Config.Workload = "trace:<file>". See WORKLOADS.md for
// the format specification.
//
// Usage:
//
//	ndptrace -workload bfs -ops 10000 > bfs.csv
//	ndptrace -workload dlrm -threads 4 -thread 2 -ops 1000
//	ndptrace -workload gen -stats            # op-mix summary instead of the trace
//	ndptrace -workload bfs -ops 200000 -o bfs.ndpt           # binary capture
//	ndptrace -workload bfs -threads 4 -all-threads -o bfs4.ndpt
//	ndptrace -workload bfs -ops 200000 -pc -o bfs.ndpt       # v2: with instruction PCs
//	ndptrace -verify bfs4.ndpt               # replay + check against the header
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"ndpage/internal/addr"
	"ndpage/internal/workload"
	"ndpage/internal/workload/trace"
	"ndpage/internal/xrand"
)

// traceMem implements workload.Mem with a plain bump allocator: the
// trace has no OS model, only addresses.
type traceMem struct{ brk addr.V }

func (m *traceMem) alloc(size uint64) addr.V {
	size = addr.AlignUp(size, addr.HugePageSize)
	base := m.brk
	m.brk += addr.V(size)
	return base
}

func (m *traceMem) Alloc(size uint64, name string) addr.V     { return m.alloc(size) }
func (m *traceMem) AllocLazy(size uint64, name string) addr.V { return m.alloc(size) }

// captureBase is where the bump allocator starts; workloads replayed
// against another bump allocator at the same base reproduce the
// captured stream byte for byte.
const captureBase = 1 << 39

// threadSeed derives the per-thread generator seed exactly as sim.New
// does, so captures replay with the simulator's Thread(core, seed)
// semantics.
func threadSeed(seed uint64, thread int) uint64 {
	return seed*1_000_003 + uint64(thread)
}

// options selects what trace to emit.
type options struct {
	workload   string
	ops        uint64
	threads    int
	thread     int
	footprint  uint64
	seed       uint64
	stats      bool
	out        string // -o: binary capture file
	allThreads bool   // capture every thread's stream (-o only)
	pcs        bool   // -pc: capture instruction PCs (format v2)
	verify     string // -verify: replay a capture and check its header
}

// build instantiates the workload on the capture allocator.
func build(opts options) (workload.Spec, workload.Workload, error) {
	spec, err := workload.Lookup(opts.workload)
	if err != nil {
		return workload.Spec{}, nil, err
	}
	wl := spec.New()
	wl.Init(&traceMem{brk: captureBase}, xrand.New(opts.seed), opts.footprint, opts.threads)
	return spec, wl, nil
}

// emit writes the CSV trace (or, with opts.stats, the op-mix summary)
// to w. The writer is buffered here, and the buffer's deferred write
// errors — which a bare "defer Flush()" would discard — are returned.
func emit(opts options, w io.Writer) (err error) {
	spec, wl, err := build(opts)
	if err != nil {
		return err
	}
	gen := wl.Thread(opts.thread, threadSeed(opts.seed, opts.thread))

	out := bufio.NewWriter(w)
	defer func() {
		if ferr := out.Flush(); err == nil {
			err = ferr
		}
	}()

	var op workload.Op
	if opts.stats {
		var loads, stores, computes, cycles uint64
		pages := map[addr.VPN]struct{}{}
		for i := uint64(0); i < opts.ops; i++ {
			gen.Next(&op)
			switch op.Kind {
			case workload.Load:
				loads++
				pages[op.Addr.Page()] = struct{}{}
			case workload.Store:
				stores++
				pages[op.Addr.Page()] = struct{}{}
			case workload.Compute:
				computes++
				cycles += uint64(op.Cycles)
			}
		}
		fmt.Fprintf(out, "workload       %s (%s: %s)\n", spec.Name, spec.Suite, spec.Description)
		fmt.Fprintf(out, "ops            %d\n", opts.ops)
		fmt.Fprintf(out, "loads          %d (%.1f%%)\n", loads, 100*float64(loads)/float64(opts.ops))
		fmt.Fprintf(out, "stores         %d (%.1f%%)\n", stores, 100*float64(stores)/float64(opts.ops))
		fmt.Fprintf(out, "compute ops    %d (%d cycles)\n", computes, cycles)
		fmt.Fprintf(out, "distinct pages %d (%.1f MB touched)\n", len(pages),
			float64(len(pages))*4096/1e6)
		return nil
	}

	header := trace.CSVHeader
	if opts.pcs {
		header = trace.CSVHeaderPC
	}
	fmt.Fprintln(out, header)
	for i := uint64(0); i < opts.ops; i++ {
		gen.Next(&op)
		kind := ""
		switch op.Kind {
		case workload.Load:
			kind = "L"
		case workload.Store:
			kind = "S"
		case workload.Compute:
			fmt.Fprintf(out, "C,%d\n", op.Cycles)
			continue
		}
		if opts.pcs {
			fmt.Fprintf(out, "%s,%#x,%#x\n", kind, uint64(op.Addr), op.PC)
		} else {
			fmt.Fprintf(out, "%s,%#x\n", kind, uint64(op.Addr))
		}
	}
	return nil
}

// capture writes a binary .ndpt capture to opts.out: opts.ops ops of
// one thread (opts.thread), or of every thread with -all-threads.
func capture(opts options) error {
	_, wl, err := build(opts)
	if err != nil {
		return err
	}
	first, streams := opts.thread, 1
	if opts.allThreads {
		first, streams = 0, opts.threads
	}
	w := trace.NewWriter(opts.workload, opts.seed, streams)
	if opts.pcs {
		w = trace.NewWriterPC(opts.workload, opts.seed, streams)
	}
	var op workload.Op
	for s := 0; s < streams; s++ {
		gen := wl.Thread(first+s, threadSeed(opts.seed, first+s))
		for i := uint64(0); i < opts.ops; i++ {
			gen.Next(&op)
			w.Append(s, trace.Op{Kind: trace.Kind(op.Kind), Addr: uint64(op.Addr), PC: op.PC, Cycles: op.Cycles})
		}
	}
	f, err := os.Create(opts.out)
	if err != nil {
		return err
	}
	if err := w.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// verify replays a capture through the same workload machinery the
// simulator uses ("trace:<path>") and checks the stream against the
// file's header: per-stream op counts, and the address base/footprint
// the ops actually span. It prints a summary on success.
func verify(path string, out io.Writer) error {
	hdr, err := trace.Sniff(path)
	if err != nil {
		return err
	}
	spec, err := workload.Lookup(workload.TracePrefix + path)
	if err != nil {
		return err
	}
	wl := spec.New()
	mem := &traceMem{brk: captureBase}
	wl.Init(mem, xrand.New(0), 0, hdr.Streams())

	var loads, stores, computes uint64
	streams := make([][]trace.Op, hdr.Streams())
	var op workload.Op
	for s := range streams {
		gen := wl.Thread(s, 0)
		hint := hdr.Ops[s]
		if hint > 1<<20 { // header-supplied: cap the preallocation
			hint = 1 << 20
		}
		ops := make([]trace.Op, 0, hint)
		for i := uint64(0); i < hdr.Ops[s]; i++ {
			gen.Next(&op)
			switch op.Kind {
			case workload.Load, workload.Store:
				if op.Kind == workload.Load {
					loads++
				} else {
					stores++
				}
				// Undo the replay's rebase so the ops compare against
				// the header in capture coordinates.
				a := uint64(op.Addr) - (captureBase - hdr.Base)
				ops = append(ops, trace.Op{Kind: trace.Kind(op.Kind), Addr: a})
			default:
				computes++
				ops = append(ops, trace.Op{Kind: trace.Compute, Cycles: op.Cycles})
			}
		}
		streams[s] = ops
	}
	if err := hdr.Check(streams); err != nil {
		return fmt.Errorf("verify %s: %w", path, err)
	}
	fmt.Fprintf(out, "ok %s: %d streams, %d ops (%d loads, %d stores, %d compute), %.1f MB span\n",
		path, hdr.Streams(), hdr.TotalOps(), loads, stores, computes, float64(hdr.Footprint)/1e6)
	return nil
}

// run executes one ndptrace invocation.
func run(opts options, out io.Writer) error {
	switch {
	case opts.verify != "":
		return verify(opts.verify, out)
	case opts.threads < 1:
		return fmt.Errorf("-threads %d: need at least one thread", opts.threads)
	case opts.thread < 0 || opts.thread >= opts.threads:
		return fmt.Errorf("-thread %d out of range [0, %d)", opts.thread, opts.threads)
	case opts.allThreads && opts.out == "":
		return fmt.Errorf("-all-threads needs -o: the CSV format is single-stream")
	case opts.stats && opts.out != "":
		return fmt.Errorf("-stats and -o are mutually exclusive")
	case opts.out != "":
		return capture(opts)
	default:
		return emit(opts, out)
	}
}

func main() {
	var opts options
	flag.StringVar(&opts.workload, "workload", "bfs", "workload name (builtin or trace:<path>)")
	flag.Uint64Var(&opts.ops, "ops", 100_000, "number of ops to emit per stream")
	flag.IntVar(&opts.threads, "threads", 1, "total thread count the workload partitions for")
	flag.IntVar(&opts.thread, "thread", 0, "which thread's stream to dump")
	flag.Uint64Var(&opts.footprint, "footprint", 1<<30, "dataset bytes")
	flag.Uint64Var(&opts.seed, "seed", 42, "random seed")
	flag.BoolVar(&opts.stats, "stats", false, "print an op-mix summary instead of the trace")
	flag.StringVar(&opts.out, "o", "", "write a binary .ndpt capture to FILE instead of CSV on stdout")
	flag.BoolVar(&opts.allThreads, "all-threads", false, "capture every thread's stream (requires -o)")
	flag.BoolVar(&opts.pcs, "pc", false, "record instruction PCs in the capture (format v2, requires -o; v1 without)")
	flag.StringVar(&opts.verify, "verify", "", "replay capture FILE and check it against its header")
	flag.Parse()

	if err := run(opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ndptrace:", err)
		os.Exit(1)
	}
}
