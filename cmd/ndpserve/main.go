// Command ndpserve runs the shared sweep-result service: an HTTP/JSON
// API over a content-addressed run cache (internal/serve, DESIGN.md
// section 8). Warm keys are served straight from the store; cold keys
// are simulated on a bounded worker pool with singleflight dedupe, so
// identical configurations from any number of clients cost one
// simulation.
//
// Usage:
//
//	ndpserve -store results/.cache            # serve on :8947
//	ndpserve -addr :9000 -workers 8 -queue 256
//
// Clients point any sweep at it:
//
//	ndpexp -figs fig12 -cache http://host:8947
//	ndpsim -mech NDPage -cores 4 -cache http://host:8947
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, in-flight
// and queued simulations complete and are stored, then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ndpage/internal/fault"
	"ndpage/internal/serve"
	"ndpage/internal/sim"
	"ndpage/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, "ndpserve:", err)
		}
		os.Exit(1)
	}
}

// errFlagParse marks a flag-parsing failure the FlagSet has already
// reported on stderr; main exits nonzero without repeating it.
var errFlagParse = errors.New("flag parsing failed")

// run executes one ndpserve invocation: parse args, open the store,
// serve until ctx cancels, drain, exit. When ready is non-nil the bound
// address is sent on it once the listener is up (tests bind to :0).
func run(ctx context.Context, args []string, logw io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("ndpserve", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr     = fs.String("addr", ":8947", "listen address")
		storeDir = fs.String("store", "ndpserve-cache", "directory for the content-addressed result store")
		workers  = fs.Int("workers", 0, "max concurrent simulations (0 = one per CPU)")
		queue    = fs.Int("queue", 0, "admission queue depth before 429 backpressure (0 = 64)")
		retry    = fs.Int("retry-after", 0, "Retry-After seconds sent with 429 responses (0 = 2)")
		runTO    = fs.Duration("run-timeout", 0, "per-run watchdog deadline; runs past it fail transiently and detach (0 = none)")
		chaos    = fs.Int64("chaos-seed", 0, "inject deterministic seeded faults (one simulator panic + one torn store write) for chaos testing (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse
	}

	store, err := sweep.NewDirStore(*storeDir)
	if err != nil {
		return err
	}
	opts := serve.Options{
		Store:      store,
		Workers:    *workers,
		QueueDepth: *queue,
		RetryAfter: *retry,
		RunTimeout: *runTO,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(logw, format+"\n", args...)
		},
	}
	if *chaos != 0 {
		// Chaos mode: scheduled faults between the service and its own
		// substrate — a panic in the first simulation (recovered by the
		// worker guard) and a torn first store write (quarantined and
		// re-simulated on the next read). The process must shrug.
		plan := fault.ServerPlan(*chaos)
		opts.Store = &fault.Store{Inner: store, Plan: plan, Dir: store.Dir()}
		opts.Simulate = plan.WrapSim(sim.RunConfig)
		fmt.Fprintf(logw, "ndpserve: chaos mode, seed %d\n", *chaos)
	}
	srv, err := serve.New(opts)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	snap := srv.Snapshot()
	fmt.Fprintf(logw, "ndpserve: listening on http://%s (store %s: %d results; %d workers, queue %d)\n",
		ln.Addr(), store.Dir(), snap.Stored, snap.Workers, snap.QueueCapacity)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(logw, "ndpserve: shutting down (draining in-flight runs)\n")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
	}
	srv.Close() // waits for queued + in-flight simulations to land in the store
	fmt.Fprintf(logw, "ndpserve: done (%d simulations served)\n", srv.Snapshot().Simulations)
	return nil
}
