package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// logBuffer is a goroutine-safe log sink (the server goroutine writes
// while the test reads).
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// startServer runs one ndpserve instance on a free port against a temp
// store and returns its base URL, log, and a shutdown func that blocks
// until the server drains.
func startServer(t *testing.T, extra ...string) (string, *logBuffer, func()) {
	t.Helper()
	log := &logBuffer{}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-store", filepath.Join(t.TempDir(), "cache"),
	}, extra...)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, args, log, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	shutdown := func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("server exited with error: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("server did not shut down")
		}
	}
	return "http://" + addr, log, shutdown
}

// TestServeEndToEnd boots the real binary path: health probe, a tiny
// simulation over HTTP, warm re-request, stats, graceful shutdown.
func TestServeEndToEnd(t *testing.T) {
	base, log, shutdown := startServer(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	cfg := `{"Mechanism": 3, "Workload": "rnd", "Cores": 1,
		"FootprintBytes": 33554432, "MemoryBytes": 268435456,
		"Warmup": 200, "Instructions": 1000}`
	var bodies [2][]byte
	for i := range bodies {
		resp, err := http.Post(base+"/v1/sim", "application/json", strings.NewReader(cfg))
		if err != nil {
			t.Fatal(err)
		}
		bodies[i], err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("sim %d: status %d err %v", i, resp.StatusCode, err)
		}
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("warm re-request returned a different body")
	}

	resp, err = http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Simulations uint64 `json:"simulations"`
		Hits        uint64 `json:"hits"`
		Stored      int64  `json:"stored"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Simulations != 1 || stats.Hits != 1 || stats.Stored != 1 {
		t.Errorf("stats = %+v, want 1 simulation, 1 hit, 1 stored", stats)
	}

	shutdown()
	out := log.String()
	for _, want := range []string{"listening on http://", "shutting down", "done (1 simulations served)"} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
}

// TestServeReopensStore: a restart over the same store directory serves
// the previous run warm.
func TestServeReopensStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	cfg := `{"Mechanism": 0, "Workload": "rnd", "Cores": 1,
		"FootprintBytes": 33554432, "MemoryBytes": 268435456,
		"Warmup": 200, "Instructions": 1000}`

	post := func(base string) (string, error) {
		resp, err := http.Post(base+"/v1/sim", "application/json", strings.NewReader(cfg))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status %d", resp.StatusCode)
		}
		return resp.Header.Get("X-Cache"), nil
	}

	base, _, shutdown := startServer(t, "-store", dir)
	if xc, err := post(base); err != nil || xc != "sim" {
		t.Fatalf("first run: X-Cache %q err %v, want sim", xc, err)
	}
	shutdown()

	base, log, shutdown := startServer(t, "-store", dir)
	defer shutdown()
	if !strings.Contains(log.String(), "1 results") {
		t.Errorf("reopened store not announced in log:\n%s", log.String())
	}
	if xc, err := post(base); err != nil || xc != "hit" {
		t.Errorf("after restart: X-Cache %q err %v, want hit", xc, err)
	}
}

func TestServeHelpAndBadFlags(t *testing.T) {
	log := &logBuffer{}
	if err := run(context.Background(), []string{"-h"}, log, nil); err != nil {
		t.Errorf("-h returned error: %v", err)
	}
	err := run(context.Background(), []string{"-no-such-flag"}, log, nil)
	if err == nil || !strings.Contains(err.Error(), "flag parsing failed") {
		t.Errorf("bad flag error = %v", err)
	}
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-store", "/dev/null/nope"}, log, nil); err == nil {
		t.Error("unusable store directory accepted")
	}
}
